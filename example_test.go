package rrq_test

import (
	"fmt"

	"rrq"
)

// The running example of the paper (Table 3 / Example 3.3): find every
// customer preference under which q = (0.4, 0.7) is a (2, 0.1)-regret
// point.
func ExampleSolveResult() {
	ds, _ := rrq.NewDataset([][]float64{
		{0.20, 0.92},
		{0.70, 0.54},
		{0.60, 0.30},
	})
	res, _ := rrq.SolveResult(ds, rrq.Query{Q: rrq.Point{0.4, 0.7}, K: 2, Epsilon: 0.1})
	fmt.Println(res.Region.Contains(rrq.Vector{0.5, 0.5}))
	fmt.Printf("%.3f\n", rrq.RegretRatio(ds, rrq.Point{0.4, 0.7}, 2, rrq.Vector{0.5, 0.5}))
	// Output:
	// true
	// 0.018
}

// Reverse top-k misses score-close products that the reverse regret query
// keeps — the paper's Table 1 car market.
func ExampleReverseTopK() {
	cars, _ := rrq.NewDataset([][]float64{
		{4.3, 5.0},
		{4.5, 4.0},
		{5.0, 1.0},
	})
	q := rrq.Point{4.5, 2.0}
	u1 := rrq.Vector{0.9, 0.1} // a horsepower-focused customer

	rankBased, _ := rrq.ReverseTopK(cars, q, 3)
	scoreBased, _ := rrq.SolveResult(cars, rrq.Query{Q: q, K: 1, Epsilon: 0.1})
	fmt.Println(rankBased.Contains(u1), scoreBased.Region.Contains(u1))
	// Output:
	// false true
}

// A k-skyband prune shrinks the market without changing any reverse query
// answer.
func ExampleDataset_KSkyband() {
	ds := rrq.SyntheticDataset(rrq.Independent, 1000, 3, 7)
	pruned := ds.KSkyband(5)
	fmt.Println(ds.Len(), pruned.Len() < ds.Len())
	// Output:
	// 1000 true
}

// Maintaining an answer while the market changes (the paper's future work).
func ExampleDynamicRegion() {
	ds, _ := rrq.NewDataset([][]float64{
		{0.8, 0.3},
		{0.3, 0.8},
	})
	dyn, _ := rrq.NewDynamicRegion(ds, rrq.Query{Q: rrq.Point{0.6, 0.6}, K: 1, Epsilon: 0.1})
	before := dyn.Region().Measure(0) // exact for 2-d regions
	_ = dyn.Insert(rrq.Point{0.9, 0.9})
	after := dyn.Region().Measure(0)
	fmt.Println(before > 0, after < before)
	// Output:
	// true true
}
