package rrq

// Durable serving: the public face of the WAL + checkpoint layer. An index
// opened with OpenDurableIndex logs every Insert/Delete to a write-ahead
// log before publishing the new epoch and periodically folds its snapshot
// into a crash-atomic checkpoint; reopening the same directory recovers to
// exactly the acknowledged state (under the "always" fsync policy) with
// torn or corrupt log tails truncated rather than fatal. See
// docs/SERVING.md's Durability section for the format and the guarantees
// per fsync policy.

import (
	"errors"
	"time"

	"rrq/internal/cache"
	"rrq/internal/index"
	"rrq/internal/wal"
)

// DurableConfig locates and tunes an index's durability directory.
type DurableConfig struct {
	// Dir holds the checkpoints and WAL segments; created if missing.
	Dir string
	// Fsync is the WAL sync policy: "always" (default — acknowledged
	// mutations are on disk), "interval" (group fsync every FsyncInterval;
	// a crash may lose the last interval's acknowledged mutations) or
	// "never" (the OS decides; fastest, weakest).
	Fsync string
	// FsyncInterval is the flush period under Fsync "interval"
	// (default 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery is the number of logged mutations between automatic
	// checkpoints (0 = default 256).
	CheckpointEvery int
	// KeepCheckpoints is how many checkpoint files survive collection
	// (0 = default 2: current + previous).
	KeepCheckpoints int
	// Compat additionally accepts legacy headerless checkpoint files, as
	// WithIndexCompat does for LoadIndex.
	Compat bool
}

// RecoveryInfo summarizes what OpenDurableIndex found and repaired: the
// checkpoint served as the base, rejected checkpoint files, the number of
// WAL records replayed, any torn-tail truncation, and the recovered
// version. Its String method renders the one-line summary rrqd logs.
type RecoveryInfo = index.Recovery

// OpenDurableIndex opens (or seeds) a durable index rooted at dc.Dir:
// the newest checkpoint passing validation is loaded, the WAL tail is
// replayed on top — truncating a torn or corrupt tail instead of failing —
// and the recovered state is immediately re-checkpointed so a crash loop
// never replays the same tail twice. When the directory holds no usable
// checkpoint, seed supplies the dataset for a fresh build (it is not
// called otherwise, so a restart needs no dataset source).
//
// Options configure the index exactly as in BuildIndex; mutation methods
// on the returned index append to the WAL before their epoch is
// published, and a mutation whose append fails is rejected whole. Close
// the index on shutdown; Checkpoint first for a replay-free restart.
func OpenDurableIndex(dc DurableConfig, seed func() (*Dataset, error), opts ...Option) (*Index, *RecoveryInfo, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	pol := wal.SyncAlways
	if dc.Fsync != "" {
		p, err := wal.ParseSyncPolicy(dc.Fsync)
		if err != nil {
			return nil, nil, err
		}
		pol = p
	}
	build := func() (*index.Index, error) {
		if seed == nil {
			return nil, errors.New("rrq: durable open: no usable checkpoint and no seed dataset")
		}
		ds, err := seed()
		if err != nil {
			return nil, err
		}
		return index.Build(ds.points(), ds.Dim(), index.Options{Kmax: cfg.kmax, TreeNodes: cfg.treeNodes})
	}
	var done func()
	if cfg.metrics != nil {
		done = timePhase(cfg.metrics, "phase.index.recover")
	}
	inner, dur, rec, err := index.OpenDurable(index.DurableOptions{
		Dir:             dc.Dir,
		Sync:            pol,
		SyncInterval:    dc.FsyncInterval,
		CheckpointEvery: dc.CheckpointEvery,
		KeepCheckpoints: dc.KeepCheckpoints,
		Compat:          dc.Compat || cfg.indexCompat,
		Metrics:         cfg.metrics,
	}, build)
	if done != nil {
		done()
	}
	if err != nil {
		return nil, nil, err
	}
	ix := &Index{inner: inner, cfg: cfg, dim: inner.Dim(), dur: dur}
	if cfg.cacheSize > 0 {
		ix.cache = cache.New(cfg.cacheSize)
	}
	if reg := cfg.metrics; reg != nil {
		reg.Counter("index.builds").Inc()
		reg.Gauge("index.epoch").Set(float64(inner.Version()))
	}
	return ix, rec, nil
}

// Durable reports whether the index carries a durability layer (it was
// opened with OpenDurableIndex).
func (ix *Index) Durable() bool { return ix.dur != nil }

// Checkpoint folds the current snapshot into a checkpoint immediately —
// the clean-shutdown path: after it returns, reopening the directory
// replays no WAL records. No-op on a non-durable index or when the last
// checkpoint already covers the current version.
func (ix *Index) Checkpoint() error {
	if ix.dur == nil {
		return nil
	}
	return ix.dur.Checkpoint()
}

// LastCheckpointVersion returns the version covered by the most recent
// checkpoint (0 on a non-durable index).
func (ix *Index) LastCheckpointVersion() uint64 {
	if ix.dur == nil {
		return 0
	}
	return ix.dur.LastCheckpointVersion()
}

// SyncWAL forces the write-ahead log to stable storage regardless of the
// configured fsync policy. No-op on a non-durable index.
func (ix *Index) SyncWAL() error {
	if ix.dur == nil {
		return nil
	}
	return ix.dur.Sync()
}

// Close releases the durability layer: the background flusher stops and
// the active WAL segment closes. The index keeps answering queries
// in-memory, but further mutations fail. No-op on a non-durable index.
func (ix *Index) Close() error {
	if ix.dur == nil {
		return nil
	}
	return ix.dur.Close()
}

// WithIndexCompat additionally accepts the legacy headerless index file
// format in LoadIndex and in durable checkpoint loading. The current
// format carries a magic number, version and checksum; legacy files have
// none, so a corrupt file can be indistinguishable from a legacy one —
// keep this off unless migrating files written before the header existed.
func WithIndexCompat(on bool) Option { return func(c *config) { c.indexCompat = on } }
