package rrq

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// A cache hit must return the byte-identical region of the fresh solve,
// and a mutation must invalidate it (version miss).
func TestIndexResultCacheHitAndVersionMiss(t *testing.T) {
	for _, d := range []int{2, 3} {
		ds, q := indexTestInstance(t, d, int64(300*d))
		reg := NewRegistry()
		ix, err := BuildIndex(ds, WithResultCache(16), WithMetrics(reg))
		if err != nil {
			t.Fatal(err)
		}

		first, err := ix.SolveContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if first.Cache != CacheMiss {
			t.Fatalf("d=%d: first solve cache status = %v, want %v", d, first.Cache, CacheMiss)
		}
		second, err := ix.SolveContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if second.Cache != CacheHit {
			t.Fatalf("d=%d: repeat solve cache status = %v, want %v", d, second.Cache, CacheHit)
		}
		fb, _ := first.Region.MarshalJSON()
		sb, _ := second.Region.MarshalJSON()
		if !bytes.Equal(fb, sb) {
			t.Fatalf("d=%d: cache-served region differs from fresh solve\nfresh: %s\n  hit: %s", d, fb, sb)
		}
		if reg.Counter("cache.hit").Value() != 1 || reg.Counter("cache.miss").Value() != 1 {
			t.Fatalf("d=%d: counters hit=%d miss=%d, want 1/1",
				d, reg.Counter("cache.hit").Value(), reg.Counter("cache.miss").Value())
		}

		// Mutation publishes a new epoch: the old entry can never match.
		if _, err := ix.Insert(ds.PointAt(0)); err != nil {
			t.Fatal(err)
		}
		third, err := ix.SolveContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if third.Cache != CacheMiss {
			t.Fatalf("d=%d: post-insert solve cache status = %v, want %v (version miss)", d, third.Cache, CacheMiss)
		}
		st := ix.Stats()
		if st.Cache == nil {
			t.Fatal("Stats().Cache nil with WithResultCache")
		}
		if st.Cache.Entries != 1 {
			t.Fatalf("d=%d: cache entries after prune = %d, want 1", d, st.Cache.Entries)
		}
	}
}

// Bound serving: a cached tighter neighbor answers as a sound inner bound,
// a looser one as an outer bound, and the result names its source.
func TestIndexResultCacheBounds(t *testing.T) {
	ds, q := indexTestInstance(t, 3, 777)
	ix, err := BuildIndex(ds, WithResultCache(16), WithCacheBounds(true))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	tight := Query{Q: q.Q, K: q.K - 1, Epsilon: q.Epsilon / 2}
	loose := Query{Q: q.Q, K: q.K + 1, Epsilon: q.Epsilon * 2}
	tres, err := ix.SolveContext(ctx, tight)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := ix.SolveContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if inner.Cache != CacheInner {
		t.Fatalf("cache status = %v, want %v", inner.Cache, CacheInner)
	}
	if inner.CacheSource == nil || inner.CacheSource.K != tight.K || inner.CacheSource.Epsilon != tight.Epsilon {
		t.Fatalf("inner bound source = %+v, want %+v", inner.CacheSource, tight)
	}
	// The served region is exactly the tighter query's answer.
	ib, _ := inner.Region.MarshalJSON()
	tb, _ := tres.Region.MarshalJSON()
	if !bytes.Equal(ib, tb) {
		t.Fatal("inner-bound region is not the cached neighbor's region")
	}
	// Soundness: every sampled member of the inner bound is in the true
	// region.
	truth, err := SolveContext(ctx, ds, q, WithSkybandPrefilter(true))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 20; seed++ {
		if u := inner.Region.Sample(seed); u != nil && !truth.Region.Contains(u) {
			t.Fatalf("inner bound contains non-member %v", u)
		}
	}

	// Evict the tight entry's epoch relevance by building a fresh index
	// with only the loose neighbor cached: the query then gets an outer
	// bound.
	ix2, err := BuildIndex(ds, WithResultCache(16), WithCacheBounds(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix2.SolveContext(ctx, loose); err != nil {
		t.Fatal(err)
	}
	outer, err := ix2.SolveContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Cache != CacheOuter {
		t.Fatalf("cache status = %v, want %v", outer.Cache, CacheOuter)
	}
	for seed := int64(1); seed <= 20; seed++ {
		if u := truth.Region.Sample(seed); u != nil && !outer.Region.Contains(u) {
			t.Fatalf("outer bound misses true member %v", u)
		}
	}
}

// ε=0 entries (reverse top-k answers) seed inner bounds for ε>0 queries on
// the same point.
func TestIndexCacheTopKSeedsRefinement(t *testing.T) {
	ds, q := indexTestInstance(t, 3, 555)
	ix, err := BuildIndex(ds, WithResultCache(16), WithCacheBounds(true))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	topk := Query{Q: q.Q, K: q.K, Epsilon: 0}
	if _, err := ix.SolveContext(ctx, topk); err != nil {
		t.Fatal(err)
	}
	res, err := ix.SolveContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != CacheInner {
		t.Fatalf("cache status = %v, want %v (ε=0 seed)", res.Cache, CacheInner)
	}
	if res.CacheSource == nil || res.CacheSource.Epsilon != 0 {
		t.Fatalf("source = %+v, want the ε=0 entry", res.CacheSource)
	}
}

// Approximate serving must bypass the cache in both directions: A-PC
// results are neither stored nor served.
func TestIndexCacheBypassesAPC(t *testing.T) {
	ds, q := indexTestInstance(t, 3, 444)
	ix, err := BuildIndex(ds, WithResultCache(16))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := ix.SolveContext(ctx, q, WithAlgorithm(APCAlgo), WithSamples(40))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != CacheBypass {
		t.Fatalf("A-PC cache status = %v, want %v", res.Cache, CacheBypass)
	}
	st := ix.Stats()
	if st.Cache.Entries != 0 {
		t.Fatalf("A-PC answer was cached: %d entries", st.Cache.Entries)
	}
	// An exact solve afterwards is a plain miss, not contaminated by the
	// A-PC call.
	exact, err := ix.SolveContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cache != CacheMiss {
		t.Fatalf("exact solve after A-PC = %v, want %v", exact.Cache, CacheMiss)
	}
}

// Query.Key must agree exactly with equality of (Q, K, Epsilon) and
// distinguish everything else.
func TestQueryKey(t *testing.T) {
	base := Query{Q: Point{0.4, 0.7}, K: 2, Epsilon: 0.1}
	same := Query{Q: Point{0.4, 0.7}, K: 2, Epsilon: 0.1}
	if base.Key() != same.Key() {
		t.Fatal("equal queries with different keys")
	}
	variants := []Query{
		{Q: Point{0.4, 0.7}, K: 3, Epsilon: 0.1},
		{Q: Point{0.4, 0.7}, K: 2, Epsilon: 0.2},
		{Q: Point{0.4, 0.71}, K: 2, Epsilon: 0.1},
		{Q: Point{0.4, 0.7, 0.5}, K: 2, Epsilon: 0.1},
		{Q: Point{0.4}, K: 2, Epsilon: 0.1},
	}
	seen := map[string]int{base.Key(): -1}
	for i, v := range variants {
		k := v.Key()
		if j, dup := seen[k]; dup {
			t.Fatalf("variant %d collides with %d", i, j)
		}
		seen[k] = i
	}
	if s := base.String(); s == "" || s == base.Key() {
		t.Fatalf("String() = %q, want a display form distinct from Key()", s)
	}
}

// A malformed query must fail with its *QueryError even when bound serving
// is on: k = 0 is ≤ every cached rank, so without up-front validation the
// cache would happily serve it an outer bound.
func TestIndexCacheRejectsInvalidQueryBeforeBoundServing(t *testing.T) {
	ds, q := indexTestInstance(t, 2, 888)
	ix, err := BuildIndex(ds, WithResultCache(16), WithCacheBounds(true))
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	if _, err := ix.SolveContext(context.Background(), q); err != nil {
		t.Fatalf("seed solve: %v", err)
	}
	for _, bad := range []Query{
		{Q: q.Q, K: 0, Epsilon: q.Epsilon},
		{Q: q.Q, K: q.K, Epsilon: 1.5},
		{Q: q.Q, K: q.K, Epsilon: -0.1},
	} {
		var qe *QueryError
		if _, err := ix.SolveContext(context.Background(), bad); !errors.As(err, &qe) {
			t.Fatalf("query %+v through a cached index: err=%v, want *QueryError", bad, err)
		}
	}
}
