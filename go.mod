module rrq

go 1.22
