package rrq

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// resilienceDataset is a 2-d market where LP-CTA does enough LP work to
// trip a small budget while Sweeping answers the same queries within it.
func resilienceDataset(t *testing.T) (*Dataset, Query) {
	t.Helper()
	ds := SyntheticDataset(Independent, 300, 2, 13)
	for seed := int64(1); seed < 30; seed++ {
		q := Query{Q: ds.RandomQuery(seed), K: 10, Epsilon: 0.2}
		res, err := SolveContext(context.Background(), ds, q, WithAlgorithm(LPCTAAlgo))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Region.IsEmpty() && res.Stats.LPSolves > 200 {
			return ds, q
		}
	}
	t.Fatal("precondition: no query makes LP-CTA work hard enough; pick new seeds")
	return nil, Query{}
}

// WithWorkBudget + WithFallback end to end: the expensive primary trips the
// budget, the query degrades to the exact fallback, and the Result records
// why — while the degraded region still matches the exact answer.
func TestWithWorkBudgetFallback(t *testing.T) {
	ds, q := resilienceDataset(t)
	reg := NewRegistry()
	res, err := SolveContext(context.Background(), ds, q,
		WithAlgorithm(LPCTAAlgo),
		WithWorkBudget(50),
		WithFallback(SweepingAlgo),
		WithMetrics(reg))
	if err != nil {
		t.Fatalf("err = %v, want degraded success", err)
	}
	deg := res.Degraded
	if deg == nil {
		t.Fatal("Result.Degraded = nil, want a degradation record")
	}
	if deg.Reason != DegradeBudget || deg.Solver != "Sweeping" {
		t.Fatalf("Degraded{%v, %q}, want {budget, Sweeping}", deg.Reason, deg.Solver)
	}
	var be *BudgetError
	if !errors.As(deg.Cause, &be) {
		t.Fatalf("cause %v, want *BudgetError", deg.Cause)
	}
	if c := reg.Counters()["solve.degraded.budget"]; c != 1 {
		t.Errorf("solve.degraded.budget = %d, want 1", c)
	}

	// The fallback is exact in 2-d: cross-validate against a plain solve.
	want, err := Solve(ds, q, WithAlgorithm(SweepingAlgo))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Region.Measure(20000)-want.Measure(20000)) > 1e-9 {
		t.Fatal("degraded region differs from the exact answer")
	}

	// Without the fallback, the same budget surfaces the typed error.
	_, err = SolveContext(context.Background(), ds, q,
		WithAlgorithm(LPCTAAlgo), WithWorkBudget(50))
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Limit != 50 {
		t.Fatalf("BudgetError.Limit = %d, want 50", be.Limit)
	}
}

// WithQueryTimeout applies per query, not per batch: a batch under a
// per-query timeout that each query individually fits completes fully.
func TestWithQueryTimeoutPerQuery(t *testing.T) {
	ds := SyntheticDataset(Independent, 60, 3, 7)
	queries := make([]Query, 12)
	for i := range queries {
		queries[i] = Query{Q: ds.RandomQuery(int64(i + 1)), K: 3, Epsilon: 0.1}
	}
	report, err := SolveBatch(context.Background(), ds, queries,
		WithAlgorithm(EPTAlgo), WithQueryTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 0 || report.Solved != len(queries) {
		t.Fatalf("solved=%d failed=%d, want all %d solved", report.Solved, report.Failed, len(queries))
	}
	if report.Degraded != 0 {
		t.Fatalf("Degraded = %d, want 0", report.Degraded)
	}
}

// A batch with a degrading query: BatchReport counts it in both Solved and
// Degraded, and the per-result Degraded record survives the trip through
// the public layer.
func TestSolveBatchDegradedCount(t *testing.T) {
	ds, hard := resilienceDataset(t)
	queries := []Query{
		{Q: ds.RandomQuery(101), K: 2, Epsilon: 0.05},
		hard,
		{Q: ds.RandomQuery(102), K: 2, Epsilon: 0.05},
	}
	report, err := SolveBatch(context.Background(), ds, queries,
		WithAlgorithm(LPCTAAlgo),
		WithWorkBudget(50),
		WithFallback(SweepingAlgo))
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 0 {
		for i, r := range report.Results {
			if r.Err != nil {
				t.Logf("q%d: %v", i, r.Err)
			}
		}
		t.Fatalf("failed = %d, want 0", report.Failed)
	}
	if report.Results[1].Degraded == nil {
		t.Fatal("hard query did not degrade")
	}
	if report.Degraded < 1 || report.Degraded > len(queries) {
		t.Fatalf("report.Degraded = %d", report.Degraded)
	}
	if report.Solved != len(queries) {
		t.Fatalf("solved = %d, want %d", report.Solved, len(queries))
	}
}

// The typed data errors of the hardened construction path.
func TestNewDatasetTypedErrors(t *testing.T) {
	_, err := NewDataset([][]float64{{0.5, 0.5}, {0.5, math.NaN()}})
	var de *DataError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DataError", err)
	}
	if de.Point != 1 || de.Attr != 1 {
		t.Fatalf("DataError{Point:%d Attr:%d}", de.Point, de.Attr)
	}
	_, err = NewDataset([][]float64{{0.5, 0.5}, {0.5}})
	if !errors.As(err, &de) {
		t.Fatalf("dimension mismatch err = %v, want *DataError", err)
	}
	if de.Point != 1 || de.Attr != -1 {
		t.Fatalf("DataError{Point:%d Attr:%d}, want {1, -1}", de.Point, de.Attr)
	}

	// Raw (non-normalized) data stays accepted at construction — the
	// construct→Normalize flow must keep working — but a non-positive value
	// reaching a solver is a typed *DataError.
	ds, err := NewDataset([][]float64{{5, -2}, {3, 4}})
	if err != nil {
		t.Fatalf("raw data rejected at construction: %v", err)
	}
	_, err = Solve(ds, Query{Q: Point{0.5, 0.5}, K: 1, Epsilon: 0.1})
	if !errors.As(err, &de) {
		t.Fatalf("solve on non-positive data: err = %v, want *DataError", err)
	}
	// After Normalize the same data lands in the solver domain and solves.
	if _, err := Solve(ds.Normalize(), Query{Q: Point{0.5, 0.5}, K: 1, Epsilon: 0.1}); err != nil {
		t.Fatalf("normalized dataset rejected: %v", err)
	}
}

// Non-positive query coordinates are rejected with a typed *QueryError.
func TestQueryPositivityValidation(t *testing.T) {
	ds := SyntheticDataset(Independent, 20, 2, 1)
	for _, bad := range []Point{{0, 0.5}, {-0.1, 0.5}} {
		_, err := Solve(ds, Query{Q: bad, K: 1, Epsilon: 0.1})
		var qe *QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("q=%v: err = %v, want *QueryError", bad, err)
		}
		if qe.Field != "q" {
			t.Fatalf("q=%v: QueryError.Field = %q, want q", bad, qe.Field)
		}
	}
}
