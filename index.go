package rrq

// Persistent index serving layer: the per-query preprocessing (validation,
// k-skyband prefilter, plane classification) promoted into a first-class,
// snapshot-versioned artifact. An Index is built once and then serves any
// number of queries from immutable snapshots; Insert and Delete publish new
// epochs copy-on-write, so concurrent readers keep answering on the epoch
// they started with. Answers are byte-identical to a from-scratch solve
// with the skyband prefilter enabled — the index changes where the
// preprocessing lives, never what a query returns.

import (
	"context"
	"io"
	"time"

	"rrq/internal/core"
	"rrq/internal/index"
	"rrq/internal/vec"
)

// Index answers reverse regret queries from a persistent, version-stamped
// snapshot of the dataset. Compared with Solve — which revalidates the
// dataset, recomputes the k-skyband and reclassifies every hyper-plane per
// call — an index snapshot holds all three, maintained incrementally across
// Insert/Delete, and shares the classified plane sets of repeated queries.
// All methods are safe for concurrent use.
type Index struct {
	inner *index.Index
	cfg   config
	dim   int
}

// WithKmax sets the rank ceiling of the index's rank-level tree (default 8).
// It does not bound Solve's K: queries with larger K are served through the
// ordinary solvers on the maintained skyband; only rank-tree serving
// (WithRankTreeServing) is limited to K ≤ kmax.
func WithKmax(k int) Option { return func(c *config) { c.kmax = k } }

// WithRankTreeNodes bounds the node budget of the index's lazily built
// rank-level tree (0 = default). A build exceeding the budget marks the
// tree unavailable for that snapshot; queries fall back to the ordinary
// solvers.
func WithRankTreeNodes(n int) Option { return func(c *config) { c.treeNodes = n } }

// WithRankTreeServing routes index queries with K ≤ kmax through the
// snapshot's rank-level tree (the structure generalized from the PBA+
// baseline), which answers without touching the dataset at all. The
// qualified region is the same set of preferences, but its convex
// decomposition — and therefore its JSON encoding — generally differs from
// the solver-produced one, which is why tree serving is off by default.
// Queries with K > kmax, or on snapshots whose tree exceeded its node
// budget, silently use the ordinary solver path.
func WithRankTreeServing(on bool) Option { return func(c *config) { c.treeServe = on } }

// BuildIndex validates the dataset once and constructs the first snapshot
// (epoch 1). The options fix the index shape (WithKmax, WithRankTreeNodes)
// and the default solving configuration — algorithm, resilience policy and
// observability — that Solve/SolveBatch inherit; per-call options override
// the defaults. With WithMetrics, the build maintains "index.builds" and
// the "index.epoch" gauge, times "phase.index.build", and every served
// query's plane-cache traffic shows as "index.planes.hit"/"index.planes.miss".
func BuildIndex(d *Dataset, opts ...Option) (*Index, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	var done func()
	if cfg.metrics != nil {
		done = timePhase(cfg.metrics, "phase.index.build")
	}
	inner, err := index.Build(d.points(), d.Dim(), index.Options{Kmax: cfg.kmax, TreeNodes: cfg.treeNodes})
	if done != nil {
		done()
	}
	if err != nil {
		return nil, err
	}
	ix := &Index{inner: inner, cfg: cfg, dim: d.Dim()}
	if reg := cfg.metrics; reg != nil {
		reg.Counter("index.builds").Inc()
		reg.Gauge("index.epoch").Set(float64(inner.Version()))
	}
	return ix, nil
}

// timePhase starts the named phase timer on reg and returns its closer.
func timePhase(reg *Registry, name string) func() {
	t := reg.Timer(name)
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Version returns the current epoch number: 1 after BuildIndex, incremented
// by every successful Insert or Delete.
func (ix *Index) Version() uint64 { return ix.inner.Version() }

// Len returns the current dataset size.
func (ix *Index) Len() int { return ix.inner.Len() }

// Dim returns the dataset dimension.
func (ix *Index) Dim() int { return ix.dim }

// Kmax returns the rank ceiling of the index's rank-level tree.
func (ix *Index) Kmax() int { return ix.inner.Kmax() }

// Insert adds a product and publishes a new epoch; queries already running
// keep serving the previous one. The dominator counts behind the skyband
// prefilter are maintained by delta (one scan), not recomputed. Returns the
// new version.
func (ix *Index) Insert(p Point) (uint64, error) {
	return ix.maintain("index.inserts", func() (uint64, error) {
		return ix.inner.Insert(vec.Vec(p))
	})
}

// Delete removes the i-th product (in insertion order) and publishes a new
// epoch. Deletions are as cheap as insertions — the delta-maintained counts
// retire the rebuild-on-delete the dynamic layer used to need. Returns the
// new version.
func (ix *Index) Delete(i int) (uint64, error) {
	return ix.maintain("index.deletes", func() (uint64, error) {
		return ix.inner.Delete(i)
	})
}

// maintain runs one mutation with the index's maintenance observability:
// the named counter, the "phase.index.maintain" timer and the
// "index.epoch" gauge.
func (ix *Index) maintain(counter string, op func() (uint64, error)) (uint64, error) {
	var done func()
	if ix.cfg.metrics != nil {
		done = timePhase(ix.cfg.metrics, "phase.index.maintain")
	}
	v, err := op()
	if done != nil {
		done()
	}
	if reg := ix.cfg.metrics; reg != nil && err == nil {
		reg.Counter(counter).Inc()
		reg.Gauge("index.epoch").Set(float64(v))
	}
	return v, err
}

// Prepared binds the current snapshot to a solver configuration, reusing
// the batch serving layer: the result answers Solve and SolveBatch with
// panic isolation, per-query timeouts/budgets and fallback chains exactly
// like a Prepare-d dataset, but with the snapshot's maintained prefilter
// and shared plane storage doing the preprocessing. The Prepared is pinned
// to the snapshot it was created from: later mutations do not affect it.
func (ix *Index) Prepared(opts ...Option) (*Prepared, error) {
	cfg := ix.cfg
	for _, o := range opts {
		o(&cfg)
	}
	pol, err := policyFor(cfg, ix.dim)
	if err != nil {
		return nil, err
	}
	snap := ix.inner.Snapshot()
	return &Prepared{prep: snap.Prepared(cfg.metrics), pol: pol, cfg: cfg, dim: ix.dim}, nil
}

// Solve answers one query on the current snapshot — the plain form of
// SolveContext.
func (ix *Index) Solve(q Query, opts ...Option) (*Region, error) {
	res, err := ix.SolveContext(context.Background(), q, opts...)
	if err != nil {
		return nil, err
	}
	return res.Region, nil
}

// SolveContext answers one query on the current snapshot under a context,
// with the index's default options merged with the per-call ones. The
// answer is byte-identical to SolveContext over the same points with
// WithSkybandPrefilter(true) — the snapshot serves the identical k-skyband
// in the identical order — unless WithRankTreeServing routes the query
// through the rank tree.
func (ix *Index) SolveContext(ctx context.Context, q Query, opts ...Option) (Result, error) {
	cfg := ix.cfg
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.treeServe {
		if res, ok, err := ix.treeSolve(ctx, cfg, q); ok {
			return res, err
		}
	}
	p, err := ix.Prepared(opts...)
	if err != nil {
		return Result{}, err
	}
	return p.Solve(ctx, q)
}

// treeSolve attempts to serve q from the snapshot rank tree. ok is false
// when the query is out of the tree's reach (K > kmax) or the snapshot's
// tree is unavailable (node budget exceeded) — the caller then uses the
// ordinary solver path. Validation errors and context aborts are returned
// with ok = true: they would fail the same way on any path.
func (ix *Index) treeSolve(ctx context.Context, cfg config, q Query) (Result, bool, error) {
	cq := q.toCore()
	if err := cq.Validate(ix.dim); err != nil {
		return Result{}, true, err
	}
	if q.K > ix.inner.Kmax() {
		return Result{}, false, nil
	}
	snap := ix.inner.Snapshot()
	octx := cfg.obsContext(ctx)
	tree, err := snap.Tree(octx)
	if err != nil {
		if ctx.Err() != nil || err == core.ErrDeadline {
			// The abort belongs to the caller, not the tree: report it.
			return Result{}, true, err
		}
		return Result{}, false, nil // tree over budget: use the solver path
	}
	start := time.Now()
	r, err := tree.QueryContext(octx, cq)
	elapsed := time.Since(start)
	if reg := cfg.metrics; reg != nil {
		reg.Counter("rrq.solves").Inc()
		if err != nil {
			reg.Counter("rrq.solve_errors").Inc()
		}
	}
	if err != nil {
		return Result{Elapsed: elapsed}, true, err
	}
	return Result{
		Region:  &Region{inner: r, q: cq},
		Stats:   Stats{Pieces: r.NumPieces()},
		Elapsed: elapsed,
	}, true, nil
}

// SolveBatch answers the queries concurrently on one snapshot of the index
// — every query of the batch sees the same epoch even while mutations run.
// Batch semantics (worker pool, per-query isolation, report aggregation)
// are those of Prepared.SolveBatch.
func (ix *Index) SolveBatch(ctx context.Context, queries []Query, opts ...Option) (*BatchReport, error) {
	p, err := ix.Prepared(opts...)
	if err != nil {
		return nil, err
	}
	return p.SolveBatch(ctx, queries), nil
}

// Save writes the current snapshot to w in a self-contained binary format:
// the points, index shape and epoch counter. Derived state (skyband views,
// plane sets, the rank tree) is recomputed on load rather than serialized,
// so saved indexes stay valid across cache-layout changes.
func (ix *Index) Save(w io.Writer) error { return ix.inner.Save(w) }

// LoadIndex restores an index written by Save and resumes it at the saved
// epoch. The options configure solving defaults exactly as in BuildIndex;
// the index shape (kmax, tree budget) comes from the file.
func LoadIndex(r io.Reader, opts ...Option) (*Index, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	inner, err := index.Load(r)
	if err != nil {
		return nil, err
	}
	if reg := cfg.metrics; reg != nil {
		reg.Counter("index.builds").Inc()
		reg.Gauge("index.epoch").Set(float64(inner.Version()))
	}
	return &Index{inner: inner, cfg: cfg, dim: inner.Dim()}, nil
}
