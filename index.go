package rrq

// Persistent index serving layer: the per-query preprocessing (validation,
// k-skyband prefilter, plane classification) promoted into a first-class,
// snapshot-versioned artifact. An Index is built once and then serves any
// number of queries from immutable snapshots; Insert and Delete publish new
// epochs copy-on-write, so concurrent readers keep answering on the epoch
// they started with. Answers are byte-identical to a from-scratch solve
// with the skyband prefilter enabled — the index changes where the
// preprocessing lives, never what a query returns.

import (
	"context"
	"io"
	"time"

	"rrq/internal/cache"
	"rrq/internal/core"
	"rrq/internal/geom"
	"rrq/internal/index"
	"rrq/internal/vec"
)

// Index answers reverse regret queries from a persistent, version-stamped
// snapshot of the dataset. Compared with Solve — which revalidates the
// dataset, recomputes the k-skyband and reclassifies every hyper-plane per
// call — an index snapshot holds all three, maintained incrementally across
// Insert/Delete, and shares the classified plane sets of repeated queries.
// All methods are safe for concurrent use.
type Index struct {
	inner *index.Index
	cfg   config
	dim   int
	cache *cache.Cache   // nil without WithResultCache
	dur   *index.Durable // nil unless opened with OpenDurableIndex
}

// WithKmax sets the rank ceiling of the index's rank-level tree (default 8).
// It does not bound Solve's K: queries with larger K are served through the
// ordinary solvers on the maintained skyband; only rank-tree serving
// (WithRankTreeServing) is limited to K ≤ kmax.
func WithKmax(k int) Option { return func(c *config) { c.kmax = k } }

// WithRankTreeNodes bounds the node budget of the index's lazily built
// rank-level tree (0 = default). A build exceeding the budget marks the
// tree unavailable for that snapshot; queries fall back to the ordinary
// solvers.
func WithRankTreeNodes(n int) Option { return func(c *config) { c.treeNodes = n } }

// WithRankTreeServing routes index queries with K ≤ kmax through the
// snapshot's rank-level tree (the structure generalized from the PBA+
// baseline), which answers without touching the dataset at all. The
// qualified region is the same set of preferences, but its convex
// decomposition — and therefore its JSON encoding — generally differs from
// the solver-produced one, which is why tree serving is off by default.
// Queries with K > kmax, or on snapshots whose tree exceeded its node
// budget, silently use the ordinary solver path.
func WithRankTreeServing(on bool) Option { return func(c *config) { c.treeServe = on } }

// BuildIndex validates the dataset once and constructs the first snapshot
// (epoch 1). The options fix the index shape (WithKmax, WithRankTreeNodes)
// and the default solving configuration — algorithm, resilience policy and
// observability — that Solve/SolveBatch inherit; per-call options override
// the defaults. With WithMetrics, the build maintains "index.builds" and
// the "index.epoch" gauge, times "phase.index.build", and every served
// query's plane-cache traffic shows as "index.planes.hit"/"index.planes.miss".
func BuildIndex(d *Dataset, opts ...Option) (*Index, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	var done func()
	if cfg.metrics != nil {
		done = timePhase(cfg.metrics, "phase.index.build")
	}
	inner, err := index.Build(d.points(), d.Dim(), index.Options{Kmax: cfg.kmax, TreeNodes: cfg.treeNodes})
	if done != nil {
		done()
	}
	if err != nil {
		return nil, err
	}
	ix := &Index{inner: inner, cfg: cfg, dim: d.Dim()}
	if cfg.cacheSize > 0 {
		ix.cache = cache.New(cfg.cacheSize)
	}
	if reg := cfg.metrics; reg != nil {
		reg.Counter("index.builds").Inc()
		reg.Gauge("index.epoch").Set(float64(inner.Version()))
	}
	return ix, nil
}

// timePhase starts the named phase timer on reg and returns its closer.
func timePhase(reg *Registry, name string) func() {
	t := reg.Timer(name)
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Version returns the current epoch number: 1 after BuildIndex, incremented
// by every successful Insert or Delete.
func (ix *Index) Version() uint64 { return ix.inner.Version() }

// Len returns the current dataset size.
func (ix *Index) Len() int { return ix.inner.Len() }

// Dim returns the dataset dimension.
func (ix *Index) Dim() int { return ix.dim }

// Kmax returns the rank ceiling of the index's rank-level tree.
func (ix *Index) Kmax() int { return ix.inner.Kmax() }

// CacheStats is a point-in-time view of an Index's result cache: occupancy
// (Entries/Capacity), exact-lookup traffic (Hits/Misses) and answers
// served as monotonicity bounds (BoundHits).
type CacheStats = cache.Stats

// IndexStats is the read-only introspection view returned by Index.Stats:
// the current epoch and dataset shape plus the occupancy of the snapshot's
// derived structures. It exists so callers (and the rrqd stats endpoint)
// can inspect an index without wiring a metrics Registry.
type IndexStats struct {
	// Version is the current epoch, Points/Dim the dataset shape, Kmax the
	// rank ceiling of the rank-level tree.
	Version uint64
	Points  int
	Dim     int
	Kmax    int
	// PlaneHits/PlaneMisses count shared-plane-storage traffic over the
	// index's lifetime; PlaneSets and SkybandViews are the current
	// snapshot's memoized plane sets and k-band views.
	PlaneHits    int64
	PlaneMisses  int64
	PlaneSets    int
	SkybandViews int
	// RankTreeNodes is the current snapshot's rank-tree size; zero until
	// the lazy build is demanded. RankTreeBuilt distinguishes "not yet
	// demanded" from "built with this many nodes".
	RankTreeNodes int
	RankTreeBuilt bool
	// Cache is the result cache's statistics, nil without WithResultCache.
	Cache *CacheStats
}

// Stats returns a consistent point-in-time view of the index: epoch, point
// count, plane-cache traffic, rank-tree occupancy and (when configured)
// result-cache statistics.
func (ix *Index) Stats() IndexStats {
	s := ix.inner.Stats()
	st := IndexStats{
		Version:       s.Version,
		Points:        s.Points,
		Dim:           s.Dim,
		Kmax:          s.Kmax,
		PlaneHits:     s.PlaneHits,
		PlaneMisses:   s.PlaneMisses,
		PlaneSets:     s.PlaneSets,
		SkybandViews:  s.SkybandViews,
		RankTreeNodes: s.RankTreeNodes,
		RankTreeBuilt: s.RankTreeBuilt,
	}
	if ix.cache != nil {
		cs := ix.cache.Stats()
		st.Cache = &cs
	}
	return st
}

// Insert adds a product and publishes a new epoch; queries already running
// keep serving the previous one. The dominator counts behind the skyband
// prefilter are maintained by delta (one scan), not recomputed. Returns the
// new version.
func (ix *Index) Insert(p Point) (uint64, error) {
	return ix.maintain("index.inserts", func() (uint64, error) {
		return ix.inner.Insert(vec.Vec(p))
	})
}

// Delete removes the i-th product (in insertion order) and publishes a new
// epoch. Deletions are as cheap as insertions — the delta-maintained counts
// retire the rebuild-on-delete the dynamic layer used to need. Returns the
// new version.
func (ix *Index) Delete(i int) (uint64, error) {
	return ix.maintain("index.deletes", func() (uint64, error) {
		return ix.inner.Delete(i)
	})
}

// maintain runs one mutation with the index's maintenance observability:
// the named counter, the "phase.index.maintain" timer and the
// "index.epoch" gauge.
func (ix *Index) maintain(counter string, op func() (uint64, error)) (uint64, error) {
	var done func()
	if ix.cfg.metrics != nil {
		done = timePhase(ix.cfg.metrics, "phase.index.maintain")
	}
	v, err := op()
	if done != nil {
		done()
	}
	if err == nil && ix.cache != nil {
		// Invalidation is free — the new epoch never matches old keys — but
		// pruning the dead generation now keeps it from occupying capacity.
		ix.cache.Prune(v)
	}
	if reg := ix.cfg.metrics; reg != nil && err == nil {
		reg.Counter(counter).Inc()
		reg.Gauge("index.epoch").Set(float64(v))
	}
	return v, err
}

// Prepared binds the current snapshot to a solver configuration, reusing
// the batch serving layer: the result answers Solve and SolveBatch with
// panic isolation, per-query timeouts/budgets and fallback chains exactly
// like a Prepare-d dataset, but with the snapshot's maintained prefilter
// and shared plane storage doing the preprocessing. The Prepared is pinned
// to the snapshot it was created from: later mutations do not affect it.
func (ix *Index) Prepared(opts ...Option) (*Prepared, error) {
	cfg := ix.cfg
	for _, o := range opts {
		o(&cfg)
	}
	return ix.preparedOn(ix.inner.Snapshot(), cfg)
}

// preparedOn binds one specific snapshot to a fully merged configuration —
// the primitive behind Prepared and the cache-aware solving path, which
// must pin the snapshot whose version keyed its lookup.
func (ix *Index) preparedOn(snap *index.Snapshot, cfg config) (*Prepared, error) {
	pol, err := policyFor(cfg, ix.dim)
	if err != nil {
		return nil, err
	}
	return &Prepared{prep: snap.Prepared(cfg.metrics), pol: pol, cfg: cfg, dim: ix.dim}, nil
}

// Solve answers one query on the current snapshot — the plain form of
// SolveContext.
func (ix *Index) Solve(q Query, opts ...Option) (*Region, error) {
	res, err := ix.SolveContext(context.Background(), q, opts...)
	if err != nil {
		return nil, err
	}
	return res.Region, nil
}

// SolveContext answers one query on the current snapshot under a context,
// with the index's default options merged with the per-call ones. The
// answer is byte-identical to SolveContext over the same points with
// WithSkybandPrefilter(true) — the snapshot serves the identical k-skyband
// in the identical order — unless WithRankTreeServing routes the query
// through the rank tree.
func (ix *Index) SolveContext(ctx context.Context, q Query, opts ...Option) (Result, error) {
	cfg := ix.cfg
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.treeServe && !cfg.anytimeActive() {
		if res, ok, err := ix.treeSolve(ctx, cfg, q); ok {
			return res, err
		}
	}
	snap := ix.inner.Snapshot()
	if cfg.anytimeActive() {
		return ix.anytimeSolve(ctx, cfg, snap, q)
	}
	if ix.cache != nil {
		return ix.cachedSolve(ctx, cfg, snap, q)
	}
	p, err := ix.preparedOn(snap, cfg)
	if err != nil {
		return Result{}, err
	}
	return p.Solve(ctx, q)
}

// cachedSolve serves q through the result cache, pinned to one snapshot:
// the version that keys every lookup is the version the fallback solve
// runs on, so a concurrent mutation can never mix epochs within one query.
// Exact hits are byte-identical to a fresh solve (the cache stores the
// fresh artifact, keyed by serving path); with WithCacheBounds a cached
// neighbor on the same query point may answer as a sound inner or outer
// bound. Approximate (A-PC) serving bypasses the cache entirely, and
// degraded answers are never stored.
func (ix *Index) cachedSolve(ctx context.Context, cfg config, snap *index.Snapshot, q Query) (Result, error) {
	algo := resolvedAlgo(cfg, ix.dim)
	cacheable := algo != APCAlgo
	cq := q.toCore()
	// Validate before any lookup: a malformed query (k = 0 is ≤ every
	// cached rank) could otherwise match a monotonicity neighbor and be
	// served a bound instead of its *QueryError.
	if err := cq.Validate(ix.dim); err != nil {
		return Result{}, err
	}
	version := snap.Version()
	if cacheable {
		start := time.Now()
		if r, ok := ix.cache.Get(version, algo.String(), cq); ok {
			return ix.cacheServe(cfg, "cache.hit", Result{
				Region:  &Region{inner: r, q: cq},
				Stats:   Stats{Pieces: r.NumPieces()},
				Elapsed: time.Since(start),
				Cache:   CacheHit,
			}), nil
		}
		if cfg.cacheBounds {
			if ans := ix.cache.Bound(version, cq); ans != nil {
				res := Result{
					Region:  &Region{inner: ans.Region, q: ans.From},
					Stats:   Stats{Pieces: ans.Region.NumPieces()},
					Elapsed: time.Since(start),
				}
				if ans.Kind == cache.Exact {
					// Same (k, ε) under a different serving path: the region
					// equals the true answer as a set.
					res.Cache = CacheHit
					return ix.cacheServe(cfg, "cache.hit", res), nil
				}
				if ans.Kind == cache.Inner {
					res.Cache = CacheInner
				} else {
					res.Cache = CacheOuter
				}
				src := Query{Q: Point(ans.From.Q), K: ans.From.K, Epsilon: ans.From.Eps}
				res.CacheSource = &src
				return ix.cacheServe(cfg, "cache.bound_served", res), nil
			}
		}
		if reg := cfg.metrics; reg != nil {
			reg.Counter("cache.miss").Inc()
		}
	}
	p, err := ix.preparedOn(snap, cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := p.Solve(ctx, q)
	if err != nil {
		return res, err
	}
	if cacheable && res.Degraded == nil && res.Region != nil {
		res.Cache = CacheMiss
		ix.cache.Put(version, algo.String(), cq, res.Region.inner)
	}
	return res, nil
}

// anytimeSolve serves q on the anytime tier, pinned to one snapshot. The
// result cache participates both ways: a cached answer on the same query
// point seeds the construction — an exact entry for the identical (k, ε)
// short-circuits the solve entirely (the true answer beats any cut), and
// an inner-bound entry's partitions warm-start it (the served region then
// contains the seed, so repeated anytime queries ratchet toward the full
// answer; CacheSource names the seed and "cache.warm_start" counts it) —
// and the cut's region is stored back as an inner-bound entry, never
// served as an exact hit (see cache.PutInner). Warm seeding needs only a
// configured cache, not WithCacheBounds: a bound-derived seed changes how
// fast the construction covers the region, never the soundness of what it
// returns.
func (ix *Index) anytimeSolve(ctx context.Context, cfg config, snap *index.Snapshot, q Query) (Result, error) {
	cq := q.toCore()
	// Validate before any lookup — same precedence as cachedSolve.
	if err := cq.Validate(ix.dim); err != nil {
		return Result{}, err
	}
	version := snap.Version()
	var warm []*geom.Cell
	var warmSrc *Query
	if ix.cache != nil {
		start := time.Now()
		if ans := ix.cache.Bound(version, cq); ans != nil {
			switch ans.Kind {
			case cache.Exact:
				// An exact artifact for this very (k, ε): the true answer,
				// already paid for. Serving it dominates every anytime cut.
				return ix.cacheServe(cfg, "cache.hit", Result{
					Region:  &Region{inner: ans.Region, q: cq},
					Stats:   Stats{Pieces: ans.Region.NumPieces()},
					Elapsed: time.Since(start),
					Cache:   CacheHit,
					Tier:    TierExact,
				}), nil
			case cache.Inner:
				// Sound seed: the cached region is contained in this query's
				// true region, so its partitions enter the construction as-is.
				// 2-d interval-backed regions carry no cells — skip those.
				if cells := ans.Region.Cells(); len(cells) > 0 {
					warm = cells
					src := Query{Q: Point(ans.From.Q), K: ans.From.K, Epsilon: ans.From.Eps}
					warmSrc = &src
				}
			}
			// An outer bound cannot seed an inner construction.
		}
	}
	p, err := ix.preparedOn(snap, cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := p.solveAnytime(ctx, q, warm, "cache.warm_start")
	if err != nil {
		return res, err
	}
	res.CacheSource = warmSrc
	if ix.cache != nil {
		res.Cache = CacheMiss
		ix.cache.PutInner(version, "anytime", cq, res.Region.inner)
	}
	return res, nil
}

// cacheServe finalizes a cache-served result: request accounting matches a
// solved query ("rrq.solves"), plus the named cache counter.
func (ix *Index) cacheServe(cfg config, counter string, res Result) Result {
	if reg := cfg.metrics; reg != nil {
		reg.Counter("rrq.solves").Inc()
		reg.Counter(counter).Inc()
	}
	return res
}

// treeSolve attempts to serve q from the snapshot rank tree. ok is false
// when the query is out of the tree's reach (K > kmax) or the snapshot's
// tree is unavailable (node budget exceeded) — the caller then uses the
// ordinary solver path. Validation errors and context aborts are returned
// with ok = true: they would fail the same way on any path.
func (ix *Index) treeSolve(ctx context.Context, cfg config, q Query) (Result, bool, error) {
	cq := q.toCore()
	if err := cq.Validate(ix.dim); err != nil {
		return Result{}, true, err
	}
	if q.K > ix.inner.Kmax() {
		return Result{}, false, nil
	}
	snap := ix.inner.Snapshot()
	octx := cfg.obsContext(ctx)
	tree, err := snap.Tree(octx)
	if err != nil {
		if ctx.Err() != nil || err == core.ErrDeadline {
			// The abort belongs to the caller, not the tree: report it.
			return Result{}, true, err
		}
		return Result{}, false, nil // tree over budget: use the solver path
	}
	start := time.Now()
	r, err := tree.QueryContext(octx, cq)
	elapsed := time.Since(start)
	if reg := cfg.metrics; reg != nil {
		reg.Counter("rrq.solves").Inc()
		if err != nil {
			reg.Counter("rrq.solve_errors").Inc()
		}
	}
	if err != nil {
		return Result{Elapsed: elapsed}, true, err
	}
	return Result{
		Region:  &Region{inner: r, q: cq},
		Stats:   Stats{Pieces: r.NumPieces()},
		Elapsed: elapsed,
	}, true, nil
}

// SolveBatch answers the queries concurrently on one snapshot of the index
// — every query of the batch sees the same epoch even while mutations run.
// Batch semantics (worker pool, per-query isolation, report aggregation)
// are those of Prepared.SolveBatch.
func (ix *Index) SolveBatch(ctx context.Context, queries []Query, opts ...Option) (*BatchReport, error) {
	p, err := ix.Prepared(opts...)
	if err != nil {
		return nil, err
	}
	return p.SolveBatch(ctx, queries), nil
}

// Save writes the current snapshot to w in a self-contained binary format:
// the points, index shape and epoch counter. Derived state (skyband views,
// plane sets, the rank tree) is recomputed on load rather than serialized,
// so saved indexes stay valid across cache-layout changes.
func (ix *Index) Save(w io.Writer) error { return ix.inner.Save(w) }

// LoadIndex restores an index written by Save and resumes it at the saved
// epoch. The options configure solving defaults exactly as in BuildIndex;
// the index shape (kmax, tree budget) comes from the file. Files are
// validated (magic, format version, checksum) and rejected with a typed
// error on mismatch; WithIndexCompat additionally accepts the legacy
// headerless format.
func LoadIndex(r io.Reader, opts ...Option) (*Index, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	load := index.Load
	if cfg.indexCompat {
		load = index.LoadCompat
	}
	inner, err := load(r)
	if err != nil {
		return nil, err
	}
	if reg := cfg.metrics; reg != nil {
		reg.Counter("index.builds").Inc()
		reg.Gauge("index.epoch").Set(float64(inner.Version()))
	}
	ix := &Index{inner: inner, cfg: cfg, dim: inner.Dim()}
	if cfg.cacheSize > 0 {
		ix.cache = cache.New(cfg.cacheSize)
	}
	return ix, nil
}
