package rrq

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// obsCase pairs a solver with a dataset and query it can handle, for the
// trace/metrics invariants that must hold across every algorithm.
type obsCase struct {
	name string
	ds   *Dataset
	q    Query
	opts []Option
}

func obsCases() []obsCase {
	ds2 := SyntheticDataset(Independent, 60, 2, 31)
	ds3 := SyntheticDataset(Independent, 40, 3, 32)
	q2 := Query{Q: ds2.RandomQuery(1), K: 3, Epsilon: 0.1}
	q3 := Query{Q: ds3.RandomQuery(1), K: 3, Epsilon: 0.1}
	return []obsCase{
		{"sweeping", ds2, q2, []Option{WithAlgorithm(SweepingAlgo)}},
		{"ept", ds3, q3, []Option{WithAlgorithm(EPTAlgo)}},
		{"apc", ds3, q3, []Option{WithAlgorithm(APCAlgo), WithSamples(80), WithSeed(7)}},
		{"lpcta", ds3, q3, []Option{WithAlgorithm(LPCTAAlgo)}},
		{"brute-2d", ds2, q2, []Option{WithAlgorithm(BruteForceAlgo)}},
		{"brute-nd", ds3, q3, []Option{WithAlgorithm(BruteForceAlgo)}},
	}
}

// TestTraceEventsMatchStats pins the central observability invariant: for
// every solver, the per-kind sums of the trace events of one solve equal
// the corresponding Stats counters exactly.
func TestTraceEventsMatchStats(t *testing.T) {
	for _, tc := range obsCases() {
		sums := make(map[EventKind]int)
		opts := append([]Option{WithTrace(func(e Event) { sums[e.Kind] += e.N })}, tc.opts...)
		res, err := SolveContext(context.Background(), tc.ds, tc.q, opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		st := res.Stats
		want := map[EventKind]int{
			EventPlaneBuilt:       st.PlanesBuilt,
			EventPlanePruned:      st.PlanesBuilt - st.PlanesInserted,
			EventNodeSplit:        st.Splits,
			EventLPSolve:          st.LPSolves,
			EventSampleClassified: st.Samples,
			EventPieceEmitted:     st.Pieces,
		}
		for kind, n := range want {
			if sums[kind] != n {
				t.Errorf("%s: %v events sum to %d, stats say %d (stats %+v, events %v)",
					tc.name, kind, sums[kind], n, st, sums)
			}
		}
		for kind := range sums {
			if _, ok := want[kind]; !ok {
				t.Errorf("%s: unexpected event kind %v", tc.name, kind)
			}
		}
	}
}

// TestSolveBatchStatsParity checks that a query solved alone and inside a
// batch reports identical Stats and that the batch aggregate sums them.
func TestSolveBatchStatsParity(t *testing.T) {
	for _, tc := range obsCases() {
		p, err := Prepare(tc.ds, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		single, err := p.Solve(context.Background(), tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rep := p.SolveBatch(context.Background(), []Query{tc.q, tc.q, tc.q})
		var agg Stats
		for i, r := range rep.Results {
			if r.Err != nil {
				t.Fatalf("%s: batch query %d: %v", tc.name, i, r.Err)
			}
			if r.Stats != single.Stats {
				t.Errorf("%s: batch query %d stats %+v differ from single-solve stats %+v",
					tc.name, i, r.Stats, single.Stats)
			}
			agg.Add(r.Stats)
		}
		if rep.Agg != agg {
			t.Errorf("%s: report aggregate %+v is not the sum of per-query stats %+v", tc.name, rep.Agg, agg)
		}
	}
}

// TestBatchTraceEventsMatchAggStats runs the trace invariant through the
// batch engine: the event sums over a whole batch (the WithTrace callback
// is serialized, so a plain map is fine) must equal the aggregate Stats.
func TestBatchTraceEventsMatchAggStats(t *testing.T) {
	ds := SyntheticDataset(Independent, 40, 3, 33)
	queries := make([]Query, 8)
	for i := range queries {
		queries[i] = Query{Q: ds.RandomQuery(int64(i + 1)), K: 3, Epsilon: 0.1}
	}
	sums := make(map[EventKind]int)
	rep, err := SolveBatch(context.Background(), ds, queries,
		WithAlgorithm(EPTAlgo), WithWorkers(4),
		WithTrace(func(e Event) { sums[e.Kind] += e.N }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("batch failed queries: %d", rep.Failed)
	}
	st := rep.Agg
	want := map[EventKind]int{
		EventPlaneBuilt:       st.PlanesBuilt,
		EventPlanePruned:      st.PlanesBuilt - st.PlanesInserted,
		EventNodeSplit:        st.Splits,
		EventLPSolve:          st.LPSolves,
		EventSampleClassified: st.Samples,
		EventPieceEmitted:     st.Pieces,
	}
	for kind, n := range want {
		if sums[kind] != n {
			t.Errorf("%v events sum to %d, aggregate stats say %d", kind, sums[kind], n)
		}
	}
}

// TestWithMetricsRegistry checks that WithMetrics records phase timers and
// serving counters, that BatchReport.Phases covers exactly one batch, and
// that the shared registry keeps accumulating across batches.
func TestWithMetricsRegistry(t *testing.T) {
	ds := SyntheticDataset(Independent, 40, 3, 34)
	queries := make([]Query, 4)
	for i := range queries {
		queries[i] = Query{Q: ds.RandomQuery(int64(i + 1)), K: 3, Epsilon: 0.1}
	}
	reg := NewRegistry()
	p, err := Prepare(ds, WithAlgorithm(EPTAlgo), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	rep := p.SolveBatch(context.Background(), queries)
	if rep.Phases == nil {
		t.Fatal("BatchReport.Phases is nil with WithMetrics set")
	}
	// Every query runs the plane-construction phase; queries whose effective
	// rank budget collapses return before the insert phase, so only the
	// plane phase has a guaranteed count.
	planes, ok := rep.Phases["phase.ept.planes"]
	if !ok {
		t.Fatalf("phase.ept.planes missing from report phases %v", rep.Phases)
	}
	if planes.Count != int64(len(queries)) {
		t.Errorf("phase.ept.planes ran %d times in the report, want %d", planes.Count, len(queries))
	}

	// A second identical batch must not inflate the first report, but the
	// user registry accumulates both.
	rep2 := p.SolveBatch(context.Background(), queries)
	if got := rep2.Phases["phase.ept.planes"].Count; got != planes.Count {
		t.Errorf("second report phase count %d, want %d (cross-batch contamination)", got, planes.Count)
	}
	if got := reg.Timers()["phase.ept.planes"].Count; got != 2*planes.Count {
		t.Errorf("user registry phase count %d, want %d", got, 2*planes.Count)
	}
	if got := reg.Counter("rrq.solves").Value(); got != 2*int64(len(queries)) {
		t.Errorf("rrq.solves = %d, want %d", got, 2*len(queries))
	}
	if got := reg.Counter("rrq.solve_errors").Value(); got != 0 {
		t.Errorf("rrq.solve_errors = %d, want 0", got)
	}

	// Single solves through the same Prepared count too, and the text
	// exposition carries every metric.
	if _, err := p.Solve(context.Background(), queries[0]); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("rrq.solves").Value(); got != 2*int64(len(queries))+1 {
		t.Errorf("rrq.solves after single solve = %d, want %d", got, 2*len(queries)+1)
	}
	text := reg.Text()
	for _, want := range []string{"rrq.solves:", "phase.ept.planes:"} {
		if !strings.Contains(text, want) {
			t.Errorf("registry text missing %q:\n%s", want, text)
		}
	}
}

// TestQueryValidateRejections is the rejection table of the centralized
// query validation: each malformed query must fail with a *QueryError
// naming the offending field, from every entry point.
func TestQueryValidateRejections(t *testing.T) {
	ds := SyntheticDataset(Independent, 20, 3, 35)
	good := Query{Q: ds.RandomQuery(1), K: 2, Epsilon: 0.1}
	cases := []struct {
		name  string
		q     Query
		field string
	}{
		{"k-zero", Query{Q: good.Q, K: 0, Epsilon: 0.1}, "k"},
		{"k-negative", Query{Q: good.Q, K: -3, Epsilon: 0.1}, "k"},
		{"eps-negative", Query{Q: good.Q, K: 2, Epsilon: -0.01}, "epsilon"},
		{"eps-one", Query{Q: good.Q, K: 2, Epsilon: 1}, "epsilon"},
		{"eps-above-one", Query{Q: good.Q, K: 2, Epsilon: 1.5}, "epsilon"},
		{"eps-nan", Query{Q: good.Q, K: 2, Epsilon: math.NaN()}, "epsilon"},
		{"q-nan", Query{Q: Point{0.5, math.NaN(), 0.5}, K: 2, Epsilon: 0.1}, "q"},
		{"q-inf", Query{Q: Point{0.5, math.Inf(1), 0.5}, K: 2, Epsilon: 0.1}, "q"},
		{"q-too-short", Query{Q: Point{0.5}, K: 2, Epsilon: 0.1}, "q"},
		{"dim-mismatch", Query{Q: Point{0.5, 0.5}, K: 2, Epsilon: 0.1}, "dim"},
	}
	check := func(t *testing.T, name string, err error, field string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: accepted", name)
			return
		}
		var qe *QueryError
		if !errors.As(err, &qe) {
			t.Errorf("%s: error %v is not a *QueryError", name, err)
			return
		}
		if qe.Field != field {
			t.Errorf("%s: field %q, want %q", name, qe.Field, field)
		}
	}
	for _, tc := range cases {
		// Standalone validation has no dataset: the dimension mismatch is
		// invisible to it and must pass.
		if tc.field == "dim" {
			if err := tc.q.Validate(); err != nil {
				t.Errorf("%s: standalone Validate rejected a well-formed query: %v", tc.name, err)
			}
		} else {
			check(t, tc.name+"/Validate", tc.q.Validate(), tc.field)
		}
		_, err := Solve(ds, tc.q)
		check(t, tc.name+"/Solve", err, tc.field)
		_, err = NewDynamicRegion(ds, tc.q)
		check(t, tc.name+"/NewDynamicRegion", err, tc.field)
	}

	// The PBA+ index validates through the same authority.
	ix, err := BuildPBAIndex(SyntheticDataset(Independent, 10, 2, 36), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ix.Query(Query{Q: Point{0.5, 0.5}, K: 0, Epsilon: 0.1})
	check(t, "pba-k-zero", err, "k")
	_, err = ix.Query(Query{Q: Point{0.5, 0.5, 0.5}, K: 1, Epsilon: 0.1})
	check(t, "pba-dim-mismatch", err, "dim")

	// And the good query really is good.
	if err := good.Validate(); err != nil {
		t.Errorf("good query rejected: %v", err)
	}
	if _, err := Solve(ds, good); err != nil {
		t.Errorf("good query failed to solve: %v", err)
	}
}

// TestTraceOnPBAIndex checks the index query path emits piece events.
func TestTraceOnPBAIndex(t *testing.T) {
	ds := SyntheticDataset(Independent, 12, 2, 37)
	ix, err := BuildPBAIndex(ds, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	pieces := 0
	reg := NewRegistry()
	r, err := ix.QueryContext(context.Background(),
		Query{Q: ds.RandomQuery(1), K: 2, Epsilon: 0.1},
		WithTrace(func(e Event) {
			if e.Kind == EventPieceEmitted {
				pieces += e.N
			}
		}),
		WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if pieces != r.NumPartitions() {
		t.Errorf("piece events sum to %d, region has %d partitions", pieces, r.NumPartitions())
	}
	if reg.Timers()["phase.pba.search"].Count != 1 {
		t.Errorf("phase.pba.search not timed: %v", reg.Timers())
	}
}
