package rrq

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// batchCase pairs an algorithm configuration with a dataset it can handle.
type batchCase struct {
	name string
	ds   *Dataset
	opts []Option
}

func batchCases(t *testing.T) []batchCase {
	t.Helper()
	ds2 := SyntheticDataset(Independent, 60, 2, 11)
	ds3 := SyntheticDataset(Independent, 30, 3, 12)
	return []batchCase{
		{"sweeping-2d", ds2, []Option{WithAlgorithm(SweepingAlgo)}},
		{"ept-3d", ds3, []Option{WithAlgorithm(EPTAlgo)}},
		{"apc-3d", ds3, []Option{WithAlgorithm(APCAlgo), WithSamples(100), WithSeed(7)}},
		{"lpcta-3d", ds3, []Option{WithAlgorithm(LPCTAAlgo)}},
		{"brute-3d", ds3, []Option{WithAlgorithm(BruteForceAlgo)}},
	}
}

func batchQueries(ds *Dataset, n int) []Query {
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = Query{Q: ds.RandomQuery(int64(i + 1)), K: 3, Epsilon: 0.1}
	}
	return qs
}

// TestSolveBatchMatchesSequential checks the core batch contract: for every
// algorithm and worker count, SolveBatch returns byte-identical JSON to N
// sequential Solve calls.
func TestSolveBatchMatchesSequential(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range batchCases(t) {
		queries := batchQueries(tc.ds, 6)
		want := make([][]byte, len(queries))
		for i, q := range queries {
			r, err := Solve(tc.ds, q, tc.opts...)
			if err != nil {
				t.Fatalf("%s: sequential Solve(%d): %v", tc.name, i, err)
			}
			js, err := r.MarshalJSON()
			if err != nil {
				t.Fatalf("%s: marshal %d: %v", tc.name, i, err)
			}
			want[i] = js
		}
		for _, w := range workerCounts {
			opts := append([]Option{WithWorkers(w)}, tc.opts...)
			report, err := SolveBatch(context.Background(), tc.ds, queries, opts...)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			if len(report.Results) != len(queries) {
				t.Fatalf("%s workers=%d: %d results for %d queries", tc.name, w, len(report.Results), len(queries))
			}
			if report.Solved != len(queries) || report.Failed != 0 {
				t.Fatalf("%s workers=%d: report counts solved=%d failed=%d", tc.name, w, report.Solved, report.Failed)
			}
			for i, res := range report.Results {
				if res.Err != nil {
					t.Fatalf("%s workers=%d query %d: %v", tc.name, w, i, res.Err)
				}
				js, err := res.Region.MarshalJSON()
				if err != nil {
					t.Fatalf("%s workers=%d marshal %d: %v", tc.name, w, i, err)
				}
				if !bytes.Equal(js, want[i]) {
					t.Errorf("%s workers=%d query %d: batch JSON differs from sequential\nbatch: %s\nseq:   %s",
						tc.name, w, i, js, want[i])
				}
			}
		}
	}
}

// TestSolveBatchErrorIsolation checks that one failing query does not affect
// its neighbours.
func TestSolveBatchErrorIsolation(t *testing.T) {
	ds := SyntheticDataset(Independent, 40, 3, 3)
	queries := []Query{
		{Q: ds.RandomQuery(1), K: 2, Epsilon: 0.1},
		{Q: ds.RandomQuery(2), K: 0, Epsilon: 0.1}, // invalid k
		{Q: Point{0.5, 0.5}, K: 2, Epsilon: 0.1},   // wrong dimension
		{Q: ds.RandomQuery(3), K: 2, Epsilon: 0.1},
	}
	for _, w := range []int{1, 2} {
		report, err := SolveBatch(context.Background(), ds, queries, WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		results := report.Results
		for _, i := range []int{0, 3} {
			if results[i].Err != nil {
				t.Errorf("workers=%d: valid query %d failed: %v", w, i, results[i].Err)
			}
			if results[i].Region == nil {
				t.Errorf("workers=%d: valid query %d has no region", w, i)
			}
		}
		for _, i := range []int{1, 2} {
			if results[i].Err == nil {
				t.Errorf("workers=%d: invalid query %d did not fail", w, i)
			}
			if results[i].Region != nil {
				t.Errorf("workers=%d: invalid query %d has a region", w, i)
			}
			var qe *QueryError
			if !errors.As(results[i].Err, &qe) {
				t.Errorf("workers=%d: invalid query %d error %v is not a *QueryError", w, i, results[i].Err)
			}
		}
		if report.Solved != 2 || report.Failed != 2 {
			t.Errorf("workers=%d: report counts solved=%d failed=%d, want 2/2", w, report.Solved, report.Failed)
		}
	}
}

// TestSolveBatchPreCanceled checks that an already-canceled context fails
// every query with context.Canceled and runs no solver work.
func TestSolveBatchPreCanceled(t *testing.T) {
	ds := SyntheticDataset(Independent, 40, 3, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := SolveBatch(ctx, ds, batchQueries(ds, 4), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range report.Results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("query %d: err = %v, want context.Canceled", i, res.Err)
		}
	}
}

// TestSolveBatchMidBatchCancel cancels a running batch and checks that every
// failure — in-flight aborts and unstarted queries alike — surfaces as
// context.Canceled, while already-finished queries keep their answers.
func TestSolveBatchMidBatchCancel(t *testing.T) {
	ds := SyntheticDataset(Independent, 3000, 4, 9)
	queries := batchQueries(ds, 16)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	report, err := SolveBatch(ctx, ds, queries, WithWorkers(1), WithAlgorithm(EPTAlgo))
	if err != nil {
		t.Fatal(err)
	}
	canceled := 0
	for i, res := range report.Results {
		switch {
		case res.Err == nil:
			if res.Region == nil {
				t.Errorf("query %d: no error but no region", i)
			}
		case errors.Is(res.Err, context.Canceled):
			canceled++
		default:
			t.Errorf("query %d: err = %v, want nil or context.Canceled", i, res.Err)
		}
	}
	// The workload takes far longer than 5ms in total, so at least the tail
	// of the batch must have been cut off.
	if canceled == 0 {
		t.Skip("batch finished before cancellation; nothing to assert")
	}
}

// TestSolveBatchDeadline checks that a context deadline surfaces as
// ErrDeadline for in-flight and unstarted queries alike.
func TestSolveBatchDeadline(t *testing.T) {
	ds := SyntheticDataset(Independent, 3000, 4, 9)
	queries := batchQueries(ds, 16)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	report, err := SolveBatch(ctx, ds, queries, WithWorkers(1), WithAlgorithm(EPTAlgo))
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for i, res := range report.Results {
		if res.Err == nil {
			continue
		}
		failed++
		if !errors.Is(res.Err, ErrDeadline) {
			t.Errorf("query %d: err = %v, want ErrDeadline", i, res.Err)
		}
	}
	if failed == 0 {
		t.Skip("batch finished inside 1ms; nothing to assert")
	}
}

// TestPreparedReuse checks the Prepared serving model: one preprocessing
// handle answering single queries and batches interchangeably, with the
// skyband prefilter preserving the region measure.
func TestPreparedReuse(t *testing.T) {
	ds := SyntheticDataset(Independent, 200, 3, 5)
	q := Query{Q: ds.RandomQuery(1), K: 4, Epsilon: 0.1}

	plain, err := Prepare(ds)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := plain.Solve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.PlanesBuilt == 0 {
		t.Error("stats not populated")
	}
	if res1.Elapsed <= 0 {
		t.Error("elapsed time not populated")
	}
	r1 := res1.Region
	// The same Prepared must serve repeated and batched calls identically.
	rep := plain.SolveBatch(context.Background(), []Query{q, q})
	for i, r := range rep.Results {
		if r.Err != nil {
			t.Fatalf("batch query %d: %v", i, r.Err)
		}
		a, _ := r.Region.MarshalJSON()
		b, _ := r1.MarshalJSON()
		if !bytes.Equal(a, b) {
			t.Errorf("batch query %d differs from direct solve", i)
		}
	}

	// The skyband prefilter may re-partition the region but must not change
	// the answer set.
	banded, err := Prepare(ds, WithSkybandPrefilter(true))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := banded.Solve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := r1.Measure(20000), res2.Region.Measure(20000)
	if diff := m1 - m2; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("skyband prefilter changed the region measure: %v vs %v", m1, m2)
	}
}

// TestKSkybandNonPositiveK pins the documented contract: the k ≤ 0 skyband
// is empty (no point is dominated by fewer than zero others), with the
// dimension preserved.
func TestKSkybandNonPositiveK(t *testing.T) {
	ds := table3Dataset(t)
	for _, k := range []int{0, -1, -100} {
		sb := ds.KSkyband(k)
		if sb.Len() != 0 {
			t.Errorf("KSkyband(%d).Len() = %d, want 0", k, sb.Len())
		}
		if sb.Dim() != ds.Dim() {
			t.Errorf("KSkyband(%d).Dim() = %d, want %d", k, sb.Dim(), ds.Dim())
		}
		if q := sb.RandomQuery(1); q != nil {
			t.Errorf("RandomQuery on the empty %d-skyband = %v, want nil", k, q)
		}
	}
	// Sanity: a positive k still filters rather than empties.
	if ds.KSkyband(1).Len() == 0 {
		t.Error("1-skyband of a non-degenerate dataset is empty")
	}
}
