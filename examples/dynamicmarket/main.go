// Dynamicmarket demonstrates the dynamic extension (the paper's stated
// future work): maintaining a product's prospective-customer region while
// competitors enter and leave the market.
package main

import (
	"fmt"
	"log"

	"rrq"
)

func main() {
	// A small 3-attribute market and our product q.
	ds, err := rrq.NewDataset([][]float64{
		{0.80, 0.30, 0.40},
		{0.30, 0.85, 0.35},
		{0.35, 0.30, 0.90},
		{0.55, 0.55, 0.50},
	})
	if err != nil {
		log.Fatal(err)
	}
	q := rrq.Query{Q: rrq.Point{0.65, 0.6, 0.55}, K: 2, Epsilon: 0.1}

	dyn, err := rrq.NewDynamicRegion(ds, q)
	if err != nil {
		log.Fatal(err)
	}
	show := func(event string) {
		r := dyn.Region()
		fmt.Printf("%-38s market=%d  share=%5.1f%%  partitions=%d\n",
			event, dyn.Len(), 100*r.Measure(30000), r.NumPartitions())
	}

	show("initial market")

	// A strong competitor launches: our share shrinks (incremental clip).
	if err := dyn.Insert(rrq.Point{0.75, 0.75, 0.70}); err != nil {
		log.Fatal(err)
	}
	show("competitor (0.75,0.75,0.70) launches")

	// Another one: with k=2 two strong rivals hurt badly.
	if err := dyn.Insert(rrq.Point{0.72, 0.78, 0.68}); err != nil {
		log.Fatal(err)
	}
	show("second competitor launches")

	// The first competitor exits (recall, discontinued…): share recovers.
	if err := dyn.Delete(4); err != nil {
		log.Fatal(err)
	}
	show("first competitor exits")

	// A flood of weak products changes nothing.
	for i := 0; i < 5; i++ {
		if err := dyn.Insert(rrq.Point{0.2, 0.2, 0.25}); err != nil {
			log.Fatal(err)
		}
	}
	show("five weak products launch")
}
