// Carmarket reproduces the paper's motivating scenario (Table 1): a
// manufacturer sizes the market for a new car model and sees why score-based
// evaluation (RRQ) finds prospective customers that rank-based evaluation
// (reverse top-k) dismisses.
package main

import (
	"fmt"
	"log"

	"rrq"
)

func main() {
	// Table 1: horsepower (×100 hp) and safety rating.
	cars := [][]float64{
		{4.3, 5.0}, // p1: balanced
		{4.5, 4.0}, // p2: strong, safe
		{5.0, 1.0}, // p3: muscle car
	}
	ds, err := rrq.NewDataset(cars)
	if err != nil {
		log.Fatal(err)
	}
	// The query car under evaluation.
	q := rrq.Point{4.5, 2.0}

	// A horsepower-focused customer: u1 = (0.9, 0.1).
	u1 := rrq.Vector{0.9, 0.1}
	fmt.Println("customer u1 = (0.9, 0.1):")
	for i, car := range cars {
		fmt.Printf("  f(p%d) = %.2f\n", i+1, score(car, u1))
	}
	fmt.Printf("  f(q)  = %.2f — q ranks LAST among the four cars\n", score(q, u1))
	fmt.Printf("  1-regret ratio of q: %.3f\n\n", rrq.RegretRatio(ds, q, 1, u1))

	// Rank-based view: who has q in their top-3? (reverse top-k, k=3)
	rtk, err := rrq.ReverseTopK(ds, q, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reverse top-3 market share (rank-based): %5.1f%%  — u1 qualifies: %v\n",
		100*rtk.Measure(50000), rtk.Contains(u1))

	// Score-based view: who scores q within 10%% of the best? (RRQ)
	res, err := rrq.SolveResult(ds, rrq.Query{Q: q, K: 1, Epsilon: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	region := res.Region
	fmt.Printf("RRQ (k=1, eps=0.1) market share (score-based): %5.1f%%  — u1 qualifies: %v\n",
		100*region.Measure(50000), region.Contains(u1))

	fmt.Println("\nThe rank-based query dismisses u1 even though q's score is within")
	fmt.Println("8% of the winner — the reverse regret query keeps that customer.")

	// Production-plan sweep: market share as the tolerance grows.
	fmt.Println("\nmarket share vs tolerance ε:")
	for _, eps := range []float64{0.0, 0.05, 0.1, 0.15, 0.2} {
		r, err := rrq.SolveResult(ds, rrq.Query{Q: q, K: 1, Epsilon: eps})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  eps=%.2f → %5.1f%%\n", eps, 100*r.Region.Measure(50000))
	}
}

func score(p []float64, u rrq.Vector) float64 {
	var s float64
	for i := range p {
		s += p[i] * u[i]
	}
	return s
}
