// Marketshare sizes the prospective market for several candidate designs on
// the NBA stand-in dataset: for each candidate query point it computes the
// share of the preference space on which the candidate is a (k,ε)-regret
// point, the production-planning use case from the paper's introduction.
package main

import (
	"fmt"
	"log"

	"rrq"
)

func main() {
	ds, err := rrq.RealDataset("NBA", 3000)
	if err != nil {
		log.Fatal(err)
	}
	// Reverse queries only ever involve the k-skyband.
	const k, eps = 5, 0.1
	market := ds.KSkyband(k)
	fmt.Printf("market: %d player profiles (k-skyband of %d), %d attributes\n\n",
		market.Len(), ds.Len(), ds.Dim())

	// Candidate "player designs" to evaluate: a balanced all-rounder, a
	// specialist, and a budget profile.
	candidates := map[string]rrq.Point{
		"all-rounder": {0.90, 0.90, 0.90, 0.90, 0.90},
		"specialist":  {0.99, 0.97, 0.55, 0.55, 0.55},
		"bench":       {0.70, 0.70, 0.70, 0.70, 0.70},
	}

	fmt.Printf("%-12s  %10s  %12s  %s\n", "candidate", "share", "partitions", "example preference")
	for name, q := range candidates {
		res, err := rrq.SolveResult(market, rrq.Query{Q: q, K: k, Epsilon: eps})
		if err != nil {
			log.Fatal(err)
		}
		region := res.Region
		example := "-"
		if u := region.Sample(1); u != nil {
			example = fmt.Sprintf("%.2f", []float64(u))
		}
		fmt.Printf("%-12s  %9.2f%%  %12d  %s\n",
			name, 100*region.Measure(30000), region.NumPartitions(), example)
	}

	fmt.Println("\nA large share means many preference profiles would shortlist the")
	fmt.Println("candidate: plan a big production run. A tiny share says niche.")

	// The share profile answers design questions in one pass: how tolerant
	// must customers be before the specialist reaches a third of the market?
	sp, err := rrq.NewShareProfile(market, candidates["specialist"], k, 20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nspecialist share curve (one sampling pass):")
	for _, eps := range []float64{0.0, 0.05, 0.1, 0.2, 0.3} {
		fmt.Printf("  eps=%.2f → %5.1f%%\n", eps, 100*sp.Share(eps))
	}
	fmt.Printf("  share reaches 33%% at eps ≈ %.3f\n", sp.EpsForShare(1.0/3))
}
