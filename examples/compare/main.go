// Compare runs every solver — Sweeping (2-d), E-PT, A-PC, LP-CTA and the
// PBA+ index — on the same queries, verifying that they agree and showing
// their relative cost, a miniature of the paper's §6.3 comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"rrq"
)

func main() {
	fmt.Println("--- 2-dimensional market (Island stand-in) ---")
	run2D()
	fmt.Println()
	fmt.Println("--- 4-dimensional market (Indep synthetic) ---")
	run4D()
}

func run2D() {
	ds, err := rrq.RealDataset("Island", 20000)
	if err != nil {
		log.Fatal(err)
	}
	q := rrq.Query{Q: ds.RandomQuery(7), K: 10, Epsilon: 0.1}
	market := ds.KSkyband(q.K)
	fmt.Printf("market %d points (skyband of %d), q=%v\n", market.Len(), ds.Len(), q.Q)

	for _, algo := range []rrq.Algorithm{rrq.SweepingAlgo, rrq.EPTAlgo, rrq.APCAlgo, rrq.LPCTAAlgo} {
		res, err := rrq.SolveResult(market, q, rrq.WithAlgorithm(algo), rrq.WithSamples(50))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v %8.3fms  share=%6.2f%%  partitions=%d\n",
			algo, float64(res.Elapsed.Microseconds())/1000,
			100*res.Region.Measure(30000), res.Region.NumPartitions())
	}
}

func run4D() {
	ds := rrq.SyntheticDataset(rrq.Independent, 50000, 4, 11)
	q := rrq.Query{Q: ds.RandomQuery(3), K: 5, Epsilon: 0.1}
	market := ds.KSkyband(q.K)
	fmt.Printf("market %d points (skyband of %d)\n", market.Len(), ds.Len())

	for _, algo := range []rrq.Algorithm{rrq.EPTAlgo, rrq.APCAlgo, rrq.LPCTAAlgo} {
		res, err := rrq.SolveResult(market, q, rrq.WithAlgorithm(algo), rrq.WithSamples(100))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v %8.3fms  share=%6.2f%%  partitions=%d\n",
			algo, float64(res.Elapsed.Microseconds())/1000,
			100*res.Region.Measure(30000), res.Region.NumPartitions())
	}

	// PBA+ amortizes an expensive index across queries.
	start := time.Now()
	ix, err := rrq.BuildPBAIndex(market, q.K, 300000)
	if err != nil {
		fmt.Printf("  %-10s preprocessing exceeded budget (%v) — exactly the paper's story\n", "PBA+", err)
		return
	}
	prep := time.Since(start)
	start = time.Now()
	region, err := ix.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-10s %8.3fms  share=%6.2f%%  (index build %v)\n",
		"PBA+", float64(time.Since(start).Microseconds())/1000,
		100*region.Measure(30000), prep.Round(time.Millisecond))
}
