// Quickstart: run a reverse regret query end to end on the paper's running
// example (Table 3) and inspect the answer region.
package main

import (
	"fmt"
	"log"

	"rrq"
)

func main() {
	// The market: three products with two attributes each, already
	// normalized to (0,1].
	ds, err := rrq.NewDataset([][]float64{
		{0.20, 0.92}, // p1
		{0.70, 0.54}, // p2
		{0.60, 0.30}, // p3
	})
	if err != nil {
		log.Fatal(err)
	}

	// Which customers would seriously consider q = (0.4, 0.7)? We accept
	// any preference under which q scores within 10% of the 2nd-best
	// product (k = 2, ε = 0.1).
	query := rrq.Query{Q: rrq.Point{0.4, 0.7}, K: 2, Epsilon: 0.1}
	res, err := rrq.SolveResult(ds, query)
	if err != nil {
		log.Fatal(err)
	}
	region := res.Region

	fmt.Printf("solved %v in %v\n", query, res.Elapsed)
	fmt.Printf("qualified partitions: %d\n", region.NumPartitions())
	fmt.Printf("preference-space share: %.1f%%\n", 100*region.Measure(50000))

	// In two dimensions the region is a set of weight intervals: a
	// preference is (t, 1−t) where t is the weight on attribute 1.
	for _, iv := range region.Intervals2D() {
		fmt.Printf("attr1 weight in [%.3f, %.3f] → q is a (2, 0.1)-regret point\n", iv[0], iv[1])
	}

	// Check a specific customer: Example 3.3 of the paper.
	u := rrq.Vector{0.5, 0.5}
	fmt.Printf("u = %v qualifies: %v (2-regret ratio %.3f)\n",
		u, region.Contains(u), rrq.RegretRatio(ds, query.Q, query.K, u))
}
