// Portfolio combines the forward and reverse regret operators: pick a
// product line with the regret-minimizing set (every customer finds
// something close to their favourite), then size each chosen product's
// market with the reverse regret query.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"rrq"
)

func main() {
	// The market: NBA stand-in profiles as "products".
	ds, err := rrq.RealDataset("NBA", 2000)
	if err != nil {
		log.Fatal(err)
	}

	// Forward step: a 5-product line covering every taste.
	line, mrr, err := rrq.RegretMinimizingSet(ds, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected a %d-product line; max regret ratio %.3f\n", len(line), mrr)
	fmt.Println("(every customer finds a line product within that factor of their favourite)")
	fmt.Println()

	// Reverse step: how much of the preference space does each line
	// product own at tolerance ε = mrr?
	eps := mrr
	if eps >= 1 {
		eps = 0.2
	}
	market := ds.KSkyband(1)
	fmt.Printf("%-8s  %-44s  %s\n", "product", "attributes", "market share")
	total := 0.0
	for _, idx := range line {
		p := ds.PointAt(idx)
		res, err := rrq.SolveResult(market, rrq.Query{Q: p, K: 1, Epsilon: eps})
		if err != nil {
			log.Fatal(err)
		}
		share := res.Region.Measure(30000)
		total += share
		fmt.Printf("#%-7d  %-44s  %6.2f%%\n", idx, fmtPoint(p), 100*share)
	}
	fmt.Println()
	fmt.Printf("shares sum to %.1f%% — above 100%% because regions overlap, and they\n", 100*total)
	fmt.Println("cover every preference: that is exactly the regret-minimizing guarantee.")
}

func fmtPoint(p rrq.Point) string {
	parts := make([]string, len(p))
	for i, x := range p {
		parts[i] = strconv.FormatFloat(x, 'f', 2, 64)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
