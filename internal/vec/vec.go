// Package vec provides small dense vector math used across the RRQ
// implementation: dot products, norms, affine-simplex helpers and tolerant
// sign classification.
//
// All utility vectors live on the standard (d-1)-simplex
// U = {u ∈ R^d : u[i] ≥ 0, Σ u[i] = 1}. Several routines here are specific
// to that embedding: TangentPart projects a hyper-plane normal into the
// simplex's tangent space so that Euclidean distances measured inside the
// affine hull of U are correct.
package vec

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Eps is the default absolute tolerance for geometric sign decisions.
// Coordinates are O(1) (datasets are normalized to (0,1]), so an absolute
// tolerance is appropriate.
const Eps = 1e-9

// Vec is a dense d-dimensional vector.
type Vec []float64

// New returns a zero vector of dimension d.
func New(d int) Vec { return make(Vec, d) }

// Of builds a vector from its components.
func Of(xs ...float64) Vec { return Vec(xs) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vec) Dim() int { return len(v) }

// Dot returns the inner product v·w. The vectors must have equal dimension.
//
// The loop is unrolled four-wide with a single accumulator: the summation
// order is exactly the sequential one, so results are bit-identical to the
// naive loop (geometric sign decisions must not depend on the kernel), while
// the slicing lets the compiler drop the per-element bounds checks.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dot of mismatched dims %d and %d", len(v), len(w)))
	}
	w = w[:len(v)]
	var s float64
	i := 0
	for ; i+3 < len(v); i += 4 {
		s += v[i] * w[i]
		s += v[i+1] * w[i+1]
		s += v[i+2] * w[i+2]
		s += v[i+3] * w[i+3]
	}
	for ; i < len(v); i++ {
		s += v[i] * w[i]
	}
	return s
}

// Add returns v + w as a new vector.
func (v Vec) Add(w Vec) Vec {
	c := v.Clone()
	for i := range c {
		c[i] += w[i]
	}
	return c
}

// Sub returns v − w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	c := v.Clone()
	for i := range c {
		c[i] -= w[i]
	}
	return c
}

// Scale returns a·v as a new vector.
func (v Vec) Scale(a float64) Vec {
	c := v.Clone()
	for i := range c {
		c[i] *= a
	}
	return c
}

// AddScaled returns v + a·w as a new vector.
func (v Vec) AddScaled(a float64, w Vec) Vec {
	c := v.Clone()
	for i := range c {
		c[i] += a * w[i]
	}
	return c
}

// Lerp returns (1−t)·v + t·w, the point at parameter t on segment [v,w].
func (v Vec) Lerp(w Vec, t float64) Vec {
	c := make(Vec, len(v))
	for i := range c {
		c[i] = v[i] + t*(w[i]-v[i])
	}
	return c
}

// Norm returns the Euclidean norm ‖v‖₂.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance ‖v−w‖₂. Unrolled like Dot, with the
// same strictly sequential summation order.
func (v Vec) Dist(w Vec) float64 {
	w = w[:len(v)]
	var s float64
	i := 0
	for ; i+3 < len(v); i += 4 {
		d0 := v[i] - w[i]
		s += d0 * d0
		d1 := v[i+1] - w[i+1]
		s += d1 * d1
		d2 := v[i+2] - w[i+2]
		s += d2 * d2
		d3 := v[i+3] - w[i+3]
		s += d3 * d3
	}
	for ; i < len(v); i++ {
		dd := v[i] - w[i]
		s += dd * dd
	}
	return math.Sqrt(s)
}

// Unit returns v/‖v‖. It panics if v is (numerically) zero.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n < Eps {
		panic("vec: unit of zero vector")
	}
	return v.Scale(1 / n)
}

// Sum returns Σ v[i].
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns Σ v[i] / d.
func (v Vec) Mean() float64 { return v.Sum() / float64(len(v)) }

// TangentPart projects w onto the tangent space of the simplex's affine
// hull {x : Σx = 1}: the returned vector is w − mean(w)·1. The Euclidean
// distance inside the affine hull from a point c (with Σc = 1) to the
// hyper-plane {u : u·w = 0} is |c·w| / ‖TangentPart(w)‖. If the tangent
// part is (numerically) zero the hyper-plane is parallel to the affine
// hull and never intersects the utility space.
func (v Vec) TangentPart() Vec {
	m := v.Mean()
	c := v.Clone()
	for i := range c {
		c[i] -= m
	}
	return c
}

// Equal reports whether v and w agree within tol in every coordinate.
func (v Vec) Equal(w Vec, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i, x := range v {
		if math.Abs(x-w[i]) > tol {
			return false
		}
	}
	return true
}

// Sign classifies x against the tolerance: −1 if x < −tol, +1 if x > tol,
// 0 otherwise.
func Sign(x, tol float64) int {
	switch {
	case x > tol:
		return 1
	case x < -tol:
		return -1
	default:
		return 0
	}
}

// String formats the vector with four decimals, e.g. "(0.2500, 0.7500)".
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4f", x)
	}
	b.WriteByte(')')
	return b.String()
}

// Basis returns the i-th standard basis vector of dimension d.
func Basis(d, i int) Vec {
	v := New(d)
	v[i] = 1
	return v
}

// SimplexCenter returns the barycenter (1/d, …, 1/d) of the utility space.
func SimplexCenter(d int) Vec {
	v := New(d)
	for i := range v {
		v[i] = 1 / float64(d)
	}
	return v
}

// OnSimplex reports whether v lies on the utility simplex within tol:
// all coordinates ≥ −tol and Σv within tol of 1.
func OnSimplex(v Vec, tol float64) bool {
	for _, x := range v {
		if x < -tol {
			return false
		}
	}
	return math.Abs(v.Sum()-1) <= tol
}

// RandSimplex samples a uniformly distributed point on the (d−1)-simplex
// using the standard exponential-spacings construction.
func RandSimplex(rng *rand.Rand, d int) Vec {
	v := make(Vec, d)
	var s float64
	for i := range v {
		e := rng.ExpFloat64()
		v[i] = e
		s += e
	}
	for i := range v {
		v[i] /= s
	}
	return v
}
