package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	v := Of(1, 2, 3)
	w := Of(4, 5, 6)
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched dims")
		}
	}()
	Of(1, 2).Dot(Of(1, 2, 3))
}

func TestAddSubScale(t *testing.T) {
	v := Of(1, 2)
	w := Of(3, -1)
	if got := v.Add(w); !got.Equal(Of(4, 1), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); !got.Equal(Of(-2, 3), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Of(2, 4), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.AddScaled(2, w); !got.Equal(Of(7, 0), 0) {
		t.Errorf("AddScaled = %v", got)
	}
	// Originals untouched.
	if !v.Equal(Of(1, 2), 0) || !w.Equal(Of(3, -1), 0) {
		t.Error("operations mutated their inputs")
	}
}

func TestLerp(t *testing.T) {
	a := Of(0, 1)
	b := Of(1, 0)
	mid := a.Lerp(b, 0.5)
	if !mid.Equal(Of(0.5, 0.5), 1e-15) {
		t.Fatalf("Lerp = %v", mid)
	}
	if !a.Lerp(b, 0).Equal(a, 0) || !a.Lerp(b, 1).Equal(b, 0) {
		t.Fatal("Lerp endpoints wrong")
	}
}

func TestNormDistUnit(t *testing.T) {
	v := Of(3, 4)
	if v.Norm() != 5 {
		t.Errorf("Norm = %v", v.Norm())
	}
	if got := v.Dist(Of(0, 0)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	u := v.Unit()
	if math.Abs(u.Norm()-1) > 1e-12 {
		t.Errorf("Unit norm = %v", u.Norm())
	}
}

func TestUnitZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Of(0, 0).Unit()
}

func TestTangentPart(t *testing.T) {
	w := Of(1, 2, 3)
	tp := w.TangentPart()
	if math.Abs(tp.Sum()) > 1e-12 {
		t.Fatalf("tangent part sum = %v, want 0", tp.Sum())
	}
	// A normal proportional to 1 has zero tangent part.
	ones := Of(2, 2, 2)
	if ones.TangentPart().Norm() > 1e-12 {
		t.Fatal("tangent part of constant vector should vanish")
	}
}

// Distance from a simplex point to plane {u·w=0} measured via TangentPart
// must match a direct in-hull construction in 2-d.
func TestTangentDistance2D(t *testing.T) {
	w := Of(0.22, -0.13) // hyper-plane from paper Example 3.4
	// Crossing parameter of u=(t,1−t): t* = w2/(w2−w1).
	ts := w[1] / (w[1] - w[0])
	cross := Of(ts, 1-ts)
	c := SimplexCenter(2)
	want := c.Dist(cross)
	got := math.Abs(c.Dot(w)) / w.TangentPart().Norm()
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("affine distance = %v, want %v", got, want)
	}
}

func TestSign(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{1, 1}, {-1, -1}, {0, 0}, {1e-12, 0}, {-1e-12, 0}, {1e-3, 1},
	}
	for _, c := range cases {
		if got := Sign(c.x, 1e-9); got != c.want {
			t.Errorf("Sign(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBasisAndCenter(t *testing.T) {
	b := Basis(3, 1)
	if !b.Equal(Of(0, 1, 0), 0) {
		t.Fatalf("Basis = %v", b)
	}
	c := SimplexCenter(4)
	if !OnSimplex(c, 1e-12) {
		t.Fatalf("center %v not on simplex", c)
	}
}

func TestOnSimplex(t *testing.T) {
	if !OnSimplex(Of(0.3, 0.7), 1e-9) {
		t.Error("(0.3,0.7) should be on simplex")
	}
	if OnSimplex(Of(0.3, 0.6), 1e-9) {
		t.Error("(0.3,0.6) should not be on simplex")
	}
	if OnSimplex(Of(-0.1, 1.1), 1e-9) {
		t.Error("negative coordinate should fail")
	}
}

func TestRandSimplexUniformProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for d := 2; d <= 6; d++ {
		mean := New(d)
		const trials = 4000
		for i := 0; i < trials; i++ {
			u := RandSimplex(rng, d)
			if !OnSimplex(u, 1e-9) {
				t.Fatalf("sample %v off simplex", u)
			}
			for j := range mean {
				mean[j] += u[j]
			}
		}
		for j := range mean {
			mean[j] /= trials
			if math.Abs(mean[j]-1/float64(d)) > 0.02 {
				t.Errorf("d=%d coord %d mean %v, want ~%v", d, j, mean[j], 1/float64(d))
			}
		}
	}
}

// Property: Dot is bilinear and symmetric.
func TestDotProperties(t *testing.T) {
	clamp := func(xs [4]float64) Vec {
		v := New(4)
		for i, x := range xs {
			v[i] = math.Mod(x, 1e3)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
		return v
	}
	f := func(a, b, c [4]float64, s float64) bool {
		v, w, x := clamp(a), clamp(b), clamp(c)
		s = math.Mod(s, 1e3)
		if math.IsNaN(s) {
			s = 0
		}
		if math.Abs(v.Dot(w)-w.Dot(v)) > 1e-6*(1+math.Abs(v.Dot(w))) {
			return false
		}
		lhs := v.Add(x.Scale(s)).Dot(w)
		rhs := v.Dot(w) + s*x.Dot(w)
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(rhs))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖v−w‖ satisfies the triangle inequality.
func TestDistTriangle(t *testing.T) {
	f := func(a, b, c [3]float64) bool {
		v, w, x := Vec(a[:]), Vec(b[:]), Vec(c[:])
		return v.Dist(w) <= v.Dist(x)+x.Dist(w)+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if got := Of(0.25, 0.75).String(); got != "(0.2500, 0.7500)" {
		t.Fatalf("String = %q", got)
	}
}
