package core

import (
	"math"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

// With no competitors crossing the segment, the whole space qualifies.
func TestSweepingWholeSegment(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.1, 0.1), vec.Of(0.2, 0.1)}
	q := Query{Q: vec.Of(0.9, 0.9), K: 1, Eps: 0.0}
	reg, err := Sweeping(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	ivs := reg.Intervals()
	if len(ivs) != 1 || math.Abs(ivs[0][0]) > 1e-9 || math.Abs(ivs[0][1]-1) > 1e-9 {
		t.Fatalf("intervals = %v, want [[0,1]]", ivs)
	}
	if m := reg.Measure(nil, 0); math.Abs(m-1) > 1e-9 {
		t.Fatalf("measure = %v, want 1", m)
	}
}

// Base planes (competitors scaled-dominating q) consume budget globally.
func TestSweepingBasePlanes(t *testing.T) {
	// p dominates q/(1−ε) in both attributes → its negative half-space
	// covers the whole segment.
	pts := []vec.Vec{vec.Of(0.9, 0.9), vec.Of(0.85, 0.88)}
	q := Query{Q: vec.Of(0.3, 0.3), K: 2, Eps: 0.1}
	reg, err := Sweeping(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Empty() {
		t.Fatalf("two base competitors at k=2 must empty the region, got %v", reg.Intervals())
	}
	// k=3 survives them.
	q.K = 3
	reg, err = Sweeping(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Empty() {
		t.Fatal("k=3 should leave the whole segment qualified")
	}
}

// Only inclusive planes: the region is an interval anchored at t = 0.
func TestSweepingOnlyInclusive(t *testing.T) {
	// Competitor much stronger in attribute 1 only: its plane's negative
	// half-space contains (1,0).
	pts := []vec.Vec{vec.Of(0.95, 0.1)}
	q := Query{Q: vec.Of(0.4, 0.6), K: 1, Eps: 0.0}
	reg, err := Sweeping(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	ivs := reg.Intervals()
	if len(ivs) != 1 || math.Abs(ivs[0][0]) > 1e-9 {
		t.Fatalf("intervals = %v, want one interval starting at 0", ivs)
	}
	// The crossing parameter: u·(q−p) = 0.
	w := q.Q.Sub(pts[0])
	want := w[1] / (w[1] - w[0])
	if math.Abs(ivs[0][1]-want) > 1e-9 {
		t.Fatalf("upper bound = %v, want %v", ivs[0][1], want)
	}
}

// Mirror case: only exclusive planes anchor the region at t = 1.
func TestSweepingOnlyExclusive(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.1, 0.95)}
	q := Query{Q: vec.Of(0.6, 0.4), K: 1, Eps: 0.0}
	reg, err := Sweeping(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	ivs := reg.Intervals()
	if len(ivs) != 1 || math.Abs(ivs[0][1]-1) > 1e-9 {
		t.Fatalf("intervals = %v, want one interval ending at 1", ivs)
	}
}

// Many coincident crossings must not break the counter bookkeeping.
func TestSweepingCoincidentCrossings(t *testing.T) {
	p := vec.Of(0.8, 0.2)
	pts := []vec.Vec{p, p.Clone(), p.Clone(), p.Clone()}
	for _, k := range []int{1, 2, 3, 4, 5} {
		q := Query{Q: vec.Of(0.5, 0.5), K: k, Eps: 0.0}
		want, err := BruteForce2D(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Sweeping(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		for i := 0; i < 200; i++ {
			u := vec.RandSimplex(rng, 2)
			_, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if want.Contains(u) != got.Contains(u) {
				t.Fatalf("k=%d: disagreement at %v", k, u)
			}
		}
	}
}

// The window can be empty even when both rankings exist.
func TestSweepingEmptyWindow(t *testing.T) {
	// One strong inclusive and one strong exclusive competitor whose
	// windows do not overlap at k=1.
	pts := []vec.Vec{vec.Of(0.95, 0.4), vec.Of(0.4, 0.95)}
	q := Query{Q: vec.Of(0.35, 0.35), K: 1, Eps: 0.0}
	want, err := BruteForce2D(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sweeping(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	if want.Empty() != got.Empty() {
		t.Fatalf("emptiness mismatch: brute=%v sweep=%v", want.Intervals(), got.Intervals())
	}
}

func TestKthSmallest(t *testing.T) {
	xs := []float64{0.5, 0.1, 0.9, 0.3}
	if got := kthSmallest(xs, 1); got != 0.1 {
		t.Fatalf("1st smallest = %v", got)
	}
	if got := kthSmallest(xs, 4); got != 0.9 {
		t.Fatalf("4th smallest = %v", got)
	}
}
