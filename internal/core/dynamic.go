package core

import (
	"fmt"

	"rrq/internal/geom"
	"rrq/internal/vec"
)

// Dynamic maintains the answer to one reverse regret query over a dataset
// that changes — the paper's stated future work (§7). Point insertions are
// handled incrementally: a new product adds one hyper-plane, which can only
// shrink the qualified region, so the maintained cells are clipped and
// their counters raised in place. Deletions can grow the region back in
// area the structure no longer tracks, so they trigger a recomputation
// (amortized via batching: the rebuild is deferred until the next Region
// call).
type Dynamic struct {
	q   Query
	d   int
	pts []vec.Vec

	// cells with their exact negative-coverage counts, valid when !dirty.
	cells []dynCell
	dirty bool
}

type dynCell struct {
	cell *geom.Cell
	neg  int // negative half-spaces covering the cell (including base planes)
}

// NewDynamic builds the initial answer for query q over pts.
func NewDynamic(pts []vec.Vec, q Query) (*Dynamic, error) {
	d := q.Q.Dim()
	if err := q.Validate(d); err != nil {
		return nil, err
	}
	dyn := &Dynamic{q: q, d: d}
	for _, p := range pts {
		if p.Dim() != d {
			return nil, errDimMismatch(d, p.Dim())
		}
		dyn.pts = append(dyn.pts, p.Clone())
	}
	dyn.rebuild()
	return dyn, nil
}

// Len returns the current dataset size.
func (dyn *Dynamic) Len() int { return len(dyn.pts) }

// rebuild recomputes the cells and counters from scratch via an eager
// arrangement walk. Cells reaching k negative half-spaces are pruned: an
// insertion can only raise counters, so they can never requalify. The
// Lemma 5.2 hyper-plane reduction applies here too: a dropped plane can
// only cover cells that its k dominating (kept) planes already disqualify,
// including any sub-cells carved out by future insertions, so qualified
// counters stay exact.
func (dyn *Dynamic) rebuild() {
	ps := buildPlanes(dyn.pts, dyn.q)
	k := dyn.q.K
	dyn.cells = dyn.cells[:0]
	dyn.dirty = false
	if ps.base >= k {
		return
	}
	planes := reduceAndOrderPlanes(ps.crossing, k-ps.base)
	work := []dynCell{{cell: geom.NewSimplex(dyn.d), neg: ps.base}}
	for _, h := range planes {
		next := work[:0:0]
		for _, e := range work {
			switch e.cell.Relation(h) {
			case geom.RelNeg:
				e.neg++
				if e.neg < k {
					next = append(next, e)
				}
			case geom.RelPos:
				next = append(next, e)
			case geom.RelCross:
				neg, pos := e.cell.Split(h)
				if neg != nil && e.neg+1 < k {
					next = append(next, dynCell{neg, e.neg + 1})
				}
				if pos != nil {
					next = append(next, dynCell{pos, e.neg})
				}
			}
		}
		work = next
	}
	dyn.cells = work
}

// Insert adds a product and updates the answer incrementally: the new
// hyper-plane clips the qualified cells and bumps their counters. Cost is
// proportional to the current number of qualified cells.
func (dyn *Dynamic) Insert(p vec.Vec) error {
	if p.Dim() != dyn.d {
		return errDimMismatch(dyn.d, p.Dim())
	}
	dyn.pts = append(dyn.pts, p.Clone())
	if dyn.dirty {
		return nil // a rebuild is pending anyway
	}
	w := dyn.q.Q.AddScaled(-(1 - dyn.q.Eps), p)
	negAny, posAny := false, false
	for _, x := range w {
		if x > geom.Tol {
			posAny = true
		} else if x < -geom.Tol {
			negAny = true
		}
	}
	switch {
	case !negAny:
		return nil // the new product never counts against q
	case !posAny:
		// Covers everything: every cell's counter rises by one.
		k := dyn.q.K
		kept := dyn.cells[:0]
		for _, e := range dyn.cells {
			e.neg++
			if e.neg < k {
				kept = append(kept, e)
			}
		}
		dyn.cells = kept
		return nil
	}
	h := geom.NewHyperplane(w, len(dyn.pts)-1)
	k := dyn.q.K
	next := dyn.cells[:0:0]
	for _, e := range dyn.cells {
		switch e.cell.Relation(h) {
		case geom.RelNeg:
			e.neg++
			if e.neg < k {
				next = append(next, e)
			}
		case geom.RelPos:
			next = append(next, e)
		case geom.RelCross:
			neg, pos := e.cell.Split(h)
			if neg != nil && e.neg+1 < k {
				next = append(next, dynCell{neg, e.neg + 1})
			}
			if pos != nil {
				next = append(next, dynCell{pos, e.neg})
			}
		}
	}
	dyn.cells = next
	return nil
}

// Delete removes the product at index i (in insertion order). The region
// may grow, which the incremental structure cannot express, so the next
// Region call rebuilds. Consecutive deletes share one rebuild.
func (dyn *Dynamic) Delete(i int) error {
	if i < 0 || i >= len(dyn.pts) {
		return fmt.Errorf("core: delete index %d out of range [0,%d)", i, len(dyn.pts))
	}
	dyn.pts = append(dyn.pts[:i], dyn.pts[i+1:]...)
	dyn.dirty = true
	return nil
}

// Region returns the current answer, rebuilding first if deletions are
// pending.
func (dyn *Dynamic) Region() *Region {
	if dyn.dirty {
		dyn.rebuild()
	}
	if len(dyn.cells) == 0 {
		return emptyRegion(dyn.d)
	}
	cells := make([]*geom.Cell, len(dyn.cells))
	for i, e := range dyn.cells {
		cells[i] = e.cell
	}
	return NewDisjointCellRegion(dyn.d, cells)
}
