package core

import (
	"encoding/json"

	"rrq/internal/geom"
)

// regionJSON is the wire form of a Region: either intervals (d = 2 sweep
// results) or cells described by their half-space constraints. Vertices are
// included for convenience (plotting, debugging); membership can be decided
// from the constraints alone.
type regionJSON struct {
	Dim       int          `json:"dim"`
	Intervals [][2]float64 `json:"intervals,omitempty"`
	Cells     []cellJSON   `json:"cells,omitempty"`
}

type cellJSON struct {
	Constraints []constraintJSON `json:"constraints"`
	Vertices    [][]float64      `json:"vertices"`
}

type constraintJSON struct {
	Normal []float64 `json:"normal"` // unit normal of the hyper-plane
	Sign   int       `json:"sign"`   // +1 keeps u·normal ≥ 0, −1 keeps ≤ 0
}

// MarshalJSON encodes the region. The encoding is self-contained: a
// consumer can test membership of a utility vector u by checking
// sign·(u·normal) ≥ 0 for every constraint of some cell (or locating u[0]
// in an interval for 2-d sweep output).
func (r *Region) MarshalJSON() ([]byte, error) {
	out := regionJSON{Dim: r.dim, Intervals: r.intervals}
	if len(r.cells) > 0 {
		out.Cells = make([]cellJSON, 0, len(r.cells))
	}
	for _, c := range r.cells {
		// NumConstraints/NumVertices size the slices exactly without
		// materializing the constraint list twice.
		cj := cellJSON{
			Constraints: make([]constraintJSON, 0, c.NumConstraints()),
			Vertices:    make([][]float64, 0, c.NumVertices()),
		}
		for _, con := range c.Constraints() {
			cj.Constraints = append(cj.Constraints, constraintJSON{
				Normal: con.H.Normal,
				Sign:   con.Sign,
			})
		}
		for _, v := range c.Vertices() {
			cj.Vertices = append(cj.Vertices, v)
		}
		out.Cells = append(out.Cells, cj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a region previously produced by MarshalJSON. Cells
// are reconstructed as constraint sets with their stored vertices; the
// disjointness flag is conservatively dropped (measure falls back to
// Monte-Carlo in d ≥ 3).
func (r *Region) UnmarshalJSON(data []byte) error {
	var in regionJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	r.dim = in.Dim
	r.intervals = in.Intervals
	r.cells = nil
	r.disjoint = false
	for _, cj := range in.Cells {
		cell := geom.NewSimplex(in.Dim)
		for i, con := range cj.Constraints {
			h := geom.NewHyperplane(con.Normal, i)
			cell = cell.Clip(h, con.Sign)
			if cell == nil {
				// Numerically empty after round-trip; drop the cell.
				break
			}
		}
		if cell != nil {
			r.cells = append(r.cells, cell)
		}
	}
	return nil
}
