package core

// Resilient serving: panic isolation, per-query budgets and graceful
// degradation. SolvePolicy is the serving-layer contract — a primary solver
// plus an ordered fallback chain, a per-query wall-clock timeout and a
// work-unit budget — and SolvePolicy.Solve is the guarded entry every
// batch query runs through: panics become typed *SolveError values,
// timeouts and budget exhaustion re-run the query on the fallback chain
// (the paper's own degradation ladder: A-PC is a bounded-error
// approximation of E-PT, §5.2 vs §5.1), and a degraded answer is marked
// with a typed reason instead of surfacing an error.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"rrq/internal/faultinject"
	"rrq/internal/obs"
)

// SolveError is the typed wrapper for a panic recovered from a solver or
// one of its worker goroutines: which solver, which query of the batch
// (−1 outside a batch), the panic value and the goroutine stack. One
// poisoned query surfaces as a per-query *SolveError; it never takes down
// the batch or the process.
type SolveError struct {
	Solver     string
	QueryIndex int
	Panic      any
	Stack      []byte
}

func (e *SolveError) Error() string {
	if e.QueryIndex >= 0 {
		return fmt.Sprintf("core: solver %s panicked on query %d: %v", e.Solver, e.QueryIndex, e.Panic)
	}
	return fmt.Sprintf("core: solver %s panicked: %v", e.Solver, e.Panic)
}

// BudgetError reports that a solve exceeded its work budget (see
// ContextWithWorkBudget). Limit is the budget in work units; Spent is the
// amortized count at which the overrun was detected (0 when the error was
// injected rather than measured).
type BudgetError struct {
	Limit int64
	Spent int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: work budget exceeded (limit %d, spent ≥ %d)", e.Limit, e.Spent)
}

// workMeter is the shared work-budget account of one solve attempt. Every
// CtxChecker built under the attempt's context charges it in amortized
// chunks, so the budget bounds the attempt's total work across all its
// workers, not per goroutine.
type workMeter struct {
	limit int64
	used  atomic.Int64
}

// charge adds n work units and reports whether the budget is now exceeded.
func (m *workMeter) charge(n int64) bool {
	return m.used.Add(n) > m.limit
}

// meterKey is the private context key carrying the work meter.
type meterKey struct{}

// ContextWithWorkBudget returns a context whose solves abort with a
// *BudgetError after roughly limit work units — the same units the
// amortized cancellation checks count: partition-tree node visits, LP
// relation tests, sample scans. The bound is amortized (checked every
// mask+1 units per worker), so overruns are detected within one check
// interval. limit ≤ 0 returns ctx unchanged.
func ContextWithWorkBudget(ctx context.Context, limit int64) context.Context {
	if limit <= 0 {
		return ctx
	}
	return context.WithValue(ctx, meterKey{}, &workMeter{limit: limit})
}

// meterFrom extracts the work meter from ctx, or nil.
func meterFrom(ctx context.Context) *workMeter {
	if ctx == nil {
		return nil
	}
	m, _ := ctx.Value(meterKey{}).(*workMeter)
	return m
}

// DegradeReason classifies why a query was answered by a fallback solver
// instead of the primary.
type DegradeReason int

const (
	// DegradeTimeout: the primary exceeded the per-query timeout.
	DegradeTimeout DegradeReason = iota + 1
	// DegradeBudget: the primary exhausted its work budget.
	DegradeBudget
	// DegradeNumerical: the primary failed numerically (LP failure,
	// degenerate geometry) or with another retryable solver error.
	DegradeNumerical
)

func (r DegradeReason) String() string {
	switch r {
	case DegradeTimeout:
		return "timeout"
	case DegradeBudget:
		return "budget"
	case DegradeNumerical:
		return "numerical"
	default:
		return fmt.Sprintf("DegradeReason(%d)", int(r))
	}
}

// Degradation records that an answer came from the fallback chain: why the
// primary failed (Reason, Cause) and which solver produced the returned
// region.
type Degradation struct {
	Reason DegradeReason
	Solver string // name of the fallback solver that answered
	Cause  error  // the primary solver's failure
}

// NumericalError is the typed wrapper for a numerical failure inside a
// solver — an LP that did not reach optimality, or degenerate geometry the
// solver cannot recover from. It is fallback-eligible under SolvePolicy.
type NumericalError struct {
	Solver string
	Err    error
}

func (e *NumericalError) Error() string {
	return fmt.Sprintf("core: %s numerical failure: %v", e.Solver, e.Err)
}

func (e *NumericalError) Unwrap() error { return e.Err }

// SolvePolicy bundles a primary solver with its resilience contract: an
// ordered fallback chain tried on timeout / budget exhaustion / numerical
// failure, a per-query wall-clock timeout and a per-attempt work budget
// (both also applied to each fallback attempt, freshly).
//
// Panics are isolated but never retried: a panic suggests an input the
// solver mishandles, and the serving layer's job is to report it as a
// typed *SolveError, not to paper over it. Validation errors
// (*QueryError) and parent-context cancellation are likewise never
// retried — the fallback would fail identically, or the caller is gone.
type SolvePolicy struct {
	Solver       Solver
	Fallbacks    []Solver
	QueryTimeout time.Duration // ≤ 0: no per-query timeout
	WorkBudget   int64         // ≤ 0: no work budget
}

// degradable reports whether err warrants a fallback attempt, and the
// reason it maps to.
func degradable(err error) (DegradeReason, bool) {
	var qe *QueryError
	var se *SolveError
	switch {
	case err == nil, errors.As(err, &qe), errors.As(err, &se):
		return 0, false
	case errors.Is(err, context.Canceled):
		return 0, false
	case errors.Is(err, ErrDeadline):
		return DegradeTimeout, true
	}
	var be *BudgetError
	if errors.As(err, &be) {
		return DegradeBudget, true
	}
	return DegradeNumerical, true
}

// Solve runs one query under the policy: the primary attempt first, then —
// on a degradable failure — each fallback in order, every attempt guarded
// against panics and given a fresh timeout and budget. queryIndex tags
// panic errors with the query's position in its batch (−1 standalone).
//
// Stats accumulate over every attempt (failed ones included), so the
// work counters — and their trace-event parity — account for everything
// the query actually cost. On success deg is nil for a primary answer and
// describes the degradation for a fallback answer. Counters on any
// metrics registry riding ctx record the failure modes: "solve.panics",
// "solve.degraded" (plus per-reason "solve.degraded.<reason>") and
// "solve.fallback_exhausted".
func (pol SolvePolicy) Solve(ctx context.Context, prep *Prepared, q Query, queryIndex int) (r *Region, st Stats, deg *Degradation, err error) {
	reg := obs.RegistryFrom(ctx)
	r, st, err = solveAttempt(ctx, pol, pol.Solver, prep, q, queryIndex, reg)
	if err == nil {
		return r, st, nil, nil
	}
	reason, ok := degradable(err)
	if !ok || len(pol.Fallbacks) == 0 || ctx.Err() != nil {
		return nil, st, nil, err
	}
	cause := err
	for _, fb := range pol.Fallbacks {
		fr, fst, ferr := solveAttempt(ctx, pol, fb, prep, q, queryIndex, reg)
		st.Add(fst)
		if ferr == nil {
			if reg != nil {
				reg.Counter("solve.degraded").Inc()
				reg.Counter("solve.degraded." + reason.String()).Inc()
			}
			return fr, st, &Degradation{Reason: reason, Solver: fb.Name(), Cause: cause}, nil
		}
		if ctx.Err() != nil {
			// The caller is gone; stop burning the chain.
			return nil, st, nil, MapContextErr(ctx.Err())
		}
		if _, ok := degradable(ferr); !ok {
			// A panic or validation error in the fallback is its own news.
			return nil, st, nil, ferr
		}
	}
	if reg != nil {
		reg.Counter("solve.fallback_exhausted").Inc()
	}
	return nil, st, nil, cause
}

// solveAttempt runs one guarded attempt of s: a fresh per-query timeout and
// work budget are layered onto ctx, the SolveStart fault point fires, and a
// panic anywhere under Solve — including the solver's own worker pools,
// which recover locally and return the panic as an error — is converted to
// a typed *SolveError.
func solveAttempt(ctx context.Context, pol SolvePolicy, s Solver, prep *Prepared, q Query, queryIndex int, reg *obs.Registry) (r *Region, st Stats, err error) {
	actx := ctx
	if pol.QueryTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(actx, pol.QueryTimeout)
		defer cancel()
	}
	actx = ContextWithWorkBudget(actx, pol.WorkBudget)
	defer func() {
		if rec := recover(); rec != nil {
			err = &SolveError{Solver: s.Name(), QueryIndex: queryIndex, Panic: rec, Stack: debug.Stack()}
		}
		var se *SolveError
		if errors.As(err, &se) {
			// Pool-recovered panics arrive without batch position (and the
			// shared helpers without a solver name); fill them in here.
			if se.QueryIndex < 0 {
				se.QueryIndex = queryIndex
			}
			if se.Solver == "" {
				se.Solver = s.Name()
			}
			if reg != nil {
				reg.Counter("solve.panics").Inc()
			}
		}
	}()
	if fi := faultinject.From(actx); fi != nil {
		if ferr := fi.Fire(faultinject.SolveStart, q.Q); ferr != nil {
			return nil, st, ferr
		}
	}
	r, st, err = s.Solve(actx, prep, q)
	return r, st, err
}
