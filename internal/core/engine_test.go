package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"rrq/internal/vec"
)

func TestCtxCheckerDisabledOnBackground(t *testing.T) {
	c := NewCtxChecker(context.Background(), 0xff)
	for i := 0; i < 10_000; i++ {
		if c.Stop() {
			t.Fatal("background checker reported stop")
		}
	}
	if c.Failed() || c.Err() != nil {
		t.Fatal("background checker failed")
	}
	c = NewCtxChecker(nil, 0xff)
	if c.Stop() {
		t.Fatal("nil-context checker reported stop")
	}
}

func TestCtxCheckerFailFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCtxChecker(ctx, 0xfff)
	// An already-expired context must trip before any amortized interval.
	if !c.Failed() || !c.Stop() {
		t.Fatal("expired context not detected at construction")
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", c.Err())
	}
}

func TestCtxCheckerDeadlineMapping(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := NewCtxChecker(ctx, 0)
	if !c.Stop() {
		t.Fatal("passed deadline not detected")
	}
	if !errors.Is(c.Err(), ErrDeadline) {
		t.Fatalf("Err() = %v, want ErrDeadline", c.Err())
	}
}

// TestEPTContextTimeoutResponsive proves the acceptance criterion: a
// context.WithTimeout abort returns within one amortized check interval, not
// after finishing the instance. The instance is sized so a full solve takes
// far longer than the timeout plus the slack we allow for the abort.
func TestEPTContextTimeoutResponsive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pts, q := randomInstance(rng, 4000, 5)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := EPTContext(ctx, pts, q, EPTOptions{})
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("instance solved inside 1ms; nothing to assert")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	// One amortized interval is 0xfff node visits — microseconds of work.
	// A generous bound still proves the abort did not run to completion.
	if elapsed > 2*time.Second {
		t.Fatalf("abort took %v, want within one amortized check interval", elapsed)
	}
}

func TestContextSolversMatchPlainCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts, q := randomInstance(rng, 60, 3)
	prep, err := Prepare(pts, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EPT(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Solver{EPTSolver{}, BruteForceSolver{}} {
		got, st, err := s.Solve(context.Background(), prep, q)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if st.PlanesBuilt == 0 {
			t.Errorf("%s: stats not populated", s.Name())
		}
		for i := 0; i < 200; i++ {
			u := vec.RandSimplex(rng, 3)
			_, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if got.Contains(u) != want.Contains(u) {
				t.Fatalf("%s diverged from EPT at %v", s.Name(), u)
			}
		}
	}
}

func TestPreparedValidation(t *testing.T) {
	if _, err := Prepare(nil, 1, false); err == nil {
		t.Error("dimension 1 accepted")
	}
	pts := []vec.Vec{vec.Of(0.5, 0.5), vec.Of(0.1, 0.2, 0.3)}
	if _, err := Prepare(pts, 2, false); err == nil {
		t.Error("ragged points accepted")
	}
}

func TestPreparedSkybandCache(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := randomInstance(rng, 200, 3)
	prep, err := Prepare(pts, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	b1 := prep.PointsFor(2)
	b2 := prep.PointsFor(2)
	if &b1[0] != &b2[0] {
		t.Error("k-skyband not cached across calls")
	}
	if len(b1) > len(pts) {
		t.Error("skyband larger than the dataset")
	}
	off, err := Prepare(pts, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := off.PointsFor(2); len(got) != len(pts) {
		t.Error("prefilter applied while disabled")
	}
}

func TestCoreSolveBatchOrderingAndIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts, q := randomInstance(rng, 50, 3)
	prep, err := Prepare(pts, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 9)
	for i := range queries {
		queries[i] = q
		queries[i].Q = vec.RandSimplex(rng, 3).Scale(0.9)
	}
	queries[4].K = 0 // invalid: must fail alone
	for _, w := range []int{1, 3, 0} {
		outs := SolveBatch(context.Background(), EPTSolver{}, prep, queries, w)
		if len(outs) != len(queries) {
			t.Fatalf("workers=%d: %d outcomes", w, len(outs))
		}
		for i, o := range outs {
			if i == 4 {
				if o.Err == nil {
					t.Errorf("workers=%d: invalid query succeeded", w)
				}
				continue
			}
			if o.Err != nil {
				t.Errorf("workers=%d query %d: %v", w, i, o.Err)
			}
		}
	}
}
