package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// parallelFor runs body(i) for every i in [0,n) across workers goroutines
// pulling indices from a shared atomic cursor. Each worker owns a private
// CtxChecker (the checker is not concurrency-safe) that samples ctx every
// mask+1 iterations; on cancellation the worker stops pulling and the first
// error observed (in worker order) is returned after all workers exit.
// Callers must ensure body(i) touches only state private to index i — the
// helper provides no ordering between bodies beyond the final barrier.
func parallelFor(ctx context.Context, workers, n int, mask uint32, body func(i int)) error {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := int64(0)
	werrs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := NewCtxChecker(ctx, mask)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if wc.Stop() {
					werrs[w] = wc.Err()
					return
				}
				body(i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range werrs {
		if err != nil {
			return err
		}
	}
	return nil
}
