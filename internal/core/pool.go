package core

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// parallelFor runs body(i) for every i in [0,n) across workers goroutines
// pulling indices from a shared atomic cursor. Each worker owns a private
// CtxChecker (the checker is not concurrency-safe) that samples ctx every
// mask+1 iterations; on cancellation the worker stops pulling and the first
// error observed (in worker order) is returned after all workers exit. A
// panic inside body is recovered into a typed *SolveError and returned the
// same way — one poisoned index stops its worker but never the process.
// Callers must ensure body(i) touches only state private to index i — the
// helper provides no ordering between bodies beyond the final barrier.
func parallelFor(ctx context.Context, workers, n int, mask uint32, body func(i int)) error {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := int64(0)
	werrs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					werrs[w] = &SolveError{QueryIndex: -1, Panic: rec, Stack: debug.Stack()}
				}
			}()
			wc := NewCtxChecker(ctx, mask)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if wc.Stop() {
					werrs[w] = wc.Err()
					return
				}
				body(i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range werrs {
		if err != nil {
			return err
		}
	}
	return nil
}
