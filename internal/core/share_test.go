package core

// Tests for batch-scoped cross-query sharing: the shared skyband substrate,
// per-(point, ε) plane groups and duplicate collapse must leave every
// query's answer byte-identical to an independent solve, across worker
// counts, solvers and prefilter settings.

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

// mixedBatch builds a batch that exercises every sharing tier: a few
// distinct query points, several ε values and ranks per point (so plane
// groups serve nested k), and guaranteed exact duplicates (dedup).
func mixedBatch(rng *rand.Rand, pts []vec.Vec, n int) []Query {
	qpts := make([]vec.Vec, 4)
	for i := range qpts {
		p := pts[rng.Intn(len(pts))].Clone()
		for j := range p {
			p[j] = math.Min(1, math.Max(0.01, p[j]+(rng.Float64()-0.5)*0.2))
		}
		qpts[i] = p
	}
	epss := []float64{0, 0.05, 0.12}
	out := make([]Query, 0, n+2)
	for i := 0; i < n; i++ {
		out = append(out, Query{
			Q:   qpts[rng.Intn(len(qpts))],
			K:   1 + rng.Intn(5),
			Eps: epss[rng.Intn(len(epss))],
		})
	}
	// Exact duplicates of the first and a middle query.
	out = append(out, out[0], out[n/2])
	return out
}

func regionBytes(t *testing.T, r *Region) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal region: %v", err)
	}
	return b
}

// TestBatchSharedByteIdentical is the sharing contract: for every solver,
// dimension, prefilter setting and worker count, a batch solved with
// Share+Dedup produces regions whose JSON encoding is byte-for-byte equal
// to independent per-query solves on the same Prepared.
func TestBatchSharedByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		d    int
		s    Solver
	}{
		{"sweeping-2d", 2, SweepingSolver{}},
		{"ept-3d", 3, EPTSolver{}},
		{"ept-4d", 4, EPTSolver{}},
	}
	for _, tc := range cases {
		for _, prefilter := range []bool{false, true} {
			name := tc.name + "/prefilter=off"
			if prefilter {
				name = tc.name + "/prefilter=on"
			}
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(tc.d)*1009 + 3))
				pts, _ := randomInstance(rng, 120, tc.d)
				queries := mixedBatch(rng, pts, 14)
				prep, err := Prepare(pts, tc.d, prefilter)
				if err != nil {
					t.Fatal(err)
				}
				want := make([][]byte, len(queries))
				for i, q := range queries {
					r, _, err := tc.s.Solve(context.Background(), prep, q)
					if err != nil {
						t.Fatalf("independent solve %d: %v", i, err)
					}
					want[i] = regionBytes(t, r)
				}
				for _, w := range []int{1, 2, 4} {
					outs := SolveBatchOptions(context.Background(), SolvePolicy{Solver: tc.s}, prep, queries,
						BatchOptions{Workers: w, Share: true, Dedup: true})
					for i, o := range outs {
						if o.Err != nil {
							t.Fatalf("workers=%d query %d: %v", w, i, o.Err)
						}
						got := regionBytes(t, o.Region)
						if !bytes.Equal(got, want[i]) {
							t.Fatalf("workers=%d query %d: shared region diverged\n got %s\nwant %s",
								w, i, got, want[i])
						}
					}
				}
			})
		}
	}
}

// TestBatchDedupCollapse pins the duplicate-collapse semantics: duplicate
// slots share the representative's region pointer (regions are immutable),
// copy its stats, report zero elapsed time and carry the Dedup mark, while
// the representative itself does not.
func TestBatchDedupCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts, q := randomInstance(rng, 80, 3)
	q2 := q
	q2.K = q.K%5 + 1
	q2.Q = vec.RandSimplex(rng, 3).Scale(0.9)
	queries := []Query{q, q, q, q2, q}
	prep, err := Prepare(pts, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3} {
		outs := SolveBatchOptions(context.Background(), SolvePolicy{Solver: EPTSolver{}}, prep, queries,
			BatchOptions{Workers: w, Share: true, Dedup: true})
		rep := outs[0]
		if rep.Dedup {
			t.Fatalf("workers=%d: representative slot marked Dedup", w)
		}
		if rep.Err != nil {
			t.Fatalf("workers=%d: representative failed: %v", w, rep.Err)
		}
		if outs[3].Dedup {
			t.Fatalf("workers=%d: distinct query marked Dedup", w)
		}
		for _, i := range []int{1, 2, 4} {
			o := outs[i]
			if !o.Dedup {
				t.Fatalf("workers=%d slot %d: duplicate not marked Dedup", w, i)
			}
			if o.Region != rep.Region {
				t.Fatalf("workers=%d slot %d: duplicate did not share the representative's region", w, i)
			}
			if o.Stats != rep.Stats {
				t.Fatalf("workers=%d slot %d: stats not copied from representative", w, i)
			}
			if o.Elapsed != 0 {
				t.Fatalf("workers=%d slot %d: duplicate reports nonzero elapsed %v", w, i, o.Elapsed)
			}
		}
	}
}

// TestClusterOrderProperties checks the dispatch clustering: the order stays
// a permutation, the result is deterministic, and all queries of one
// (point, ε) group end up adjacent with ascending k inside the group.
func TestClusterOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := randomInstance(rng, 40, 3)
	queries := mixedBatch(rng, pts, 20)
	keys := make([]string, len(queries))
	for i := range keys {
		keys[i] = queries[i].PointKey()
	}
	order := make([]int, len(queries))
	for i := range order {
		order[i] = i
	}
	clusterOrder(order, queries, keys)

	seen := make(map[int]bool, len(order))
	for _, i := range order {
		if i < 0 || i >= len(queries) || seen[i] {
			t.Fatalf("clusterOrder is not a permutation: %v", order)
		}
		seen[i] = true
	}

	again := make([]int, len(queries))
	for i := range again {
		again[i] = i
	}
	clusterOrder(again, queries, keys)
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("clusterOrder not deterministic: %v vs %v", order, again)
		}
	}

	type gk struct {
		p string
		e uint64
	}
	last := make(map[gk]int)
	for pos, i := range order {
		key := gk{queries[i].PointKey(), math.Float64bits(queries[i].Eps)}
		if prev, ok := last[key]; ok {
			if prev != pos-1 {
				t.Fatalf("group %v not contiguous: positions %d and %d", key, prev, pos)
			}
			if queries[order[prev]].K > queries[i].K {
				t.Fatalf("group %v not ascending in k at position %d", key, pos)
			}
		}
		last[key] = pos
	}
}

// TestShareViewBandsMatchPrepared verifies the shared skyband substrate:
// the batch view's per-k bands (derived from one capped count at the
// batch's maximum k) equal the Prepared's own cached per-k skybands, in
// membership and order, and a k past the batch range falls back cleanly.
func TestShareViewBandsMatchPrepared(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, _ := randomInstance(rng, 150, 3)
	// Duplicate some points so ties and repeated coordinates are exercised.
	pts = append(pts, pts[0].Clone(), pts[1].Clone(), pts[2].Clone())
	prep, err := Prepare(pts, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 6)
	for i := range queries {
		queries[i] = Query{Q: vec.RandSimplex(rng, 3).Scale(0.9), K: i + 1, Eps: 0.05}
	}
	qkeys := make([]string, len(queries))
	for i := range qkeys {
		qkeys[i] = queries[i].PointKey()
	}
	view, sv := prep.shareFor(queries, qkeys)
	if view == prep || sv == nil {
		t.Fatal("shareFor returned the base Prepared for a multi-query batch")
	}
	for k := 1; k <= 8; k++ { // 7, 8 are past the batch's kmax of 6
		want := prep.PointsFor(k)
		got := view.PointsFor(k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: band size %d, want %d", k, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i], 0) {
				t.Fatalf("k=%d: band[%d] = %v, want %v", k, i, got[i], want[i])
			}
		}
	}
}

// TestCappedCountsCache pins the cross-batch count cache: counts computed
// at a deeper rank serve shallower requests without recomputation (the
// slice is reused), and a deeper request replaces them.
func TestCappedCountsCache(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts, _ := randomInstance(rng, 60, 3)
	prep, err := Prepare(pts, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	c4 := prep.cappedCounts(4)
	c2 := prep.cappedCounts(2)
	if &c4[0] != &c2[0] {
		t.Error("shallower rank recomputed cached counts")
	}
	c6 := prep.cappedCounts(6)
	for i, c := range c6 {
		if c > 6 {
			t.Fatalf("count[%d] = %d exceeds cap 6", i, c)
		}
	}
}

// TestShareForPassThrough pins the cases where sharing must not interpose:
// single-query batches and index-backed Prepareds keep their own paths.
func TestShareForPassThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, q := randomInstance(rng, 30, 3)
	prep, err := Prepare(pts, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, sv := prep.shareFor([]Query{q}, []string{q.PointKey()}); got != prep || sv != nil {
		t.Error("single-query batch built a share view")
	}
	indexed := PrepareIndexed(pts, 3, func(k int) []vec.Vec { return pts }, nil)
	if got, sv := indexed.shareFor([]Query{q, q}, []string{q.PointKey(), q.PointKey()}); got != indexed || sv != nil {
		t.Error("index-backed Prepared was wrapped by a share view")
	}
}
