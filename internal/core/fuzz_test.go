package core

// Native fuzz targets. The seed corpus runs as part of the normal test
// suite; `go test -fuzz=FuzzSweepingVsBrute ./internal/core` explores
// further.

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

// decodeInstance deterministically derives a small 2-d instance from raw
// fuzz bytes: n points, a query, k and ε.
func decodeInstance(data []byte) ([]vec.Vec, Query, bool) {
	if len(data) < 8 {
		return nil, Query{}, false
	}
	seed := int64(binary.LittleEndian.Uint64(data[:8]))
	rng := rand.New(rand.NewSource(seed))
	n := 2 + len(data)%24
	pts := make([]vec.Vec, n)
	for i := range pts {
		pts[i] = vec.Of(0.01+0.99*rng.Float64(), 0.01+0.99*rng.Float64())
	}
	q := Query{
		Q:   vec.Of(0.01+0.99*rng.Float64(), 0.01+0.99*rng.Float64()),
		K:   1 + rng.Intn(6),
		Eps: math.Mod(rng.Float64(), 0.3),
	}
	return pts, q, true
}

// FuzzSweepingVsBrute cross-checks the linear-time sweep against the
// quadratic reference on arbitrary derived instances.
func FuzzSweepingVsBrute(f *testing.F) {
	f.Add([]byte("seed-one"))
	f.Add([]byte("another-seed-bytes"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, q, ok := decodeInstance(data)
		if !ok {
			return
		}
		want, err := BruteForce2D(pts, q)
		if err != nil {
			return
		}
		got, err := Sweeping(pts, q)
		if err != nil {
			t.Fatalf("Sweeping failed where brute force succeeded: %v", err)
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 50; i++ {
			u := vec.RandSimplex(rng, 2)
			_, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if want.Contains(u) != got.Contains(u) {
				t.Fatalf("disagreement at %v (k=%d ε=%v)", u, q.K, q.Eps)
			}
		}
	})
}

// FuzzAPCSound checks that A-PC never returns an unqualified preference.
func FuzzAPCSound(f *testing.F) {
	f.Add([]byte("apc-seed"), uint8(3))
	f.Add([]byte("zzzzzzzzz"), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, dimByte uint8) {
		if len(data) < 8 {
			return
		}
		d := 2 + int(dimByte)%3
		seed := int64(binary.LittleEndian.Uint64(data[:8]))
		rng := rand.New(rand.NewSource(seed))
		n := 3 + len(data)%20
		pts := make([]vec.Vec, n)
		for i := range pts {
			p := vec.New(d)
			for j := range p {
				p[j] = 0.01 + 0.99*rng.Float64()
			}
			pts[i] = p
		}
		qp := vec.New(d)
		for j := range qp {
			qp[j] = 0.01 + 0.99*rng.Float64()
		}
		q := Query{Q: qp, K: 1 + rng.Intn(4), Eps: math.Mod(rng.Float64(), 0.25)}
		reg, err := APC(pts, q, APCOptions{Samples: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			u := vec.RandSimplex(rng, d)
			count, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if reg.Contains(u) && count >= q.K {
				t.Fatalf("A-PC returned unqualified %v (count=%d k=%d)", u, count, q.K)
			}
		}
	})
}
