package core

// Native fuzz targets, seeded from the degenerate-input corpus shared with
// the differential harness (internal/diffcheck/corpus): coverage-led
// exploration starts from duplicate points, q = (1−ε)p boundaries,
// k-th-rank ties, ε extremes and colinear families instead of having to
// rediscover them. The seed corpus runs as part of the normal test suite;
// `go test -fuzz=FuzzSweepingVsBrute ./internal/core` explores further.

import (
	"math/rand"
	"testing"

	"rrq/internal/diffcheck/corpus"
	"rrq/internal/vec"
)

// FuzzSweepingVsBrute cross-checks the linear-time sweep against the
// quadratic reference on arbitrary corpus-decoded 2-d instances.
func FuzzSweepingVsBrute(f *testing.F) {
	for _, seed := range corpus.Seeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ins, ok := corpus.DecodeDim(data, 2)
		if !ok {
			return
		}
		pts, q := ins.Pts, Query{Q: ins.Q, K: ins.K, Eps: ins.Eps}
		want, err := BruteForce2D(pts, q)
		if err != nil {
			return
		}
		got, err := Sweeping(pts, q)
		if err != nil {
			t.Fatalf("Sweeping failed where brute force succeeded: %v", err)
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 50; i++ {
			u := vec.RandSimplex(rng, 2)
			_, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if want.Contains(u) != got.Contains(u) {
				t.Fatalf("disagreement at %v (family=%s k=%d ε=%v)", u, ins.Family, q.K, q.Eps)
			}
		}
	})
}

// FuzzAPCSound checks that A-PC never returns an unqualified preference on
// corpus-decoded instances of any dimension.
func FuzzAPCSound(f *testing.F) {
	for _, seed := range corpus.Seeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ins, ok := corpus.Decode(data)
		if !ok {
			return
		}
		pts, q := ins.Pts, Query{Q: ins.Q, K: ins.K, Eps: ins.Eps}
		d := q.Q.Dim()
		seed := int64(len(data))
		reg, err := APC(pts, q, APCOptions{Samples: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			u := vec.RandSimplex(rng, d)
			count, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if reg.Contains(u) && count >= q.K {
				t.Fatalf("A-PC returned unqualified %v (family=%s count=%d k=%d)", u, ins.Family, count, q.K)
			}
		}
	})
}
