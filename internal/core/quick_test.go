package core

// Property-based tests (testing/quick) on the problem-level invariants.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rrq/internal/vec"
)

// MergeIntervals output is sorted, disjoint, and preserves total covered
// length for already-disjoint inputs.
func TestQuickMergeIntervals(t *testing.T) {
	f := func(raw [6]float64) bool {
		var ivs [][2]float64
		for i := 0; i+1 < len(raw); i += 2 {
			a := math.Abs(math.Mod(raw[i], 1))
			b := math.Abs(math.Mod(raw[i+1], 1))
			if math.IsNaN(a) || math.IsNaN(b) {
				return true
			}
			lo, hi := math.Min(a, b), math.Max(a, b)
			ivs = append(ivs, [2]float64{lo, hi})
		}
		out := MergeIntervals(ivs)
		for i := range out {
			if out[i][0] > out[i][1] {
				return false
			}
			if i > 0 && out[i][0] <= out[i-1][1] {
				return false // must be strictly separated
			}
		}
		// Membership preserved at probe points.
		for _, p := range []float64{0.1, 0.35, 0.5, 0.75, 0.9} {
			in := false
			for _, iv := range ivs {
				if p >= iv[0] && p <= iv[1] {
					in = true
					break
				}
			}
			inMerged := false
			for _, iv := range out {
				if p >= iv[0] && p <= iv[1] {
					inMerged = true
					break
				}
			}
			if in != inMerged {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The regret ratio is monotone: increasing k can only lower (or keep) it,
// and it always lies in [0, 1].
func TestQuickRegretRatioMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(3)
		n := 3 + r.Intn(20)
		pts := make([]vec.Vec, n)
		for i := range pts {
			p := vec.New(d)
			for j := range p {
				p[j] = 0.01 + 0.99*r.Float64()
			}
			pts[i] = p
		}
		qp := vec.New(d)
		for j := range qp {
			qp[j] = 0.01 + 0.99*r.Float64()
		}
		u := vec.RandSimplex(rng, d)
		prev := math.Inf(1)
		for k := 1; k <= n; k++ {
			rr := RegretRatio(pts, Query{Q: qp, K: k, Eps: 0.1}, u)
			if rr < 0 || rr > 1 {
				return false
			}
			if rr > prev+1e-12 {
				return false
			}
			prev = rr
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Qualification is monotone in both k and ε: relaxing either never
// disqualifies a utility vector.
func TestQuickQualificationMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(3)
		pts := make([]vec.Vec, 12)
		for i := range pts {
			p := vec.New(d)
			for j := range p {
				p[j] = 0.01 + 0.99*r.Float64()
			}
			pts[i] = p
		}
		qp := pts[0].Clone()
		u := vec.RandSimplex(rng, d)
		for k := 1; k < 4; k++ {
			for _, eps := range []float64{0, 0.05, 0.1} {
				if QualifiedAt(pts, Query{Q: qp, K: k, Eps: eps}, u) {
					// Must stay qualified at (k+1, eps) and (k, eps+0.05).
					if !QualifiedAt(pts, Query{Q: qp, K: k + 1, Eps: eps}, u) {
						return false
					}
					if !QualifiedAt(pts, Query{Q: qp, K: k, Eps: eps + 0.05}, u) {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(25))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The region returned by Sweeping is monotone in ε: a larger tolerance
// yields a superset (measured via interval coverage).
func TestQuickSweepingMonotoneEps(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 60; trial++ {
		pts, q := randomInstance(rng, 20, 2)
		q.Eps = 0.05
		small, err := Sweeping(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		q.Eps = 0.15
		big, err := Sweeping(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			tt := rng.Float64()
			u := vec.Of(tt, 1-tt)
			_, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if small.Contains(u) && !big.Contains(u) {
				t.Fatalf("trial %d: ε-monotonicity violated at t=%v", trial, tt)
			}
		}
	}
}
