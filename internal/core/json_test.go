package core

import (
	"encoding/json"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

func TestRegionJSONRoundTripIntervals(t *testing.T) {
	pts := table3()
	q := Query{Q: vec.Of(0.4, 0.7), K: 1, Eps: 0.1}
	reg, err := Sweeping(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(reg)
	if err != nil {
		t.Fatal(err)
	}
	var back Region
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		u := vec.RandSimplex(rng, 2)
		if reg.Contains(u) != back.Contains(u) {
			t.Fatalf("round trip changed membership at %v", u)
		}
	}
}

func TestRegionJSONRoundTripCells(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		pts, q := randomInstance(rng, 25, 3)
		reg, err := EPT(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(reg)
		if err != nil {
			t.Fatal(err)
		}
		var back Region
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			u := vec.RandSimplex(rng, 3)
			_, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if reg.Contains(u) != back.Contains(u) {
				t.Fatalf("trial %d: round trip changed membership at %v", trial, u)
			}
		}
	}
}

func TestRegionJSONEmpty(t *testing.T) {
	data, err := json.Marshal(emptyRegion(4))
	if err != nil {
		t.Fatal(err)
	}
	var back Region
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Empty() || back.Dim() != 4 {
		t.Fatalf("empty region round trip: %+v", back)
	}
}

func TestRegionJSONBadInput(t *testing.T) {
	var r Region
	if err := json.Unmarshal([]byte(`{"dim": `), &r); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
