package core

import (
	"math"
	"sort"
	"sync"

	"rrq/internal/geom"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// maxShareGroups bounds the number of distinct (query point, ε) plane
// groups a batch view will materialize; queries beyond the cap fall back to
// per-solve plane construction instead of growing the store without bound.
const maxShareGroups = 1024

// shareFor returns a Prepared view that amortizes work across the queries
// of one batch: a single capped dominator count at the batch's maximum k
// serves every skyband prefilter, and classified plane sets are built once
// per (query point, ε) group and narrowed to each query's k by filtering —
// producing exactly the planes, classifications and IDs a fresh
// BuildPlanes over that query's own k-skyband would produce, so regions
// stay byte-identical to independent solves.
//
// An index-backed Prepared is returned unchanged: its snapshot storage
// already deduplicates bands and planes across queries (and across
// batches), which the batch view could only duplicate.
// keys is the precomputed PointKey of every query (computed once per batch;
// the strings are also reused by dedup and clustering).
func (p *Prepared) shareFor(queries []Query, keys []string) (*Prepared, *shareView) {
	if p.pointsFor != nil || p.planes != nil || len(queries) < 2 {
		return p, nil
	}
	v := &shareView{
		prep:      p,
		kmax:      1,
		bands:     make(map[int][]vec.Vec),
		groups:    make(map[shareGroupKey]*planeGroup),
		groupKmax: make(map[shareGroupKey]int),
		groupOf:   make([]*planeGroup, len(queries)),
	}
	for i, q := range queries {
		if q.K > v.kmax {
			v.kmax = q.K
		}
		gk := shareGroupKey{point: keys[i], eps: math.Float64bits(q.Eps)}
		if q.K > v.groupKmax[gk] {
			v.groupKmax[gk] = q.K
		}
	}
	// Second pass (group maxima are final now): materialize every group up
	// to the cap and record each query's assignment, so the per-solve lookup
	// is one slice index instead of a string build and map probe.
	for i, q := range queries {
		v.groupOf[i] = v.groupForKey(shareGroupKey{point: keys[i], eps: math.Float64bits(q.Eps)}, q)
	}
	return &Prepared{pts: p.pts, dim: p.dim, pointsFor: v.pointsFor, planes: v.planesFor}, v
}

// shareGroupKey identifies one plane group: all queries with bit-identical
// point coordinates and ε draw from the same classified planes, whatever
// their k.
type shareGroupKey struct {
	point string
	eps   uint64
}

// shareView is the batch-scoped sharing state behind the view Prepared.
// It is safe for concurrent use by the batch workers.
type shareView struct {
	prep *Prepared
	kmax int // max k over the batch

	countsOnce sync.Once
	counts     []int // capped band-dominator counts at kmax (prefilter only)

	mu        sync.Mutex
	bands     map[int][]vec.Vec
	groups    map[shareGroupKey]*planeGroup
	groupKmax map[shareGroupKey]int

	// groupOf maps each batch query index to its plane group (nil past the
	// group cap), precomputed so the per-solve lookup is index-based.
	groupOf []*planeGroup
}

// ensureCounts resolves the shared skyband substrate once per batch: the
// capped dominator counts at the batch's maximum k, from which every
// query's band is a single comparison per point. The counts live on the
// Prepared, so consecutive batches against one dataset reuse them instead
// of recomputing.
func (v *shareView) ensureCounts() {
	v.countsOnce.Do(func() {
		v.counts = v.prep.cappedCounts(v.kmax)
	})
}

// cappedCounts returns skyband.KSkybandCounts(pts, k), cached across
// batches: counts computed at some k' ≥ k answer every rank kk ≤ k (point
// in kk-skyband iff count < kk), so only a request past the cached rank
// recomputes, and the cache only ever deepens.
func (p *Prepared) cappedCounts(k int) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.counts == nil || p.countsK < k {
		p.counts = skyband.KSkybandCounts(p.pts, k)
		p.countsK = k
	}
	return p.counts
}

// pointsFor serves the k-skyband for any k in the batch by filtering the
// shared capped counts — identical in membership and order to
// skyband.Select(pts, skyband.KSkyband(pts, k)), which is what the
// underlying Prepared would have computed per k.
func (v *shareView) pointsFor(k int) []vec.Vec {
	p := v.prep
	if !p.skyband || k < 1 {
		return p.pts
	}
	if k > v.kmax {
		// Outside the batch's range (possible only for queries the view was
		// not built from); the capped counts cannot answer it, the
		// underlying per-k cache can.
		return p.PointsFor(k)
	}
	v.ensureCounts()
	v.mu.Lock()
	defer v.mu.Unlock()
	if b, ok := v.bands[k]; ok {
		return b
	}
	b := make([]vec.Vec, 0, len(p.pts))
	for i, c := range v.counts {
		if c < k {
			b = append(b, p.pts[i])
		}
	}
	v.bands[k] = b
	return b
}

// Per-point classification categories of a plane group, mirroring
// BuildPlanes' three-way switch.
const (
	shareDrop uint8 = iota // normal ≥ 0: never counts, no plane
	shareBase              // normal ≤ 0: folded into PlaneSet.Base
	shareCross             // mixed signs: a crossing plane
)

// planeGroup holds the classified planes of one (query point, ε) group,
// built once over the group's widest base set and narrowed to each query's
// k on demand. After build the group is immutable, so derivation needs no
// locking.
type planeGroup struct {
	q    Query // representative query (point and ε; K is the group max)
	kmax int

	once      sync.Once
	base      []vec.Vec         // the points classification ran over
	cnt       []int             // per-base capped dominator counts; nil = no prefilter
	cat       []uint8           // per-base category
	baseCount int               // number of shareBase points in base
	planes    []geom.Hyperplane // one per shareCross base point, ID = base position
}

// planesFor is the batch view's PlaneSource — the arena-less entry used by
// solvers that have not been wired for worker arenas. Derived sets are
// freshly allocated per call.
func (v *shareView) planesFor(pts []vec.Vec, q Query) PlaneSet {
	return v.planesArena(pts, q, nil)
}

// planesArena resolves the query's plane set from shared state: the group's
// base classification is built once, the query's own set is derived by
// filtering into the worker's arena (allocation-free once the arena has
// warmed up), and a query at the group's widest rank shares the group's
// plane slice outright. Queries beyond the group cap build planes directly.
func (v *shareView) planesArena(pts []vec.Vec, q Query, a *Arena) PlaneSet {
	var g *planeGroup
	if a != nil {
		// The batch dispatcher assigned this worker's arena the query's
		// precomputed group (nil past the cap) before the solve.
		g = a.group
	} else {
		g = v.group(q)
	}
	if g == nil {
		if a != nil {
			return buildPlanesArena(pts, q, a)
		}
		return BuildPlanes(pts, q)
	}
	g.once.Do(func() { g.build(v) })
	return g.deriveInto(q.K, pts, q, a)
}

// group returns (creating if needed) the plane group for q, or nil when the
// store is at capacity and q's group does not exist yet.
func (v *shareView) group(q Query) *planeGroup {
	return v.groupForKey(shareGroupKey{point: q.PointKey(), eps: math.Float64bits(q.Eps)}, q)
}

func (v *shareView) groupForKey(gk shareGroupKey, q Query) *planeGroup {
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.groups[gk]; ok {
		return g
	}
	if len(v.groups) >= maxShareGroups {
		return nil
	}
	kmax := v.groupKmax[gk]
	if q.K > kmax {
		kmax = q.K
	}
	g := &planeGroup{q: q, kmax: kmax}
	v.groups[gk] = g
	return g
}

// build classifies every point of the group's widest base set exactly as
// BuildPlanes does, keeping the per-point category and the crossing planes
// (IDs are base positions). With the prefilter on, the base set is the
// group's kmax-skyband and the capped counts are kept alongside so smaller
// k derive by filtering; with it off, the base is the full dataset and the
// classification is k-independent.
func (g *planeGroup) build(v *shareView) {
	p := v.prep
	if p.skyband {
		v.ensureCounts()
		base := make([]vec.Vec, 0, len(p.pts))
		cnt := make([]int, 0, len(p.pts))
		for i, c := range v.counts {
			if c < g.kmax {
				base = append(base, p.pts[i])
				cnt = append(cnt, c)
			}
		}
		g.base, g.cnt = base, cnt
	} else {
		g.base = p.pts
	}

	scale := 1 - g.q.Eps
	d := g.q.Q.Dim()
	g.cat = make([]uint8, len(g.base))
	crossings := 0
	for j, pt := range g.base {
		neg, pos := false, false
		for i := 0; i < d; i++ {
			x := g.q.Q[i] - scale*pt[i]
			if x > geom.Tol {
				pos = true
			} else if x < -geom.Tol {
				neg = true
			}
		}
		switch {
		case !neg:
			g.cat[j] = shareDrop
		case !pos:
			g.cat[j] = shareBase
			g.baseCount++
		default:
			g.cat[j] = shareCross
			crossings++
		}
	}

	// Second pass: materialize the crossing planes with all unit normals in
	// one flat block (stride d), sized exactly by the first pass so the
	// backing never moves under the plane headers.
	flat := make([]float64, crossings*d)
	g.planes = make([]geom.Hyperplane, 0, crossings)
	ci := 0
	for j, pt := range g.base {
		if g.cat[j] != shareCross {
			continue
		}
		slot := vec.Vec(flat[ci*d : ci*d+d : ci*d+d])
		for i := 0; i < d; i++ {
			slot[i] = g.q.Q[i] - scale*pt[i]
		}
		g.planes = append(g.planes, geom.NewHyperplaneInto(slot, slot, j))
		ci++
	}
}

// deriveInto derives the plane set for rank k from the group's base
// classification: walk the base in order, keep the members of the
// k-skyband (cnt < k), and renumber crossing-plane IDs to their position in
// that narrowed set — exactly the IDs BuildPlanes would assign over the
// query's own band. The derived headers go into the worker's arena (valid
// until its next solve, like buildPlanesArena's output); their normals
// alias the group's flat block, which every solver treats as read-only.
//
// Two ranks skip the walk entirely and share the group's own plane slice:
// k ≥ kmax with the prefilter (the narrowed band is the base itself, so the
// stored base-position IDs are already the band positions), and any k
// without the prefilter (classification is k-independent over the full
// dataset). pts is the band the solver resolved for this query; a size
// mismatch (a query the view was not built from) falls back to a direct
// build.
func (g *planeGroup) deriveInto(k int, pts []vec.Vec, q Query, a *Arena) PlaneSet {
	if g.cnt != nil && k > g.kmax {
		if a != nil {
			return buildPlanesArena(pts, q, a)
		}
		return BuildPlanes(pts, q)
	}
	if g.cnt == nil || k >= g.kmax {
		if len(g.base) == len(pts) {
			return PlaneSet{Crossing: g.planes, Base: g.baseCount}
		}
		// The solver resolved a different point set than the group's base
		// (defensive; should not happen for batch queries).
		if a != nil {
			return buildPlanesArena(pts, q, a)
		}
		return BuildPlanes(pts, q)
	}
	var crossing []geom.Hyperplane
	if a != nil {
		crossing = a.planes[:0]
	} else {
		crossing = make([]geom.Hyperplane, 0, len(g.planes))
	}
	var ps PlaneSet
	m := 0  // position within the narrowed band
	ci := 0 // crossing-plane cursor over the base
	for j := range g.base {
		if g.cnt[j] < k {
			switch g.cat[j] {
			case shareBase:
				ps.Base++
			case shareCross:
				h := g.planes[ci]
				h.ID = m
				crossing = append(crossing, h)
			}
			m++
		}
		if g.cat[j] == shareCross {
			ci++
		}
	}
	if a != nil {
		a.planes = crossing
	}
	ps.Crossing = crossing
	if m != len(pts) {
		// The solver is running on a different point set than the group
		// derived (defensive; should not happen for batch queries).
		if a != nil {
			return buildPlanesArena(pts, q, a)
		}
		return BuildPlanes(pts, q)
	}
	return ps
}

// clusterOrder sorts the batch's solve order so queries drawing on the same
// shared state run adjacently — same plane group first (point, then ε),
// then ascending k — keeping the group's base classification and the
// derived sets cache-warm on whichever worker picks the next index. Ties
// keep submission order. Results are still delivered in input order; only
// the dispatch order changes.
func clusterOrder(order []int, queries []Query, keys []string) {
	if len(order) < 2 {
		return
	}
	sort.SliceStable(order, func(a, b int) bool {
		qa, qb := queries[order[a]], queries[order[b]]
		if keys[order[a]] != keys[order[b]] {
			return keys[order[a]] < keys[order[b]]
		}
		ea, eb := math.Float64bits(qa.Eps), math.Float64bits(qb.Eps)
		if ea != eb {
			return ea < eb
		}
		return qa.K < qb.K
	})
}
