package core

import (
	"math/rand"
	"sort"

	"rrq/internal/geom"
	"rrq/internal/vec"
)

// Region is the answer to a reverse regret query: the set of qualified
// partitions of the utility simplex. Solvers produce either a list of
// convex cells (general dimension) or a list of parameter intervals on the
// utility segment (the d = 2 fast path used by Sweeping); both support
// membership tests and measure.
type Region struct {
	dim       int
	cells     []*geom.Cell
	disjoint  bool         // cells are pairwise disjoint (exact solvers)
	intervals [][2]float64 // 2-d representation: u = (t, 1−t), sorted, disjoint
}

// NewCellRegion wraps a list of qualified cells into a Region. It is used
// by the solvers in this package and by the adapted baselines. The cells
// may overlap (A-PC's merged partitions can); use NewDisjointCellRegion
// when they are known to partition the answer.
func NewCellRegion(d int, cells []*geom.Cell) *Region {
	return &Region{dim: d, cells: cells}
}

// NewDisjointCellRegion wraps pairwise-disjoint qualified cells, enabling
// exact measure in three dimensions.
func NewDisjointCellRegion(d int, cells []*geom.Cell) *Region {
	return &Region{dim: d, cells: cells, disjoint: true}
}

// NewIntervalRegion wraps sorted disjoint parameter intervals on the 2-d
// utility segment into a Region.
func NewIntervalRegion(intervals [][2]float64) *Region {
	return &Region{dim: 2, intervals: intervals}
}

// EmptyRegion is the empty answer in dimension d.
func EmptyRegion(d int) *Region { return &Region{dim: d} }

func newCellRegion(d int, cells []*geom.Cell) *Region { return NewCellRegion(d, cells) }

func newIntervalRegion(intervals [][2]float64) *Region { return NewIntervalRegion(intervals) }

func emptyRegion(d int) *Region { return EmptyRegion(d) }

// Dim returns the ambient dimension d.
func (r *Region) Dim() int { return r.dim }

// Empty reports whether no utility vector qualifies.
func (r *Region) Empty() bool { return len(r.cells) == 0 && len(r.intervals) == 0 }

// NumPieces returns the number of stored partitions (cells or intervals).
func (r *Region) NumPieces() int {
	if r.intervals != nil {
		return len(r.intervals)
	}
	return len(r.cells)
}

// Cells returns the qualified cells for cell-backed regions and nil for
// interval-backed ones.
func (r *Region) Cells() []*geom.Cell { return r.cells }

// Contains reports whether the utility vector u (assumed on the simplex)
// qualifies: q is a (k,ε)-regret point w.r.t. u. Boundaries are inclusive.
func (r *Region) Contains(u vec.Vec) bool {
	if r.intervals != nil {
		t := u[0]
		i := sort.Search(len(r.intervals), func(i int) bool { return r.intervals[i][1] >= t-geom.Tol })
		return i < len(r.intervals) && r.intervals[i][0] <= t+geom.Tol
	}
	for _, c := range r.cells {
		if c.Contains(u) {
			return true
		}
	}
	return false
}

// Intervals returns the region as parameter intervals on the utility
// segment u = (t, 1−t). For cell-backed 2-d regions the intervals are
// derived from the cells and merged; it panics when dim != 2.
func (r *Region) Intervals() [][2]float64 {
	if r.dim != 2 {
		panic("core: Intervals on a region with dim != 2")
	}
	if r.intervals != nil {
		return r.intervals
	}
	ivs := make([][2]float64, 0, len(r.cells))
	for _, c := range r.cells {
		lo, hi := geom.Interval1D(c)
		ivs = append(ivs, [2]float64{lo, hi})
	}
	return MergeIntervals(ivs)
}

// Measure estimates the fraction of the utility space that qualifies.
// Interval-backed regions and disjoint 3-d cell regions are measured
// exactly; other cell-backed regions use Monte-Carlo sampling with n points
// from rng.
func (r *Region) Measure(rng *rand.Rand, n int) float64 {
	if r.intervals != nil {
		var s float64
		for _, iv := range r.intervals {
			s += iv[1] - iv[0]
		}
		return s
	}
	if r.dim == 2 {
		// Cell-backed 2-d regions reduce to merged intervals, so the
		// measure is exact even when cells overlap.
		var s float64
		for _, iv := range r.Intervals() {
			s += iv[1] - iv[0]
		}
		return s
	}
	if r.disjoint && r.dim == 3 {
		return geom.MeasureCellsExact3D(r.cells)
	}
	return geom.MeasureCells(r.cells, r.dim, rng, n)
}

// MeasureWithSeed is Measure with a private generator derived from seed:
// equal seeds and sample counts return the identical estimate, and the call
// leaves no trace on any shared randomness. Accuracy reporting uses it with
// a seed decorrelated from the solver's own sample stream — measuring a
// sampled region with the stream that built it overstates coverage, since
// every qualified solver sample lies in the region by construction.
func (r *Region) MeasureWithSeed(seed int64, n int) float64 {
	return r.Measure(rand.New(rand.NewSource(seed)), n)
}

// SamplePoint returns a qualified utility vector drawn from a random piece
// of the region, or nil when the region is empty.
func (r *Region) SamplePoint(rng *rand.Rand) vec.Vec {
	if r.intervals != nil {
		if len(r.intervals) == 0 {
			return nil
		}
		iv := r.intervals[rng.Intn(len(r.intervals))]
		t := iv[0] + rng.Float64()*(iv[1]-iv[0])
		return vec.Of(t, 1-t)
	}
	if len(r.cells) == 0 {
		return nil
	}
	return r.cells[rng.Intn(len(r.cells))].SamplePoint(rng)
}

// SampleUniform returns a qualified utility vector drawn uniformly over
// the region, via rejection sampling from the uniform simplex distribution.
// After maxTries rejections (the region may be tiny) it falls back to
// SamplePoint, which is in-region but not uniform. Returns nil for an
// empty region.
func (r *Region) SampleUniform(rng *rand.Rand, maxTries int) vec.Vec {
	if r.Empty() {
		return nil
	}
	if maxTries <= 0 {
		maxTries = 1000
	}
	for i := 0; i < maxTries; i++ {
		u := vec.RandSimplex(rng, r.dim)
		if r.Contains(u) {
			return u
		}
	}
	return r.SamplePoint(rng)
}

// MergeIntervals sorts intervals by start and merges overlapping or
// touching ones into maximal disjoint intervals.
func MergeIntervals(ivs [][2]float64) [][2]float64 {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([][2]float64(nil), ivs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a][0] < sorted[b][0] })
	out := [][2]float64{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv[0] <= last[1]+geom.Tol {
			if iv[1] > last[1] {
				last[1] = iv[1]
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}
