package core

import (
	"context"
	"fmt"
	"sort"

	"rrq/internal/geom"
	"rrq/internal/obs"
	"rrq/internal/vec"
)

// BruteForce2D solves the d = 2 case exactly by enumerating every crossing
// of the utility segment and counting negative half-spaces at each
// partition midpoint directly. O(n²); reference implementation for tests.
func BruteForce2D(pts []vec.Vec, q Query) (*Region, error) {
	r, _, err := BruteForce2DContext(context.Background(), pts, q)
	return r, err
}

// BruteForce2DContext is BruteForce2D under a context with work counters;
// cancellation is observed once per enumerated partition.
func BruteForce2DContext(ctx context.Context, pts []vec.Vec, q Query) (*Region, Stats, error) {
	if q.Q.Dim() != 2 {
		return nil, Stats{}, fmt.Errorf("core: BruteForce2D requires d = 2, got %d", q.Q.Dim())
	}
	if err := ValidateInstance(pts, q); err != nil {
		return nil, Stats{}, err
	}
	return brute2DSolve(ctx, pts, q, nil)
}

// brute2DSolve is the 2-d enumeration body shared by the validated entry
// points; src, when non-nil, serves the (read-only) classified plane set
// from shared storage.
func brute2DSolve(ctx context.Context, pts []vec.Vec, q Query, src PlaneSource) (*Region, Stats, error) {
	var st Stats
	if q.Q.Dim() != 2 {
		return nil, st, fmt.Errorf("core: BruteForce2D requires d = 2, got %d", q.Q.Dim())
	}
	check := NewCtxChecker(ctx, 0xff)
	check.SetFaultKey(q.Q)
	if check.Failed() {
		return nil, st, check.Err()
	}
	ps := planesFor(src, pts, q)
	st.PlanesBuilt = len(ps.Crossing)
	check.Emit(obs.EvPlaneBuilt, st.PlanesBuilt)
	k := ps.KEff(q.K)
	if k <= 0 {
		check.Emit(obs.EvPlanePruned, st.PlanesBuilt)
		return emptyRegion(2), st, nil
	}
	// Every crossing plane enters the enumeration; nothing is pruned.
	st.PlanesInserted = st.PlanesBuilt
	cuts := []float64{0, 1}
	for _, h := range ps.Crossing {
		w := h.Normal
		cuts = append(cuts, w[1]/(w[1]-w[0]))
	}
	sort.Float64s(cuts)

	var out [][2]float64
	for i := 0; i+1 < len(cuts); i++ {
		if check.Stop() {
			return nil, st, check.Err()
		}
		a, b := cuts[i], cuts[i+1]
		if b-a <= geom.Tol {
			continue
		}
		mid := (a + b) / 2
		u := vec.Of(mid, 1-mid)
		neg := 0
		for _, h := range ps.Crossing {
			if h.Eval(u) < 0 {
				neg++
			}
		}
		if neg < k {
			out = append(out, [2]float64{a, b})
		}
	}
	merged := MergeIntervals(out)
	st.Pieces = len(merged)
	check.Emit(obs.EvPieceEmitted, st.Pieces)
	if len(merged) == 0 {
		return emptyRegion(2), st, nil
	}
	return newIntervalRegion(merged), st, nil
}

// BruteForceND solves RRQ exactly in any dimension by materializing the
// full arrangement: every crossing plane splits every cell, with no
// pruning, reduction or laziness. Exponential in the number of planes;
// guarded by maxPlanes and intended purely as a test oracle.
func BruteForceND(pts []vec.Vec, q Query, maxPlanes int) (*Region, error) {
	r, _, err := BruteForceNDContext(context.Background(), pts, q, maxPlanes)
	return r, err
}

// BruteForceNDContext is BruteForceND under a context with work counters;
// cancellation is observed with an amortized check per cell/plane pair.
func BruteForceNDContext(ctx context.Context, pts []vec.Vec, q Query, maxPlanes int) (*Region, Stats, error) {
	if err := ValidateInstance(pts, q); err != nil {
		return nil, Stats{}, err
	}
	return bruteNDSolve(ctx, pts, q, maxPlanes, nil)
}

// bruteNDSolve is the arrangement-materializing body shared by the
// validated entry points; src, when non-nil, serves the (read-only)
// classified plane set from shared storage.
func bruteNDSolve(ctx context.Context, pts []vec.Vec, q Query, maxPlanes int, src PlaneSource) (*Region, Stats, error) {
	var st Stats
	d := q.Q.Dim()
	check := NewCtxChecker(ctx, 0xff)
	check.SetFaultKey(q.Q)
	if check.Failed() {
		return nil, st, check.Err()
	}
	ps := planesFor(src, pts, q)
	st.PlanesBuilt = len(ps.Crossing)
	check.Emit(obs.EvPlaneBuilt, st.PlanesBuilt)
	if len(ps.Crossing) > maxPlanes {
		return nil, st, fmt.Errorf("core: brute force limited to %d planes, have %d", maxPlanes, len(ps.Crossing))
	}
	k := ps.KEff(q.K)
	if k <= 0 {
		check.Emit(obs.EvPlanePruned, st.PlanesBuilt)
		return emptyRegion(d), st, nil
	}
	type entry struct {
		cell *geom.Cell
		neg  int
	}
	cells := []entry{{cell: geom.NewSimplex(d)}}
	for _, h := range ps.Crossing {
		st.PlanesInserted++
		next := cells[:0:0]
		for _, e := range cells {
			if check.Stop() {
				return nil, st, check.Err()
			}
			switch e.cell.Relation(h) {
			case geom.RelNeg:
				next = append(next, entry{e.cell, e.neg + 1})
			case geom.RelPos:
				next = append(next, e)
			case geom.RelCross:
				neg, pos := e.cell.Split(h)
				if neg != nil && pos != nil {
					st.Splits++
					check.Emit(obs.EvNodeSplit, 1)
				}
				if neg != nil {
					next = append(next, entry{neg, e.neg + 1})
				}
				if pos != nil {
					next = append(next, entry{pos, e.neg})
				}
			}
		}
		cells = next
	}
	var out []*geom.Cell
	for _, e := range cells {
		if e.neg < k {
			out = append(out, e.cell)
		}
	}
	st.Pieces = len(out)
	check.Emit(obs.EvPieceEmitted, st.Pieces)
	if len(out) == 0 {
		return emptyRegion(d), st, nil
	}
	return NewDisjointCellRegion(d, out), st, nil
}
