package core

import (
	"context"
	"runtime/debug"
	"sync"

	"rrq/internal/geom"
	"rrq/internal/obs"
)

// Intra-query parallel E-PT.
//
// The insertion of one hyper-plane into the partition tree decomposes into
// independent per-subtree work: when the plane crosses an internal node,
// the two children are refined without ever reading or writing each other's
// state (sibling cells share only immutable data — constraint-list tails
// and vertex coordinate slices — and every node is descended into by
// exactly one task). The pool exploits exactly that decomposition and
// nothing else: each task runs the unmodified serial insertion over its
// subtree, so every geometric decision is identical to the serial solver
// and the collected cells are byte-identical for any worker count.
//
// Planes are still inserted strictly one after another (pending.Wait is
// the inter-plane barrier); parallelism is within a plane, across the
// frontier of subtrees it crosses. That preserves the W(h)-descending
// insertion order the accelerations of §5.1.2 rely on.

// eptTask is one unit of pool work: insert plane h into the subtree at n.
type eptTask struct {
	n *eptNode
	h geom.Hyperplane
}

// eptPool is the per-solve worker pool. Workers own one eptCtx each
// (per-worker Stats, CtxChecker and buffered trace counts — none of those
// types are concurrency-safe), merged into the solve's totals by drain.
type eptPool struct {
	tree    *eptTree
	tasks   chan eptTask
	pending sync.WaitGroup // outstanding tasks of the current plane
	done    sync.WaitGroup // running workers
	ctxs    []*eptCtx
}

func newEPTPool(ctx context.Context, t *eptTree, workers int, faultKey []float64) *eptPool {
	p := &eptPool{
		tree:  t,
		tasks: make(chan eptTask, workers*64),
		ctxs:  make([]*eptCtx, workers),
	}
	for w := range p.ctxs {
		e := &eptCtx{t: t, stats: new(Stats), check: NewCtxChecker(ctx, 0xfff), pool: p}
		e.check.SetFaultKey(faultKey)
		p.ctxs[w] = e
		p.done.Add(1)
		go func(e *eptCtx) {
			defer p.done.Done()
			for task := range p.tasks {
				e.runTask(task)
			}
		}(e)
	}
	return p
}

// runTask executes one pool task with panic isolation: a panic anywhere in
// the subtree insertion (a geometry-kernel bug, an injected fault) is
// recovered into a typed *SolveError that poisons this worker's checker —
// the worker then drains its remaining tasks cheaply (insert returns at the
// first Stop) and run surfaces the error at the next plane barrier. The
// pending counter is decremented on every exit path, so the barrier never
// deadlocks on a panicked task.
func (e *eptCtx) runTask(task eptTask) {
	defer func() {
		if rec := recover(); rec != nil {
			e.check.fail(&SolveError{Solver: "E-PT", QueryIndex: -1, Panic: rec, Stack: debug.Stack()})
		}
		e.pool.pending.Done()
	}()
	e.insert(task.n, task.h)
}

// run inserts the planes in order. Within one plane the crossing subtrees
// are refined concurrently; pending.Wait is the barrier that makes every
// mutation of plane i visible before plane i+1 starts (WaitGroup Done
// happens-before Wait returning, and the subsequent channel send orders the
// next plane's reads).
func (p *eptPool) run(planes []geom.Hyperplane, check *CtxChecker) error {
	for _, h := range planes {
		p.pending.Add(1)
		p.tasks <- eptTask{p.tree.root, h}
		p.pending.Wait()
		if check.Stop() {
			return check.Err()
		}
		for _, e := range p.ctxs {
			if e.check.Failed() {
				return e.check.Err()
			}
		}
	}
	return nil
}

// spawn hands a subtree to the pool. The counter is raised before the send
// (the spawning worker still holds its own task, so pending never touches
// zero while work is outstanding). When the queue is full the task runs
// inline on the spawning worker instead — workers must never block on the
// queue, or a full queue of tasks that all want to spawn would deadlock.
func (p *eptPool) spawn(n *eptNode, h geom.Hyperplane, from *eptCtx) {
	p.pending.Add(1)
	select {
	case p.tasks <- eptTask{n, h}:
	default:
		// Balance the counter even if the inline insertion panics (the
		// panic keeps unwinding into the worker's runTask recovery); a lost
		// Done would deadlock the plane barrier.
		defer p.pending.Done()
		from.insert(n, h)
	}
}

// drain shuts the workers down and merges their buffered bookkeeping into
// the solve's totals: Stats counters are summed (order-independent), and
// the buffered split counts become one aggregated EvNodeSplit event, so
// per-kind trace sums still match the Stats counters exactly.
func (p *eptPool) drain(st *Stats, check *CtxChecker) {
	close(p.tasks)
	p.done.Wait()
	splits := 0
	for _, e := range p.ctxs {
		st.Add(*e.stats)
		splits += e.splits
	}
	if splits > 0 {
		check.Emit(obs.EvNodeSplit, splits)
	}
}
