package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rrq/internal/obs"
)

// TestEPTParallelDeterminism checks the pool's core guarantee: the region
// produced by parallel E-PT is byte-for-byte identical (JSON encoding, which
// fixes cell order, constraint order and vertex order) to the serial
// solver's, for every worker count — and the Stats counters match too.
func TestEPTParallelDeterminism(t *testing.T) {
	for d := 2; d <= 6; d++ {
		d := d
		t.Run(fmt.Sprintf("d=%d", d), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(900 + d)))
			for trial := 0; trial < 4; trial++ {
				pts, q := randomInstance(rng, 60, d)
				ref, refStats, err := EPTWithOptions(pts, q, EPTOptions{})
				if err != nil {
					t.Fatalf("serial: %v", err)
				}
				refJSON, err := ref.MarshalJSON()
				if err != nil {
					t.Fatalf("marshal serial: %v", err)
				}
				for _, workers := range []int{1, 2, 8} {
					got, gotStats, err := EPTWithOptions(pts, q, EPTOptions{Workers: workers})
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					gotJSON, err := got.MarshalJSON()
					if err != nil {
						t.Fatalf("marshal workers=%d: %v", workers, err)
					}
					if !bytes.Equal(refJSON, gotJSON) {
						t.Fatalf("workers=%d trial=%d: region differs from serial\nserial: %s\nparallel: %s",
							workers, trial, refJSON, gotJSON)
					}
					if gotStats != refStats {
						t.Fatalf("workers=%d trial=%d: stats differ: serial %+v parallel %+v",
							workers, trial, refStats, gotStats)
					}
				}
			}
		})
	}
}

// TestAPCParallelDeterminism checks the same property for A-PC's sample
// classification pool: samples are drawn up front, so the kept set — and
// the constructed region — cannot depend on the worker count.
func TestAPCParallelDeterminism(t *testing.T) {
	for d := 2; d <= 6; d++ {
		d := d
		t.Run(fmt.Sprintf("d=%d", d), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(700 + d)))
			for trial := 0; trial < 4; trial++ {
				pts, q := randomInstance(rng, 60, d)
				ref, refStats, err := APCContext(context.Background(), pts, q,
					APCOptions{Samples: 80, Seed: 42})
				if err != nil {
					t.Fatalf("serial: %v", err)
				}
				refJSON, err := ref.MarshalJSON()
				if err != nil {
					t.Fatalf("marshal serial: %v", err)
				}
				for _, workers := range []int{1, 2, 8} {
					got, gotStats, err := APCContext(context.Background(), pts, q,
						APCOptions{Samples: 80, Seed: 42, Workers: workers})
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					gotJSON, err := got.MarshalJSON()
					if err != nil {
						t.Fatalf("marshal workers=%d: %v", workers, err)
					}
					if !bytes.Equal(refJSON, gotJSON) {
						t.Fatalf("workers=%d trial=%d: region differs from serial", workers, trial)
					}
					if gotStats != refStats {
						t.Fatalf("workers=%d trial=%d: stats differ: serial %+v parallel %+v",
							workers, trial, refStats, gotStats)
					}
				}
			}
		})
	}
}

// TestEPTParallelTraceParity checks that the pool's aggregated event
// emission preserves the trace contract: per-kind event sums equal the
// Stats counters, exactly as in serial mode.
func TestEPTParallelTraceParity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts, q := randomInstance(rng, 80, 4)
	sums := map[obs.EventKind]int{}
	ctx := obs.ContextWithTrace(context.Background(), func(e obs.Event) {
		sums[e.Kind] += e.N
	})
	_, st, err := EPTContext(ctx, pts, q, EPTOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sums[obs.EvNodeSplit] != st.Splits {
		t.Errorf("EvNodeSplit sum %d != Stats.Splits %d", sums[obs.EvNodeSplit], st.Splits)
	}
	if sums[obs.EvPlaneBuilt] != st.PlanesBuilt {
		t.Errorf("EvPlaneBuilt sum %d != Stats.PlanesBuilt %d", sums[obs.EvPlaneBuilt], st.PlanesBuilt)
	}
	if sums[obs.EvPieceEmitted] != st.Pieces {
		t.Errorf("EvPieceEmitted sum %d != Stats.Pieces %d", sums[obs.EvPieceEmitted], st.Pieces)
	}
}

// TestEPTParallelCancellation checks that a canceled context aborts a
// parallel solve with the context's error and no goroutine leak (the -race
// runs of CI double as the leak/teardown check).
func TestEPTParallelCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	pts, q := randomInstance(rng, 200, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := EPTContext(ctx, pts, q, EPTOptions{Workers: 4})
	if err == nil {
		t.Fatal("expected error from canceled context")
	}
}
