package core

import (
	"math"
	"math/rand"
	"sort"

	"rrq/internal/topk"
	"rrq/internal/vec"
)

// ShareProfile is the market-share curve of a query product: for every
// threshold ε, Share(ε) is the fraction of the preference space on which q
// is a (k,ε)-regret point. It is computed in a single sampling pass from
// the observation that for a fixed preference u the smallest qualifying
// threshold is
//
//	ε*(u) = max(0, 1 − f_u(q) / kmax_{p∈D} f_u(p))
//
// so Share(ε) is simply the CDF of ε* under the uniform preference
// distribution. One pass over N samples yields the whole curve, instead of
// one full reverse regret query per ε.
type ShareProfile struct {
	eps []float64 // sorted ε*(u) samples
}

// NewShareProfile draws samples uniform preferences and evaluates ε* for
// each. Cost: O(samples · n · d).
func NewShareProfile(pts []vec.Vec, q Query, samples int, rng *rand.Rand) (*ShareProfile, error) {
	d := q.Q.Dim()
	if err := q.Validate(d); err != nil {
		return nil, err
	}
	for _, p := range pts {
		if p.Dim() != d {
			return nil, errDimMismatch(d, p.Dim())
		}
	}
	if samples <= 0 {
		samples = 2000
	}
	eps := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		u := vec.RandSimplex(rng, d)
		eps = append(eps, MinQualifyingEps(pts, q.K, q.Q, u))
	}
	sort.Float64s(eps)
	return &ShareProfile{eps: eps}, nil
}

// MinQualifyingEps returns ε*(u): the smallest threshold at which q is a
// (k,ε)-regret point w.r.t. u. Zero when q already scores at or above the
// k-th ranked product.
func MinQualifyingEps(pts []vec.Vec, k int, qPoint, u vec.Vec) float64 {
	if len(pts) == 0 {
		return 0
	}
	sk := topk.KthMax(topk.Utilities(pts, u), k)
	fq := u.Dot(qPoint)
	if sk <= 0 || fq >= sk {
		return 0
	}
	return 1 - fq/sk
}

// Share returns the estimated fraction of preferences with ε*(u) ≤ eps —
// the market share at threshold eps.
func (sp *ShareProfile) Share(eps float64) float64 {
	i := sort.SearchFloat64s(sp.eps, math.Nextafter(eps, math.Inf(1)))
	return float64(i) / float64(len(sp.eps))
}

// EpsForShare returns the smallest threshold that reaches the target share
// (a quantile of ε*). Target is clamped to [0, 1]; reaching share 1 may
// require ε up to the largest sampled ε*.
func (sp *ShareProfile) EpsForShare(target float64) float64 {
	if target <= 0 {
		return 0
	}
	if target >= 1 {
		return sp.eps[len(sp.eps)-1]
	}
	i := int(math.Ceil(target*float64(len(sp.eps)))) - 1
	if i < 0 {
		i = 0
	}
	return sp.eps[i]
}

// Samples returns the number of preference samples underlying the profile.
func (sp *ShareProfile) Samples() int { return len(sp.eps) }
