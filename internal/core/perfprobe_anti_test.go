package core

import (
	"math/rand"
	"testing"
	"time"

	"rrq/internal/dataset"
	"rrq/internal/skyband"
)

// TestEPTAntiProbe profiles the anti-correlated hot case with random
// queries, as the harness issues them.
func TestEPTAntiProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("perf probe")
	}
	pts := dataset.Generate(dataset.Anticorrelated, 10000, 4, 20240601)
	band := skyband.Select(pts, skyband.KSkyband(pts, 10))
	t.Logf("band size %d", len(band))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1; i++ {
		q := Query{Q: dataset.RandQuery(rng, pts), K: 10, Eps: 0.1}
		start := time.Now()
		reg, st, err := EPTWithStats(band, q)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("EPT %v stats %+v pieces %d", time.Since(start), st, reg.NumPieces())
	}
}
