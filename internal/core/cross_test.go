package core

// Cross-validation property tests: all solvers must agree with each other
// and with the direct membership oracle on random inputs. Utility vectors
// that land numerically on a partition boundary are skipped via the margin
// reported by CountBetter.

import (
	"math"
	"math/rand"
	"testing"

	"rrq/internal/dataset"
	"rrq/internal/vec"
)

const boundaryMargin = 1e-7

// checkRegionAgainstOracle samples utility vectors and verifies that the
// region's membership matches the counting oracle.
func checkRegionAgainstOracle(t *testing.T, reg *Region, pts []vec.Vec, q Query, rng *rand.Rand, samples int, exact bool) {
	t.Helper()
	for i := 0; i < samples; i++ {
		u := vec.RandSimplex(rng, q.Q.Dim())
		count, margin := CountBetter(pts, q, u)
		if margin < boundaryMargin {
			continue
		}
		want := count < q.K
		got := reg.Contains(u)
		if got && !want {
			t.Fatalf("false positive at u=%v: count=%d k=%d", u, count, q.K)
		}
		if exact && want && !got {
			t.Fatalf("false negative at u=%v: count=%d k=%d", u, count, q.K)
		}
	}
}

func randomInstance(rng *rand.Rand, n, d int) ([]vec.Vec, Query) {
	pts := make([]vec.Vec, n)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = 0.01 + 0.99*rng.Float64()
		}
		pts[i] = p
	}
	q := Query{
		Q:   pts[rng.Intn(n)].Clone(),
		K:   1 + rng.Intn(5),
		Eps: rng.Float64() * 0.25,
	}
	for j := range q.Q {
		q.Q[j] = math.Min(1, math.Max(0.01, q.Q[j]+(rng.Float64()-0.5)*0.2))
	}
	return pts, q
}

func TestSweepingMatchesBruteForce2D(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 150; trial++ {
		pts, q := randomInstance(rng, 3+rng.Intn(40), 2)
		want, err := BruteForce2D(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Sweeping(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		wi, gi := want.Intervals(), got.Intervals()
		if len(wi) != len(gi) {
			t.Fatalf("trial %d (k=%d ε=%.3f): %d intervals vs brute force %d\n got=%v\nwant=%v",
				trial, q.K, q.Eps, len(gi), len(wi), gi, wi)
		}
		for i := range wi {
			if math.Abs(wi[i][0]-gi[i][0]) > 1e-7 || math.Abs(wi[i][1]-gi[i][1]) > 1e-7 {
				t.Fatalf("trial %d interval %d: got %v want %v", trial, i, gi[i], wi[i])
			}
		}
	}
}

func TestEPTMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for _, d := range []int{2, 3, 4, 5} {
		for trial := 0; trial < 25; trial++ {
			pts, q := randomInstance(rng, 10+rng.Intn(50), d)
			reg, err := EPT(pts, q)
			if err != nil {
				t.Fatal(err)
			}
			checkRegionAgainstOracle(t, reg, pts, q, rng, 200, true)
		}
	}
}

func TestEPTMatchesBruteForceND(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for _, d := range []int{3, 4} {
		for trial := 0; trial < 15; trial++ {
			pts, q := randomInstance(rng, 6+rng.Intn(8), d)
			want, err := BruteForceND(pts, q, 100)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EPT(pts, q)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				u := vec.RandSimplex(rng, d)
				_, margin := CountBetter(pts, q, u)
				if margin < boundaryMargin {
					continue
				}
				if want.Contains(u) != got.Contains(u) {
					t.Fatalf("d=%d trial %d: disagreement at %v (brute=%v ept=%v)",
						d, trial, u, want.Contains(u), got.Contains(u))
				}
			}
		}
	}
}

func TestSweepingMatchesEPT2D(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 60; trial++ {
		pts, q := randomInstance(rng, 5+rng.Intn(60), 2)
		sw, err := Sweeping(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := EPT(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			u := vec.RandSimplex(rng, 2)
			_, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if sw.Contains(u) != ep.Contains(u) {
				t.Fatalf("trial %d: disagreement at %v (sweep=%v ept=%v)",
					trial, u, sw.Contains(u), ep.Contains(u))
			}
		}
	}
}

// A-PC is approximate: it must never return an unqualified utility vector
// (Lemma 5.7 soundness), and with generous sampling it should recover most
// of the qualified region.
func TestAPCSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for _, d := range []int{2, 3, 4} {
		for trial := 0; trial < 20; trial++ {
			pts, q := randomInstance(rng, 10+rng.Intn(40), d)
			reg, err := APC(pts, q, APCOptions{Samples: 60, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			checkRegionAgainstOracle(t, reg, pts, q, rng, 200, false)
		}
	}
}

func TestAPCRecallImprovesWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	pts := dataset.Generate(dataset.Independent, 200, 3, 77)
	q := Query{Q: dataset.RandQuery(rng, pts), K: 5, Eps: 0.1}
	exact, err := EPT(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	recall := func(samples int) float64 {
		reg, err := APC(pts, q, APCOptions{Samples: samples, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		hit, total := 0, 0
		probe := rand.New(rand.NewSource(1))
		for i := 0; i < 3000; i++ {
			u := vec.RandSimplex(probe, 3)
			_, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin || !exact.Contains(u) {
				continue
			}
			total++
			if reg.Contains(u) {
				hit++
			}
		}
		if total == 0 {
			t.Skip("qualified region too small to assess recall")
		}
		return float64(hit) / float64(total)
	}
	low := recall(5)
	high := recall(400)
	if high < low-0.05 {
		t.Fatalf("recall did not improve with samples: N=5 → %.3f, N=400 → %.3f", low, high)
	}
	if high < 0.9 {
		t.Fatalf("recall with 400 samples = %.3f, want ≥ 0.9", high)
	}
}

// ε = 0 must coincide with the continuous reverse top-k: u qualifies iff
// fewer than k points strictly beat q.
func TestEpsilonZeroIsReverseTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 30; trial++ {
		pts, q := randomInstance(rng, 20, 3)
		q.Eps = 0
		reg, err := EPT(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150; i++ {
			u := vec.RandSimplex(rng, 3)
			fq := u.Dot(q.Q)
			beat, margin := 0, math.Inf(1)
			for _, p := range pts {
				diff := u.Dot(p) - fq
				if diff > 0 {
					beat++
				}
				if a := math.Abs(diff); a < margin {
					margin = a
				}
			}
			if margin < boundaryMargin {
				continue
			}
			if got, want := reg.Contains(u), beat < q.K; got != want {
				t.Fatalf("trial %d: ε=0 mismatch at %v: beat=%d k=%d got=%v", trial, u, beat, q.K, got)
			}
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(808))

	t.Run("query dominates everything", func(t *testing.T) {
		pts := []vec.Vec{vec.Of(0.1, 0.2, 0.1), vec.Of(0.2, 0.1, 0.3)}
		q := Query{Q: vec.Of(0.9, 0.9, 0.9), K: 1, Eps: 0.1}
		reg, err := EPT(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		// Whole space qualifies.
		for i := 0; i < 50; i++ {
			if !reg.Contains(vec.RandSimplex(rng, 3)) {
				t.Fatal("dominating query should qualify everywhere")
			}
		}
	})

	t.Run("query dominated by k points", func(t *testing.T) {
		pts := []vec.Vec{vec.Of(0.9, 0.9), vec.Of(0.95, 0.95)}
		q := Query{Q: vec.Of(0.1, 0.1), K: 2, Eps: 0.05}
		reg, err := Sweeping(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reg.Empty() {
			t.Fatalf("region should be empty, got %v", reg.Intervals())
		}
		regE, err := EPT(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		if !regE.Empty() {
			t.Fatal("EPT should agree the region is empty")
		}
	})

	t.Run("query in dataset", func(t *testing.T) {
		pts := []vec.Vec{vec.Of(0.5, 0.5), vec.Of(0.6, 0.4), vec.Of(0.4, 0.6)}
		q := Query{Q: pts[0].Clone(), K: 1, Eps: 0.1}
		reg, err := Sweeping(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		// q itself never counts against q: the plane h_{q,q} has normal
		// εq ≥ 0 and is dropped. The middle of the space qualifies.
		if !reg.Contains(vec.Of(0.5, 0.5)) {
			t.Fatal("q at its own position should qualify for ε=0.1")
		}
	})

	t.Run("duplicate points", func(t *testing.T) {
		p := vec.Of(0.8, 0.3)
		pts := []vec.Vec{p, p.Clone(), p.Clone(), vec.Of(0.3, 0.8)}
		pts2, q := pts, Query{Q: vec.Of(0.6, 0.6), K: 2, Eps: 0.05}
		want, err := BruteForce2D(pts2, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Sweeping(pts2, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			u := vec.RandSimplex(rng, 2)
			_, margin := CountBetter(pts2, q, u)
			if margin < boundaryMargin {
				continue
			}
			if want.Contains(u) != got.Contains(u) {
				t.Fatalf("duplicate points: disagreement at %v", u)
			}
		}
		gotE, err := EPT(pts2, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			u := vec.RandSimplex(rng, 2)
			_, margin := CountBetter(pts2, q, u)
			if margin < boundaryMargin {
				continue
			}
			if want.Contains(u) != gotE.Contains(u) {
				t.Fatalf("duplicate points (EPT): disagreement at %v", u)
			}
		}
	})

	t.Run("k larger than n", func(t *testing.T) {
		pts := []vec.Vec{vec.Of(0.9, 0.9), vec.Of(0.8, 0.8)}
		q := Query{Q: vec.Of(0.1, 0.1), K: 10, Eps: 0.0}
		reg, err := EPT(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		// Fewer than k points can ever beat q: everything qualifies.
		for i := 0; i < 30; i++ {
			if !reg.Contains(vec.RandSimplex(rng, 2)) {
				t.Fatal("k > n should qualify everywhere")
			}
		}
	})

	t.Run("empty dataset", func(t *testing.T) {
		q := Query{Q: vec.Of(0.5, 0.5), K: 1, Eps: 0.1}
		reg, err := EPT(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		if reg.Empty() {
			t.Fatal("no competitors: whole space qualifies")
		}
	})

	t.Run("invalid queries error", func(t *testing.T) {
		pts := []vec.Vec{vec.Of(0.5, 0.5)}
		if _, err := EPT(pts, Query{Q: vec.Of(0.5, 0.5), K: 0, Eps: 0.1}); err == nil {
			t.Error("k=0 should error")
		}
		if _, err := Sweeping(pts, Query{Q: vec.Of(0.5, 0.5, 0.5), K: 1, Eps: 0.1}); err == nil {
			t.Error("3-d query to Sweeping should error")
		}
		if _, err := APC(pts, Query{Q: vec.Of(0.5, 0.5), K: 1, Eps: 2}, APCOptions{}); err == nil {
			t.Error("ε=2 should error")
		}
		if _, err := EPT([]vec.Vec{vec.Of(0.5, 0.5, 0.5)}, Query{Q: vec.Of(0.5, 0.5), K: 1, Eps: 0.1}); err == nil {
			t.Error("mismatched point dims should error")
		}
	})
}

func TestSampleSizeFor(t *testing.T) {
	n := SampleSizeFor(0.1, 0.05, 4)
	if n < 400 || n > 1000 {
		t.Fatalf("N = %d outside plausible range for ρ=0.1 δ=0.05 d=4", n)
	}
	if SampleSizeFor(0, 0.05, 4) != 0 || SampleSizeFor(0.1, 0, 4) != 0 {
		t.Fatal("invalid parameters should return 0")
	}
	// Shrinking ρ increases N quadratically.
	if SampleSizeFor(0.05, 0.05, 4) < 3*n {
		t.Fatal("N should grow ~1/ρ²")
	}
}
