package core

import (
	"math"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

func TestMinQualifyingEps(t *testing.T) {
	pts := table3()
	u := vec.Of(0.5, 0.5)
	// From Example 3.3: 2-regratio of q at u is 0.01/0.56, so ε* equals it.
	got := MinQualifyingEps(pts, 2, vec.Of(0.4, 0.7), u)
	if math.Abs(got-0.01/0.56) > 1e-12 {
		t.Fatalf("ε* = %v, want %v", got, 0.01/0.56)
	}
	// A dominating query has ε* = 0.
	if MinQualifyingEps(pts, 1, vec.Of(0.99, 0.99), u) != 0 {
		t.Fatal("dominating query should need ε* = 0")
	}
	if MinQualifyingEps(nil, 1, vec.Of(0.5, 0.5), u) != 0 {
		t.Fatal("empty market should need ε* = 0")
	}
}

// The profile's Share(ε) must match an independent Region.Measure at
// several thresholds.
func TestShareProfileMatchesRegionMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts, q := randomInstance(rng, 60, 3)
	sp, err := NewShareProfile(pts, q, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, 0.05, 0.1, 0.2} {
		q2 := q
		q2.Eps = eps
		reg, err := EPT(pts, q2)
		if err != nil {
			t.Fatal(err)
		}
		want := reg.Measure(rand.New(rand.NewSource(3)), 20000)
		got := sp.Share(eps)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("ε=%v: profile share %v vs region measure %v", eps, got, want)
		}
	}
}

func TestShareProfileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts, q := randomInstance(rng, 40, 4)
	sp, err := NewShareProfile(pts, q, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for eps := 0.0; eps <= 0.5; eps += 0.02 {
		s := sp.Share(eps)
		if s < prev {
			t.Fatalf("share decreased at ε=%v: %v < %v", eps, s, prev)
		}
		if s < 0 || s > 1 {
			t.Fatalf("share %v out of range", s)
		}
		prev = s
	}
	if sp.Samples() != 3000 {
		t.Fatalf("samples = %d", sp.Samples())
	}
}

func TestEpsForShare(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts, q := randomInstance(rng, 40, 3)
	sp, err := NewShareProfile(pts, q, 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0.25, 0.5, 0.9} {
		eps := sp.EpsForShare(target)
		got := sp.Share(eps)
		if got < target-1e-9 {
			t.Fatalf("EpsForShare(%v) = %v reaches only %v", target, eps, got)
		}
	}
	if sp.EpsForShare(0) != 0 {
		t.Fatal("target 0 should need ε = 0")
	}
	if sp.EpsForShare(1) != sp.eps[len(sp.eps)-1] {
		t.Fatal("target 1 should return the max sampled ε*")
	}
}

func TestShareProfileValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	if _, err := NewShareProfile(nil, Query{Q: vec.Of(0.5, 0.5), K: 0, Eps: 0}, 10, rng); err == nil {
		t.Fatal("invalid query accepted")
	}
	if _, err := NewShareProfile([]vec.Vec{vec.Of(1, 2, 3)}, Query{Q: vec.Of(0.5, 0.5), K: 1, Eps: 0}, 10, rng); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}
