package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"rrq/internal/faultinject"
	"rrq/internal/obs"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// ErrDeadline is returned when a solver exceeds its context deadline.
var ErrDeadline = errors.New("core: deadline exceeded")

// MapContextErr translates a context error into the solver error
// vocabulary: context.DeadlineExceeded becomes ErrDeadline (preserving the
// error every caller already matches on), while cancellation and other
// errors pass through unchanged.
func MapContextErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadline
	}
	return err
}

// CtxChecker amortizes context cancellation checks over a solver's hot
// loop: Stop consults ctx.Err() only once every mask+1 calls, so a single
// check costs a counter increment rather than an atomic load of the
// context state. A checker is not safe for concurrent use; parallel
// phases create one per worker.
//
// The checker doubles as the per-solve observability carrier: it captures
// the trace hook and metrics registry riding on the context once at
// construction, so the solver hot path pays a single nil-check per
// potential event (Emit) or phase boundary (Phase) when observability is
// off.
type CtxChecker struct {
	ctx    context.Context
	mask   uint32
	n      uint32
	err    error
	trace  obs.TraceFunc
	reg    *obs.Registry
	meter  *workMeter
	faults *faultinject.Injector
	fkey   []float64
}

// NewCtxChecker builds a checker that samples ctx every mask+1 Stop calls
// (mask must be 2^m − 1). A context that can never be canceled
// (ctx.Done() == nil, e.g. context.Background()) disables cancellation
// checking; an already-expired context trips the checker immediately, so
// solvers fail fast before doing any work. Any obs trace hook, metrics
// registry, work budget (ContextWithWorkBudget) or fault injector carried
// by ctx is captured once here, so the hot path pays one nil-check per
// facility.
func NewCtxChecker(ctx context.Context, mask uint32) *CtxChecker {
	c := &CtxChecker{
		trace:  obs.TraceFrom(ctx),
		reg:    obs.RegistryFrom(ctx),
		meter:  meterFrom(ctx),
		faults: faultinject.From(ctx),
		mask:   mask,
	}
	if ctx != nil && ctx.Done() != nil {
		c.ctx = ctx
		c.err = ctx.Err()
	}
	return c
}

// SetFaultKey binds the query point used to match scoped faults fired
// through this checker. A no-op when no injector is armed.
func (c *CtxChecker) SetFaultKey(key []float64) {
	if c.faults != nil {
		c.fkey = key
	}
}

// Fault fires the named fault point with the bound query key: a single
// nil-check when no injector is armed. A panic fault panics from here (the
// serving layer's recovery turns it into a *SolveError); an error fault's
// error is returned for the site to apply.
func (c *CtxChecker) Fault(p faultinject.Point) error {
	if c.faults == nil {
		return nil
	}
	return c.faults.Fire(p, c.fkey)
}

// fail poisons the checker with err: every subsequent Stop reports true and
// Err returns err. Used by fault sites that cannot propagate an error
// directly and by worker pools converting a recovered panic into an abort.
func (c *CtxChecker) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Emit delivers one trace event when tracing is on; otherwise it is a
// single nil-check.
func (c *CtxChecker) Emit(kind obs.EventKind, n int) {
	if c.trace != nil {
		c.trace(obs.Event{Kind: kind, N: n})
	}
}

// Tracing reports whether a trace hook is attached, for call sites that
// want to skip event bookkeeping entirely when off.
func (c *CtxChecker) Tracing() bool { return c.trace != nil }

// nopPhase is the shared no-op phase closer returned when metrics are off,
// so Phase allocates nothing on the disabled path.
var nopPhase = func() {}

// Phase starts a named phase timer and returns its closer. With no
// registry attached the call is a nil-check returning a shared no-op, so
// instrumented solvers cost nothing when metrics are off.
//
// The closer is idempotent: solvers close each phase at its natural end
// AND defer the closer as an abort net, so a query canceled (or failed)
// mid-phase still records exactly one observation per opened phase — no
// dangling open phases in traces.
func (c *CtxChecker) Phase(name string) func() {
	if c.reg == nil {
		return nopPhase
	}
	t := c.reg.Timer(name)
	start := time.Now()
	closed := false
	return func() {
		if closed {
			return
		}
		closed = true
		t.Observe(time.Since(start))
	}
}

// Stop counts one unit of work and reports whether the solve should abort:
// on cancellation, a passed deadline, an exhausted work budget, or an
// earlier poisoning. Cancellation and budget are both evaluated on the
// amortized cadence (every mask+1 calls), so a single Stop stays a counter
// increment plus a few nil-checks.
func (c *CtxChecker) Stop() bool {
	if c.err != nil {
		return true
	}
	if c.ctx == nil && c.meter == nil {
		return false
	}
	if c.n++; c.n&c.mask == 0 {
		if c.ctx != nil {
			c.err = c.ctx.Err()
		}
		if c.err == nil && c.meter != nil {
			chunk := int64(c.mask) + 1
			if ferr := c.Fault(faultinject.BudgetCheck); ferr != nil {
				c.err = ferr
			} else if c.meter.charge(chunk) {
				c.err = &BudgetError{Limit: c.meter.limit, Spent: c.meter.used.Load()}
			}
		}
	}
	return c.err != nil
}

// Failed reports whether an earlier Stop observed cancellation, without
// consulting the context again.
func (c *CtxChecker) Failed() bool { return c.err != nil }

// Err returns the abort cause in solver vocabulary (ErrDeadline for a
// passed deadline, context.Canceled for cancellation), or nil.
func (c *CtxChecker) Err() error { return MapContextErr(c.err) }

// Stats is the common work-counter type reported by every solver. It
// generalizes the former EPTStats: each solver fills the counters that
// apply to it and leaves the rest zero.
type Stats struct {
	PlanesBuilt    int // crossing planes before reduction
	PlanesInserted int // planes surviving reduction / entering the sweep
	NodesCreated   int // tree nodes allocated (E-PT, LP-CTA)
	Splits         int // node splits performed (E-PT lazy splits, LP-CTA)
	LPSolves       int // simplex LP solves (LP-CTA)
	Samples        int // utility samples classified (A-PC)
	Pieces         int // partitions in the returned region
}

// Add accumulates other's counters into st, for batch-level aggregation.
func (st *Stats) Add(other Stats) {
	st.PlanesBuilt += other.PlanesBuilt
	st.PlanesInserted += other.PlanesInserted
	st.NodesCreated += other.NodesCreated
	st.Splits += other.Splits
	st.LPSolves += other.LPSolves
	st.Samples += other.Samples
	st.Pieces += other.Pieces
}

// Prepared captures the per-dataset work that every solver used to repeat
// on each call: dimension validation and, when enabled, the k-skyband
// prefilter, cached per k so that a batch of queries sharing a rank
// parameter computes it once. A Prepared is safe for concurrent use.
//
// A Prepared built by PrepareIndexed instead delegates both the prefilter
// and plane construction to an index snapshot: PointsFor serves the
// snapshot's incrementally maintained k-skyband, and solvers draw their
// classified plane sets from the snapshot's deduplicated storage rather
// than rebuilding them per call.
type Prepared struct {
	pts     []vec.Vec
	dim     int
	skyband bool

	pointsFor func(k int) []vec.Vec // optional index-backed prefilter
	planes    PlaneSource           // optional shared plane storage

	mu      sync.Mutex
	bands   map[int][]vec.Vec
	counts  []int // capped dominator counts at countsK (batch sharing)
	countsK int
}

// Prepare validates pts against dim once — dimension, finiteness and the
// (0,1] positivity domain, so NaN/Inf and non-positive values are rejected
// with a typed *DataError instead of flowing silently into the geometry
// kernels — and returns the reusable preprocessing handle. When
// skybandPrefilter is set, PointsFor(k) serves the cached k-skyband instead
// of the full point set — sound for reverse regret queries because a point
// dominated by ≥ k others can only count against q on preferences where
// its dominators already do.
func Prepare(pts []vec.Vec, dim int, skybandPrefilter bool) (*Prepared, error) {
	if dim < 2 {
		return nil, fmt.Errorf("core: dimension %d < 2", dim)
	}
	for i, p := range pts {
		if p.Dim() != dim {
			return nil, dataErrf(i, -1, "dimension %d, want %d", p.Dim(), dim)
		}
		if de := validatePoint(i, p); de != nil {
			return nil, de
		}
	}
	return &Prepared{pts: pts, dim: dim, skyband: skybandPrefilter}, nil
}

// PrepareIndexed wraps an index snapshot's point storage as a Prepared
// without re-validating: the snapshot validated every point when it was
// built or mutated. pointsFor (non-nil) serves the snapshot's maintained
// k-skyband; planes (may be nil) serves classified plane sets from the
// snapshot's shared storage. Both must be safe for concurrent use, and the
// plane sets they return are treated as read-only by every solver.
func PrepareIndexed(pts []vec.Vec, dim int, pointsFor func(k int) []vec.Vec, planes PlaneSource) *Prepared {
	return &Prepared{pts: pts, dim: dim, pointsFor: pointsFor, planes: planes}
}

// Dim returns the validated dataset dimension.
func (p *Prepared) Dim() int { return p.dim }

// Len returns the full dataset size.
func (p *Prepared) Len() int { return len(p.pts) }

// Points returns the full validated point set (not copied; callers must
// not mutate).
func (p *Prepared) Points() []vec.Vec { return p.pts }

// PointsFor returns the point set a solver should run on for rank k: the
// index-maintained k-skyband for an indexed Prepared, the cached k-skyband
// when prefiltering is enabled, the full set otherwise.
func (p *Prepared) PointsFor(k int) []vec.Vec {
	if p.pointsFor != nil {
		return p.pointsFor(k)
	}
	if !p.skyband || k < 1 {
		return p.pts
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.bands[k]; ok {
		return b
	}
	if p.bands == nil {
		p.bands = make(map[int][]vec.Vec)
	}
	b := skyband.Select(p.pts, skyband.KSkyband(p.pts, k))
	p.bands[k] = b
	return b
}

// Solver is the uniform solving contract every algorithm implements:
// cancellable via ctx (deadlines surface as ErrDeadline, cancellation as
// context.Canceled), fed from shared per-dataset preprocessing, and
// reporting common work counters. Implementations must be stateless or
// internally synchronized: SolveBatch calls Solve concurrently.
//
// The Prepared path validates the query against the prepared dimension and
// trusts the points (validated once at Prepare / index-build time); the
// free *Context functions re-validate the full instance on every call.
type Solver interface {
	Name() string
	Solve(ctx context.Context, prep *Prepared, q Query) (*Region, Stats, error)
}

// validatePrepared checks q for a Prepared-path solve: intrinsic validity
// first (against the query's own dimension, so a malformed query point
// reports field "q"), then the match against the prepared dataset dimension
// (field "dim") — the same error precedence the free *Context functions
// produce through ValidateInstance.
func validatePrepared(q Query, dim int) error {
	if err := q.Validate(q.Q.Dim()); err != nil {
		return err
	}
	if q.Q.Dim() != dim {
		return errDimMismatch(dim, q.Q.Dim())
	}
	return nil
}

// SweepingSolver answers 2-d queries with the linear-time sweep (§4).
type SweepingSolver struct{}

func (SweepingSolver) Name() string { return "Sweeping" }

func (SweepingSolver) Solve(ctx context.Context, prep *Prepared, q Query) (*Region, Stats, error) {
	if err := validatePrepared(q, prep.dim); err != nil {
		return nil, Stats{}, err
	}
	return sweepSolve(ctx, prep.PointsFor(q.K), q, prep.planes)
}

// EPTSolver answers queries exactly with the partition tree (§5.1).
type EPTSolver struct {
	Opt EPTOptions
}

func (EPTSolver) Name() string { return "E-PT" }

func (s EPTSolver) Solve(ctx context.Context, prep *Prepared, q Query) (*Region, Stats, error) {
	if err := validatePrepared(q, prep.dim); err != nil {
		return nil, Stats{}, err
	}
	return eptSolve(ctx, prep.PointsFor(q.K), q, s.Opt, prep.planes)
}

// APCSolver answers queries approximately by progressive construction
// (§5.2). Opt.Rng must be nil when the solver is used concurrently; seeds
// are deterministic per query, so batch answers match sequential ones.
type APCSolver struct {
	Opt APCOptions
}

func (APCSolver) Name() string { return "A-PC" }

func (s APCSolver) Solve(ctx context.Context, prep *Prepared, q Query) (*Region, Stats, error) {
	return APCContext(ctx, prep.PointsFor(q.K), q, s.Opt)
}

// BruteForceSolver is the exact reference solver: the direct 2-d crossing
// enumeration, or the full arrangement in higher dimensions (bounded by
// MaxPlanes, default 64).
type BruteForceSolver struct {
	MaxPlanes int
}

func (BruteForceSolver) Name() string { return "BruteForce" }

func (s BruteForceSolver) Solve(ctx context.Context, prep *Prepared, q Query) (*Region, Stats, error) {
	if err := validatePrepared(q, prep.dim); err != nil {
		return nil, Stats{}, err
	}
	pts := prep.PointsFor(q.K)
	if prep.Dim() == 2 {
		return brute2DSolve(ctx, pts, q, prep.planes)
	}
	maxPlanes := s.MaxPlanes
	if maxPlanes <= 0 {
		maxPlanes = 64
	}
	return bruteNDSolve(ctx, pts, q, maxPlanes, prep.planes)
}

// BatchOutcome is one query's result within a batch: the answer, the work
// counters and wall time, or the per-query error (other queries are
// unaffected). A recovered panic surfaces as a per-query *SolveError in
// Err. Degraded is non-nil when the answer came from a fallback solver
// under a SolvePolicy.
//
// Dedup marks a slot whose query was an exact duplicate (equal Query.Key())
// of an earlier one: the region pointer, stats and error are copies of the
// representative's single solve (regions are immutable, so sharing the
// pointer is safe) and Elapsed is zero — no work was performed for the
// slot.
type BatchOutcome struct {
	Region   *Region
	Stats    Stats
	Elapsed  time.Duration
	Err      error
	Degraded *Degradation
	Dedup    bool
}

// BatchOptions tunes how SolveBatchOptions dispatches a batch.
type BatchOptions struct {
	// Workers bounds the worker pool; ≤ 0 uses GOMAXPROCS.
	Workers int
	// Share enables batch-scoped cross-query sharing: one capped skyband
	// computation at the batch's maximum k serves every query's prefilter,
	// classified plane sets are built once per (query point, ε) group and
	// narrowed per k, and the dispatch order clusters queries on shared
	// state. Answers are byte-identical to independent solves.
	Share bool
	// Dedup collapses exact-duplicate queries (equal Query.Key()) into one
	// solve whose outcome is fanned out to every duplicate slot, marked
	// with BatchOutcome.Dedup.
	Dedup bool
}

// SolveBatch answers queries over one shared Prepared with a bounded
// worker pool — SolveBatchPolicy with a bare policy (no fallbacks, no
// per-query limits). Panic isolation still applies: a solver panic
// surfaces as that query's *SolveError.
func SolveBatch(ctx context.Context, s Solver, prep *Prepared, queries []Query, workers int) []BatchOutcome {
	return SolveBatchPolicy(ctx, SolvePolicy{Solver: s}, prep, queries, workers)
}

// SolveBatchPolicy answers queries over one shared Prepared with a bounded
// worker pool, each query guarded by the policy: panics are isolated into
// per-query *SolveError values, per-query timeouts and work budgets are
// applied per attempt, and degradable failures re-run on the fallback
// chain (the outcome's Degraded then records why and by whom). Results are
// returned in query order regardless of worker count and scheduling;
// errors are isolated per query. When ctx is canceled mid-batch, queries
// not yet started report ctx.Err() (e.g. context.Canceled) while in-flight
// solves abort at their next amortized check. workers ≤ 0 uses GOMAXPROCS.
func SolveBatchPolicy(ctx context.Context, pol SolvePolicy, prep *Prepared, queries []Query, workers int) []BatchOutcome {
	return SolveBatchOptions(ctx, pol, prep, queries, BatchOptions{Workers: workers})
}

// SolveBatchOptions is SolveBatchPolicy with batch-level optimizations
// under explicit control: exact-duplicate collapse (opt.Dedup), batch-
// scoped cross-query sharing with clustered dispatch (opt.Share), and a
// per-worker scratch arena that makes repeated solves on one worker
// allocation-free in their plane phases. Results are returned in input
// order regardless of worker count, clustering or deduplication, and are
// byte-identical to what independent per-query solves would produce.
func SolveBatchOptions(ctx context.Context, pol SolvePolicy, prep *Prepared, queries []Query, opt BatchOptions) []BatchOutcome {
	out := make([]BatchOutcome, len(queries))
	if len(queries) == 0 {
		return out
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// One PointKey per query, computed once and reused by deduplication,
	// sharing-group assignment and clustering.
	var keys []string
	if (opt.Dedup || opt.Share) && len(queries) > 1 {
		keys = make([]string, len(queries))
		for i, q := range queries {
			keys[i] = q.PointKey()
		}
	}

	// Deduplicate: one representative slot per distinct query identity; the
	// other slots receive a copy of its outcome after the solves.
	order := make([]int, 0, len(queries))
	var dupOf []int
	if opt.Dedup && len(queries) > 1 {
		type qID struct {
			point string
			k     int
			eps   uint64
		}
		dupOf = make([]int, len(queries))
		seen := make(map[qID]int, len(queries))
		for i, q := range queries {
			id := qID{point: keys[i], k: q.K, eps: math.Float64bits(q.Eps)}
			if j, ok := seen[id]; ok {
				dupOf[i] = j
			} else {
				seen[id] = i
				dupOf[i] = -1
				order = append(order, i)
			}
		}
	} else {
		for i := range queries {
			order = append(order, i)
		}
	}

	solvePrep := prep
	var view *shareView
	if opt.Share && len(queries) > 1 {
		solvePrep, view = prep.shareFor(queries, keys)
		clusterOrder(order, queries, keys)
	}
	if workers > len(order) {
		workers = len(order)
	}

	solveOne := func(sctx context.Context, a *Arena, i int) {
		if err := sctx.Err(); err != nil {
			// Same vocabulary as an in-flight abort: ErrDeadline for a
			// passed deadline, context.Canceled for cancellation.
			out[i].Err = MapContextErr(err)
			return
		}
		if view != nil {
			a.group = view.groupOf[i]
		}
		start := time.Now()
		out[i].Region, out[i].Stats, out[i].Degraded, out[i].Err = pol.Solve(sctx, solvePrep, queries[i], i)
		out[i].Elapsed = time.Since(start)
	}
	if workers == 1 {
		a := getArena()
		a.share = view
		actx := contextWithArena(ctx, a)
		for _, i := range order {
			solveOne(actx, a, i)
		}
		putArena(a)
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				a := getArena()
				defer putArena(a)
				a.share = view
				actx := contextWithArena(ctx, a)
				for i := range idx {
					solveOne(actx, a, i)
				}
			}()
		}
		for _, i := range order {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	if dupOf != nil {
		for i, j := range dupOf {
			if j >= 0 {
				out[i] = out[j]
				out[i].Elapsed = 0
				out[i].Dedup = true
			}
		}
	}
	return out
}
