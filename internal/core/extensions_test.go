package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"rrq/internal/vec"
)

func TestFilterCustomers(t *testing.T) {
	pts := table3()
	q := Query{Q: vec.Of(0.4, 0.7), K: 2, Eps: 0.1}
	customers := []vec.Vec{
		vec.Of(0.5, 0.5),   // qualifies (Example 3.3)
		vec.Of(0.99, 0.01), // deep in p2/p3 territory
		vec.Of(0.05, 0.95),
	}
	got, err := FilterCustomers(pts, q, customers)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, i := range got {
		found[i] = true
	}
	if !found[0] {
		t.Error("customer 0 must qualify")
	}
	// Every returned customer must agree with the continuous region.
	reg, err := EPT(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range customers {
		if found[i] != reg.Contains(u) {
			t.Errorf("customer %d: discrete=%v region=%v", i, found[i], reg.Contains(u))
		}
	}
}

func TestFilterCustomersErrors(t *testing.T) {
	pts := table3()
	q := Query{Q: vec.Of(0.4, 0.7), K: 0, Eps: 0.1}
	if _, err := FilterCustomers(pts, q, nil); err == nil {
		t.Error("invalid query accepted")
	}
	q.K = 1
	if _, err := FilterCustomers(pts, q, []vec.Vec{vec.Of(1, 0, 0)}); err == nil {
		t.Error("mismatched customer dimension accepted")
	}
}

func TestQueryValidateRejectsNaN(t *testing.T) {
	bad := []Query{
		{Q: vec.Of(math.NaN(), 0.5), K: 1, Eps: 0.1},
		{Q: vec.Of(math.Inf(1), 0.5), K: 1, Eps: 0.1},
		{Q: vec.Of(0.5, 0.5), K: 1, Eps: math.NaN()},
	}
	for i, q := range bad {
		if err := q.Validate(2); err == nil {
			t.Errorf("case %d: NaN/Inf accepted", i)
		}
	}
}

// Parallel A-PC must return exactly the serial answer.
func TestAPCParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3333))
	for trial := 0; trial < 10; trial++ {
		pts, q := randomInstance(rng, 40, 3)
		serial, err := APC(pts, q, APCOptions{Samples: 80, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := APC(pts, q, APCOptions{Samples: 80, Seed: 5, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if serial.NumPieces() != parallel.NumPieces() {
			t.Fatalf("piece counts differ: %d vs %d", serial.NumPieces(), parallel.NumPieces())
		}
		for i := 0; i < 300; i++ {
			u := vec.RandSimplex(rng, 3)
			if serial.Contains(u) != parallel.Contains(u) {
				t.Fatalf("parallel A-PC diverged at %v", u)
			}
		}
	}
}

func TestEPTDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(4444))
	pts, q := randomInstance(rng, 300, 4)
	// A deadline in the past must abort promptly with ErrDeadline.
	past, cancelPast := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelPast()
	_, _, err := EPTContext(past, pts, q, EPTOptions{})
	if !errors.Is(err, ErrDeadline) {
		// Tiny instances can finish before the first deadline check; only
		// accept success when the region was actually computable instantly.
		if err != nil {
			t.Fatalf("err = %v, want ErrDeadline or nil", err)
		}
	}
	// A generous deadline must not interfere.
	future, cancelFuture := context.WithDeadline(context.Background(), time.Now().Add(time.Minute))
	defer cancelFuture()
	reg, _, err := EPTContext(future, pts, q, EPTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := EPT(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		u := vec.RandSimplex(rng, 4)
		_, margin := CountBetter(pts, q, u)
		if margin < boundaryMargin {
			continue
		}
		if reg.Contains(u) != want.Contains(u) {
			t.Fatal("deadline-enabled run diverged")
		}
	}
}
