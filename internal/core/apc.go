package core

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"rrq/internal/geom"
	"rrq/internal/obs"
	"rrq/internal/vec"
)

// APCOptions configures the approximate solver.
type APCOptions struct {
	// Samples is the number N of utility vectors to draw. When ≤ 0 the
	// paper's default N = 10·(d−1) is used (§6.3).
	Samples int
	// Seed drives the deterministic sampler; ignored when Rng is set.
	Seed int64
	// Rng, when non-nil, supplies the randomness. Must be nil when the
	// solver is shared across goroutines (SolveBatch).
	Rng *rand.Rand
	// Workers parallelizes the per-sample utility scans (the O(N·n·d)
	// phase). ≤ 1 runs serially. The result is identical for any worker
	// count: samples are drawn up front and merged in sample order.
	Workers int
}

// SampleSizeFor returns the sample size of Lemma 5.10 that finds every
// qualified partition of volume ratio > rho with confidence 1−delta:
// N = (d + ln(1/δ)) / ρ².
func SampleSizeFor(rho, delta float64, d int) int {
	if rho <= 0 || rho >= 1 || delta <= 0 || delta >= 1 {
		return 0
	}
	return int(math.Ceil((float64(d) + math.Log(1/delta)) / (rho * rho)))
}

// APC solves RRQ approximately by progressive construction (paper §5.2,
// Algorithm 3): sample utility vectors, keep the qualified ones, merge
// samples whose positive point-sets nest (Lemma 5.9), and build one
// qualified partition per surviving sample (Lemma 5.7), skipping samples
// that land in an already-built partition (Lemma 5.8). Every returned
// partition is qualified in full; partitions never hit by a sample may be
// missed, which is the approximation.
func APC(pts []vec.Vec, q Query, opt APCOptions) (*Region, error) {
	r, _, err := APCContext(context.Background(), pts, q, opt)
	return r, err
}

// APCContext runs A-PC under a context: the sample-classification and
// partition-construction loops observe cancellation with amortized checks.
// A passed deadline surfaces as ErrDeadline, cancellation as ctx.Err().
// Trace hooks and metrics registries attached to ctx (see internal/obs)
// receive the solve's work events and phase timings.
func APCContext(ctx context.Context, pts []vec.Vec, q Query, opt APCOptions) (*Region, Stats, error) {
	var st Stats
	d := q.Q.Dim()
	if err := ValidateInstance(pts, q); err != nil {
		return nil, st, err
	}
	check := NewCtxChecker(ctx, 0xff)
	check.SetFaultKey(q.Q)
	if check.Failed() {
		return nil, st, check.Err()
	}
	rng := opt.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	n := opt.Samples
	if n <= 0 {
		n = 10 * (d - 1)
	}
	st.Samples = n
	classifyPhase := check.Phase("phase.apc.classify")
	// Abort net: the closer is idempotent, so a cancellation or worker
	// failure mid-classify still closes the phase exactly once.
	defer classifyPhase()

	// Sample and keep qualified utility vectors with their D⁻ sets. D⁻ has
	// fewer than k elements for a qualified sample, so the sets stay tiny
	// and D⁺ ⊆ D⁺' tests reduce to superset tests on D⁻.
	//
	// Each kept sample carries two roles of its D⁻ set: orig stays fixed
	// and defines D⁺ = complement(orig) for the subset tests and the
	// positive constraints, while negC (initially orig) is the set used
	// for the negative constraints and may shrink through merges. Points
	// in orig \ negC are left unconstrained, which is precisely how the
	// merged partition becomes the union of the samples' partitions.
	type sample struct {
		u    vec.Vec
		orig []int32 // D⁻ at sampling time (sorted)
		negC []int32 // D⁻ used for negative constraints after merging
	}
	dropped := apcDroppedPlanes(pts, q)
	// Draw all samples up front so the answer does not depend on the
	// worker count, then classify them (the O(N·n·d) phase), optionally in
	// parallel.
	us := make([]vec.Vec, n)
	for i := range us {
		us[i] = vec.RandSimplex(rng, d)
	}
	classify := func(u vec.Vec) (neg []int32, ok bool) {
		return apcClassify(pts, q, dropped, u)
	}
	negs := make([][]int32, n)
	oks := make([]bool, n)
	if opt.Workers > 1 {
		err := parallelFor(ctx, opt.Workers, n, 0x3f, func(i int) {
			negs[i], oks[i] = classify(us[i])
		})
		if err != nil {
			return nil, st, err
		}
	} else {
		for i, u := range us {
			if check.Stop() {
				return nil, st, check.Err()
			}
			negs[i], oks[i] = classify(u)
		}
	}
	classifyPhase()
	check.Emit(obs.EvSampleClassified, n)
	constructPhase := check.Phase("phase.apc.construct")
	defer constructPhase()
	var kept []sample
	for i, u := range us {
		if oks[i] {
			kept = append(kept, sample{u: u, orig: negs[i], negC: negs[i]})
		}
	}
	if len(kept) == 0 {
		check.Emit(obs.EvPieceEmitted, 0)
		return emptyRegion(d), st, nil
	}

	// Refinement (Algorithm 3 lines 6–12): D⁺_{u1} ⊆ D⁺_{u2} iff
	// D⁻_{u2} ⊆ D⁻_{u1}. Keep u1 with D⁻_{u1} := D⁻_{u2}; the partition
	// built from (D⁺_{u1}, D⁻_{u2}) is the union of both samples'
	// partitions (Lemma 5.9).
	alive := make([]bool, len(kept))
	for i := range alive {
		alive[i] = true
	}
	for i := range kept {
		if !alive[i] {
			continue
		}
		for j := i + 1; j < len(kept); j++ {
			if !alive[j] {
				continue
			}
			switch {
			case subsetInt32(kept[j].orig, kept[i].orig): // D⁺_i ⊆ D⁺_j
				kept[i].negC = kept[j].negC
				alive[j] = false
			case subsetInt32(kept[i].orig, kept[j].orig): // D⁺_j ⊆ D⁺_i
				kept[j].negC = kept[i].negC
				alive[i] = false
			}
			if !alive[i] {
				break
			}
		}
	}

	// Progressive construction with the Lemma 5.8 dedup.
	var cells []*geom.Cell
	for i, s := range kept {
		if !alive[i] {
			continue
		}
		already := false
		for _, c := range cells {
			if c.Contains(s.u) {
				already = true
				break
			}
		}
		if already {
			continue
		}
		c, err := buildPartition(pts, q, s.u, s.orig, s.negC, check)
		if err != nil {
			return nil, st, err
		}
		if c != nil {
			cells = append(cells, c)
		}
	}
	st.Pieces = len(cells)
	check.Emit(obs.EvPieceEmitted, st.Pieces)
	if len(cells) == 0 {
		return emptyRegion(d), st, nil
	}
	return newCellRegion(d, cells), st, nil
}

// apcDroppedPlanes classifies each plane's normal component-wise up front,
// mirroring BuildPlanes: a plane that is never negative over U — including
// the degenerate zero normal from q = (1−ε)p — contributes 0 to every
// sample's D⁻ by the system-wide contract (see QueryPlane). Deciding such
// planes by the raw utility difference instead would let rounding noise
// disqualify samples the exact solvers accept.
func apcDroppedPlanes(pts []vec.Vec, q Query) []bool {
	d := q.Q.Dim()
	scale := 1 - q.Eps
	dropped := make([]bool, len(pts))
	for j, p := range pts {
		neg := false
		for x := 0; x < d; x++ {
			if q.Q[x]-scale*p[x] < -geom.Tol {
				neg = true
				break
			}
		}
		dropped[j] = !neg
	}
	return dropped
}

// apcClassify computes one sample's D⁻ set (ascending point indices, by
// construction): the points beating (1−ε)-scaled q under u, excluding the
// planes dropped by apcDroppedPlanes. ok is false when the set reaches k —
// the sample is unqualified and its partial D⁻ is discarded.
func apcClassify(pts []vec.Vec, q Query, dropped []bool, u vec.Vec) (neg []int32, ok bool) {
	scale := 1 - q.Eps
	fq := u.Dot(q.Q)
	for j, p := range pts {
		if dropped[j] {
			continue
		}
		if scale*u.Dot(p) > fq {
			neg = append(neg, int32(j))
			if len(neg) >= q.K {
				return nil, false
			}
		}
	}
	return neg, true
}

// buildPartition intersects the simplex with h⁻ for every point in negC,
// h⁺ for every point outside orig, and leaves points in orig \ negC
// unconstrained (paper §5.2.1–5.2.2). Planes that do not constrain the
// current cell are skipped by Clip via the relation tests, so the cell
// description stays small.
func buildPartition(pts []vec.Vec, q Query, u vec.Vec, orig, negC []int32, check *CtxChecker) (*geom.Cell, error) {
	d := q.Q.Dim()
	scale := 1 - q.Eps
	cell := geom.NewSimplex(d)
	inOrig := make(map[int32]bool, len(orig))
	for _, j := range orig {
		inOrig[j] = true
	}
	isNeg := make(map[int32]bool, len(negC))
	for _, j := range negC {
		isNeg[j] = true
	}
	// One scratch normal reused across points; NewHyperplane stores a
	// normalized copy.
	w := vec.New(d)
	for j, p := range pts {
		if check.Stop() {
			return nil, check.Err()
		}
		sign := +1
		switch {
		case isNeg[int32(j)]:
			sign = -1
		case inOrig[int32(j)]:
			continue // merged away: left unconstrained
		}
		for x := range w {
			w[x] = q.Q[x] - scale*p[x]
		}
		if w.Norm() < vec.Eps {
			// Boundary-degenerate plane (q = (1−ε)p): the whole space lies on
			// it. Per the QueryPlane contract it contributes 0 to the <k tally
			// everywhere, so it constrains nothing; classify() never put it in
			// a D⁻ set either, keeping both tallies consistent.
			continue
		}
		h := geom.NewHyperplane(w, j)
		cell = cell.Clip(h, sign)
		if cell == nil {
			return nil, nil // numerically empty (sample sat on a boundary)
		}
		if cell.NumVertices() > maxAPCVerts {
			// Vertex-superset blow-up: constructing this partition would
			// dominate the run. Dropping it keeps the answer sound (A-PC
			// may under-report) at a small recall cost.
			return nil, nil
		}
	}
	return cell, nil
}

// maxAPCVerts bounds the maintained vertex count of a partition under
// construction; beyond it a single clip costs O(V²) and stops being worth
// the recall.
const maxAPCVerts = 5000

// subsetInt32 reports whether every element of a (sorted) occurs in b
// (sorted).
func subsetInt32(a, b []int32) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		i += sort.Search(len(b)-i, func(k int) bool { return b[i+k] >= x })
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
