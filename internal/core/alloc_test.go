package core

// Allocation-regression tests for the batch engine's pooled hot paths: once
// a worker arena has warmed up, the plane-construction, reduction/ordering
// and sweep kernels must run without a single heap allocation. A regression
// here silently reintroduces per-solve garbage across every batch worker,
// so these tests pin the steady state at exactly zero.

import (
	"context"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

func TestBuildPlanesArenaZeroAlloc(t *testing.T) {
	for d := 2; d <= 4; d++ {
		rng := rand.New(rand.NewSource(int64(d) * 71))
		pts, q := randomInstance(rng, 200, d)
		a := &Arena{}
		warm := buildPlanesArena(pts, q, a)
		if len(warm.Crossing) == 0 {
			t.Fatalf("d=%d: instance produced no crossing planes; test is vacuous", d)
		}
		allocs := testing.AllocsPerRun(50, func() {
			buildPlanesArena(pts, q, a)
		})
		if allocs != 0 {
			t.Errorf("d=%d: buildPlanesArena allocates %.1f per run on a warm arena, want 0", d, allocs)
		}
	}
}

func TestReduceAndOrderPlanesZeroAlloc(t *testing.T) {
	for d := 2; d <= 4; d++ {
		rng := rand.New(rand.NewSource(int64(d) * 131))
		pts, q := randomInstance(rng, 200, d)
		ps := BuildPlanes(pts, q)
		if len(ps.Crossing) < 4 {
			t.Fatalf("d=%d: only %d crossing planes; test is vacuous", d, len(ps.Crossing))
		}
		a := &Arena{}
		reduceAndOrderPlanesOpt(ps.Crossing, q.K, false, false, a)
		allocs := testing.AllocsPerRun(50, func() {
			reduceAndOrderPlanesOpt(ps.Crossing, q.K, false, false, a)
		})
		if allocs != 0 {
			t.Errorf("d=%d: reduceAndOrderPlanesOpt allocates %.1f per run on a warm arena, want 0", d, allocs)
		}
	}
}

func TestSweepIntervalsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts, _ := randomInstance(rng, 300, 2)
	// A query point near the top corner keeps PlaneSet.Base empty (no point
	// can dominate it under the (1−ε) scale), so the effective rank stays
	// positive and the sweep actually runs.
	q := Query{Q: vec.Of(0.9, 0.85), K: 3, Eps: 0.1}
	ps := BuildPlanes(pts, q)
	k := ps.KEff(q.K)
	if k <= 0 || len(ps.Crossing) == 0 {
		t.Fatalf("degenerate instance (keff=%d, planes=%d); test is vacuous", k, len(ps.Crossing))
	}
	a := &Arena{}
	check := NewCtxChecker(context.Background(), 0)
	var st Stats
	if _, _, err := sweepIntervals(ps, k, a, &st, check); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		st = Stats{}
		if _, _, err := sweepIntervals(ps, k, a, &st, check); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Errorf("sweepIntervals allocates %.1f per run on a warm arena, want 0", allocs)
	}
}

// benchBatch measures one full cold batch — Prepare plus all solves, the
// one-shot SolveBatch workload — over a query set with the structure the
// sharing layer targets: a few query points, each asked at a range of
// ranks (nested plane groups), with exact duplicates mixed in. The shared
// variant dispatches through the batch engine with sharing and dedup on;
// the independent variant answers each query with its own Solve call — the
// serving pattern batch sharing replaces — so ns/op and allocs/op measure
// what the whole sharing layer buys.
func benchBatch(b *testing.B, share bool) {
	rng := rand.New(rand.NewSource(42))
	pts, _ := randomInstance(rng, 400, 3)
	var queries []Query
	for i := 0; i < 4; i++ {
		qp := vec.RandSimplex(rng, 3).Scale(0.9)
		for k := 1; k <= 8; k++ {
			queries = append(queries, Query{Q: qp, K: k, Eps: 0.05})
		}
	}
	queries = append(queries, queries[0], queries[9], queries[17], queries[25])
	pol := SolvePolicy{Solver: EPTSolver{}}
	opt := BatchOptions{Workers: 1, Share: true, Dedup: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prep, err := Prepare(pts, 3, true)
		if err != nil {
			b.Fatal(err)
		}
		if share {
			outs := SolveBatchOptions(context.Background(), pol, prep, queries, opt)
			for j := range outs {
				if outs[j].Err != nil {
					b.Fatal(outs[j].Err)
				}
			}
		} else {
			for j, q := range queries {
				if _, _, _, err := pol.Solve(context.Background(), prep, q, j); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkBatchShared(b *testing.B)      { benchBatch(b, true) }
func BenchmarkBatchIndependent(b *testing.B) { benchBatch(b, false) }
