package core

import (
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

// Every ablated variant must still be exact: disabling an acceleration may
// cost time but never correctness.
func TestEPTAblationVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	variants := []EPTOptions{
		{NoReduction: true},
		{NoOrdering: true},
		{NoLazySplit: true},
		{NoReduction: true, NoOrdering: true, NoLazySplit: true},
	}
	for _, d := range []int{2, 3, 4} {
		for trial := 0; trial < 10; trial++ {
			pts, q := randomInstance(rng, 10+rng.Intn(30), d)
			want, err := EPT(pts, q)
			if err != nil {
				t.Fatal(err)
			}
			for vi, opt := range variants {
				got, _, err := EPTWithOptions(pts, q, opt)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 150; i++ {
					u := vec.RandSimplex(rng, d)
					_, margin := CountBetter(pts, q, u)
					if margin < boundaryMargin {
						continue
					}
					if want.Contains(u) != got.Contains(u) {
						t.Fatalf("d=%d trial=%d variant=%d (%+v): disagreement at %v",
							d, trial, vi, opt, u)
					}
				}
			}
		}
	}
}

// The reduction must never increase the number of planes inserted, and the
// full solver should not build more nodes than the unordered variant on a
// nontrivial instance (the ordering exists to invalidate nodes early).
func TestEPTAblationStats(t *testing.T) {
	rng := rand.New(rand.NewSource(910))
	pts := make([]vec.Vec, 200)
	for i := range pts {
		pts[i] = vec.Of(0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64())
	}
	q := Query{Q: vec.Of(0.75, 0.75, 0.75), K: 5, Eps: 0.1}
	_, full, err := EPTWithStats(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	_, noRed, err := EPTWithOptions(pts, q, EPTOptions{NoReduction: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.PlanesInserted > noRed.PlanesInserted {
		t.Fatalf("reduction increased planes: %d vs %d", full.PlanesInserted, noRed.PlanesInserted)
	}
	_, eager, err := EPTWithOptions(pts, q, EPTOptions{NoLazySplit: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Splits > eager.Splits {
		t.Fatalf("lazy splitting split more than eager: %d vs %d", full.Splits, eager.Splits)
	}
}
