package core

import (
	"math"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

func TestMergeIntervals(t *testing.T) {
	got := MergeIntervals([][2]float64{{0.5, 0.7}, {0.1, 0.3}, {0.3, 0.5}})
	if len(got) != 1 || got[0][0] != 0.1 || got[0][1] != 0.7 {
		t.Fatalf("merge = %v", got)
	}
	got = MergeIntervals([][2]float64{{0.1, 0.2}, {0.5, 0.6}})
	if len(got) != 2 {
		t.Fatalf("disjoint merge = %v", got)
	}
	if MergeIntervals(nil) != nil {
		t.Fatal("empty merge should be nil")
	}
	// Overlapping contained interval.
	got = MergeIntervals([][2]float64{{0.1, 0.9}, {0.2, 0.3}})
	if len(got) != 1 || got[0] != [2]float64{0.1, 0.9} {
		t.Fatalf("contained merge = %v", got)
	}
}

func TestIntervalRegionBasics(t *testing.T) {
	r := newIntervalRegion([][2]float64{{0.1, 0.3}, {0.6, 0.8}})
	if r.Dim() != 2 || r.Empty() || r.NumPieces() != 2 {
		t.Fatal("basic accessors broken")
	}
	cases := []struct {
		t    float64
		want bool
	}{
		{0.2, true}, {0.1, true}, {0.3, true}, {0.45, false}, {0.7, true}, {0.9, false}, {0.0, false},
	}
	for _, c := range cases {
		u := vec.Of(c.t, 1-c.t)
		if got := r.Contains(u); got != c.want {
			t.Errorf("Contains(t=%v) = %v, want %v", c.t, got, c.want)
		}
	}
	rng := rand.New(rand.NewSource(1))
	if m := r.Measure(rng, 0); math.Abs(m-0.4) > 1e-12 {
		t.Errorf("Measure = %v, want exact 0.4", m)
	}
	for i := 0; i < 20; i++ {
		u := r.SamplePoint(rng)
		if !r.Contains(u) {
			t.Fatalf("sample %v outside region", u)
		}
	}
}

func TestEmptyRegion(t *testing.T) {
	r := emptyRegion(3)
	if !r.Empty() || r.NumPieces() != 0 {
		t.Fatal("empty region not empty")
	}
	if r.Contains(vec.SimplexCenter(3)) {
		t.Fatal("empty region contains a point")
	}
	rng := rand.New(rand.NewSource(1))
	if r.SamplePoint(rng) != nil {
		t.Fatal("empty region sampled a point")
	}
	if r.Measure(rng, 100) != 0 {
		t.Fatal("empty region has measure")
	}
}

func TestIntervalsPanicsOnHighDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	emptyRegion(3).Intervals()
}

func TestCellRegionIntervalsDerived(t *testing.T) {
	// EPT in 2-d produces cells; Intervals() must derive and merge them to
	// the same answer Sweeping gives.
	pts := table3()
	q := Query{Q: vec.Of(0.4, 0.7), K: 1, Eps: 0.1}
	sw, err := Sweeping(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := EPT(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	si, ei := sw.Intervals(), ep.Intervals()
	if len(si) != len(ei) {
		t.Fatalf("interval counts differ: %v vs %v", si, ei)
	}
	for i := range si {
		if math.Abs(si[i][0]-ei[i][0]) > 1e-7 || math.Abs(si[i][1]-ei[i][1]) > 1e-7 {
			t.Fatalf("interval %d: %v vs %v", i, si[i], ei[i])
		}
	}
}

func TestRegionMeasureAgreesAcrossSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, q := randomInstance(rng, 25, 3)
	ep, err := EPT(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := BruteForceND(pts, q, 100)
	if err != nil {
		t.Fatal(err)
	}
	m1 := ep.Measure(rand.New(rand.NewSource(9)), 20000)
	m2 := bf.Measure(rand.New(rand.NewSource(9)), 20000)
	if math.Abs(m1-m2) > 0.02 {
		t.Fatalf("measures differ: EPT %v vs brute %v", m1, m2)
	}
}

func TestEPTStatsCounters(t *testing.T) {
	pts := []vec.Vec{}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 60; i++ {
		pts = append(pts, vec.Of(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64()))
	}
	q := Query{Q: vec.Of(0.82, 0.82, 0.82), K: 3, Eps: 0.05}
	_, st, err := EPTWithStats(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanesInserted > st.PlanesBuilt {
		t.Fatalf("reduction increased planes: %+v", st)
	}
	if st.NodesCreated < 1 {
		t.Fatalf("no nodes created: %+v", st)
	}
	if st.NodesCreated != 1+2*st.Splits {
		t.Fatalf("node/split accounting off: %+v", st)
	}
}

// Exact 3-d measure (disjoint cell regions) agrees with Monte-Carlo.
func TestExact3DMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		pts, q := randomInstance(rng, 40, 3)
		reg, err := EPT(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		exact := reg.Measure(nil, 0) // exact path ignores the rng
		mc := geomMC(reg, rng)
		if math.Abs(exact-mc) > 0.02 {
			t.Fatalf("trial %d: exact %v vs MC %v", trial, exact, mc)
		}
	}
}

func geomMC(reg *Region, rng *rand.Rand) float64 {
	hit := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if reg.Contains(vec.RandSimplex(rng, reg.Dim())) {
			hit++
		}
	}
	return float64(hit) / n
}

func TestSampleUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	var reg *Region
	for {
		pts, q := randomInstance(rng, 30, 3)
		var err error
		reg, err = EPT(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reg.Empty() {
			break
		}
	}
	mean := vec.New(3)
	const n = 300
	for i := 0; i < n; i++ {
		u := reg.SampleUniform(rng, 0)
		if u == nil || !reg.Contains(u) {
			t.Fatalf("uniform sample %v not in region", u)
		}
		for j := range mean {
			mean[j] += u[j] / n
		}
	}
	if !vec.OnSimplex(mean, 0.5) {
		t.Fatalf("sample mean %v implausible", mean)
	}
	if emptyRegion(3).SampleUniform(rng, 10) != nil {
		t.Fatal("empty region sampled a point")
	}
}
