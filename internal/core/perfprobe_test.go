package core

import (
	"testing"

	"rrq/internal/dataset"
	"rrq/internal/skyband"
)

// TestEPTPerfProbe is a manual probe for profiling; run with
// go test -run EPTPerfProbe -cpuprofile cpu.out ./internal/core/
func TestEPTPerfProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("perf probe")
	}
	pts := dataset.Generate(dataset.Independent, 50000, 4, 11)
	band := skyband.Select(pts, skyband.KSkyband(pts, 5))
	q := Query{Q: pts[100].Clone(), K: 5, Eps: 0.1}
	reg, st, err := EPTWithStats(band, q)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stats: %+v, pieces=%d", st, reg.NumPieces())
	maxV := 0
	for _, c := range reg.Cells() {
		if c.NumVertices() > maxV {
			maxV = c.NumVertices()
		}
	}
	t.Logf("max vertices per output cell: %d", maxV)
}
