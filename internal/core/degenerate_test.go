package core

// Regression tests for degenerate-plane semantics: a dataset containing
// p = q/(1−ε) produces a plane h_{q,p} with an exactly-zero normal. The
// system-wide contract (see geom.QueryPlane) is that such a plane
// contributes 0 to the <k negative-half-space tally in every layer:
// BuildPlanes, CountBetter, every solver, and the A-PC sampler.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

// degenerateInstance builds a random instance whose dataset contains
// p = q/(1−ε) computed so that q[j] − (1−ε)·p[j] is exactly zero... not
// quite: float division does not invert multiplication exactly, so the
// instance is built the other way around — p is drawn first and q = (1−ε)p
// is computed with the solvers' own expression.
func degenerateInstance(rng *rand.Rand, n, d int, eps float64) ([]vec.Vec, Query) {
	pts := make([]vec.Vec, n)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = 0.05 + 0.9*rng.Float64()
		}
		pts[i] = p
	}
	scale := 1 - eps
	p := pts[rng.Intn(n)]
	q := vec.New(d)
	for j := range q {
		q[j] = scale * p[j]
	}
	return pts, Query{Q: q, K: 1 + rng.Intn(3), Eps: eps}
}

// TestCountBetterSkipsDegeneratePlane: the zero-normal plane must neither
// count nor pin the reported margin to rounding noise.
func TestCountBetterSkipsDegeneratePlane(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		d := 2 + trial%4
		pts, q := degenerateInstance(rng, 4+rng.Intn(8), d, []float64{0, 0.1, 0.3}[trial%3])
		ps := BuildPlanes(pts, q)
		for i := 0; i < 20; i++ {
			u := vec.RandSimplex(rng, d)
			count, margin := CountBetter(pts, q, u)
			// The margin must come from crossing planes only: with at most
			// n−1 of them in general position it is almost surely far above
			// rounding noise, whereas the raw-diff formulation pinned it to
			// ~1e-16 whenever the degenerate plane was present.
			if margin < 1e-12 {
				t.Fatalf("trial %d: margin %.3g poisoned by degenerate plane", trial, margin)
			}
			// Cross-check the count against the classified arrangement.
			want := ps.Base
			for _, h := range ps.Crossing {
				if h.Eval(u) < 0 {
					want++
				}
			}
			if math.Abs(h0margin(ps, u)) >= 1e-9 && count != want {
				t.Fatalf("trial %d: CountBetter=%d, classified arrangement=%d", trial, count, want)
			}
		}
	}
}

func h0margin(ps PlaneSet, u vec.Vec) float64 {
	m := math.Inf(1)
	for _, h := range ps.Crossing {
		if a := math.Abs(h.Eval(u)); a < m {
			m = a
		}
	}
	return m
}

// TestSolversAgreeOnDegeneratePlaneDatasets: every solver must agree with
// the counting oracle when the dataset contains p = q/(1−ε).
func TestSolversAgreeOnDegeneratePlaneDatasets(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		d := 2 + trial%3
		eps := []float64{0, 0.1, 0.25}[trial%3]
		pts, q := degenerateInstance(rng, 5+rng.Intn(6), d, eps)

		reg, _, err := EPTContext(ctx, pts, q, EPTOptions{})
		if err != nil {
			t.Fatalf("trial %d: E-PT: %v", trial, err)
		}
		checkRegionAgainstOracle(t, reg, pts, q, rng, 120, true)

		var brute *Region
		if d == 2 {
			brute, _, err = BruteForce2DContext(ctx, pts, q)
			if err == nil {
				sweep, _, serr := SweepingContext(ctx, pts, q)
				if serr != nil {
					t.Fatalf("trial %d: sweeping: %v", trial, serr)
				}
				checkRegionAgainstOracle(t, sweep, pts, q, rng, 120, true)
			}
		} else {
			brute, _, err = BruteForceNDContext(ctx, pts, q, 64)
		}
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		checkRegionAgainstOracle(t, brute, pts, q, rng, 120, true)

		apc, _, err := APCContext(ctx, pts, q, APCOptions{Samples: 80, Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d: A-PC: %v", trial, err)
		}
		checkRegionAgainstOracle(t, apc, pts, q, rng, 120, false)
	}
}

// TestAPCClassifyIgnoresDegeneratePlane: on a dataset where q = (1−ε)p for
// every point, no plane may enter any D⁻ set, so the whole simplex
// qualifies for any k ≥ 1 and A-PC must return a non-empty region.
func TestAPCClassifyIgnoresDegeneratePlane(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		d := 2 + trial%4
		eps := []float64{0, 0.2}[trial%2]
		p := vec.New(d)
		for j := range p {
			p[j] = 0.1 + 0.8*rng.Float64()
		}
		scale := 1 - eps
		q := vec.New(d)
		for j := range q {
			q[j] = scale * p[j]
		}
		// Several exact copies: every plane in the arrangement is degenerate.
		pts := []vec.Vec{p, p.Clone(), p.Clone()}
		query := Query{Q: q, K: 1, Eps: eps}

		apc, _, err := APCContext(context.Background(), pts, query, APCOptions{Samples: 40, Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d: A-PC: %v", trial, err)
		}
		if apc.Empty() {
			t.Fatalf("trial %d: A-PC returned empty region; degenerate planes disqualified its samples", trial)
		}
		for i := 0; i < 50; i++ {
			u := vec.RandSimplex(rng, d)
			if count, _ := CountBetter(pts, query, u); count != 0 {
				t.Fatalf("trial %d: degenerate plane counted at u=%v", trial, u)
			}
		}
	}
}
