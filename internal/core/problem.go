// Package core implements the reverse regret query (RRQ) of the paper:
// given a dataset D, a query point q, an integer k and a threshold ε, find
// the region of the utility simplex on which q is a (k,ε)-regret point.
//
// Three solvers are provided, mirroring the paper:
//
//   - Sweeping: the linear-time special case for d = 2 (paper §4).
//   - EPT: the exact partition-tree algorithm for any d (paper §5.1) with
//     all four published accelerations.
//   - APC: the approximate progressive-construction algorithm (paper §5.2).
//
// A brute-force reference solver and a membership oracle support testing.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"rrq/internal/geom"
	"rrq/internal/topk"
	"rrq/internal/vec"
)

// Query is one reverse regret query.
type Query struct {
	Q   vec.Vec // the query point, d-dimensional, attributes in (0,1]
	K   int     // rank parameter k ≥ 1
	Eps float64 // regret threshold ε ∈ [0,1)
}

// Key returns the canonical comparable form of the query: a compact byte
// string that is equal exactly when (Q, K, Eps) are bit-for-bit equal. It is
// the single key used wherever a query is hashed — the index's shared plane
// storage, the result cache, the server's in-flight deduplication — so no
// layer re-derives its own ad-hoc encoding. The layout is fixed-width
// little-endian (K, then Eps, then the coordinates of Q); queries of
// different dimensions therefore have different lengths and never collide.
func (q Query) Key() string {
	b := make([]byte, 0, 16+8*len(q.Q))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(q.K))
	b = append(b, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(q.Eps))
	b = append(b, tmp[:]...)
	for _, x := range q.Q {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(x))
		b = append(b, tmp[:]...)
	}
	return string(b)
}

// PointKey returns the canonical comparable form of the query point alone,
// without K and Eps — the bucket key under which the result cache groups
// entries whose cached regions bound each other through the k/ε
// monotonicity invariants.
func (q Query) PointKey() string {
	b := make([]byte, 0, 8*len(q.Q))
	var tmp [8]byte
	for _, x := range q.Q {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(x))
		b = append(b, tmp[:]...)
	}
	return string(b)
}

// String renders the query in the human-readable form used by logs and
// error paths: "q=(0.4,0.7) k=2 eps=0.1".
func (q Query) String() string {
	var sb strings.Builder
	sb.WriteString("q=(")
	for i, x := range q.Q {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	fmt.Fprintf(&sb, ") k=%d eps=%s", q.K, strconv.FormatFloat(q.Eps, 'g', -1, 64))
	return sb.String()
}

// QueryError is the typed validation error every entry point returns for a
// malformed query. Field names the offending parameter: "q" (the query
// point), "k", "epsilon" or "dim" (a query/dataset dimension mismatch).
type QueryError struct {
	Field string
	Msg   string
}

func (e *QueryError) Error() string {
	return fmt.Sprintf("core: invalid query (%s): %s", e.Field, e.Msg)
}

func queryErrf(field, format string, args ...any) *QueryError {
	return &QueryError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// DataError is the typed validation error for a malformed dataset point:
// NaN/Inf or non-positive attribute values (the paper assumes the domain
// (0,1]; run Normalize first for raw data), or a dimension mismatch.
// Point is the offending point's index, Attr the offending attribute
// (−1 for a dimension mismatch).
type DataError struct {
	Point int
	Attr  int
	Msg   string
}

func (e *DataError) Error() string {
	if e.Attr >= 0 {
		return fmt.Sprintf("core: invalid data point %d attribute %d: %s", e.Point, e.Attr, e.Msg)
	}
	return fmt.Sprintf("core: invalid data point %d: %s", e.Point, e.Msg)
}

func dataErrf(point, attr int, format string, args ...any) *DataError {
	return &DataError{Point: point, Attr: attr, Msg: fmt.Sprintf(format, args...)}
}

// validatePoint checks one dataset point against the solver domain: finite
// and strictly positive attributes. Non-finite values silently corrupt the
// geometry kernels (every half-space test on them is poisoned), and
// non-positive values fall outside the paper's (0,1] attribute domain.
func validatePoint(i int, p vec.Vec) *DataError {
	for j, x := range p {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return dataErrf(i, j, "value is %v", x)
		}
		if x <= 0 {
			return dataErrf(i, j, "value %v is not positive (attributes live in (0,1]; normalize raw data first)", x)
		}
	}
	return nil
}

// CheckPoint validates one prospective dataset point against the solver
// domain: dimension dim, finite and strictly positive attributes. A failure
// is always a *DataError reporting index i — the same error the batch
// Prepare path returns, so index mutations and dataset construction speak
// one vocabulary.
func CheckPoint(i int, p vec.Vec, dim int) error {
	if p.Dim() != dim {
		return dataErrf(i, -1, "dimension %d, want %d", p.Dim(), dim)
	}
	if de := validatePoint(i, p); de != nil {
		return de
	}
	return nil
}

// Validate checks the query against the dataset dimension d: the query
// point must be d-dimensional (d ≥ 2) and finite, k ≥ 1 and ε ∈ [0,1).
// The single validation authority for every entry point — solvers, the
// dynamic region and the PBA+ index all route through it. A failure is
// always a *QueryError.
func (q Query) Validate(d int) error {
	if qe := q.validate(d); qe != nil {
		return qe
	}
	return nil
}

// validate returns the concrete error type; kept separate from Validate so
// a nil *QueryError never leaks into a non-nil error interface.
func (q Query) validate(d int) *QueryError {
	if q.Q.Dim() != d {
		return queryErrf("dim", "query dimension %d does not match dataset dimension %d", q.Q.Dim(), d)
	}
	if d < 2 {
		return queryErrf("q", "dimension %d < 2", d)
	}
	for i, x := range q.Q {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return queryErrf("q", "query coordinate %d is %v", i, x)
		}
		if x <= 0 {
			return queryErrf("q", "query coordinate %d is %v, want > 0 (attributes live in (0,1])", i, x)
		}
	}
	if q.K < 1 {
		return queryErrf("k", "k = %d < 1", q.K)
	}
	if q.Eps < 0 || q.Eps >= 1 || math.IsNaN(q.Eps) {
		return queryErrf("epsilon", "ε = %v outside [0,1)", q.Eps)
	}
	return nil
}

// ValidateInstance checks the query and every point against the query's
// own dimension and the solver domain (finite, strictly positive
// attributes) — the shared entry gate of the direct solver functions (the
// Prepared path validates points once at Prepare time instead). A bad
// query is a *QueryError, a bad point a *DataError.
func ValidateInstance(pts []vec.Vec, q Query) error {
	d := q.Q.Dim()
	if err := q.Validate(d); err != nil {
		return err
	}
	for i, p := range pts {
		if p.Dim() != d {
			return errDimMismatch(d, p.Dim())
		}
		if de := validatePoint(i, p); de != nil {
			return de
		}
	}
	return nil
}

// FilterCustomers answers the bichromatic (discrete) variant of RRQ, as in
// the finite-preference-set reverse top-k literature: given an explicit set
// of customer utility vectors, return the indices of those for which q is a
// (k,ε)-regret point. Linear in |customers|·|pts|.
func FilterCustomers(pts []vec.Vec, q Query, customers []vec.Vec) ([]int, error) {
	d := q.Q.Dim()
	if err := q.Validate(d); err != nil {
		return nil, err
	}
	var out []int
	for i, u := range customers {
		if u.Dim() != d {
			return nil, fmt.Errorf("core: customer %d has dimension %d, want %d", i, u.Dim(), d)
		}
		if QualifiedAt(pts, q, u) {
			out = append(out, i)
		}
	}
	return out, nil
}

// RegretRatio computes k-regratio(q, u) (Definition 3.2): the relative gap
// between the k-th highest utility in pts and the utility of q, floored at
// zero.
func RegretRatio(pts []vec.Vec, q Query, u vec.Vec) float64 {
	if len(pts) == 0 {
		return 0
	}
	utils := topk.Utilities(pts, u)
	sk := topk.KthMax(utils, q.K)
	fq := u.Dot(q.Q)
	if sk <= 0 {
		return 0
	}
	return math.Max(0, sk-fq) / sk
}

// CountBetter returns the number of points p with (1−ε)·f_u(p) > f_u(q) —
// the number of negative half-spaces containing u — together with the
// smallest absolute margin |(1−ε)f_u(p) − f_u(q)| seen over the planes that
// genuinely cross the utility space. By Lemma 3.5, q is a (k,ε)-regret
// point w.r.t. u iff the count is below k. The margin lets property tests
// skip utility vectors that sit numerically on a boundary.
//
// Each point is classified component-wise with geom.Tol exactly as
// BuildPlanes classifies its plane, so this oracle and every solver agree
// on degenerate inputs: a plane whose normal q − (1−ε)p is ≥ 0 within
// tolerance (including the exactly-zero normal from q = (1−ε)p) never
// counts, one that is ≤ 0 within tolerance always counts, and only the
// remaining crossing planes are decided by the sign of the utility
// difference. Deciding those degenerate planes by the raw floating-point
// difference instead would make the count depend on rounding noise — and a
// zero normal would pin the reported margin to ~0 for every u, silently
// disabling margin-guarded checks.
func CountBetter(pts []vec.Vec, q Query, u vec.Vec) (count int, margin float64) {
	fq := u.Dot(q.Q)
	margin = math.Inf(1)
	scale := 1 - q.Eps
	d := q.Q.Dim()
	for _, p := range pts {
		neg, pos := false, false
		for j := 0; j < d; j++ {
			x := q.Q[j] - scale*p[j]
			if x > geom.Tol {
				pos = true
			} else if x < -geom.Tol {
				neg = true
			}
		}
		switch {
		case !neg:
			// Never negative over U (includes the degenerate zero normal):
			// contributes 0 everywhere and has no boundary inside U.
		case !pos:
			count++
		default:
			diff := scale*u.Dot(p) - fq
			if diff > 0 {
				count++
			}
			if a := math.Abs(diff); a < margin {
				margin = a
			}
		}
	}
	return count, margin
}

// QualifiedAt reports whether q is a (k,ε)-regret point w.r.t. u, using the
// half-space counting characterization (Lemma 3.5). For ε > 0 this agrees
// with RegretRatio(…) < ε except on measure-zero boundaries; for ε = 0 it
// yields the continuous reverse top-k semantics.
func QualifiedAt(pts []vec.Vec, q Query, u vec.Vec) bool {
	c, _ := CountBetter(pts, q, u)
	return c < q.K
}

// PlaneSet is the preprocessed hyper-plane arrangement input shared by the
// solvers. It is immutable once built: solvers that need to reorder or
// repack the crossing planes copy the slice first, so one PlaneSet can be
// cached by an index snapshot and served to any number of concurrent
// queries.
type PlaneSet struct {
	Crossing []geom.Hyperplane // planes whose negative half-space cuts U properly
	Base     int               // planes whose negative half-space covers all of U
}

// KEff returns the effective budget k − Base. When ≤ 0 the whole utility
// space is disqualified.
func (ps PlaneSet) KEff(k int) int { return k - ps.Base }

// PlaneSource supplies the classified plane set for a query over pts. A
// non-nil source on a Prepared replaces the per-call BuildPlanes, letting
// an index snapshot deduplicate plane construction across queries; the
// returned set must be treated as shared and read-only.
type PlaneSource func(pts []vec.Vec, q Query) PlaneSet

// planesFor resolves the plane set through src when present, else builds it
// fresh.
func planesFor(src PlaneSource, pts []vec.Vec, q Query) PlaneSet {
	if src != nil {
		return src(pts, q)
	}
	return BuildPlanes(pts, q)
}

// BuildPlanes constructs h_{q,p} for every p ∈ pts and classifies it:
//
//   - normal ≥ 0 component-wise: the negative half-space misses U entirely;
//     the plane can never count against q and is dropped;
//   - normal ≤ 0 component-wise (with some strictly negative component):
//     the negative half-space covers U up to measure zero; it contributes a
//     constant +1 to every partition's counter and is folded into base;
//   - mixed signs: the plane genuinely crosses U and enters the sweep/tree.
//
// Plane IDs are the indices of the source points, which keeps them unique
// within the arrangement as the geometry package requires.
func BuildPlanes(pts []vec.Vec, q Query) PlaneSet {
	var ps PlaneSet
	scale := 1 - q.Eps
	// One scratch normal reused across points: NewHyperplane stores a
	// normalized copy, so only crossing planes cost an allocation.
	w := vec.New(q.Q.Dim())
	for i, p := range pts {
		neg, pos := false, false
		for j := range w {
			x := q.Q[j] - scale*p[j]
			w[j] = x
			if x > geom.Tol {
				pos = true
			} else if x < -geom.Tol {
				neg = true
			}
		}
		switch {
		case !neg:
			// Never negative over U (includes the degenerate zero normal).
		case !pos:
			ps.Base++
		default:
			ps.Crossing = append(ps.Crossing, geom.NewHyperplane(w, i))
		}
	}
	return ps
}
