package core

import (
	"context"
	"sync"

	"rrq/internal/geom"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// Arena is the per-worker scratch memory of the batch engine: every buffer
// a solve's serial pre-phase needs — the flat unit-normal block of plane
// construction, the reduction's negated-normal and ordering buffers, the
// sweep's crossing-parameter and event buffers — lives here and is reused
// across solves, so a worker that has warmed up its arena performs the
// whole plane phase without allocating.
//
// An arena is not synchronized: it belongs to exactly one batch worker and
// is only touched by the serial portion of a solve (E-PT's intra-query
// insert pool never sees it; by the time workers spawn, every arena-backed
// buffer has been consumed or repacked into heap storage that the result
// may retain). Buffers grow geometrically through append and keep their
// capacity between solves.
type Arena struct {
	// Plane construction (buildPlanesArena).
	normals []float64         // flat unit-normal backing, stride d
	planes  []geom.Hyperplane // crossing-plane headers

	// E-PT plane reduction and ordering (reduceAndOrderPlanesOpt).
	negFlat  []float64
	negUnits []vec.Vec
	sky      skyband.Scratch
	noRedIdx []int
	kept     []geom.Hyperplane
	w        []int
	order    []int
	ordered  []geom.Hyperplane

	// Sweeping (sweepIntervals).
	incl   []float64
	excl   []float64
	selBuf []float64
	events []sweepEvent
	ivs    [][2]float64
	merged [][2]float64

	// share, when non-nil, is the current batch's sharing view: solvers on
	// this worker derive their plane sets from it (into this arena) instead
	// of building them. group is the current query's precomputed plane group
	// (nil past the group cap), assigned by the dispatcher before each
	// solve. Both are cleared on putArena.
	share *shareView
	group *planeGroup
}

// growF64 returns buf resized to n, reallocating only when the capacity is
// insufficient. The contents are unspecified; callers overwrite every slot.
func growF64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	} else {
		*buf = (*buf)[:n]
	}
	return *buf
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	} else {
		*buf = (*buf)[:n]
	}
	return *buf
}

func growVecs(buf *[]vec.Vec, n int) []vec.Vec {
	if cap(*buf) < n {
		*buf = make([]vec.Vec, n)
	} else {
		*buf = (*buf)[:n]
	}
	return *buf
}

func growPlanes(buf *[]geom.Hyperplane, n int) []geom.Hyperplane {
	if cap(*buf) < n {
		*buf = make([]geom.Hyperplane, n)
	} else {
		*buf = (*buf)[:n]
	}
	return *buf
}

// arenaPool recycles worker arenas across batches, so a server alternating
// between batches keeps its warmed buffers instead of re-growing them.
var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

func getArena() *Arena { return arenaPool.Get().(*Arena) }

func putArena(a *Arena) {
	// Never leak a batch's sharing state into the next batch.
	a.share = nil
	a.group = nil
	arenaPool.Put(a)
}

// arenaKey is the private context key carrying a worker's arena.
type arenaKey struct{}

// contextWithArena attaches a worker-owned arena to ctx. Solvers fetch it
// once at entry; a context without an arena (every non-batch entry point)
// simply takes the allocating path.
func contextWithArena(ctx context.Context, a *Arena) context.Context {
	return context.WithValue(ctx, arenaKey{}, a)
}

// arenaFrom extracts the worker arena from ctx, or nil.
func arenaFrom(ctx context.Context) *Arena {
	if ctx == nil {
		return nil
	}
	a, _ := ctx.Value(arenaKey{}).(*Arena)
	return a
}

// buildPlanesArena is BuildPlanes writing its crossing-plane normals into
// the arena's flat block instead of per-plane heap allocations. The stored
// values are bitwise-identical to BuildPlanes' (same classification, same
// normalization), so the two construction paths are interchangeable.
//
// The returned PlaneSet aliases arena memory and is valid only until the
// worker's next solve: E-PT repacks surviving normals into fresh heap
// storage (PackNormals) before any tree node can retain them, and Sweeping
// only reads the normals during its window scan.
func buildPlanesArena(pts []vec.Vec, q Query, a *Arena) PlaneSet {
	d := q.Q.Dim()
	flat := growF64(&a.normals, len(pts)*d)
	planes := a.planes[:0]
	var base int
	scale := 1 - q.Eps
	nc := 0
	for i, p := range pts {
		// The raw normal is written into the crossing slot first; when the
		// plane turns out to cross, it is normalized in place (the element-
		// wise scale never reads a slot it has already written).
		slot := vec.Vec(flat[nc*d : nc*d+d : nc*d+d])
		neg, pos := false, false
		for j := 0; j < d; j++ {
			x := q.Q[j] - scale*p[j]
			slot[j] = x
			if x > geom.Tol {
				pos = true
			} else if x < -geom.Tol {
				neg = true
			}
		}
		switch {
		case !neg:
			// Never negative over U (includes the degenerate zero normal).
		case !pos:
			base++
		default:
			planes = append(planes, geom.NewHyperplaneInto(slot, slot, i))
			nc++
		}
	}
	a.planes = planes
	return PlaneSet{Crossing: planes, Base: base}
}

// planesForArena resolves the plane set like planesFor, preferring the
// batch sharing view riding on the arena (which derives into the arena),
// then shared storage, then the worker arena, then a fresh build.
func planesForArena(src PlaneSource, pts []vec.Vec, q Query, a *Arena) PlaneSet {
	if a != nil && a.share != nil {
		return a.share.planesArena(pts, q, a)
	}
	if src != nil {
		return src(pts, q)
	}
	if a != nil {
		return buildPlanesArena(pts, q, a)
	}
	return BuildPlanes(pts, q)
}
