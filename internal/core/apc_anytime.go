package core

// Anytime A-PC: the progressive construction of Algorithm 3 restructured so
// it can be cut at any partition boundary and resumed later. The plain
// APCContext draws its whole sample pool, merges nested samples (Lemma 5.9)
// and only then builds partitions, so a mid-run cut would observe a region
// that later merging mutates. The anytime construction instead processes
// the deterministic sample stream strictly in order and appends each
// Lemma 5.7 partition as soon as its sample qualifies, never revisiting an
// emitted cell. Two invariants follow by construction:
//
//   - soundness of every prefix: each appended partition is fully qualified
//     (Lemma 5.7), so the region after any number of consumed samples is a
//     subset of the true region — exactly the A-PC one-sidedness, preserved
//     at every cut, not just at completion;
//   - monotonicity across cuts: for the same seed and options, the cells
//     after consuming n₁ samples are a prefix of the cells after n₂ ≥ n₁,
//     so region(n₁) ⊆ region(n₂). Serving can therefore degrade a query to
//     a smaller budget without ever "shrinking" a previously served answer.
//
// The cost of skipping the Lemma 5.9 merge is a finer decomposition (more,
// smaller cells for the same coverage), not lost coverage: the Lemma 5.8
// dedup still skips samples landing in an emitted cell.

import (
	"context"
	"math"
	"math/rand"
	"time"

	"rrq/internal/geom"
	"rrq/internal/obs"
	"rrq/internal/vec"
)

// AnytimeOptions configures one anytime A-PC run.
type AnytimeOptions struct {
	// Samples is the total candidate pool N. When ≤ 0 the paper's default
	// N = 10·(d−1) is used (§6.3). The pool bounds how far the construction
	// can ever get; cuts only ever stop it earlier.
	Samples int
	// Seed drives the deterministic sampler. Unlike APCOptions there is no
	// Rng escape hatch: the anytime contract (prefix monotonicity across
	// cuts, resumability) requires the sample stream to be a pure function
	// of the seed.
	Seed int64
	// MaxSamples cuts the construction once this many candidates (counting
	// the StartSample prefix) have been consumed. 0 disables the sample cut.
	MaxSamples int
	// Budget cuts the construction at the first partition boundary after
	// the wall-clock budget elapses. 0 disables the time cut. Sample cuts
	// are deterministic; time cuts are not — prefer MaxSamples wherever a
	// replayable answer matters.
	Budget time.Duration
	// StartSample resumes a previous run: the first StartSample candidates
	// are drawn (to keep the stream aligned) but not classified. Sound when
	// Warm holds the cells of a previous cut with the same seed, pool and
	// query — every partition the skipped prefix would build is already
	// there. The skipped prefix still counts into Accuracy.SamplesUsed.
	StartSample int
	// Warm seeds the construction with cells already known to be qualified
	// for this query (a previous cut's region, or a cached inner bound from
	// a neighbor with k' ≤ k and ε' ≤ ε). Warm cells join the Lemma 5.8
	// dedup set and the returned region, so the answer is a monotone
	// improvement over the seed.
	Warm []*geom.Cell
	// Delta is the confidence parameter δ of the reported ρ bound
	// (default 0.05).
	Delta float64
	// MeasureSeed seeds the independent volume estimate (0 derives a stream
	// decorrelated from Seed). It must never replay the solver's own sample
	// stream: every qualified solver sample lies in the returned region by
	// construction, so a correlated estimate systematically overstates
	// coverage and understates the volume error.
	MeasureSeed int64
	// MeasureSamples sizes the Monte-Carlo volume estimate (default 2000).
	MeasureSamples int
}

// Accuracy is the enforced accuracy contract of an anytime answer, derived
// from Lemma 5.10 for the samples actually consumed rather than the samples
// requested.
type Accuracy struct {
	// SamplesUsed is the number of candidate samples consumed before the
	// cut (including a resumed run's StartSample prefix).
	SamplesUsed int
	// RhoBound is the Lemma 5.10 volume-ratio bound for SamplesUsed: with
	// probability ≥ 1−Delta, every qualified partition of volume ratio
	// > RhoBound was hit by at least one consumed sample. Inverted from
	// N = (d + ln(1/δ))/ρ²; clamped to 1 when the samples are too few to
	// bound anything.
	RhoBound float64
	// Delta is the confidence parameter the bound was computed at.
	Delta float64
	// Cut reports whether a budget stopped the construction before it
	// exhausted the sample pool.
	Cut bool
	// VolumeEst is a Monte-Carlo estimate of the returned region's volume
	// from an independent seeded stream (see AnytimeOptions.MeasureSeed).
	VolumeEst float64
}

// RhoFor inverts Lemma 5.10 for a consumed sample count: the smallest
// volume ratio ρ such that N samples find every qualified partition of
// ratio > ρ with confidence 1−delta. It is SampleSizeFor solved for ρ,
// clamped to 1.
func RhoFor(samples int, delta float64, d int) float64 {
	if samples <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	r := math.Sqrt((float64(d) + math.Log(1/delta)) / float64(samples))
	if r > 1 {
		return 1
	}
	return r
}

// measureSeedFor derives the default accuracy-measurement seed from the
// solver seed with a splitmix-style mix, so the measurement stream shares
// no prefix with the solver's own rand.NewSource(seed) stream even though
// both are pure functions of the one configured seed.
func measureSeedFor(seed int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// APCAnytime is APCAnytimeContext with a background context.
func APCAnytime(pts []vec.Vec, q Query, opt AnytimeOptions) (*Region, Accuracy, error) {
	r, _, acc, err := APCAnytimeContext(context.Background(), pts, q, opt)
	return r, acc, err
}

// APCAnytimeContext runs the anytime A-PC construction under a context: the
// deterministic sample stream is consumed in order, each qualifying sample's
// Lemma 5.7 partition is appended immediately (Lemma 5.8 dedup against the
// emitted and warm cells; no Lemma 5.9 merging, which would mutate earlier
// partitions and break prefix monotonicity), and the run stops at the first
// partition boundary past its sample or wall-clock budget. The returned
// Accuracy reports the Lemma 5.10 ρ bound for the samples actually consumed
// and an independently seeded volume estimate.
func APCAnytimeContext(ctx context.Context, pts []vec.Vec, q Query, opt AnytimeOptions) (*Region, Stats, Accuracy, error) {
	var st Stats
	var acc Accuracy
	d := q.Q.Dim()
	if err := ValidateInstance(pts, q); err != nil {
		return nil, st, acc, err
	}
	check := NewCtxChecker(ctx, 0xff)
	check.SetFaultKey(q.Q)
	if check.Failed() {
		return nil, st, acc, check.Err()
	}
	if opt.Delta <= 0 || opt.Delta >= 1 {
		opt.Delta = 0.05
	}
	if opt.MeasureSamples <= 0 {
		opt.MeasureSamples = 2000
	}
	n := opt.Samples
	if n <= 0 {
		n = 10 * (d - 1)
	}
	if opt.StartSample < 0 {
		opt.StartSample = 0
	}
	if opt.StartSample > n {
		opt.StartSample = n
	}
	phase := check.Phase("phase.apc.anytime")
	defer phase()

	rng := rand.New(rand.NewSource(opt.Seed))
	dropped := apcDroppedPlanes(pts, q)
	cells := make([]*geom.Cell, 0, len(opt.Warm)+8)
	cells = append(cells, opt.Warm...)

	var deadline time.Time
	if opt.Budget > 0 {
		deadline = time.Now().Add(opt.Budget)
	}
	// Burn the resumed prefix so candidate i is the identical draw on every
	// run of the same seed — the property the prefix invariants rest on.
	for i := 0; i < opt.StartSample; i++ {
		vec.RandSimplex(rng, d)
	}
	consumed := opt.StartSample
	for i := opt.StartSample; i < n; i++ {
		// Cuts happen at partition boundaries only: a partition is either
		// fully constructed and appended or not started, never half-built.
		if opt.MaxSamples > 0 && consumed >= opt.MaxSamples {
			acc.Cut = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			acc.Cut = true
			break
		}
		if check.Stop() {
			return nil, st, acc, check.Err()
		}
		u := vec.RandSimplex(rng, d)
		consumed++
		neg, ok := apcClassify(pts, q, dropped, u)
		if !ok {
			continue
		}
		already := false
		for _, c := range cells {
			if c.Contains(u) {
				already = true
				break
			}
		}
		if already {
			continue
		}
		c, err := buildPartition(pts, q, u, neg, neg, check)
		if err != nil {
			return nil, st, acc, err
		}
		if c != nil {
			cells = append(cells, c)
		}
	}
	st.Samples = consumed - opt.StartSample
	st.Pieces = len(cells)
	check.Emit(obs.EvSampleClassified, st.Samples)
	check.Emit(obs.EvPieceEmitted, st.Pieces)
	var r *Region
	if len(cells) == 0 {
		r = emptyRegion(d)
	} else {
		r = newCellRegion(d, cells)
	}
	acc.SamplesUsed = consumed
	acc.Delta = opt.Delta
	acc.RhoBound = RhoFor(consumed, opt.Delta, d)
	seed := opt.MeasureSeed
	if seed == 0 {
		seed = measureSeedFor(opt.Seed)
	}
	acc.VolumeEst = r.MeasureWithSeed(seed, opt.MeasureSamples)
	return r, st, acc, nil
}
