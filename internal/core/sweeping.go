package core

import (
	"context"
	"fmt"

	"rrq/internal/geom"
	"rrq/internal/obs"
	"rrq/internal/topk"
	"rrq/internal/vec"
)

// Sweeping solves the 2-dimensional special case of RRQ in O(n) time
// (paper §4, Algorithm 1). The utility space is the segment
// L = {(t, 1−t) : t ∈ [0,1]} swept from (0,1) (t = 0) toward (1,0) (t = 1).
//
// A crossing plane with normal w is inclusive when its negative half-space
// contains the reference r = (1,0) (w[0] < 0): the sweep passes its
// positive side first. It is exclusive when w[0] > 0. Partition reduction
// (Lemmas 4.1, 4.2) restricts the sweep to the window between the k-th
// ranked exclusive and the k-th ranked inclusive crossings, and the counter
// update per event is O(1) (Lemma 4.3).
func Sweeping(pts []vec.Vec, q Query) (*Region, error) {
	r, _, err := SweepingContext(context.Background(), pts, q)
	return r, err
}

// SweepingContext is Sweeping under a context with work counters. The
// sweep is linear, so cancellation is observed once before the scan and
// once before the event sweep rather than per element.
func SweepingContext(ctx context.Context, pts []vec.Vec, q Query) (*Region, Stats, error) {
	if q.Q.Dim() != 2 {
		return nil, Stats{}, fmt.Errorf("core: Sweeping requires d = 2, got %d", q.Q.Dim())
	}
	if err := ValidateInstance(pts, q); err != nil {
		return nil, Stats{}, err
	}
	return sweepSolve(ctx, pts, q, nil)
}

// sweepEvent is one crossing inside the sweep window.
type sweepEvent struct {
	t    float64
	incl bool
}

// sweepSolve is the sweep body shared by the validated entry points; src,
// when non-nil, serves the (read-only) classified plane set from shared
// storage. A worker arena riding on ctx supplies every scratch buffer, so
// repeated solves on one batch worker allocate only the returned region.
func sweepSolve(ctx context.Context, pts []vec.Vec, q Query, src PlaneSource) (*Region, Stats, error) {
	var st Stats
	if q.Q.Dim() != 2 {
		return nil, st, fmt.Errorf("core: Sweeping requires d = 2, got %d", q.Q.Dim())
	}
	check := NewCtxChecker(ctx, 0)
	check.SetFaultKey(q.Q)
	if check.Failed() {
		return nil, st, check.Err()
	}
	a := arenaFrom(ctx)
	planePhase := check.Phase("phase.sweep.planes")
	defer planePhase()
	ps := planesForArena(src, pts, q, a)
	planePhase()
	st.PlanesBuilt = len(ps.Crossing)
	check.Emit(obs.EvPlaneBuilt, st.PlanesBuilt)
	k := ps.KEff(q.K)
	if k <= 0 {
		check.Emit(obs.EvPlanePruned, st.PlanesBuilt)
		return emptyRegion(2), st, nil
	}
	sweepPhase := check.Phase("phase.sweep.sweep")
	defer sweepPhase()

	merged, collapsed, err := sweepIntervals(ps, k, a, &st, check)
	if err != nil {
		return nil, st, err
	}
	if collapsed {
		return emptyRegion(2), st, nil
	}
	st.Pieces = len(merged)
	check.Emit(obs.EvPieceEmitted, st.Pieces)
	if len(merged) == 0 {
		return emptyRegion(2), st, nil
	}
	// The merged intervals alias arena memory; the region owns a copy.
	return newIntervalRegion(append([][2]float64(nil), merged...)), st, nil
}

// sweepIntervals runs the window reduction, event sweep and interval merge
// over an already-classified plane set, with every buffer drawn from the
// arena (a may be nil: a throwaway arena then takes the allocating path).
// The returned intervals alias a.merged; collapsed reports that the window
// reduction already disqualified the whole segment (the caller then skips
// the piece-count event, as the pre-kernel code did). This is the
// allocation-free hot path of the Sweeping solver; the AllocsPerRun
// regression tests pin it at zero steady-state allocations.
func sweepIntervals(ps PlaneSet, k int, a *Arena, st *Stats, check *CtxChecker) (merged [][2]float64, collapsed bool, err error) {
	if a == nil {
		a = &Arena{}
	}
	// Crossing parameters on L: u·w = 0 at t* = w2 / (w2 − w1).
	incl, excl := a.incl[:0], a.excl[:0]
	for _, h := range ps.Crossing {
		w := h.Normal
		t := w[1] / (w[1] - w[0])
		if w[0] < 0 {
			incl = append(incl, t)
		} else {
			excl = append(excl, t)
		}
	}
	a.incl, a.excl = incl, excl

	// Partition reduction: everything past the k-th inclusive crossing and
	// before the k-th exclusive crossing is covered by ≥ k negative
	// half-spaces (Lemma 4.1 and its mirror).
	tHi := 1.0
	if len(incl) >= k {
		tHi, a.selBuf = topk.KthMinScratch(incl, k, a.selBuf)
	}
	tLo := 0.0
	if len(excl) >= k {
		tLo, a.selBuf = topk.KthMaxScratch(excl, k, a.selBuf)
	}
	if tLo >= tHi-geom.Tol {
		check.Emit(obs.EvPlanePruned, st.PlanesBuilt)
		return nil, true, nil
	}
	if check.Stop() {
		return nil, false, check.Err()
	}

	// Initial counter at the window start: inclusive planes already passed
	// plus exclusive planes not yet passed.
	q0 := 0
	events := a.events[:0]
	for _, t := range incl {
		switch {
		case t <= tLo+geom.Tol:
			q0++
		case t < tHi-geom.Tol:
			events = append(events, sweepEvent{t, true})
		}
	}
	for _, t := range excl {
		if t > tLo+geom.Tol {
			q0++
			if t < tHi-geom.Tol {
				events = append(events, sweepEvent{t, false})
			}
		}
	}
	a.events = events
	sortSweepEvents(events)
	st.PlanesInserted = len(events)
	check.Emit(obs.EvPlanePruned, st.PlanesBuilt-st.PlanesInserted)

	// Sweep the O(k) surviving partitions with an O(1) counter update. An
	// interval is emitted only when the counter qualifies and the piece is
	// wider than the tolerance; coincident events therefore never emit
	// between themselves, so the result does not depend on their relative
	// order.
	out := a.ivs[:0]
	qc := q0
	prev := tLo
	for _, ev := range events {
		if qc < k && ev.t-prev > geom.Tol {
			out = append(out, [2]float64{prev, ev.t})
		}
		if ev.incl {
			qc++
		} else {
			qc--
		}
		prev = ev.t
	}
	if qc < k && tHi-prev > geom.Tol {
		out = append(out, [2]float64{prev, tHi})
	}
	a.ivs = out

	// The sweep emits intervals in ascending start order, so the sorted
	// merge of MergeIntervals reduces to one linear pass with the same
	// touching tolerance.
	merged = a.merged[:0]
	for _, iv := range out {
		if n := len(merged); n > 0 && iv[0] <= merged[n-1][1]+geom.Tol {
			if iv[1] > merged[n-1][1] {
				merged[n-1][1] = iv[1]
			}
		} else {
			merged = append(merged, iv)
		}
	}
	a.merged = merged
	return merged, false, nil
}

// sortSweepEvents sorts events by ascending parameter with a hand-rolled
// quicksort (median-of-three, insertion sort on small spans): sort.Slice
// would allocate its reflect-based swapper on every solve. Equal-parameter
// events may land in either order; the sweep's emission rule makes the
// result independent of that order.
func sortSweepEvents(ev []sweepEvent) {
	for len(ev) > 12 {
		mid := len(ev) / 2
		hi := len(ev) - 1
		if ev[mid].t < ev[0].t {
			ev[mid], ev[0] = ev[0], ev[mid]
		}
		if ev[hi].t < ev[0].t {
			ev[hi], ev[0] = ev[0], ev[hi]
		}
		if ev[mid].t < ev[hi].t {
			ev[mid], ev[hi] = ev[hi], ev[mid]
		}
		pivot := ev[hi].t
		p := 0
		for j := 0; j < hi; j++ {
			if ev[j].t < pivot {
				ev[p], ev[j] = ev[j], ev[p]
				p++
			}
		}
		ev[p], ev[hi] = ev[hi], ev[p]
		if p < len(ev)-p-1 {
			sortSweepEvents(ev[:p])
			ev = ev[p+1:]
		} else {
			sortSweepEvents(ev[p+1:])
			ev = ev[:p]
		}
	}
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].t < ev[j-1].t; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// kthSmallest returns the k-th smallest element of xs (1-based).
func kthSmallest(xs []float64, k int) float64 {
	neg := make([]float64, len(xs))
	for i, x := range xs {
		neg[i] = -x
	}
	return -topk.KthMax(neg, k)
}
