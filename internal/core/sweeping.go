package core

import (
	"context"
	"fmt"
	"sort"

	"rrq/internal/geom"
	"rrq/internal/obs"
	"rrq/internal/topk"
	"rrq/internal/vec"
)

// Sweeping solves the 2-dimensional special case of RRQ in O(n) time
// (paper §4, Algorithm 1). The utility space is the segment
// L = {(t, 1−t) : t ∈ [0,1]} swept from (0,1) (t = 0) toward (1,0) (t = 1).
//
// A crossing plane with normal w is inclusive when its negative half-space
// contains the reference r = (1,0) (w[0] < 0): the sweep passes its
// positive side first. It is exclusive when w[0] > 0. Partition reduction
// (Lemmas 4.1, 4.2) restricts the sweep to the window between the k-th
// ranked exclusive and the k-th ranked inclusive crossings, and the counter
// update per event is O(1) (Lemma 4.3).
func Sweeping(pts []vec.Vec, q Query) (*Region, error) {
	r, _, err := SweepingContext(context.Background(), pts, q)
	return r, err
}

// SweepingContext is Sweeping under a context with work counters. The
// sweep is linear, so cancellation is observed once before the scan and
// once before the event sweep rather than per element.
func SweepingContext(ctx context.Context, pts []vec.Vec, q Query) (*Region, Stats, error) {
	if q.Q.Dim() != 2 {
		return nil, Stats{}, fmt.Errorf("core: Sweeping requires d = 2, got %d", q.Q.Dim())
	}
	if err := ValidateInstance(pts, q); err != nil {
		return nil, Stats{}, err
	}
	return sweepSolve(ctx, pts, q, nil)
}

// sweepSolve is the sweep body shared by the validated entry points; src,
// when non-nil, serves the (read-only) classified plane set from shared
// storage.
func sweepSolve(ctx context.Context, pts []vec.Vec, q Query, src PlaneSource) (*Region, Stats, error) {
	var st Stats
	if q.Q.Dim() != 2 {
		return nil, st, fmt.Errorf("core: Sweeping requires d = 2, got %d", q.Q.Dim())
	}
	check := NewCtxChecker(ctx, 0)
	check.SetFaultKey(q.Q)
	if check.Failed() {
		return nil, st, check.Err()
	}
	planePhase := check.Phase("phase.sweep.planes")
	defer planePhase()
	ps := planesFor(src, pts, q)
	planePhase()
	st.PlanesBuilt = len(ps.Crossing)
	check.Emit(obs.EvPlaneBuilt, st.PlanesBuilt)
	k := ps.KEff(q.K)
	if k <= 0 {
		check.Emit(obs.EvPlanePruned, st.PlanesBuilt)
		return emptyRegion(2), st, nil
	}
	sweepPhase := check.Phase("phase.sweep.sweep")
	defer sweepPhase()

	// Crossing parameters on L: u·w = 0 at t* = w2 / (w2 − w1).
	var incl, excl []float64
	for _, h := range ps.Crossing {
		w := h.Normal
		t := w[1] / (w[1] - w[0])
		if w[0] < 0 {
			incl = append(incl, t)
		} else {
			excl = append(excl, t)
		}
	}

	// Partition reduction: everything past the k-th inclusive crossing and
	// before the k-th exclusive crossing is covered by ≥ k negative
	// half-spaces (Lemma 4.1 and its mirror).
	tHi := 1.0
	if len(incl) >= k {
		tHi = kthSmallest(incl, k)
	}
	tLo := 0.0
	if len(excl) >= k {
		tLo = topk.KthMax(excl, k)
	}
	if tLo >= tHi-geom.Tol {
		check.Emit(obs.EvPlanePruned, st.PlanesBuilt)
		return emptyRegion(2), st, nil
	}
	if check.Stop() {
		return nil, st, check.Err()
	}

	// Initial counter at the window start: inclusive planes already passed
	// plus exclusive planes not yet passed.
	q0 := 0
	type event struct {
		t    float64
		incl bool
	}
	var events []event
	for _, t := range incl {
		switch {
		case t <= tLo+geom.Tol:
			q0++
		case t < tHi-geom.Tol:
			events = append(events, event{t, true})
		}
	}
	for _, t := range excl {
		if t > tLo+geom.Tol {
			q0++
			if t < tHi-geom.Tol {
				events = append(events, event{t, false})
			}
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })
	st.PlanesInserted = len(events)
	check.Emit(obs.EvPlanePruned, st.PlanesBuilt-st.PlanesInserted)

	// Sweep the O(k) surviving partitions with an O(1) counter update.
	var out [][2]float64
	qc := q0
	prev := tLo
	emit := func(a, b float64) {
		if qc < k && b-a > geom.Tol {
			out = append(out, [2]float64{a, b})
		}
	}
	for _, ev := range events {
		emit(prev, ev.t)
		if ev.incl {
			qc++
		} else {
			qc--
		}
		prev = ev.t
	}
	emit(prev, tHi)

	merged := MergeIntervals(out)
	st.Pieces = len(merged)
	check.Emit(obs.EvPieceEmitted, st.Pieces)
	if len(merged) == 0 {
		return emptyRegion(2), st, nil
	}
	return newIntervalRegion(merged), st, nil
}

// kthSmallest returns the k-th smallest element of xs (1-based).
func kthSmallest(xs []float64, k int) float64 {
	neg := make([]float64, len(xs))
	for i, x := range xs {
		neg[i] = -x
	}
	return -topk.KthMax(neg, k)
}
