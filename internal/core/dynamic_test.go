package core

import (
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

// After any sequence of inserts and deletes, the dynamic answer must match
// a fresh E-PT run over the current dataset.
func TestDynamicMatchesFreshSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1111))
	for _, d := range []int{2, 3, 4} {
		for trial := 0; trial < 8; trial++ {
			pts, q := randomInstance(rng, 12, d)
			dyn, err := NewDynamic(pts, q)
			if err != nil {
				t.Fatal(err)
			}
			cur := append([]vec.Vec(nil), pts...)
			for op := 0; op < 20; op++ {
				if rng.Intn(3) == 0 && len(cur) > 3 {
					i := rng.Intn(len(cur))
					if err := dyn.Delete(i); err != nil {
						t.Fatal(err)
					}
					cur = append(cur[:i], cur[i+1:]...)
				} else {
					p := vec.New(d)
					for j := range p {
						p[j] = 0.01 + 0.99*rng.Float64()
					}
					if err := dyn.Insert(p); err != nil {
						t.Fatal(err)
					}
					cur = append(cur, p)
				}
			}
			got := dyn.Region()
			want, err := EPT(cur, q)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				u := vec.RandSimplex(rng, d)
				_, margin := CountBetter(cur, q, u)
				if margin < boundaryMargin {
					continue
				}
				if got.Contains(u) != want.Contains(u) {
					t.Fatalf("d=%d trial=%d: dynamic=%v fresh=%v at %v",
						d, trial, got.Contains(u), want.Contains(u), u)
				}
			}
		}
	}
}

// Insert-only paths must stay exact without any rebuild.
func TestDynamicInsertOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(2222))
	pts, q := randomInstance(rng, 10, 3)
	dyn, err := NewDynamic(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	cur := append([]vec.Vec(nil), pts...)
	for i := 0; i < 25; i++ {
		p := vec.New(3)
		for j := range p {
			p[j] = 0.01 + 0.99*rng.Float64()
		}
		if err := dyn.Insert(p); err != nil {
			t.Fatal(err)
		}
		cur = append(cur, p)
	}
	got := dyn.Region()
	want, err := EPT(cur, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		u := vec.RandSimplex(rng, 3)
		_, margin := CountBetter(cur, q, u)
		if margin < boundaryMargin {
			continue
		}
		if got.Contains(u) != want.Contains(u) {
			t.Fatalf("insert-only mismatch at %v", u)
		}
	}
}

// A dominating insertion (a product beating q everywhere) must erase the
// region once k such products exist.
func TestDynamicDominatingInserts(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.3, 0.3), vec.Of(0.4, 0.2)}
	q := Query{Q: vec.Of(0.5, 0.5), K: 2, Eps: 0.0}
	dyn, err := NewDynamic(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Region().Empty() {
		t.Fatal("initial region should cover everything")
	}
	// Two strictly dominating products with k=2 kill the region.
	if err := dyn.Insert(vec.Of(0.9, 0.9)); err != nil {
		t.Fatal(err)
	}
	if dyn.Region().Empty() {
		t.Fatal("one dominator with k=2 should leave the region intact")
	}
	if err := dyn.Insert(vec.Of(0.95, 0.95)); err != nil {
		t.Fatal(err)
	}
	if !dyn.Region().Empty() {
		t.Fatal("two dominators with k=2 should empty the region")
	}
	// Deleting one of them restores it.
	if err := dyn.Delete(3); err != nil {
		t.Fatal(err)
	}
	if dyn.Region().Empty() {
		t.Fatal("deletion should restore the region")
	}
}

func TestDynamicErrors(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.5, 0.5)}
	if _, err := NewDynamic(pts, Query{Q: vec.Of(0.5, 0.5), K: 0, Eps: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	dyn, err := NewDynamic(pts, Query{Q: vec.Of(0.5, 0.5), K: 1, Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.Insert(vec.Of(1, 2, 3)); err == nil {
		t.Error("dim-mismatched insert accepted")
	}
	if err := dyn.Delete(5); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if dyn.Len() != 1 {
		t.Errorf("Len = %d, want 1", dyn.Len())
	}
}
