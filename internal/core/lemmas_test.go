package core

// Empirical verification of the paper's lemmas, one test per lemma. These
// tests pin the implementation to the paper's claims rather than to
// implementation details.

import (
	"math/rand"
	"sort"
	"testing"

	"rrq/internal/geom"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// Lemma 3.5: q is a (k,ε)-regret point w.r.t. u iff u lies in fewer than k
// negative half-spaces of the arrangement.
func TestLemma35CountingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(3)
		pts, q := randomInstance(rng, 20, d)
		q.Eps = 0.01 + rng.Float64()*0.2 // ε > 0 so the ratio form is exact
		for i := 0; i < 40; i++ {
			u := vec.RandSimplex(rng, d)
			count, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			byCount := count < q.K
			byRatio := RegretRatio(pts, q, u) < q.Eps
			if byCount != byRatio {
				t.Fatalf("d=%d: count says %v, ratio says %v at %v", d, byCount, byRatio, u)
			}
		}
	}
}

// Lemma 4.1: no utility vector beyond the k-th ranked inclusive crossing
// qualifies (2-d).
func TestLemma41InclusiveCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		pts, q := randomInstance(rng, 25, 2)
		ps := BuildPlanes(pts, q)
		k := ps.KEff(q.K)
		if k <= 0 {
			continue
		}
		var incl []float64
		for _, h := range ps.Crossing {
			w := h.Normal
			if w[0] < 0 {
				incl = append(incl, w[1]/(w[1]-w[0]))
			}
		}
		if len(incl) < k {
			continue
		}
		sort.Float64s(incl)
		tk := incl[k-1]
		// Sample beyond the cutoff: must never qualify.
		for i := 0; i < 30; i++ {
			tt := tk + (1-tk)*rng.Float64()
			if tt <= tk+1e-6 {
				continue
			}
			u := vec.Of(tt, 1-tt)
			count, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if count < q.K {
				t.Fatalf("u at t=%v beyond lh_%d crossing %v qualifies (count=%d)", tt, k, tk, count)
			}
		}
	}
}

// Lemma 4.2: at most 2k hyper-planes cross the reduced sweep window, so
// the sweep inspects O(k) partitions.
func TestLemma42WindowPlaneCount(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		pts, q := randomInstance(rng, 120, 2)
		ps := BuildPlanes(pts, q)
		k := ps.KEff(q.K)
		if k <= 0 {
			continue
		}
		var incl, excl []float64
		for _, h := range ps.Crossing {
			w := h.Normal
			tt := w[1] / (w[1] - w[0])
			if w[0] < 0 {
				incl = append(incl, tt)
			} else {
				excl = append(excl, tt)
			}
		}
		tHi := 1.0
		if len(incl) >= k {
			tHi = kthSmallest(incl, k)
		}
		tLo := 0.0
		if len(excl) >= k {
			sort.Float64s(excl)
			tLo = excl[len(excl)-k]
		}
		inWindow := 0
		for _, tt := range append(append([]float64(nil), incl...), excl...) {
			if tt > tLo+geom.Tol && tt < tHi-geom.Tol {
				inWindow++
			}
		}
		if inWindow > 2*k {
			t.Fatalf("window holds %d crossings, bound is 2k = %d", inWindow, 2*k)
		}
	}
}

// Lemma 5.2: component-wise dominance of unit normals implies negative
// half-space containment.
func TestLemma52NormalDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	checked := 0
	for trial := 0; trial < 400 && checked < 60; trial++ {
		d := 2 + rng.Intn(3)
		w1, w2 := vec.New(d), vec.New(d)
		for i := range w1 {
			w1[i] = rng.NormFloat64()
			w2[i] = w1[i] - rng.Float64() // w1 ≥ w2 component-wise
		}
		if w1.Norm() < 1e-6 || w2.Norm() < 1e-6 {
			continue
		}
		v1, v2 := w1.Unit(), w2.Unit()
		dominates := true
		for i := range v1 {
			if v1[i] < v2[i] {
				dominates = false
				break
			}
		}
		if !dominates {
			continue
		}
		checked++
		h1 := geom.NewHyperplane(v1, 0)
		h2 := geom.NewHyperplane(v2, 1)
		// Every simplex point in h1⁻ must lie in h2⁻.
		for i := 0; i < 60; i++ {
			u := vec.RandSimplex(rng, d)
			if h1.Eval(u) < -1e-9 && h2.Eval(u) > 1e-9 {
				t.Fatalf("dominance violated: u=%v in h1⁻ but not h2⁻ (v1=%v v2=%v)", u, v1, v2)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d dominated pairs generated; test ineffective", checked)
	}
}

// Lemma 5.3: half-space coverage is inherited by sub-cells.
func TestLemma53CoverageInheritance(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		d := 3 + rng.Intn(2)
		cell := geom.NewSimplex(d)
		// Cut once to get a parent, once more for a child.
		var child *geom.Cell
		for cut := 0; cut < 6; cut++ {
			w := vec.New(d)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			if w.Norm() < 1e-6 {
				continue
			}
			h := geom.NewHyperplane(w, cut)
			if cell.Relation(h) != geom.RelCross {
				continue
			}
			neg, pos := cell.Split(h)
			if neg != nil && pos != nil {
				child = neg
				break
			}
		}
		if child == nil {
			continue
		}
		w := vec.New(d)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		if w.Norm() < 1e-6 {
			continue
		}
		h := geom.NewHyperplane(w, 99)
		switch cell.Relation(h) {
		case geom.RelPos:
			if child.Relation(h) == geom.RelNeg {
				t.Fatal("parent in h⁺ but child reported in h⁻")
			}
		case geom.RelNeg:
			if child.Relation(h) == geom.RelPos {
				t.Fatal("parent in h⁻ but child reported in h⁺")
			}
		}
	}
}

// Lemmas 5.4 / 5.5: outer-sphere coverage implies cell coverage; inner-
// sphere intersection implies cell intersection. Verified through the
// Relation pipeline against the exact vertex test.
func TestLemma5455SphereSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 80; trial++ {
		d := 3 + rng.Intn(2)
		cell := geom.NewSimplex(d)
		for cut := 0; cut < 4; cut++ {
			w := vec.New(d)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			if w.Norm() < 1e-6 {
				continue
			}
			h := geom.NewHyperplane(w, cut)
			if cell.Relation(h) != geom.RelCross {
				continue
			}
			neg, pos := cell.Split(h)
			if rng.Intn(2) == 0 && neg != nil {
				cell = neg
			} else if pos != nil {
				cell = pos
			}
		}
		w := vec.New(d)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		if w.Norm() < 1e-6 {
			continue
		}
		h := geom.NewHyperplane(w, 77)
		rel := cell.Relation(h)
		// Verify against dense samples: coverage claims must never be
		// contradicted by a point strictly on the other side.
		for i := 0; i < 80; i++ {
			p := cell.SamplePoint(rng)
			s := h.Eval(p)
			if rel == geom.RelPos && s < -1e-7 {
				t.Fatalf("RelPos contradicted by sample with s=%v", s)
			}
			if rel == geom.RelNeg && s > 1e-7 {
				t.Fatalf("RelNeg contradicted by sample with s=%v", s)
			}
		}
	}
}

// Lemma 5.7: every partition A-PC constructs contains its sample and
// qualifies in full.
func TestLemma57APCPartitionQualifies(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 25; trial++ {
		d := 2 + rng.Intn(3)
		pts, q := randomInstance(rng, 25, d)
		reg, err := APC(pts, q, APCOptions{Samples: 40, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range reg.Cells() {
			for i := 0; i < 25; i++ {
				u := c.SamplePoint(rng)
				count, margin := CountBetter(pts, q, u)
				if margin < boundaryMargin {
					continue
				}
				if count >= q.K {
					t.Fatalf("A-PC partition contains unqualified %v (count=%d k=%d)", u, count, q.K)
				}
			}
		}
	}
}

// Lemma 5.10: the sample size formula finds large partitions with the
// stated confidence. Statistical check: with N = N(ρ, δ) samples, a region
// of volume ratio > ρ is hit in nearly every repetition.
func TestLemma510SampleSizeFindsLargeRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(510))
	const rho, delta = 0.2, 0.1
	d := 3
	n := SampleSizeFor(rho, delta, d)
	// Construct a region of volume ratio just above ρ: a half-space cut.
	h := geom.NewHyperplane(vec.Of(1, -0.5, -0.2), 0)
	target := geom.NewSimplex(d).Clip(h, +1)
	ratio := geom.CellMeasure(target, rng, 20000)
	if ratio <= rho {
		t.Skipf("constructed region ratio %v ≤ ρ; adjust the plane", ratio)
	}
	misses := 0
	const reps = 60
	for rep := 0; rep < reps; rep++ {
		hit := false
		for i := 0; i < n; i++ {
			if target.Contains(vec.RandSimplex(rng, d)) {
				hit = true
				break
			}
		}
		if !hit {
			misses++
		}
	}
	// Expected miss probability ≤ δ; allow generous slack for a 60-rep
	// estimate.
	if float64(misses)/reps > 2*delta {
		t.Fatalf("missed the large region %d/%d times with N=%d", misses, reps, n)
	}
}

// The hyper-plane reduction of §5.1.2 (built on Lemma 5.2) must never
// change the answer.
func TestHyperplaneReductionPreservesAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(512))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(3)
		pts, q := randomInstance(rng, 40, d)
		full, _, err := EPTWithOptions(pts, q, EPTOptions{NoReduction: true})
		if err != nil {
			t.Fatal(err)
		}
		reduced, err := EPT(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150; i++ {
			u := vec.RandSimplex(rng, d)
			_, margin := CountBetter(pts, q, u)
			if margin < boundaryMargin {
				continue
			}
			if full.Contains(u) != reduced.Contains(u) {
				t.Fatalf("reduction changed the answer at %v", u)
			}
		}
	}
}

// The skyband-based reduction must agree with the quadratic definition of
// Lemma 5.2 dominance counting.
func TestReductionMatchesQuadraticDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(513))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(3)
		pts, q := randomInstance(rng, 60, d)
		ps := BuildPlanes(pts, q)
		k := ps.KEff(q.K)
		if k <= 0 || len(ps.Crossing) == 0 {
			continue
		}
		kept := reduceAndOrderPlanes(ps.Crossing, k)
		keptIDs := map[int]bool{}
		for _, h := range kept {
			keptIDs[h.ID] = true
		}
		// Quadratic check: a plane is kept iff strictly dominated (in the
		// reversed order of Lemma 5.2) by fewer than k planes.
		for _, h := range ps.Crossing {
			domCount := 0
			for _, g := range ps.Crossing {
				if g.ID != h.ID && skyband.Dominates(h.Unit(), g.Unit()) {
					domCount++
				}
			}
			want := domCount < k
			if keptIDs[h.ID] != want {
				t.Fatalf("plane %d kept=%v, quadratic dominance says %v (count=%d k=%d)",
					h.ID, keptIDs[h.ID], want, domCount, k)
			}
		}
	}
}
