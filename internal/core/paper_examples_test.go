package core

// Tests in this file reproduce the worked examples of the paper exactly:
// Table 1 (the car market), Table 3 with Examples 3.1, 3.3, 3.4, 3.6, and
// the Sweeping walk-through of §4.

import (
	"math"
	"testing"

	"rrq/internal/topk"
	"rrq/internal/vec"
)

// table3 is the running dataset of the paper (Table 3).
func table3() []vec.Vec {
	return []vec.Vec{
		vec.Of(0.2, 0.92), // p1
		vec.Of(0.7, 0.54), // p2
		vec.Of(0.6, 0.3),  // p3
	}
}

func TestExample31Utilities(t *testing.T) {
	pts := table3()
	u := vec.Of(0.5, 0.5)
	utils := topk.Utilities(pts, u)
	want := []float64{0.56, 0.62, 0.45}
	for i := range want {
		if math.Abs(utils[i]-want[i]) > 1e-12 {
			t.Fatalf("f_u(p%d) = %v, want %v", i+1, utils[i], want[i])
		}
	}
	// p1 ranks second: 2max = 0.56.
	if got := topk.KthMax(utils, 2); math.Abs(got-0.56) > 1e-12 {
		t.Fatalf("2max = %v, want 0.56", got)
	}
}

func TestExample33RegretRatio(t *testing.T) {
	pts := table3()
	q := Query{Q: vec.Of(0.4, 0.7), K: 2, Eps: 0.1}
	u := vec.Of(0.5, 0.5)
	// 2-regratio(q,u) = max(0, 0.56 − 0.55)/0.56 ≈ 0.0179 < 0.1.
	got := RegretRatio(pts, q, u)
	if math.Abs(got-0.01/0.56) > 1e-12 {
		t.Fatalf("2-regratio = %v, want %v", got, 0.01/0.56)
	}
	if !QualifiedAt(pts, q, u) {
		t.Fatal("u = (0.5,0.5) must qualify (q is a (2,0.1)-regret point)")
	}
}

func TestExample36PartitionCounts(t *testing.T) {
	// With ε = 0.1 the three planes split the segment into four partitions
	// c1..c4; c1, c2, c3 qualify for k = 2 (Example 3.6 / §3.2).
	pts := table3()
	q := Query{Q: vec.Of(0.4, 0.7), K: 2, Eps: 0.1}
	reg, err := BruteForce2D(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	// Compute the three crossing parameters to locate the partitions.
	ps := BuildPlanes(pts, q)
	if len(ps.Crossing) != 3 || ps.Base != 0 {
		t.Fatalf("planes: crossing=%d base=%d, want 3,0", len(ps.Crossing), ps.Base)
	}
	var ts []float64
	for _, h := range ps.Crossing {
		w := h.Normal
		ts = append(ts, w[1]/(w[1]-w[0]))
	}
	// Partition c4 (beyond the largest two crossings on the p2/p3 side)
	// must be excluded; everything before must qualify. Lemma 3.5 walk:
	// verify via the membership oracle on each partition midpoint.
	for _, u := range []vec.Vec{vec.Of(0.05, 0.95), vec.Of(0.5, 0.5)} {
		if !reg.Contains(u) {
			t.Errorf("u = %v should qualify", u)
		}
	}
	// The region must exclude a deep part of c4 (both inclusive planes
	// negative): near t = 1.
	if reg.Contains(vec.Of(0.999, 0.001)) {
		t.Error("u near (1,0) lies in two negative half-spaces and must not qualify")
	}
	_ = ts
}

func TestSection4SweepingWalkthrough(t *testing.T) {
	// §4 example: k = 1 on Table 3. lh_1 = h_{q,p2}, uh_1 = h_{q,p1};
	// h_{q,p3} is filtered; the single surviving partition c2 is returned.
	pts := table3()
	q := Query{Q: vec.Of(0.4, 0.7), K: 1, Eps: 0.1}
	reg, err := Sweeping(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	ivs := reg.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("got %d intervals, want exactly 1 (partition c2): %v", len(ivs), ivs)
	}
	// Bounds: crossing of h_{q,p1} (t ≈ 0.3628) and h_{q,p2} (t ≈ 0.5102).
	wantLo := cross2(q, pts[0])
	wantHi := cross2(q, pts[1])
	if math.Abs(ivs[0][0]-wantLo) > 1e-9 || math.Abs(ivs[0][1]-wantHi) > 1e-9 {
		t.Fatalf("interval = %v, want [%v, %v]", ivs[0], wantLo, wantHi)
	}
}

// cross2 computes the sweep parameter at which h_{q,p} crosses the segment.
func cross2(q Query, p vec.Vec) float64 {
	w := q.Q.AddScaled(-(1 - q.Eps), p)
	return w[1] / (w[1] - w[0])
}

func TestTable1CarMarket(t *testing.T) {
	// Table 1: horsepower (×100 hp) and safety rating. The utility vector
	// u1 = (0.9, 0.1) reproduces the printed scores exactly: f(p1)=4.37,
	// f(p2)=4.45, f(p3)=4.60, f(q)=4.25 — regret ratio (4.60−4.25)/4.60 =
	// 0.076 < 0.1, so u1 qualifies even though q ranks last.
	cars := []vec.Vec{
		vec.Of(4.3, 5), // p1
		vec.Of(4.5, 4), // p2
		vec.Of(5.0, 1), // p3
	}
	u1 := vec.Of(0.9, 0.1)
	q := Query{Q: vec.Of(4.5, 2), K: 1, Eps: 0.1}
	utils := topk.Utilities(cars, u1)
	want := []float64{4.37, 4.45, 4.60}
	for i := range want {
		if math.Abs(utils[i]-want[i]) > 1e-9 {
			t.Fatalf("f_u1(p%d) = %v, want %v", i+1, utils[i], want[i])
		}
	}
	fq := u1.Dot(q.Q)
	ratio := (topk.KthMax(utils, 1) - fq) / topk.KthMax(utils, 1)
	if ratio >= 0.1 {
		t.Fatalf("regret ratio = %v, want < 0.1", ratio)
	}
	// q ranks last (rank 4) yet still qualifies — the paper's core claim.
	if r := topk.Rank(cars, u1, fq); r != 4 {
		t.Fatalf("rank of q = %d, want 4", r)
	}
	if !QualifiedAt(cars, q, u1) {
		t.Fatal("u1 must qualify under RRQ")
	}
}

func TestRegretRatioRange(t *testing.T) {
	pts := table3()
	q := Query{Q: vec.Of(0.9, 0.95), K: 1, Eps: 0.1}
	// q beats everything: ratio must be exactly 0.
	u := vec.Of(0.5, 0.5)
	if got := RegretRatio(pts, q, u); got != 0 {
		t.Fatalf("ratio = %v, want 0", got)
	}
	// Ratio of a dominated point is in (0,1].
	q2 := Query{Q: vec.Of(0.01, 0.01), K: 1, Eps: 0.1}
	got := RegretRatio(pts, q2, u)
	if got <= 0 || got > 1 {
		t.Fatalf("ratio = %v, want in (0,1]", got)
	}
	if RegretRatio(nil, q, u) != 0 {
		t.Fatal("empty dataset ratio should be 0")
	}
}

func TestQueryValidate(t *testing.T) {
	q := Query{Q: vec.Of(0.5, 0.5), K: 1, Eps: 0.1}
	if err := q.Validate(2); err != nil {
		t.Fatal(err)
	}
	bad := []Query{
		{Q: vec.Of(0.5, 0.5, 0.5), K: 1, Eps: 0.1}, // dim mismatch
		{Q: vec.Of(0.5, 0.5), K: 0, Eps: 0.1},      // k < 1
		{Q: vec.Of(0.5, 0.5), K: 1, Eps: -0.1},     // ε < 0
		{Q: vec.Of(0.5, 0.5), K: 1, Eps: 1},        // ε ≥ 1
	}
	for i, b := range bad {
		if err := b.Validate(2); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if err := (Query{Q: vec.Of(0.5), K: 1, Eps: 0}).Validate(1); err == nil {
		t.Error("d = 1 should fail validation")
	}
}
