package core

import (
	"context"
	"sort"

	"rrq/internal/geom"
	"rrq/internal/obs"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// eptNode is one node of the partition tree (paper §5.1.1). Leaves carry
// the lazy hyper-plane set H(N); internal nodes carry two children that
// partition the node's cell.
type eptNode struct {
	cell     *geom.Cell
	q        int               // negative half-spaces covering the cell
	lazy     []geom.Hyperplane // H(N); leaves only
	children []*eptNode
	invalid  bool
}

func (n *eptNode) leaf() bool { return len(n.children) == 0 }

// EPTOptions disables individual accelerations of §5.1.2, for the ablation
// benchmarks. The zero value runs the full algorithm.
type EPTOptions struct {
	// NoReduction skips the Lemma 5.2 hyper-plane reduction.
	NoReduction bool
	// NoOrdering inserts hyper-planes in input order instead of by W(h).
	NoOrdering bool
	// NoLazySplit splits leaves eagerly on every crossing plane instead of
	// deferring through H(N).
	NoLazySplit bool
}

// EPT solves RRQ exactly in any dimension via the partition tree
// (paper §5.1, Algorithm 2). The four published accelerations are applied:
// hyper-plane reduction (Lemma 5.2), W(h)-descending insertion order,
// sphere-accelerated relationship checks (inside geom.Cell.Relation) and
// lazy splitting with H(N) refinement.
func EPT(pts []vec.Vec, q Query) (*Region, error) {
	r, _, err := EPTWithStats(pts, q)
	return r, err
}

// EPTWithStats is EPT plus work counters.
func EPTWithStats(pts []vec.Vec, q Query) (*Region, Stats, error) {
	return EPTWithOptions(pts, q, EPTOptions{})
}

// EPTWithOptions runs E-PT with selected accelerations disabled.
func EPTWithOptions(pts []vec.Vec, q Query, opt EPTOptions) (*Region, Stats, error) {
	return EPTContext(context.Background(), pts, q, opt)
}

// EPTContext runs E-PT under a context: cancellation and deadlines are
// observed with one amortized check every few thousand node visits, so a
// Solve aborts within one check interval of the context firing. A passed
// deadline surfaces as ErrDeadline, cancellation as ctx.Err(). Trace hooks
// and metrics registries attached to ctx (see internal/obs) receive the
// solve's work events and phase timings.
func EPTContext(ctx context.Context, pts []vec.Vec, q Query, opt EPTOptions) (*Region, Stats, error) {
	var st Stats
	d := q.Q.Dim()
	if err := ValidateInstance(pts, q); err != nil {
		return nil, st, err
	}
	check := NewCtxChecker(ctx, 0xfff)
	if check.Failed() {
		return nil, st, check.Err()
	}
	planePhase := check.Phase("phase.ept.planes")
	ps := buildPlanes(pts, q)
	st.PlanesBuilt = len(ps.crossing)
	check.Emit(obs.EvPlaneBuilt, st.PlanesBuilt)
	k := ps.kEff(q.K)
	if k <= 0 {
		planePhase()
		check.Emit(obs.EvPlanePruned, st.PlanesBuilt)
		return emptyRegion(d), st, nil
	}

	planes := ps.crossing
	if !opt.NoReduction || !opt.NoOrdering {
		planes = reduceAndOrderPlanesOpt(ps.crossing, k, opt.NoReduction, opt.NoOrdering)
	}
	st.PlanesInserted = len(planes)
	check.Emit(obs.EvPlanePruned, st.PlanesBuilt-st.PlanesInserted)
	planePhase()

	insertPhase := check.Phase("phase.ept.insert")
	t := &eptTree{k: k, stats: &st, eager: opt.NoLazySplit, check: check}
	t.root = &eptNode{cell: geom.NewSimplex(d)}
	st.NodesCreated++
	for _, h := range planes {
		t.insert(t.root, h)
		if check.Failed() {
			return nil, st, check.Err()
		}
	}
	insertPhase()

	collectPhase := check.Phase("phase.ept.collect")
	defer collectPhase()
	var cells []*geom.Cell
	t.collect(t.root, &cells)
	st.Pieces = len(cells)
	check.Emit(obs.EvPieceEmitted, st.Pieces)
	if len(cells) == 0 {
		return emptyRegion(d), st, nil
	}
	return NewDisjointCellRegion(d, cells), st, nil
}

// reduceAndOrderPlanes applies the hyper-plane reduction of Lemma 5.2 and
// the W(h)-descending insertion order of §5.1.2.
//
// h_i⁻ ⊆ h_j⁻ when the unit normal of h_i dominates (component-wise ≥,
// somewhere >) that of h_j. A plane whose negative half-space is covered by
// ≥ k other negative half-spaces is redundant. This is exactly a k-skyband
// computation under the reversed order, so the skyband substrate is reused
// on negated unit normals (a standard descent argument shows counting only
// kept dominators is sufficient — see internal/skyband).
func reduceAndOrderPlanes(planes []geom.Hyperplane, k int) []geom.Hyperplane {
	return reduceAndOrderPlanesOpt(planes, k, false, false)
}

// reduceAndOrderPlanesOpt optionally skips the reduction or the ordering,
// for ablation runs.
func reduceAndOrderPlanesOpt(planes []geom.Hyperplane, k int, noReduce, noOrder bool) []geom.Hyperplane {
	m := len(planes)
	if m == 0 {
		return nil
	}
	negUnits := make([]vec.Vec, m)
	for i, h := range planes {
		negUnits[i] = h.Unit().Scale(-1)
	}
	var keepIdx []int
	if noReduce {
		keepIdx = make([]int, m)
		for i := range keepIdx {
			keepIdx[i] = i
		}
	} else {
		keepIdx = skyband.KSkyband(negUnits, k)
	}
	kept := make([]geom.Hyperplane, len(keepIdx))
	// W(h): the number of negative half-spaces covered by h⁻. By Lemma 5.2,
	// v' ≥ v component-wise means h'⁻ ⊆ h⁻, so W counts the planes whose
	// unit normal dominates h's. Inserting in descending W order lets the
	// widest negative half-spaces raise counters first, so invalid nodes
	// are discovered early.
	w := make([]int, len(keepIdx))
	for out, i := range keepIdx {
		kept[out] = planes[i]
		ui := planes[i].Unit()
		for j := 0; j < m; j++ {
			if j != i && skyband.Dominates(planes[j].Unit(), ui) {
				w[out]++
			}
		}
	}
	if noOrder {
		return kept
	}
	order := make([]int, len(kept))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if w[order[a]] != w[order[b]] {
			return w[order[a]] > w[order[b]]
		}
		return order[a] < order[b]
	})
	out := make([]geom.Hyperplane, len(kept))
	for i, idx := range order {
		out[i] = kept[idx]
	}
	return out
}

type eptTree struct {
	root  *eptNode
	k     int
	stats *Stats
	eager bool // ablation: split on every crossing plane immediately
	check *CtxChecker
}

// needSplit is the lazy-split trigger; in eager mode any pending plane
// forces a split.
func (t *eptTree) needSplit(n *eptNode) bool {
	if t.eager {
		return len(n.lazy) > 0 || n.q >= t.k
	}
	return n.q+len(n.lazy) >= t.k
}

// insert performs the top-down insertion of Algorithm 2.
func (t *eptTree) insert(n *eptNode, h geom.Hyperplane) {
	if n.invalid || t.check.Stop() {
		return
	}
	switch n.cell.Relation(h) {
	case geom.RelNeg:
		t.coverNeg(n)
	case geom.RelPos:
		// Case 2: nothing in this subtree is affected.
	case geom.RelCross:
		if !n.leaf() {
			for _, c := range n.children {
				t.insert(c, h)
			}
			return
		}
		n.lazy = append(n.lazy, h)
		if t.needSplit(n) {
			t.lazySplit(n)
		}
	}
}

// coverNeg applies a covering negative half-space to n's whole subtree
// (Case 1, with the Lemma 5.3 shortcut: descendants inherit the coverage
// without re-running geometric checks).
func (t *eptTree) coverNeg(n *eptNode) {
	if n.invalid || t.check.Stop() {
		return
	}
	n.q++
	if n.q >= t.k {
		n.invalid = true
		return
	}
	if !n.leaf() {
		for _, c := range n.children {
			t.coverNeg(c)
		}
		return
	}
	if n.q+len(n.lazy) >= t.k {
		t.lazySplit(n)
	}
}

// lazySplit pops hyper-planes from H(N) and splits the leaf until the
// qualification budget is respected again (paper §5.1.2, Lazy_Split +
// Refine). The loop also absorbs numerically degenerate splits where one
// side vanishes.
func (t *eptTree) lazySplit(n *eptNode) {
	for !n.invalid && n.leaf() && t.needSplit(n) && !t.check.Stop() {
		if len(n.lazy) == 0 {
			// q ≥ k without pending planes: disqualified outright.
			n.invalid = true
			return
		}
		h := n.lazy[0]
		n.lazy = n.lazy[1:]
		neg, pos := n.cell.Split(h)
		switch {
		case neg == nil && pos == nil:
			// Degenerate sliver; drop the plane.
		case neg == nil:
			// The cell is effectively on the positive side; drop the plane.
			n.cell = pos
		case pos == nil:
			// The cell is effectively on the negative side.
			n.cell = neg
			n.q++
			if n.q >= t.k {
				n.invalid = true
				return
			}
		default:
			t.stats.Splits++
			t.check.Emit(obs.EvNodeSplit, 1)
			left := &eptNode{cell: neg, q: n.q + 1, lazy: append([]geom.Hyperplane(nil), n.lazy...)}
			right := &eptNode{cell: pos, q: n.q, lazy: n.lazy}
			t.stats.NodesCreated += 2
			n.children = []*eptNode{left, right}
			n.lazy = nil
			t.refine(left)
			t.refine(right)
			return
		}
	}
}

// refine re-checks a fresh child's inherited H(N) against its smaller cell,
// dropping planes that no longer cross it and folding covering negative
// half-spaces into the counter, then re-applies the lazy-split trigger.
func (t *eptTree) refine(n *eptNode) {
	if n.q >= t.k {
		n.invalid = true
		return
	}
	kept := n.lazy[:0:len(n.lazy)] // fresh backing view; slices were copied by caller for one child
	for _, h := range n.lazy {
		switch n.cell.Relation(h) {
		case geom.RelNeg:
			n.q++
			if n.q >= t.k {
				n.invalid = true
				return
			}
		case geom.RelPos:
			// Dropped.
		case geom.RelCross:
			kept = append(kept, h)
		}
	}
	n.lazy = kept
	if t.needSplit(n) {
		t.lazySplit(n)
	}
}

// collect gathers qualified leaf cells: valid leaves with
// Q(N) + |H(N)| < k, whose entire partition qualifies (paper §5.1.2).
func (t *eptTree) collect(n *eptNode, out *[]*geom.Cell) {
	if n.invalid {
		return
	}
	if n.leaf() {
		if n.q+len(n.lazy) < t.k {
			*out = append(*out, n.cell)
		}
		return
	}
	for _, c := range n.children {
		t.collect(c, out)
	}
}

func errDimMismatch(want, got int) error {
	return queryErrf("dim", "point dimension %d does not match query dimension %d", got, want)
}
