package core

import (
	"context"

	"rrq/internal/faultinject"
	"rrq/internal/geom"
	"rrq/internal/obs"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// eptNode is one node of the partition tree (paper §5.1.1). Leaves carry
// the lazy hyper-plane set H(N); internal nodes carry two children that
// partition the node's cell.
type eptNode struct {
	cell     *geom.Cell
	q        int               // negative half-spaces covering the cell
	lazy     []geom.Hyperplane // H(N); leaves only
	children []*eptNode
	invalid  bool
}

func (n *eptNode) leaf() bool { return len(n.children) == 0 }

// EPTOptions disables individual accelerations of §5.1.2, for the ablation
// benchmarks. The zero value runs the full algorithm.
type EPTOptions struct {
	// NoReduction skips the Lemma 5.2 hyper-plane reduction.
	NoReduction bool
	// NoOrdering inserts hyper-planes in input order instead of by W(h).
	NoOrdering bool
	// NoLazySplit splits leaves eagerly on every crossing plane instead of
	// deferring through H(N).
	NoLazySplit bool
	// Workers parallelizes each plane insertion across the partition tree's
	// independent subtrees (see ept_parallel.go). ≤ 1 runs serially. The
	// answer is byte-identical for every worker count: the tree refinement
	// decomposes into disjoint per-subtree work, so scheduling cannot
	// change any geometric decision.
	Workers int
}

// EPT solves RRQ exactly in any dimension via the partition tree
// (paper §5.1, Algorithm 2). The four published accelerations are applied:
// hyper-plane reduction (Lemma 5.2), W(h)-descending insertion order,
// sphere-accelerated relationship checks (inside geom.Cell.Relation) and
// lazy splitting with H(N) refinement.
func EPT(pts []vec.Vec, q Query) (*Region, error) {
	r, _, err := EPTWithStats(pts, q)
	return r, err
}

// EPTWithStats is EPT plus work counters.
func EPTWithStats(pts []vec.Vec, q Query) (*Region, Stats, error) {
	return EPTWithOptions(pts, q, EPTOptions{})
}

// EPTWithOptions runs E-PT with selected accelerations disabled.
func EPTWithOptions(pts []vec.Vec, q Query, opt EPTOptions) (*Region, Stats, error) {
	return EPTContext(context.Background(), pts, q, opt)
}

// EPTContext runs E-PT under a context: cancellation and deadlines are
// observed with one amortized check every few thousand node visits, so a
// Solve aborts within one check interval of the context firing. A passed
// deadline surfaces as ErrDeadline, cancellation as ctx.Err(). Trace hooks
// and metrics registries attached to ctx (see internal/obs) receive the
// solve's work events and phase timings.
func EPTContext(ctx context.Context, pts []vec.Vec, q Query, opt EPTOptions) (*Region, Stats, error) {
	if err := ValidateInstance(pts, q); err != nil {
		return nil, Stats{}, err
	}
	return eptSolve(ctx, pts, q, opt, nil)
}

// eptSolve is the E-PT body shared by the validated entry points. src, when
// non-nil, serves the classified plane set from shared (index-owned)
// storage; the set is then treated as read-only — any path that would
// reorder or repack it copies the slice first.
func eptSolve(ctx context.Context, pts []vec.Vec, q Query, opt EPTOptions, src PlaneSource) (*Region, Stats, error) {
	var st Stats
	d := q.Q.Dim()
	check := NewCtxChecker(ctx, 0xfff)
	check.SetFaultKey(q.Q)
	if check.Failed() {
		return nil, st, check.Err()
	}
	a := arenaFrom(ctx)
	planePhase := check.Phase("phase.ept.planes")
	defer planePhase()
	ps := planesForArena(src, pts, q, a)
	st.PlanesBuilt = len(ps.Crossing)
	check.Emit(obs.EvPlaneBuilt, st.PlanesBuilt)
	k := ps.KEff(q.K)
	if k <= 0 {
		planePhase()
		check.Emit(obs.EvPlanePruned, st.PlanesBuilt)
		return emptyRegion(d), st, nil
	}

	planes := ps.Crossing
	if !opt.NoReduction || !opt.NoOrdering {
		planes = reduceAndOrderPlanesOpt(ps.Crossing, k, opt.NoReduction, opt.NoOrdering, a)
	} else if src != nil {
		// Both ablations off the reduction path would pack the cached slice
		// itself; shared plane storage is read-only, so copy the headers
		// (PackNormals rebinds each entry's backing array, it does not write
		// through the old one).
		planes = append([]geom.Hyperplane(nil), ps.Crossing...)
	}
	// Repack the surviving normals into one flat block: every relation test
	// of the insert phase streams over these, and after the reduction the
	// per-plane normals are scattered across the heap.
	geom.PackNormals(planes)
	st.PlanesInserted = len(planes)
	check.Emit(obs.EvPlanePruned, st.PlanesBuilt-st.PlanesInserted)
	planePhase()

	insertPhase := check.Phase("phase.ept.insert")
	defer insertPhase()
	t := &eptTree{k: k, eager: opt.NoLazySplit}
	t.root = &eptNode{cell: geom.NewSimplex(d)}
	st.NodesCreated++
	if opt.Workers > 1 {
		pool := newEPTPool(ctx, t, opt.Workers, q.Q)
		err := pool.run(planes, check)
		pool.drain(&st, check)
		if err != nil {
			return nil, st, err
		}
	} else {
		e := &eptCtx{t: t, stats: &st, check: check}
		for _, h := range planes {
			e.insert(t.root, h)
			if check.Failed() {
				return nil, st, check.Err()
			}
		}
	}
	insertPhase()

	collectPhase := check.Phase("phase.ept.collect")
	defer collectPhase()
	var cells []*geom.Cell
	t.collect(t.root, &cells)
	st.Pieces = len(cells)
	check.Emit(obs.EvPieceEmitted, st.Pieces)
	if len(cells) == 0 {
		return emptyRegion(d), st, nil
	}
	return NewDisjointCellRegion(d, cells), st, nil
}

// reduceAndOrderPlanes applies the hyper-plane reduction of Lemma 5.2 and
// the W(h)-descending insertion order of §5.1.2.
//
// h_i⁻ ⊆ h_j⁻ when the unit normal of h_i dominates (component-wise ≥,
// somewhere >) that of h_j. A plane whose negative half-space is covered by
// ≥ k other negative half-spaces is redundant. This is exactly a k-skyband
// computation under the reversed order, so the skyband substrate is reused
// on negated unit normals (a standard descent argument shows counting only
// kept dominators is sufficient — see internal/skyband).
func reduceAndOrderPlanes(planes []geom.Hyperplane, k int) []geom.Hyperplane {
	return reduceAndOrderPlanesOpt(planes, k, false, false, nil)
}

// reduceAndOrderPlanesOpt optionally skips the reduction or the ordering,
// for ablation runs. Every working buffer is drawn from the worker arena
// when one is supplied; the returned slice then aliases arena memory and is
// consumed (repacked by PackNormals, copied into tree nodes) before the
// worker's next solve.
func reduceAndOrderPlanesOpt(planes []geom.Hyperplane, k int, noReduce, noOrder bool, a *Arena) []geom.Hyperplane {
	m := len(planes)
	if m == 0 {
		return nil
	}
	if a == nil {
		a = &Arena{}
	}
	d := planes[0].Normal.Dim()
	// All negated unit normals share one flat backing array; the skyband
	// scan is a pure read over them.
	flat := growF64(&a.negFlat, m*d)
	negUnits := growVecs(&a.negUnits, m)
	for i, h := range planes {
		u := h.Unit()
		nu := flat[i*d : (i+1)*d : (i+1)*d]
		for j, x := range u {
			nu[j] = -x
		}
		negUnits[i] = nu
	}
	var keepIdx []int
	if noReduce {
		keepIdx = growInts(&a.noRedIdx, m)
		for i := range keepIdx {
			keepIdx[i] = i
		}
	} else {
		keepIdx = skyband.KSkybandScratch(negUnits, k, &a.sky)
	}
	kept := growPlanes(&a.kept, len(keepIdx))
	// W(h): the number of negative half-spaces covered by h⁻. By Lemma 5.2,
	// v' ≥ v component-wise means h'⁻ ⊆ h⁻, so W counts the planes whose
	// unit normal dominates h's. Inserting in descending W order lets the
	// widest negative half-spaces raise counters first, so invalid nodes
	// are discovered early.
	w := growInts(&a.w, len(keepIdx))
	for out, i := range keepIdx {
		kept[out] = planes[i]
		w[out] = 0
		ui := planes[i].Unit()
		for j := 0; j < m; j++ {
			if j != i && skyband.Dominates(planes[j].Unit(), ui) {
				w[out]++
			}
		}
	}
	if noOrder {
		return kept
	}
	order := growInts(&a.order, len(kept))
	for i := range order {
		order[i] = i
	}
	sortPlaneOrder(order, w)
	out := growPlanes(&a.ordered, len(kept))
	for i, idx := range order {
		out[i] = kept[idx]
	}
	return out
}

// sortPlaneOrder sorts order by descending W, ties by ascending index —
// the same total order the previous sort.Slice comparator produced, via a
// hand-rolled quicksort (plain functions, not closures) that allocates
// nothing. The comparator is a strict total order (indices are unique), so
// any correct sort yields the identical permutation.
func sortPlaneOrder(order, w []int) {
	for len(order) > 12 {
		mid := len(order) / 2
		hi := len(order) - 1
		if planeOrderLess(w, order[mid], order[0]) {
			order[mid], order[0] = order[0], order[mid]
		}
		if planeOrderLess(w, order[hi], order[0]) {
			order[hi], order[0] = order[0], order[hi]
		}
		if planeOrderLess(w, order[mid], order[hi]) {
			order[mid], order[hi] = order[hi], order[mid]
		}
		pivot := order[hi]
		p := 0
		for j := 0; j < hi; j++ {
			if planeOrderLess(w, order[j], pivot) {
				order[p], order[j] = order[j], order[p]
				p++
			}
		}
		order[p], order[hi] = order[hi], order[p]
		if p < len(order)-p-1 {
			sortPlaneOrder(order[:p], w)
			order = order[p+1:]
		} else {
			sortPlaneOrder(order[p+1:], w)
			order = order[:p]
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && planeOrderLess(w, order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// planeOrderLess is the insertion-order comparator: descending W, ties by
// ascending plane index.
func planeOrderLess(w []int, a, b int) bool {
	if w[a] != w[b] {
		return w[a] > w[b]
	}
	return a < b
}

// eptTree is the shared partition tree: structure and parameters only. All
// mutable per-run bookkeeping (counters, cancellation, event buffers) lives
// in eptCtx so several execution contexts can refine disjoint subtrees
// concurrently.
type eptTree struct {
	root  *eptNode
	k     int
	eager bool // ablation: split on every crossing plane immediately
}

// eptCtx is one execution context over the tree: the serial solver uses a
// single context streaming events directly, the worker pool gives each
// worker its own (per-worker Stats, per-worker CtxChecker — the checker is
// not concurrency-safe — and buffered trace events, merged when the pool
// drains). A context only ever touches nodes of the subtree it was handed,
// so contexts never contend.
type eptCtx struct {
	t      *eptTree
	stats  *Stats
	check  *CtxChecker
	pool   *eptPool // nil when serial
	splits int      // buffered EvNodeSplit count (pool mode only)
}

// emitSplit records one node split: streamed immediately in serial mode,
// buffered per worker in pool mode (the trace hook contract is that per-kind
// sums match Stats, not event granularity).
func (e *eptCtx) emitSplit() {
	if e.pool == nil {
		e.check.Emit(obs.EvNodeSplit, 1)
	} else {
		e.splits++
	}
}

// needSplit is the lazy-split trigger; in eager mode any pending plane
// forces a split.
func (t *eptTree) needSplit(n *eptNode) bool {
	if t.eager {
		return len(n.lazy) > 0 || n.q >= t.k
	}
	return n.q+len(n.lazy) >= t.k
}

// insert performs the top-down insertion of Algorithm 2. In pool mode an
// internal crossing node hands one child subtree to the worker pool and
// descends into the other itself; every other step is identical to the
// serial path, which is what keeps the answer independent of the worker
// count.
func (e *eptCtx) insert(n *eptNode, h geom.Hyperplane) {
	if n.invalid || e.check.Stop() {
		return
	}
	switch n.cell.Relation(h) {
	case geom.RelNeg:
		e.coverNeg(n)
	case geom.RelPos:
		// Case 2: nothing in this subtree is affected.
	case geom.RelCross:
		if !n.leaf() {
			if e.pool != nil {
				e.pool.spawn(n.children[0], h, e)
				e.insert(n.children[1], h)
				return
			}
			for _, c := range n.children {
				e.insert(c, h)
			}
			return
		}
		n.lazy = append(n.lazy, h)
		if e.t.needSplit(n) {
			e.lazySplit(n)
		}
	}
}

// coverNeg applies a covering negative half-space to n's whole subtree
// (Case 1, with the Lemma 5.3 shortcut: descendants inherit the coverage
// without re-running geometric checks).
func (e *eptCtx) coverNeg(n *eptNode) {
	if n.invalid || e.check.Stop() {
		return
	}
	n.q++
	if n.q >= e.t.k {
		n.invalid = true
		return
	}
	if !n.leaf() {
		for _, c := range n.children {
			e.coverNeg(c)
		}
		return
	}
	if n.q+len(n.lazy) >= e.t.k {
		e.lazySplit(n)
	}
}

// lazySplit pops hyper-planes from H(N) and splits the leaf until the
// qualification budget is respected again (paper §5.1.2, Lazy_Split +
// Refine). The loop also absorbs numerically degenerate splits where one
// side vanishes.
func (e *eptCtx) lazySplit(n *eptNode) {
	for !n.invalid && n.leaf() && e.t.needSplit(n) && !e.check.Stop() {
		if len(n.lazy) == 0 {
			// q ≥ k without pending planes: disqualified outright.
			n.invalid = true
			return
		}
		if err := e.check.Fault(faultinject.EPTSplit); err != nil {
			// An error fault at a site with no error return: poison the
			// checker so the solve aborts with it (panic faults unwind from
			// Fault itself and are recovered at the serving layer).
			e.check.fail(err)
			return
		}
		h := n.lazy[0]
		n.lazy = n.lazy[1:]
		neg, pos := n.cell.Split(h)
		switch {
		case neg == nil && pos == nil:
			// Degenerate sliver; drop the plane.
		case neg == nil:
			// The cell is effectively on the positive side; drop the plane.
			n.cell = pos
		case pos == nil:
			// The cell is effectively on the negative side.
			n.cell = neg
			n.q++
			if n.q >= e.t.k {
				n.invalid = true
				return
			}
		default:
			e.stats.Splits++
			e.emitSplit()
			left := &eptNode{cell: neg, q: n.q + 1, lazy: append([]geom.Hyperplane(nil), n.lazy...)}
			right := &eptNode{cell: pos, q: n.q, lazy: n.lazy}
			e.stats.NodesCreated += 2
			n.children = []*eptNode{left, right}
			n.lazy = nil
			e.refine(left)
			e.refine(right)
			return
		}
	}
}

// refine re-checks a fresh child's inherited H(N) against its smaller cell,
// dropping planes that no longer cross it and folding covering negative
// half-spaces into the counter, then re-applies the lazy-split trigger.
func (e *eptCtx) refine(n *eptNode) {
	if n.q >= e.t.k {
		n.invalid = true
		return
	}
	kept := n.lazy[:0:len(n.lazy)] // fresh backing view; slices were copied by caller for one child
	for _, h := range n.lazy {
		switch n.cell.Relation(h) {
		case geom.RelNeg:
			n.q++
			if n.q >= e.t.k {
				n.invalid = true
				return
			}
		case geom.RelPos:
			// Dropped.
		case geom.RelCross:
			kept = append(kept, h)
		}
	}
	n.lazy = kept
	if e.t.needSplit(n) {
		e.lazySplit(n)
	}
}

// collect gathers qualified leaf cells: valid leaves with
// Q(N) + |H(N)| < k, whose entire partition qualifies (paper §5.1.2).
func (t *eptTree) collect(n *eptNode, out *[]*geom.Cell) {
	if n.invalid {
		return
	}
	if n.leaf() {
		if n.q+len(n.lazy) < t.k {
			*out = append(*out, n.cell)
		}
		return
	}
	for _, c := range n.children {
		t.collect(c, out)
	}
}

func errDimMismatch(want, got int) error {
	return queryErrf("dim", "point dimension %d does not match query dimension %d", got, want)
}
