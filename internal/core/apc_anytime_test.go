package core

import (
	"math/rand"
	"testing"
	"time"

	"rrq/internal/vec"
)

// Every streamed prefix of the anytime construction must be sound (never
// contain an unqualified preference) and monotone: cutting later can only
// grow the region.
func TestAnytimeSoundAndMonotonePrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(571))
	for trial := 0; trial < 25; trial++ {
		d := 2 + rng.Intn(3)
		pts, q := randomInstance(rng, 30, d)
		n := 80
		cuts := []int{n / 4, n / 2, 3 * n / 4, n}
		var prev *Region
		prevPieces := -1
		for _, cut := range cuts {
			r, st, acc, err := APCAnytimeContext(t.Context(), pts, q, AnytimeOptions{
				Samples: n, Seed: int64(trial), MaxSamples: cut,
			})
			if err != nil {
				t.Fatalf("trial %d cut %d: %v", trial, cut, err)
			}
			if acc.SamplesUsed != cut {
				t.Fatalf("trial %d cut %d: SamplesUsed=%d", trial, cut, acc.SamplesUsed)
			}
			if acc.Cut != (cut < n) {
				t.Fatalf("trial %d cut %d: Cut=%v", trial, cut, acc.Cut)
			}
			if st.Samples != cut {
				t.Fatalf("trial %d cut %d: Stats.Samples=%d", trial, cut, st.Samples)
			}
			checkRegionAgainstOracle(t, r, pts, q, rng, 60, false)
			if st.Pieces < prevPieces {
				t.Fatalf("trial %d cut %d: pieces shrank %d → %d", trial, cut, prevPieces, st.Pieces)
			}
			if prev != nil {
				for i := 0; i < 60; i++ {
					u := vec.RandSimplex(rng, d)
					if prev.Contains(u) && !r.Contains(u) {
						t.Fatalf("trial %d cut %d: region lost %v held at the earlier cut", trial, cut, u)
					}
				}
			}
			prev, prevPieces = r, st.Pieces
		}
	}
}

// Resuming from a cut (StartSample + the cut's cells as Warm) must agree
// with the uncut run: the construction is a pure function of the seed, so
// the resumed suffix appends exactly the cells the fresh run would.
func TestAnytimeResumeMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(572))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(3)
		pts, q := randomInstance(rng, 25, d)
		opt := AnytimeOptions{Samples: 60, Seed: int64(100 + trial)}
		full, _, facc, err := APCAnytimeContext(t.Context(), pts, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		cutOpt := opt
		cutOpt.MaxSamples = 20
		cut, _, cacc, err := APCAnytimeContext(t.Context(), pts, q, cutOpt)
		if err != nil {
			t.Fatal(err)
		}
		resOpt := opt
		resOpt.StartSample = cacc.SamplesUsed
		resOpt.Warm = cut.Cells()
		res, _, racc, err := APCAnytimeContext(t.Context(), pts, q, resOpt)
		if err != nil {
			t.Fatal(err)
		}
		if racc.SamplesUsed != facc.SamplesUsed {
			t.Fatalf("trial %d: resumed SamplesUsed=%d, fresh=%d", trial, racc.SamplesUsed, facc.SamplesUsed)
		}
		if res.NumPieces() != full.NumPieces() {
			t.Fatalf("trial %d: resumed pieces=%d, fresh=%d", trial, res.NumPieces(), full.NumPieces())
		}
		for i := 0; i < 120; i++ {
			u := vec.RandSimplex(rng, d)
			if res.Contains(u) != full.Contains(u) {
				t.Fatalf("trial %d: resumed and fresh runs disagree at %v", trial, u)
			}
		}
	}
}

// A warm start from a stricter neighbor (k' ≤ k, ε' ≤ ε) is exactly the
// cache's inner-bound seeding path: the warm cells join the answer, and the
// combined region must stay sound for the relaxed query.
func TestAnytimeWarmStartFromInnerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(573))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(3)
		pts, q := randomInstance(rng, 30, d)
		q.K++ // headroom so the stricter neighbor is a real instance
		strict := q
		strict.K--
		strict.Eps = q.Eps / 2
		seedRegion, _, _, err := APCAnytimeContext(t.Context(), pts, strict, AnytimeOptions{Samples: 50, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		r, _, _, err := APCAnytimeContext(t.Context(), pts, q, AnytimeOptions{
			Samples: 50, Seed: int64(trial) + 7, Warm: seedRegion.Cells(),
		})
		if err != nil {
			t.Fatal(err)
		}
		checkRegionAgainstOracle(t, r, pts, q, rng, 80, false)
		// Monotone improvement over the seed.
		for i := 0; i < 60; i++ {
			u := vec.RandSimplex(rng, d)
			if seedRegion.Contains(u) && !r.Contains(u) {
				t.Fatalf("trial %d: warm-started region lost seed point %v", trial, u)
			}
		}
	}
}

// Regression for the correlated-measurement bug: estimating the region's
// volume by replaying the solver's own sample stream counts exactly the
// samples that seeded the partitions, so it tracks the *true* region's
// volume rather than the constructed subset's and overstates coverage. The
// default accuracy report must use the decoupled stream, and the two paths
// must diverge on an instance the sample pool undercovers.
func TestAnytimeMeasureSeedDecoupled(t *testing.T) {
	rng := rand.New(rand.NewSource(574))
	pts, q := randomInstance(rng, 60, 4)
	q.K = 2
	q.Eps = 0.05
	const n = 40
	opt := AnytimeOptions{Samples: n, Seed: 9, MeasureSamples: n}
	r, _, acc, err := APCAnytimeContext(t.Context(), pts, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Empty() {
		t.Skip("empty region: instance too strict for the divergence check")
	}
	correlated := r.MeasureWithSeed(opt.Seed, n) // replays the solver's own stream
	independent := r.MeasureWithSeed(measureSeedFor(opt.Seed), n)
	if acc.VolumeEst != independent {
		t.Fatalf("VolumeEst=%v, want the decoupled-stream estimate %v", acc.VolumeEst, independent)
	}
	if correlated <= independent {
		t.Fatalf("correlated estimate %v did not exceed independent %v — the streams are not decoupled the way the bug needs", correlated, independent)
	}
}

// RhoFor inverts SampleSizeFor and the reported bound must tighten as the
// construction consumes more samples.
func TestAnytimeRhoBound(t *testing.T) {
	for _, tc := range []struct {
		rho, delta float64
		d          int
	}{{0.1, 0.05, 3}, {0.05, 0.01, 5}, {0.3, 0.1, 2}} {
		n := SampleSizeFor(tc.rho, tc.delta, tc.d)
		if got := RhoFor(n, tc.delta, tc.d); got > tc.rho+1e-9 {
			t.Fatalf("RhoFor(%d)=%v, want ≤ %v", n, got, tc.rho)
		}
	}
	if RhoFor(0, 0.05, 3) != 1 {
		t.Fatal("RhoFor with no samples must clamp to 1")
	}
	rng := rand.New(rand.NewSource(575))
	pts, q := randomInstance(rng, 20, 3)
	var prev float64 = 2
	for _, cut := range []int{10, 40, 160} {
		_, _, acc, err := APCAnytimeContext(t.Context(), pts, q, AnytimeOptions{Samples: 160, Seed: 1, MaxSamples: cut})
		if err != nil {
			t.Fatal(err)
		}
		if acc.RhoBound >= prev {
			t.Fatalf("RhoBound did not tighten: %v after %d samples (prev %v)", acc.RhoBound, cut, prev)
		}
		prev = acc.RhoBound
	}
}

// An exhausted wall-clock budget cuts before the first sample; the answer
// is the (empty but sound) zero-sample prefix with a vacuous ρ bound.
func TestAnytimeExpiredBudgetCutsImmediately(t *testing.T) {
	rng := rand.New(rand.NewSource(576))
	pts, q := randomInstance(rng, 15, 3)
	r, _, acc, err := APCAnytimeContext(t.Context(), pts, q, AnytimeOptions{Samples: 40, Seed: 2, Budget: -time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// A negative budget means Budget ≤ 0 is "no cut"; use MaxSamples 0 edge
	// instead: the construction must have run to completion.
	if acc.Cut || acc.SamplesUsed != 40 {
		t.Fatalf("Budget ≤ 0 must disable the time cut: %+v", acc)
	}
	_ = r
	r, _, acc, err = APCAnytimeContext(t.Context(), pts, q, AnytimeOptions{Samples: 40, Seed: 2, Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !acc.Cut {
		t.Fatalf("1ns budget did not cut: %+v", acc)
	}
	if acc.SamplesUsed != 0 || !r.Empty() || acc.RhoBound != 1 {
		t.Fatalf("zero-sample cut must be empty with ρ=1: %+v pieces=%d", acc, r.NumPieces())
	}
}
