package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

// benchInstance builds a deterministic anticorrelated-ish instance that
// produces a partition tree deep enough to exercise the split kernels.
func benchInstance(n, d int) ([]vec.Vec, Query) {
	rng := rand.New(rand.NewSource(77))
	pts := make([]vec.Vec, n)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = 0.05 + 0.95*rng.Float64()
		}
		pts[i] = p
	}
	q := pts[0].Clone()
	for j := range q {
		q[j] = 0.3 + 0.4*q[j]
	}
	return pts, Query{Q: q, K: 4, Eps: 0.1}
}

// BenchmarkEPTSerial pins the allocation profile of the serial solver.
func BenchmarkEPTSerial(b *testing.B) {
	for _, d := range []int{3, 4, 5} {
		pts, q := benchInstance(300, d)
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := EPTWithOptions(pts, q, EPTOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEPTParallel sweeps the intra-query worker count on the higher
// dimensions, where insertions cross enough subtrees to feed the pool.
// Workers=1 takes the serial path and doubles as the in-sweep baseline.
func BenchmarkEPTParallel(b *testing.B) {
	for _, d := range []int{4, 5} {
		pts, q := benchInstance(300, d)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("d=%d/workers=%d", d, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := EPTWithOptions(pts, q, EPTOptions{Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
