package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rrq/internal/dataset"
	"rrq/internal/faultinject"
	"rrq/internal/obs"
	"rrq/internal/vec"
)

// TestBatchFaultAcceptance is the acceptance scenario of the resilience
// layer: a batch of 100 queries over one shared Prepared, where one query
// panics inside an E-PT split and one exhausts its work budget. The batch
// must complete with 98 exact results, the panicked query reporting a
// per-query *SolveError (solver, batch position, stack), the
// budget-exhausted query a Degraded answer from the A-PC fallback — with
// the panic and degradation counters visible on the metrics registry.
func TestBatchFaultAcceptance(t *testing.T) {
	pts := dataset.Generate(dataset.Independent, 80, 3, 7)
	prep, err := Prepare(pts, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	queries := make([]Query, 100)
	for i := range queries {
		queries[i] = Query{Q: dataset.RandQuery(rng, pts), K: 4, Eps: 0.1}
	}

	// The panic is injected at the EPTSplit point, so the panicking query
	// must be one that actually reaches a split; scan for the first such
	// query (deterministic for fixed seeds).
	panicIdx := -1
	for i, q := range queries {
		if _, st, err := EPTContext(context.Background(), pts, q, EPTOptions{}); err == nil && st.Splits > 0 {
			panicIdx = i
			break
		}
	}
	if panicIdx < 0 {
		t.Fatal("precondition: no query splits; pick new seeds")
	}
	budgetIdx := 42
	if panicIdx == budgetIdx {
		budgetIdx = 43
	}

	inj := faultinject.New(
		&faultinject.Fault{
			Point:  faultinject.EPTSplit,
			Match:  faultinject.MatchPoint(queries[panicIdx].Q),
			Panics: "injected split panic",
		},
		&faultinject.Fault{
			Point: faultinject.SolveStart,
			Match: faultinject.MatchPoint(queries[budgetIdx].Q),
			Err:   &BudgetError{Limit: 1, Spent: 1},
			Times: 1, // fire on the primary attempt only, not the fallback
		},
	)
	reg := obs.NewRegistry()
	ctx := obs.ContextWithRegistry(faultinject.ContextWith(context.Background(), inj), reg)

	pol := SolvePolicy{
		Solver:    EPTSolver{},
		Fallbacks: []Solver{APCSolver{Opt: APCOptions{Seed: 1}}},
	}
	outs := SolveBatchPolicy(ctx, pol, prep, queries, 8)
	if len(outs) != len(queries) {
		t.Fatalf("%d outcomes for %d queries", len(outs), len(queries))
	}

	exact := 0
	for i, o := range outs {
		switch i {
		case panicIdx:
			var se *SolveError
			if !errors.As(o.Err, &se) {
				t.Fatalf("query %d: err = %v, want *SolveError", i, o.Err)
			}
			if se.Solver != "E-PT" || se.QueryIndex != panicIdx || len(se.Stack) == 0 {
				t.Fatalf("query %d: SolveError{Solver:%q QueryIndex:%d stack:%dB}", i, se.Solver, se.QueryIndex, len(se.Stack))
			}
			if se.Panic != "injected split panic" {
				t.Fatalf("query %d: panic value %v", i, se.Panic)
			}
			if o.Region != nil || o.Degraded != nil {
				t.Fatalf("query %d: panicked query must not carry a region or degradation", i)
			}
		case budgetIdx:
			if o.Err != nil {
				t.Fatalf("query %d: err = %v, want degraded success", i, o.Err)
			}
			if o.Region == nil || o.Degraded == nil {
				t.Fatalf("query %d: want a region from the fallback and a Degradation record", i)
			}
			if o.Degraded.Reason != DegradeBudget || o.Degraded.Solver != "A-PC" {
				t.Fatalf("query %d: Degradation{%v, %q}, want {budget, A-PC}", i, o.Degraded.Reason, o.Degraded.Solver)
			}
			var be *BudgetError
			if !errors.As(o.Degraded.Cause, &be) {
				t.Fatalf("query %d: degradation cause %v, want *BudgetError", i, o.Degraded.Cause)
			}
		default:
			if o.Err != nil {
				t.Fatalf("query %d: unexpected error %v", i, o.Err)
			}
			if o.Degraded != nil {
				t.Fatalf("query %d: unexpected degradation %+v", i, o.Degraded)
			}
			if o.Region == nil {
				t.Fatalf("query %d: nil region", i)
			}
			exact++
		}
	}
	if exact != 98 {
		t.Fatalf("%d exact results, want 98", exact)
	}
	counters := reg.Counters()
	if counters["solve.panics"] != 1 {
		t.Errorf("solve.panics = %d, want 1", counters["solve.panics"])
	}
	if counters["solve.degraded"] != 1 {
		t.Errorf("solve.degraded = %d, want 1", counters["solve.degraded"])
	}
	if counters["solve.degraded.budget"] != 1 {
		t.Errorf("solve.degraded.budget = %d, want 1", counters["solve.degraded.budget"])
	}
}

// heavyInstance returns a 4-d instance whose E-PT solve creates tens of
// thousands of tree nodes — enough work that the amortized budget and
// cancellation checks (every 4096 node visits) are guaranteed to fire.
func heavyInstance(t *testing.T) ([]vec.Vec, Query) {
	t.Helper()
	pts := dataset.Generate(dataset.Independent, 2000, 4, 11)
	q := Query{Q: dataset.RandQuery(rand.New(rand.NewSource(5)), pts), K: 20, Eps: 0.2}
	if _, st, err := EPTContext(context.Background(), pts, q, EPTOptions{}); err != nil || st.NodesCreated < 5000 || st.Pieces == 0 {
		t.Fatalf("precondition: instance too light (nodes=%d pieces=%d err=%v); pick new seeds", st.NodesCreated, st.Pieces, err)
	}
	return pts, q
}

// A real (non-injected) work budget: E-PT on a heavy instance burns tens of
// thousands of node visits, so a tiny budget must trip the amortized check
// and surface a typed *BudgetError.
func TestWorkBudgetExceeded(t *testing.T) {
	pts, q := heavyInstance(t)
	prep, err := Prepare(pts, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	pol := SolvePolicy{Solver: EPTSolver{}, WorkBudget: 10}
	_, _, deg, err := pol.Solve(context.Background(), prep, q, -1)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Limit != 10 || be.Spent < be.Limit {
		t.Fatalf("BudgetError{Limit:%d Spent:%d}", be.Limit, be.Spent)
	}
	if deg != nil {
		t.Fatalf("no fallback configured, yet Degraded = %+v", deg)
	}

	// The budget is shared across intra-query workers: the parallel solver
	// must trip it just the same.
	pol.Solver = EPTSolver{Opt: EPTOptions{Workers: 4}}
	_, _, _, err = pol.Solve(context.Background(), prep, q, -1)
	if !errors.As(err, &be) {
		t.Fatalf("parallel err = %v, want *BudgetError", err)
	}
}

// A per-query timeout on a delayed solve must degrade to the fallback with
// DegradeTimeout, the fallback running under a fresh timeout.
func TestQueryTimeoutDegradation(t *testing.T) {
	pts := dataset.Generate(dataset.Independent, 60, 3, 3)
	prep, err := Prepare(pts, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Q: dataset.RandQuery(rand.New(rand.NewSource(4)), pts), K: 3, Eps: 0.1}
	inj := faultinject.New(&faultinject.Fault{
		Point: faultinject.SolveStart,
		Delay: 200 * time.Millisecond,
		Times: 1, // stall the primary attempt only
	})
	ctx := faultinject.ContextWith(context.Background(), inj)
	pol := SolvePolicy{
		Solver:       EPTSolver{},
		Fallbacks:    []Solver{APCSolver{Opt: APCOptions{Seed: 1}}},
		QueryTimeout: 30 * time.Millisecond,
	}
	r, _, deg, err := pol.Solve(ctx, prep, q, -1)
	if err != nil {
		t.Fatalf("err = %v, want degraded success", err)
	}
	if r == nil || deg == nil {
		t.Fatal("want a fallback region and a Degradation record")
	}
	if deg.Reason != DegradeTimeout || deg.Solver != "A-PC" {
		t.Fatalf("Degradation{%v, %q}, want {timeout, A-PC}", deg.Reason, deg.Solver)
	}
	if !errors.Is(deg.Cause, ErrDeadline) {
		t.Fatalf("degradation cause %v, want ErrDeadline", deg.Cause)
	}
}

// A panic on a parallel E-PT worker must be contained: the solve returns a
// typed *SolveError (no deadlock on the plane barrier, no crashed process),
// and the pool's sibling workers exit cleanly.
func TestParallelEPTPanicContained(t *testing.T) {
	pts := dataset.Generate(dataset.Anticorrelated, 400, 3, 9)
	prep, err := Prepare(pts, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Q: dataset.RandQuery(rand.New(rand.NewSource(6)), pts), K: 5, Eps: 0.05}
	if _, st, err := EPTContext(context.Background(), pts, q, EPTOptions{}); err != nil || st.Splits == 0 {
		t.Fatalf("precondition: query must split (splits=%d, err=%v)", st.Splits, err)
	}
	inj := faultinject.New(&faultinject.Fault{Point: faultinject.EPTSplit, Panics: "worker boom"})
	ctx := faultinject.ContextWith(context.Background(), inj)
	pol := SolvePolicy{Solver: EPTSolver{Opt: EPTOptions{Workers: 4}}}

	done := make(chan struct{})
	var se *SolveError
	go func() {
		defer close(done)
		_, _, _, err := pol.Solve(ctx, prep, q, 3)
		if !errors.As(err, &se) {
			t.Errorf("err = %v, want *SolveError", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parallel E-PT deadlocked after a worker panic")
	}
	if se == nil {
		return
	}
	if se.Solver != "E-PT" || se.QueryIndex != 3 || se.Panic != "worker boom" || len(se.Stack) == 0 {
		t.Fatalf("SolveError{Solver:%q QueryIndex:%d Panic:%v stack:%dB}", se.Solver, se.QueryIndex, se.Panic, len(se.Stack))
	}
}

// parallelFor must convert a body panic into an error instead of crashing
// the process.
func TestParallelForPanicIsolation(t *testing.T) {
	err := parallelFor(context.Background(), 4, 100, 0xf, func(i int) {
		if i == 50 {
			panic("body boom")
		}
	})
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SolveError", err)
	}
	if se.Panic != "body boom" || len(se.Stack) == 0 {
		t.Fatalf("SolveError{Panic:%v stack:%dB}", se.Panic, len(se.Stack))
	}
}

func TestDegradableClassification(t *testing.T) {
	cases := []struct {
		err    error
		reason DegradeReason
		ok     bool
	}{
		{nil, 0, false},
		{&QueryError{Field: "k", Msg: "x"}, 0, false},
		{&SolveError{Solver: "E-PT", Panic: "x"}, 0, false},
		{context.Canceled, 0, false},
		{ErrDeadline, DegradeTimeout, true},
		{&BudgetError{Limit: 1, Spent: 2}, DegradeBudget, true},
		{&NumericalError{Solver: "LP-CTA", Err: errors.New("lp failed")}, DegradeNumerical, true},
		{errors.New("anything else"), DegradeNumerical, true},
	}
	for _, c := range cases {
		reason, ok := degradable(c.err)
		if ok != c.ok || (ok && reason != c.reason) {
			t.Errorf("degradable(%v) = (%v, %v), want (%v, %v)", c.err, reason, ok, c.reason, c.ok)
		}
	}
}

// cancelOnFirstEvent builds a context that cancels itself the moment the
// solve emits its first trace event — i.e. mid-solve, after the first phase
// has opened — plus a registry to audit the phase timers afterwards.
func cancelOnFirstEvent(t *testing.T) (context.Context, *obs.Registry) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	var once sync.Once
	ctx = obs.ContextWithTrace(ctx, func(obs.Event) { once.Do(cancel) })
	reg := obs.NewRegistry()
	return obs.ContextWithRegistry(ctx, reg), reg
}

// assertPhasesBalanced fails if any phase timer was opened (created) but
// never observed a closing — the dangling-open-phase bug the idempotent
// closers fix.
func assertPhasesBalanced(t *testing.T, reg *obs.Registry) {
	t.Helper()
	timers := reg.Timers()
	if len(timers) == 0 {
		t.Error("no phase timers recorded; the solve never opened a phase")
	}
	for name, snap := range timers {
		if snap.Count == 0 {
			t.Errorf("phase %s opened but never closed", name)
		}
	}
}

// Mid-phase cancellation of every solver: the solve must abort with
// context.Canceled and leave every opened phase timer closed.
func TestCancelMidPhaseAllSolvers(t *testing.T) {
	pts4, q4 := heavyInstance(t)

	// The 2-d solvers need a query whose sweep window survives reduction
	// (pieces > 0) and enough crossing planes that the brute-force
	// enumeration passes its amortized check cadence; scan for one.
	pts2 := dataset.Generate(dataset.Independent, 3000, 2, 13)
	rng := rand.New(rand.NewSource(8))
	var q2 Query
	found := false
	for i := 0; i < 30 && !found; i++ {
		q2 = Query{Q: dataset.RandQuery(rng, pts2), K: 20, Eps: 0.2}
		if _, st, err := SweepingContext(context.Background(), pts2, q2); err == nil && st.Pieces > 0 && st.PlanesBuilt > 300 {
			found = true
		}
	}
	if !found {
		t.Fatal("precondition: no 2-d query yields pieces; pick new seeds")
	}

	cases := []struct {
		name   string
		solve  func(ctx context.Context) error
		phases bool // solver instruments phase timers
	}{
		{name: "Sweeping", phases: true, solve: func(ctx context.Context) error {
			_, _, err := SweepingContext(ctx, pts2, q2)
			return err
		}},
		{name: "EPT-serial", phases: true, solve: func(ctx context.Context) error {
			_, _, err := EPTContext(ctx, pts4, q4, EPTOptions{})
			return err
		}},
		{name: "EPT-parallel", phases: true, solve: func(ctx context.Context) error {
			_, _, err := EPTContext(ctx, pts4, q4, EPTOptions{Workers: 4})
			return err
		}},
		{name: "APC-serial", phases: true, solve: func(ctx context.Context) error {
			_, _, err := APCContext(ctx, pts4, q4, APCOptions{Samples: 4000, Seed: 1})
			return err
		}},
		{name: "APC-parallel", phases: true, solve: func(ctx context.Context) error {
			_, _, err := APCContext(ctx, pts4, q4, APCOptions{Samples: 4000, Seed: 1, Workers: 4})
			return err
		}},
		{name: "BruteForce2D", phases: false, solve: func(ctx context.Context) error {
			_, _, err := BruteForce2DContext(ctx, pts2, q2)
			return err
		}},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ctx, reg := cancelOnFirstEvent(t)
			err := c.solve(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if c.phases {
				assertPhasesBalanced(t, reg)
			}
		})
	}
}

// A canceled batch leaves unstarted queries with ctx.Err() and closes the
// phases of the in-flight ones — the batch-level view of the same property.
func TestCancelMidBatchPhasesBalanced(t *testing.T) {
	pts := dataset.Generate(dataset.Anticorrelated, 1500, 3, 21)
	prep, err := Prepare(pts, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	queries := make([]Query, 16)
	for i := range queries {
		queries[i] = Query{Q: dataset.RandQuery(rng, pts), K: 6, Eps: 0.05}
	}
	ctx, reg := cancelOnFirstEvent(t)
	outs := SolveBatchPolicy(ctx, SolvePolicy{Solver: EPTSolver{}}, prep, queries, 2)
	failed := 0
	for _, o := range outs {
		if o.Err != nil {
			failed++
			if !errors.Is(o.Err, context.Canceled) {
				t.Fatalf("per-query err = %v, want context.Canceled", o.Err)
			}
		}
	}
	if failed == 0 {
		t.Fatal("cancellation had no effect on the batch")
	}
	assertPhasesBalanced(t, reg)
}
