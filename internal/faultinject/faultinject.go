// Package faultinject provides context-carried fault points for the solver
// stack: tests (and chaos drills) arm an Injector on the context, and
// instrumented code sites fire named points that can return an error, sleep,
// or panic on demand. With no injector armed every site compiles down to a
// single nil-check — the same capture discipline the observability hooks
// use — so production solves pay nothing.
//
// Faults can be scoped to one query of a batch with a Match predicate over
// the query point, and disarmed after a fixed number of firings with Times,
// which is what makes "query 17 panics, query 42 exhausts its budget, the
// other 98 succeed" reproducible in a deterministic test.
package faultinject

import (
	"context"
	"sync/atomic"
	"time"
)

// Point names an instrumented code site.
type Point string

// The instrumented fault points of the solver stack.
const (
	// SolveStart fires at the start of every solve attempt (primary and
	// fallback alike), keyed by the query point. Supports Err, Delay and
	// Panics.
	SolveStart Point = "solve-start"
	// EPTSplit fires immediately before an E-PT leaf split, keyed by the
	// query point. Supports Panics and Delay; an Err poisons the solve's
	// cancellation checker and aborts with that error.
	EPTSplit Point = "ept-split"
	// LPSolve fires before every LP-CTA simplex solve, keyed by the query
	// point. An Err makes the LP report failure (a numerical fault).
	LPSolve Point = "lp-solve"
	// BudgetCheck fires when a work-budget charge is evaluated. An Err
	// surfaces as the budget-exhaustion error of the charge.
	BudgetCheck Point = "budget-check"
	// WALAppend fires before a WAL record write, keyed by the mutated point
	// (nil for deletes). Supports Err, Delay and — via ShortWrite — torn
	// and short writes: the site writes only ShortWrite bytes of the
	// encoded record before reporting Err, leaving a torn tail exactly as a
	// crash mid-write would. Because the torn bytes stay on disk for
	// recovery to repair, the WAL handle fails permanently afterwards —
	// later appends are rejected, as they would be after a real crash.
	WALAppend Point = "wal-append"
	// WALSync fires before a WAL fsync. An Err surfaces as the sync
	// failure of the append (or background flush) that triggered it.
	WALSync Point = "wal-sync"
	// CheckpointRename fires between writing a checkpoint's temporary file
	// and renaming it into place — the atomicity window. An Err aborts the
	// checkpoint with the temp file removed; the previous checkpoint stays
	// authoritative.
	CheckpointRename Point = "checkpoint-rename"
)

// Fault is one armed fault: where it fires, which queries it matches, what
// it does, and how many times.
type Fault struct {
	// Point is the code site the fault arms.
	Point Point
	// Match restricts the fault to firings whose key (the query point)
	// satisfies the predicate. A nil Match fires on every key.
	Match func(key []float64) bool
	// Delay, when positive, sleeps before the fault's effect (and also when
	// the fault has no other effect — a pure latency fault).
	Delay time.Duration
	// Err, when non-nil, is returned from the fire site.
	Err error
	// Panics, when non-nil, panics with this value at the fire site.
	Panics any
	// ShortWrite, when positive, asks the fire site to persist only the
	// first ShortWrite bytes of the payload it was about to write before
	// applying Err — the torn-tail mode of the WAL fault points. Sites read
	// it through Plan; Fire ignores it.
	ShortWrite int
	// Times bounds how often the fault fires; ≤ 0 means unlimited.
	Times int64

	hits atomic.Int64
}

// fire applies the fault's effect. Returns Err (possibly nil after a pure
// delay) or panics.
func (f *Fault) fire() error {
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panics != nil {
		panic(f.Panics)
	}
	return f.Err
}

// claim reports whether the fault should fire for key, consuming one of its
// Times slots. Safe for concurrent use.
func (f *Fault) claim(key []float64) bool {
	if f.Match != nil && !f.Match(key) {
		return false
	}
	if f.Times <= 0 {
		return true
	}
	return f.hits.Add(1) <= f.Times
}

// Injector is an armed set of faults. The zero value is not usable; build
// one with New. An Injector is safe for concurrent use by any number of
// solves and workers.
type Injector struct {
	byPoint map[Point][]*Fault
}

// New arms the given faults into an injector.
func New(faults ...*Fault) *Injector {
	in := &Injector{byPoint: make(map[Point][]*Fault)}
	for _, f := range faults {
		in.byPoint[f.Point] = append(in.byPoint[f.Point], f)
	}
	return in
}

// Fire triggers the first matching fault armed at p for the given key:
// applies its delay, panics if it is a panic fault, and returns its error
// otherwise. Returns nil when nothing armed at p matches.
func (in *Injector) Fire(p Point, key []float64) error {
	for _, f := range in.byPoint[p] {
		if f.claim(key) {
			return f.fire()
		}
	}
	return nil
}

// Plan triggers the first matching fault armed at p like Fire, but returns
// the fault itself so the site can honor effects richer than an error —
// the WAL append site reads ShortWrite from it to produce torn tails. The
// fault's delay has been applied and panics have fired by the time Plan
// returns; the caller applies ShortWrite and then reports the fault's Err.
// Returns nil when nothing armed at p matches.
func (in *Injector) Plan(p Point, key []float64) *Fault {
	for _, f := range in.byPoint[p] {
		if f.claim(key) {
			if f.Delay > 0 {
				time.Sleep(f.Delay)
			}
			if f.Panics != nil {
				panic(f.Panics)
			}
			return f
		}
	}
	return nil
}

// MatchPoint returns a Match predicate that fires only for keys exactly
// equal to q — the standard way to scope a fault to one query of a batch.
func MatchPoint(q []float64) func(key []float64) bool {
	want := append([]float64(nil), q...)
	return func(key []float64) bool {
		if len(key) != len(want) {
			return false
		}
		for i, x := range want {
			if key[i] != x {
				return false
			}
		}
		return true
	}
}

// ctxKey is the private context key carrying the injector.
type ctxKey struct{}

// ContextWith returns a context carrying the injector. A nil injector
// returns ctx unchanged.
func ContextWith(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, in)
}

// From extracts the injector from ctx, or nil. The nil result is what makes
// un-instrumented runs free: call sites hold the nil and skip Fire.
func From(ctx context.Context) *Injector {
	if ctx == nil {
		return nil
	}
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}
