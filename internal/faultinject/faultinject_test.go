package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFromNilAndUnarmed(t *testing.T) {
	if From(nil) != nil {
		t.Fatal("From(nil) != nil")
	}
	if From(context.Background()) != nil {
		t.Fatal("From(Background) != nil")
	}
	if ContextWith(context.Background(), nil) != context.Background() {
		t.Fatal("ContextWith(nil injector) should return ctx unchanged")
	}
}

func TestErrFault(t *testing.T) {
	boom := errors.New("boom")
	in := New(&Fault{Point: LPSolve, Err: boom})
	if err := in.Fire(LPSolve, nil); !errors.Is(err, boom) {
		t.Fatalf("Fire = %v, want boom", err)
	}
	// Other points stay quiet.
	if err := in.Fire(EPTSplit, nil); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	in := New(&Fault{Point: EPTSplit, Panics: "kaboom"})
	defer func() {
		if rec := recover(); rec != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", rec)
		}
	}()
	in.Fire(EPTSplit, nil)
	t.Fatal("panic fault did not panic")
}

func TestDelayFault(t *testing.T) {
	in := New(&Fault{Point: SolveStart, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Fire(SolveStart, nil); err != nil {
		t.Fatalf("pure delay fault returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay fault slept only %v", d)
	}
}

func TestMatchScoping(t *testing.T) {
	boom := errors.New("boom")
	q := []float64{0.3, 0.7}
	in := New(&Fault{Point: SolveStart, Match: MatchPoint(q), Err: boom})
	if err := in.Fire(SolveStart, []float64{0.3, 0.7}); !errors.Is(err, boom) {
		t.Fatalf("matching key did not fire: %v", err)
	}
	if err := in.Fire(SolveStart, []float64{0.3, 0.6}); err != nil {
		t.Fatalf("non-matching key fired: %v", err)
	}
	if err := in.Fire(SolveStart, []float64{0.3}); err != nil {
		t.Fatalf("shorter key fired: %v", err)
	}
	// MatchPoint copies its argument: mutating the original must not
	// change the predicate.
	orig := []float64{1, 2}
	m := MatchPoint(orig)
	orig[0] = 9
	if !m([]float64{1, 2}) {
		t.Fatal("MatchPoint aliased its argument")
	}
}

func TestTimesDisarm(t *testing.T) {
	boom := errors.New("boom")
	in := New(&Fault{Point: BudgetCheck, Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := in.Fire(BudgetCheck, nil); !errors.Is(err, boom) {
			t.Fatalf("firing %d: %v, want boom", i, err)
		}
	}
	if err := in.Fire(BudgetCheck, nil); err != nil {
		t.Fatalf("fault fired after Times exhausted: %v", err)
	}
}

func TestTimesConcurrent(t *testing.T) {
	boom := errors.New("boom")
	in := New(&Fault{Point: SolveStart, Err: boom, Times: 5})
	var fired atomic32
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if in.Fire(SolveStart, nil) != nil {
				fired.inc()
			}
		}()
	}
	wg.Wait()
	if got := fired.load(); got != 5 {
		t.Fatalf("fault fired %d times under concurrency, want exactly 5", got)
	}
}

func TestFirstMatchWins(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	in := New(
		&Fault{Point: SolveStart, Match: MatchPoint([]float64{1}), Err: e1},
		&Fault{Point: SolveStart, Err: e2},
	)
	if err := in.Fire(SolveStart, []float64{1}); !errors.Is(err, e1) {
		t.Fatalf("Fire = %v, want first", err)
	}
	if err := in.Fire(SolveStart, []float64{2}); !errors.Is(err, e2) {
		t.Fatalf("Fire = %v, want second", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	in := New(&Fault{Point: SolveStart, Err: errors.New("x")})
	ctx := ContextWith(context.Background(), in)
	if From(ctx) != in {
		t.Fatal("injector did not round-trip through the context")
	}
}

// atomic32 is a tiny counter to keep the test free of loop-local races.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) inc()      { a.mu.Lock(); a.n++; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
