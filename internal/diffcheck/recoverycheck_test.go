package diffcheck

import "testing"

// TestRecoveryDifferentialSweep is the durability acceptance gate: across
// the corpus, an index recovered from a crash at any WAL record boundary —
// or inside any record — must serve regions byte-identical to an
// uninterrupted index holding the same acknowledged prefix, and torn tails
// must be truncated, not fatal.
func TestRecoveryDifferentialSweep(t *testing.T) {
	rep := RunRecovery(Config{Seed: 20240808}, t.TempDir())

	if rep.Problems < 20 {
		t.Fatalf("ran %d problems, want ≥ 20", rep.Problems)
	}
	if rep.KillPoints == 0 || rep.TornTails == 0 {
		t.Fatalf("sweep exercised %d kill points, %d torn tails — want both > 0", rep.KillPoints, rep.TornTails)
	}
	// Every torn-tail crash image must have been repaired by truncation.
	if rep.Truncations < rep.TornTails {
		t.Errorf("%d truncations for %d torn tails: some torn tails recovered without repair", rep.Truncations, rep.TornTails)
	}
	if rep.Replayed == 0 {
		t.Errorf("no WAL records replayed across %d recoveries", rep.KillPoints+rep.TornTails)
	}
	for i, m := range rep.Mismatches {
		if i >= 5 {
			t.Errorf("... and %d more mismatches", len(rep.Mismatches)-5)
			break
		}
		t.Errorf("mismatch:\n%s", m.JSON())
	}
}

// TestRunRecoveryDeterminism: identical configs must produce identical
// reports (modulo the scratch directory).
func TestRunRecoveryDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Problems: 6}
	a := RunRecovery(cfg, t.TempDir())
	b := RunRecovery(cfg, t.TempDir())
	if a.Problems != b.Problems || a.Mutations != b.Mutations || a.KillPoints != b.KillPoints ||
		a.TornTails != b.TornTails || a.Replayed != b.Replayed || len(a.Mismatches) != len(b.Mismatches) {
		t.Fatalf("reports differ across identical runs: %+v vs %+v", a, b)
	}
}
