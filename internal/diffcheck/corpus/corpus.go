// Package corpus is the degenerate-input corpus shared by the diffcheck
// differential harness and the native fuzz targets. Every instance is
// derived deterministically from a small byte string, so the same encoding
// serves three purposes at once:
//
//   - the diffcheck harness enumerates family × dimension × seed triples to
//     sweep all degenerate families the paper's Lemma 3.5 silently assumes
//     away (duplicate points, q = (1−ε)p exactly and within tolerance,
//     k-th-rank ties, ε boundaries, colinear families);
//   - the fuzz targets in internal/core seed from Seeds(), so coverage-led
//     exploration starts from the adversarial corner cases instead of having
//     to rediscover them;
//   - a failing instance reproduces from its bytes alone.
//
// The package deliberately imports only internal/vec: internal/core's
// in-package fuzz tests import it, so it must not (transitively) import
// core.
package corpus

import (
	"encoding/binary"
	"math/rand"

	"rrq/internal/vec"
)

// Degenerate input families. Each picks one general-position assumption of
// the geometric reformulation and violates it on purpose.
const (
	// FamRandom is the control family: points in general position.
	FamRandom byte = iota
	// FamDuplicates repeats dataset points exactly, so several hyper-planes
	// h_{q,p} coincide (same normal, different IDs).
	FamDuplicates
	// FamBoundaryExact sets q = (1−ε)·p exactly for a dataset point p: the
	// plane h_{q,p} has an exactly-zero normal and must be filtered
	// identically by every layer.
	FamBoundaryExact
	// FamBoundaryNear perturbs the FamBoundaryExact query by ±1e-10 (below
	// geom.Tol) or ±5e-9 (above it) on one coordinate, straddling the
	// zero-normal filter threshold from both sides.
	FamBoundaryNear
	// FamRankTies repeats one strong point k+1 times, so the k-th rank is
	// tied under every utility vector.
	FamRankTies
	// FamColinear places the points on one segment, making all pairwise
	// difference vectors parallel and the plane arrangement maximally
	// degenerate.
	FamColinear
	// FamEpsZero queries at ε = 0, where RRQ must degenerate exactly to the
	// continuous reverse top-k; half the instances put q itself into the
	// dataset.
	FamEpsZero
	// FamEpsNearOne queries at ε = 1 − 1e-9, the far boundary where every
	// plane normal approaches q and the whole simplex qualifies.
	FamEpsNearOne

	// NumFamilies is the number of corpus families.
	NumFamilies = iota
)

var familyNames = [NumFamilies]string{
	"random", "duplicates", "boundary-exact", "boundary-near",
	"rank-ties", "colinear", "eps-zero", "eps-near-one",
}

// FamilyName returns the human-readable name of a family constant.
func FamilyName(fam byte) string {
	if int(fam) < len(familyNames) {
		return familyNames[fam]
	}
	return "unknown"
}

// Instance is one decoded problem: a dataset, a query point, the rank
// parameter and the regret threshold. All attribute values are finite and
// strictly positive, so instances pass core validation by construction.
type Instance struct {
	Family string
	Pts    []vec.Vec
	Q      vec.Vec
	K      int
	Eps    float64
}

// encoded layout: [family][dim][n][k][eps][8-byte seed]. Arbitrary bytes
// decode (every selector is reduced modulo its range); EncodedLen bytes are
// required.
const EncodedLen = 13

// Encode packs an instance selector into corpus bytes.
func Encode(fam byte, dim, n, k, epsSel int, seed int64) []byte {
	data := make([]byte, EncodedLen)
	data[0] = fam
	data[1] = byte(dim)
	data[2] = byte(n)
	data[3] = byte(k)
	data[4] = byte(epsSel)
	binary.LittleEndian.PutUint64(data[5:], uint64(seed))
	return data
}

// epsTable holds the ε selector values for families that do not pin ε.
// 1e-12 sits below every tolerance in the system; the rest are ordinary
// operating points.
var epsTable = [...]float64{0, 0.05, 0.1, 0.2, 0.3, 1e-12}

// Decode derives an instance from raw bytes, with the dimension taken from
// the bytes (2 ≤ d ≤ 6). ok is false only when data is too short.
func Decode(data []byte) (Instance, bool) {
	if len(data) < EncodedLen {
		return Instance{}, false
	}
	return DecodeDim(data, 2+int(data[1])%5)
}

// DecodeDim derives an instance with a caller-forced dimension, for fuzz
// targets that only accept specific dimensions (e.g. the 2-d sweep).
func DecodeDim(data []byte, dim int) (Instance, bool) {
	if len(data) < EncodedLen || dim < 2 {
		return Instance{}, false
	}
	fam := data[0] % NumFamilies
	n := 3 + int(data[2])%10
	// Bound instance size in high dimensions: the harness cross-checks
	// against arrangement-materializing oracles whose cell count grows like
	// C(n, d).
	if dim >= 4 && n > 9 {
		n = 9
	}
	if dim >= 6 && n > 8 {
		n = 8
	}
	k := 1 + int(data[3])%4
	eps := epsTable[int(data[4])%len(epsTable)]
	seed := int64(binary.LittleEndian.Uint64(data[5:13]))
	rng := rand.New(rand.NewSource(seed))
	return build(fam, dim, n, k, eps, rng), true
}

// build constructs one instance of the family. All randomness comes from
// rng, so instances are pure functions of their bytes.
func build(fam byte, dim, n, k int, eps float64, rng *rand.Rand) Instance {
	ins := Instance{Family: FamilyName(fam), K: k, Eps: eps}
	switch fam {
	case FamDuplicates:
		base := make([]vec.Vec, 1+n/2)
		for i := range base {
			base[i] = randPoint(rng, dim)
		}
		ins.Pts = make([]vec.Vec, n)
		for i := 0; i < len(base) && i < n; i++ {
			ins.Pts[i] = base[i]
		}
		for i := len(base); i < n; i++ {
			ins.Pts[i] = base[rng.Intn(len(base))].Clone()
		}
		ins.Q = perturbedQuery(rng, ins.Pts)
	case FamBoundaryExact, FamBoundaryNear:
		ins.Pts = randPoints(rng, n, dim)
		// q = (1−ε)·p computed coordinate-wise with the same expression the
		// solvers use, so the plane normal q[j] − (1−ε)·p[j] is exactly zero.
		p := ins.Pts[rng.Intn(n)]
		scale := 1 - eps
		q := vec.New(dim)
		for j := range q {
			q[j] = scale * p[j]
		}
		if fam == FamBoundaryNear {
			deltas := [...]float64{1e-10, -1e-10, 5e-9, -5e-9}
			q[rng.Intn(dim)] += deltas[rng.Intn(len(deltas))]
		}
		ins.Q = q
	case FamRankTies:
		if n < k+2 {
			n = k + 2
		}
		strong := vec.New(dim)
		for j := range strong {
			strong[j] = 0.75 + 0.2*rng.Float64()
		}
		ins.Pts = make([]vec.Vec, n)
		for i := 0; i <= k && i < n; i++ {
			ins.Pts[i] = strong.Clone()
		}
		for i := k + 1; i < n; i++ {
			ins.Pts[i] = randPoint(rng, dim)
		}
		ins.Q = perturbedQuery(rng, ins.Pts)
	case FamColinear:
		a, b := randPoint(rng, dim), randPoint(rng, dim)
		ins.Pts = make([]vec.Vec, n)
		for i := range ins.Pts {
			t := float64(i) / float64(n-1)
			ins.Pts[i] = a.Lerp(b, t)
		}
		ins.Q = perturbedQuery(rng, ins.Pts)
	case FamEpsZero:
		ins.Eps = 0
		ins.Pts = randPoints(rng, n, dim)
		if rng.Intn(2) == 0 {
			// q ∈ D: at ε = 0 the plane h_{q,q} is exactly degenerate.
			ins.Q = ins.Pts[rng.Intn(n)].Clone()
		} else {
			ins.Q = perturbedQuery(rng, ins.Pts)
		}
	case FamEpsNearOne:
		ins.Eps = 1 - 1e-9
		ins.Pts = randPoints(rng, n, dim)
		ins.Q = perturbedQuery(rng, ins.Pts)
	default: // FamRandom
		ins.Pts = randPoints(rng, n, dim)
		ins.Q = perturbedQuery(rng, ins.Pts)
	}
	return ins
}

// randPoint draws one point with coordinates in [0.05, 0.95], keeping every
// derived query inside the (0,1] attribute domain even after perturbation.
func randPoint(rng *rand.Rand, dim int) vec.Vec {
	p := vec.New(dim)
	for j := range p {
		p[j] = 0.05 + 0.9*rng.Float64()
	}
	return p
}

func randPoints(rng *rand.Rand, n, dim int) []vec.Vec {
	pts := make([]vec.Vec, n)
	for i := range pts {
		pts[i] = randPoint(rng, dim)
	}
	return pts
}

// perturbedQuery follows the paper's experimental protocol: a random
// dataset point nudged slightly, clamped to stay strictly positive.
func perturbedQuery(rng *rand.Rand, pts []vec.Vec) vec.Vec {
	q := pts[rng.Intn(len(pts))].Clone()
	for j := range q {
		q[j] += (rng.Float64() - 0.5) * 0.1
		if q[j] < 0.01 {
			q[j] = 0.01
		}
		if q[j] > 1 {
			q[j] = 1
		}
	}
	return q
}

// Seeds returns one corpus entry per family across dimensions, for seeding
// fuzz targets and quick harness smokes.
func Seeds() [][]byte {
	var out [][]byte
	for fam := byte(0); fam < NumFamilies; fam++ {
		for _, dim := range []int{2, 3, 4} {
			out = append(out, Encode(fam, dim, 8, 2, int(fam)+1, int64(fam)*1000+int64(dim)))
		}
	}
	return out
}
