package diffcheck

// Cache differential harness: the result cache must be invisible in exact
// answers and sound in bound-served answers. For every corpus problem,
//
//   - an exact cache hit must be byte-identical — same JSON encoding, not
//     merely same membership — to a from-scratch solve;
//   - a bound served from a cached neighbor must honor the diffcheck-proven
//     monotonicity invariant R(q,k,ε) ⊆ R(q,k',ε') for k ≤ k', ε ≤ ε': an
//     inner bound (tighter cached neighbor) must be contained in the true
//     region, an outer bound (looser cached neighbor) must contain it, with
//     membership evaluated against the half-space counting oracle on a
//     margin-guarded sample grid;
//   - an ε = 0 cached answer (ReverseTopK) must serve as an inner seed for
//     the same query at ε > 0;
//   - a version bump must miss: no entry from a superseded epoch may ever
//     be served, and pruning the old epoch empties the cache.

import (
	"bytes"
	"context"
	"fmt"

	"rrq/internal/cache"
	"rrq/internal/core"
	"rrq/internal/diffcheck/corpus"
	"rrq/internal/vec"
)

// CacheReport is the outcome of a cache differential run.
type CacheReport struct {
	// Problems is the number of corpus problems checked.
	Problems int
	// ExactChecks counts exact-hit byte comparisons performed.
	ExactChecks int
	// BoundChecks counts bound-serving scenarios exercised (inner, outer,
	// ε = 0 seed, preference).
	BoundChecks int
	// SampleChecks counts individual margin-guarded membership assertions.
	SampleChecks int
	// SolveSkipped counts problems abandoned because the reference solve
	// itself failed (degenerate families may reject queries); those paths
	// are the solver's to report, not the cache's.
	SolveSkipped int
	// Mismatches holds every disagreement.
	Mismatches []Mismatch
}

func (rep *CacheReport) fail(m Mismatch) {
	rep.Mismatches = append(rep.Mismatches, m)
}

// RunCache executes the cache differential harness over the same corpus
// enumeration as Run and RunIndex. Like them it never panics on a mismatch;
// callers decide how to fail.
func RunCache(cfg Config) CacheReport {
	cfg = cfg.withDefaults()
	var rep CacheReport
	dims := []int{2, 3, 4, 5, 6}
	for i := 0; i < cfg.Problems; i++ {
		fam := byte(i % corpus.NumFamilies)
		dim := dims[(i/corpus.NumFamilies)%len(dims)]
		data := corpus.Encode(fam, dim, 3+i%10, 1+i%4, i%7, cfg.Seed+int64(i)*7919)
		ins, ok := corpus.DecodeDim(data, dim)
		if !ok {
			continue
		}
		rep.Problems++
		checkCacheProblem(cfg, ins, int64(i), &rep)
	}
	return rep
}

// cacheServePath is the serving-path component of the exact cache key used
// throughout the harness; any fixed string works because every lookup uses
// the same one.
const cacheServePath = "E-PT"

// checkCacheProblem runs every cache scenario on one corpus instance.
func checkCacheProblem(cfg Config, ins corpus.Instance, ordinal int64, rep *CacheReport) {
	d := ins.Q.Dim()
	q := core.Query{Q: ins.Q, K: ins.K, Eps: ins.Eps}
	prob := newProblem(ins)
	version := uint64(ordinal + 1)

	solve := func(qq core.Query) (*core.Region, []byte, error) {
		prep, err := core.Prepare(ins.Pts, d, true)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := (core.EPTSolver{}).Solve(context.Background(), prep, qq)
		if err != nil {
			return nil, nil, err
		}
		b, err := r.MarshalJSON()
		return r, b, err
	}

	base, _, err := solve(q)
	if err != nil {
		rep.SolveSkipped++
		return
	}

	// Exact hit: a cached answer must be byte-identical to an independent
	// from-scratch solve of the same query.
	c := cache.New(16)
	c.Put(version, cacheServePath, q, base)
	got, ok := c.Get(version, cacheServePath, q)
	if !ok {
		rep.fail(Mismatch{Kind: "cache-miss-expected-hit", Problem: prob,
			Detail: "entry just stored was not served"})
		return
	}
	_, freshBytes, err := solve(q)
	if err != nil {
		rep.fail(Mismatch{Kind: "cache-reference-error", Problem: prob,
			Detail: "re-solve failed after initial solve succeeded: " + err.Error()})
		return
	}
	servedBytes, err := got.MarshalJSON()
	if err != nil {
		rep.fail(Mismatch{Kind: "cache-reference-error", Problem: prob, Detail: err.Error()})
		return
	}
	rep.ExactChecks++
	if !bytes.Equal(servedBytes, freshBytes) {
		rep.fail(Mismatch{Kind: "cache-byte-divergence", Problem: prob,
			Detail: fmt.Sprintf("cache-served region differs from fresh solve\n got: %s\nwant: %s", servedBytes, freshBytes)})
		return
	}

	// Version miss: the next epoch must not see the entry, and pruning to
	// the next epoch must empty the cache entirely.
	if _, ok := c.Get(version+1, cacheServePath, q); ok {
		rep.fail(Mismatch{Kind: "cache-stale-serve", Problem: prob,
			Detail: "entry stored at one epoch served at the next"})
		return
	}
	if ans := c.Bound(version+1, q); ans != nil {
		rep.fail(Mismatch{Kind: "cache-stale-serve", Problem: prob,
			Detail: "bound from a superseded epoch was served"})
		return
	}
	c.Prune(version + 1)
	if c.Len() != 0 {
		rep.fail(Mismatch{Kind: "cache-stale-serve", Problem: prob,
			Detail: fmt.Sprintf("%d entries survived pruning to the next epoch", c.Len())})
		return
	}

	oracle := newPlaneOracle(ins.Pts, q)
	grid := sampleGrid(d, cfg.Seed^(ordinal*65537+29), cfg.RandSamples)

	// Inner bound from a strictly tighter cached neighbor.
	tight := core.Query{Q: ins.Q, K: ins.K, Eps: ins.Eps / 2}
	if tight.K > 1 {
		tight.K--
	}
	haveTight := tight.K < q.K || tight.Eps < q.Eps
	if haveTight {
		checkCacheBound(cfg, ins, prob, version, q, tight, cache.Inner, oracle, grid, solve, rep)
	}

	// Outer bound from a strictly looser cached neighbor. K+1 is always a
	// valid loosening; ε grows too when it stays clear of the ε < 1 domain
	// boundary.
	loose := core.Query{Q: ins.Q, K: ins.K + 1, Eps: ins.Eps}
	if ins.Eps+0.05 < 1 {
		loose.Eps = ins.Eps + 0.05
	}
	checkCacheBound(cfg, ins, prob, version, q, loose, cache.Outer, oracle, grid, solve, rep)

	// ε = 0 seed: the cached ReverseTopK answer for the same point and rank
	// must serve as an inner bound for the ε > 0 query.
	if ins.Eps > 0 {
		seed := core.Query{Q: ins.Q, K: ins.K, Eps: 0}
		checkCacheBound(cfg, ins, prob, version, q, seed, cache.Inner, oracle, grid, solve, rep)
	}

	// Preference: with both neighbors cached, the inner one must win.
	if haveTight {
		rt, _, errT := solve(tight)
		rl, _, errL := solve(loose)
		if errT == nil && errL == nil {
			both := cache.New(16)
			both.Put(version, cacheServePath, tight, rt)
			both.Put(version, cacheServePath, loose, rl)
			rep.BoundChecks++
			ans := both.Bound(version, q)
			if ans == nil {
				rep.fail(Mismatch{Kind: "cache-bound-kind", Problem: prob,
					Detail: "no bound served with both neighbors cached"})
			} else if ans.Kind != cache.Inner {
				rep.fail(Mismatch{Kind: "cache-bound-kind", Problem: prob,
					Detail: fmt.Sprintf("served %v with both an inner and an outer neighbor cached; want inner", ans.Kind)})
			}
		}
	}
}

// checkCacheBound stores the neighbor's fresh answer, asks the cache for a
// bound on q, and verifies the served kind, the byte-level integrity of the
// served region against a fresh solve of the neighbor, and the monotonicity
// containment on the margin-guarded sample grid.
func checkCacheBound(cfg Config, ins corpus.Instance, prob Problem, version uint64, q, neighbor core.Query,
	wantKind cache.BoundKind, oracle *planeOracle,
	grid []vec.Vec, solve func(core.Query) (*core.Region, []byte, error), rep *CacheReport) {

	nr, nrBytes, err := solve(neighbor)
	if err != nil {
		// The neighbor query itself is unsolvable for this instance (e.g. a
		// degenerate family rejects it); nothing to cache, nothing to serve.
		return
	}
	c := cache.New(16)
	c.Put(version, cacheServePath, neighbor, nr)
	rep.BoundChecks++
	ans := c.Bound(version, q)
	if ans == nil {
		rep.fail(Mismatch{Kind: "cache-bound-kind", Problem: prob,
			Detail: fmt.Sprintf("no bound served for (k=%d, ε=%g) from cached neighbor (k=%d, ε=%g)",
				q.K, q.Eps, neighbor.K, neighbor.Eps)})
		return
	}
	if ans.Kind != wantKind {
		rep.fail(Mismatch{Kind: "cache-bound-kind", Problem: prob,
			Detail: fmt.Sprintf("neighbor (k=%d, ε=%g) served as %v for (k=%d, ε=%g); want %v",
				neighbor.K, neighbor.Eps, ans.Kind, q.K, q.Eps, wantKind)})
		return
	}
	servedBytes, err := ans.Region.MarshalJSON()
	if err != nil {
		rep.fail(Mismatch{Kind: "cache-reference-error", Problem: prob, Detail: err.Error()})
		return
	}
	if !bytes.Equal(servedBytes, nrBytes) {
		rep.fail(Mismatch{Kind: "cache-byte-divergence", Problem: prob,
			Detail: "bound-served region differs from a fresh solve of the cached neighbor"})
		return
	}

	// Monotonicity containment, sample by sample. Samples within the margin
	// of either query's decision boundary are skipped — the documented
	// numerical policy, identical to the solver-equivalence harness.
	nOracle := newPlaneOracle(ins.Pts, neighbor)
	for _, u := range grid {
		truth, m1 := oracle.qualified(u)
		_, m2 := nOracle.qualified(u)
		if m1 < cfg.Margin || m2 < cfg.Margin {
			continue
		}
		rep.SampleChecks++
		served := ans.Region.Contains(u)
		switch wantKind {
		case cache.Inner:
			if served && !truth {
				rep.fail(Mismatch{Kind: "cache-inner-unsound", Problem: prob, U: u,
					Detail: fmt.Sprintf("inner bound from (k=%d, ε=%g) contains a point outside R(q, k=%d, ε=%g)",
						neighbor.K, neighbor.Eps, q.K, q.Eps)})
				return
			}
		case cache.Outer:
			if truth && !served {
				rep.fail(Mismatch{Kind: "cache-outer-unsound", Problem: prob, U: u,
					Detail: fmt.Sprintf("outer bound from (k=%d, ε=%g) misses a point of R(q, k=%d, ε=%g)",
						neighbor.K, neighbor.Eps, q.K, q.Eps)})
				return
			}
		}
	}
}
