package diffcheck

// Recovery differential harness: crash-recovery must be invisible in the
// answers. For every corpus problem, a durable index absorbs a mutation
// stream, then the harness simulates a crash at every WAL record boundary
// — and inside every record (torn tails) — by truncating a copy of the
// durability directory, recovers it with OpenDurable, and requires the
// recovered index to serve regions byte-identical to an uninterrupted
// in-memory index holding the same mutation prefix. Torn tails must be
// physically truncated (counted in wal.truncated), never fatal and never
// visible beyond losing the unacknowledged suffix.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"rrq/internal/core"
	"rrq/internal/diffcheck/corpus"
	"rrq/internal/index"
	"rrq/internal/obs"
	"rrq/internal/vec"
	"rrq/internal/wal"
)

// RecoveryMutations is the length of the mutation stream — and therefore
// the number of WAL record boundaries — per corpus problem.
const RecoveryMutations = 5

// RecoveryProblems is the default problem count for RunRecovery. The sweep
// performs (RecoveryMutations+1) clean-crash and 2·RecoveryMutations
// torn-tail recoveries per problem, each a full checkpoint-load + replay +
// solve, so it runs a denser per-problem schedule over fewer problems than
// the other harnesses.
const RecoveryProblems = 24

// RecoveryReport is the outcome of a recovery differential run.
type RecoveryReport struct {
	// Problems is the number of corpus problems checked.
	Problems int
	// Mutations is the number of logged mutations across all problems.
	Mutations int
	// KillPoints counts crashes simulated at clean record boundaries,
	// TornTails crashes simulated inside a record.
	KillPoints int
	TornTails  int
	// Truncations counts recoveries that physically truncated a torn or
	// corrupt tail (the wal.truncated metric, summed).
	Truncations int
	// Replayed is the total number of WAL records replayed across all
	// recoveries.
	Replayed int
	// Mismatches holds every disagreement, including recovery errors.
	Mismatches []Mismatch
}

func (rep *RecoveryReport) fail(m Mismatch) {
	rep.Mismatches = append(rep.Mismatches, m)
}

// RunRecovery executes the recovery differential harness over the corpus
// enumeration shared with Run and RunIndex, using scratch (a disposable
// directory, e.g. t.TempDir()) for the durability directories. Like the
// other harnesses it never panics on a mismatch; callers decide how to
// fail.
func RunRecovery(cfg Config, scratch string) RecoveryReport {
	if cfg.Problems <= 0 {
		cfg.Problems = RecoveryProblems
	}
	cfg = cfg.withDefaults()
	var rep RecoveryReport
	dims := []int{2, 3, 4, 5, 6}
	for i := 0; i < cfg.Problems; i++ {
		fam := byte(i % corpus.NumFamilies)
		dim := dims[(i/corpus.NumFamilies)%len(dims)]
		data := corpus.Encode(fam, dim, 3+i%10, 1+i%4, i%7, cfg.Seed+int64(i)*7919)
		ins, ok := corpus.DecodeDim(data, dim)
		if !ok {
			continue
		}
		rep.Problems++
		checkRecoveryProblem(cfg, ins, int64(i), filepath.Join(scratch, fmt.Sprintf("p%03d", i)), &rep)
	}
	return rep
}

// checkRecoveryProblem runs the crash sweep for one instance: build the
// durable index and an uninterrupted in-memory twin, apply the same
// mutation stream to both (remembering the wanted region after every
// prefix), then crash-and-recover at every record boundary and torn-tail
// offset, comparing the recovered answer against the twin's prefix answer.
func checkRecoveryProblem(cfg Config, ins corpus.Instance, ordinal int64, dir string, rep *RecoveryReport) {
	d := ins.Q.Dim()
	q := core.Query{Q: ins.Q, K: ins.K, Eps: ins.Eps}
	prob := newProblem(ins)

	ref, err := index.Build(ins.Pts, d, index.Options{})
	if err != nil {
		rep.fail(Mismatch{Kind: "recovery-build-error", Problem: prob, Detail: err.Error()})
		return
	}
	// CheckpointEvery is unreachable so every mutation stays in one WAL
	// segment: the sweep then controls exactly which records survive the
	// simulated crash by truncating that segment.
	ix, dur, _, err := index.OpenDurable(index.DurableOptions{
		Dir: dir, Sync: wal.SyncAlways, CheckpointEvery: 1 << 30,
	}, func() (*index.Index, error) {
		return index.Build(ins.Pts, d, index.Options{})
	})
	if err != nil {
		rep.fail(Mismatch{Kind: "recovery-open-error", Problem: prob, Detail: err.Error()})
		return
	}

	// want[k] is the region after the first k mutations; bounds[k] the WAL
	// byte offset at which exactly k records survive.
	want := make([][]byte, 0, RecoveryMutations+1)
	wb, werr := regionBytes(ref.Snapshot().Prepared(nil), q)
	if werr != nil {
		// The instance does not solve at all (e.g. over-constrained): the
		// recovery semantics are untestable on it, skip like the other
		// harnesses skip unsolvable comparisons.
		_ = dur.Close()
		return
	}
	want = append(want, wb)
	bounds := []int64{0}
	n := len(ins.Pts)

	rng := rand.New(rand.NewSource(cfg.Seed ^ (ordinal*92821 + 5)))
	for op := 0; op < RecoveryMutations; op++ {
		epoch := uint64(2 + op)
		var rec wal.Record
		var step string
		if rng.Intn(3) == 0 && n > 3 {
			i := rng.Intn(n)
			step = fmt.Sprintf("op %d: delete %d", op, i)
			rec = wal.Record{Epoch: epoch, Op: wal.OpDelete, Index: i}
			if _, err := ix.Delete(i); err != nil {
				rep.fail(Mismatch{Kind: "recovery-maintain-error", Problem: prob, Detail: step + ": " + err.Error()})
				_ = dur.Close()
				return
			}
			if _, err := ref.Delete(i); err != nil {
				rep.fail(Mismatch{Kind: "recovery-maintain-error", Problem: prob, Detail: step + " (reference): " + err.Error()})
				_ = dur.Close()
				return
			}
			n--
		} else {
			p := vec.New(d)
			for j := range p {
				p[j] = 0.05 + 0.95*rng.Float64()
			}
			step = fmt.Sprintf("op %d: insert", op)
			rec = wal.Record{Epoch: epoch, Op: wal.OpInsert, Point: p}
			if _, err := ix.Insert(p); err != nil {
				rep.fail(Mismatch{Kind: "recovery-maintain-error", Problem: prob, Detail: step + ": " + err.Error()})
				_ = dur.Close()
				return
			}
			if _, err := ref.Insert(p.Clone()); err != nil {
				rep.fail(Mismatch{Kind: "recovery-maintain-error", Problem: prob, Detail: step + " (reference): " + err.Error()})
				_ = dur.Close()
				return
			}
			n++
		}
		rep.Mutations++
		bounds = append(bounds, bounds[len(bounds)-1]+int64(len(wal.Encode(rec))))
		wb, werr := regionBytes(ref.Snapshot().Prepared(nil), q)
		if werr != nil {
			rep.fail(Mismatch{Kind: "recovery-divergence", Problem: prob, Detail: step + ": reference solve failed: " + werr.Error()})
			_ = dur.Close()
			return
		}
		want = append(want, wb)
	}
	if err := dur.Close(); err != nil {
		rep.fail(Mismatch{Kind: "recovery-open-error", Problem: prob, Detail: "close: " + err.Error()})
		return
	}

	// The active segment was opened at epoch 2 (on top of the recovery
	// checkpoint at version 1).
	seg := fmt.Sprintf("wal-%020d.seg", 2)
	for k := 0; k <= RecoveryMutations; k++ {
		// Clean crash exactly after record k.
		crashRecover(prob, dir, seg, bounds[k], k, false, want[k], q, rep)
		rep.KillPoints++
		if k < RecoveryMutations {
			// Torn tails inside record k+1: a split length prefix, and a
			// payload cut one byte short. Both must recover to prefix k
			// with the tail truncated.
			full := bounds[k+1] - bounds[k]
			for _, delta := range []int64{1, full - 1} {
				crashRecover(prob, dir, seg, bounds[k]+delta, k, true, want[k], q, rep)
				rep.TornTails++
			}
		}
	}
}

// crashRecover copies the durability directory with its WAL segment
// truncated to off bytes — the crash image — recovers it, and checks the
// recovered index against the expected prefix state.
func crashRecover(prob Problem, dir, seg string, off int64, k int, torn bool, wantRegion []byte, q core.Query, rep *RecoveryReport) {
	where := fmt.Sprintf("kill after %d record(s) at offset %d (torn=%v)", k, off, torn)
	crash, err := copyCrashImage(dir, seg, off)
	if err != nil {
		rep.fail(Mismatch{Kind: "recovery-open-error", Problem: prob, Detail: where + ": " + err.Error()})
		return
	}
	defer os.RemoveAll(crash)
	reg := obs.NewRegistry()
	rix, rd, rec, err := index.OpenDurable(index.DurableOptions{Dir: crash, Sync: wal.SyncAlways, Metrics: reg}, nil)
	if err != nil {
		rep.fail(Mismatch{Kind: "recovery-open-error", Problem: prob, Detail: where + ": " + err.Error()})
		return
	}
	defer rd.Close()
	rep.Replayed += rec.Replayed
	rep.Truncations += int(reg.Counter("wal.truncated").Value())
	if rec.Replayed != k || rix.Version() != uint64(1+k) {
		rep.fail(Mismatch{Kind: "recovery-replay-count", Problem: prob,
			Detail: fmt.Sprintf("%s: replayed %d records to version %d, want %d to %d", where, rec.Replayed, rix.Version(), k, 1+k)})
		return
	}
	if torn && rec.Truncated == nil {
		rep.fail(Mismatch{Kind: "recovery-truncation-missing", Problem: prob,
			Detail: where + ": torn tail recovered without truncation"})
		return
	}
	got, gotErr := regionBytes(rix.Snapshot().Prepared(nil), q)
	if gotErr != nil {
		rep.fail(Mismatch{Kind: "recovery-divergence", Problem: prob, Detail: where + ": recovered solve failed: " + gotErr.Error()})
		return
	}
	if !bytes.Equal(got, wantRegion) {
		rep.fail(Mismatch{Kind: "recovery-divergence", Problem: prob,
			Detail: fmt.Sprintf("%s: recovered region differs from uninterrupted index\n got: %s\nwant: %s", where, got, wantRegion)})
	}
}

// copyCrashImage clones the durability directory into a sibling, with the
// named WAL segment truncated to off bytes — the byte-level state a crash
// at that offset would leave behind.
func copyCrashImage(dir, seg string, off int64) (string, error) {
	crash, err := os.MkdirTemp(filepath.Dir(dir), filepath.Base(dir)+"-crash-")
	if err != nil {
		return "", err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if err := copyFile(filepath.Join(dir, e.Name()), filepath.Join(crash, e.Name())); err != nil {
			return "", err
		}
	}
	if err := os.Truncate(filepath.Join(crash, seg), off); err != nil {
		return "", err
	}
	return crash, nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
