// Package diffcheck is the standing differential + metamorphic correctness
// harness for the reverse regret query solver stack. It generates
// adversarially degenerate problems (see internal/diffcheck/corpus), runs
// every solver on each, and checks:
//
//   - membership equivalence: every exact solver's region must agree with
//     the Lemma 3.5 counting oracle on a dense simplex sample grid; the
//     approximate A-PC must never contain an unqualified preference;
//   - LP audits: every returned cell must be feasible as a linear program
//     over the simplex (internal/lp is the independent oracle) and its LP
//     witness and center must be qualified;
//   - representative completeness: the centers of the brute-force ground
//     truth's partitions must be contained in every exact solver's region,
//     in the spirit of top-k depth-contour equivalence checks;
//   - metamorphic invariants: point-permutation invariance, region
//     monotonicity in ε and in k, and exact ε = 0 equivalence with the
//     public reverse top-k operator.
//
// Samples within the margin of a decision boundary are skipped (the
// answers there are representation noise by the documented numerical
// policy); margins are measured against unit plane normals so the skip is
// scale-free. Every surviving disagreement is minimized by greedy point
// deletion and reported with a JSON reproduction dump.
package diffcheck

import (
	"context"
	"fmt"

	"rrq"
	"rrq/internal/baseline"
	"rrq/internal/core"
	"rrq/internal/diffcheck/corpus"
	"rrq/internal/vec"
)

// Config parameterizes one harness run. The zero value is usable: every
// field has a default.
type Config struct {
	// Seed drives problem generation and sampling. Runs are pure functions
	// of the config, so differential runs are replayable.
	Seed int64
	// Problems is the number of generated problems (default 208). Families
	// and dimensions are cycled, so any count ≥ 40 covers every
	// family × dimension pair.
	Problems int
	// RandSamples is the number of random interior samples added to the
	// deterministic lattice grid per problem (default 48).
	RandSamples int
	// Margin is the boundary-skip threshold on unit-normal margins
	// (default 1e-7, the documented numerical policy).
	Margin float64
	// APCSamples is the A-PC sample count per problem (default 120).
	APCSamples int
	// PBAMaxDim bounds the dimensions on which the PBA+ baseline runs
	// (default 4): its preprocessing materializes the rank arrangement and
	// is the cost the paper reports as prohibitive.
	PBAMaxDim int
	// PBAMaxNodes is the PBA+ preprocessing budget (default 30000).
	// Instances exceeding it are skipped and counted in Report.PBASkipped —
	// a visible cap, not a silent one.
	PBAMaxNodes int
}

func (c Config) withDefaults() Config {
	if c.Problems <= 0 {
		c.Problems = 208
	}
	if c.RandSamples <= 0 {
		c.RandSamples = 48
	}
	if c.Margin <= 0 {
		c.Margin = 1e-7
	}
	if c.APCSamples <= 0 {
		c.APCSamples = 120
	}
	if c.PBAMaxDim <= 0 {
		c.PBAMaxDim = 4
	}
	if c.PBAMaxNodes <= 0 {
		c.PBAMaxNodes = 30000
	}
	return c
}

// Report is the outcome of a harness run.
type Report struct {
	// Problems is the number of problems generated and checked.
	Problems int
	// Checks is the total number of individual assertions evaluated
	// (membership comparisons, LP audits, invariant checks).
	Checks int
	// PerFamily counts problems per degenerate family.
	PerFamily map[string]int
	// SolverRuns counts completed solves per solver name.
	SolverRuns map[string]int
	// PBASkipped counts problems on which PBA+ was skipped (dimension bound
	// or preprocessing budget).
	PBASkipped int
	// Mismatches holds every surviving disagreement, minimized.
	Mismatches []Mismatch
}

// solverRun is one solver's answer to one problem.
type solverRun struct {
	name   string
	exact  bool
	region *core.Region
}

// Run executes the harness and returns its report. It never panics on a
// mismatch; callers (the test suite, the CI job) decide how to fail.
func Run(cfg Config) Report {
	cfg = cfg.withDefaults()
	rep := Report{
		PerFamily:  make(map[string]int),
		SolverRuns: make(map[string]int),
	}
	dims := []int{2, 3, 4, 5, 6}
	for i := 0; i < cfg.Problems; i++ {
		fam := byte(i % corpus.NumFamilies)
		dim := dims[(i/corpus.NumFamilies)%len(dims)]
		data := corpus.Encode(fam, dim, 3+i%10, 1+i%4, i%7, cfg.Seed+int64(i)*7919)
		ins, ok := corpus.DecodeDim(data, dim)
		if !ok {
			continue
		}
		rep.Problems++
		rep.PerFamily[ins.Family]++
		checkProblem(cfg, ins, int64(i), &rep)
	}
	return rep
}

// checkProblem runs every applicable solver on one instance and applies the
// full check battery.
func checkProblem(cfg Config, ins corpus.Instance, ordinal int64, rep *Report) {
	ctx := context.Background()
	d := ins.Q.Dim()
	q := core.Query{Q: ins.Q, K: ins.K, Eps: ins.Eps}
	prob := newProblem(ins)
	prep, err := core.Prepare(ins.Pts, d, false)
	if err != nil {
		rep.fail(Mismatch{Kind: "prepare-error", Problem: prob, Detail: err.Error()})
		return
	}

	oracle := newPlaneOracle(ins.Pts, q)
	samples := sampleGrid(d, cfg.Seed^(ordinal*104729), cfg.RandSamples)

	// The two oracle formulations — classified planes vs raw utility
	// differences (core.CountBetter) — must agree away from boundaries.
	for _, u := range samples {
		c1, m1 := oracle.count(u)
		c2, m2 := core.CountBetter(ins.Pts, q, u)
		rep.Checks++
		if m1 >= cfg.Margin && m2 >= cfg.Margin && c1 != c2 {
			rep.fail(Mismatch{
				Kind: "oracle-divergence", Problem: prob, U: u,
				Detail: fmt.Sprintf("plane oracle counts %d, CountBetter counts %d", c1, c2),
			})
		}
	}

	runs := runSolvers(ctx, cfg, prep, q, ordinal, rep, prob)

	// Membership equivalence on the sample grid.
	for _, r := range runs {
		solveMembership(cfg, ins, q, oracle, r, samples, rep)
	}

	// LP audits of every exact region's representation.
	for _, r := range runs {
		if r.exact {
			auditRegion(cfg, oracle, r, prob, rep)
		}
	}

	// Representative completeness: ground-truth partition centers must be in
	// every exact region.
	completenessCheck(cfg, oracle, runs, prob, rep)

	// Metamorphic invariants, all driven through E-PT (the exact
	// general-dimension solver).
	metamorphicChecks(ctx, cfg, ins, q, oracle, ordinal, rep, prob)
}

// runSolvers answers the problem with every applicable solver: the four
// exact engines (Sweeping when d = 2, E-PT, brute force, LP-CTA), the PBA+
// index within its dimension/budget bounds, and the approximate A-PC.
func runSolvers(ctx context.Context, cfg Config, prep *core.Prepared, q core.Query, ordinal int64, rep *Report, prob Problem) []solverRun {
	d := prep.Dim()
	type entry struct {
		solver core.Solver
		exact  bool
	}
	entries := []entry{
		{core.EPTSolver{}, true},
		{core.BruteForceSolver{MaxPlanes: 64}, true},
		{baseline.LPCTASolver{}, true},
		{core.APCSolver{Opt: core.APCOptions{Samples: cfg.APCSamples, Seed: cfg.Seed + ordinal}}, false},
	}
	if d == 2 {
		entries = append(entries, entry{core.SweepingSolver{}, true})
	}
	var runs []solverRun
	for _, e := range entries {
		region, _, err := e.solver.Solve(ctx, prep, q)
		if err != nil {
			rep.fail(Mismatch{Kind: "solver-error", Solver: e.solver.Name(), Problem: prob, Detail: err.Error()})
			continue
		}
		rep.SolverRuns[e.solver.Name()]++
		runs = append(runs, solverRun{name: e.solver.Name(), exact: e.exact, region: region})
	}
	if d <= cfg.PBAMaxDim {
		if region, ok := runPBA(ctx, cfg, prep, q, rep, prob); ok {
			rep.SolverRuns["PBA+"]++
			runs = append(runs, solverRun{name: "PBA+", exact: true, region: region})
		}
	} else {
		rep.PBASkipped++
	}
	return runs
}

// runPBA builds a fresh PBA+ index for the problem's k and queries it. A
// blown preprocessing budget is a skip (counted), not a failure: the paper
// itself reports PBA+ preprocessing as prohibitive at scale.
func runPBA(ctx context.Context, cfg Config, prep *core.Prepared, q core.Query, rep *Report, prob Problem) (*core.Region, bool) {
	ix, err := baseline.BuildPBAContext(ctx, prep.Points(), q.K, cfg.PBAMaxNodes)
	if err != nil {
		if err == baseline.ErrPBABudget {
			rep.PBASkipped++
			return nil, false
		}
		rep.fail(Mismatch{Kind: "solver-error", Solver: "PBA+", Problem: prob, Detail: err.Error()})
		return nil, false
	}
	region, err := ix.QueryContext(ctx, q)
	if err != nil {
		rep.fail(Mismatch{Kind: "solver-error", Solver: "PBA+", Problem: prob, Detail: err.Error()})
		return nil, false
	}
	return region, true
}

// solveMembership compares one region's membership against the oracle on
// the sample grid. Exact solvers must match in both directions; A-PC must
// never claim an unqualified sample (it may under-report).
func solveMembership(cfg Config, ins corpus.Instance, q core.Query, oracle *planeOracle, r solverRun, samples []vec.Vec, rep *Report) {
	for _, u := range samples {
		want, margin := oracle.qualified(u)
		if margin < cfg.Margin {
			continue
		}
		rep.Checks++
		got := r.region.Contains(u)
		if got == want || (!r.exact && !got) {
			continue
		}
		mm := Mismatch{
			Kind: "membership", Solver: r.name, Problem: newProblem(ins), U: u,
			Detail: fmt.Sprintf("solver=%v oracle=%v (count boundary margin %.3g)", got, want, margin),
		}
		mm.Problem.Pts = minimizeMembership(ins, q, r.name, u, cfg)
		rep.fail(mm)
	}
}

// auditRegion applies the LP audit to every cell of a cell-backed region,
// and the interval audit (piece midpoints qualified, gap midpoints not) to
// 2-d interval regions.
func auditRegion(cfg Config, oracle *planeOracle, r solverRun, prob Problem, rep *Report) {
	if cells := r.region.Cells(); cells != nil {
		for _, c := range cells {
			rep.Checks++
			if msg := lpAuditCell(oracle, c, cfg.Margin); msg != "" {
				rep.fail(Mismatch{Kind: "lp-audit", Solver: r.name, Problem: prob, U: c.Center(), Detail: msg})
			}
		}
		return
	}
	if r.region.Dim() != 2 {
		return
	}
	ivs := r.region.Intervals()
	prev := 0.0
	for i, iv := range ivs {
		mid := (iv[0] + iv[1]) / 2
		u := vec.Of(mid, 1-mid)
		rep.Checks++
		if ok, m := oracle.qualified(u); m >= cfg.Margin && !ok {
			rep.fail(Mismatch{Kind: "lp-audit", Solver: r.name, Problem: prob, U: u, Detail: "interval midpoint unqualified"})
		}
		if gap := iv[0] - prev; gap > 4*cfg.Margin {
			gm := prev + gap/2
			gu := vec.Of(gm, 1-gm)
			rep.Checks++
			if ok, m := oracle.qualified(gu); m >= cfg.Margin && ok {
				rep.fail(Mismatch{Kind: "lp-audit", Solver: r.name, Problem: prob, U: gu, Detail: "gap midpoint qualified but not covered"})
			}
		}
		prev = iv[1]
		_ = i
	}
}

// completenessCheck takes the brute-force answer as the ground-truth
// partition of the qualified region and verifies that a representative
// interior point of each of its pieces is contained in every other exact
// solver's region — a contour-equivalence check that does not depend on
// sampling luck.
func completenessCheck(cfg Config, oracle *planeOracle, runs []solverRun, prob Problem, rep *Report) {
	var truth *solverRun
	for i := range runs {
		if runs[i].name == "BruteForce" {
			truth = &runs[i]
		}
	}
	if truth == nil {
		return
	}
	var reps []vec.Vec
	if cells := truth.region.Cells(); cells != nil {
		for _, c := range cells {
			reps = append(reps, c.Center())
		}
	} else if truth.region.Dim() == 2 {
		for _, iv := range truth.region.Intervals() {
			mid := (iv[0] + iv[1]) / 2
			reps = append(reps, vec.Of(mid, 1-mid))
		}
	}
	for _, u := range reps {
		ok, m := oracle.qualified(u)
		if m < cfg.Margin || !ok {
			continue // boundary-thin piece: representation noise
		}
		for _, r := range runs {
			if !r.exact || r.name == truth.name {
				continue
			}
			rep.Checks++
			if !r.region.Contains(u) {
				rep.fail(Mismatch{
					Kind: "completeness", Solver: r.name, Problem: prob, U: u,
					Detail: "ground-truth partition center missing from region",
				})
			}
		}
	}
}

// metamorphicChecks verifies the harness's four metamorphic invariants on
// the E-PT answer.
func metamorphicChecks(ctx context.Context, cfg Config, ins corpus.Instance, q core.Query, oracle *planeOracle, ordinal int64, rep *Report, prob Problem) {
	samples := sampleGrid(ins.Q.Dim(), cfg.Seed^(ordinal*7561+13), cfg.RandSamples)
	base, _, err := core.EPTContext(ctx, ins.Pts, q, core.EPTOptions{})
	if err != nil {
		return // already reported by runSolvers
	}

	// Point-permutation invariance: the answer is a set property of the
	// dataset; reordering the points must not change membership.
	perm := permutedPoints(ins.Pts, cfg.Seed+ordinal)
	if permReg, _, err := core.EPTContext(ctx, perm, q, core.EPTOptions{}); err == nil {
		for _, u := range samples {
			if _, m := oracle.qualified(u); m < cfg.Margin {
				continue
			}
			rep.Checks++
			if base.Contains(u) != permReg.Contains(u) {
				rep.fail(Mismatch{Kind: "invariant-permutation", Solver: "E-PT", Problem: prob, U: u,
					Detail: "membership changed under point permutation"})
			}
		}
	}

	// Monotonicity in ε: raising the threshold can only grow the region.
	if eps2 := q.Eps + 0.15; eps2 < 0.95 {
		q2 := q
		q2.Eps = eps2
		oracle2 := newPlaneOracle(ins.Pts, q2)
		if reg2, _, err := core.EPTContext(ctx, ins.Pts, q2, core.EPTOptions{}); err == nil {
			for _, u := range samples {
				_, m1 := oracle.qualified(u)
				_, m2 := oracle2.qualified(u)
				if m1 < cfg.Margin || m2 < cfg.Margin {
					continue
				}
				rep.Checks++
				if base.Contains(u) && !reg2.Contains(u) {
					rep.fail(Mismatch{Kind: "invariant-eps-monotone", Solver: "E-PT", Problem: prob, U: u,
						Detail: fmt.Sprintf("qualified at ε=%v but not at ε=%v", q.Eps, eps2)})
				}
			}
		}
	}

	// Monotonicity in k: relaxing the rank requirement can only grow the
	// region (the plane arrangement is k-independent, so margins carry over).
	qk := q
	qk.K = q.K + 1
	if regK, _, err := core.EPTContext(ctx, ins.Pts, qk, core.EPTOptions{}); err == nil {
		for _, u := range samples {
			if _, m := oracle.qualified(u); m < cfg.Margin {
				continue
			}
			rep.Checks++
			if base.Contains(u) && !regK.Contains(u) {
				rep.fail(Mismatch{Kind: "invariant-k-monotone", Solver: "E-PT", Problem: prob, U: u,
					Detail: fmt.Sprintf("qualified at k=%d but not at k=%d", q.K, qk.K)})
			}
		}
	}

	// ε = 0 must coincide exactly with the public reverse top-k operator.
	if q.Eps == 0 {
		raw := make([][]float64, len(ins.Pts))
		for i, p := range ins.Pts {
			raw[i] = p
		}
		ds, err := rrq.NewDataset(raw)
		if err != nil {
			rep.fail(Mismatch{Kind: "invariant-rtopk", Problem: prob, Detail: "NewDataset: " + err.Error()})
			return
		}
		rtk, err := rrq.ReverseTopK(ds, rrq.Point(q.Q), q.K)
		if err != nil {
			rep.fail(Mismatch{Kind: "invariant-rtopk", Problem: prob, Detail: "ReverseTopK: " + err.Error()})
			return
		}
		for _, u := range samples {
			if _, m := oracle.qualified(u); m < cfg.Margin {
				continue
			}
			rep.Checks++
			if base.Contains(u) != rtk.Contains(rrq.Vector(u)) {
				rep.fail(Mismatch{Kind: "invariant-rtopk", Solver: "E-PT", Problem: prob, U: u,
					Detail: "ε=0 region disagrees with public ReverseTopK"})
			}
		}
	}
}

// permutedPoints returns a deterministic shuffle of pts.
func permutedPoints(pts []vec.Vec, seed int64) []vec.Vec {
	out := make([]vec.Vec, len(pts))
	copy(out, pts)
	// Fisher-Yates driven by a small deterministic LCG: no global state.
	s := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := len(out) - 1; i > 0; i-- {
		s = s*6364136223846793005 + 1442695040888963407
		j := int(s % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func (rep *Report) fail(m Mismatch) {
	rep.Mismatches = append(rep.Mismatches, m)
}
