package diffcheck

import "testing"

// TestBatchSharedDifferentialSweep is the batch-sharing acceptance gate:
// across the full corpus, mixed-(k, ε) batches with duplicates solved with
// cross-query sharing must be byte-identical to independent per-query
// solves — prefilter on and off, and served from an index snapshot between
// interleaved mutations.
func TestBatchSharedDifferentialSweep(t *testing.T) {
	rep := RunBatchShared(Config{Seed: 20240805})

	if rep.Problems < 200 {
		t.Fatalf("ran %d problems, want ≥ 200", rep.Problems)
	}
	// Per problem: two fresh-Prepared batches plus 1 + BatchMutations
	// index-served batches, unless a mismatch aborts the problem early.
	if want := rep.Problems * (2 + 1 + BatchMutations); len(rep.Mismatches) == 0 && rep.Batches != want {
		t.Errorf("compared %d batches, want %d", rep.Batches, want)
	}
	if want := rep.Problems * BatchMutations; len(rep.Mismatches) == 0 && rep.Mutations != want {
		t.Errorf("applied %d mutations, want %d", rep.Mutations, want)
	}
	if rep.Queries == 0 {
		t.Error("no per-query comparisons ran")
	}
	for i, m := range rep.Mismatches {
		if i >= 5 {
			t.Errorf("... and %d more mismatches", len(rep.Mismatches)-5)
			break
		}
		t.Errorf("mismatch:\n%s", m.JSON())
	}
}

// TestRunBatchSharedDeterminism: identical configs must produce identical
// reports.
func TestRunBatchSharedDeterminism(t *testing.T) {
	cfg := Config{Seed: 13, Problems: 24}
	a, b := RunBatchShared(cfg), RunBatchShared(cfg)
	if a.Problems != b.Problems || a.Batches != b.Batches || a.Queries != b.Queries ||
		a.Mutations != b.Mutations || len(a.Mismatches) != len(b.Mismatches) {
		t.Fatalf("reports differ across identical runs: %+v vs %+v", a, b)
	}
}
