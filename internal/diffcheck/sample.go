package diffcheck

import (
	"math"
	"math/rand"

	"rrq/internal/vec"
)

// latticeRes is the composition resolution per dimension: all vectors
// (c₀+1, …, c_{d−1}+1)/(R+d) with Σcᵢ = R form a strictly interior simplex
// lattice of C(R+d−1, d−1) points. Resolutions are chosen so the grid stays
// in the low hundreds per problem.
var latticeRes = map[int]int{2: 40, 3: 12, 4: 8, 5: 6, 6: 5}

// sampleGrid returns the deterministic simplex lattice for dimension d plus
// extra seeded random interior samples.
func sampleGrid(d int, seed int64, extra int) []vec.Vec {
	res, ok := latticeRes[d]
	if !ok {
		res = 4
	}
	var out []vec.Vec
	comp := make([]int, d)
	var walk func(pos, left int)
	walk = func(pos, left int) {
		if pos == d-1 {
			comp[pos] = left
			u := vec.New(d)
			for j, c := range comp {
				u[j] = float64(c+1) / float64(res+d)
			}
			out = append(out, u)
			return
		}
		for c := 0; c <= left; c++ {
			comp[pos] = c
			walk(pos+1, left-c)
		}
	}
	walk(0, res)

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < extra; i++ {
		u := vec.New(d)
		sum := 0.0
		for j := range u {
			u[j] = -math.Log(1 - rng.Float64()) // Exp(1): Dirichlet(1,…,1) after normalizing
			sum += u[j]
		}
		for j := range u {
			u[j] /= sum
		}
		out = append(out, u)
	}
	return out
}
