package diffcheck

import "testing"

// TestIndexDifferentialSweep is the index acceptance gate: across the full
// corpus, index-served solves must be byte-identical to from-scratch solves,
// before and after every step of an interleaved Insert/Delete stream.
func TestIndexDifferentialSweep(t *testing.T) {
	rep := RunIndex(Config{Seed: 20240805})

	if rep.Problems < 200 {
		t.Fatalf("ran %d problems, want ≥ 200", rep.Problems)
	}
	if want := rep.Problems * MutationsPerProblem; rep.Mutations != want {
		t.Errorf("applied %d mutations, want %d", rep.Mutations, want)
	}
	if want := rep.Problems * (MutationsPerProblem + 1); rep.Solves != want {
		t.Errorf("compared %d solve pairs, want %d", rep.Solves, want)
	}
	for i, m := range rep.Mismatches {
		if i >= 5 {
			t.Errorf("... and %d more mismatches", len(rep.Mismatches)-5)
			break
		}
		t.Errorf("mismatch:\n%s", m.JSON())
	}
}

// TestRunIndexDeterminism: identical configs must produce identical reports.
func TestRunIndexDeterminism(t *testing.T) {
	cfg := Config{Seed: 11, Problems: 24}
	a, b := RunIndex(cfg), RunIndex(cfg)
	if a.Problems != b.Problems || a.Solves != b.Solves || a.Mutations != b.Mutations || len(a.Mismatches) != len(b.Mismatches) {
		t.Fatalf("reports differ across identical runs: %+v vs %+v", a, b)
	}
}
