package diffcheck

import "testing"

// TestAnytimeDifferentialSweep is the anytime acceptance gate: across the
// full 208-problem corpus, every streamed prefix of the progressive A-PC
// construction must be sound against the counting oracle, regions must be
// monotone across cuts, and the reported accuracy contract (sample
// accounting, Cut flag, Lemma 5.10 ρ bound) must hold.
func TestAnytimeDifferentialSweep(t *testing.T) {
	rep := RunAnytime(Config{Seed: 20260808})

	if rep.Problems < 200 {
		t.Fatalf("ran %d problems, want ≥ 200", rep.Problems)
	}
	// Every solvable problem contributes its full cut ladder (≥ 2 budgets
	// once N ≥ 8); the sweep must not silently degrade.
	if min := 2 * (rep.Problems - rep.SolveSkipped); rep.Cuts < min {
		t.Errorf("constructed %d cuts over %d solvable problems, want ≥ %d",
			rep.Cuts, rep.Problems-rep.SolveSkipped, min)
	}
	if rep.SampleChecks < 1000 {
		t.Errorf("only %d margin-guarded membership assertions ran, want ≥ 1000", rep.SampleChecks)
	}
	if rep.AccuracyChecks < rep.Cuts {
		t.Errorf("only %d accuracy assertions over %d cuts", rep.AccuracyChecks, rep.Cuts)
	}
	if rep.SolveSkipped > rep.Problems/2 {
		t.Errorf("construction failed on %d of %d problems — the sweep lost most of its coverage",
			rep.SolveSkipped, rep.Problems)
	}
	for i, m := range rep.Mismatches {
		if i >= 5 {
			t.Errorf("... and %d more mismatches", len(rep.Mismatches)-5)
			break
		}
		t.Errorf("mismatch:\n%s", m.JSON())
	}
}

// TestRunAnytimeDeterminism: identical configs must produce identical
// reports — a violation is a determinate counterexample, not sampling luck.
func TestRunAnytimeDeterminism(t *testing.T) {
	cfg := Config{Seed: 17, Problems: 24}
	a, b := RunAnytime(cfg), RunAnytime(cfg)
	if a.Problems != b.Problems || a.Cuts != b.Cuts ||
		a.SampleChecks != b.SampleChecks || a.AccuracyChecks != b.AccuracyChecks ||
		len(a.Mismatches) != len(b.Mismatches) {
		t.Fatalf("reports differ across identical runs: %+v vs %+v", a, b)
	}
}
