package diffcheck

// Anytime differential harness: the progressive A-PC construction must be
// sound at every cut, monotone across cuts, and honest about its accuracy
// contract. For every corpus problem, the construction is cut at a ladder
// of deterministic sample budgets (N/4, N/2, 3N/4, N) and each prefix is
// checked:
//
//   - soundness: no cut's region may contain a preference the half-space
//     counting oracle rejects (margin-guarded) — the one-sided guarantee
//     every A-PC answer carries, enforced on every streamed prefix, not
//     just the full run;
//   - monotonicity: a longer prefix must contain every sampled member of a
//     shorter one and may never shrink its piece count — the property that
//     makes the anytime tier cuttable at any partition boundary;
//   - accuracy accounting: SamplesUsed must respect the budget, the Cut
//     flag must reflect whether the budget truncated the run, and the
//     reported ρ must equal the Lemma 5.10 inversion for the samples
//     actually consumed, non-increasing along the ladder;
//   - ρ-bound honesty: on the full run, the fraction of margin-guarded
//     qualified samples the region fails to cover must stay within the
//     reported ρ bound (plus sampling slack) — the empirical form of the
//     Lemma 5.10 claim that qualified regions of volume ratio ≥ ρ are
//     covered with probability 1 − δ.
//
// Seeds are pure functions of the config, so a violation is a determinate
// counterexample, not sampling luck.

import (
	"context"
	"fmt"

	"rrq/internal/core"
	"rrq/internal/diffcheck/corpus"
)

// AnytimeReport is the outcome of an anytime differential run.
type AnytimeReport struct {
	// Problems is the number of corpus problems checked.
	Problems int
	// Cuts counts the (problem, budget) prefixes constructed.
	Cuts int
	// SampleChecks counts individual margin-guarded membership assertions.
	SampleChecks int
	// AccuracyChecks counts accuracy-contract assertions (budget respected,
	// ρ inversion, Cut flag, ρ honesty).
	AccuracyChecks int
	// SolveSkipped counts problems abandoned because a construction failed
	// outright; the error is reported as a mismatch.
	SolveSkipped int
	// Mismatches holds every disagreement.
	Mismatches []Mismatch
}

func (rep *AnytimeReport) fail(m Mismatch) {
	rep.Mismatches = append(rep.Mismatches, m)
}

// RunAnytime executes the anytime differential harness over the same corpus
// enumeration as Run. Like Run it never panics on a mismatch; callers (the
// test suite, the CI sweep) decide how to fail.
func RunAnytime(cfg Config) AnytimeReport {
	cfg = cfg.withDefaults()
	var rep AnytimeReport
	dims := []int{2, 3, 4, 5, 6}
	for i := 0; i < cfg.Problems; i++ {
		fam := byte(i % corpus.NumFamilies)
		dim := dims[(i/corpus.NumFamilies)%len(dims)]
		data := corpus.Encode(fam, dim, 3+i%10, 1+i%4, i%7, cfg.Seed+int64(i)*7919)
		ins, ok := corpus.DecodeDim(data, dim)
		if !ok {
			continue
		}
		rep.Problems++
		checkAnytimeProblem(cfg, ins, int64(i), &rep)
	}
	return rep
}

// anytimeCutLadder returns the deterministic sample budgets a problem is
// cut at: quarters of the full run, deduplicated and ascending, ending at
// the full sample count (which must run uncut).
func anytimeCutLadder(n int) []int {
	var cuts []int
	for _, c := range []int{n / 4, n / 2, 3 * n / 4, n} {
		if c < 1 {
			c = 1
		}
		if len(cuts) > 0 && c <= cuts[len(cuts)-1] {
			continue
		}
		cuts = append(cuts, c)
	}
	return cuts
}

// checkAnytimeProblem cuts the construction at each ladder budget and
// applies the prefix checks.
func checkAnytimeProblem(cfg Config, ins corpus.Instance, ordinal int64, rep *AnytimeReport) {
	ctx := context.Background()
	d := ins.Q.Dim()
	q := core.Query{Q: ins.Q, K: ins.K, Eps: ins.Eps}
	prob := newProblem(ins)
	oracle := newPlaneOracle(ins.Pts, q)
	samples := sampleGrid(d, cfg.Seed^(ordinal*104729+29), cfg.RandSamples)
	seed := cfg.Seed + ordinal

	n := cfg.APCSamples
	cuts := anytimeCutLadder(n)
	var prev *core.Region
	var prevPieces, prevCut int
	var prevRho float64
	for _, cut := range cuts {
		region, _, acc, err := core.APCAnytimeContext(ctx, ins.Pts, q, core.AnytimeOptions{
			Samples:    n,
			Seed:       seed,
			MaxSamples: cut,
		})
		if err != nil {
			rep.SolveSkipped++
			rep.fail(Mismatch{Kind: "anytime-error", Solver: "A-PC-anytime", Problem: prob,
				Detail: fmt.Sprintf("cut %d: %v", cut, err)})
			return
		}
		rep.Cuts++

		// Accuracy accounting: the budget is a hard ceiling, the Cut flag
		// tells truncated prefixes from the natural end of the stream, and
		// ρ is the Lemma 5.10 inversion for the consumed samples.
		rep.AccuracyChecks += 3
		if acc.SamplesUsed > cut {
			rep.fail(Mismatch{Kind: "anytime-accuracy", Solver: "A-PC-anytime", Problem: prob,
				Detail: fmt.Sprintf("budget %d but %d samples consumed", cut, acc.SamplesUsed)})
		}
		if wantCut := cut < n; acc.Cut != wantCut {
			rep.fail(Mismatch{Kind: "anytime-accuracy", Solver: "A-PC-anytime", Problem: prob,
				Detail: fmt.Sprintf("budget %d of %d: Cut=%v, want %v", cut, n, acc.Cut, wantCut)})
		}
		if want := core.RhoFor(acc.SamplesUsed, acc.Delta, d); acc.RhoBound != want {
			rep.fail(Mismatch{Kind: "anytime-accuracy", Solver: "A-PC-anytime", Problem: prob,
				Detail: fmt.Sprintf("ρ=%v for %d samples, want RhoFor=%v", acc.RhoBound, acc.SamplesUsed, want)})
		}
		if prev != nil {
			rep.AccuracyChecks++
			if acc.RhoBound > prevRho {
				rep.fail(Mismatch{Kind: "anytime-accuracy", Solver: "A-PC-anytime", Problem: prob,
					Detail: fmt.Sprintf("ρ grew from %v (budget %d) to %v (budget %d)", prevRho, prevCut, acc.RhoBound, cut)})
			}
		}

		// Soundness of the prefix: one-sided A-PC guarantee on the grid.
		for _, u := range samples {
			want, margin := oracle.qualified(u)
			if margin < cfg.Margin {
				continue
			}
			rep.SampleChecks++
			if region.Contains(u) && !want {
				rep.fail(Mismatch{Kind: "anytime-soundness", Solver: "A-PC-anytime", Problem: prob, U: u,
					Detail: fmt.Sprintf("cut at %d samples contains unqualified preference (margin %.3g)", cut, margin)})
			}
		}

		// Monotonicity across consecutive cuts: membership and piece count.
		if prev != nil {
			rep.AccuracyChecks++
			if region.NumPieces() < prevPieces {
				rep.fail(Mismatch{Kind: "anytime-monotone", Solver: "A-PC-anytime", Problem: prob,
					Detail: fmt.Sprintf("pieces shrank from %d (budget %d) to %d (budget %d)",
						prevPieces, prevCut, region.NumPieces(), cut)})
			}
			for _, u := range samples {
				if _, margin := oracle.qualified(u); margin < cfg.Margin {
					continue
				}
				rep.SampleChecks++
				if prev.Contains(u) && !region.Contains(u) {
					rep.fail(Mismatch{Kind: "anytime-monotone", Solver: "A-PC-anytime", Problem: prob, U: u,
						Detail: fmt.Sprintf("member at budget %d lost at budget %d", prevCut, cut)})
				}
			}
		}
		prev, prevPieces, prevCut, prevRho = region, region.NumPieces(), cut, acc.RhoBound

		// ρ-bound honesty on the full run: the uncovered qualified fraction
		// of the margin-guarded grid must stay within the reported bound.
		// The grid is itself a sample, so allow its own estimation slack on
		// top of ρ before declaring a violation.
		if cut == n {
			qualified, uncovered := 0, 0
			total := 0
			for _, u := range samples {
				want, margin := oracle.qualified(u)
				if margin < cfg.Margin {
					continue
				}
				total++
				if want {
					qualified++
					if !region.Contains(u) {
						uncovered++
					}
				}
			}
			if total > 0 {
				rep.AccuracyChecks++
				frac := float64(uncovered) / float64(total)
				slack := 2.0 / float64(total) // a couple of grid points of noise
				if frac > acc.RhoBound+slack {
					rep.fail(Mismatch{Kind: "anytime-rho", Solver: "A-PC-anytime", Problem: prob,
						Detail: fmt.Sprintf("uncovered qualified fraction %.4f (%d/%d) exceeds ρ=%.4f",
							frac, uncovered, total, acc.RhoBound)})
				}
			}
		}
	}
}
