package diffcheck

// Batch-sharing differential harness: the batch engine's cross-query
// sharing (shared skyband substrate, per-(point, ε) plane groups, duplicate
// collapse, clustered dispatch, worker arenas) must be invisible in the
// answers. For every corpus problem, a mixed-(k, ε) batch with exact
// duplicates solved through SolveBatchOptions with sharing on must be
// byte-identical — same JSON encoding, not merely same membership — to
// independent per-query solves, with the prefilter both on and off, and
// with batches served from an index snapshot between interleaved
// Insert/Delete mutations.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"rrq/internal/core"
	"rrq/internal/diffcheck/corpus"
	"rrq/internal/index"
	"rrq/internal/vec"
)

// BatchReport is the outcome of a batch-sharing differential run.
type BatchReport struct {
	// Problems is the number of corpus problems checked.
	Problems int
	// Batches is the number of shared-batch dispatches compared.
	Batches int
	// Queries is the total number of per-query byte comparisons.
	Queries int
	// Mutations is the number of index Insert/Delete steps applied between
	// index-served batches.
	Mutations int
	// Mismatches holds every disagreement.
	Mismatches []Mismatch
}

// BatchMutations is the length of the interleaved mutation stream applied
// between index-served batches per corpus problem.
const BatchMutations = 3

// RunBatchShared executes the batch-sharing differential harness over the
// same corpus enumeration as Run and RunIndex. Like them it never panics on
// a mismatch; callers decide how to fail.
func RunBatchShared(cfg Config) BatchReport {
	cfg = cfg.withDefaults()
	var rep BatchReport
	dims := []int{2, 3, 4, 5, 6}
	for i := 0; i < cfg.Problems; i++ {
		fam := byte(i % corpus.NumFamilies)
		dim := dims[(i/corpus.NumFamilies)%len(dims)]
		data := corpus.Encode(fam, dim, 3+i%10, 1+i%4, i%7, cfg.Seed+int64(i)*7919)
		ins, ok := corpus.DecodeDim(data, dim)
		if !ok {
			continue
		}
		rep.Problems++
		checkBatchProblem(cfg, ins, int64(i), &rep)
	}
	return rep
}

// batchVariants derives a mixed batch from one corpus instance: the
// instance query at neighbouring ranks and ε values (nested and disjoint
// plane groups), a second query point, and exact duplicates so the dedup
// path runs on every problem.
func batchVariants(ins corpus.Instance, rng *rand.Rand) []core.Query {
	base := core.Query{Q: ins.Q, K: ins.K, Eps: ins.Eps}
	out := []core.Query{base}
	for _, dk := range []int{-1, 1, 2} {
		if k := ins.K + dk; k >= 1 {
			out = append(out, core.Query{Q: ins.Q, K: k, Eps: ins.Eps})
		}
	}
	out = append(out, core.Query{Q: ins.Q, K: ins.K, Eps: ins.Eps / 2})
	// A distinct query point: a perturbed copy clamped to the open domain.
	p2 := ins.Q.Clone()
	for j := range p2 {
		p2[j] = clamp01(p2[j] + (rng.Float64()-0.5)*0.1)
	}
	out = append(out, core.Query{Q: p2, K: ins.K, Eps: ins.Eps})
	// Exact duplicates of the first and last distinct queries.
	out = append(out, out[0], out[len(out)-1])
	return out
}

func clamp01(x float64) float64 {
	if x < 0.01 {
		return 0.01
	}
	if x > 1 {
		return 1
	}
	return x
}

// checkBatchProblem compares shared-batch solves against independent
// per-query solves on fresh Prepareds (prefilter on and off), then against
// an index snapshot's Prepared with mutations interleaved between batches.
func checkBatchProblem(cfg Config, ins corpus.Instance, ordinal int64, rep *BatchReport) {
	d := ins.Q.Dim()
	rng := rand.New(rand.NewSource(cfg.Seed ^ (ordinal*48611 + 7)))
	queries := batchVariants(ins, rng)
	prob := newProblem(ins)

	for _, prefilter := range []bool{true, false} {
		prep, err := core.Prepare(ins.Pts, d, prefilter)
		if err != nil {
			rep.fail(Mismatch{Kind: "batch-prepare-error", Problem: prob, Detail: err.Error()})
			return
		}
		step := fmt.Sprintf("prefilter=%v", prefilter)
		if !compareBatchSolve(prep, queries, prob, step, rep) {
			return
		}
	}

	// Index-served batches with interleaved mutations: the snapshot path
	// bypasses the batch plane store (its own storage already deduplicates)
	// but still runs under dedup, clustering and worker arenas.
	ix, err := index.Build(ins.Pts, d, index.Options{})
	if err != nil {
		rep.fail(Mismatch{Kind: "batch-index-build-error", Problem: prob, Detail: err.Error()})
		return
	}
	cur := append([]vec.Vec(nil), ins.Pts...)
	if !compareBatchIndex(ix, cur, d, queries, prob, "index initial", rep) {
		return
	}
	for op := 0; op < BatchMutations; op++ {
		var step string
		if rng.Intn(2) == 0 && len(cur) > 3 {
			i := rng.Intn(len(cur))
			step = fmt.Sprintf("index op %d: delete %d", op, i)
			if _, err := ix.Delete(i); err != nil {
				rep.fail(Mismatch{Kind: "batch-index-maintain-error", Problem: prob, Detail: step + ": " + err.Error()})
				return
			}
			cur = append(cur[:i], cur[i+1:]...)
		} else {
			p := vec.New(d)
			for j := range p {
				p[j] = 0.05 + 0.95*rng.Float64()
			}
			step = fmt.Sprintf("index op %d: insert", op)
			if _, err := ix.Insert(p); err != nil {
				rep.fail(Mismatch{Kind: "batch-index-maintain-error", Problem: prob, Detail: step + ": " + err.Error()})
				return
			}
			cur = append(cur, p)
		}
		rep.Mutations++
		if !compareBatchIndex(ix, cur, d, queries, prob, step, rep) {
			return
		}
	}
}

// compareBatchIndex runs the shared batch over the index snapshot's
// Prepared and compares every slot against an independent solve on a fresh
// prefiltered Prepared over the mirrored points.
func compareBatchIndex(ix *index.Index, cur []vec.Vec, d int, queries []core.Query, prob Problem, step string, rep *BatchReport) bool {
	fresh, err := core.Prepare(cur, d, true)
	if err != nil {
		rep.fail(Mismatch{Kind: "batch-index-divergence", Problem: prob, Detail: step + ": fresh prepare failed: " + err.Error()})
		return false
	}
	return compareBatchAgainst(ix.Snapshot().Prepared(nil), fresh, queries, prob, step, rep)
}

// compareBatchSolve compares the shared batch against independent solves on
// the same Prepared.
func compareBatchSolve(prep *core.Prepared, queries []core.Query, prob Problem, step string, rep *BatchReport) bool {
	return compareBatchAgainst(prep, prep, queries, prob, step, rep)
}

// compareBatchAgainst dispatches queries through SolveBatchOptions with
// sharing, dedup and multiple workers over batchPrep, and requires every
// slot to match a plain independent solve over wantPrep byte-for-byte
// (errors must agree too).
func compareBatchAgainst(batchPrep, wantPrep *core.Prepared, queries []core.Query, prob Problem, step string, rep *BatchReport) bool {
	rep.Batches++
	solver := core.EPTSolver{}
	outs := core.SolveBatchOptions(context.Background(), core.SolvePolicy{Solver: solver}, batchPrep, queries,
		core.BatchOptions{Workers: 3, Share: true, Dedup: true})
	ok := true
	for i, o := range outs {
		rep.Queries++
		want, _, wantErr := solver.Solve(context.Background(), wantPrep, queries[i])
		if (o.Err == nil) != (wantErr == nil) {
			rep.fail(Mismatch{Kind: "batch-divergence", Problem: prob,
				Detail: fmt.Sprintf("%s query %d: error mismatch: batch=%v independent=%v", step, i, o.Err, wantErr)})
			ok = false
			continue
		}
		if o.Err != nil {
			continue // both failed identically
		}
		got, err := o.Region.MarshalJSON()
		if err != nil {
			rep.fail(Mismatch{Kind: "batch-divergence", Problem: prob,
				Detail: fmt.Sprintf("%s query %d: marshal batch region: %v", step, i, err)})
			ok = false
			continue
		}
		wb, err := want.MarshalJSON()
		if err != nil {
			rep.fail(Mismatch{Kind: "batch-divergence", Problem: prob,
				Detail: fmt.Sprintf("%s query %d: marshal independent region: %v", step, i, err)})
			ok = false
			continue
		}
		if !bytes.Equal(got, wb) {
			rep.fail(Mismatch{Kind: "batch-divergence", Problem: prob,
				Detail: fmt.Sprintf("%s query %d (k=%d eps=%g): shared batch region differs from independent solve\n got: %s\nwant: %s",
					step, i, queries[i].K, queries[i].Eps, got, wb)})
			ok = false
		}
	}
	return ok
}

func (rep *BatchReport) fail(m Mismatch) {
	rep.Mismatches = append(rep.Mismatches, m)
}
