package diffcheck

// Index differential harness: the snapshot index must be invisible in the
// answers. For every corpus problem, a solve served from an index snapshot
// (maintained skyband prefilter, shared plane storage) must be byte-identical
// — same JSON encoding, not merely same membership — to a from-scratch solve
// with the skyband prefilter enabled, both before and after every step of an
// interleaved Insert/Delete stream mirrored against plain-slice bookkeeping.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"rrq/internal/core"
	"rrq/internal/diffcheck/corpus"
	"rrq/internal/index"
	"rrq/internal/vec"
)

// IndexReport is the outcome of an index differential run.
type IndexReport struct {
	// Problems is the number of corpus problems checked.
	Problems int
	// Solves is the number of index-served/from-scratch solve pairs compared.
	Solves int
	// Mutations is the number of Insert/Delete steps applied across all
	// problems (each is followed by a fresh comparison).
	Mutations int
	// Mismatches holds every disagreement, including maintenance errors.
	Mismatches []Mismatch
}

// MutationsPerProblem is the length of the interleaved Insert/Delete stream
// applied to every corpus problem in RunIndex.
const MutationsPerProblem = 6

// RunIndex executes the index differential harness over the same corpus
// enumeration as Run and returns its report. Like Run it never panics on a
// mismatch; callers decide how to fail.
func RunIndex(cfg Config) IndexReport {
	cfg = cfg.withDefaults()
	var rep IndexReport
	dims := []int{2, 3, 4, 5, 6}
	for i := 0; i < cfg.Problems; i++ {
		fam := byte(i % corpus.NumFamilies)
		dim := dims[(i/corpus.NumFamilies)%len(dims)]
		data := corpus.Encode(fam, dim, 3+i%10, 1+i%4, i%7, cfg.Seed+int64(i)*7919)
		ins, ok := corpus.DecodeDim(data, dim)
		if !ok {
			continue
		}
		rep.Problems++
		checkIndexProblem(cfg, ins, int64(i), &rep)
	}
	return rep
}

// checkIndexProblem builds an index over one instance, compares the
// index-served answer with the from-scratch answer, then replays a
// deterministic interleaved mutation stream — deletions, duplicate
// insertions, fresh insertions — re-comparing after every step.
func checkIndexProblem(cfg Config, ins corpus.Instance, ordinal int64, rep *IndexReport) {
	d := ins.Q.Dim()
	q := core.Query{Q: ins.Q, K: ins.K, Eps: ins.Eps}
	prob := newProblem(ins)

	ix, err := index.Build(ins.Pts, d, index.Options{})
	if err != nil {
		rep.fail(Mismatch{Kind: "index-build-error", Problem: prob, Detail: err.Error()})
		return
	}
	cur := append([]vec.Vec(nil), ins.Pts...)
	if !compareIndexSolve(ix, cur, d, q, prob, "initial", rep) {
		return
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ (ordinal*65537 + 17)))
	for op := 0; op < MutationsPerProblem; op++ {
		var step string
		switch {
		case rng.Intn(3) == 0 && len(cur) > 3:
			i := rng.Intn(len(cur))
			step = fmt.Sprintf("op %d: delete %d", op, i)
			if _, err := ix.Delete(i); err != nil {
				rep.fail(Mismatch{Kind: "index-maintain-error", Problem: prob, Detail: step + ": " + err.Error()})
				return
			}
			cur = append(cur[:i], cur[i+1:]...)
		case rng.Intn(2) == 0:
			// Duplicate insertion: ties at the k-th rank are exactly where
			// delta maintenance can silently drift.
			p := cur[rng.Intn(len(cur))].Clone()
			step = fmt.Sprintf("op %d: insert duplicate", op)
			if _, err := ix.Insert(p); err != nil {
				rep.fail(Mismatch{Kind: "index-maintain-error", Problem: prob, Detail: step + ": " + err.Error()})
				return
			}
			cur = append(cur, p)
		default:
			p := vec.New(d)
			for j := range p {
				p[j] = 0.05 + 0.95*rng.Float64()
			}
			step = fmt.Sprintf("op %d: insert fresh", op)
			if _, err := ix.Insert(p); err != nil {
				rep.fail(Mismatch{Kind: "index-maintain-error", Problem: prob, Detail: step + ": " + err.Error()})
				return
			}
			cur = append(cur, p)
		}
		rep.Mutations++
		if !compareIndexSolve(ix, cur, d, q, prob, step, rep) {
			return
		}
	}
}

// compareIndexSolve solves q once through the index's current snapshot and
// once from scratch over the mirrored points, and requires byte-identical
// region encodings. Returns false when the problem should be abandoned.
func compareIndexSolve(ix *index.Index, cur []vec.Vec, d int, q core.Query, prob Problem, step string, rep *IndexReport) bool {
	rep.Solves++
	got, gotErr := regionBytes(ix.Snapshot().Prepared(nil), q)
	prep, err := core.Prepare(cur, d, true)
	if err != nil {
		rep.fail(Mismatch{Kind: "index-divergence", Problem: prob, Detail: step + ": fresh prepare failed: " + err.Error()})
		return false
	}
	want, wantErr := regionBytes(prep, q)
	if (gotErr == nil) != (wantErr == nil) {
		rep.fail(Mismatch{Kind: "index-divergence", Problem: prob,
			Detail: fmt.Sprintf("%s: error mismatch: index=%v fresh=%v", step, gotErr, wantErr)})
		return false
	}
	if gotErr != nil {
		return true // both failed identically; nothing to compare
	}
	if !bytes.Equal(got, want) {
		rep.fail(Mismatch{Kind: "index-divergence", Problem: prob,
			Detail: fmt.Sprintf("%s: index-served region differs from fresh solve\n got: %s\nwant: %s", step, got, want)})
		return false
	}
	return true
}

// regionBytes answers q over prep with the exact general-dimension solver and
// returns the region's canonical JSON encoding.
func regionBytes(prep *core.Prepared, q core.Query) ([]byte, error) {
	r, _, err := (core.EPTSolver{}).Solve(context.Background(), prep, q)
	if err != nil {
		return nil, err
	}
	return r.MarshalJSON()
}

func (rep *IndexReport) fail(m Mismatch) {
	rep.Mismatches = append(rep.Mismatches, m)
}
