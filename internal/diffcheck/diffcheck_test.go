package diffcheck

import (
	"math"
	"testing"

	"rrq/internal/diffcheck/corpus"
)

// TestDifferentialSweep is the acceptance gate: ≥ 200 generated problems
// covering every degenerate family, all six solvers exercised, zero
// mismatches of any kind.
func TestDifferentialSweep(t *testing.T) {
	rep := Run(Config{Seed: 20240805})

	if rep.Problems < 200 {
		t.Fatalf("ran %d problems, want ≥ 200", rep.Problems)
	}
	for fam := byte(0); fam < corpus.NumFamilies; fam++ {
		name := corpus.FamilyName(fam)
		if rep.PerFamily[name] == 0 {
			t.Errorf("family %q never generated", name)
		}
	}
	for _, s := range []string{"Sweeping", "E-PT", "A-PC", "BruteForce", "LP-CTA", "PBA+"} {
		if rep.SolverRuns[s] == 0 {
			t.Errorf("solver %q never ran", s)
		}
	}
	if rep.Checks < 10000 {
		t.Errorf("only %d checks evaluated; the sweep looks vacuous", rep.Checks)
	}
	for i, m := range rep.Mismatches {
		if i >= 5 {
			t.Errorf("... and %d more mismatches", len(rep.Mismatches)-5)
			break
		}
		t.Errorf("mismatch:\n%s", m.JSON())
	}
}

// TestRunDeterminism: identical configs must produce identical reports —
// the property that makes differential runs replayable.
func TestRunDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Problems: 24}
	a, b := Run(cfg), Run(cfg)
	if a.Problems != b.Problems || a.Checks != b.Checks || len(a.Mismatches) != len(b.Mismatches) {
		t.Fatalf("reports differ across identical runs: %+v vs %+v", a, b)
	}
}

func TestCorpusDecodeDeterministic(t *testing.T) {
	for _, data := range corpus.Seeds() {
		a, ok := corpus.Decode(data)
		if !ok {
			t.Fatalf("seed corpus entry failed to decode")
		}
		b, _ := corpus.Decode(data)
		if a.Family != b.Family || a.K != b.K || a.Eps != b.Eps || len(a.Pts) != len(b.Pts) {
			t.Fatalf("decode is not deterministic: %+v vs %+v", a, b)
		}
		for i := range a.Pts {
			if !a.Pts[i].Equal(b.Pts[i], 0) {
				t.Fatalf("decode is not deterministic at point %d", i)
			}
		}
		d := a.Q.Dim()
		for _, p := range append(append([]corpus.Instance{}, a)[0].Pts, a.Q) {
			if p.Dim() != d {
				t.Fatalf("mixed dimensions in decoded instance")
			}
			for _, x := range p {
				if !(x > 0) || math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("invalid coordinate %v in decoded instance", x)
				}
			}
		}
	}
}

func TestSampleGridOnSimplex(t *testing.T) {
	for d := 2; d <= 6; d++ {
		grid := sampleGrid(d, 42, 16)
		if len(grid) < 20 {
			t.Fatalf("d=%d: grid too small (%d)", d, len(grid))
		}
		for _, u := range grid {
			sum := 0.0
			for _, x := range u {
				if x <= 0 {
					t.Fatalf("d=%d: non-interior sample %v", d, u)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("d=%d: sample off simplex (sum=%v)", d, sum)
			}
		}
	}
}
