package diffcheck

import (
	"context"
	"encoding/json"

	"rrq/internal/baseline"
	"rrq/internal/core"
	"rrq/internal/diffcheck/corpus"
	"rrq/internal/vec"
)

// Problem is the JSON-serializable reproduction of one generated instance.
type Problem struct {
	Family string      `json:"family"`
	Pts    [][]float64 `json:"points"`
	Q      []float64   `json:"q"`
	K      int         `json:"k"`
	Eps    float64     `json:"eps"`
}

func newProblem(ins corpus.Instance) Problem {
	pts := make([][]float64, len(ins.Pts))
	for i, p := range ins.Pts {
		pts[i] = append([]float64(nil), p...)
	}
	return Problem{Family: ins.Family, Pts: pts, Q: append([]float64(nil), ins.Q...), K: ins.K, Eps: ins.Eps}
}

// Mismatch is one surviving disagreement: the check that failed, the solver
// involved, the (minimized) problem, and the offending utility vector.
type Mismatch struct {
	Kind    string  `json:"kind"`
	Solver  string  `json:"solver,omitempty"`
	Problem Problem `json:"problem"`
	U       vec.Vec `json:"u,omitempty"`
	Detail  string  `json:"detail"`
}

// JSON renders the mismatch as an indented reproduction dump, suitable for
// pasting straight into a regression test.
func (m Mismatch) JSON() string {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "marshal error: " + err.Error()
	}
	return string(b)
}

// solveByName re-answers a problem with one named solver, for minimization
// replays. The PBA+ index is rebuilt per call.
func solveByName(name string, pts []vec.Vec, q core.Query, cfg Config) (*core.Region, error) {
	ctx := context.Background()
	if name == "PBA+" {
		ix, err := baseline.BuildPBAContext(ctx, pts, q.K, cfg.PBAMaxNodes)
		if err != nil {
			return nil, err
		}
		return ix.QueryContext(ctx, q)
	}
	prep, err := core.Prepare(pts, q.Q.Dim(), false)
	if err != nil {
		return nil, err
	}
	var s core.Solver
	switch name {
	case "Sweeping":
		s = core.SweepingSolver{}
	case "E-PT":
		s = core.EPTSolver{}
	case "BruteForce":
		s = core.BruteForceSolver{MaxPlanes: 64}
	case "LP-CTA":
		s = baseline.LPCTASolver{}
	case "A-PC":
		s = core.APCSolver{Opt: core.APCOptions{Samples: cfg.APCSamples, Seed: cfg.Seed}}
	default:
		s = core.EPTSolver{}
	}
	region, _, err := s.Solve(ctx, prep, q)
	return region, err
}

// minimizeMembership greedily deletes dataset points while the membership
// disagreement between the named solver and the counting oracle at u
// persists, and returns the shrunken point set. Exact solvers disagree when
// membership differs in either direction; A-PC only when it over-claims.
func minimizeMembership(ins corpus.Instance, q core.Query, solver string, u vec.Vec, cfg Config) [][]float64 {
	exact := solver != "A-PC"
	fails := func(pts []vec.Vec) bool {
		if len(pts) == 0 {
			return false
		}
		oracle := newPlaneOracle(pts, q)
		want, m := oracle.qualified(u)
		if m < cfg.Margin {
			return false
		}
		region, err := solveByName(solver, pts, q, cfg)
		if err != nil {
			return false
		}
		got := region.Contains(u)
		if exact {
			return got != want
		}
		return got && !want
	}
	cur := append([]vec.Vec(nil), ins.Pts...)
	for improved := true; improved; {
		improved = false
		for i := 0; i < len(cur); i++ {
			cand := make([]vec.Vec, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if fails(cand) {
				cur = cand
				improved = true
				break
			}
		}
	}
	out := make([][]float64, len(cur))
	for i, p := range cur {
		out[i] = append([]float64(nil), p...)
	}
	return out
}
