package diffcheck

import (
	"math"

	"rrq/internal/core"
	"rrq/internal/geom"
	"rrq/internal/lp"
	"rrq/internal/vec"
)

// planeOracle is the membership ground truth: the half-space counting
// characterization of Lemma 3.5 evaluated directly on the classified plane
// arrangement. It mirrors the solvers' shared preprocessing — the same
// componentwise zero/base/crossing classification with geom.Tol, the same
// unit-normalized planes from geom.QueryPlane — but none of their region
// construction, so a disagreement isolates a bug in the geometric machinery
// (tree refinement, cell maintenance, LP cell trees) rather than in plane
// building.
//
// Margins are measured against unit normals, so the boundary skip is
// scale-free: a plane with a tiny raw normal (q ≈ (1−ε)p) does not poison
// the margin of every sample the way raw utility differences would.
type planeOracle struct {
	d        int
	k        int
	base     int
	crossing []geom.Hyperplane
}

func newPlaneOracle(pts []vec.Vec, q core.Query) *planeOracle {
	d := q.Q.Dim()
	o := &planeOracle{d: d, k: q.K}
	scale := 1 - q.Eps
	for i, p := range pts {
		neg, pos := false, false
		for j := 0; j < d; j++ {
			x := q.Q[j] - scale*p[j]
			if x > geom.Tol {
				pos = true
			} else if x < -geom.Tol {
				neg = true
			}
		}
		switch {
		case !neg:
			// Never negative over U, including the degenerate zero normal:
			// contributes 0 everywhere.
		case !pos:
			o.base++
		default:
			h, ok := geom.QueryPlane(q.Q, p, q.Eps, i)
			if ok {
				o.crossing = append(o.crossing, h)
			}
		}
	}
	return o
}

// count returns the number of negative half-spaces containing u together
// with the smallest |u·ĥ| over the crossing planes (unit normals). By
// Lemma 3.5 u qualifies iff count < k; samples with margin below the
// harness threshold sit on a decision boundary and are skipped.
func (o *planeOracle) count(u vec.Vec) (count int, margin float64) {
	count = o.base
	margin = math.Inf(1)
	for _, h := range o.crossing {
		v := h.Eval(u)
		if v < 0 {
			count++
		}
		if a := math.Abs(v); a < margin {
			margin = a
		}
	}
	return count, margin
}

// qualified reports membership with the margin attached.
func (o *planeOracle) qualified(u vec.Vec) (ok bool, margin float64) {
	c, m := o.count(u)
	return c < o.k, m
}

// lpAuditCell checks one returned region cell against the LP substrate:
// the cell's constraint system must be feasible over the simplex, and the
// LP witness plus the cell's own center must be qualified according to the
// counting oracle (boundary-marginal witnesses are skipped). A failure
// message is returned, or "" when the cell passes.
func lpAuditCell(o *planeOracle, c *geom.Cell, margin float64) string {
	cons := c.Constraints()
	normals := make([]vec.Vec, len(cons))
	signs := make([]int, len(cons))
	for i, con := range cons {
		normals[i] = con.H.Normal
		signs[i] = con.Sign
	}
	w, feasible := lp.SimplexFeasible(c.Dim(), normals, signs)
	if !feasible {
		return "cell constraint system is LP-infeasible"
	}
	for _, u := range []vec.Vec{w, c.Center()} {
		if ok, m := o.qualified(u); m >= margin && !ok {
			return "cell contains unqualified point " + u.String()
		}
	}
	return ""
}
