package diffcheck

import "testing"

// TestCacheDifferentialSweep is the cache acceptance gate: across the full
// 208-problem corpus, every exact cache hit must be byte-identical to a
// from-scratch solve, and every bound served from a cached neighbor must be
// a sound inner/outer bound of the true region under the monotonicity
// invariant, with stale epochs never served.
func TestCacheDifferentialSweep(t *testing.T) {
	rep := RunCache(Config{Seed: 20240805})

	if rep.Problems < 200 {
		t.Fatalf("ran %d problems, want ≥ 200", rep.Problems)
	}
	if rep.ExactChecks == 0 {
		t.Fatal("no exact-hit byte comparisons ran")
	}
	// Every problem whose reference solve succeeds exercises at least the
	// outer-bound scenario; the sweep must not silently degrade into a
	// handful of checks.
	if min := rep.Problems - rep.SolveSkipped; rep.BoundChecks < min {
		t.Errorf("ran %d bound scenarios over %d solvable problems, want ≥ %d",
			rep.BoundChecks, min, min)
	}
	if rep.SampleChecks < 1000 {
		t.Errorf("only %d margin-guarded membership assertions ran, want ≥ 1000", rep.SampleChecks)
	}
	if rep.SolveSkipped > rep.Problems/2 {
		t.Errorf("reference solve failed on %d of %d problems — the sweep lost most of its coverage",
			rep.SolveSkipped, rep.Problems)
	}
	for i, m := range rep.Mismatches {
		if i >= 5 {
			t.Errorf("... and %d more mismatches", len(rep.Mismatches)-5)
			break
		}
		t.Errorf("mismatch:\n%s", m.JSON())
	}
}

// TestRunCacheDeterminism: identical configs must produce identical reports.
func TestRunCacheDeterminism(t *testing.T) {
	cfg := Config{Seed: 11, Problems: 24}
	a, b := RunCache(cfg), RunCache(cfg)
	if a.Problems != b.Problems || a.ExactChecks != b.ExactChecks ||
		a.BoundChecks != b.BoundChecks || a.SampleChecks != b.SampleChecks ||
		len(a.Mismatches) != len(b.Mismatches) {
		t.Fatalf("reports differ across identical runs: %+v vs %+v", a, b)
	}
}
