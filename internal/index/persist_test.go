package index

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rrq/internal/faultinject"
	"rrq/internal/vec"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	pts := []vec.Vec{
		{0.9, 0.2, 0.3}, {0.4, 0.8, 0.1}, {0.2, 0.3, 0.9}, {0.7, 0.7, 0.2}, {0.5, 0.5, 0.5},
	}
	ix, err := Build(pts, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func saved(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func wantPersistError(t *testing.T, err error, reason PersistReason) {
	t.Helper()
	var pe *PersistError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T), want *PersistError", err, err)
	}
	if pe.Reason != reason {
		t.Fatalf("PersistError reason %q, want %q (%v)", pe.Reason, reason, pe)
	}
}

// TestLoadRejectsBitFlip is the regression for the headerless format: a
// single flipped bit anywhere in the file must be caught by the header
// checks, never decoded as data.
func TestLoadRejectsBitFlip(t *testing.T) {
	raw := saved(t, buildTestIndex(t))
	for _, off := range []int{0, 5, 9, 13, 17, persistHeaderLen, persistHeaderLen + 7, len(raw) - 1} {
		flipped := append([]byte(nil), raw...)
		flipped[off] ^= 0x10
		if _, err := Load(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("bit flip at offset %d accepted by Load", off)
		} else {
			var pe *PersistError
			if !errors.As(err, &pe) {
				t.Fatalf("bit flip at offset %d: error %T, want *PersistError", off, err)
			}
		}
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("GOBBLEDYGOOK and then some")))
	wantPersistError(t, err, PersistBadMagic)
}

func TestLoadRejectsFutureFormat(t *testing.T) {
	raw := saved(t, buildTestIndex(t))
	raw[8] = 0xFF // format field low byte
	_, err := Load(bytes.NewReader(raw))
	wantPersistError(t, err, PersistFutureFormat)
}

func TestLoadRejectsChecksumMismatch(t *testing.T) {
	raw := saved(t, buildTestIndex(t))
	raw[persistHeaderLen+3] ^= 0x01 // payload byte
	_, err := Load(bytes.NewReader(raw))
	wantPersistError(t, err, PersistChecksum)
}

func TestLoadRejectsTruncation(t *testing.T) {
	raw := saved(t, buildTestIndex(t))
	for _, cut := range []int{3, persistHeaderLen - 1, persistHeaderLen + 10, len(raw) - 1} {
		_, err := Load(bytes.NewReader(raw[:cut]))
		wantPersistError(t, err, PersistTruncated)
	}
}

// TestLoadCompatReadsLegacyGob: the pre-header format (raw gob of
// indexFile with Format 1) loads only through the compat escape hatch.
func TestLoadCompatReadsLegacyGob(t *testing.T) {
	legacy := indexFile{
		Format:  1,
		Version: 7,
		Dim:     3,
		Kmax:    8,
		Pts:     [][]float64{{0.9, 0.2, 0.3}, {0.4, 0.8, 0.1}, {0.2, 0.3, 0.9}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	_, err := Load(bytes.NewReader(raw))
	wantPersistError(t, err, PersistBadMagic)

	ix, err := LoadCompat(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("LoadCompat: %v", err)
	}
	if ix.Version() != 7 || ix.Len() != 3 || ix.Dim() != 3 || ix.Kmax() != 8 {
		t.Fatalf("legacy load: version %d len %d dim %d kmax %d", ix.Version(), ix.Len(), ix.Dim(), ix.Kmax())
	}
	// The current format also loads through LoadCompat.
	if _, err := LoadCompat(bytes.NewReader(saved(t, buildTestIndex(t)))); err != nil {
		t.Fatalf("LoadCompat on current format: %v", err)
	}
}

func TestSaveFileAtomicAndLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.ckpt")
	ix := buildTestIndex(t)
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() || loaded.Version() != ix.Version() {
		t.Fatalf("LoadFile: len %d version %d", loaded.Len(), loaded.Version())
	}
	// Overwrite must leave no temp residue.
	if _, err := ix.Insert(vec.Vec{0.3, 0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries after overwrite, want 1", len(ents))
	}
	if re, err := LoadFile(path, false); err != nil || re.Version() != 2 {
		t.Fatalf("reload after overwrite: version %v err %v", re.Version(), err)
	}
}

// TestSaveFileRenameFault: a fault in the atomicity window must leave the
// previous checkpoint untouched and no temp files behind.
func TestSaveFileRenameFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.ckpt")
	ix := buildTestIndex(t)
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(vec.Vec{0.3, 0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("rename blocked")
	in := faultinject.New(&faultinject.Fault{Point: faultinject.CheckpointRename, Err: boom, Times: 1})
	if err := ix.saveFile(path, in); !errors.Is(err, boom) {
		t.Fatalf("faulted save error = %v, want %v", err, boom)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries after faulted save, want 1", len(ents))
	}
	old, err := LoadFile(path, false)
	if err != nil || old.Version() != 1 {
		t.Fatalf("previous checkpoint damaged: version %v err %v", old.Version(), err)
	}
}
