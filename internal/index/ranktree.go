package index

import (
	"context"
	"fmt"

	"rrq/internal/core"
	"rrq/internal/geom"
	"rrq/internal/obs"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// RankTree is the rank-level tree generalized from the PBA+ (T-LevelIndex)
// baseline: a tree over the utility space in which every node at depth i
// stores a partition together with the point that ranks i-th on it. Built
// once per snapshot (to kmax levels), it answers any (q, k ≤ kmax, ε)
// query by a top-down search that never touches the dataset again.
// Materializing the rank arrangement level by level is the expensive
// preprocessing the paper reports (>10⁴ seconds at scale); the MaxNodes
// budget makes that explosion explicit instead of silent.
//
// The baseline package's PBAIndex delegates here; the index snapshot holds
// a second instance under its own metric prefix. prefix parameterizes the
// phase-timer and counter names ("pba" keeps the baseline's historical
// names, "index.ranktree" labels snapshot-served queries), so
// index-vs-rebuild comparisons line up in one registry.
type RankTree struct {
	dim    int
	kmax   int
	pts    []vec.Vec
	root   *rtNode
	nextID int
	prefix string

	// Nodes is the number of tree nodes materialized.
	Nodes int
	// Clips counts hyper-plane clip operations during preprocessing, the
	// dominant cost unit; it is budgeted alongside Nodes.
	Clips    int
	maxClips int
	check    *core.CtxChecker
}

type rtNode struct {
	cell     *geom.Cell
	point    int // index into pts of the point ranked at this depth; -1 at root
	depth    int
	children []*rtNode
}

// ErrTreeBudget is returned when rank-tree preprocessing exceeds its node
// budget — the analogue of the paper omitting PBA+ results past 10⁴
// seconds.
var ErrTreeBudget = fmt.Errorf("index: rank-tree preprocessing exceeded its node budget")

// maxTreeVerts bounds the maintained vertex count of any cell during
// preprocessing; beyond it, clip cost grows quadratically out of any
// budget's reach.
const maxTreeVerts = 5000

// BuildRankTree preprocesses pts into a rank-level tree supporting queries
// with k ≤ kmax. Points outside the kmax-skyband can never appear in any
// top-kmax result and are pruned first. maxNodes caps materialization
// (0 = 200000). A passed deadline aborts with core.ErrDeadline,
// cancellation with ctx.Err(), both observed with an amortized check per
// preprocessing clip. prefix names the phase timers and counters.
func BuildRankTree(ctx context.Context, pts []vec.Vec, kmax, maxNodes int, prefix string) (*RankTree, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("index: empty dataset")
	}
	d := pts[0].Dim()
	if d < 2 {
		return nil, fmt.Errorf("index: dimension %d < 2", d)
	}
	if kmax < 1 {
		return nil, fmt.Errorf("index: kmax %d < 1", kmax)
	}
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	band := skyband.KSkyband(pts, kmax)
	t := &RankTree{
		dim:      d,
		kmax:     kmax,
		pts:      skyband.Select(pts, band),
		prefix:   prefix,
		maxClips: 50 * maxNodes,
		check:    core.NewCtxChecker(ctx, 0x1ff),
	}
	t.root = &rtNode{cell: geom.NewSimplex(d), point: -1}
	t.Nodes = 1
	remaining := make([]int, len(t.pts))
	for i := range remaining {
		remaining[i] = i
	}
	buildPhase := t.check.Phase("phase." + prefix + ".build")
	if err := t.build(t.root, remaining, maxNodes); err != nil {
		return nil, err
	}
	buildPhase()
	return t, nil
}

// Kmax returns the highest rank the tree answers.
func (t *RankTree) Kmax() int { return t.kmax }

// build expands node n by the argmax decomposition over remaining: one
// child per point that ranks first somewhere inside n.cell.
func (t *RankTree) build(n *rtNode, remaining []int, maxNodes int) error {
	if n.depth == t.kmax || len(remaining) == 0 {
		return nil
	}
	// Only skyline points of the remaining set can rank first anywhere.
	// The skyline scan is real preprocessing work; charge it to the budget
	// so that huge instances fail fast instead of thrashing.
	t.Clips += len(remaining)
	if t.Clips > t.maxClips {
		return ErrTreeBudget
	}
	if t.check.Stop() {
		return t.check.Err()
	}
	cands := localSkyline(t.pts, remaining)
	for _, p := range cands {
		cell := n.cell
		dead := false
		for _, other := range remaining {
			if other == p {
				continue
			}
			w := t.pts[p].Sub(t.pts[other])
			if w.Norm() < vec.Eps {
				// Exact duplicate: the smaller index represents the tie.
				if other < p {
					dead = true
					break
				}
				continue
			}
			t.nextID++
			t.Clips++
			if t.Clips > t.maxClips {
				return ErrTreeBudget
			}
			if t.check.Stop() {
				return t.check.Err()
			}
			h := geom.NewHyperplane(w, t.nextID)
			cell = cell.Clip(h, +1)
			if cell == nil {
				dead = true
				break
			}
			// Near-parallel rank planes can make the maintained vertex
			// superset explode (see geom.Cell); a cell that large makes a
			// single further clip slower than any time budget, so treat it
			// as the preprocessing blow-up it is.
			if cell.NumVertices() > maxTreeVerts {
				return ErrTreeBudget
			}
		}
		if dead {
			continue
		}
		child := &rtNode{cell: cell, point: p, depth: n.depth + 1}
		t.check.Emit(obs.EvNodeSplit, 1)
		t.Nodes++
		if t.Nodes > maxNodes {
			return ErrTreeBudget
		}
		n.children = append(n.children, child)
		if err := t.build(child, without(remaining, p), maxNodes); err != nil {
			return err
		}
	}
	return nil
}

// localSkyline returns the members of idx whose points are not dominated by
// another member, via the sort-based skyline of the skyband package.
func localSkyline(pts []vec.Vec, idx []int) []int {
	sub := make([]vec.Vec, len(idx))
	for i, j := range idx {
		sub[i] = pts[j]
	}
	sky := skyband.Skyline(sub)
	out := make([]int, len(sky))
	for i, s := range sky {
		out[i] = idx[s]
	}
	return out
}

func without(xs []int, x int) []int {
	out := make([]int, 0, len(xs)-1)
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// QueryContext answers an RRQ with the prebuilt tree: a top-down search
// that compares the query point against each partition's ranked point. A
// partition already dominated by q at some level is returned whole without
// refinement (which is why the tree gets faster as ε grows); at depth k
// the partition is clipped by h_{q,p_k}.
//
// Observability: a trace hook attached to ctx receives a plane-built event
// for the h_{q,p} planes the search constructs and a piece-emitted event
// for the answer; a metrics registry times the search phase and maintains
// <prefix>.queries, <prefix>.nodes_visited and <prefix>.planes_built
// counters, so index-served and rebuilt-per-query paths compare directly
// in one -metrics dump.
func (t *RankTree) QueryContext(ctx context.Context, q core.Query) (*core.Region, error) {
	if err := q.Validate(t.dim); err != nil {
		return nil, err
	}
	if q.K > t.kmax {
		return nil, fmt.Errorf("index: query k=%d exceeds rank-tree kmax=%d", q.K, t.kmax)
	}
	check := core.NewCtxChecker(ctx, 0x3ff)
	reg := obs.RegistryFrom(ctx)
	if reg != nil {
		reg.Counter(t.prefix + ".queries").Inc()
	}
	if q.K > len(t.pts) {
		// Fewer points than k: every utility vector qualifies.
		check.Emit(obs.EvPieceEmitted, 1)
		return core.NewCellRegion(t.dim, []*geom.Cell{geom.NewSimplex(t.dim)}), nil
	}
	searchPhase := check.Phase("phase." + t.prefix + ".search")
	var cells []*geom.Cell
	visited, planesBuilt := 0, 0
	t.search(t.root, q, &cells, &visited, &planesBuilt)
	searchPhase()
	if reg != nil {
		reg.Counter(t.prefix + ".nodes_visited").Add(int64(visited))
		reg.Counter(t.prefix + ".planes_built").Add(int64(planesBuilt))
	}
	check.Emit(obs.EvPlaneBuilt, planesBuilt)
	check.Emit(obs.EvPieceEmitted, len(cells))
	if len(cells) == 0 {
		return core.EmptyRegion(t.dim), nil
	}
	return core.NewDisjointCellRegion(t.dim, cells), nil
}

func (t *RankTree) search(n *rtNode, q core.Query, out *[]*geom.Cell, visited, planesBuilt *int) {
	*visited++
	if n.point >= 0 {
		w := q.Q.AddScaled(-(1 - q.Eps), t.pts[n.point])
		if w.Norm() < vec.Eps {
			// q sits exactly on the scaled point: boundary, treat as
			// qualified at this level and keep descending to level k.
			if n.depth == q.K {
				*out = append(*out, n.cell)
				return
			}
		} else {
			*planesBuilt++
			h := geom.NewHyperplane(w, 1<<30+n.point)
			rel := n.cell.Relation(h)
			if rel == geom.RelPos {
				// q beats this level's point everywhere on the cell, so it
				// beats every deeper level too: accept without refinement.
				*out = append(*out, n.cell)
				return
			}
			if n.depth == q.K {
				switch rel {
				case geom.RelNeg:
					return
				default:
					if c := n.cell.Clip(h, +1); c != nil {
						*out = append(*out, c)
					}
					return
				}
			}
		}
	}
	for _, c := range n.children {
		t.search(c, q, out, visited, planesBuilt)
	}
}
