// Package index implements the served reverse-regret-query index: an
// immutable, version-stamped snapshot of a dataset together with the
// preprocessing every query used to rebuild from scratch — the exact
// dominator counts that answer any k-skyband prefilter, a deduplicated
// store of classified plane sets shared across queries, and the rank-level
// tree generalized from the PBA+ baseline.
//
// Mutations follow a copy-on-write epoch discipline: Insert and Delete
// build the next snapshot beside the current one and publish it with a
// single atomic pointer swap, so concurrent readers keep serving the epoch
// they loaded, race-free, for as long as they hold it. The k-skyband is
// maintained by delta: a snapshot stores the exact number of dominators of
// every point (not a count capped at some k), so an insertion only scans
// the new point against the dataset and a deletion only decrements the
// counts of the points the removed one dominated — membership in any
// k-skyband then is one comparison per point. Per-query derived state
// (plane sets, rank tree) is invalidated lazily: a new epoch simply starts
// with empty caches and rebuilds entries on first use.
//
// This package absorbs and retires core.Dynamic: where Dynamic re-ran the
// full arrangement walk after a deletion, an index snapshot re-serves the
// query through the maintained prefilter and shared plane storage, and any
// number of standing queries amortize the same maintenance work.
package index

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"rrq/internal/core"
	"rrq/internal/obs"
	"rrq/internal/skyband"
	"rrq/internal/vec"
	"rrq/internal/wal"
)

// DefaultKmax is the rank ceiling of the snapshot rank tree when Options
// leaves it zero. Queries with larger k still work — the exact dominator
// counts answer any k-skyband — they just cannot be served by the tree.
const DefaultKmax = 8

// Options configures an index build.
type Options struct {
	// Kmax is the highest rank the snapshot rank tree supports (default
	// DefaultKmax). It does not bound Solve's k: the skyband prefilter and
	// plane storage work for any k.
	Kmax int
	// TreeNodes is the rank-tree node budget (0 = the rank-tree default).
	// The tree is built lazily on first use; a build that exceeds the
	// budget is remembered as unavailable for the snapshot's lifetime.
	TreeNodes int
}

func (o Options) withDefaults() Options {
	if o.Kmax <= 0 {
		o.Kmax = DefaultKmax
	}
	return o
}

// Index is the mutable handle over a sequence of immutable snapshots.
// Readers call Snapshot (or the convenience accessors) and never block;
// writers are serialized by a mutex and publish each new epoch atomically.
type Index struct {
	opts   Options
	pstats planeStats // plane-cache traffic across every epoch

	mu   sync.Mutex // serializes Insert/Delete
	snap atomic.Pointer[Snapshot]

	// dur, once attached by OpenDurable, write-ahead-logs every mutation
	// before its epoch is published and checkpoints on a record cadence.
	dur *Durable
}

// planeStats is the index-lifetime plane-cache traffic, shared by every
// snapshot of one index so Stats survives epoch succession.
type planeStats struct {
	hits   atomic.Int64
	misses atomic.Int64
}

// Stats is a read-only introspection snapshot of an index: the current
// epoch and dataset shape, the lifetime plane-cache traffic, and the
// current snapshot's materialized derived state. It is what callers get
// without wiring a metrics registry.
type Stats struct {
	// Version is the current epoch number.
	Version uint64
	// Points is the current dataset size, Dim its dimension.
	Points int
	Dim    int
	// Kmax is the rank ceiling of the snapshot rank trees.
	Kmax int
	// PlaneHits / PlaneMisses count shared-plane-storage traffic over the
	// index's lifetime (across every epoch).
	PlaneHits, PlaneMisses int64
	// PlaneSets is the number of classified plane sets cached by the
	// current snapshot, SkybandViews its memoized k-band views.
	PlaneSets    int
	SkybandViews int
	// RankTreeNodes is the node count of the current snapshot's rank-level
	// tree; zero when the tree has not been built (it is lazy) or its build
	// failed. RankTreeBuilt distinguishes "not yet demanded" from "built".
	RankTreeNodes int
	RankTreeBuilt bool
}

// Stats returns the index's current introspection snapshot. It is
// read-only and safe for concurrent use; derived state is reported as-is,
// never forced (a lazy rank tree that was never demanded shows zero
// nodes).
func (ix *Index) Stats() Stats {
	s := ix.snap.Load()
	st := Stats{
		Version:     s.version,
		Points:      len(s.pts),
		Dim:         s.dim,
		Kmax:        s.opts.Kmax,
		PlaneHits:   ix.pstats.hits.Load(),
		PlaneMisses: ix.pstats.misses.Load(),
	}
	s.mu.Lock()
	st.PlaneSets = len(s.planes)
	st.SkybandViews = len(s.bands)
	s.mu.Unlock()
	s.treeMu.Lock()
	if s.treeDone && s.treeErr == nil && s.tree != nil {
		st.RankTreeNodes = s.tree.Nodes
		st.RankTreeBuilt = true
	}
	s.treeMu.Unlock()
	return st
}

// Snapshot is one immutable epoch: the validated points, their exact
// dominator counts, and lazily materialized derived state (per-k skyband
// views, classified plane sets, the rank tree). All lazily built state is
// internally synchronized, so one snapshot serves any number of concurrent
// queries.
type Snapshot struct {
	version uint64
	dim     int
	opts    Options
	pts     []vec.Vec   // immutable
	dom     []int       // exact dominator count per point; immutable
	pstats  *planeStats // owning index's lifetime plane-cache counters

	mu     sync.Mutex
	bands  map[int][]vec.Vec
	planes map[string]core.PlaneSet

	treeMu   sync.Mutex
	tree     *RankTree
	treeErr  error
	treeDone bool
}

// maxPlaneCache bounds the per-snapshot plane store; queries beyond it
// build planes without caching (the region is unaffected).
const maxPlaneCache = 1024

// Build validates pts and constructs the first epoch. The points are
// copied; the caller keeps ownership of its slice.
func Build(pts []vec.Vec, dim int, opts Options) (*Index, error) {
	if dim < 2 {
		return nil, fmt.Errorf("index: dimension %d < 2", dim)
	}
	opts = opts.withDefaults()
	cl := make([]vec.Vec, len(pts))
	for i, p := range pts {
		if err := core.CheckPoint(i, p, dim); err != nil {
			return nil, err
		}
		cl[i] = p.Clone()
	}
	ix := &Index{opts: opts}
	ix.snap.Store(newSnapshot(1, dim, opts, cl, skyband.DominatorCounts(cl), &ix.pstats))
	return ix, nil
}

func newSnapshot(version uint64, dim int, opts Options, pts []vec.Vec, dom []int, pstats *planeStats) *Snapshot {
	return &Snapshot{version: version, dim: dim, opts: opts, pts: pts, dom: dom, pstats: pstats}
}

// Snapshot returns the current epoch. The returned value stays valid (and
// immutable) regardless of later mutations.
func (ix *Index) Snapshot() *Snapshot { return ix.snap.Load() }

// Version returns the current epoch number (1 after Build, +1 per
// mutation).
func (ix *Index) Version() uint64 { return ix.snap.Load().version }

// Dim returns the dataset dimension.
func (ix *Index) Dim() int { return ix.snap.Load().dim }

// Len returns the current dataset size.
func (ix *Index) Len() int { return len(ix.snap.Load().pts) }

// Kmax returns the rank ceiling of the snapshot rank trees.
func (ix *Index) Kmax() int { return ix.opts.Kmax }

// Insert validates p and publishes a new epoch containing it. The dominator
// counts are maintained by delta: one scan of the dataset classifies p and
// bumps the counts of the points p dominates. Returns the new version.
func (ix *Index) Insert(p vec.Vec) (uint64, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	old := ix.snap.Load()
	if err := core.CheckPoint(len(old.pts), p, old.dim); err != nil {
		return old.version, err
	}
	n := len(old.pts)
	pts := make([]vec.Vec, n+1)
	copy(pts, old.pts)
	pts[n] = p.Clone()
	dom := make([]int, n+1)
	copy(dom, old.dom)
	for i, x := range old.pts {
		if skyband.Dominates(x, p) {
			dom[n]++
		}
		if skyband.Dominates(p, x) {
			dom[i]++
		}
	}
	next := newSnapshot(old.version+1, old.dim, old.opts, pts, dom, old.pstats)
	if ix.dur != nil {
		if err := ix.dur.logAppend(wal.Record{Epoch: next.version, Op: wal.OpInsert, Point: pts[n]}); err != nil {
			return old.version, fmt.Errorf("index: insert not logged, mutation rejected: %w", err)
		}
	}
	ix.snap.Store(next)
	if ix.dur != nil {
		ix.dur.committed(next.version)
	}
	return next.version, nil
}

// Delete removes the point at index i (in insertion order) and publishes a
// new epoch. Only the counts of points the removed one dominated change —
// this is the delta that lets deletions keep serving instead of triggering
// the from-scratch rebuild core.Dynamic needed.
func (ix *Index) Delete(i int) (uint64, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	old := ix.snap.Load()
	if i < 0 || i >= len(old.pts) {
		return old.version, fmt.Errorf("index: delete index %d out of range [0,%d)", i, len(old.pts))
	}
	rm := old.pts[i]
	pts := make([]vec.Vec, 0, len(old.pts)-1)
	dom := make([]int, 0, len(old.pts)-1)
	for j, x := range old.pts {
		if j == i {
			continue
		}
		c := old.dom[j]
		if skyband.Dominates(rm, x) {
			c--
		}
		pts = append(pts, x)
		dom = append(dom, c)
	}
	next := newSnapshot(old.version+1, old.dim, old.opts, pts, dom, old.pstats)
	if ix.dur != nil {
		if err := ix.dur.logAppend(wal.Record{Epoch: next.version, Op: wal.OpDelete, Index: i}); err != nil {
			return old.version, fmt.Errorf("index: delete not logged, mutation rejected: %w", err)
		}
	}
	ix.snap.Store(next)
	if ix.dur != nil {
		ix.dur.committed(next.version)
	}
	return next.version, nil
}

// Version returns the snapshot's epoch number.
func (s *Snapshot) Version() uint64 { return s.version }

// Dim returns the dataset dimension.
func (s *Snapshot) Dim() int { return s.dim }

// Len returns the snapshot's dataset size.
func (s *Snapshot) Len() int { return len(s.pts) }

// Points returns the snapshot's point set (shared, read-only).
func (s *Snapshot) Points() []vec.Vec { return s.pts }

// DominatorCounts returns the exact per-point dominator counts (shared,
// read-only).
func (s *Snapshot) DominatorCounts() []int { return s.dom }

// PointsFor returns the k-skyband view of the snapshot: the points
// dominated by fewer than k others, in input order — exactly the set and
// order skyband.Select(pts, skyband.KSkyband(pts, k)) produces, but served
// in one comparison per point from the maintained counts. Views are
// memoized per k. k < 1 returns the full set, matching core.Prepared.
func (s *Snapshot) PointsFor(k int) []vec.Vec {
	if k < 1 {
		return s.pts
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.bands[k]; ok {
		return b
	}
	b := make([]vec.Vec, 0, len(s.pts))
	for i, c := range s.dom {
		if c < k {
			b = append(b, s.pts[i])
		}
	}
	if s.bands == nil {
		s.bands = make(map[int][]vec.Vec)
	}
	s.bands[k] = b
	return b
}

// Prepared wraps the snapshot as a core.Prepared: solvers draw their point
// sets from the maintained skyband and their classified plane sets from
// the snapshot's deduplicated storage, keyed by the canonical Query.Key.
// reg, when non-nil, receives index.planes.hit / index.planes.miss
// counters; the snapshot's shared lifetime counters (Index.Stats) are
// maintained unconditionally.
func (s *Snapshot) Prepared(reg *obs.Registry) *core.Prepared {
	src := func(pts []vec.Vec, q core.Query) core.PlaneSet {
		key := q.Key()
		s.mu.Lock()
		ps, ok := s.planes[key]
		s.mu.Unlock()
		if ok {
			s.pstats.hits.Add(1)
			if reg != nil {
				reg.Counter("index.planes.hit").Inc()
			}
			return ps
		}
		ps = core.BuildPlanes(pts, q)
		s.mu.Lock()
		if s.planes == nil {
			s.planes = make(map[string]core.PlaneSet)
		}
		if len(s.planes) < maxPlaneCache {
			s.planes[key] = ps
		}
		s.mu.Unlock()
		s.pstats.misses.Add(1)
		if reg != nil {
			reg.Counter("index.planes.miss").Inc()
		}
		return ps
	}
	return core.PrepareIndexed(s.pts, s.dim, s.PointsFor, src)
}

// Tree returns the snapshot's rank-level tree, building it on first use
// (over the kmax-skyband, under the configured node budget). A build that
// exceeds its budget is memoized as unavailable for the snapshot — the
// caller should serve through the ordinary solvers instead. A build
// aborted by ctx is not memoized, so a later call may retry.
func (s *Snapshot) Tree(ctx context.Context) (*RankTree, error) {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	if s.treeDone {
		return s.tree, s.treeErr
	}
	if len(s.pts) == 0 {
		s.treeDone = true
		s.treeErr = fmt.Errorf("index: empty dataset has no rank tree")
		return nil, s.treeErr
	}
	t, err := BuildRankTree(ctx, s.PointsFor(s.opts.Kmax), s.opts.Kmax, s.opts.TreeNodes, "index.ranktree")
	if err != nil && (ctx.Err() != nil || err == core.ErrDeadline) {
		return nil, err // transient: do not memoize a canceled build
	}
	s.tree, s.treeErr, s.treeDone = t, err, true
	return s.tree, s.treeErr
}
