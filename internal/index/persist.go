package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"rrq/internal/faultinject"
	"rrq/internal/vec"
)

// persistFormat is bumped whenever the on-disk layout changes; Load rejects
// formats from the future instead of misreading them.
const persistFormat = 2

// persistMagic opens every checkpoint file. A stream that does not start
// with it is either a legacy headerless gob (format 1, readable via
// LoadCompat) or not an index at all.
var persistMagic = [8]byte{'R', 'R', 'Q', 'I', 'N', 'D', 'E', 'X'}

// persistHeaderLen is the fixed header: 8-byte magic, uint32 format,
// uint32 CRC32C of the payload, uint64 payload length (little-endian).
const persistHeaderLen = 8 + 4 + 4 + 8

// persistCRC is the Castagnoli table shared with the WAL.
var persistCRC = crc32.MakeTable(crc32.Castagnoli)

// PersistReason classifies why a persisted index was rejected.
type PersistReason string

const (
	// PersistBadMagic: the stream does not start with the index magic (and
	// compat decoding was not requested or also failed).
	PersistBadMagic PersistReason = "bad-magic"
	// PersistFutureFormat: the header's format number is newer than this
	// build understands.
	PersistFutureFormat PersistReason = "future-format"
	// PersistChecksum: the payload does not match the header's CRC32C —
	// a torn write or bit rot.
	PersistChecksum PersistReason = "checksum-mismatch"
	// PersistTruncated: the stream ended before the header-declared
	// payload length.
	PersistTruncated PersistReason = "truncated"
	// PersistDecode: the checksummed payload failed to decode or failed
	// semantic validation (bad dimension, invalid version, bad points).
	PersistDecode PersistReason = "decode"
)

// PersistError is the typed rejection of a persisted index: a corrupt,
// torn, foreign or future-format file never loads as a silently wrong
// dataset.
type PersistError struct {
	Reason PersistReason
	Detail string
}

func (e *PersistError) Error() string {
	return fmt.Sprintf("index: persist: %s: %s", e.Reason, e.Detail)
}

// indexFile is the gob-encoded payload of a persisted index. Only the
// durable inputs are stored — points, options and the epoch counter;
// dominator counts and all per-snapshot derived state (skyband views,
// plane sets, the rank tree) are recomputed on load, which keeps the file
// format independent of cache internals.
type indexFile struct {
	Format  int
	Version uint64
	Dim     int
	Kmax    int
	Nodes   int
	Pts     [][]float64
}

// Save writes the current snapshot to w: the persistMagic header with
// format number, CRC32C and length of the gob payload, then the payload.
// Concurrent mutations are safe: the snapshot is captured once and is
// immutable. Use SaveFile for the crash-atomic on-disk form.
func (ix *Index) Save(w io.Writer) error {
	s := ix.Snapshot()
	f := indexFile{
		Format:  persistFormat,
		Version: s.version,
		Dim:     s.dim,
		Kmax:    s.opts.Kmax,
		Nodes:   s.opts.TreeNodes,
		Pts:     make([][]float64, len(s.pts)),
	}
	for i, p := range s.pts {
		f.Pts[i] = p
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&f); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	var hdr [persistHeaderLen]byte
	copy(hdr[:8], persistMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], persistFormat)
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(payload.Bytes(), persistCRC))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// SaveFile writes the current snapshot to path crash-atomically: the bytes
// go to a temporary file in the same directory, reach stable storage via
// fsync, and only then rename over path (itself fsynced at the directory).
// A crash at any point leaves either the old file or the new one — never a
// torn mix.
func (ix *Index) SaveFile(path string) error { return ix.saveFile(path, nil) }

// saveFile is SaveFile with an optional fault injector arming the
// CheckpointRename point (the atomicity window between temp write and
// rename).
func (ix *Index) saveFile(path string, in *faultinject.Injector) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	bw := bufio.NewWriter(tmp)
	if err := ix.Save(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("index: save: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("index: save: sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("index: save: %w", err))
	}
	if in != nil {
		if err := in.Fire(faultinject.CheckpointRename, nil); err != nil {
			os.Remove(tmpName)
			return fmt.Errorf("index: save: %w", err)
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("index: save: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename into it is durable; best-effort
// (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Load reads an index previously written by Save, verifying magic, format
// and checksum before any decoding, then revalidates every point and
// recomputes the dominator counts. Rejections are typed *PersistError
// values. The restored index resumes at the saved epoch number, so
// versions stay monotone across a save/load cycle.
func Load(r io.Reader) (*Index, error) { return load(r, false) }

// LoadCompat is Load with the legacy escape hatch: a stream that does not
// start with the index magic is decoded as the headerless format-1 gob
// written before checksummed checkpoints existed. Only reach for it behind
// an explicit operator flag — a legacy stream has no checksum, so
// corruption can masquerade as data.
func LoadCompat(r io.Reader) (*Index, error) { return load(r, true) }

func load(r io.Reader, compat bool) (*Index, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(persistMagic))
	if err != nil {
		return nil, &PersistError{Reason: PersistTruncated,
			Detail: fmt.Sprintf("reading magic: %v", err)}
	}
	if !bytes.Equal(head, persistMagic[:]) {
		if compat {
			return loadLegacy(br)
		}
		return nil, &PersistError{Reason: PersistBadMagic,
			Detail: fmt.Sprintf("not an index checkpoint (got %q; legacy headerless files need the compat flag)", head)}
	}
	var hdr [persistHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, &PersistError{Reason: PersistTruncated,
			Detail: fmt.Sprintf("reading header: %v", err)}
	}
	format := binary.LittleEndian.Uint32(hdr[8:])
	wantCRC := binary.LittleEndian.Uint32(hdr[12:])
	plen := binary.LittleEndian.Uint64(hdr[16:])
	if format > persistFormat {
		return nil, &PersistError{Reason: PersistFutureFormat,
			Detail: fmt.Sprintf("format %d is newer than this build's %d", format, persistFormat)}
	}
	const maxCheckpoint = 1 << 32
	if plen > maxCheckpoint {
		return nil, &PersistError{Reason: PersistDecode,
			Detail: fmt.Sprintf("implausible payload length %d", plen)}
	}
	payload := make([]byte, plen)
	if n, err := io.ReadFull(br, payload); err != nil {
		return nil, &PersistError{Reason: PersistTruncated,
			Detail: fmt.Sprintf("payload ends at %d of %d bytes", n, plen)}
	}
	if got := crc32.Checksum(payload, persistCRC); got != wantCRC {
		return nil, &PersistError{Reason: PersistChecksum,
			Detail: fmt.Sprintf("stored %08x, computed %08x", wantCRC, got)}
	}
	var f indexFile
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return nil, &PersistError{Reason: PersistDecode, Detail: err.Error()}
	}
	return rebuild(&f)
}

// loadLegacy decodes the format-1 headerless gob stream.
func loadLegacy(r io.Reader) (*Index, error) {
	var f indexFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, &PersistError{Reason: PersistDecode, Detail: "legacy gob: " + err.Error()}
	}
	if f.Format != 1 {
		return nil, &PersistError{Reason: PersistDecode,
			Detail: fmt.Sprintf("legacy gob claims format %d (want 1)", f.Format)}
	}
	return rebuild(&f)
}

// rebuild revalidates a decoded payload and reconstructs the index at its
// saved epoch.
func rebuild(f *indexFile) (*Index, error) {
	if f.Version < 1 {
		return nil, &PersistError{Reason: PersistDecode,
			Detail: fmt.Sprintf("invalid version %d", f.Version)}
	}
	pts := make([]vec.Vec, len(f.Pts))
	for i, p := range f.Pts {
		pts[i] = vec.Vec(p)
	}
	ix, err := Build(pts, f.Dim, Options{Kmax: f.Kmax, TreeNodes: f.Nodes})
	if err != nil {
		return nil, &PersistError{Reason: PersistDecode, Detail: err.Error()}
	}
	s := ix.snap.Load()
	s.version = f.Version
	return ix, nil
}

// LoadFile opens and loads one checkpoint file.
func LoadFile(path string, compat bool) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return load(f, compat)
}
