package index

import (
	"encoding/gob"
	"fmt"
	"io"

	"rrq/internal/vec"
)

// persistFormat is bumped whenever the on-disk layout changes; Load rejects
// unknown formats instead of misreading them.
const persistFormat = 1

// indexFile is the gob-encoded on-disk form of an index. Only the durable
// inputs are stored — points, options and the epoch counter; dominator
// counts and all per-snapshot derived state (skyband views, plane sets, the
// rank tree) are recomputed on load, which keeps the file format independent
// of cache internals.
type indexFile struct {
	Format  int
	Version uint64
	Dim     int
	Kmax    int
	Nodes   int
	Pts     [][]float64
}

// Save writes the current snapshot to w. Concurrent mutations are safe: the
// snapshot is captured once and is immutable.
func (ix *Index) Save(w io.Writer) error {
	s := ix.Snapshot()
	f := indexFile{
		Format:  persistFormat,
		Version: s.version,
		Dim:     s.dim,
		Kmax:    s.opts.Kmax,
		Nodes:   s.opts.TreeNodes,
		Pts:     make([][]float64, len(s.pts)),
	}
	for i, p := range s.pts {
		f.Pts[i] = p
	}
	return gob.NewEncoder(w).Encode(&f)
}

// Load reads an index previously written by Save, revalidates every point
// and recomputes the dominator counts. The restored index resumes at the
// saved epoch number, so versions stay monotone across a save/load cycle.
func Load(r io.Reader) (*Index, error) {
	var f indexFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if f.Format != persistFormat {
		return nil, fmt.Errorf("index: load: unknown format %d (want %d)", f.Format, persistFormat)
	}
	pts := make([]vec.Vec, len(f.Pts))
	for i, p := range f.Pts {
		pts[i] = vec.Vec(p)
	}
	ix, err := Build(pts, f.Dim, Options{Kmax: f.Kmax, TreeNodes: f.Nodes})
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if f.Version < 1 {
		return nil, fmt.Errorf("index: load: invalid version %d", f.Version)
	}
	s := ix.snap.Load()
	s.version = f.Version
	return ix, nil
}
