package index

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rrq/internal/faultinject"
	"rrq/internal/obs"
	"rrq/internal/vec"
	"rrq/internal/wal"
)

func seedBuilder(t *testing.T) func() (*Index, error) {
	t.Helper()
	return func() (*Index, error) {
		return Build([]vec.Vec{
			{0.9, 0.2, 0.3}, {0.4, 0.8, 0.1}, {0.2, 0.3, 0.9}, {0.7, 0.7, 0.2}, {0.5, 0.5, 0.5},
		}, 3, Options{})
	}
}

func openDurable(t *testing.T, dir string, o DurableOptions) (*Index, *Durable, *Recovery) {
	t.Helper()
	o.Dir = dir
	ix, d, rec, err := OpenDurable(o, seedBuilder(t))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return ix, d, rec
}

func points(ix *Index) []vec.Vec { return ix.Snapshot().Points() }

// samePoints compares two datasets exactly (durability must be bit-exact).
func samePoints(a, b []vec.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestDurableCrashRecovery mutates a durable index, drops the handle
// without any clean shutdown (the WAL under SyncAlways is the only
// persistence), reopens, and requires the exact version and points.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ix, _, rec := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if !rec.Fresh || rec.Version != 1 {
		t.Fatalf("fresh open recovery %+v", rec)
	}
	if _, err := ix.Insert(vec.Vec{0.25, 0.25, 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Delete(1); err != nil {
		t.Fatal(err)
	}
	if v, err := ix.Insert(vec.Vec{0.1, 0.1, 0.8}); err != nil || v != 4 {
		t.Fatalf("insert: v=%d err=%v", v, err)
	}
	want := points(ix)
	// No Close, no Checkpoint: simulate a crash by abandoning the handle.

	ix2, _, rec2 := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if rec2.Fresh {
		t.Fatal("recovery claims fresh despite checkpoint + WAL on disk")
	}
	if rec2.CheckpointVersion != 1 || rec2.Replayed != 3 || rec2.Version != 4 {
		t.Fatalf("recovery %+v, want checkpoint 1 + 3 replayed to version 4", rec2)
	}
	if ix2.Version() != 4 || !samePoints(points(ix2), want) {
		t.Fatalf("recovered index: version %d, points differ: %v vs %v", ix2.Version(), points(ix2), want)
	}
}

// TestDurableCleanShutdownNeedsNoReplay: Checkpoint + Close, then reopen —
// everything comes from the checkpoint, the WAL tail is empty.
func TestDurableCleanShutdownNeedsNoReplay(t *testing.T) {
	dir := t.TempDir()
	ix, d, _ := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if _, err := ix.Insert(vec.Vec{0.25, 0.25, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if v := d.LastCheckpointVersion(); v != 2 {
		t.Fatalf("LastCheckpointVersion = %d, want 2", v)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, rec := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if rec.Replayed != 0 || rec.CheckpointVersion != 2 || rec.Version != 2 {
		t.Fatalf("post-clean-shutdown recovery %+v, want zero replay from checkpoint 2", rec)
	}
}

// TestDurableAutoCheckpoint: every N records a checkpoint lands, the WAL
// rotates and covered segments are collected.
func TestDurableAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	ix, d, _ := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways, CheckpointEvery: 3, Metrics: reg})
	for i := 0; i < 7; i++ {
		if _, err := ix.Insert(vec.Vec{0.2, 0.3, 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	// Mutations 3 and 6 crossed the cadence: checkpoints at versions 4 and
	// 7, plus the recovery checkpoint at open = 3 writes.
	if n := reg.Counter("checkpoint.writes").Value(); n != 3 {
		t.Fatalf("checkpoint.writes = %d, want 3", n)
	}
	if v := d.LastCheckpointVersion(); v != 7 {
		t.Fatalf("LastCheckpointVersion = %d, want 7", v)
	}
	names, err := listCheckpoints(dir)
	if err != nil || len(names) != 2 {
		t.Fatalf("checkpoints on disk: %v (err %v), want newest 2", names, err)
	}
	if names[0] != ckptName(7) || names[1] != ckptName(4) {
		t.Fatalf("kept checkpoints %v, want versions 7 and 4", names)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery replays only the records past the newest checkpoint.
	_, _, rec := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways, CheckpointEvery: 3})
	if rec.CheckpointVersion != 7 || rec.Replayed != 1 || rec.Version != 8 {
		t.Fatalf("recovery %+v, want checkpoint 7 + 1 replayed", rec)
	}
}

// TestDurableTornTailRecovery simulates a crash mid-append (short write):
// recovery truncates the tear, serves the acknowledged prefix, and counts
// the repair.
func TestDurableTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("power cut")
	in := faultinject.New(&faultinject.Fault{
		Point: faultinject.WALAppend, ShortWrite: 7, Err: boom, Times: 1,
		Match: func(key []float64) bool { return key != nil && key[0] == 0.1 },
	})
	ix, _, _ := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways, Inject: in})
	if _, err := ix.Insert(vec.Vec{0.25, 0.25, 0.5}); err != nil {
		t.Fatal(err)
	}
	want := points(ix)
	// The faulted append: mutation rejected, torn bytes on disk.
	if _, err := ix.Insert(vec.Vec{0.1, 0.2, 0.7}); !errors.Is(err, boom) {
		t.Fatalf("faulted insert error = %v, want %v", err, boom)
	}
	if ix.Version() != 2 {
		t.Fatalf("rejected mutation published version %d", ix.Version())
	}

	reg := obs.NewRegistry()
	ix2, _, rec := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways, Metrics: reg})
	if rec.Truncated == nil {
		t.Fatalf("recovery %+v, want torn-tail truncation", rec)
	}
	if rec.Version != 2 || !samePoints(points(ix2), want) {
		t.Fatalf("recovered version %d points %v, want version 2 %v", rec.Version, points(ix2), want)
	}
	if n := reg.Counter("wal.truncated").Value(); n != 1 {
		t.Fatalf("wal.truncated = %d, want 1", n)
	}
}

// TestDurableCorruptCheckpointFallsBack: the newest checkpoint is
// bit-flipped; recovery must reject it (typed), fall back to the previous
// checkpoint and replay the WAL records past it.
func TestDurableCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	ix, d, _ := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways, CheckpointEvery: 2})
	for i := 0; i < 5; i++ {
		if _, err := ix.Insert(vec.Vec{0.2, 0.3, 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	want := points(ix)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := listCheckpoints(dir)
	if len(names) != 2 {
		t.Fatalf("checkpoints %v, want 2", names)
	}
	// Corrupt the newest checkpoint's payload.
	path := filepath.Join(dir, names[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[persistHeaderLen+5] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	ix2, _, rec := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if len(rec.BadCheckpoints) != 1 || !strings.Contains(rec.BadCheckpoints[0], "checksum-mismatch") {
		t.Fatalf("BadCheckpoints %v, want one checksum-mismatch", rec.BadCheckpoints)
	}
	if rec.Version != 6 || !samePoints(points(ix2), want) {
		t.Fatalf("recovered version %d, want 6 with identical points", rec.Version)
	}
}

// TestDurableBadNewerCheckpointsDoNotEvictRecovery: rejected checkpoint
// files whose names sort above the recovered version (bit-rotted newest
// file plus a lost WAL tail, or every checkpoint corrupt forcing a fresh
// seed) must not count toward the GC keep window. Before the fix they
// could evict the just-written recovery checkpoint while PurgeOthers
// deleted the WAL — leaving only corrupt files on disk for the next boot.
func TestDurableBadNewerCheckpointsDoNotEvictRecovery(t *testing.T) {
	dir := t.TempDir()
	for _, v := range []uint64{50, 51} {
		if err := os.WriteFile(filepath.Join(dir, ckptName(v)), []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, d, rec := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if !rec.Fresh || len(rec.BadCheckpoints) != 2 {
		t.Fatalf("recovery %+v, want fresh seed with 2 rejected checkpoints", rec)
	}
	names, err := listCheckpoints(dir)
	if err != nil || len(names) != 1 || names[0] != ckptName(rec.Version) {
		t.Fatalf("checkpoints after recovery: %v (err %v), want only %s", names, err, ckptName(rec.Version))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The next boot must load the recovery checkpoint, not reject garbage
	// and re-seed.
	_, _, rec2 := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if rec2.Fresh || len(rec2.BadCheckpoints) != 0 || rec2.Version != rec.Version {
		t.Fatalf("second recovery %+v, want clean load of checkpoint version %d", rec2, rec.Version)
	}
}

// TestDurableCheckpointRenameFaultKeepsWAL: a checkpoint that dies in its
// atomicity window must not lose anything — the WAL still covers the full
// history and the next recovery serves it.
func TestDurableCheckpointRenameFaultKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("rename blocked")
	in := faultinject.New(&faultinject.Fault{Point: faultinject.CheckpointRename, Err: boom, Times: 1})
	reg := obs.NewRegistry()
	ix, d, _ := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways, CheckpointEvery: 100, Metrics: reg})
	// Arm the injector only after the recovery checkpoint has been written.
	d.o.Inject = in
	for i := 0; i < 3; i++ {
		if _, err := ix.Insert(vec.Vec{0.2, 0.3, 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	want := points(ix)
	if err := d.Checkpoint(); !errors.Is(err, boom) {
		t.Fatalf("faulted checkpoint error = %v, want %v", err, boom)
	}
	if n := reg.Counter("checkpoint.errors").Value(); n != 1 {
		t.Fatalf("checkpoint.errors = %d, want 1", n)
	}
	ix2, _, rec := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if rec.CheckpointVersion != 1 || rec.Replayed != 3 || rec.Version != 4 {
		t.Fatalf("recovery %+v, want checkpoint 1 + 3 replayed", rec)
	}
	if !samePoints(points(ix2), want) {
		t.Fatal("recovered points differ after failed checkpoint")
	}
}

// TestDurableRejectedMutationLeavesNoTrace: a WAL append error rejects the
// mutation entirely — version unchanged, dataset unchanged, and recovery
// agrees.
func TestDurableRejectedMutationLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("append refused")
	in := faultinject.New(&faultinject.Fault{Point: faultinject.WALAppend, Err: boom, Times: 1})
	ix, d, _ := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways, Inject: in})
	if _, err := ix.Insert(vec.Vec{0.25, 0.25, 0.5}); !errors.Is(err, boom) {
		t.Fatalf("insert error = %v, want %v", err, boom)
	}
	if ix.Version() != 1 || ix.Len() != 5 {
		t.Fatalf("rejected insert mutated the index: version %d len %d", ix.Version(), ix.Len())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, rec := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if rec.Version != 1 || rec.Replayed != 0 {
		t.Fatalf("recovery %+v, want untouched version 1", rec)
	}
}

// TestDurableRecoveryString smoke-checks the operator-facing summary.
func TestDurableRecoveryString(t *testing.T) {
	dir := t.TempDir()
	ix, _, rec := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	if s := rec.String(); !strings.Contains(s, "fresh build") {
		t.Fatalf("fresh summary %q", s)
	}
	if _, err := ix.Insert(vec.Vec{0.25, 0.25, 0.5}); err != nil {
		t.Fatal(err)
	}
	_, _, rec2 := openDurable(t, dir, DurableOptions{Sync: wal.SyncAlways})
	s := rec2.String()
	if !strings.Contains(s, "1 records replayed") || !strings.Contains(s, "version 2") {
		t.Fatalf("recovery summary %q", s)
	}
}
