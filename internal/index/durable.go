package index

// Durability layer: a WAL-backed index whose mutations survive crashes.
// Every Insert/Delete appends an epoch-stamped record to the write-ahead
// log *before* the new snapshot is published — under the "always" fsync
// policy an acknowledged version number implies the record is on disk —
// and every N records the current snapshot is folded into a crash-atomic
// checkpoint, the log rotates, and segments covered by the checkpoint are
// collected. OpenDurable is the recovery entry point: newest valid
// checkpoint, WAL tail replayed on top, torn/corrupt tails truncated, and
// the recovered state immediately re-checkpointed so a crash loop never
// replays the same tail twice.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"rrq/internal/faultinject"
	"rrq/internal/obs"
	"rrq/internal/vec"
	"rrq/internal/wal"
)

// DefaultCheckpointEvery is the auto-checkpoint cadence (WAL records
// between checkpoints) when DurableOptions leaves it zero.
const DefaultCheckpointEvery = 256

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Dir holds the checkpoints and WAL segments. Created if missing.
	Dir string
	// Sync is the WAL fsync policy (default wal.SyncAlways); SyncInterval
	// the flush period under wal.SyncInterval.
	Sync         wal.SyncPolicy
	SyncInterval time.Duration
	// CheckpointEvery is the number of WAL records between automatic
	// checkpoints (default DefaultCheckpointEvery).
	CheckpointEvery int
	// KeepCheckpoints is how many checkpoint files survive collection
	// (default 2: current + previous).
	KeepCheckpoints int
	// Compat additionally accepts legacy headerless checkpoint files.
	Compat bool
	// Metrics receives the wal.* counters plus checkpoint.writes,
	// checkpoint.errors and the checkpoint.age gauge (seconds since the
	// last checkpoint, refreshed per mutation).
	Metrics *obs.Registry
	// Inject arms the WALAppend/WALSync/CheckpointRename fault points.
	Inject *faultinject.Injector
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 2
	}
	return o
}

// Recovery summarizes what OpenDurable found and repaired.
type Recovery struct {
	// Fresh is true when no usable checkpoint existed and the index was
	// built from the seed builder.
	Fresh bool
	// CheckpointPath/CheckpointVersion identify the checkpoint served as
	// the recovery base (empty/0 when Fresh).
	CheckpointPath    string
	CheckpointVersion uint64
	// BadCheckpoints lists checkpoint files rejected before a valid one
	// was found, with their typed rejection reasons.
	BadCheckpoints []string
	// Replayed is the number of WAL records applied on top of the base.
	Replayed int
	// Truncated describes the torn/corrupt tail repair, when one happened.
	Truncated *wal.CorruptError
	// DroppedSegments counts WAL segments discarded as causally unsound
	// (after a corruption) during replay.
	DroppedSegments int
	// Gap is non-empty when replay stopped early because a record did not
	// connect to the recovered version (missing segment or unappliable
	// record); the state up to the gap is served.
	Gap string
	// Version is the index version after recovery.
	Version uint64
}

// String renders the one-line recovery summary rrqd logs.
func (r *Recovery) String() string {
	var b strings.Builder
	if r.Fresh {
		b.WriteString("fresh build")
	} else {
		fmt.Fprintf(&b, "checkpoint %s (version %d)", filepath.Base(r.CheckpointPath), r.CheckpointVersion)
	}
	fmt.Fprintf(&b, ", %d records replayed, version %d", r.Replayed, r.Version)
	if len(r.BadCheckpoints) > 0 {
		fmt.Fprintf(&b, ", %d checkpoint(s) rejected", len(r.BadCheckpoints))
	}
	if r.Truncated != nil {
		fmt.Fprintf(&b, ", tail truncated (%s)", r.Truncated.Reason)
	}
	if r.DroppedSegments > 0 {
		fmt.Fprintf(&b, ", %d unsound segment(s) dropped", r.DroppedSegments)
	}
	if r.Gap != "" {
		fmt.Fprintf(&b, ", replay stopped: %s", r.Gap)
	}
	return b.String()
}

// Durable is the WAL + checkpoint manager attached to an index by
// OpenDurable. Mutations drive it implicitly; callers interact with it for
// explicit checkpoints (clean shutdown) and Close.
type Durable struct {
	o  DurableOptions
	ix *Index
	w  *wal.WAL

	// Mutated under ix.mu (the mutation lock): the auto-checkpoint
	// cadence state. ckptHist holds the versions of the checkpoints still
	// on disk (newest last); WAL segments are only collected up to the
	// oldest of them, so falling back to any kept checkpoint always finds
	// the tail it needs.
	sinceCkpt       int
	lastCkptVersion uint64
	lastCkptTime    time.Time
	ckptHist        []uint64
}

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

func ckptName(version uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, version, ckptSuffix)
}

// listCheckpoints returns checkpoint file names in dir, newest first.
func listCheckpoints(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, ckptPrefix) && strings.HasSuffix(n, ckptSuffix) {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names, nil
}

// gcCheckpoints removes all but the newest keep checkpoint files, never
// touching protect (the checkpoint just written): a rejected-but-newer
// checkpoint name must not be able to push the live one out of the keep
// window.
func gcCheckpoints(dir string, keep int, protect string) {
	names, err := listCheckpoints(dir)
	if err != nil || len(names) <= keep {
		return
	}
	for _, n := range names[keep:] {
		if n == protect {
			continue
		}
		_ = os.Remove(filepath.Join(dir, n))
	}
}

// errStopReplay is the sentinel aborting replay at an epoch gap; the state
// accumulated so far is served.
var errStopReplay = errors.New("index: stop replay")

// OpenDurable recovers (or seeds) a durable index from dir and attaches
// its WAL + checkpoint manager:
//
//  1. load the newest checkpoint that passes magic/format/CRC validation
//     (rejects are reported, not fatal); with none, seed via build,
//  2. replay the WAL tail — records at or below the recovered version are
//     skipped, the first torn/corrupt record truncates the log, a record
//     that does not connect contiguously stops the replay,
//  3. fold the recovered state into a fresh checkpoint, purge every
//     pre-existing WAL segment it covers, and open a new segment for
//     appends.
//
// Every later Insert/Delete on the returned index appends to the WAL
// before its epoch is published; an append failure rejects the mutation.
func OpenDurable(o DurableOptions, build func() (*Index, error)) (*Index, *Durable, *Recovery, error) {
	o = o.withDefaults()
	if o.Dir == "" {
		return nil, nil, nil, errors.New("index: durable open: empty directory")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("index: durable open: %w", err)
	}
	rec := &Recovery{}

	var ix *Index
	names, err := listCheckpoints(o.Dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("index: durable open: %w", err)
	}
	var badNames []string
	for _, name := range names {
		path := filepath.Join(o.Dir, name)
		loaded, lerr := LoadFile(path, o.Compat)
		if lerr != nil {
			rec.BadCheckpoints = append(rec.BadCheckpoints, fmt.Sprintf("%s: %v", name, lerr))
			badNames = append(badNames, name)
			continue
		}
		ix = loaded
		rec.CheckpointPath = path
		rec.CheckpointVersion = loaded.Version()
		break
	}
	if ix == nil {
		if build == nil {
			return nil, nil, nil, fmt.Errorf("index: durable open: no valid checkpoint in %s and no seed builder", o.Dir)
		}
		built, berr := build()
		if berr != nil {
			return nil, nil, nil, berr
		}
		if built == nil {
			return nil, nil, nil, errors.New("index: durable open: seed builder returned nil")
		}
		ix = built
		rec.Fresh = true
	}

	info, err := wal.Replay(o.Dir, wal.Options{Metrics: o.Metrics}, func(r wal.Record) error {
		cur := ix.Version()
		if r.Epoch <= cur {
			return nil // covered by the checkpoint
		}
		if r.Epoch != cur+1 {
			rec.Gap = fmt.Sprintf("record epoch %d does not connect to version %d", r.Epoch, cur)
			return errStopReplay
		}
		var v uint64
		var aerr error
		switch r.Op {
		case wal.OpInsert:
			v, aerr = ix.Insert(vec.Vec(r.Point))
		case wal.OpDelete:
			v, aerr = ix.Delete(r.Index)
		default:
			aerr = fmt.Errorf("unknown op %d", r.Op)
		}
		if aerr != nil {
			rec.Gap = fmt.Sprintf("replaying epoch %d: %v", r.Epoch, aerr)
			return errStopReplay
		}
		if v != r.Epoch {
			rec.Gap = fmt.Sprintf("replaying epoch %d published version %d", r.Epoch, v)
			return errStopReplay
		}
		rec.Replayed++
		return nil
	})
	if err != nil && !errors.Is(err, errStopReplay) {
		return nil, nil, nil, fmt.Errorf("index: durable open: %w", err)
	}
	rec.Truncated = info.Truncated
	rec.DroppedSegments = info.DroppedSegs
	rec.Version = ix.Version()

	// Fold recovery into a checkpoint before accepting traffic: a crash
	// loop then re-replays nothing, and every pre-existing segment —
	// sound, truncated or beyond a gap — is obsolete and purged.
	d := &Durable{o: o, ix: ix, lastCkptVersion: rec.Version, lastCkptTime: time.Now(),
		ckptHist: []uint64{rec.Version}}
	if err := ix.saveFile(filepath.Join(o.Dir, ckptName(rec.Version)), o.Inject); err != nil {
		return nil, nil, nil, fmt.Errorf("index: durable open: recovery checkpoint: %w", err)
	}
	d.observeCheckpoint()
	// Rejected checkpoints are deleted outright rather than counted toward
	// the keep window: their names can sort above the recovery checkpoint
	// (bit-rotted newest file, or a fresh seed at a low version), and
	// keeping them would let gc evict the only valid state on disk.
	for _, n := range badNames {
		_ = os.Remove(filepath.Join(o.Dir, n))
	}
	gcCheckpoints(o.Dir, o.KeepCheckpoints, ckptName(rec.Version))
	w, err := wal.Open(o.Dir, rec.Version+1, wal.Options{
		Sync: o.Sync, Interval: o.SyncInterval, Metrics: o.Metrics, Inject: o.Inject,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("index: durable open: %w", err)
	}
	if _, err := w.PurgeOthers(); err != nil {
		_ = w.Close()
		return nil, nil, nil, fmt.Errorf("index: durable open: %w", err)
	}
	d.w = w
	ix.dur = d
	return ix, d, rec, nil
}

// counter bumps a named counter when metrics are configured.
func (d *Durable) counter(name string) {
	if reg := d.o.Metrics; reg != nil {
		reg.Counter(name).Inc()
	}
}

// observeCheckpoint records one successful checkpoint write.
func (d *Durable) observeCheckpoint() {
	d.counter("checkpoint.writes")
	if reg := d.o.Metrics; reg != nil {
		reg.Gauge("checkpoint.age").Set(0)
	}
}

// logAppend durably records one mutation; called by Insert/Delete under
// the mutation lock, before the new epoch is published.
func (d *Durable) logAppend(r wal.Record) error { return d.w.Append(r) }

// committed is called under the mutation lock after a new epoch published:
// it advances the auto-checkpoint cadence and refreshes checkpoint.age.
func (d *Durable) committed(version uint64) {
	d.sinceCkpt++
	if reg := d.o.Metrics; reg != nil {
		reg.Gauge("checkpoint.age").Set(time.Since(d.lastCkptTime).Seconds())
	}
	if d.sinceCkpt >= d.o.CheckpointEvery {
		_ = d.checkpointLocked(version) // WAL still covers everything on failure
	}
}

// checkpointLocked writes a checkpoint of the current snapshot, rotates
// the WAL past it and collects covered segments and old checkpoints.
// Caller holds the index mutation lock. A checkpoint failure leaves the
// WAL authoritative (counted in checkpoint.errors); the cadence resets
// either way so a persistent failure does not retry on every mutation.
func (d *Durable) checkpointLocked(version uint64) error {
	d.sinceCkpt = 0
	if version == d.lastCkptVersion {
		return nil
	}
	if err := d.ix.saveFile(filepath.Join(d.o.Dir, ckptName(version)), d.o.Inject); err != nil {
		d.counter("checkpoint.errors")
		return err
	}
	d.lastCkptVersion = version
	d.lastCkptTime = time.Now()
	d.ckptHist = append(d.ckptHist, version)
	if len(d.ckptHist) > d.o.KeepCheckpoints {
		d.ckptHist = d.ckptHist[len(d.ckptHist)-d.o.KeepCheckpoints:]
	}
	d.observeCheckpoint()
	var err error
	if rerr := d.w.Rotate(version + 1); rerr != nil {
		err = rerr
	} else if _, gerr := d.w.GCThrough(d.ckptHist[0]); gerr != nil {
		err = gerr
	}
	gcCheckpoints(d.o.Dir, d.o.KeepCheckpoints, ckptName(version))
	return err
}

// Checkpoint flushes the current snapshot to a checkpoint immediately —
// the clean-shutdown path: after it returns, a restart replays nothing.
// No-op when the last checkpoint already covers the current version.
func (d *Durable) Checkpoint() error {
	d.ix.mu.Lock()
	defer d.ix.mu.Unlock()
	return d.checkpointLocked(d.ix.Version())
}

// LastCheckpointVersion returns the version of the most recent checkpoint.
func (d *Durable) LastCheckpointVersion() uint64 {
	d.ix.mu.Lock()
	defer d.ix.mu.Unlock()
	return d.lastCkptVersion
}

// Sync forces the WAL to stable storage regardless of fsync policy.
func (d *Durable) Sync() error { return d.w.Sync() }

// Close stops the WAL's background flusher and closes the active segment.
// The index remains usable in-memory but further mutations fail.
func (d *Durable) Close() error { return d.w.Close() }
