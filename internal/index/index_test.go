package index

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"rrq/internal/core"
	"rrq/internal/diffcheck/corpus"
	"rrq/internal/obs"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

const boundaryMargin = 1e-7

func randomInstance(rng *rand.Rand, n, d int) ([]vec.Vec, core.Query) {
	pts := make([]vec.Vec, n)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = 0.01 + 0.99*rng.Float64()
		}
		pts[i] = p
	}
	q := core.Query{
		Q:   pts[rng.Intn(n)].Clone(),
		K:   1 + rng.Intn(5),
		Eps: rng.Float64() * 0.25,
	}
	for j := range q.Q {
		q.Q[j] = math.Min(1, math.Max(0.01, q.Q[j]+(rng.Float64()-0.5)*0.2))
	}
	return pts, q
}

// solveJSON answers q over prep with E-PT and returns the region's canonical
// JSON encoding.
func solveJSON(t *testing.T, prep *core.Prepared, q core.Query) []byte {
	t.Helper()
	r, _, err := core.EPTSolver{}.Solve(context.Background(), prep, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// freshPrep builds the from-scratch prefiltered Prepared an index-served
// solve must match byte for byte.
func freshPrep(t *testing.T, pts []vec.Vec, d int) *core.Prepared {
	t.Helper()
	prep, err := core.Prepare(pts, d, true)
	if err != nil {
		t.Fatal(err)
	}
	return prep
}

// After any sequence of inserts and deletes, the snapshot-served answer must
// be byte-identical to a fresh prefiltered solve over the mirrored dataset —
// the successor of the retired core.Dynamic's match-fresh-solve property,
// strengthened from membership sampling to exact region equality.
func TestIndexMatchesFreshSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1111))
	for _, d := range []int{2, 3, 4} {
		for trial := 0; trial < 8; trial++ {
			pts, q := randomInstance(rng, 12, d)
			ix, err := Build(pts, d, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cur := append([]vec.Vec(nil), pts...)
			for op := 0; op < 20; op++ {
				if rng.Intn(3) == 0 && len(cur) > 3 {
					i := rng.Intn(len(cur))
					if _, err := ix.Delete(i); err != nil {
						t.Fatal(err)
					}
					cur = append(cur[:i], cur[i+1:]...)
				} else {
					p := vec.New(d)
					for j := range p {
						p[j] = 0.01 + 0.99*rng.Float64()
					}
					if _, err := ix.Insert(p); err != nil {
						t.Fatal(err)
					}
					cur = append(cur, p)
				}
				got := solveJSON(t, ix.Snapshot().Prepared(nil), q)
				want := solveJSON(t, freshPrep(t, cur, d), q)
				if !bytes.Equal(got, want) {
					t.Fatalf("d=%d trial=%d op=%d: index-served region differs from fresh solve\n got: %s\nwant: %s",
						d, trial, op, got, want)
				}
			}
			if want := uint64(21); ix.Version() != want {
				t.Fatalf("version = %d, want %d", ix.Version(), want)
			}
		}
	}
}

// Insert-only paths must stay exact without any rebuild, and the membership
// semantics must match the counting oracle.
func TestIndexInsertOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(2222))
	pts, q := randomInstance(rng, 10, 3)
	ix, err := Build(pts, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cur := append([]vec.Vec(nil), pts...)
	for i := 0; i < 25; i++ {
		p := vec.New(3)
		for j := range p {
			p[j] = 0.01 + 0.99*rng.Float64()
		}
		if _, err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
		cur = append(cur, p)
	}
	got, _, err := core.EPTSolver{}.Solve(context.Background(), ix.Snapshot().Prepared(nil), q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		u := vec.RandSimplex(rng, 3)
		count, margin := core.CountBetter(cur, q, u)
		if margin < boundaryMargin {
			continue
		}
		if got.Contains(u) != (count < q.K) {
			t.Fatalf("insert-only mismatch at %v", u)
		}
	}
}

// A dominating insertion (a product beating q everywhere) must erase the
// region once k such products exist, and deleting one must restore it —
// ported from the retired core.Dynamic.
func TestIndexDominatingInserts(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.3, 0.3), vec.Of(0.4, 0.2)}
	q := core.Query{Q: vec.Of(0.5, 0.5), K: 2, Eps: 0.0}
	ix, err := Build(pts, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	region := func() *core.Region {
		r, _, err := core.EPTSolver{}.Solve(context.Background(), ix.Snapshot().Prepared(nil), q)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if region().Empty() {
		t.Fatal("initial region should cover everything")
	}
	if _, err := ix.Insert(vec.Of(0.9, 0.9)); err != nil {
		t.Fatal(err)
	}
	if region().Empty() {
		t.Fatal("one dominator with k=2 should leave the region intact")
	}
	if _, err := ix.Insert(vec.Of(0.95, 0.95)); err != nil {
		t.Fatal(err)
	}
	if !region().Empty() {
		t.Fatal("two dominators with k=2 should empty the region")
	}
	if _, err := ix.Delete(3); err != nil {
		t.Fatal(err)
	}
	if region().Empty() {
		t.Fatal("deletion should restore the region")
	}
}

func TestIndexErrors(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.5, 0.5)}
	if _, err := Build(pts, 1, Options{}); err == nil {
		t.Error("dim=1 accepted")
	}
	if _, err := Build([]vec.Vec{vec.Of(0.5, -0.5)}, 2, Options{}); err == nil {
		t.Error("non-positive attribute accepted")
	}
	ix, err := Build(pts, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(vec.Of(1, 2, 3)); err == nil {
		t.Error("dim-mismatched insert accepted")
	}
	if _, err := ix.Insert(vec.Of(0.5, math.NaN())); err == nil {
		t.Error("NaN insert accepted")
	}
	if _, err := ix.Delete(5); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
	if ix.Version() != 1 {
		t.Errorf("rejected mutations must not bump the version, got %d", ix.Version())
	}
}

// mutate applies one deterministic mutation to ix and the mirror slice,
// preferring duplicates of existing points half the time so ties at the k-th
// rank and exact duplicates flow through the delta maintenance.
func mutate(t *testing.T, rng *rand.Rand, ix *Index, cur []vec.Vec, d int) []vec.Vec {
	t.Helper()
	switch {
	case rng.Intn(3) == 0 && len(cur) > 2:
		i := rng.Intn(len(cur))
		if _, err := ix.Delete(i); err != nil {
			t.Fatal(err)
		}
		return append(cur[:i], cur[i+1:]...)
	case rng.Intn(2) == 0:
		p := cur[rng.Intn(len(cur))].Clone()
		if _, err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
		return append(cur, p)
	default:
		p := vec.New(d)
		for j := range p {
			p[j] = 0.05 + 0.9*rng.Float64()
		}
		if _, err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
		return append(cur, p)
	}
}

// The maintained dominator counts and every k-skyband view must match the
// from-scratch computation after each mutation, on the corpus families built
// to stress exactly the delta path: ties at the k-th rank and exact
// duplicate points.
func TestIndexDeltaSkybandCorpus(t *testing.T) {
	for _, fam := range []byte{corpus.FamRankTies, corpus.FamDuplicates, corpus.FamColinear} {
		for _, dim := range []int{2, 3, 4} {
			for variant := 0; variant < 4; variant++ {
				ins, ok := corpus.DecodeDim(corpus.Encode(fam, dim, 5+variant, 1+variant, variant, int64(variant)*7919+17), dim)
				if !ok {
					t.Fatal("corpus decode failed")
				}
				ix, err := Build(ins.Pts, dim, Options{})
				if err != nil {
					t.Fatal(err)
				}
				cur := append([]vec.Vec(nil), ins.Pts...)
				rng := rand.New(rand.NewSource(int64(fam)*1000 + int64(dim)*10 + int64(variant)))
				for op := 0; op < 15; op++ {
					cur = mutate(t, rng, ix, cur, dim)
					s := ix.Snapshot()
					wantDom := skyband.DominatorCount(cur)
					gotDom := s.DominatorCounts()
					for i := range wantDom {
						if gotDom[i] != wantDom[i] {
							t.Fatalf("fam=%s dim=%d variant=%d op=%d: dominator count[%d] = %d, want %d",
								ins.Family, dim, variant, op, i, gotDom[i], wantDom[i])
						}
					}
					for k := 1; k <= 6; k++ {
						got := s.PointsFor(k)
						want := skyband.Select(cur, skyband.KSkyband(cur, k))
						if len(got) != len(want) {
							t.Fatalf("fam=%s dim=%d op=%d k=%d: band size %d, want %d",
								ins.Family, dim, op, k, len(got), len(want))
						}
						for i := range want {
							if !got[i].Equal(want[i], 0) {
								t.Fatalf("fam=%s dim=%d op=%d k=%d: band[%d] = %v, want %v",
									ins.Family, dim, op, k, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// Concurrent readers pinned to an epoch must keep producing the same answer
// while writers publish later epochs — run under -race, this is the
// snapshot-isolation guarantee.
func TestIndexSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(3333))
	pts, q := randomInstance(rng, 14, 3)
	ix, err := Build(pts, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Pin one epoch and verify its answer never changes while
			// mutations publish new epochs around it.
			snap := ix.Snapshot()
			prep := snap.Prepared(nil)
			first, _, err := core.EPTSolver{}.Solve(context.Background(), prep, q)
			if err != nil {
				errs <- err.Error()
				return
			}
			want, err := first.MarshalJSON()
			if err != nil {
				errs <- err.Error()
				return
			}
			ver := snap.Version()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if snap.Version() != ver || snap.Len() != len(snap.Points()) {
					errs <- "snapshot mutated under reader"
					return
				}
				r, _, err := core.EPTSolver{}.Solve(context.Background(), prep, q)
				if err != nil {
					errs <- err.Error()
					return
				}
				got, err := r.MarshalJSON()
				if err != nil {
					errs <- err.Error()
					return
				}
				if !bytes.Equal(got, want) {
					errs <- "pinned snapshot's answer changed across epochs"
					return
				}
			}
		}()
	}

	cur := append([]vec.Vec(nil), pts...)
	for op := 0; op < 40; op++ {
		cur = mutate(t, rng, ix, cur, 3)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	// After the dust settles, the latest epoch must still match fresh.
	got := solveJSON(t, ix.Snapshot().Prepared(nil), q)
	want := solveJSON(t, freshPrep(t, cur, 3), q)
	if !bytes.Equal(got, want) {
		t.Fatalf("final epoch differs from fresh solve")
	}
}

// The shared plane storage must dedupe repeated queries on one snapshot and
// must not leak across epochs.
func TestIndexPlaneCache(t *testing.T) {
	rng := rand.New(rand.NewSource(4444))
	pts, q := randomInstance(rng, 12, 3)
	ix, err := Build(pts, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	prep := ix.Snapshot().Prepared(reg)
	a := solveJSON(t, prep, q)
	b := solveJSON(t, prep, q)
	if !bytes.Equal(a, b) {
		t.Fatal("repeated solve on one snapshot differs")
	}
	if reg.Counters()["index.planes.miss"] != 1 {
		t.Fatalf("misses = %d, want 1", reg.Counters()["index.planes.miss"])
	}
	if reg.Counters()["index.planes.hit"] != 1 {
		t.Fatalf("hits = %d, want 1", reg.Counters()["index.planes.hit"])
	}
	// A new epoch starts cold: plane caches never leak across snapshots.
	if _, err := ix.Insert(vec.Of(0.5, 0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	solveJSON(t, ix.Snapshot().Prepared(reg), q)
	if reg.Counters()["index.planes.miss"] != 2 {
		t.Fatalf("misses after epoch change = %d, want 2", reg.Counters()["index.planes.miss"])
	}
}

// The snapshot rank tree must answer exactly like the direct solvers for
// k ≤ kmax, and must survive mutations by lazy rebuild on the next epoch.
func TestIndexRankTreeMatchesSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(5555))
	pts, q := randomInstance(rng, 10, 3)
	q.K = 2
	ix, err := Build(pts, 3, Options{Kmax: 3})
	if err != nil {
		t.Fatal(err)
	}
	cur := append([]vec.Vec(nil), pts...)
	for op := 0; op < 6; op++ {
		cur = mutate(t, rng, ix, cur, 3)
		snap := ix.Snapshot()
		tree, err := snap.Tree(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		treeRegion, err := tree.QueryContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := core.EPTSolver{}.Solve(context.Background(), snap.Prepared(nil), q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			u := vec.RandSimplex(rng, 3)
			count, margin := core.CountBetter(cur, q, u)
			if margin < boundaryMargin {
				continue
			}
			if treeRegion.Contains(u) != (count < q.K) {
				t.Fatalf("op=%d: tree membership mismatch at %v (count=%d k=%d)", op, u, count, q.K)
			}
			if treeRegion.Contains(u) != want.Contains(u) {
				t.Fatalf("op=%d: tree disagrees with E-PT at %v", op, u)
			}
		}
		// The tree is memoized per snapshot.
		again, err := snap.Tree(context.Background())
		if err != nil || again != tree {
			t.Fatalf("tree not memoized: %v", err)
		}
	}
	// Over-kmax queries are rejected by the tree but fine for the solvers.
	snap := ix.Snapshot()
	tree, err := snap.Tree(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	big := q
	big.K = 5
	if _, err := tree.QueryContext(context.Background(), big); err == nil {
		t.Fatal("k > kmax accepted by rank tree")
	}
	if _, _, err := (core.EPTSolver{}).Solve(context.Background(), snap.Prepared(nil), big); err != nil {
		t.Fatalf("k > kmax must still solve through the ordinary path: %v", err)
	}
}

// Save/Load must preserve the dataset, options, and epoch number, and a
// loaded index must answer byte-identically.
func TestIndexSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6666))
	pts, q := randomInstance(rng, 12, 3)
	ix, err := Build(pts, 3, Options{Kmax: 4, TreeNodes: 5000})
	if err != nil {
		t.Fatal(err)
	}
	cur := append([]vec.Vec(nil), pts...)
	for op := 0; op < 10; op++ {
		cur = mutate(t, rng, ix, cur, 3)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Version() != ix.Version() {
		t.Fatalf("version = %d, want %d", loaded.Version(), ix.Version())
	}
	if loaded.Dim() != 3 || loaded.Len() != ix.Len() || loaded.Kmax() != 4 {
		t.Fatalf("shape mismatch after load: dim=%d len=%d kmax=%d", loaded.Dim(), loaded.Len(), loaded.Kmax())
	}
	got := solveJSON(t, loaded.Snapshot().Prepared(nil), q)
	want := solveJSON(t, ix.Snapshot().Prepared(nil), q)
	if !bytes.Equal(got, want) {
		t.Fatal("loaded index answers differently")
	}
	// Mutations on the restored index continue the epoch sequence.
	v, err := loaded.Insert(vec.Of(0.5, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if v != ix.Version()+1 {
		t.Fatalf("post-load insert version = %d, want %d", v, ix.Version()+1)
	}
	if _, err := Load(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage accepted by Load")
	}
}
