package dataset

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"rrq/internal/skyband"
	"rrq/internal/vec"
)

func TestGenerateRanges(t *testing.T) {
	for _, typ := range []Type{Independent, Correlated, Anticorrelated} {
		pts := Generate(typ, 500, 4, 1)
		if len(pts) != 500 {
			t.Fatalf("%v: %d points", typ, len(pts))
		}
		for _, p := range pts {
			for j, x := range p {
				if x <= 0 || x > 1 {
					t.Fatalf("%v: coordinate %d = %v out of (0,1]", typ, j, x)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Independent, 100, 3, 42)
	b := Generate(Independent, 100, 3, 42)
	for i := range a {
		if !a[i].Equal(b[i], 0) {
			t.Fatal("same seed produced different data")
		}
	}
	c := Generate(Independent, 100, 3, 43)
	same := true
	for i := range a {
		if !a[i].Equal(c[i], 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// The defining property of the three distributions: skyline sizes order as
// Cor < Indep < Anti.
func TestDistributionSkylineOrdering(t *testing.T) {
	n, d := 3000, 3
	sizes := map[Type]int{}
	for _, typ := range []Type{Independent, Correlated, Anticorrelated} {
		pts := Generate(typ, n, d, 9)
		sizes[typ] = len(skyband.Skyline(pts))
	}
	if !(sizes[Correlated] < sizes[Independent] && sizes[Independent] < sizes[Anticorrelated]) {
		t.Fatalf("skyline sizes Cor=%d Indep=%d Anti=%d violate Cor<Indep<Anti",
			sizes[Correlated], sizes[Independent], sizes[Anticorrelated])
	}
}

func TestCorrelationSign(t *testing.T) {
	corr := func(pts []vec.Vec) float64 {
		var mx, my float64
		for _, p := range pts {
			mx += p[0]
			my += p[1]
		}
		n := float64(len(pts))
		mx, my = mx/n, my/n
		var sxy, sxx, syy float64
		for _, p := range pts {
			dx, dy := p[0]-mx, p[1]-my
			sxy += dx * dy
			sxx += dx * dx
			syy += dy * dy
		}
		return sxy / math.Sqrt(sxx*syy)
	}
	if c := corr(Generate(Correlated, 4000, 2, 5)); c < 0.5 {
		t.Errorf("correlated corr = %v, want > 0.5", c)
	}
	if c := corr(Generate(Anticorrelated, 4000, 2, 5)); c > -0.5 {
		t.Errorf("anticorrelated corr = %v, want < -0.5", c)
	}
	if c := corr(Generate(Independent, 4000, 2, 5)); math.Abs(c) > 0.1 {
		t.Errorf("independent corr = %v, want ~0", c)
	}
}

func TestNormalizeEdgeCases(t *testing.T) {
	Normalize(nil) // must not panic
	pts := []vec.Vec{vec.Of(5, 1), vec.Of(5, 3)}
	Normalize(pts)
	// Constant dimension collapses to 1.
	if pts[0][0] != 1 || pts[1][0] != 1 {
		t.Errorf("constant dim = %v, %v, want 1", pts[0][0], pts[1][0])
	}
	if pts[0][1] <= 0 || pts[1][1] != 1 {
		t.Errorf("varying dim = %v, %v", pts[0][1], pts[1][1])
	}
}

func TestRandQueryInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := Generate(Independent, 50, 4, 3)
	for i := 0; i < 100; i++ {
		q := RandQuery(rng, pts)
		for _, x := range q {
			if x <= 0 || x > 1 {
				t.Fatalf("query coordinate %v out of (0,1]", x)
			}
		}
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{Independent, Correlated, Anticorrelated} {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Fatalf("round trip %v failed: %v %v", typ, got, err)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Fatal("expected error for bogus type")
	}
}

func TestRealSpecs(t *testing.T) {
	wants := map[RealName][2]int{
		Island: {63383, 2}, Weather: {178080, 4}, Car: {69052, 4}, NBA: {16916, 5},
	}
	for name, want := range wants {
		n, d, err := RealSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		if n != want[0] || d != want[1] {
			t.Errorf("%s spec = (%d,%d), want %v", name, n, d, want)
		}
	}
	if _, _, err := RealSpec("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestRealGeneration(t *testing.T) {
	for _, name := range RealNames {
		pts, err := Real(name, 2000)
		if err != nil {
			t.Fatal(err)
		}
		_, d, _ := RealSpec(name)
		if len(pts) != 2000 {
			t.Fatalf("%s: %d points, want 2000", name, len(pts))
		}
		for _, p := range pts {
			if p.Dim() != d {
				t.Fatalf("%s: dim %d, want %d", name, p.Dim(), d)
			}
			for _, x := range p {
				if x <= 0 || x > 1 {
					t.Fatalf("%s: value %v out of (0,1]", name, x)
				}
			}
		}
	}
	if _, err := Real("bogus", 10); err == nil {
		t.Fatal("expected error for unknown real dataset")
	}
}

func TestIslandAnticorrelatedFrontier(t *testing.T) {
	pts, err := Real(Island, 20000)
	if err != nil {
		t.Fatal(err)
	}
	sky := skyband.Skyline(pts)
	if len(sky) < 10 {
		t.Fatalf("Island skyline has %d points; the coastal arc should give a broad frontier", len(sky))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Generate(Independent, 30, 3, 77)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pts) {
		t.Fatalf("%d points back, want %d", len(back), len(pts))
	}
	for i := range pts {
		if !pts[i].Equal(back[i], 0) {
			t.Fatalf("point %d mismatch: %v vs %v", i, pts[i], back[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	wantCSVErr := func(t *testing.T, input string, row, field int) {
		t.Helper()
		_, err := ReadCSV(strings.NewReader(input))
		if err == nil {
			t.Fatalf("accepted malformed input %q", input)
		}
		var ce *CSVError
		if !errors.As(err, &ce) {
			t.Fatalf("error is %T (%v), want *CSVError", err, err)
		}
		if ce.Row != row || ce.Field != field {
			t.Fatalf("error at row %d field %d, want row %d field %d (%v)", ce.Row, ce.Field, row, field, err)
		}
	}

	wantCSVErr(t, "a,b\n1,2,3\n", 2, 0)             // ragged row
	wantCSVErr(t, "a,b\n1,2\n0.5\n", 3, 0)          // ragged row, numbered
	wantCSVErr(t, "a,b\n1,x\n", 2, 2)               // non-numeric, field numbered
	wantCSVErr(t, "a,b\n1,NaN\n", 2, 2)             // non-finite
	wantCSVErr(t, "a,b\n1,+Inf\n", 2, 2)            // non-finite
	wantCSVErr(t, "", 0, 0)                         // empty file
	wantCSVErr(t, "a,b\n", 0, 0)                    // header only
	wantCSVErr(t, "a,b\n\n\n", 0, 0)                // header + blanks only
	wantCSVErr(t, "a,b\n1,2\n\n3,4\n", 4, 0)        // interior blank line
	wantCSVErr(t, "  \n1,2\n", 1, 0)                // blank header
	wantCSVErr(t, "a,b\n1,2\n3,4,5\n0.1,0.2", 3, 0) // ragged mid-file
}

func TestReadCSVTrailingBlanks(t *testing.T) {
	pts, err := ReadCSV(strings.NewReader("a,b\n1,2\n0.5,0.25\n\n\n"))
	if err != nil {
		t.Fatalf("trailing blank lines rejected: %v", err)
	}
	if len(pts) != 2 || pts[1][1] != 0.25 {
		t.Fatalf("bad parse: %v", pts)
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n 1 , 2 \n")); err != nil {
		t.Fatalf("padded fields rejected: %v", err)
	}
}
