package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"rrq/internal/vec"
)

// The paper evaluates on four real datasets (Island, Weather, Car, NBA)
// that are not redistributable here. Each Real* function generates a seeded
// synthetic stand-in with the same cardinality, dimensionality and a
// qualitatively matching correlation structure, which is what drives the
// algorithms' cost (see DESIGN.md §3 for the substitution rationale).

// RealName identifies one of the paper's real datasets.
type RealName string

const (
	Island  RealName = "Island"  // 63,383 2-d geographic locations
	Weather RealName = "Weather" // 178,080 4-d weather records
	Car     RealName = "Car"     // 69,052 4-d used cars
	NBA     RealName = "NBA"     // 16,916 5-d player seasons
)

// RealNames lists the four stand-ins in the order the paper presents them.
var RealNames = []RealName{Island, Weather, Car, NBA}

// RealSpec returns the cardinality and dimensionality of a real dataset.
func RealSpec(name RealName) (n, d int, err error) {
	switch name {
	case Island:
		return 63383, 2, nil
	case Weather:
		return 178080, 4, nil
	case Car:
		return 69052, 4, nil
	case NBA:
		return 16916, 5, nil
	}
	return 0, 0, fmt.Errorf("dataset: unknown real dataset %q", name)
}

// Real generates the stand-in for name at its paper-reported size.
// maxN > 0 caps the cardinality (for fast test/bench runs).
func Real(name RealName, maxN int) ([]vec.Vec, error) {
	n, _, err := RealSpec(name)
	if err != nil {
		return nil, err
	}
	if maxN > 0 && maxN < n {
		n = maxN
	}
	rng := rand.New(rand.NewSource(int64(len(name)) * 7919))
	var pts []vec.Vec
	switch name {
	case Island:
		pts = genIsland(rng, n)
	case Weather:
		pts = genWeather(rng, n)
	case Car:
		pts = genCar(rng, n)
	case NBA:
		pts = genNBA(rng, n)
	}
	Normalize(pts)
	return pts, nil
}

// genIsland: 2-d geographic locations. Coastlines trade off the two
// coordinates along arcs, producing an anti-correlated frontier plus
// clustered interior mass.
func genIsland(rng *rand.Rand, n int) []vec.Vec {
	pts := make([]vec.Vec, n)
	for i := range pts {
		if rng.Float64() < 0.3 {
			// Coastal arc: strong trade-off between the coordinates.
			t := rng.Float64() * math.Pi / 2
			r := 0.85 + rng.NormFloat64()*0.04
			pts[i] = vec.Of(clamp01(r*math.Cos(t)), clamp01(r*math.Sin(t)))
		} else {
			// Interior cluster.
			cx, cy := 0.35+0.3*rng.Float64(), 0.35+0.3*rng.Float64()
			pts[i] = vec.Of(clamp01(cx+rng.NormFloat64()*0.08), clamp01(cy+rng.NormFloat64()*0.08))
		}
	}
	return pts
}

// genWeather: 4-d records with mild positive correlation driven by a shared
// seasonal latent plus independent station noise.
func genWeather(rng *rand.Rand, n int) []vec.Vec {
	pts := make([]vec.Vec, n)
	for i := range pts {
		season := rng.Float64()
		p := vec.New(4)
		for j := range p {
			p[j] = clamp01(0.3*season + 0.7*rng.Float64())
		}
		pts[i] = p
	}
	return pts
}

// genCar: 4-d used cars with a mixed correlation structure: a latent
// quality factor drives two attributes positively, one weakly, and one
// (mileage-like, already inverted to higher-is-better) negatively.
func genCar(rng *rand.Rand, n int) []vec.Vec {
	pts := make([]vec.Vec, n)
	for i := range pts {
		quality := rng.Float64()
		p := vec.New(4)
		p[0] = clamp01(0.7*quality + 0.3*rng.Float64())                   // value for money
		p[1] = clamp01(0.6*quality + 0.4*rng.Float64())                   // recency
		p[2] = clamp01(0.4*quality + 0.6*rng.Float64())                   // horsepower
		p[3] = clamp01(0.8*(1-quality)*rng.Float64() + 0.2*rng.Float64()) // low mileage
		pts[i] = p
	}
	return pts
}

// genNBA: 5-d player-season statistics: heavily skewed (few stars) with a
// strong shared skill factor, matching box-score correlation.
func genNBA(rng *rand.Rand, n int) []vec.Vec {
	pts := make([]vec.Vec, n)
	for i := range pts {
		skill := math.Pow(rng.Float64(), 2) // right-skewed: few stars
		p := vec.New(5)
		for j := range p {
			p[j] = clamp01(0.65*skill + 0.35*rng.Float64())
		}
		pts[i] = p
	}
	return pts
}
