// Package dataset provides the data substrate for the RRQ experiments:
// the three classical synthetic distributions (independent, correlated,
// anti-correlated) of Börzsönyi et al., seeded stand-ins for the paper's
// four real datasets, normalization to (0,1], query-point generation and
// CSV persistence.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"rrq/internal/vec"
)

// Type identifies a synthetic data distribution.
type Type int

const (
	// Independent: attribute values i.i.d. uniform.
	Independent Type = iota
	// Correlated: attribute values positively correlated (points hug the
	// main diagonal); skylines are tiny.
	Correlated
	// Anticorrelated: good values in one attribute pair with bad values in
	// others (points hug the anti-diagonal plane); skylines are large.
	Anticorrelated
)

func (t Type) String() string {
	switch t {
	case Independent:
		return "Indep"
	case Correlated:
		return "Cor"
	case Anticorrelated:
		return "Anti"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType parses "Indep", "Cor" or "Anti" (case-sensitive, as printed).
func ParseType(s string) (Type, error) {
	switch s {
	case "Indep":
		return Independent, nil
	case "Cor":
		return Correlated, nil
	case "Anti":
		return Anticorrelated, nil
	}
	return 0, fmt.Errorf("dataset: unknown type %q", s)
}

// Generate produces n points of dimension d from the given distribution,
// normalized to (0,1]. The generator is fully determined by the seed.
func Generate(t Type, n, d int, seed int64) []vec.Vec {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.Vec, n)
	switch t {
	case Independent:
		for i := range pts {
			p := vec.New(d)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts[i] = p
		}
	case Correlated:
		for i := range pts {
			base := clamp01(rng.NormFloat64()*0.15 + 0.5)
			p := vec.New(d)
			for j := range p {
				p[j] = clamp01(base + (rng.Float64()-0.5)*0.1)
			}
			pts[i] = p
		}
	case Anticorrelated:
		// Points hug the constant-sum plane Σx ≈ d/2: a tight normal base
		// plus a zero-mean spread. Rejection keeps coordinates inside
		// [0,1] without clamping (clamping would pile mass on the faces
		// and destroy the anti-correlated frontier).
		for i := range pts {
			p := vec.New(d)
			for {
				base := rng.NormFloat64()*0.03 + 0.5
				var mean float64
				for j := range p {
					p[j] = (rng.Float64() - 0.5) * 0.8
					mean += p[j]
				}
				mean /= float64(d)
				ok := true
				for j := range p {
					p[j] += base - mean
					if p[j] < 0 || p[j] > 1 {
						ok = false
					}
				}
				if ok {
					break
				}
			}
			pts[i] = p
		}
	default:
		panic(fmt.Sprintf("dataset: unknown type %d", int(t)))
	}
	Normalize(pts)
	return pts
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Normalize rescales every dimension of pts in place onto (0,1], mapping
// the per-dimension minimum to a small positive value and the maximum to 1.
// Dimensions with a single value collapse to 1.
func Normalize(pts []vec.Vec) {
	if len(pts) == 0 {
		return
	}
	d := len(pts[0])
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range pts {
			lo = math.Min(lo, p[j])
			hi = math.Max(hi, p[j])
		}
		if hi-lo < 1e-15 {
			for _, p := range pts {
				p[j] = 1
			}
			continue
		}
		// Shift the minimum slightly above zero so the range is (0,1].
		delta := (hi - lo) * 1e-3
		span := hi - lo + delta
		for _, p := range pts {
			p[j] = (p[j] - lo + delta) / span
		}
	}
}

// RandQuery draws a random query point for experiments: a random dataset
// point perturbed by ±5% per attribute, clamped to (0,1]. This follows the
// paper's protocol of running each algorithm with randomly generated query
// points drawn from the market being analyzed.
func RandQuery(rng *rand.Rand, pts []vec.Vec) vec.Vec {
	p := pts[rng.Intn(len(pts))]
	q := p.Clone()
	for j := range q {
		q[j] += (rng.Float64() - 0.5) * 0.1
		if q[j] <= 0 {
			q[j] = 1e-3
		}
		if q[j] > 1 {
			q[j] = 1
		}
	}
	return q
}
