package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"rrq/internal/vec"
)

// CSVError is the typed error ReadCSV returns for a malformed dataset
// file. Row is the 1-based physical row of the offense (the header is row
// 1; 0 for whole-file problems such as an empty input), Field the 1-based
// field within the row (0 when the whole row is at fault).
type CSVError struct {
	Row   int
	Field int
	Msg   string
}

func (e *CSVError) Error() string {
	switch {
	case e.Row == 0:
		return fmt.Sprintf("dataset: %s", e.Msg)
	case e.Field == 0:
		return fmt.Sprintf("dataset: row %d: %s", e.Row, e.Msg)
	default:
		return fmt.Sprintf("dataset: row %d field %d: %s", e.Row, e.Field, e.Msg)
	}
}

func csvErrf(row, field int, format string, args ...any) *CSVError {
	return &CSVError{Row: row, Field: field, Msg: fmt.Sprintf(format, args...)}
}

// WriteCSV writes points as rows of decimal values with a header
// attr1..attrD.
func WriteCSV(w io.Writer, pts []vec.Vec) error {
	cw := csv.NewWriter(w)
	if len(pts) > 0 {
		hdr := make([]string, len(pts[0]))
		for j := range hdr {
			hdr[j] = fmt.Sprintf("attr%d", j+1)
		}
		if err := cw.Write(hdr); err != nil {
			return err
		}
	}
	row := make([]string, 0, 8)
	for _, p := range pts {
		row = row[:0]
		for _, x := range p {
			row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads points written by WriteCSV (or any numeric CSV with a
// one-line header). The loader is strict so malformed files fail loudly at
// the boundary instead of poisoning the geometry kernels downstream: every
// data row must match the header's width (ragged rows are rejected with
// their physical row number), every field must parse to a finite float
// (NaN/Inf are rejected), an empty file or a header with no data rows is
// an error, and blank lines are tolerated only as trailing padding — a
// blank line with data after it is a hole in the data and is rejected.
// All failures are typed *CSVError values carrying the 1-based row (and
// field, where one is at fault).
//
// The format is plain numeric CSV, so rows are scanned line by line rather
// than through encoding/csv — which silently swallows blank lines and
// would mis-number every row after one.
func ReadCSV(r io.Reader) ([]vec.Vec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	row := 0 // physical 1-based row of the line just read
	d := 0   // header width
	blanks := 0
	var pts []vec.Vec
	for sc.Scan() {
		row++
		line := strings.TrimSuffix(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			if row == 1 {
				return nil, csvErrf(1, 0, "blank header row")
			}
			// Tolerated only as trailing padding: a later data row makes
			// this an interior blank, which is a hole in the data.
			blanks++
			continue
		}
		fields := strings.Split(line, ",")
		if row == 1 {
			d = len(fields)
			continue // header: names only, nothing to parse
		}
		if blanks > 0 {
			return nil, csvErrf(row, 0, "data row after %d blank line(s); blank lines are only allowed at the end of the file", blanks)
		}
		if len(fields) != d {
			return nil, csvErrf(row, 0, "ragged row: %d fields, want %d (header width)", len(fields), d)
		}
		p := vec.New(d)
		for j, s := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, csvErrf(row, j+1, "not a number: %q", strings.TrimSpace(s))
			}
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, csvErrf(row, j+1, "non-finite value %v", x)
			}
			p[j] = x
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, csvErrf(row+1, 0, "%v", err)
	}
	if row == 0 {
		return nil, csvErrf(0, 0, "empty file (want a header row and at least one data row)")
	}
	if len(pts) == 0 {
		return nil, csvErrf(0, 0, "no data rows (header only)")
	}
	return pts, nil
}
