package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"rrq/internal/vec"
)

// WriteCSV writes points as rows of decimal values with a header
// attr1..attrD.
func WriteCSV(w io.Writer, pts []vec.Vec) error {
	cw := csv.NewWriter(w)
	if len(pts) > 0 {
		hdr := make([]string, len(pts[0]))
		for j := range hdr {
			hdr[j] = fmt.Sprintf("attr%d", j+1)
		}
		if err := cw.Write(hdr); err != nil {
			return err
		}
	}
	row := make([]string, 0, 8)
	for _, p := range pts {
		row = row[:0]
		for _, x := range p {
			row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads points written by WriteCSV (or any numeric CSV with a
// one-line header). All rows must have the same width.
func ReadCSV(r io.Reader) ([]vec.Vec, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) <= 1 {
		return nil, nil
	}
	d := len(rows[0])
	pts := make([]vec.Vec, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != d {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i+2, len(row), d)
		}
		p := vec.New(d)
		for j, s := range row {
			x, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d field %d: %w", i+2, j+1, err)
			}
			p[j] = x
		}
		pts = append(pts, p)
	}
	return pts, nil
}
