// Package server is the rrqd serving layer: HTTP endpoints over a
// persistent rrq.Index with queue-depth-aware admission control, per-tenant
// work metering and concurrent-duplicate coalescing. The package is
// deliberately thin — solving, caching, resilience and observability all
// live in the library; the server adds exactly the concerns a long-running
// front-end needs: request decoding, typed-error → status-code mapping,
// load shedding with Retry-After, and graceful introspection.
//
// Endpoints (see docs/SERVING.md):
//
//	POST /v1/solve   {"q":[...], "k":2, "epsilon":0.1, "tenant":"t"}
//	POST /v1/insert  {"point":[...]}
//	POST /v1/delete  {"index":3}
//	GET  /v1/stats
//	GET  /metrics
//	GET  /healthz
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rrq"
	"rrq/internal/core"
)

// Config assembles a Server. Index is required unless Recovering;
// everything else has a serviceable default.
type Config struct {
	// Index serves every query and mutation. It may be nil when Recovering
	// is set: the server then answers 503 (with Retry-After) until Ready
	// publishes the recovered index — this is what lets rrqd listen, and
	// report health honestly, while it replays its WAL.
	Index *rrq.Index
	// Recovering starts the server without an index: /healthz answers 503
	// "recovering" and every v1 endpoint sheds with 503 + Retry-After
	// until Ready is called.
	Recovering bool
	// Metrics, when set, receives the server counters ("server.requests",
	// "server.shed", "server.tenant_rejected", "server.dedup") and the
	// "server.queue_depth" gauge. Share the registry with the index options
	// to expose solver and cache traffic on the same /metrics page.
	Metrics *rrq.Registry
	// Admission is the load controller; nil defaults to AdmitAlways with
	// GOMAXPROCS solve slots.
	Admission *Admission
	// Tenants meters per-tenant work; nil disables metering.
	Tenants *TenantBudgets
	// BaseContext, when set, replaces the request context for solves —
	// a test hook (fault injectors are context-carried) mirroring
	// http.Server.BaseContext.
	BaseContext func() context.Context
	// AnytimeBudget, when positive, turns saturation under the cap policy
	// into graceful degradation: a request the admission controller would
	// shed is instead answered on the anytime tier — the progressive A-PC
	// construction cut at this wall-clock budget — without occupying a
	// solve slot. The response carries tier "anytime" (X-RRQ-Tier header
	// and body field) plus the enforced accuracy contract, and the
	// "server.tier_degraded" counter tracks how often saturation degraded
	// instead of shedding. Zero keeps the pure shed behavior (429).
	AnytimeBudget time.Duration
	// Now is the clock used for tenant metering; nil means time.Now.
	Now func() time.Time
}

// Server is the rrqd HTTP front-end. Create with New, expose with Handler.
type Server struct {
	cfg     Config
	adm     *Admission
	mux     *http.ServeMux
	flights flightGroup

	// ix is the served index: nil while recovering, published by Ready.
	ix atomic.Pointer[rrq.Index]
	// draining is flipped by StartDrain: in-flight requests finish, new
	// v1 requests answer 503 so clients re-resolve instead of queueing
	// behind a closing listener.
	draining atomic.Bool
}

// New validates the configuration and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Index == nil && !cfg.Recovering {
		return nil, errors.New("server: Config.Index is required (or set Recovering and publish via Ready)")
	}
	if cfg.Admission == nil {
		cfg.Admission = NewAdmission(AdmitAlways, runtime.GOMAXPROCS(0), 0)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{cfg: cfg, adm: cfg.Admission}
	if cfg.Index != nil {
		s.ix.Store(cfg.Index)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/insert", s.handleInsert)
	s.mux.HandleFunc("/v1/delete", s.handleDelete)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Ready publishes the index of a Recovering server: recovery is complete,
// v1 endpoints start serving. Safe to call at most once, from any
// goroutine.
func (s *Server) Ready(ix *rrq.Index) { s.ix.Store(ix) }

// StartDrain puts the server into draining: every subsequent v1 request
// answers 503 with Retry-After while in-flight solves run to completion.
// The caller (rrqd's signal handler) then waits via http.Server.Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// gate resolves the served index for one request, or writes the 503
// unavailable response (recovering/draining, Retry-After set) and returns
// nil.
func (s *Server) gate(w http.ResponseWriter) *rrq.Index {
	if s.draining.Load() {
		s.unavailable(w, "draining")
		return nil
	}
	ix := s.ix.Load()
	if ix == nil {
		s.unavailable(w, "recovering")
		return nil
	}
	return ix
}

// unavailable sheds one request while the server cannot serve: 503, a
// stable kind, and a Retry-After so well-behaved clients back off.
func (s *Server) unavailable(w http.ResponseWriter, kind string) {
	s.counter("server.unavailable")
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error: "server " + kind + ", retry shortly", Kind: kind, RetryAfterS: 1})
}

// counter bumps a named server counter when metrics are configured.
func (s *Server) counter(name string) {
	if reg := s.cfg.Metrics; reg != nil {
		reg.Counter(name).Inc()
	}
}

// solveRequest is the /v1/solve body. Tenant may instead arrive in the
// X-RRQ-Tenant header (the body wins when both are set).
type solveRequest struct {
	Q       []float64 `json:"q"`
	K       int       `json:"k"`
	Epsilon float64   `json:"epsilon"`
	Tenant  string    `json:"tenant"`
}

// querySpec echoes a query in responses (the cache-bound source).
type querySpec struct {
	Q       []float64 `json:"q"`
	K       int       `json:"k"`
	Epsilon float64   `json:"epsilon"`
}

// degradedNote reports a fallback-served answer.
type degradedNote struct {
	Reason string `json:"reason"`
	Solver string `json:"solver"`
	Cause  string `json:"cause"`
}

// accuracyNote reports an anytime answer's enforced accuracy contract:
// the samples the construction consumed, the Lemma 5.10 volume-ratio
// bound they support at confidence 1−delta, whether a budget cut the run,
// and an independently seeded volume estimate of the served region.
type accuracyNote struct {
	SamplesUsed int     `json:"samples_used"`
	RhoBound    float64 `json:"rho_bound"`
	Delta       float64 `json:"delta"`
	Cut         bool    `json:"cut"`
	VolumeEst   float64 `json:"volume_est"`
}

// solveResponse is the /v1/solve success body. Cache is the CacheStatus
// string ("bypass", "miss", "hit", "inner-bound", "outer-bound"); for
// bound-served answers CacheSource names the cached query whose region is
// returned, and the region bounds — rather than equals — the true answer.
// Tier ("exact", "approx", "anytime" — also the X-RRQ-Tier header)
// classifies the serving contract; anytime answers additionally carry
// Accuracy.
type solveResponse struct {
	Version     uint64          `json:"version"`
	Partitions  int             `json:"partitions"`
	ElapsedMS   float64         `json:"elapsed_ms"`
	Cache       string          `json:"cache"`
	Tier        string          `json:"tier"`
	Accuracy    *accuracyNote   `json:"accuracy,omitempty"`
	CacheSource *querySpec      `json:"cache_source,omitempty"`
	Degraded    *degradedNote   `json:"degraded,omitempty"`
	Deduped     bool            `json:"deduped,omitempty"`
	Region      json.RawMessage `json:"region"`
}

// errorResponse is every non-2xx body: the message, a stable kind for
// programmatic handling, the Retry-After echo for 429s and — for
// panic-isolated failures — the degradation note.
type errorResponse struct {
	Error       string `json:"error"`
	Kind        string `json:"kind"`
	RetryAfterS int64  `json:"retry_after_s,omitempty"`
	Note        string `json:"note,omitempty"`
}

// statusFor maps a typed solve error to its HTTP status, stable kind and
// optional degradation note — the contract the error-mapping tests pin:
// validation (*QueryError/*DataError) → 400, capacity (*BudgetError, shed)
// → 429, aborted work (deadline) → 504, isolated panics (*SolveError) and
// numerical failures → 500.
func statusFor(err error) (status int, kind, note string) {
	var qe *core.QueryError
	var de *core.DataError
	var be *core.BudgetError
	var se *core.SolveError
	var ne *core.NumericalError
	var she *ShedError
	switch {
	case errors.As(err, &qe):
		return http.StatusBadRequest, "query", ""
	case errors.As(err, &de):
		return http.StatusBadRequest, "data", ""
	case errors.As(err, &she):
		return http.StatusTooManyRequests, "shed", ""
	case errors.As(err, &be):
		return http.StatusTooManyRequests, "budget", ""
	case errors.Is(err, core.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline", ""
	case errors.As(err, &se):
		return http.StatusInternalServerError, "panic",
			fmt.Sprintf("solver %s panicked; the failure was isolated to this query and the index remains serviceable", se.Solver)
	case errors.As(err, &ne):
		return http.StatusInternalServerError, "numerical", ""
	default:
		return http.StatusInternalServerError, "internal", ""
	}
}

// writeError emits the mapped error body; retryAfter > 0 additionally sets
// the Retry-After header (429/503 semantics).
func writeError(w http.ResponseWriter, err error, retryAfter time.Duration) {
	status, kind, note := statusFor(err)
	seconds := int64(0)
	if retryAfter > 0 {
		seconds = int64(retryAfter / time.Second)
		if seconds < 1 {
			seconds = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(seconds, 10))
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Kind: kind, RetryAfterS: seconds, Note: note})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeBody decodes a JSON request body (bounded at 1 MiB), reporting
// malformed input as a *QueryError so it maps to 400 like any other
// validation failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &core.QueryError{Field: "body", Msg: fmt.Sprintf("malformed request: %v", err)}
	}
	return nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.counter("server.requests")
	ix := s.gate(w)
	if ix == nil {
		return
	}
	var req solveRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err, 0)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-RRQ-Tenant")
	}
	if retry, err := s.cfg.Tenants.Admit(tenant, s.cfg.Now()); err != nil {
		s.counter("server.tenant_rejected")
		writeError(w, err, retry)
		return
	}
	ctx := r.Context()
	if s.cfg.BaseContext != nil {
		ctx = s.cfg.BaseContext()
	}
	q := rrq.Query{Q: rrq.Point(req.Q), K: req.K, Epsilon: req.Epsilon}
	release, err := s.adm.Acquire(ctx)
	if err != nil {
		var she *ShedError
		if errors.As(err, &she) {
			if s.cfg.AnytimeBudget > 0 {
				// Saturation degrades instead of shedding: answer on the
				// anytime tier, outside the solve slots — the budget bounds
				// the work, so the degraded path cannot pile onto the very
				// queue that triggered it.
				s.counter("server.tier_degraded")
				res, err := ix.SolveContext(ctx, q, rrq.WithAnytime(s.cfg.AnytimeBudget))
				if err != nil {
					writeError(w, err, 0)
					return
				}
				s.cfg.Tenants.Charge(tenant, WorkUnits(res.Stats), s.cfg.Now())
				s.writeSolve(w, ix.Version(), res, false)
				return
			}
			s.counter("server.shed")
			writeError(w, err, she.RetryAfter)
			return
		}
		writeError(w, err, 0) // context canceled/expired while queued
		return
	}
	s.gaugeDepth()
	// Coalesce concurrent identical requests: one solve serves them all.
	// The key pairs the canonical query form with the current epoch so a
	// mutation mid-flight never couples requests across versions (each
	// solve still pins its own snapshot).
	key := strconv.FormatUint(ix.Version(), 10) + "|" + q.Key()
	start := time.Now()
	res, shared, err := s.flights.Do(key, func() (rrq.Result, error) {
		return ix.SolveContext(ctx, q)
	})
	release(time.Since(start))
	s.gaugeDepth()
	if err != nil {
		writeError(w, err, 0)
		return
	}
	if shared {
		s.counter("server.dedup")
	} else {
		// Post-paid metering: only the tenant whose request ran the solve
		// is charged; coalesced followers consumed no solver work.
		s.cfg.Tenants.Charge(tenant, WorkUnits(res.Stats), s.cfg.Now())
	}
	s.writeSolve(w, ix.Version(), res, shared)
}

// writeSolve emits the success body (and the X-RRQ-Tier header) for one
// solve result.
func (s *Server) writeSolve(w http.ResponseWriter, version uint64, res rrq.Result, shared bool) {
	region, err := res.Region.MarshalJSON()
	if err != nil {
		writeError(w, err, 0)
		return
	}
	resp := solveResponse{
		Version:    version,
		Partitions: res.Region.NumPartitions(),
		ElapsedMS:  float64(res.Elapsed.Microseconds()) / 1000,
		Cache:      res.Cache.String(),
		Tier:       res.Tier.String(),
		Deduped:    shared,
		Region:     region,
	}
	if acc := res.Accuracy; acc != nil {
		resp.Accuracy = &accuracyNote{
			SamplesUsed: acc.SamplesUsed,
			RhoBound:    acc.RhoBound,
			Delta:       acc.Delta,
			Cut:         acc.Cut,
			VolumeEst:   acc.VolumeEst,
		}
	}
	if src := res.CacheSource; src != nil {
		resp.CacheSource = &querySpec{Q: src.Q, K: src.K, Epsilon: src.Epsilon}
	}
	if deg := res.Degraded; deg != nil {
		resp.Degraded = &degradedNote{Reason: deg.Reason.String(), Solver: deg.Solver, Cause: deg.Cause.Error()}
	}
	w.Header().Set("X-RRQ-Tier", res.Tier.String())
	writeJSON(w, http.StatusOK, resp)
}

// gaugeDepth publishes the current queue depth.
func (s *Server) gaugeDepth() {
	if reg := s.cfg.Metrics; reg != nil {
		reg.Gauge("server.queue_depth").Set(float64(s.adm.Depth()))
	}
}

type insertRequest struct {
	Point []float64 `json:"point"`
}

type deleteRequest struct {
	Index int `json:"index"`
}

type mutateResponse struct {
	Version uint64 `json:"version"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ix := s.gate(w)
	if ix == nil {
		return
	}
	var req insertRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err, 0)
		return
	}
	v, err := ix.Insert(rrq.Point(req.Point))
	if err != nil {
		writeError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{Version: v})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ix := s.gate(w)
	if ix == nil {
		return
	}
	var req deleteRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err, 0)
		return
	}
	if n := ix.Len(); req.Index < 0 || req.Index >= n {
		writeError(w, &core.DataError{Point: req.Index, Attr: -1,
			Msg: fmt.Sprintf("delete index out of range [0,%d)", n)}, 0)
		return
	}
	v, err := ix.Delete(req.Index)
	if err != nil {
		writeError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{Version: v})
}

// statsResponse is the /v1/stats body: the index's introspection view plus
// the server's admission state.
type statsResponse struct {
	Index  rrq.IndexStats `json:"index"`
	Server serverStats    `json:"server"`
}

type serverStats struct {
	Policy     string `json:"policy"`
	Capacity   int    `json:"capacity"`
	QueueDepth int    `json:"queue_depth"`
	Shed       int64  `json:"shed"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ix := s.ix.Load()
	if ix == nil {
		s.unavailable(w, "recovering")
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Index: ix.Stats(),
		Server: serverStats{
			Policy:     string(s.adm.Policy()),
			Capacity:   s.adm.Capacity(),
			QueueDepth: s.adm.Depth(),
			Shed:       s.adm.Shed(),
		},
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if reg := s.cfg.Metrics; reg != nil {
		_ = reg.WriteText(w)
	}
}

// handleHealthz reports the serving state as plain text: 200 "ok" when
// serving, 503 with "recovering" (index still being rebuilt from
// checkpoint + WAL) or "draining" (shutdown under way) otherwise. The 503
// is what makes -drain-grace work: health checkers keyed on status code —
// the common load-balancer configuration — must see the instance as
// not-ready during the grace window to deregister it before connections
// close.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case s.ix.Load() == nil:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "recovering")
	default:
		fmt.Fprintln(w, "ok")
	}
}

// flightGroup coalesces concurrent calls with the same key into one
// execution — a minimal single-flight (no external dependency). Followers
// block until the leader finishes and share its result.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	res  rrq.Result
	err  error
}

// Do runs fn once per key among concurrent callers; shared reports whether
// this caller received another caller's result.
func (g *flightGroup) Do(key string, fn func() (rrq.Result, error)) (res rrq.Result, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.res, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.res, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, false, f.err
}
