package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// AdmissionPolicy selects how the controller reacts to saturation.
type AdmissionPolicy string

const (
	// AdmitAlways never sheds: every request queues until a solve slot
	// frees up (or its context is canceled). Latency grows without bound
	// under overload; the policy exists as the baseline the simulator
	// compares shedding against.
	AdmitAlways AdmissionPolicy = "always"
	// AdmitCap sheds once the queue behind the solve slots exceeds the
	// configured depth: the request fails fast with a *ShedError carrying
	// a Retry-After estimate instead of joining a hopeless queue.
	AdmitCap AdmissionPolicy = "cap"
)

// ParseAdmissionPolicy maps a flag value to a policy.
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	switch AdmissionPolicy(s) {
	case AdmitAlways:
		return AdmitAlways, nil
	case AdmitCap:
		return AdmitCap, nil
	default:
		return "", fmt.Errorf(`server: unknown admission policy %q (want "always" or "cap")`, s)
	}
}

// ShedError is returned by Admission.Acquire when the cap policy rejects a
// request: the queue already holds MaxQueue waiters behind every solve
// slot. RetryAfter estimates when the queue will have drained enough to
// admit, from the controller's moving average of recent solve times.
type ShedError struct {
	Depth      int           // in-flight + queued requests at rejection
	RetryAfter time.Duration // drain estimate, always ≥ 1s
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("server: load shed at queue depth %d, retry after %s", e.Depth, e.RetryAfter)
}

// Admission is the queue-depth-aware admission controller: Capacity solve
// slots, requests beyond them queue, and — under the cap policy — requests
// beyond Capacity+MaxQueue are shed. It is HTTP-free so the closed-loop
// simulator drives exactly the component the server deploys.
type Admission struct {
	policy   AdmissionPolicy
	capacity int
	maxQueue int

	slots chan struct{}
	depth atomic.Int64 // queued + running
	shed  atomic.Int64 // lifetime rejections

	// avgSolveNs is an EWMA of observed solve durations, feeding the
	// Retry-After estimate. Stored as nanoseconds for atomic updates.
	avgSolveNs atomic.Int64
}

// NewAdmission builds a controller with capacity concurrent solve slots
// and, under AdmitCap, at most maxQueue waiters behind them. capacity ≤ 0
// is treated as 1; maxQueue < 0 as 0 (shed as soon as every slot is busy).
func NewAdmission(policy AdmissionPolicy, capacity, maxQueue int) *Admission {
	if capacity <= 0 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		policy:   policy,
		capacity: capacity,
		maxQueue: maxQueue,
		slots:    make(chan struct{}, capacity),
	}
}

// Acquire admits one request: it joins the queue, waits for a solve slot
// and returns the release closure the caller must invoke when the solve
// finishes (passing the observed duration, which feeds the Retry-After
// estimator). Under the cap policy a request arriving at a full queue is
// rejected immediately with a *ShedError; a canceled context returns
// ctx.Err() from the wait.
func (a *Admission) Acquire(ctx context.Context) (release func(elapsed time.Duration), err error) {
	depth := a.depth.Add(1)
	if a.policy == AdmitCap && depth > int64(a.capacity+a.maxQueue) {
		a.depth.Add(-1)
		a.shed.Add(1)
		// The drain estimate covers the requests actually ahead of a retry:
		// depth still counts this rejected request (its decrement has
		// already happened, but depth is the pre-decrement observation), so
		// passing it unadjusted would inflate every Retry-After by one
		// avg-solve.
		return nil, &ShedError{Depth: int(depth), RetryAfter: a.retryAfter(depth - 1)}
	}
	select {
	case a.slots <- struct{}{}:
	case <-ctx.Done():
		a.depth.Add(-1)
		return nil, ctx.Err()
	}
	return func(elapsed time.Duration) {
		a.observe(elapsed)
		<-a.slots
		a.depth.Add(-1)
	}, nil
}

// observe folds one solve duration into the EWMA (α = 1/8).
func (a *Admission) observe(elapsed time.Duration) {
	for {
		old := a.avgSolveNs.Load()
		var next int64
		if old == 0 {
			next = int64(elapsed)
		} else {
			next = old + (int64(elapsed)-old)/8
		}
		if a.avgSolveNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// Retry-After bounds: never advertise 0 (clients would hammer a cold
// server whose EWMA is still empty), never more than a minute (a huge
// estimate from one pathological solve should not push clients into
// effectively giving up — the queue drains faster than the worst sample
// suggests).
const (
	minRetryAfter = time.Second
	maxRetryAfter = 60 * time.Second
)

// retryAfter estimates how long until the queue drains below the cap: the
// excess depth divided by the service rate (capacity slots, each finishing
// every avgSolve), clamped to [minRetryAfter, maxRetryAfter]. With no
// history yet it answers the floor.
func (a *Admission) retryAfter(depth int64) time.Duration {
	avg := time.Duration(a.avgSolveNs.Load())
	if avg <= 0 {
		return minRetryAfter
	}
	d := time.Duration(depth-int64(a.capacity)) * avg / time.Duration(a.capacity)
	if d < minRetryAfter {
		return minRetryAfter
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d.Round(time.Second)
}

// Depth returns the current queued + running request count.
func (a *Admission) Depth() int { return int(a.depth.Load()) }

// Shed returns the lifetime count of rejected requests.
func (a *Admission) Shed() int64 { return a.shed.Load() }

// Policy returns the controller's admission policy.
func (a *Admission) Policy() AdmissionPolicy { return a.policy }

// Capacity returns the number of concurrent solve slots.
func (a *Admission) Capacity() int { return a.capacity }
