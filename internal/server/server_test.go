package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rrq"
	"rrq/internal/faultinject"
)

// testIndex builds a small 2-d index with caching enabled.
func testIndex(t *testing.T, opts ...rrq.Option) *rrq.Index {
	t.Helper()
	ds, err := rrq.NewDataset([][]float64{
		{0.20, 0.92},
		{0.70, 0.54},
		{0.60, 0.30},
		{0.35, 0.80},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := rrq.BuildIndex(ds, append([]rrq.Option{rrq.WithResultCache(32)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeSolve(t *testing.T, b []byte) solveResponse {
	t.Helper()
	var sr solveResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatalf("malformed solve response %s: %v", b, err)
	}
	return sr
}

func decodeError(t *testing.T, b []byte) errorResponse {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatalf("malformed error response %s: %v", b, err)
	}
	return er
}

const solveBody = `{"q":[0.4,0.7],"k":2,"epsilon":0.1}`

// The CI smoke sequence as a unit test: solve, repeat (cache hit), insert
// (version bump), solve again (version miss).
func TestSolveInsertSolveCacheFlow(t *testing.T) {
	reg := rrq.NewRegistry()
	ix := testIndex(t, rrq.WithMetrics(reg))
	ts := newTestServer(t, Config{Index: ix, Metrics: reg})

	resp, b := postJSON(t, ts.URL+"/v1/solve", solveBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, b)
	}
	first := decodeSolve(t, b)
	if first.Cache != "miss" || first.Version != 1 {
		t.Fatalf("first solve: cache=%q version=%d, want miss/1", first.Cache, first.Version)
	}
	if len(first.Region) == 0 || first.Partitions == 0 {
		t.Fatalf("first solve returned no region: %s", b)
	}

	resp, b = postJSON(t, ts.URL+"/v1/solve", solveBody)
	second := decodeSolve(t, b)
	if resp.StatusCode != http.StatusOK || second.Cache != "hit" {
		t.Fatalf("repeat solve: status=%d cache=%q, want 200/hit", resp.StatusCode, second.Cache)
	}
	if !bytes.Equal(first.Region, second.Region) {
		t.Fatal("cache-served region differs from the fresh answer")
	}

	resp, b = postJSON(t, ts.URL+"/v1/insert", `{"point":[0.5,0.6]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, b)
	}
	var mr mutateResponse
	if err := json.Unmarshal(b, &mr); err != nil || mr.Version != 2 {
		t.Fatalf("insert response %s, want version 2", b)
	}

	resp, b = postJSON(t, ts.URL+"/v1/solve", solveBody)
	third := decodeSolve(t, b)
	if resp.StatusCode != http.StatusOK || third.Cache != "miss" || third.Version != 2 {
		t.Fatalf("post-insert solve: status=%d cache=%q version=%d, want 200/miss/2", resp.StatusCode, third.Cache, third.Version)
	}

	// Delete restores the original market; yet another epoch.
	resp, b = postJSON(t, ts.URL+"/v1/delete", `{"index":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d: %s", resp.StatusCode, b)
	}

	// Stats reflect the traffic.
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Index.Version != 3 || st.Index.Points != 4 {
		t.Fatalf("stats index = %+v, want version 3 with 4 points", st.Index)
	}
	if st.Index.Cache == nil || st.Index.Cache.Hits < 1 {
		t.Fatalf("stats cache = %+v, want ≥ 1 hit", st.Index.Cache)
	}

	// The metrics page carries the library counters.
	r3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(r3.Body)
	for _, want := range []string{"cache.hit", "server.requests", "rrq.solves"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, buf.String())
		}
	}
}

// Typed validation errors map to 400 with a stable kind.
func TestErrorMappingValidation(t *testing.T) {
	ts := newTestServer(t, Config{Index: testIndex(t)})
	cases := []struct {
		name, path, body, kind string
	}{
		{"malformed json", "/v1/solve", `{"q":`, "query"},
		{"bad k", "/v1/solve", `{"q":[0.4,0.7],"k":0,"epsilon":0.1}`, "query"},
		{"bad epsilon", "/v1/solve", `{"q":[0.4,0.7],"k":2,"epsilon":1.5}`, "query"},
		{"dimension mismatch", "/v1/solve", `{"q":[0.4,0.7,0.1],"k":2,"epsilon":0.1}`, "query"},
		{"unknown field", "/v1/solve", `{"qq":[0.4]}`, "query"},
		{"insert NaN-free dim mismatch", "/v1/insert", `{"point":[0.4]}`, "data"},
		{"delete out of range", "/v1/delete", `{"index":99}`, "data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, b := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s, want 400", resp.StatusCode, b)
			}
			if er := decodeError(t, b); er.Kind != tc.kind {
				t.Fatalf("kind %q, want %q (%s)", er.Kind, tc.kind, b)
			}
		})
	}
}

// A solver work-budget failure surfaces as 429 with kind "budget".
func TestErrorMappingSolverBudget(t *testing.T) {
	// The budget checks are amortized, so a toy market never trips them:
	// find a query on which LP-CTA does real LP work (the resilience
	// suite's precondition), then cap the budget far below it.
	ds := rrq.SyntheticDataset(rrq.Independent, 300, 2, 13)
	var q rrq.Point
	for seed := int64(1); seed < 30; seed++ {
		cand := ds.RandomQuery(seed)
		res, err := rrq.SolveResult(ds, rrq.Query{Q: cand, K: 10, Epsilon: 0.2},
			rrq.WithAlgorithm(rrq.LPCTAAlgo))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Region.IsEmpty() && res.Stats.LPSolves > 200 {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("precondition: no query makes LP-CTA work hard enough")
	}
	ix, err := rrq.BuildIndex(ds, rrq.WithWorkBudget(50), rrq.WithAlgorithm(rrq.LPCTAAlgo))
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Index: ix})
	resp, b := postJSON(t, ts.URL+"/v1/solve",
		fmt.Sprintf(`{"q":[%.17g,%.17g],"k":10,"epsilon":0.2}`, q[0], q[1]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s, want 429", resp.StatusCode, b)
	}
	if er := decodeError(t, b); er.Kind != "budget" {
		t.Fatalf("kind %q, want budget (%s)", er.Kind, b)
	}
}

// A tenant in deficit is rejected 429/"budget" with Retry-After, and other
// tenants are unaffected.
func TestErrorMappingTenantBudget(t *testing.T) {
	ts := newTestServer(t, Config{
		Index:   testIndex(t),
		Tenants: NewTenantBudgets(0.001, 1),
	})
	body := `{"q":[0.4,0.7],"k":2,"epsilon":0.1,"tenant":"alice"}`
	resp, b := postJSON(t, ts.URL+"/v1/solve", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first tenant solve: %d %s", resp.StatusCode, b)
	}
	resp, b = postJSON(t, ts.URL+"/v1/solve", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("deficit tenant status %d: %s, want 429", resp.StatusCode, b)
	}
	er := decodeError(t, b)
	if er.Kind != "budget" || er.RetryAfterS < 1 {
		t.Fatalf("deficit tenant error %+v, want budget with Retry-After ≥ 1", er)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	// A different tenant still gets through.
	resp, b = postJSON(t, ts.URL+"/v1/solve", `{"q":[0.4,0.7],"k":2,"epsilon":0.1,"tenant":"bob"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status %d: %s, want 200", resp.StatusCode, b)
	}
}

// Saturating the cap policy sheds with 429, kind "shed" and Retry-After.
func TestErrorMappingShed(t *testing.T) {
	inj := faultinject.New(&faultinject.Fault{
		Point: faultinject.SolveStart,
		Delay: 300 * time.Millisecond,
	})
	adm := NewAdmission(AdmitCap, 1, 0)
	ts := newTestServer(t, Config{
		Index:       testIndex(t),
		Admission:   adm,
		BaseContext: func() context.Context { return faultinject.ContextWith(context.Background(), inj) },
	})
	// Occupy the only slot with a slow solve...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/v1/solve", solveBody)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("slow solve status %d", resp.StatusCode)
		}
	}()
	for i := 0; adm.Depth() == 0 && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if adm.Depth() == 0 {
		t.Fatal("slow solve never occupied the slot")
	}
	// ...so the next request is shed immediately.
	resp, b := postJSON(t, ts.URL+"/v1/solve", `{"q":[0.35,0.8],"k":1,"epsilon":0.05}`)
	wg.Wait()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s, want 429", resp.StatusCode, b)
	}
	er := decodeError(t, b)
	if er.Kind != "shed" || er.RetryAfterS < 1 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed error %+v (Retry-After %q), want shed with Retry-After", er, resp.Header.Get("Retry-After"))
	}
	if adm.Shed() != 1 {
		t.Fatalf("shed counter = %d, want 1", adm.Shed())
	}
}

// With an anytime budget configured, saturation under the cap policy
// degrades to the anytime tier instead of shedding: 200 with tier
// "anytime" (header and body), an accuracy contract, and the
// "server.tier_degraded" counter — while an unsaturated solve still
// reports tier "exact".
func TestDegradedAnytimeTierUnderSaturation(t *testing.T) {
	inj := faultinject.New(&faultinject.Fault{
		Point: faultinject.SolveStart,
		Delay: 300 * time.Millisecond,
		Times: 1,
	})
	reg := rrq.NewRegistry()
	adm := NewAdmission(AdmitCap, 1, 0)
	ts := newTestServer(t, Config{
		Index:         testIndex(t, rrq.WithMetrics(reg)),
		Metrics:       reg,
		Admission:     adm,
		AnytimeBudget: 50 * time.Millisecond,
		BaseContext:   func() context.Context { return faultinject.ContextWith(context.Background(), inj) },
	})
	// Occupy the only slot with a slow solve...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/v1/solve", solveBody)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("slow solve status %d", resp.StatusCode)
		}
	}()
	for i := 0; adm.Depth() == 0 && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if adm.Depth() == 0 {
		t.Fatal("slow solve never occupied the slot")
	}
	// ...so the next request degrades to the anytime tier instead of 429.
	resp, b := postJSON(t, ts.URL+"/v1/solve", `{"q":[0.35,0.8],"k":1,"epsilon":0.05}`)
	wg.Wait()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded solve status %d: %s, want 200", resp.StatusCode, b)
	}
	sr := decodeSolve(t, b)
	if sr.Tier != "anytime" || resp.Header.Get("X-RRQ-Tier") != "anytime" {
		t.Fatalf("degraded solve tier body=%q header=%q, want anytime", sr.Tier, resp.Header.Get("X-RRQ-Tier"))
	}
	if sr.Accuracy == nil || sr.Accuracy.RhoBound <= 0 || sr.Accuracy.RhoBound > 1 {
		t.Fatalf("degraded solve accuracy %+v, want a ρ bound in (0, 1]", sr.Accuracy)
	}
	// The admission controller still observed the saturation (adm.Shed()),
	// but the server degraded instead of answering 429: its shed counter
	// stays at zero, the degrade counter records the tier switch.
	if got := reg.Counter("server.shed").Value(); got != 0 {
		t.Fatalf("server.shed = %d, want 0 (degraded, not shed)", got)
	}
	if got := reg.Counter("server.tier_degraded").Value(); got != 1 {
		t.Fatalf("server.tier_degraded = %d, want 1", got)
	}

	// Unsaturated, the tier annotations report the exact path.
	resp, b = postJSON(t, ts.URL+"/v1/solve", solveBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-saturation solve status %d: %s", resp.StatusCode, b)
	}
	if sr := decodeSolve(t, b); sr.Tier != "exact" || resp.Header.Get("X-RRQ-Tier") != "exact" {
		t.Fatalf("unsaturated solve tier body=%q header=%q, want exact", sr.Tier, resp.Header.Get("X-RRQ-Tier"))
	}
}

// A panic inside the solver is isolated to its request: 500 with kind
// "panic" and the degradation note, and the server keeps serving.
func TestErrorMappingPanic(t *testing.T) {
	inj := faultinject.New(&faultinject.Fault{
		Point:  faultinject.SolveStart,
		Panics: "injected failure",
		Times:  1,
	})
	ts := newTestServer(t, Config{
		Index:       testIndex(t),
		BaseContext: func() context.Context { return faultinject.ContextWith(context.Background(), inj) },
	})
	resp, b := postJSON(t, ts.URL+"/v1/solve", solveBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d: %s, want 500", resp.StatusCode, b)
	}
	er := decodeError(t, b)
	if er.Kind != "panic" {
		t.Fatalf("kind %q, want panic (%s)", er.Kind, b)
	}
	if !strings.Contains(er.Note, "isolated") {
		t.Fatalf("500 body missing the degradation note: %+v", er)
	}
	// The fault fired once; the server must still answer.
	resp, b = postJSON(t, ts.URL+"/v1/solve", solveBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic solve status %d: %s, want 200", resp.StatusCode, b)
	}
}

// Concurrent identical requests are coalesced into one solve.
func TestSolveDedup(t *testing.T) {
	inj := faultinject.New(&faultinject.Fault{
		Point: faultinject.SolveStart,
		Delay: 300 * time.Millisecond,
	})
	reg := rrq.NewRegistry()
	adm := NewAdmission(AdmitAlways, 4, 0)
	ts := newTestServer(t, Config{
		Index:       testIndex(t, rrq.WithMetrics(reg)),
		Metrics:     reg,
		Admission:   adm,
		BaseContext: func() context.Context { return faultinject.ContextWith(context.Background(), inj) },
	})
	var wg sync.WaitGroup
	wg.Add(1)
	var leader solveResponse
	go func() {
		defer wg.Done()
		_, b := postJSON(t, ts.URL+"/v1/solve", solveBody)
		leader = decodeSolve(t, b)
	}()
	for i := 0; adm.Depth() == 0 && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	_, b := postJSON(t, ts.URL+"/v1/solve", solveBody)
	follower := decodeSolve(t, b)
	wg.Wait()
	if !follower.Deduped && !leader.Deduped {
		t.Fatal("concurrent identical requests were not coalesced")
	}
	if !bytes.Equal(leader.Region, follower.Region) {
		t.Fatal("coalesced requests returned different regions")
	}
	if reg.Counter("server.dedup").Value() < 1 {
		t.Fatalf("server.dedup = %d, want ≥ 1", reg.Counter("server.dedup").Value())
	}
}

// GET on mutation endpoints is rejected.
func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Config{Index: testIndex(t)})
	for _, path := range []string{"/v1/solve", "/v1/insert", "/v1/delete"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

// Admission under the always policy queues instead of shedding.
func TestAdmissionAlwaysQueues(t *testing.T) {
	a := NewAdmission(AdmitAlways, 1, 0)
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		rel2, err := a.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		rel2(time.Millisecond)
		close(done)
	}()
	for i := 0; a.Depth() != 2 && i < 100; i++ {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("second acquire got a slot while the first held it")
	default:
	}
	rel1(time.Millisecond)
	<-done
	if a.Shed() != 0 {
		t.Fatalf("always policy shed %d requests", a.Shed())
	}
	if a.Depth() != 0 {
		t.Fatalf("depth = %d after all releases", a.Depth())
	}
}

// A queued request can abandon the wait via its context.
func TestAdmissionContextCancel(t *testing.T) {
	a := NewAdmission(AdmitAlways, 1, 0)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		errc <- err
	}()
	for i := 0; a.Depth() != 2 && i < 100; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled acquire returned %v", err)
	}
	if a.Depth() != 1 {
		t.Fatalf("depth = %d after canceled waiter left", a.Depth())
	}
	rel(time.Millisecond)
}

// ParseAdmissionPolicy round-trips the two policies and rejects others.
func TestParseAdmissionPolicy(t *testing.T) {
	for _, s := range []string{"always", "cap"} {
		p, err := ParseAdmissionPolicy(s)
		if err != nil || string(p) != s {
			t.Fatalf("ParseAdmissionPolicy(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParseAdmissionPolicy("never"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// Post-paid metering: expensive work drives the balance negative, the
// deficit drains at the refill rate.
func TestTenantBudgetsPostPaid(t *testing.T) {
	tb := NewTenantBudgets(10, 5) // 10 units/s, burst 5
	base := time.Unix(1000, 0)
	if _, err := tb.Admit("t", base); err != nil {
		t.Fatalf("fresh tenant rejected: %v", err)
	}
	tb.Charge("t", 25, base) // balance 5 → −20
	retry, err := tb.Admit("t", base)
	if err == nil {
		t.Fatal("deficit tenant admitted")
	}
	if retry < time.Second || retry > 3*time.Second {
		t.Fatalf("retry = %v, want ≈ 2s (20 units at 10/s)", retry)
	}
	// After the deficit drains, the tenant is admitted again.
	if _, err := tb.Admit("t", base.Add(3*time.Second)); err != nil {
		t.Fatalf("drained tenant still rejected: %v", err)
	}
	// Metering disabled: everything is admitted.
	if _, err := NewTenantBudgets(0, 0).Admit("t", base); err != nil {
		t.Fatalf("disabled meter rejected: %v", err)
	}
}

// WorkUnits floors at one unit and sums the solver counters.
func TestWorkUnits(t *testing.T) {
	if n := WorkUnits(rrq.Stats{}); n != 1 {
		t.Fatalf("empty stats = %d units, want 1", n)
	}
	st := rrq.Stats{PlanesBuilt: 10, NodesCreated: 5, LPSolves: 2, Samples: 3}
	if n := WorkUnits(st); n != 20 {
		t.Fatalf("units = %d, want 20", n)
	}
}

// The flight group runs one fn per key and shares the result.
func TestFlightGroup(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	block := make(chan struct{})
	var calls int
	go g.Do("k", func() (rrq.Result, error) {
		calls++
		close(started)
		<-block
		return rrq.Result{}, fmt.Errorf("shared outcome")
	})
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, shared, err := g.Do("k", func() (rrq.Result, error) {
				t.Error("follower ran the function")
				return rrq.Result{}, nil
			})
			if !shared || err == nil || err.Error() != "shared outcome" {
				t.Errorf("follower: shared=%v err=%v", shared, err)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let followers join the flight
	close(block)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("leader ran %d times", calls)
	}
}

// TestRecoveringServerSheds: a Recovering server answers 503 with
// Retry-After on every v1 endpoint and reports "recovering" on /healthz
// until Ready publishes the index — then it serves normally.
func TestRecoveringServerSheds(t *testing.T) {
	reg := rrq.NewRegistry()
	s, err := New(Config{Recovering: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ep := range []struct{ path, body string }{
		{"/v1/solve", solveBody},
		{"/v1/insert", `{"point":[0.5,0.5]}`},
		{"/v1/delete", `{"index":0}`},
	} {
		resp, b := postJSON(t, ts.URL+ep.path, ep.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while recovering: status %d, want 503", ep.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s while recovering: no Retry-After header", ep.path)
		}
		if er := decodeError(t, b); er.Kind != "recovering" {
			t.Fatalf("%s while recovering: kind %q, want recovering", ep.path, er.Kind)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stats while recovering: status %d, want 503", resp.StatusCode)
	}
	if got := healthz(t, ts.URL); got != "recovering" {
		t.Fatalf("healthz while recovering: %q", got)
	}
	if n := reg.Counter("server.unavailable").Value(); n != 4 {
		t.Fatalf("server.unavailable = %d, want 4", n)
	}

	s.Ready(testIndex(t))
	resp2, b := postJSON(t, ts.URL+"/v1/solve", solveBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("solve after Ready: status %d: %s", resp2.StatusCode, b)
	}
	if got := healthz(t, ts.URL); got != "ok" {
		t.Fatalf("healthz after Ready: %q", got)
	}
}

// TestDrainingServerSheds: StartDrain flips every v1 endpoint to 503
// "draining" while /metrics and /healthz stay reachable for scrapes.
func TestDrainingServerSheds(t *testing.T) {
	s, err := New(Config{Index: testIndex(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, b := postJSON(t, ts.URL+"/v1/solve", solveBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve before drain: status %d: %s", resp.StatusCode, b)
	}
	s.StartDrain()
	resp, b := postJSON(t, ts.URL+"/v1/solve", solveBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining: status %d, want 503", resp.StatusCode)
	}
	if er := decodeError(t, b); er.Kind != "draining" {
		t.Fatalf("solve while draining: kind %q, want draining", er.Kind)
	}
	if got := healthz(t, ts.URL); got != "draining" {
		t.Fatalf("healthz while draining: %q", got)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics while draining: status %d, want 200", mresp.StatusCode)
	}
}

// healthz fetches /healthz and returns its trimmed body, asserting the
// status code matches the state contract: 200 for "ok", 503 otherwise (so
// status-keyed load-balancer checks deregister draining instances).
func healthz(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := strings.TrimSpace(buf.String())
	want := http.StatusServiceUnavailable
	if body == "ok" {
		want = http.StatusOK
	}
	if resp.StatusCode != want {
		t.Fatalf("healthz %q status %d, want %d", body, resp.StatusCode, want)
	}
	return body
}

// Regression for the Retry-After off-by-one: the depth observed at the shed
// boundary still counts the rejected request itself, so the drain estimate
// must subtract the caller. At depth == capacity+maxQueue+1 with a warm
// EWMA, the queue genuinely ahead of a retry is capacity+maxQueue deep —
// the estimate is (maxQueue)·avg/capacity, not (maxQueue+1)·avg/capacity.
func TestRetryAfterExcludesRejectedCaller(t *testing.T) {
	const (
		capacity = 2
		maxQueue = 3
		avg      = 8 * time.Second
	)
	a := NewAdmission(AdmitCap, capacity, maxQueue)
	a.observe(avg) // first observation seeds the EWMA whole

	var releases []func(time.Duration)
	for i := 0; i < capacity; i++ {
		rel, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, rel)
	}
	done := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < maxQueue; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			rel, err := a.Acquire(ctx)
			if err == nil {
				rel(time.Millisecond)
			}
		}()
	}
	for i := 0; a.Depth() != capacity+maxQueue && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.Depth() != capacity+maxQueue {
		t.Fatalf("depth = %d, want the full queue %d", a.Depth(), capacity+maxQueue)
	}

	// The boundary arrival: observed depth is capacity+maxQueue+1.
	_, err := a.Acquire(context.Background())
	var she *ShedError
	if !errors.As(err, &she) {
		t.Fatalf("boundary acquire returned %v, want *ShedError", err)
	}
	if she.Depth != capacity+maxQueue+1 {
		t.Fatalf("ShedError.Depth = %d, want %d", she.Depth, capacity+maxQueue+1)
	}
	want := (time.Duration(maxQueue) * avg / capacity).Round(time.Second)
	inflated := (time.Duration(maxQueue+1) * avg / capacity).Round(time.Second)
	if she.RetryAfter == inflated {
		t.Fatalf("RetryAfter = %v still counts the rejected caller (want %v)", she.RetryAfter, want)
	}
	if she.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want %v", she.RetryAfter, want)
	}

	cancel()
	for _, rel := range releases {
		rel(time.Millisecond)
	}
	for i := 0; i < maxQueue; i++ {
		<-done
	}
}

// TestRetryAfterClamp pins the [1s, 60s] bounds: an empty EWMA answers the
// floor (never Retry-After: 0), and a pathological solve sample cannot
// push the estimate past a minute.
func TestRetryAfterClamp(t *testing.T) {
	a := NewAdmission(AdmitCap, 1, 0)
	if got := a.retryAfter(5); got != time.Second {
		t.Fatalf("cold retryAfter = %v, want 1s", got)
	}
	a.observe(50 * time.Millisecond) // first observation seeds the EWMA whole
	if avg := a.avgSolveNs.Load(); avg != int64(50*time.Millisecond) {
		t.Fatalf("EWMA after first observation = %d, want full sample", avg)
	}
	a.observe(10 * time.Minute) // pathological sample
	if got := a.retryAfter(1000); got != maxRetryAfter {
		t.Fatalf("huge retryAfter = %v, want clamp at %v", got, maxRetryAfter)
	}
	a2 := NewAdmission(AdmitCap, 4, 0)
	a2.observe(2 * time.Second)
	if got := a2.retryAfter(12); got < time.Second || got > maxRetryAfter {
		t.Fatalf("mid-range retryAfter = %v escaped [1s, 60s]", got)
	}
}
