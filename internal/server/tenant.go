package server

import (
	"sync"
	"time"

	"rrq/internal/core"
)

// TenantBudgets meters solver work per tenant with post-paid token
// buckets: admission only requires a non-negative balance, and the actual
// work units a solve consumed (the same units WithWorkBudget counts) are
// charged afterwards — so one expensive query can drive a tenant's balance
// negative, and the tenant then waits out the deficit at the refill rate.
// Post-paid metering avoids guessing a query's cost up front, which for
// reverse regret queries varies by orders of magnitude with (k, ε).
//
// A rejected tenant gets a *core.BudgetError — the same type a per-query
// work budget raises, so clients handle both identically (HTTP 429) — plus
// a Retry-After covering the deficit.
type TenantBudgets struct {
	rate  float64 // work units refilled per second
	burst float64 // bucket capacity (and starting balance)

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewTenantBudgets builds a meter refilling rate work units per second up
// to a burst-sized balance. rate ≤ 0 or burst ≤ 0 disables metering (every
// Admit succeeds).
func NewTenantBudgets(rate, burst float64) *TenantBudgets {
	return &TenantBudgets{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

func (tb *TenantBudgets) enabled() bool { return tb != nil && tb.rate > 0 && tb.burst > 0 }

// refillLocked advances the tenant's bucket to now.
func (tb *TenantBudgets) refillLocked(b *bucket, now time.Time) {
	b.tokens += now.Sub(b.last).Seconds() * tb.rate
	if b.tokens > tb.burst {
		b.tokens = tb.burst
	}
	b.last = now
}

// bucketLocked returns the tenant's bucket, creating it full.
func (tb *TenantBudgets) bucketLocked(tenant string, now time.Time) *bucket {
	b, ok := tb.buckets[tenant]
	if !ok {
		b = &bucket{tokens: tb.burst, last: now}
		tb.buckets[tenant] = b
	}
	return b
}

// Admit decides whether the tenant may start a solve at now. A tenant in
// deficit is rejected with a *core.BudgetError and the duration after
// which the balance turns non-negative again. The empty tenant name is a
// valid (shared, anonymous) tenant.
func (tb *TenantBudgets) Admit(tenant string, now time.Time) (retryAfter time.Duration, err error) {
	if !tb.enabled() {
		return 0, nil
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b := tb.bucketLocked(tenant, now)
	tb.refillLocked(b, now)
	if b.tokens >= 0 {
		return 0, nil
	}
	wait := time.Duration(-b.tokens / tb.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return wait.Round(time.Second), &core.BudgetError{Limit: int64(tb.burst), Spent: int64(tb.burst - b.tokens)}
}

// Charge debits the work a finished solve actually consumed.
func (tb *TenantBudgets) Charge(tenant string, units int64, now time.Time) {
	if !tb.enabled() {
		return
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b := tb.bucketLocked(tenant, now)
	tb.refillLocked(b, now)
	b.tokens -= float64(units)
}

// WorkUnits converts a solve's Stats into charged work units — the sum of
// the per-solver counters the amortized budget checks count, floored at 1
// so even a trivially small solve is metered.
func WorkUnits(st core.Stats) int64 {
	n := int64(st.PlanesBuilt) + int64(st.NodesCreated) + int64(st.Splits) +
		int64(st.LPSolves) + int64(st.Samples)
	if n < 1 {
		n = 1
	}
	return n
}
