package topk

// k-th-rank tie coverage: KthMax and Utilities feed the k-regratio
// computation (core.MinQualifyingEps, Definition 3.2), so duplicated
// utility values at rank k must select the tied value itself — not skip
// over the tie group — or every downstream regret ratio shifts.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"rrq/internal/vec"
)

func TestKthMaxTieTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		k    int
		want float64
	}{
		{"tie spans rank k from above", []float64{0.9, 0.9, 0.9, 0.5}, 2, 0.9},
		{"tie ends exactly at rank k", []float64{0.9, 0.9, 0.5, 0.4}, 2, 0.9},
		{"tie starts exactly at rank k", []float64{0.9, 0.5, 0.5, 0.4}, 2, 0.5},
		{"tie below rank k", []float64{0.9, 0.8, 0.5, 0.5}, 2, 0.8},
		{"all values tied", []float64{0.7, 0.7, 0.7, 0.7}, 3, 0.7},
		{"two tie groups around k", []float64{0.9, 0.9, 0.6, 0.6, 0.6, 0.1}, 4, 0.6},
		{"tied maximum, k=1", []float64{0.8, 0.8, 0.2}, 1, 0.8},
		{"tied minimum, k=n", []float64{0.9, 0.3, 0.3}, 3, 0.3},
		{"negative ties at rank k", []float64{0.2, -0.4, -0.4, -0.9}, 3, -0.4},
		{"tie of zeros at rank k", []float64{0.5, 0, 0, 0}, 2, 0},
		{"unsorted input with ties", []float64{0.5, 0.9, 0.5, 0.9, 0.1}, 3, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := KthMax(tc.xs, tc.k); got != tc.want {
				t.Fatalf("KthMax(%v, %d) = %v, want %v", tc.xs, tc.k, got, tc.want)
			}
			// KthMax must agree with the sort definition even under ties.
			sorted := append([]float64(nil), tc.xs...)
			sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
			if sorted[tc.k-1] != tc.want {
				t.Fatalf("test case inconsistent with sort definition")
			}
		})
	}
}

// kRegratioByDefinition computes Definition 3.2 directly from a descending
// sort: the relative gap between the k-th highest utility and f_u(q),
// floored at zero.
func kRegratioByDefinition(pts []vec.Vec, q vec.Vec, u vec.Vec, k int) float64 {
	utils := Utilities(pts, u)
	sort.Sort(sort.Reverse(sort.Float64Slice(utils)))
	if k > len(utils) {
		k = len(utils)
	}
	sk := utils[k-1]
	fq := u.Dot(q)
	if sk <= 0 {
		return 0
	}
	return math.Max(0, sk-fq) / sk
}

// TestKthMaxMatchesRegratioUnderTies builds datasets with exact utility
// ties at rank k (duplicated points) and checks that the KthMax-based
// k-regratio pipeline matches the definition computed by full sort.
func TestKthMaxMatchesRegratioUnderTies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		d := 2 + trial%4
		k := 1 + rng.Intn(4)
		// k+1 exact copies of one point guarantee a tie group spanning rank
		// k under every utility vector.
		strong := vec.New(d)
		for j := range strong {
			strong[j] = 0.5 + 0.4*rng.Float64()
		}
		pts := make([]vec.Vec, 0, k+5)
		for i := 0; i <= k; i++ {
			pts = append(pts, strong.Clone())
		}
		// Fillers are dominated by strong (coordinates below 0.45 < 0.5), so
		// the tie group occupies ranks 1..k+1 under every utility vector.
		for i := 0; i < 4; i++ {
			p := vec.New(d)
			for j := range p {
				p[j] = 0.05 + 0.4*rng.Float64()
			}
			pts = append(pts, p)
		}
		q := strong.Clone()
		q[rng.Intn(d)] *= 0.9

		for i := 0; i < 20; i++ {
			u := vec.RandSimplex(rng, d)
			sk := KthMax(Utilities(pts, u), k)
			fq := u.Dot(q)
			var viaKth float64
			if sk > 0 {
				viaKth = math.Max(0, sk-fq) / sk
			}
			byDef := kRegratioByDefinition(pts, q, u, k)
			if math.Abs(viaKth-byDef) > 1e-12 {
				t.Fatalf("trial %d: k-regratio via KthMax = %v, by definition = %v (k=%d)", trial, viaKth, byDef, k)
			}
			// The tie group spans rank k, so the k-th max must equal the
			// utility of the duplicated point exactly (bitwise: same inputs,
			// same dot product).
			if sk != u.Dot(strong) {
				t.Fatalf("trial %d: KthMax did not land on the tied value: %v vs %v", trial, sk, u.Dot(strong))
			}
		}
	}
}

// TestUtilitiesTiedPoints: exact duplicate points must produce bitwise
// identical utilities — the property the tie tests above rely on.
func TestUtilitiesTiedPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		d := 2 + trial%5
		p := vec.New(d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts := []vec.Vec{p, p.Clone(), p.Clone()}
		u := vec.RandSimplex(rng, d)
		utils := Utilities(pts, u)
		if utils[0] != utils[1] || utils[1] != utils[2] {
			t.Fatalf("duplicate points produced distinct utilities: %v", utils)
		}
	}
}
