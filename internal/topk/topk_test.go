package topk

import (
	"math/rand"
	"sort"
	"testing"

	"rrq/internal/vec"
)

func TestUtilities(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.2, 0.92), vec.Of(0.7, 0.54), vec.Of(0.6, 0.3)}
	u := vec.Of(0.5, 0.5)
	got := Utilities(pts, u)
	want := []float64{0.56, 0.62, 0.45}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("utility %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKthMaxAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		sorted := append([]float64(nil), xs...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		for _, k := range []int{1, 2, n / 2, n} {
			if k < 1 {
				k = 1
			}
			if got := KthMax(xs, k); got != sorted[k-1] {
				t.Fatalf("KthMax(n=%d,k=%d) = %v, want %v", n, k, got, sorted[k-1])
			}
		}
	}
}

func TestKthMaxClamping(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := KthMax(xs, 0); got != 3 {
		t.Errorf("k=0 clamps to max, got %v", got)
	}
	if got := KthMax(xs, 10); got != 1 {
		t.Errorf("k>n clamps to min, got %v", got)
	}
	// Input must stay intact.
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("KthMax mutated its input")
	}
}

func TestKthMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KthMax(nil, 1)
}

func TestKthMaxDuplicates(t *testing.T) {
	xs := []float64{5, 5, 5, 1}
	if got := KthMax(xs, 3); got != 5 {
		t.Fatalf("got %v, want 5", got)
	}
	if got := KthMax(xs, 4); got != 1 {
		t.Fatalf("got %v, want 1", got)
	}
}

func TestTopKIndices(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.2, 0.92), vec.Of(0.7, 0.54), vec.Of(0.6, 0.3)}
	u := vec.Of(0.5, 0.5)
	got := TopKIndices(pts, u, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("TopKIndices = %v, want [1 0]", got)
	}
	all := TopKIndices(pts, u, 99)
	if len(all) != 3 {
		t.Fatalf("clamped top-k = %v", all)
	}
}

func TestRank(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.2, 0.92), vec.Of(0.7, 0.54), vec.Of(0.6, 0.3)}
	u := vec.Of(0.5, 0.5)
	// Utilities: 0.56, 0.62, 0.45. A value of 0.55 ranks third.
	if got := Rank(pts, u, 0.55); got != 3 {
		t.Fatalf("Rank = %d, want 3", got)
	}
	if got := Rank(pts, u, 0.7); got != 1 {
		t.Fatalf("Rank = %d, want 1", got)
	}
}
