// Package topk provides utility-ranking helpers: the k-th largest utility
// of a dataset under a utility vector (the kmax operator of the paper),
// top-k index selection and query ranking. KthMax uses quickselect so that
// per-sample evaluation in A-PC stays linear.
package topk

import (
	"sort"

	"rrq/internal/vec"
)

// Utilities computes f_u(p) = u·p for every point.
func Utilities(pts []vec.Vec, u vec.Vec) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = u.Dot(p)
	}
	return out
}

// KthMax returns the k-th largest value of xs (1-based: k=1 is the max).
// It clamps k to [1, len(xs)] and panics on an empty slice. xs is not
// modified.
func KthMax(xs []float64, k int) float64 {
	n := len(xs)
	if n == 0 {
		panic("topk: KthMax of empty slice")
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	buf := append([]float64(nil), xs...)
	return quickselectDesc(buf, k-1)
}

// KthMaxScratch is KthMax with caller-owned scratch storage: xs is copied
// into buf (grown as needed) instead of a fresh allocation, and the grown
// buffer is returned for reuse. The selected value is identical to
// KthMax's.
func KthMaxScratch(xs []float64, k int, buf []float64) (float64, []float64) {
	n := len(xs)
	if n == 0 {
		panic("topk: KthMax of empty slice")
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	buf = append(buf[:0], xs...)
	return quickselectDesc(buf, k-1), buf
}

// KthMinScratch returns the k-th smallest value of xs (1-based, clamped
// like KthMax) using buf as scratch: the negated values are selected with
// the same descending quickselect, so the result is bitwise-identical to
// -KthMax(-xs, k).
func KthMinScratch(xs []float64, k int, buf []float64) (float64, []float64) {
	n := len(xs)
	if n == 0 {
		panic("topk: KthMin of empty slice")
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	buf = buf[:0]
	for _, x := range xs {
		buf = append(buf, -x)
	}
	return -quickselectDesc(buf, k-1), buf
}

// quickselectDesc returns the element that would be at index i if buf were
// sorted in descending order. It partially reorders buf.
func quickselectDesc(buf []float64, i int) float64 {
	lo, hi := 0, len(buf)-1
	for lo < hi {
		// Median-of-three pivot for resilience on sorted inputs.
		mid := lo + (hi-lo)/2
		if buf[mid] > buf[lo] {
			buf[mid], buf[lo] = buf[lo], buf[mid]
		}
		if buf[hi] > buf[lo] {
			buf[hi], buf[lo] = buf[lo], buf[hi]
		}
		if buf[mid] > buf[hi] {
			buf[mid], buf[hi] = buf[hi], buf[mid]
		}
		pivot := buf[hi]
		p := lo
		for j := lo; j < hi; j++ {
			if buf[j] > pivot {
				buf[p], buf[j] = buf[j], buf[p]
				p++
			}
		}
		buf[p], buf[hi] = buf[hi], buf[p]
		switch {
		case i == p:
			return buf[p]
		case i < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return buf[lo]
}

// TopKIndices returns the indices of the k points with the largest
// utilities w.r.t. u, in descending utility order. Ties break by index.
func TopKIndices(pts []vec.Vec, u vec.Vec, k int) []int {
	n := len(pts)
	if k > n {
		k = n
	}
	idx := make([]int, n)
	util := Utilities(pts, u)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ua, ub := util[idx[a]], util[idx[b]]
		if ua != ub {
			return ua > ub
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// Rank returns the 1-based rank of value x among the utilities of pts
// w.r.t. u: one plus the number of points with strictly larger utility.
func Rank(pts []vec.Vec, u vec.Vec, x float64) int {
	r := 1
	for _, p := range pts {
		if u.Dot(p) > x {
			r++
		}
	}
	return r
}
