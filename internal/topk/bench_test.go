package topk

import (
	"math/rand"
	"sort"
	"testing"
)

func BenchmarkKthMax(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.Run("quickselect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KthMax(xs, 10)
		}
	})
	b.Run("fullsort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf := append([]float64(nil), xs...)
			sort.Float64s(buf)
			_ = buf[len(buf)-10]
		}
	})
}
