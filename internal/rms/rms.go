// Package rms implements the regret-minimizing set operator of Nanongkai
// et al. (VLDB 2010), the forward counterpart of the reverse regret query:
// select r representative products so that every customer finds, inside the
// selection, a product scoring within a small factor of their favourite in
// the whole market. The reverse regret query asks "who likes this product";
// RMS asks "which products keep everyone happy" — together they make the
// regret toolbox the paper's related-work section surveys.
//
// The maximum regret ratio of a selection is computed exactly with the
// linear-programming substrate: for a fixed market product p,
//
//	maximize  δ
//	s.t.      u·s ≥ u·p·(1−δ) is nonlinear, so the standard reformulation
//	          fixes the scale u·p = 1 and solves
//	          maximize δ  s.t.  u·s ≤ 1 − δ ∀ s ∈ S,  u·p = 1,  u ≥ 0
//
// whose optimum is exactly max_u (f_u(p) − max_{s∈S} f_u(s)) / f_u(p).
package rms

import (
	"fmt"
	"math"

	"rrq/internal/lp"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// MaxRegretRatio computes mrr(S) = max over the market and the utility
// space of the relative loss a customer suffers by shopping only in S.
// Returns 0 when S already contains a best product for every preference.
func MaxRegretRatio(market []vec.Vec, sel []vec.Vec) float64 {
	worst := 0.0
	for _, p := range market {
		if d := regretAgainst(p, sel); d > worst {
			worst = d
		}
	}
	return worst
}

// regretAgainst solves the LP for one market product p: the largest δ such
// that some preference scores p at 1 while every selected product scores at
// most 1−δ.
func regretAgainst(p vec.Vec, sel []vec.Vec) float64 {
	d := p.Dim()
	// Variables: u[0..d-1], δ. Maximize δ.
	nv := d + 1
	obj := vec.New(nv)
	obj[d] = 1
	var aub [][]float64
	var bub []float64
	for _, s := range sel {
		// u·s + δ ≤ 1.
		row := make([]float64, nv)
		copy(row, s)
		row[d] = 1
		aub = append(aub, row)
		bub = append(bub, 1)
	}
	// δ ≤ 1 keeps the problem bounded even for an empty selection.
	capRow := make([]float64, nv)
	capRow[d] = 1
	aub = append(aub, capRow)
	bub = append(bub, 1)
	// u·p = 1.
	eqRow := make([]float64, nv)
	copy(eqRow, p)
	aeq := [][]float64{eqRow}
	beq := []float64{1}

	sol := lp.Maximize(obj, aub, bub, aeq, beq)
	if sol.Status != lp.Optimal {
		// u·p = 1 is infeasible only when p is the zero vector; no
		// preference scores it, so it causes no regret.
		return 0
	}
	if sol.Objective < 0 {
		return 0
	}
	return math.Min(sol.Objective, 1)
}

// Greedy selects r products with the classical greedy strategy: start from
// the product best for the "sum" preference, then repeatedly add the
// product that currently inflicts the largest regret. Only skyline products
// are ever needed. It returns the selected indices (into market order) and
// the final maximum regret ratio.
func Greedy(market []vec.Vec, r int) ([]int, float64, error) {
	if len(market) == 0 {
		return nil, 0, fmt.Errorf("rms: empty market")
	}
	if r < 1 {
		return nil, 0, fmt.Errorf("rms: selection size %d < 1", r)
	}
	sky := skyband.Skyline(market)
	if r > len(sky) {
		r = len(sky)
	}
	// Seed: the skyline product with the largest attribute sum.
	best, bestSum := sky[0], math.Inf(-1)
	for _, i := range sky {
		if s := market[i].Sum(); s > bestSum {
			best, bestSum = i, s
		}
	}
	selIdx := []int{best}
	selPts := []vec.Vec{market[best]}
	chosen := map[int]bool{best: true}

	for len(selIdx) < r {
		worstIdx, worstReg := -1, -1.0
		for _, i := range sky {
			if chosen[i] {
				continue
			}
			reg := regretAgainst(market[i], selPts)
			if reg > worstReg {
				worstIdx, worstReg = i, reg
			}
		}
		if worstIdx < 0 || worstReg <= 1e-12 {
			break // selection already regret-free
		}
		selIdx = append(selIdx, worstIdx)
		selPts = append(selPts, market[worstIdx])
		chosen[worstIdx] = true
	}
	return selIdx, MaxRegretRatio(market, selPts), nil
}
