package rms

import (
	"math"
	"math/rand"
	"testing"

	"rrq/internal/dataset"
	"rrq/internal/topk"
	"rrq/internal/vec"
)

func TestMaxRegretRatioFullSelection(t *testing.T) {
	market := dataset.Generate(dataset.Independent, 60, 3, 1)
	if mrr := MaxRegretRatio(market, market); mrr > 1e-9 {
		t.Fatalf("selecting everything should give mrr 0, got %v", mrr)
	}
}

func TestMaxRegretRatioSinglePoint(t *testing.T) {
	// Market of two orthogonal specialists; selecting one leaves the other
	// preference with a known regret.
	market := []vec.Vec{vec.Of(1, 0.1), vec.Of(0.1, 1)}
	sel := []vec.Vec{market[0]}
	mrr := MaxRegretRatio(market, sel)
	// At u = (0,1): best = 1, selected scores 0.1 → regret 0.9.
	if math.Abs(mrr-0.9) > 1e-6 {
		t.Fatalf("mrr = %v, want 0.9", mrr)
	}
}

// The LP-based mrr must match a dense sampling estimate from below.
func TestMaxRegretRatioMatchesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(3)
		market := dataset.Generate(dataset.Independent, 40, d, int64(trial))
		sel := []vec.Vec{market[0], market[1], market[2]}
		exact := MaxRegretRatio(market, sel)
		sampled := 0.0
		for i := 0; i < 4000; i++ {
			u := vec.RandSimplex(rng, d)
			best := topk.KthMax(topk.Utilities(market, u), 1)
			bestSel := topk.KthMax(topk.Utilities(sel, u), 1)
			if best > 0 {
				if r := (best - bestSel) / best; r > sampled {
					sampled = r
				}
			}
		}
		if sampled > exact+1e-6 {
			t.Fatalf("d=%d: sampled regret %v exceeds LP mrr %v", d, sampled, exact)
		}
		if exact-sampled > 0.15 {
			t.Fatalf("d=%d: LP mrr %v far above sampled %v — suspicious", d, exact, sampled)
		}
	}
}

func TestGreedyMonotone(t *testing.T) {
	market := dataset.Generate(dataset.Anticorrelated, 200, 3, 3)
	prev := math.Inf(1)
	for _, r := range []int{1, 2, 4, 8, 16} {
		_, mrr, err := Greedy(market, r)
		if err != nil {
			t.Fatal(err)
		}
		if mrr > prev+1e-9 {
			t.Fatalf("mrr increased with r: r=%d %v > %v", r, mrr, prev)
		}
		prev = mrr
	}
	if prev > 0.35 {
		t.Fatalf("16 representatives still leave mrr %v; greedy is broken", prev)
	}
}

func TestGreedySelectsSkylineOnly(t *testing.T) {
	// A dominated point must never be selected.
	market := []vec.Vec{
		vec.Of(0.9, 0.9), // dominates everything below
		vec.Of(0.5, 0.5),
		vec.Of(0.4, 0.6),
	}
	sel, mrr, err := Greedy(market, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0] != 0 {
		t.Fatalf("selection = %v, want just the dominating point", sel)
	}
	if mrr > 1e-9 {
		t.Fatalf("mrr = %v, want 0", mrr)
	}
}

func TestGreedyErrors(t *testing.T) {
	if _, _, err := Greedy(nil, 1); err == nil {
		t.Error("empty market accepted")
	}
	if _, _, err := Greedy([]vec.Vec{vec.Of(0.5, 0.5)}, 0); err == nil {
		t.Error("r=0 accepted")
	}
}

func TestGreedyClampsToSkylineSize(t *testing.T) {
	market := []vec.Vec{vec.Of(0.9, 0.1), vec.Of(0.1, 0.9), vec.Of(0.2, 0.2)}
	sel, mrr, err := Greedy(market, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) > 2 {
		t.Fatalf("selected %d, but the skyline has only 2 points", len(sel))
	}
	if mrr > 1e-9 {
		t.Fatalf("full skyline selection should be regret-free, got %v", mrr)
	}
}

// Duality with the reverse regret query: if the greedy selection has
// maximum regret ratio mrr, then for ε > mrr every preference keeps some
// selected product qualified — equivalently, the union of the selected
// products' reverse-regret regions (k=1) covers the preference space.
func TestRMSDualityWithRRQ(t *testing.T) {
	market := dataset.Generate(dataset.Independent, 80, 3, 13)
	sel, mrr, err := Greedy(market, 6)
	if err != nil {
		t.Fatal(err)
	}
	eps := mrr + 0.02
	if eps >= 1 {
		t.Skip("mrr too large for a meaningful duality check")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		u := vec.RandSimplex(rng, 3)
		best := topk.KthMax(topk.Utilities(market, u), 1)
		covered := false
		for _, idx := range sel {
			if u.Dot(market[idx]) >= (1-eps)*best {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("preference %v uncovered at ε=%v despite mrr=%v", u, eps, mrr)
		}
	}
}
