package study

import (
	"testing"

	"rrq/internal/dataset"
	"rrq/internal/vec"
)

func carMarket(t *testing.T, n int) []vec.Vec {
	t.Helper()
	pts, err := dataset.Real(dataset.Car, n)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestInterested(t *testing.T) {
	items := []vec.Vec{vec.Of(0.9, 0.9), vec.Of(0.85, 0.85), vec.Of(0.2, 0.2)}
	p := Participant{Truth: vec.Of(0.5, 0.5), Tol: 0.1}
	if !p.Interested(items, items[0]) {
		t.Error("the favourite itself must be interesting")
	}
	if !p.Interested(items, items[1]) {
		t.Error("a near-top car must be interesting")
	}
	if p.Interested(items, items[2]) {
		t.Error("a far-below car must not be interesting")
	}
}

func TestRunReproducesFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("user study simulation is slow")
	}
	items := carMarket(t, 400)
	results := Run(items, []int{1, 5, 10}, Config{Seed: 42, Participants: 30})
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	for _, r := range results {
		// The paper reports ≥ 50% interest across all x settings.
		if r.PercentInterest < 0.5 {
			t.Errorf("x=%d: interest %.1f%% < 50%%", r.X, 100*r.PercentInterest)
		}
		// The key claim: interesting cars rank far below the top-x cut-off,
		// so a ranking-based reverse query would have missed them.
		if r.AvgRank <= float64(r.X) {
			t.Errorf("x=%d: avg rank %.1f not beyond the top-x cut-off", r.X, r.AvgRank)
		}
	}
	// Larger x admits more candidates, so the worst rank grows.
	if results[2].MaxRank < results[0].X {
		t.Errorf("max rank %d implausibly small", results[2].MaxRank)
	}
}

func TestRunDeterministic(t *testing.T) {
	items := carMarket(t, 150)
	cfg := Config{Seed: 7, Participants: 5, LearnRounds: 6}
	a := Run(items, []int{1}, cfg)
	b := Run(items, []int{1}, cfg)
	if a[0] != b[0] {
		t.Fatalf("same seed produced different results: %+v vs %+v", a[0], b[0])
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Participants != 30 || cfg.Present != 5 || cfg.Threshold != 0.1 || cfg.LearnRounds != 15 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestMissedByTopXPositive(t *testing.T) {
	items := carMarket(t, 300)
	results := Run(items, []int{1}, Config{Seed: 3, Participants: 10, LearnRounds: 8})
	r := results[0]
	if r.PercentInterest > 0 && r.MissedByTopX == 0 {
		t.Fatalf("with x=1 some interesting cars must rank below 1: %+v", r)
	}
	if r.MissedByTopX < 0 || r.MissedByTopX > 1 {
		t.Fatalf("MissedByTopX = %v out of [0,1]", r.MissedByTopX)
	}
}
