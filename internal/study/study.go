// Package study simulates the paper's user study (§6.2, Figure 7). Thirty
// participants shop the Car market; each participant's exact utility
// function is learned with the Adaptive pairwise-comparison algorithm, the
// learned function ranks the cars, and the study then measures how
// interesting the cars with small x-regret ratio are — including cars that
// rank far below the top-x cut-off.
//
// Human participants are replaced by simulated ones (see DESIGN.md §3):
// each participant holds a hidden true utility vector and declares interest
// in a car exactly when its true utility is within a personal tolerance of
// the true favourite's utility — the score-closeness premise the paper's
// study validates.
package study

import (
	"math/rand"

	"rrq/internal/core"
	"rrq/internal/prefs"
	"rrq/internal/topk"
	"rrq/internal/vec"
)

// Participant is one simulated study subject.
type Participant struct {
	Truth vec.Vec // hidden true utility vector
	Tol   float64 // interest tolerance θ: interested iff f(c) ≥ (1−θ)·f(best)
}

// Interested reports whether the participant finds item c interesting.
func (p Participant) Interested(items []vec.Vec, c vec.Vec) bool {
	best := topk.KthMax(topk.Utilities(items, p.Truth), 1)
	return p.Truth.Dot(c) >= (1-p.Tol)*best
}

// Config controls a study run.
type Config struct {
	Participants int     // default 30, as in the paper
	Present      int     // cars shown per participant, default 5
	Threshold    float64 // regret-ratio cut-off, default 0.1
	LearnRounds  int     // pairwise comparisons per participant, default 15
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.Participants <= 0 {
		c.Participants = 30
	}
	if c.Present <= 0 {
		c.Present = 5
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.1
	}
	if c.LearnRounds <= 0 {
		c.LearnRounds = 15
	}
	return c
}

// Result aggregates one x setting of Figure 7.
type Result struct {
	X               int     // the top-x setting (1, 5, 10 in the paper)
	PercentInterest float64 // fraction of presented cars that interested participants
	AvgRank         float64 // average learned-utility rank of the interesting presented cars
	MaxRank         int     // worst rank among interesting presented cars
	// MissedByTopX is the fraction of interesting presented cars whose
	// rank exceeds x — exactly the customers a ranking-based reverse
	// query (reverse top-x) would have dismissed.
	MissedByTopX float64
}

// Run executes the study over items for each top-x setting in xs.
func Run(items []vec.Vec, xs []int, cfg Config) []Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Draw the participant pool once so every x setting sees the same
	// simulated users, mirroring the within-subject design of the paper.
	parts := make([]Participant, cfg.Participants)
	learned := make([]vec.Vec, cfg.Participants)
	d := items[0].Dim()
	for i := range parts {
		parts[i] = Participant{
			Truth: vec.RandSimplex(rng, d),
			Tol:   clampPos(rng.NormFloat64()*0.04 + 0.15),
		}
		learned[i] = prefs.Learn(items, prefs.TrueUtilityOracle(parts[i].Truth),
			prefs.Options{Rounds: cfg.LearnRounds}, rng)
	}

	out := make([]Result, 0, len(xs))
	for _, x := range xs {
		var interested, shown, missed int
		var rankSum, rankCount float64
		maxRank := 0
		for i, part := range parts {
			u := learned[i]
			// Candidate cars: x-regratio below the threshold w.r.t. the
			// learned utility function.
			q := core.Query{K: x, Eps: cfg.Threshold}
			var cand []int
			for ci, c := range items {
				q.Q = c
				if core.RegretRatio(items, q, u) < cfg.Threshold {
					cand = append(cand, ci)
				}
			}
			if len(cand) == 0 {
				continue
			}
			// Uniformly select Present of them.
			sel := cand
			if len(cand) > cfg.Present {
				perm := rng.Perm(len(cand))[:cfg.Present]
				sel = make([]int, cfg.Present)
				for j, pi := range perm {
					sel[j] = cand[pi]
				}
			}
			for _, ci := range sel {
				shown++
				if part.Interested(items, items[ci]) {
					interested++
					r := topk.Rank(items, u, u.Dot(items[ci]))
					rankSum += float64(r)
					rankCount++
					if r > maxRank {
						maxRank = r
					}
					if r > x {
						missed++
					}
				}
			}
		}
		res := Result{X: x, MaxRank: maxRank}
		if shown > 0 {
			res.PercentInterest = float64(interested) / float64(shown)
		}
		if rankCount > 0 {
			res.AvgRank = rankSum / rankCount
			res.MissedByTopX = float64(missed) / rankCount
		}
		out = append(out, res)
	}
	return out
}

func clampPos(x float64) float64 {
	if x < 0.02 {
		return 0.02
	}
	return x
}
