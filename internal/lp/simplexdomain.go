package lp

import "rrq/internal/vec"

// SimplexRange computes the minimum and maximum of obj·u over the cell
//
//	{u ∈ R^d : u ≥ 0, Σu = 1, signs[j]·(u·normals[j]) ≥ 0 ∀j}
//
// which is exactly how the utility-space partitions of the paper are
// described. feasible is false when the cell is empty.
func SimplexRange(d int, normals []vec.Vec, signs []int, obj vec.Vec) (lo, hi float64, feasible bool) {
	if len(normals) != len(signs) {
		panic("lp: normals/signs length mismatch")
	}
	aub := make([][]float64, 0, len(normals))
	bub := make([]float64, 0, len(normals))
	for j, w := range normals {
		row := make([]float64, d)
		for i, x := range w {
			// signs[j]·(u·w) ≥ 0  ⇔  −signs[j]·(u·w) ≤ 0
			row[i] = -float64(signs[j]) * x
		}
		aub = append(aub, row)
		bub = append(bub, 0)
	}
	ones := make([]float64, d)
	for i := range ones {
		ones[i] = 1
	}
	aeq := [][]float64{ones}
	beq := []float64{1}

	minS := Minimize(obj, aub, bub, aeq, beq)
	if minS.Status != Optimal {
		return 0, 0, false
	}
	maxS := Maximize(obj, aub, bub, aeq, beq)
	if maxS.Status != Optimal {
		return 0, 0, false
	}
	return minS.Objective, maxS.Objective, true
}

// SimplexFeasible reports whether the cell described by (normals, signs)
// intersects the utility simplex, and returns a witness point when it does.
func SimplexFeasible(d int, normals []vec.Vec, signs []int) (vec.Vec, bool) {
	aub := make([][]float64, 0, len(normals))
	bub := make([]float64, 0, len(normals))
	for j, w := range normals {
		row := make([]float64, d)
		for i, x := range w {
			row[i] = -float64(signs[j]) * x
		}
		aub = append(aub, row)
		bub = append(bub, 0)
	}
	ones := make([]float64, d)
	for i := range ones {
		ones[i] = 1
	}
	s := Minimize(vec.New(d), aub, bub, [][]float64{ones}, []float64{1})
	if s.Status != Optimal {
		return nil, false
	}
	return s.X, true
}
