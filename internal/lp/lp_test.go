package lp

import (
	"math"
	"math/rand"
	"testing"

	"rrq/internal/geom"
	"rrq/internal/vec"
)

func TestMinimizeBasic(t *testing.T) {
	// min −x−y s.t. x+y ≤ 1, x,y ≥ 0 → optimum −1 on the segment x+y=1.
	s := Minimize(vec.Of(-1, -1), [][]float64{{1, 1}}, []float64{1}, nil, nil)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective+1) > 1e-9 {
		t.Fatalf("objective = %v, want -1", s.Objective)
	}
}

func TestMaximize(t *testing.T) {
	// max 3x+2y s.t. x ≤ 4, y ≤ 3, x+y ≤ 5 → x=4, y=1, obj=14.
	s := Maximize(vec.Of(3, 2),
		[][]float64{{1, 0}, {0, 1}, {1, 1}}, []float64{4, 3, 5}, nil, nil)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-14) > 1e-9 {
		t.Fatalf("objective = %v, want 14", s.Objective)
	}
	if !s.X.Equal(vec.Of(4, 1), 1e-9) {
		t.Fatalf("X = %v, want (4,1)", s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x−y s.t. x+y = 1, x,y ≥ 0 → x=0, y=1, obj=−1.
	s := Minimize(vec.Of(1, -1), nil, nil, [][]float64{{1, 1}}, []float64{1})
	if s.Status != Optimal || math.Abs(s.Objective+1) > 1e-9 {
		t.Fatalf("got %+v", s)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ −1 with x ≥ 0 is infeasible.
	s := Minimize(vec.Of(1), [][]float64{{1}}, []float64{-1}, nil, nil)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
	// Contradictory equalities.
	s = Minimize(vec.Of(1, 1), nil, nil,
		[][]float64{{1, 1}, {1, 1}}, []float64{1, 2})
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min −x with only y ≤ 1 constraining: x grows without bound.
	s := Minimize(vec.Of(-1, 0), [][]float64{{0, 1}}, []float64{1}, nil, nil)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
	// No constraints at all with a negative cost.
	s = Minimize(vec.Of(-1), nil, nil, nil, nil)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNoConstraintsOptimal(t *testing.T) {
	s := Minimize(vec.Of(1, 2), nil, nil, nil, nil)
	if s.Status != Optimal || s.Objective != 0 {
		t.Fatalf("got %+v", s)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicate equality rows must not break phase 1.
	s := Minimize(vec.Of(1, 1), nil, nil,
		[][]float64{{1, 1}, {1, 1}, {2, 2}}, []float64{1, 1, 2})
	if s.Status != Optimal || math.Abs(s.Objective-1) > 1e-9 {
		t.Fatalf("got %+v", s)
	}
}

func TestSimplexRangeWholeSimplex(t *testing.T) {
	lo, hi, ok := SimplexRange(3, nil, nil, vec.Of(1, 2, 3))
	if !ok {
		t.Fatal("whole simplex should be feasible")
	}
	if math.Abs(lo-1) > 1e-9 || math.Abs(hi-3) > 1e-9 {
		t.Fatalf("range = [%v,%v], want [1,3]", lo, hi)
	}
}

func TestSimplexRangeHalfspace(t *testing.T) {
	// Keep u1 ≥ u2 on the 2-simplex; objective u1 ranges over [0.5, 1].
	lo, hi, ok := SimplexRange(2, []vec.Vec{vec.Of(1, -1)}, []int{+1}, vec.Of(1, 0))
	if !ok {
		t.Fatal("feasible expected")
	}
	if math.Abs(lo-0.5) > 1e-9 || math.Abs(hi-1) > 1e-9 {
		t.Fatalf("range = [%v,%v], want [0.5,1]", lo, hi)
	}
}

func TestSimplexFeasibleEmpty(t *testing.T) {
	// u1 ≥ u2 and u2 ≥ u1 + something impossible: use two opposing strict
	// normals that cannot both be non-negative except on a lower-dim set —
	// instead build a genuinely empty cell: u·(1,1) ≤ 0 on the simplex.
	if _, ok := SimplexFeasible(2, []vec.Vec{vec.Of(1, 1)}, []int{-1}); ok {
		t.Fatal("cell should be empty")
	}
	u, ok := SimplexFeasible(2, []vec.Vec{vec.Of(1, -1)}, []int{+1})
	if !ok {
		t.Fatal("cell should be feasible")
	}
	if u[0] < u[1]-1e-9 || !vec.OnSimplex(u, 1e-9) {
		t.Fatalf("witness %v violates constraints", u)
	}
}

// Property test: the LP range over a cell built by geometric cutting must
// match the min/max over the cell's maintained extreme points.
func TestSimplexRangeMatchesVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for d := 2; d <= 5; d++ {
		for trial := 0; trial < 50; trial++ {
			cell := geom.NewSimplex(d)
			var normals []vec.Vec
			var signs []int
			for cut := 0; cut < 4; cut++ {
				n := vec.New(d)
				for i := range n {
					n[i] = rng.NormFloat64()
				}
				if n.Norm() < 1e-6 {
					continue
				}
				h := geom.NewHyperplane(n, cut)
				if cell.Relation(h) != geom.RelCross {
					continue
				}
				neg, pos := cell.Split(h)
				if rng.Intn(2) == 0 && neg != nil {
					cell = neg
					normals = append(normals, h.Normal)
					signs = append(signs, -1)
				} else if pos != nil {
					cell = pos
					normals = append(normals, h.Normal)
					signs = append(signs, +1)
				}
			}
			obj := vec.New(d)
			for i := range obj {
				obj[i] = rng.NormFloat64()
			}
			lo, hi, ok := SimplexRange(d, normals, signs, obj)
			if !ok {
				t.Fatalf("d=%d: LP infeasible for non-empty cell", d)
			}
			vlo, vhi := math.Inf(1), math.Inf(-1)
			for _, v := range cell.Vertices() {
				x := v.Dot(obj)
				vlo = math.Min(vlo, x)
				vhi = math.Max(vhi, x)
			}
			if math.Abs(lo-vlo) > 1e-6 || math.Abs(hi-vhi) > 1e-6 {
				t.Fatalf("d=%d: LP range [%v,%v] vs vertex range [%v,%v]\ncell=%v",
					d, lo, hi, vlo, vhi, cell)
			}
		}
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status strings wrong")
	}
}

// A classic degenerate instance that cycles without an anti-cycling rule
// (Beale's example): Bland's rule must terminate at the optimum.
func TestBealeCycling(t *testing.T) {
	// min −0.75x4 + 150x5 − 0.02x6 + 6x7 (renumbered to x1..x4 here)
	c := vec.Of(-0.75, 150, -0.02, 6)
	aub := [][]float64{
		{0.25, -60, -0.04, 9},
		{0.5, -90, -0.02, 3},
		{0, 0, 1, 0},
	}
	bub := []float64{0, 0, 1}
	s := Minimize(c, aub, bub, nil, nil)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-(-0.05)) > 1e-9 {
		t.Fatalf("objective = %v, want -0.05", s.Objective)
	}
}

// Highly redundant constraint stacks must not upset the solver.
func TestManyRedundantConstraints(t *testing.T) {
	aub := make([][]float64, 0, 50)
	bub := make([]float64, 0, 50)
	for i := 0; i < 50; i++ {
		aub = append(aub, []float64{1, 1})
		bub = append(bub, float64(1+i)) // only the first binds
	}
	s := Maximize(vec.Of(1, 1), aub, bub, nil, nil)
	if s.Status != Optimal || math.Abs(s.Objective-1) > 1e-9 {
		t.Fatalf("got %+v", s)
	}
}
