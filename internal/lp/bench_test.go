package lp

import (
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

func BenchmarkSimplexRange(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{4, 16, 64} {
		normals := make([]vec.Vec, m)
		signs := make([]int, m)
		for i := range normals {
			w := vec.New(4)
			for j := range w {
				w[j] = rng.NormFloat64()
			}
			normals[i] = w
			signs[i] = 1 - 2*(i%2)
		}
		obj := vec.Of(1, -1, 0.5, -0.5)
		b.Run(map[int]string{4: "m=4", 16: "m=16", 64: "m=64"}[m], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SimplexRange(4, normals, signs, obj)
			}
		})
	}
}
