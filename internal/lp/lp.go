// Package lp implements a dense two-phase primal simplex solver for small
// linear programs. It is the substrate for the LP-CTA baseline (which, per
// the paper, checks hyper-plane/partition relationships by solving linear
// programs) and serves as an independent oracle for the geometry package in
// tests.
//
// The solver handles the standard form
//
//	minimize    c·x
//	subject to  Aub·x ≤ bub
//	            Aeq·x = beq
//	            x ≥ 0
//
// using Bland's rule for anti-cycling. Problem sizes in this repository are
// tiny (tens of variables and constraints), so a dense tableau is the right
// tool.
package lp

import (
	"fmt"
	"math"

	"rrq/internal/vec"
)

// Status is the outcome of a solve.
type Status int

const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraint set is empty.
	Infeasible
	// Unbounded: the objective is unbounded below on the feasible set.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         vec.Vec // primal solution (valid only when Status == Optimal)
	Objective float64 // c·X (valid only when Status == Optimal)
}

const (
	tol      = 1e-9
	maxIters = 10000
)

// Minimize solves min c·x s.t. Aub·x ≤ bub, Aeq·x = beq, x ≥ 0.
// Either constraint family may be nil.
func Minimize(c vec.Vec, aub [][]float64, bub []float64, aeq [][]float64, beq []float64) Solution {
	n := len(c)
	if len(aub) != len(bub) || len(aeq) != len(beq) {
		panic("lp: constraint matrix/vector size mismatch")
	}
	mU, mE := len(aub), len(aeq)
	m := mU + mE
	if m == 0 {
		// Only x ≥ 0: optimum is at the origin unless some c[j] < 0.
		for _, cj := range c {
			if cj < -tol {
				return Solution{Status: Unbounded}
			}
		}
		return Solution{Status: Optimal, X: vec.New(n)}
	}

	// Build equalities with slacks: [A | S] x' = b, all b ≥ 0.
	total := n + mU // structural + slack variables
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < mU; i++ {
		row := make([]float64, total)
		copy(row, aub[i])
		row[n+i] = 1
		bi := bub[i]
		if bi < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			bi = -bi
		}
		a[i], b[i] = row, bi
	}
	for i := 0; i < mE; i++ {
		row := make([]float64, total)
		copy(row, aeq[i])
		bi := beq[i]
		if bi < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			bi = -bi
		}
		a[mU+i], b[mU+i] = row, bi
	}

	t := newTableau(a, b, total)

	// Phase 1: minimize the sum of artificial variables.
	if !t.phase1() {
		return Solution{Status: Infeasible}
	}

	// Phase 2: minimize the true objective.
	obj := make([]float64, t.cols)
	copy(obj, c) // slacks and artificials cost 0
	switch t.phase2(obj) {
	case Unbounded:
		return Solution{Status: Unbounded}
	}
	x := t.extract(n)
	return Solution{Status: Optimal, X: x, Objective: x.Dot(c)}
}

// Maximize solves max c·x over the same constraint set.
func Maximize(c vec.Vec, aub [][]float64, bub []float64, aeq [][]float64, beq []float64) Solution {
	neg := c.Scale(-1)
	s := Minimize(neg, aub, bub, aeq, beq)
	if s.Status == Optimal {
		s.Objective = -s.Objective
	}
	return s
}

// tableau is a dense simplex tableau over columns
// [structural+slack | artificial], one artificial per row.
type tableau struct {
	rows  int
	cols  int // structural + slack columns (artificials live beyond)
	nArt  int
	a     [][]float64 // rows × (cols + nArt)
	b     []float64
	basis []int // basic variable of each row
}

func newTableau(a [][]float64, b []float64, cols int) *tableau {
	m := len(a)
	t := &tableau{rows: m, cols: cols, nArt: m, b: append([]float64(nil), b...)}
	t.a = make([][]float64, m)
	t.basis = make([]int, m)
	for i := 0; i < m; i++ {
		row := make([]float64, cols+m)
		copy(row, a[i])
		row[cols+i] = 1
		t.a[i] = row
		t.basis[i] = cols + i
	}
	return t
}

// phase1 drives the artificial variables to zero. Returns false when the
// problem is infeasible.
func (t *tableau) phase1() bool {
	// Objective: minimize sum of artificials. Reduced cost row z starts as
	// −Σ rows (since artificials are basic with cost 1).
	z := make([]float64, t.cols+t.nArt)
	z0 := 0.0
	for j := 0; j < t.cols; j++ {
		var s float64
		for i := 0; i < t.rows; i++ {
			s += t.a[i][j]
		}
		z[j] = -s
	}
	for i := 0; i < t.rows; i++ {
		z0 -= t.b[i]
	}
	if st := t.iterate(z, &z0); st == Unbounded {
		// Phase-1 objective is bounded below by 0; unbounded is impossible
		// unless numerics break. Treat as infeasible.
		return false
	}
	if -z0 > 1e-7 { // optimum of Σ artificials
		return false
	}
	// Drive any remaining basic artificials out.
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.cols {
			continue
		}
		pivoted := false
		for j := 0; j < t.cols; j++ {
			if math.Abs(t.a[i][j]) > tol {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it out; the artificial stays basic at 0.
			t.b[i] = 0
		}
	}
	return true
}

// phase2 minimizes obj over the current feasible basis.
func (t *tableau) phase2(obj []float64) Status {
	z := make([]float64, t.cols+t.nArt)
	copy(z, obj)
	// Make reduced costs of basic variables zero.
	z0 := 0.0
	for i, bv := range t.basis {
		cb := 0.0
		if bv < len(obj) {
			cb = obj[bv]
		}
		if cb == 0 {
			continue
		}
		for j := range z {
			z[j] -= cb * t.a[i][j]
		}
		z0 -= cb * t.b[i]
	}
	// Forbid artificials from re-entering.
	for j := t.cols; j < t.cols+t.nArt; j++ {
		if z[j] < 0 {
			z[j] = 0
		}
	}
	return t.iterate(z, &z0)
}

// iterate runs Bland-rule simplex pivots until optimality or unboundedness.
func (t *tableau) iterate(z []float64, z0 *float64) Status {
	for iter := 0; iter < maxIters; iter++ {
		// Entering: first column with negative reduced cost (Bland).
		enter := -1
		for j := 0; j < t.cols; j++ { // artificials never re-enter
			if z[j] < -tol {
				enter = j
				break
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Leaving: min ratio, ties by smallest basic variable (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.rows; i++ {
			aij := t.a[i][enter]
			if aij > tol {
				r := t.b[i] / aij
				if r < best-tol || (r < best+tol && (leave == -1 || t.basis[i] < t.basis[leave])) {
					best = r
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
		// Update reduced costs.
		f := z[enter]
		if f != 0 {
			for j := range z {
				z[j] -= f * t.a[leave][j]
			}
			*z0 -= f * t.b[leave]
		}
	}
	panic(fmt.Sprintf("lp: simplex did not converge in %d iterations", maxIters))
}

func (t *tableau) pivot(r, c int) {
	p := t.a[r][c]
	inv := 1 / p
	for j := range t.a[r] {
		t.a[r][j] *= inv
	}
	t.b[r] *= inv
	for i := 0; i < t.rows; i++ {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f == 0 {
			continue
		}
		for j := range t.a[i] {
			t.a[i][j] -= f * t.a[r][j]
		}
		t.b[i] -= f * t.b[r]
	}
	t.basis[r] = c
}

func (t *tableau) extract(n int) vec.Vec {
	x := vec.New(n)
	for i, bv := range t.basis {
		if bv < n {
			x[bv] = t.b[i]
		}
	}
	return x
}
