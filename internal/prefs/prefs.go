// Package prefs implements adaptive utility learning by pairwise
// comparisons, in the spirit of Qian et al. (VLDB 2015) — the "Adaptive"
// algorithm the paper's user study (§6.2) uses to elicit each participant's
// utility function.
//
// The learner maintains the polytope of utility vectors consistent with the
// answers so far (a cell of the utility simplex) and greedily asks the
// comparison whose separating hyper-plane most evenly bisects the current
// polytope, shrinking it fastest. The final estimate is the centroid of the
// surviving polytope.
package prefs

import (
	"math/rand"

	"rrq/internal/geom"
	"rrq/internal/vec"
)

// Oracle answers pairwise comparisons: it returns true when the user
// prefers a to b.
type Oracle func(a, b vec.Vec) bool

// TrueUtilityOracle builds an oracle for a simulated user with a known
// utility vector.
func TrueUtilityOracle(u vec.Vec) Oracle {
	return func(a, b vec.Vec) bool { return u.Dot(a) > u.Dot(b) }
}

// Options tunes the learner.
type Options struct {
	// Rounds is the number of comparisons to ask. Default 12.
	Rounds int
	// Candidates is how many random pairs are scored per round before the
	// most balanced one is asked. Default 24.
	Candidates int
	// BalanceSamples is how many points are drawn from the current
	// polytope to score a candidate pair. Default 32.
	BalanceSamples int
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = 12
	}
	if o.Candidates <= 0 {
		o.Candidates = 24
	}
	if o.BalanceSamples <= 0 {
		o.BalanceSamples = 32
	}
	return o
}

// Learn elicits a utility vector over the items by asking the oracle
// adaptive pairwise comparisons. It returns the centroid of the consistent
// polytope after Options.Rounds questions.
func Learn(items []vec.Vec, oracle Oracle, opt Options, rng *rand.Rand) vec.Vec {
	if len(items) < 2 {
		if len(items) == 1 {
			return vec.SimplexCenter(items[0].Dim())
		}
		panic("prefs: need at least one item")
	}
	opt = opt.withDefaults()
	d := items[0].Dim()
	cell := geom.NewSimplex(d)
	planeID := 0

	for round := 0; round < opt.Rounds; round++ {
		samples := make([]vec.Vec, opt.BalanceSamples)
		for i := range samples {
			samples[i] = cell.SamplePoint(rng)
		}
		bestI, bestJ := -1, -1
		var bestH geom.Hyperplane
		bestScore := 2.0 // worse than any reachable |balance − 0.5| ≤ 0.5
		for c := 0; c < opt.Candidates; c++ {
			i, j := rng.Intn(len(items)), rng.Intn(len(items))
			if i == j {
				continue
			}
			w := items[i].Sub(items[j])
			if w.Norm() < vec.Eps {
				continue
			}
			planeID++
			h := geom.NewHyperplane(w, planeID)
			if cell.Relation(h) != geom.RelCross {
				continue // answer already implied; no information
			}
			pos := 0
			for _, s := range samples {
				if h.Eval(s) > 0 {
					pos++
				}
			}
			bal := float64(pos)/float64(len(samples)) - 0.5
			if bal < 0 {
				bal = -bal
			}
			if bal < bestScore {
				bestScore, bestI, bestJ, bestH = bal, i, j, h
			}
		}
		if bestI < 0 {
			break // every candidate pair is already decided by the polytope
		}
		sign := -1
		if oracle(items[bestI], items[bestJ]) {
			sign = +1
		}
		next := cell.Clip(bestH, sign)
		if next == nil {
			// The oracle contradicted the polytope (noisy user); keep the
			// current polytope rather than collapsing to nothing.
			continue
		}
		cell = next
	}
	return cell.Center()
}
