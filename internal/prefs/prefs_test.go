package prefs

import (
	"math/rand"
	"testing"

	"rrq/internal/dataset"
	"rrq/internal/topk"
	"rrq/internal/vec"
)

func l1(a, b vec.Vec) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

func TestLearnRecoversUtility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := dataset.Generate(dataset.Independent, 150, 3, 11)
	for trial := 0; trial < 10; trial++ {
		truth := vec.RandSimplex(rng, 3)
		est := Learn(items, TrueUtilityOracle(truth), Options{Rounds: 25}, rng)
		if !vec.OnSimplex(est, 1e-6) {
			t.Fatalf("estimate %v off simplex", est)
		}
		if d := l1(truth, est); d > 0.45 {
			t.Fatalf("trial %d: estimate %v too far from truth %v (L1=%v)", trial, est, truth, d)
		}
	}
}

func TestLearnImprovesWithRounds(t *testing.T) {
	items := dataset.Generate(dataset.Independent, 150, 4, 12)
	avgErr := func(rounds int) float64 {
		rng := rand.New(rand.NewSource(55))
		var total float64
		const trials = 12
		for i := 0; i < trials; i++ {
			truth := vec.RandSimplex(rng, 4)
			est := Learn(items, TrueUtilityOracle(truth), Options{Rounds: rounds}, rng)
			total += l1(truth, est)
		}
		return total / trials
	}
	few, many := avgErr(3), avgErr(30)
	if many > few {
		t.Fatalf("more comparisons should not hurt: 3 rounds → %.4f, 30 rounds → %.4f", few, many)
	}
}

func TestLearnTopChoiceUsuallyAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := dataset.Generate(dataset.Independent, 200, 3, 13)
	agreeTop5 := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		truth := vec.RandSimplex(rng, 3)
		est := Learn(items, TrueUtilityOracle(truth), Options{Rounds: 20}, rng)
		trueTop := topk.TopKIndices(items, truth, 1)[0]
		estTop5 := topk.TopKIndices(items, est, 5)
		for _, i := range estTop5 {
			if i == trueTop {
				agreeTop5++
				break
			}
		}
	}
	if agreeTop5 < trials*6/10 {
		t.Fatalf("learned top-5 contained the true favourite only %d/%d times", agreeTop5, trials)
	}
}

func TestLearnDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Single item: center returned.
	est := Learn([]vec.Vec{vec.Of(0.5, 0.5)}, nil, Options{}, rng)
	if !est.Equal(vec.SimplexCenter(2), 1e-12) {
		t.Fatalf("single-item estimate %v", est)
	}
	// Identical items: no informative pair exists; must not loop or panic.
	p := vec.Of(0.4, 0.6)
	est = Learn([]vec.Vec{p, p.Clone(), p.Clone()}, TrueUtilityOracle(vec.Of(0.9, 0.1)), Options{Rounds: 5}, rng)
	if !vec.OnSimplex(est, 1e-9) {
		t.Fatalf("estimate %v off simplex", est)
	}
}

func TestLearnEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Learn(nil, nil, Options{}, rand.New(rand.NewSource(1)))
}

// A noisy oracle must not collapse the polytope to nothing.
func TestLearnNoisyOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := dataset.Generate(dataset.Independent, 100, 3, 17)
	truth := vec.RandSimplex(rng, 3)
	noisy := func(a, b vec.Vec) bool {
		if rng.Float64() < 0.25 {
			return rng.Intn(2) == 0
		}
		return truth.Dot(a) > truth.Dot(b)
	}
	est := Learn(items, noisy, Options{Rounds: 25}, rng)
	if !vec.OnSimplex(est, 1e-6) {
		t.Fatalf("estimate %v off simplex", est)
	}
}
