package skyband

// Property-based tests (testing/quick) on the dominance structure.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rrq/internal/vec"
)

func clean3(a [3]float64) (vec.Vec, bool) {
	v := vec.New(3)
	for i, x := range a {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, false
		}
		v[i] = math.Abs(math.Mod(x, 1))
	}
	return v, true
}

// Dominance is irreflexive and antisymmetric.
func TestQuickDominanceAntisymmetric(t *testing.T) {
	f := func(a, b [3]float64) bool {
		p, ok := clean3(a)
		if !ok {
			return true
		}
		q, ok := clean3(b)
		if !ok {
			return true
		}
		if Dominates(p, p) {
			return false
		}
		return !(Dominates(p, q) && Dominates(q, p))
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Dominance is transitive.
func TestQuickDominanceTransitive(t *testing.T) {
	f := func(a, b, c [3]float64) bool {
		p, ok1 := clean3(a)
		q, ok2 := clean3(b)
		r, ok3 := clean3(c)
		if !ok1 || !ok2 || !ok3 {
			return true
		}
		if Dominates(p, q) && Dominates(q, r) {
			return Dominates(p, r)
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 800, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Points outside the k-skyband never rank within the top k under any
// monotone linear utility — the preprocessing soundness invariant.
func TestQuickSkybandPreservesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 30 + rng.Intn(80)
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(4)
		pts := make([]vec.Vec, n)
		for i := range pts {
			p := vec.New(d)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts[i] = p
		}
		inBand := map[int]bool{}
		for _, i := range KSkyband(pts, k) {
			inBand[i] = true
		}
		for probe := 0; probe < 20; probe++ {
			u := vec.RandSimplex(rng, d)
			// Rank every point; top-k members must be in the band.
			type iu struct {
				i int
				v float64
			}
			utils := make([]iu, n)
			for i, p := range pts {
				utils[i] = iu{i, u.Dot(p)}
			}
			for a := 0; a < k; a++ {
				best := a
				for b := a + 1; b < n; b++ {
					if utils[b].v > utils[best].v {
						best = b
					}
				}
				utils[a], utils[best] = utils[best], utils[a]
				if !inBand[utils[a].i] {
					t.Fatalf("top-%d point %d (utility %v) outside the %d-skyband",
						a+1, utils[a].i, utils[a].v, k)
				}
			}
		}
	}
}
