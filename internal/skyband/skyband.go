// Package skyband implements dominance, skyline and k-skyband computation.
// The paper (and the baselines it compares with) preprocesses every dataset
// down to its k-skyband — the points dominated by fewer than k others —
// because no point outside the k-skyband can ever rank within the top k
// under any monotone linear utility.
package skyband

import (
	"sort"

	"rrq/internal/vec"
)

// Dominates reports whether p dominates q: p is at least as large in every
// dimension and strictly larger in at least one.
func Dominates(p, q vec.Vec) bool {
	strict := false
	for i, x := range p {
		if x < q[i] {
			return false
		}
		if x > q[i] {
			strict = true
		}
	}
	return strict
}

// Skyline returns the indices (in input order) of the points not dominated
// by any other point. Equivalent to KSkyband(pts, 1).
func Skyline(pts []vec.Vec) []int { return KSkyband(pts, 1) }

// KSkyband returns the indices (in input order) of the points dominated by
// fewer than k other points.
//
// The implementation processes points in descending attribute-sum order: a
// dominator always has an attribute sum at least as large as the dominated
// point, and a standard descent argument shows that a point is in the
// k-skyband iff it is dominated by fewer than k k-skyband points — so only
// the skyband found so far needs to be consulted.
func KSkyband(pts []vec.Vec, k int) []int {
	if k < 1 {
		return nil
	}
	n := len(pts)
	order := make([]int, n)
	sums := make([]float64, n)
	for i, p := range pts {
		order[i] = i
		sums[i] = p.Sum()
	}
	sort.Slice(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })

	band := make([]int, 0, 64)
	for _, idx := range order {
		p := pts[idx]
		count := 0
		for _, bIdx := range band {
			if Dominates(pts[bIdx], p) {
				count++
				if count >= k {
					break
				}
			}
		}
		if count < k {
			band = append(band, idx)
		}
	}
	sort.Ints(band)
	return band
}

// Scratch holds the reusable working storage of KSkybandScratch, so
// repeated skyband computations on one worker allocate nothing once the
// buffers have grown to the working-set size.
type Scratch struct {
	order []int
	sums  []float64
	band  []int
}

// KSkybandScratch is KSkyband with caller-owned scratch storage: the
// returned index slice aliases s and is valid only until the next call with
// the same scratch. The result is identical to KSkyband — the internal
// processing order of equal-sum points may differ, but a dominator always
// has a strictly larger attribute sum than the point it dominates (it must
// exceed it in some coordinate and match or exceed in the rest), so
// equal-sum ties never affect dominator counts or band membership.
func KSkybandScratch(pts []vec.Vec, k int, s *Scratch) []int {
	if k < 1 {
		return nil
	}
	n := len(pts)
	if cap(s.order) < n {
		s.order = make([]int, n)
		s.sums = make([]float64, n)
	}
	order := s.order[:n]
	sums := s.sums[:n]
	for i, p := range pts {
		order[i] = i
		sums[i] = p.Sum()
	}
	sortIdxBySumDesc(order, sums)

	band := s.band[:0]
	for _, idx := range order {
		p := pts[idx]
		count := 0
		for _, bIdx := range band {
			if Dominates(pts[bIdx], p) {
				count++
				if count >= k {
					break
				}
			}
		}
		if count < k {
			band = append(band, idx)
		}
	}
	s.band = band
	sort.Ints(band) // slices.Sort underneath: no allocation
	return band
}

// sortIdxBySumDesc sorts idx so that sums[idx[i]] is non-increasing, with a
// hand-rolled quicksort (median-of-three, insertion sort on small spans):
// unlike sort.Slice it allocates nothing. The order among equal-sum entries
// is unspecified, which KSkybandScratch's callers tolerate.
func sortIdxBySumDesc(idx []int, sums []float64) {
	for len(idx) > 12 {
		mid := len(idx) / 2
		hi := len(idx) - 1
		if sums[idx[mid]] > sums[idx[0]] {
			idx[mid], idx[0] = idx[0], idx[mid]
		}
		if sums[idx[hi]] > sums[idx[0]] {
			idx[hi], idx[0] = idx[0], idx[hi]
		}
		if sums[idx[mid]] > sums[idx[hi]] {
			idx[mid], idx[hi] = idx[hi], idx[mid]
		}
		pivot := sums[idx[hi]]
		p := 0
		for j := 0; j < hi; j++ {
			if sums[idx[j]] > pivot {
				idx[p], idx[j] = idx[j], idx[p]
				p++
			}
		}
		idx[p], idx[hi] = idx[hi], idx[p]
		// Recurse into the smaller side, loop on the larger.
		if p < len(idx)-p-1 {
			sortIdxBySumDesc(idx[:p], sums)
			idx = idx[p+1:]
		} else {
			sortIdxBySumDesc(idx[p+1:], sums)
			idx = idx[:p]
		}
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && sums[idx[j]] > sums[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// KSkybandCounts returns, for each point, its number of dominators inside
// the k-skyband, capped at k. The counts serve every band rank up to k at
// once: for any kk ≤ k, point i is in the kk-skyband iff counts[i] < kk,
// and selecting by that predicate in input order reproduces exactly
// Select(pts, KSkyband(pts, kk)).
//
// Correctness of the cap: counts consider only k-skyband dominators, but if
// a point has any dominator outside the k-skyband, that dominator itself
// has ≥ k skyband dominators, each of which transitively dominates the
// point — so its capped count is already k and the < kk test is unaffected.
func KSkybandCounts(pts []vec.Vec, k int) []int {
	n := len(pts)
	counts := make([]int, n)
	if k < 1 {
		for i := range counts {
			counts[i] = 1 // nothing qualifies for any band rank ≤ 0
		}
		return counts
	}
	order := make([]int, n)
	sums := make([]float64, n)
	for i, p := range pts {
		order[i] = i
		sums[i] = p.Sum()
	}
	sort.Slice(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })

	band := make([]int, 0, 64)
	for _, idx := range order {
		p := pts[idx]
		count := 0
		for _, bIdx := range band {
			if Dominates(pts[bIdx], p) {
				count++
				if count >= k {
					break
				}
			}
		}
		counts[idx] = count
		if count < k {
			band = append(band, idx)
		}
	}
	return counts
}

// Select returns the subset of pts at the given indices.
func Select(pts []vec.Vec, idx []int) []vec.Vec {
	out := make([]vec.Vec, len(idx))
	for i, j := range idx {
		out[i] = pts[j]
	}
	return out
}

// DominatorCounts returns, for each point, the exact number of points
// dominating it, using the same descending attribute-sum order as KSkyband
// to halve the candidate scan: a dominator's attribute sum is at least the
// dominated point's, so only earlier points in the order can dominate.
// Exact full counts (not capped at any k) are what the snapshot index
// maintains incrementally: a deletion decrements counts, which a capped
// count could not survive.
func DominatorCounts(pts []vec.Vec) []int {
	n := len(pts)
	counts := make([]int, n)
	order := make([]int, n)
	sums := make([]float64, n)
	for i, p := range pts {
		order[i] = i
		sums[i] = p.Sum()
	}
	sort.Slice(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })
	for oi, idx := range order {
		p := pts[idx]
		for oj := 0; oj < oi; oj++ {
			if Dominates(pts[order[oj]], p) {
				counts[idx]++
			}
		}
		// Equal-sum points later in the order can still dominate only when
		// they are duplicates — and a duplicate never dominates (no strict
		// coordinate). Points with strictly smaller sums cannot dominate at
		// all, so the prefix scan is complete.
	}
	return counts
}

// DominatorCount returns, for each point, the number of points dominating
// it. Quadratic; intended for tests and small inputs.
func DominatorCount(pts []vec.Vec) []int {
	n := len(pts)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && Dominates(pts[j], pts[i]) {
				counts[i]++
			}
		}
	}
	return counts
}
