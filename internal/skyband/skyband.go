// Package skyband implements dominance, skyline and k-skyband computation.
// The paper (and the baselines it compares with) preprocesses every dataset
// down to its k-skyband — the points dominated by fewer than k others —
// because no point outside the k-skyband can ever rank within the top k
// under any monotone linear utility.
package skyband

import (
	"sort"

	"rrq/internal/vec"
)

// Dominates reports whether p dominates q: p is at least as large in every
// dimension and strictly larger in at least one.
func Dominates(p, q vec.Vec) bool {
	strict := false
	for i, x := range p {
		if x < q[i] {
			return false
		}
		if x > q[i] {
			strict = true
		}
	}
	return strict
}

// Skyline returns the indices (in input order) of the points not dominated
// by any other point. Equivalent to KSkyband(pts, 1).
func Skyline(pts []vec.Vec) []int { return KSkyband(pts, 1) }

// KSkyband returns the indices (in input order) of the points dominated by
// fewer than k other points.
//
// The implementation processes points in descending attribute-sum order: a
// dominator always has an attribute sum at least as large as the dominated
// point, and a standard descent argument shows that a point is in the
// k-skyband iff it is dominated by fewer than k k-skyband points — so only
// the skyband found so far needs to be consulted.
func KSkyband(pts []vec.Vec, k int) []int {
	if k < 1 {
		return nil
	}
	n := len(pts)
	order := make([]int, n)
	sums := make([]float64, n)
	for i, p := range pts {
		order[i] = i
		sums[i] = p.Sum()
	}
	sort.Slice(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })

	band := make([]int, 0, 64)
	for _, idx := range order {
		p := pts[idx]
		count := 0
		for _, bIdx := range band {
			if Dominates(pts[bIdx], p) {
				count++
				if count >= k {
					break
				}
			}
		}
		if count < k {
			band = append(band, idx)
		}
	}
	sort.Ints(band)
	return band
}

// Select returns the subset of pts at the given indices.
func Select(pts []vec.Vec, idx []int) []vec.Vec {
	out := make([]vec.Vec, len(idx))
	for i, j := range idx {
		out[i] = pts[j]
	}
	return out
}

// DominatorCounts returns, for each point, the exact number of points
// dominating it, using the same descending attribute-sum order as KSkyband
// to halve the candidate scan: a dominator's attribute sum is at least the
// dominated point's, so only earlier points in the order can dominate.
// Exact full counts (not capped at any k) are what the snapshot index
// maintains incrementally: a deletion decrements counts, which a capped
// count could not survive.
func DominatorCounts(pts []vec.Vec) []int {
	n := len(pts)
	counts := make([]int, n)
	order := make([]int, n)
	sums := make([]float64, n)
	for i, p := range pts {
		order[i] = i
		sums[i] = p.Sum()
	}
	sort.Slice(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })
	for oi, idx := range order {
		p := pts[idx]
		for oj := 0; oj < oi; oj++ {
			if Dominates(pts[order[oj]], p) {
				counts[idx]++
			}
		}
		// Equal-sum points later in the order can still dominate only when
		// they are duplicates — and a duplicate never dominates (no strict
		// coordinate). Points with strictly smaller sums cannot dominate at
		// all, so the prefix scan is complete.
	}
	return counts
}

// DominatorCount returns, for each point, the number of points dominating
// it. Quadratic; intended for tests and small inputs.
func DominatorCount(pts []vec.Vec) []int {
	n := len(pts)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && Dominates(pts[j], pts[i]) {
				counts[i]++
			}
		}
	}
	return counts
}
