package skyband

// Tests for the batch-sharing substrate: the capped dominator counts of
// KSkybandCounts must reproduce every band rank kk ≤ k exactly, and the
// scratch-backed KSkyband variant must match the allocating one while
// reusing its buffers.

import (
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

func randPoints(rng *rand.Rand, n, d int) []vec.Vec {
	pts := make([]vec.Vec, n)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = 0.01 + 0.99*rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestKSkybandCountsServeEveryRank(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, d := range []int{2, 3, 4} {
		pts := randPoints(rng, 120, d)
		// Duplicates and shared coordinates stress the tie handling.
		pts = append(pts, pts[0].Clone(), pts[5].Clone(), pts[5].Clone())
		const kmax = 6
		counts := KSkybandCounts(pts, kmax)
		for kk := 1; kk <= kmax; kk++ {
			want := KSkyband(pts, kk)
			got := make([]int, 0, len(want))
			for i, c := range counts {
				if c < kk {
					got = append(got, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("d=%d kk=%d: derived band has %d points, want %d", d, kk, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("d=%d kk=%d: derived band[%d] = %d, want %d", d, kk, i, got[i], want[i])
				}
			}
		}
	}
}

func TestKSkybandCountsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := randPoints(rng, 200, 2)
	const k = 3
	counts := KSkybandCounts(pts, k)
	exact := DominatorCount(pts)
	for i, c := range counts {
		if c > k {
			t.Fatalf("point %d: capped count %d exceeds k=%d", i, c, k)
		}
		if c < k && exact[i] != c {
			// Below the cap, only k-skyband dominators are counted; a point
			// with fewer than k of those has no dominators outside the band
			// either (any such dominator would imply ≥ k band dominators).
			t.Fatalf("point %d: capped count %d, exact dominators %d", i, c, exact[i])
		}
	}
}

func TestKSkybandCountsEdge(t *testing.T) {
	if got := KSkybandCounts(nil, 3); len(got) != 0 {
		t.Errorf("empty input produced %d counts", len(got))
	}
	pts := []vec.Vec{vec.Of(0.5, 0.5), vec.Of(0.9, 0.9)}
	for _, c := range KSkybandCounts(pts, 0) {
		if c != 1 {
			t.Errorf("k=0: count %d, want 1 (no rank qualifies)", c)
		}
	}
}

func TestKSkybandScratchMatchesKSkyband(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var s Scratch
	for _, d := range []int{2, 3, 4} {
		for _, n := range []int{0, 1, 17, 150} {
			pts := randPoints(rng, n, d)
			for k := 1; k <= 4; k++ {
				want := KSkyband(pts, k)
				got := KSkybandScratch(pts, k, &s)
				if len(got) != len(want) {
					t.Fatalf("d=%d n=%d k=%d: %d indices, want %d", d, n, k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("d=%d n=%d k=%d: band[%d] = %d, want %d", d, n, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestKSkybandScratchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := randPoints(rng, 300, 3)
	var s Scratch
	KSkybandScratch(pts, 3, &s)
	allocs := testing.AllocsPerRun(50, func() {
		KSkybandScratch(pts, 3, &s)
	})
	if allocs != 0 {
		t.Errorf("KSkybandScratch allocates %.1f per run on warm scratch, want 0", allocs)
	}
}
