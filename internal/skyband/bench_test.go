package skyband

import (
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

func BenchmarkKSkyband(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]vec.Vec, 20000)
	for i := range pts {
		pts[i] = vec.Of(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
	}
	for _, k := range []int{1, 10} {
		name := map[int]string{1: "k=1", 10: "k=10"}[k]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				KSkyband(pts, k)
			}
		})
	}
}
