package skyband

import (
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q vec.Vec
		want bool
	}{
		{vec.Of(2, 2), vec.Of(1, 1), true},
		{vec.Of(2, 1), vec.Of(1, 1), true},
		{vec.Of(1, 1), vec.Of(1, 1), false}, // equal points do not dominate
		{vec.Of(2, 0), vec.Of(1, 1), false},
		{vec.Of(1, 1), vec.Of(2, 2), false},
	}
	for _, c := range cases {
		if got := Dominates(c.p, c.q); got != c.want {
			t.Errorf("Dominates(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestSkylineSmall(t *testing.T) {
	pts := []vec.Vec{
		vec.Of(0.2, 0.92), // p1: skyline
		vec.Of(0.7, 0.54), // p2: skyline
		vec.Of(0.6, 0.3),  // p3: dominated by p2
	}
	sky := Skyline(pts)
	if len(sky) != 2 || sky[0] != 0 || sky[1] != 1 {
		t.Fatalf("skyline = %v, want [0 1]", sky)
	}
}

func TestKSkybandMatchesDominatorCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(3)
		n := 50 + rng.Intn(150)
		pts := make([]vec.Vec, n)
		for i := range pts {
			p := vec.New(d)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts[i] = p
		}
		counts := DominatorCount(pts)
		for _, k := range []int{1, 2, 5, 10} {
			want := make(map[int]bool)
			for i, c := range counts {
				if c < k {
					want[i] = true
				}
			}
			got := KSkyband(pts, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: |band| = %d, want %d", k, len(got), len(want))
			}
			for _, i := range got {
				if !want[i] {
					t.Fatalf("k=%d: index %d should not be in band", k, i)
				}
			}
		}
	}
}

func TestKSkybandMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]vec.Vec, 200)
	for i := range pts {
		pts[i] = vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
	}
	prev := 0
	for k := 1; k <= 8; k++ {
		got := len(KSkyband(pts, k))
		if got < prev {
			t.Fatalf("band size decreased: k=%d size=%d prev=%d", k, got, prev)
		}
		prev = got
	}
}

func TestKSkybandDuplicates(t *testing.T) {
	// Duplicates don't dominate each other, so both copies stay.
	pts := []vec.Vec{vec.Of(0.5, 0.5), vec.Of(0.5, 0.5), vec.Of(0.9, 0.9)}
	band := KSkyband(pts, 1)
	if len(band) != 3 {
		// (0.9,0.9) dominates both copies, so with k=1 only it survives.
		if len(band) != 1 || band[0] != 2 {
			t.Fatalf("band = %v", band)
		}
	} else {
		t.Fatalf("band = %v; dominated duplicates must be pruned at k=1", band)
	}
	band = KSkyband(pts, 2)
	if len(band) != 3 {
		t.Fatalf("k=2 band = %v, want all 3 (each copy has 1 dominator)", band)
	}
}

func TestKSkybandEdge(t *testing.T) {
	if got := KSkyband(nil, 3); len(got) != 0 {
		t.Fatalf("empty input band = %v", got)
	}
	if got := KSkyband([]vec.Vec{vec.Of(1, 2)}, 0); got != nil {
		t.Fatalf("k=0 band = %v, want nil", got)
	}
	pts := []vec.Vec{vec.Of(0.1, 0.1)}
	if got := KSkyband(pts, 1); len(got) != 1 {
		t.Fatalf("singleton band = %v", got)
	}
}

func TestSelect(t *testing.T) {
	pts := []vec.Vec{vec.Of(1), vec.Of(2), vec.Of(3)}
	sel := Select(pts, []int{2, 0})
	if len(sel) != 2 || sel[0][0] != 3 || sel[1][0] != 1 {
		t.Fatalf("Select = %v", sel)
	}
}
