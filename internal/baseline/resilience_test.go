package baseline

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"rrq/internal/core"
	"rrq/internal/dataset"
	"rrq/internal/faultinject"
	"rrq/internal/obs"
	"rrq/internal/vec"
)

// lpctaInstance returns a 2-d instance where LP-CTA does real tree work
// (enough LP solves to pass the amortized check cadence at least once).
func lpctaInstance(t *testing.T) ([]vec.Vec, core.Query) {
	t.Helper()
	pts := dataset.Generate(dataset.Independent, 300, 2, 13)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 30; i++ {
		q := core.Query{Q: dataset.RandQuery(rng, pts), K: 10, Eps: 0.2}
		_, st, err := LPCTAContext(context.Background(), pts, q)
		if err == nil && st.Pieces > 0 && st.LPSolves > 200 {
			return pts, q
		}
	}
	t.Fatal("precondition: no query makes LP-CTA work hard enough; pick new seeds")
	return nil, core.Query{}
}

// An injected LP failure must surface as a typed *NumericalError, and under
// a SolvePolicy with a fallback the query must degrade with
// DegradeNumerical instead of failing.
func TestLPFaultDegradesNumerical(t *testing.T) {
	pts, q := lpctaInstance(t)
	prep, err := core.Prepare(pts, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	lpBoom := errors.New("injected LP failure")
	inj := faultinject.New(&faultinject.Fault{
		Point: faultinject.LPSolve,
		Err:   lpBoom,
		Times: 1,
	})
	ctx := faultinject.ContextWith(context.Background(), inj)

	// Without a fallback: the typed numerical error surfaces.
	_, _, err = LPCTASolver{}.Solve(ctx, prep, q)
	var ne *core.NumericalError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want *NumericalError", err)
	}
	if ne.Solver != "LP-CTA" || !errors.Is(ne, lpBoom) {
		t.Fatalf("NumericalError{Solver:%q Err:%v}", ne.Solver, ne.Err)
	}

	// With a fallback: the same fault degrades to the exact 2-d solver.
	inj2 := faultinject.New(&faultinject.Fault{Point: faultinject.LPSolve, Err: lpBoom, Times: 1})
	reg := obs.NewRegistry()
	ctx2 := obs.ContextWithRegistry(faultinject.ContextWith(context.Background(), inj2), reg)
	pol := core.SolvePolicy{Solver: LPCTASolver{}, Fallbacks: []core.Solver{core.SweepingSolver{}}}
	r, _, deg, err := pol.Solve(ctx2, prep, q, -1)
	if err != nil {
		t.Fatalf("err = %v, want degraded success", err)
	}
	if r == nil || deg == nil {
		t.Fatal("want a fallback region and a Degradation record")
	}
	if deg.Reason != core.DegradeNumerical || deg.Solver != "Sweeping" {
		t.Fatalf("Degradation{%v, %q}, want {numerical, Sweeping}", deg.Reason, deg.Solver)
	}
	if !errors.As(deg.Cause, &ne) {
		t.Fatalf("degradation cause %v, want *NumericalError", deg.Cause)
	}
	if reg.Counters()["solve.degraded.numerical"] != 1 {
		t.Errorf("solve.degraded.numerical = %d, want 1", reg.Counters()["solve.degraded.numerical"])
	}

	// Cross-validate: the degraded answer is the exact answer (Sweeping is
	// exact in 2-d), so degradation here lost nothing but the cost model.
	want, werr := core.Sweeping(pts, q)
	if werr != nil {
		t.Fatal(werr)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		x := rng.Float64()
		u := vec.Of(x, 1-x)
		if r.Contains(u) != want.Contains(u) {
			t.Fatalf("degraded region disagrees with exact at %v", u)
		}
	}
}

// A real (non-injected) budget degradation across the cost gap the paper
// measures: LP-CTA burns an LP per relation check and trips a small budget,
// while the linear-time sweep answers the same query within it.
func TestBudgetDegradesLPCTAToSweeping(t *testing.T) {
	pts, q := lpctaInstance(t)
	prep, err := core.Prepare(pts, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.ContextWithRegistry(context.Background(), reg)
	pol := core.SolvePolicy{
		Solver:     LPCTASolver{},
		Fallbacks:  []core.Solver{core.SweepingSolver{}},
		WorkBudget: 50, // LP-CTA charges 64 per amortized check; Sweeping ~1
	}
	r, _, deg, err := pol.Solve(ctx, prep, q, -1)
	if err != nil {
		t.Fatalf("err = %v, want degraded success", err)
	}
	if r == nil || deg == nil {
		t.Fatal("want a fallback region and a Degradation record")
	}
	if deg.Reason != core.DegradeBudget || deg.Solver != "Sweeping" {
		t.Fatalf("Degradation{%v, %q}, want {budget, Sweeping}", deg.Reason, deg.Solver)
	}
	var be *core.BudgetError
	if !errors.As(deg.Cause, &be) {
		t.Fatalf("degradation cause %v, want *BudgetError", deg.Cause)
	}
}

// Mid-phase cancellation of LP-CTA: abort with context.Canceled and close
// every opened phase timer.
func TestLPCTACancelMidPhase(t *testing.T) {
	pts, q := lpctaInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	var once sync.Once
	ctx = obs.ContextWithTrace(ctx, func(obs.Event) { once.Do(cancel) })
	reg := obs.NewRegistry()
	ctx = obs.ContextWithRegistry(ctx, reg)

	_, _, err := LPCTAContext(ctx, pts, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	timers := reg.Timers()
	if len(timers) == 0 {
		t.Fatal("no phase timers recorded")
	}
	for name, snap := range timers {
		if snap.Count == 0 {
			t.Errorf("phase %s opened but never closed", name)
		}
	}
}
