package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"rrq/internal/core"
	"rrq/internal/vec"
)

func randomInstance(rng *rand.Rand, n, d int) ([]vec.Vec, core.Query) {
	pts := make([]vec.Vec, n)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = 0.01 + 0.99*rng.Float64()
		}
		pts[i] = p
	}
	q := core.Query{
		Q:   pts[rng.Intn(n)].Clone(),
		K:   1 + rng.Intn(4),
		Eps: rng.Float64() * 0.2,
	}
	for j := range q.Q {
		q.Q[j] = math.Min(1, math.Max(0.01, q.Q[j]+(rng.Float64()-0.5)*0.2))
	}
	return pts, q
}

const boundaryMargin = 1e-7

// agree verifies two regions classify random utility vectors identically,
// skipping numerically boundary-sitting vectors.
func agree(t *testing.T, a, b *core.Region, pts []vec.Vec, q core.Query, rng *rand.Rand, samples int, label string) {
	t.Helper()
	for i := 0; i < samples; i++ {
		u := vec.RandSimplex(rng, q.Q.Dim())
		_, margin := core.CountBetter(pts, q, u)
		if margin < boundaryMargin {
			continue
		}
		if a.Contains(u) != b.Contains(u) {
			t.Fatalf("%s: disagreement at %v (a=%v b=%v, k=%d ε=%.3f)",
				label, u, a.Contains(u), b.Contains(u), q.K, q.Eps)
		}
	}
}

func TestLPCTAMatchesEPT(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, d := range []int{2, 3, 4} {
		for trial := 0; trial < 12; trial++ {
			pts, q := randomInstance(rng, 8+rng.Intn(20), d)
			want, err := core.EPT(pts, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := LPCTA(pts, q)
			if err != nil {
				t.Fatal(err)
			}
			agree(t, got, want, pts, q, rng, 200, "LP-CTA vs E-PT")
		}
	}
}

func TestLPCTAStatsCountLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts, q := randomInstance(rng, 30, 3)
	_, st, err := LPCTAWithStats(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	if st.LPSolves == 0 && st.NodesCreated <= 1 {
		t.Skip("degenerate instance with no crossing planes")
	}
	if st.LPSolves%2 != 0 {
		t.Fatalf("LP solves should come in min/max pairs: %+v", st)
	}
}

func TestLPCTAInvalidQuery(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.5, 0.5)}
	if _, err := LPCTA(pts, core.Query{Q: vec.Of(0.5, 0.5), K: 0, Eps: 0.1}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := LPCTA([]vec.Vec{vec.Of(0.5, 0.5, 0.5)}, core.Query{Q: vec.Of(0.5, 0.5), K: 1, Eps: 0.1}); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestPBAMatchesEPT(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, d := range []int{2, 3} {
		for trial := 0; trial < 10; trial++ {
			pts, q := randomInstance(rng, 8+rng.Intn(12), d)
			ix, err := BuildPBA(pts, q.K, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.EPT(pts, q)
			if err != nil {
				t.Fatal(err)
			}
			agree(t, got, want, pts, q, rng, 200, "PBA+ vs E-PT")
		}
	}
}

func TestPBAReusableAcrossQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts, _ := randomInstance(rng, 15, 3)
	ix, err := BuildPBA(pts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The same index answers different (q, k ≤ kmax, ε) queries.
	for trial := 0; trial < 5; trial++ {
		q := core.Query{
			Q:   pts[rng.Intn(len(pts))].Clone(),
			K:   1 + rng.Intn(3),
			Eps: rng.Float64() * 0.15,
		}
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.EPT(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		agree(t, got, want, pts, q, rng, 150, "PBA+ reuse vs E-PT")
	}
}

func TestPBAKExceedsIndex(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.5, 0.5), vec.Of(0.6, 0.4)}
	ix, err := BuildPBA(pts, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(core.Query{Q: vec.Of(0.5, 0.5), K: 2, Eps: 0.1}); err == nil {
		t.Fatal("k > kmax should error")
	}
}

func TestPBAKExceedsN(t *testing.T) {
	pts := []vec.Vec{vec.Of(0.5, 0.5), vec.Of(0.6, 0.4)}
	ix, err := BuildPBA(pts, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := ix.Query(core.Query{Q: vec.Of(0.1, 0.1), K: 5, Eps: 0.0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		if !reg.Contains(vec.RandSimplex(rng, 2)) {
			t.Fatal("k > n: everything should qualify")
		}
	}
}

func TestPBABudget(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pts := make([]vec.Vec, 40)
	for i := range pts {
		pts[i] = vec.Of(rng.Float64(), rng.Float64(), rng.Float64())
	}
	_, err := BuildPBA(pts, 5, 10)
	if !errors.Is(err, ErrPBABudget) {
		t.Fatalf("err = %v, want ErrPBABudget", err)
	}
}

func TestPBABuildValidation(t *testing.T) {
	if _, err := BuildPBA(nil, 1, 0); err == nil {
		t.Fatal("empty dataset should error")
	}
	if _, err := BuildPBA([]vec.Vec{vec.Of(0.5, 0.5)}, 0, 0); err == nil {
		t.Fatal("kmax=0 should error")
	}
	if _, err := BuildPBA([]vec.Vec{vec.Of(0.5)}, 1, 0); err == nil {
		t.Fatal("d=1 should error")
	}
}

func TestPBADuplicatePoints(t *testing.T) {
	p := vec.Of(0.7, 0.4)
	pts := []vec.Vec{p, p.Clone(), vec.Of(0.3, 0.8), vec.Of(0.5, 0.5)}
	q := core.Query{Q: vec.Of(0.55, 0.5), K: 2, Eps: 0.08}
	ix, err := BuildPBA(pts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.EPT(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	agree(t, got, want, pts, q, rand.New(rand.NewSource(3)), 300, "PBA+ duplicates")
}
