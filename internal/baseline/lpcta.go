// Package baseline reimplements the two competitors the paper benchmarks
// against, adapted to the reverse regret query exactly as §6.1 describes:
//
//   - LP-CTA (Tang et al., SIGMOD 2017): a cell-tree arrangement whose
//     hyper-plane/partition relationship checks are performed by solving
//     linear programs, with the paper's designed hyper-planes replaced by
//     the RRQ hyper-planes h_{q,p}.
//   - PBA+ (Zhang et al., SIGMOD 2022, T-LevelIndex): a preprocessed
//     hierarchical rank-level index over the utility space; queries do a
//     top-down search comparing the query point against each partition's
//     ranked point.
//
// Both produce core.Region answers so the test suite can cross-validate
// them against Sweeping/E-PT/A-PC.
package baseline

import (
	"context"

	"rrq/internal/core"
	"rrq/internal/faultinject"
	"rrq/internal/geom"
	"rrq/internal/lp"
	"rrq/internal/obs"
	"rrq/internal/vec"
)

// LPCTASolver adapts LP-CTA to the uniform core.Solver contract.
type LPCTASolver struct{}

// Name implements core.Solver.
func (LPCTASolver) Name() string { return "LP-CTA" }

// Solve implements core.Solver.
func (LPCTASolver) Solve(ctx context.Context, prep *core.Prepared, q core.Query) (*core.Region, core.Stats, error) {
	return LPCTAContext(ctx, prep.PointsFor(q.K), q)
}

// ctaNode is one node of the cell tree. Unlike the E-PT, cells are stored
// purely as constraint lists — relationship checks go through the LP
// solver, which is the cost profile the paper attributes to LP-CTA.
type ctaNode struct {
	normals  []vec.Vec
	signs    []int
	q        int
	children []*ctaNode
	invalid  bool
}

// LPCTA solves RRQ exactly with the adapted LP-CTA algorithm. It applies
// the same hyper-plane preprocessing as the core solvers (planes that never
// or always count are folded away) but none of E-PT's accelerations: no
// hyper-plane reduction, no insertion ordering, no sphere tests and no lazy
// splitting; every relationship check costs two LP solves.
func LPCTA(pts []vec.Vec, q core.Query) (*core.Region, error) {
	r, _, err := LPCTAWithStats(pts, q)
	return r, err
}

// LPCTAWithStats is LPCTA plus the shared core.Stats work counters.
func LPCTAWithStats(pts []vec.Vec, q core.Query) (*core.Region, core.Stats, error) {
	return LPCTAContext(context.Background(), pts, q)
}

// LPCTAContext runs LP-CTA under a context: cancellation and deadlines are
// observed with one amortized check every 64 LP solves (an LP per node
// visit is expensive, so a finer grain buys nothing). A passed deadline
// surfaces as core.ErrDeadline, cancellation as ctx.Err(). Trace hooks and
// metrics registries attached to ctx (see internal/obs) receive the
// solve's work events and phase timings.
func LPCTAContext(ctx context.Context, pts []vec.Vec, q core.Query) (*core.Region, core.Stats, error) {
	var st core.Stats
	d := q.Q.Dim()
	if err := q.Validate(d); err != nil {
		return nil, st, err
	}
	check := core.NewCtxChecker(ctx, 0x3f)
	check.SetFaultKey(q.Q)
	if check.Failed() {
		return nil, st, check.Err()
	}
	planePhase := check.Phase("phase.lpcta.planes")
	defer planePhase()
	planes, base, err := queryPlanes(pts, q)
	planePhase()
	if err != nil {
		return nil, st, err
	}
	st.PlanesBuilt = len(planes)
	check.Emit(obs.EvPlaneBuilt, st.PlanesBuilt)
	k := q.K - base
	if k <= 0 {
		check.Emit(obs.EvPlanePruned, st.PlanesBuilt)
		return core.EmptyRegion(d), st, nil
	}

	insertPhase := check.Phase("phase.lpcta.insert")
	defer insertPhase()
	root := &ctaNode{}
	st.NodesCreated++
	cc := &ctaCtx{k: k, d: d, st: &st, check: check}
	for _, h := range planes {
		st.PlanesInserted++
		ctaInsert(root, h, cc)
		if cc.err != nil {
			return nil, st, cc.err
		}
		if check.Failed() {
			return nil, st, check.Err()
		}
	}
	insertPhase()

	collectPhase := check.Phase("phase.lpcta.collect")
	defer collectPhase()
	var cells []*geom.Cell
	ctaCollect(root, d, &cells)
	st.Pieces = len(cells)
	check.Emit(obs.EvPieceEmitted, st.Pieces)
	if len(cells) == 0 {
		return core.EmptyRegion(d), st, nil
	}
	return core.NewDisjointCellRegion(d, cells), st, nil
}

// ctaCtx carries the shared insertion state, including the amortized
// context checker. err records a solver-level numerical failure (e.g. an
// injected LP fault) that must abort the whole solve rather than just
// invalidate one node.
type ctaCtx struct {
	k, d  int
	st    *core.Stats
	check *core.CtxChecker
	err   error
}

// ctaInsert inserts one hyper-plane top-down, checking relationships by LP.
// The minimum of u·w over the cell is solved first; the maximum is only
// needed when the minimum is negative.
func ctaInsert(n *ctaNode, h geom.Hyperplane, cc *ctaCtx) {
	if n.invalid || cc.err != nil || cc.check.Stop() {
		return
	}
	k, st := cc.k, cc.st
	lo, hi, feasible := ctaRange(n, h, cc)
	if !feasible {
		// Numerically collapsed cell: nothing to do.
		n.invalid = true
		return
	}
	switch {
	case lo >= -lpTol:
		// Cell inside the closed positive half-space: unaffected.
	case hi <= lpTol:
		// Cell inside the negative half-space.
		ctaCoverNeg(n, k)
	default:
		if len(n.children) > 0 {
			for _, c := range n.children {
				ctaInsert(c, h, cc)
			}
			return
		}
		neg := &ctaNode{
			normals: appendVec(n.normals, h.Normal),
			signs:   appendInt(n.signs, -1),
			q:       n.q + 1,
		}
		pos := &ctaNode{
			normals: appendVec(n.normals, h.Normal),
			signs:   appendInt(n.signs, +1),
			q:       n.q,
		}
		st.NodesCreated += 2
		st.Splits++
		cc.check.Emit(obs.EvNodeSplit, 1)
		if neg.q >= k {
			neg.invalid = true
		}
		n.children = []*ctaNode{neg, pos}
	}
}

// ctaRange computes min (and, only when needed, max) of u·Normal over the
// node's cell. hi is +Inf-like (lo+1 above the threshold) when the minimum
// alone already classifies the cell as positive.
func ctaRange(n *ctaNode, h geom.Hyperplane, cc *ctaCtx) (lo, hi float64, feasible bool) {
	minS, ok := ctaSolve(n, h, cc, false)
	if !ok {
		return 0, 0, false
	}
	if minS >= -lpTol {
		return minS, minS + 1, true
	}
	maxS, ok := ctaSolve(n, h, cc, true)
	if !ok {
		return 0, 0, false
	}
	return minS, maxS, true
}

func ctaSolve(n *ctaNode, h geom.Hyperplane, cc *ctaCtx, maximize bool) (float64, bool) {
	d, st := cc.d, cc.st
	if ferr := cc.check.Fault(faultinject.LPSolve); ferr != nil {
		// Injected LP failure: a numerical fault the solver cannot recover
		// from — typed so SolvePolicy can re-run the query on a fallback.
		cc.err = &core.NumericalError{Solver: "LP-CTA", Err: ferr}
		return 0, false
	}
	st.LPSolves++
	cc.check.Emit(obs.EvLPSolve, 1)
	obj := h.Normal
	aub := make([][]float64, 0, len(n.normals))
	bub := make([]float64, 0, len(n.normals))
	for j, w := range n.normals {
		row := make([]float64, d)
		for i, x := range w {
			row[i] = -float64(n.signs[j]) * x
		}
		aub = append(aub, row)
		bub = append(bub, 0)
	}
	ones := make([]float64, d)
	for i := range ones {
		ones[i] = 1
	}
	var s lp.Solution
	if maximize {
		s = lp.Maximize(obj, aub, bub, [][]float64{ones}, []float64{1})
	} else {
		s = lp.Minimize(obj, aub, bub, [][]float64{ones}, []float64{1})
	}
	if s.Status != lp.Optimal {
		return 0, false
	}
	return s.Objective, true
}

func ctaCoverNeg(n *ctaNode, k int) {
	if n.invalid {
		return
	}
	n.q++
	if n.q >= k {
		n.invalid = true
		return
	}
	for _, c := range n.children {
		ctaCoverNeg(c, k)
	}
}

// ctaCollect materializes the qualified leaves as geometric cells (the
// output construction step of CTA).
func ctaCollect(n *ctaNode, d int, out *[]*geom.Cell) {
	if n.invalid {
		return
	}
	if len(n.children) == 0 {
		cell := geom.NewSimplex(d)
		for i, w := range n.normals {
			h := geom.NewHyperplane(w, i)
			cell = cell.Clip(h, n.signs[i])
			if cell == nil {
				return
			}
		}
		*out = append(*out, cell)
		return
	}
	for _, c := range n.children {
		ctaCollect(c, d, out)
	}
}

const lpTol = 1e-9

func appendVec(xs []vec.Vec, x vec.Vec) []vec.Vec {
	out := make([]vec.Vec, len(xs)+1)
	copy(out, xs)
	out[len(xs)] = x
	return out
}

func appendInt(xs []int, x int) []int {
	out := make([]int, len(xs)+1)
	copy(out, xs)
	out[len(xs)] = x
	return out
}

// queryPlanes rebuilds the RRQ hyper-plane classification (identical to the
// core preprocessing, restated here because the baselines consume planes in
// raw input order).
func queryPlanes(pts []vec.Vec, q core.Query) (crossing []geom.Hyperplane, base int, err error) {
	d := q.Q.Dim()
	scale := 1 - q.Eps
	for i, p := range pts {
		if p.Dim() != d {
			return nil, 0, errDim(d, p.Dim())
		}
		w := q.Q.AddScaled(-scale, p)
		neg, pos := false, false
		for _, x := range w {
			if x > geom.Tol {
				pos = true
			} else if x < -geom.Tol {
				neg = true
			}
		}
		switch {
		case !neg:
		case !pos:
			base++
		default:
			crossing = append(crossing, geom.NewHyperplane(w, i))
		}
	}
	return crossing, base, nil
}
