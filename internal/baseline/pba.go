package baseline

import (
	"context"
	"fmt"

	"rrq/internal/core"
	"rrq/internal/index"
	"rrq/internal/vec"
)

// PBAIndex is the adapted PBA+ (T-LevelIndex) baseline: a tree over the
// utility space in which every node at depth i stores a partition together
// with the point that ranks i-th on that partition. The rank-level tree
// itself now lives in internal/index (where the snapshot index reuses it);
// this type keeps the baseline's historical API and metric names ("pba"
// phase timers and counters) as a thin delegate, so experiments can still
// compare the one-shot baseline build against snapshot-served queries.
type PBAIndex struct {
	dim  int
	kmax int
	tree *index.RankTree

	// Nodes is the number of tree nodes materialized.
	Nodes int
	// Clips counts hyper-plane clip operations during preprocessing, the
	// dominant cost unit; it is budgeted alongside Nodes.
	Clips int
}

// ErrPBABudget is returned when preprocessing exceeds its node budget — the
// analogue of the paper omitting PBA+ results past 10⁴ seconds. It is the
// rank tree's budget error, so == and errors.Is both recognize budget
// failures regardless of which package reported them.
var ErrPBABudget = index.ErrTreeBudget

// BuildPBA preprocesses pts into a rank-level index supporting queries with
// k ≤ kmax. Points outside the kmax-skyband can never appear in any top-kmax
// result and are pruned first (the same preprocessing the original applies).
// maxNodes caps index materialization; 0 means a default of 200000.
func BuildPBA(pts []vec.Vec, kmax, maxNodes int) (*PBAIndex, error) {
	return BuildPBAContext(context.Background(), pts, kmax, maxNodes)
}

// BuildPBAContext bounds preprocessing by the context: a passed deadline
// aborts the build with core.ErrDeadline, cancellation with ctx.Err(),
// both observed with an amortized check per preprocessing clip.
func BuildPBAContext(ctx context.Context, pts []vec.Vec, kmax, maxNodes int) (*PBAIndex, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("baseline: empty dataset")
	}
	if d := pts[0].Dim(); d < 2 {
		return nil, fmt.Errorf("baseline: dimension %d < 2", d)
	}
	if kmax < 1 {
		return nil, fmt.Errorf("baseline: kmax %d < 1", kmax)
	}
	t, err := index.BuildRankTree(ctx, pts, kmax, maxNodes, "pba")
	if err != nil {
		return nil, err
	}
	return &PBAIndex{dim: pts[0].Dim(), kmax: kmax, tree: t, Nodes: t.Nodes, Clips: t.Clips}, nil
}

// Query answers an RRQ with the prebuilt index. It is QueryContext with a
// background context.
func (ix *PBAIndex) Query(q core.Query) (*core.Region, error) {
	return ix.QueryContext(context.Background(), q)
}

// QueryContext answers an RRQ with the prebuilt index: a top-down search
// that compares the query point against each partition's ranked point. A
// partition already dominated by q at some level is returned whole without
// refinement (which is why PBA+ gets faster as ε grows); at depth k the
// partition is clipped by h_{q,p_k}. A trace hook attached to ctx (see
// internal/obs) receives plane-built and piece-emitted events, and a
// metrics registry times the "phase.pba.search" phase and maintains
// pba.queries / pba.nodes_visited / pba.planes_built counters.
func (ix *PBAIndex) QueryContext(ctx context.Context, q core.Query) (*core.Region, error) {
	if err := q.Validate(ix.dim); err != nil {
		return nil, err
	}
	if q.K > ix.kmax {
		return nil, fmt.Errorf("baseline: query k=%d exceeds index kmax=%d", q.K, ix.kmax)
	}
	return ix.tree.QueryContext(ctx, q)
}

func errDim(want, got int) error {
	return fmt.Errorf("baseline: point dimension %d does not match query dimension %d", got, want)
}
