package baseline

import (
	"context"
	"fmt"

	"rrq/internal/core"
	"rrq/internal/geom"
	"rrq/internal/obs"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// PBAIndex is the adapted PBA+ (T-LevelIndex) structure: a tree over the
// utility space in which every node at depth i stores a partition together
// with the point that ranks i-th on that partition. Building it requires
// materializing the rank arrangement level by level, which is the costly
// preprocessing step the paper reports (>10⁴ seconds at scale); the
// MaxNodes budget makes that explosion explicit instead of silent.
type PBAIndex struct {
	dim    int
	kmax   int
	pts    []vec.Vec
	root   *pbaNode
	nextID int

	// Nodes is the number of tree nodes materialized.
	Nodes int
	// Clips counts hyper-plane clip operations during preprocessing, the
	// dominant cost unit; it is budgeted alongside Nodes.
	Clips    int
	maxClips int
	check    *core.CtxChecker
}

type pbaNode struct {
	cell     *geom.Cell
	point    int // index into pts of the point ranked at this depth; -1 at root
	depth    int
	children []*pbaNode
}

// ErrPBABudget is returned when preprocessing exceeds its node budget —
// the analogue of the paper omitting PBA+ results past 10⁴ seconds.
var ErrPBABudget = fmt.Errorf("baseline: PBA+ preprocessing exceeded its node budget")

// maxPBAVerts bounds the maintained vertex count of any cell during
// preprocessing; beyond it, clip cost grows quadratically out of any
// budget's reach.
const maxPBAVerts = 5000

// BuildPBA preprocesses pts into a rank-level index supporting queries with
// k ≤ kmax. Points outside the kmax-skyband can never appear in any top-kmax
// result and are pruned first (the same preprocessing the original applies).
// maxNodes caps index materialization; 0 means a default of 200000.
func BuildPBA(pts []vec.Vec, kmax, maxNodes int) (*PBAIndex, error) {
	return BuildPBAContext(context.Background(), pts, kmax, maxNodes)
}

// BuildPBAContext bounds preprocessing by the context: a passed deadline
// aborts the build with core.ErrDeadline, cancellation with ctx.Err(),
// both observed with an amortized check per preprocessing clip.
func BuildPBAContext(ctx context.Context, pts []vec.Vec, kmax, maxNodes int) (*PBAIndex, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("baseline: empty dataset")
	}
	d := pts[0].Dim()
	if d < 2 {
		return nil, fmt.Errorf("baseline: dimension %d < 2", d)
	}
	if kmax < 1 {
		return nil, fmt.Errorf("baseline: kmax %d < 1", kmax)
	}
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	band := skyband.KSkyband(pts, kmax)
	ix := &PBAIndex{
		dim:      d,
		kmax:     kmax,
		pts:      skyband.Select(pts, band),
		maxClips: 50 * maxNodes,
		check:    core.NewCtxChecker(ctx, 0x1ff),
	}
	ix.root = &pbaNode{cell: geom.NewSimplex(d), point: -1}
	ix.Nodes = 1
	remaining := make([]int, len(ix.pts))
	for i := range remaining {
		remaining[i] = i
	}
	buildPhase := ix.check.Phase("phase.pba.build")
	if err := ix.build(ix.root, remaining, maxNodes); err != nil {
		return nil, err
	}
	buildPhase()
	return ix, nil
}

// build expands node n by the argmax decomposition over remaining: one
// child per point that ranks first somewhere inside n.cell.
func (ix *PBAIndex) build(n *pbaNode, remaining []int, maxNodes int) error {
	if n.depth == ix.kmax || len(remaining) == 0 {
		return nil
	}
	// Only skyline points of the remaining set can rank first anywhere.
	// The skyline scan is real preprocessing work; charge it to the budget
	// so that huge instances fail fast instead of thrashing.
	ix.Clips += len(remaining)
	if ix.Clips > ix.maxClips {
		return ErrPBABudget
	}
	if ix.check.Stop() {
		return ix.check.Err()
	}
	cands := localSkyline(ix.pts, remaining)
	for _, p := range cands {
		cell := n.cell
		dead := false
		for _, other := range remaining {
			if other == p {
				continue
			}
			w := ix.pts[p].Sub(ix.pts[other])
			if w.Norm() < vec.Eps {
				// Exact duplicate: the smaller index represents the tie.
				if other < p {
					dead = true
					break
				}
				continue
			}
			ix.nextID++
			ix.Clips++
			if ix.Clips > ix.maxClips {
				return ErrPBABudget
			}
			if ix.check.Stop() {
				return ix.check.Err()
			}
			h := geom.NewHyperplane(w, ix.nextID)
			cell = cell.Clip(h, +1)
			if cell == nil {
				dead = true
				break
			}
			// Near-parallel rank planes can make the maintained vertex
			// superset explode (see geom.Cell); a cell that large makes a
			// single further clip slower than any time budget, so treat it
			// as the preprocessing blow-up it is.
			if cell.NumVertices() > maxPBAVerts {
				return ErrPBABudget
			}
		}
		if dead {
			continue
		}
		child := &pbaNode{cell: cell, point: p, depth: n.depth + 1}
		ix.check.Emit(obs.EvNodeSplit, 1)
		ix.Nodes++
		if ix.Nodes > maxNodes {
			return ErrPBABudget
		}
		n.children = append(n.children, child)
		if err := ix.build(child, without(remaining, p), maxNodes); err != nil {
			return err
		}
	}
	return nil
}

// localSkyline returns the members of idx whose points are not dominated by
// another member, via the sort-based skyline of the skyband package.
func localSkyline(pts []vec.Vec, idx []int) []int {
	sub := make([]vec.Vec, len(idx))
	for i, j := range idx {
		sub[i] = pts[j]
	}
	sky := skyband.Skyline(sub)
	out := make([]int, len(sky))
	for i, s := range sky {
		out[i] = idx[s]
	}
	return out
}

func without(xs []int, x int) []int {
	out := make([]int, 0, len(xs)-1)
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// Query answers an RRQ with the prebuilt index. It is QueryContext with a
// background context.
func (ix *PBAIndex) Query(q core.Query) (*core.Region, error) {
	return ix.QueryContext(context.Background(), q)
}

// QueryContext answers an RRQ with the prebuilt index: a top-down search
// that compares the query point against each partition's ranked point. A
// partition already dominated by q at some level is returned whole without
// refinement (which is why PBA+ gets faster as ε grows); at depth k the
// partition is clipped by h_{q,p_k}. A trace hook attached to ctx (see
// internal/obs) receives a piece-emitted event for the answer, and a
// metrics registry times the search phase.
func (ix *PBAIndex) QueryContext(ctx context.Context, q core.Query) (*core.Region, error) {
	if err := q.Validate(ix.dim); err != nil {
		return nil, err
	}
	if q.K > ix.kmax {
		return nil, fmt.Errorf("baseline: query k=%d exceeds index kmax=%d", q.K, ix.kmax)
	}
	check := core.NewCtxChecker(ctx, 0x3ff)
	if q.K > len(ix.pts) {
		// Fewer points than k: every utility vector qualifies.
		check.Emit(obs.EvPieceEmitted, 1)
		return core.NewCellRegion(ix.dim, []*geom.Cell{geom.NewSimplex(ix.dim)}), nil
	}
	searchPhase := check.Phase("phase.pba.search")
	var cells []*geom.Cell
	ix.search(ix.root, q, &cells)
	searchPhase()
	check.Emit(obs.EvPieceEmitted, len(cells))
	if len(cells) == 0 {
		return core.EmptyRegion(ix.dim), nil
	}
	return core.NewDisjointCellRegion(ix.dim, cells), nil
}

func (ix *PBAIndex) search(n *pbaNode, q core.Query, out *[]*geom.Cell) {
	if n.point >= 0 {
		w := q.Q.AddScaled(-(1 - q.Eps), ix.pts[n.point])
		if w.Norm() < vec.Eps {
			// q sits exactly on the scaled point: boundary, treat as
			// qualified at this level and keep descending to level k.
			if n.depth == q.K {
				*out = append(*out, n.cell)
				return
			}
		} else {
			h := geom.NewHyperplane(w, 1<<30+n.point)
			rel := n.cell.Relation(h)
			if rel == geom.RelPos {
				// q beats this level's point everywhere on the cell, so it
				// beats every deeper level too: accept without refinement.
				*out = append(*out, n.cell)
				return
			}
			if n.depth == q.K {
				switch rel {
				case geom.RelNeg:
					return
				default:
					if c := n.cell.Clip(h, +1); c != nil {
						*out = append(*out, c)
					}
					return
				}
			}
		}
	}
	for _, c := range n.children {
		ix.search(c, q, out)
	}
}

func errDim(want, got int) error {
	return fmt.Errorf("baseline: point dimension %d does not match query dimension %d", got, want)
}
