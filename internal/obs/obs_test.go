package obs

import (
	"context"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeBasics pins the counter/gauge contracts, including the
// expvar.Var renderings.
func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if c.String() != "42" {
		t.Fatalf("counter String() = %q, want 42", c.String())
	}
	var g Gauge
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	if g.String() != "2.5" {
		t.Fatalf("gauge String() = %q, want 2.5", g.String())
	}
}

// TestMetricsAreExpvarVars checks that every metric type satisfies the
// expvar.Var interface, the compatibility contract of the exposition.
func TestMetricsAreExpvarVars(t *testing.T) {
	var (
		_ expvar.Var = (*Counter)(nil)
		_ expvar.Var = (*Gauge)(nil)
		_ expvar.Var = (*Timer)(nil)
	)
}

// TestTimerHistogram checks count/total/min/max and bucket placement.
func TestTimerHistogram(t *testing.T) {
	var tm Timer
	tm.Observe(500 * time.Nanosecond) // bucket 0 (≤1µs)
	tm.Observe(5 * time.Microsecond)  // bucket 1 (≤10µs)
	tm.Observe(2 * time.Second)       // overflow bucket
	s := tm.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Min != 500*time.Nanosecond || s.Max != 2*time.Second {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	want := s.Min + 5*time.Microsecond + 2*time.Second
	if s.Total != want {
		t.Fatalf("total = %v, want %v", s.Total, want)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[len(s.Buckets)-1] != 1 {
		t.Fatalf("bucket placement wrong: %v", s.Buckets)
	}
	if s.Mean() != want/3 {
		t.Fatalf("mean = %v, want %v", s.Mean(), want/3)
	}
}

// TestRegistryHandlesAndText checks handle identity, the sorted text
// exposition, and snapshot maps.
func TestRegistryHandlesAndText(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter handle not stable")
	}
	if r.Timer("t") != r.Timer("t") {
		t.Fatal("Timer handle not stable")
	}
	r.Counter("b.count").Add(7)
	r.Gauge("a.gauge").Set(1.5)
	r.Timer("c.timer").Observe(time.Millisecond)
	text := r.Text()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 5 { // a, b.count, a.gauge, c.timer, t
		t.Fatalf("exposition has %d lines:\n%s", len(lines), text)
	}
	if !sortedLines(lines) {
		t.Fatalf("exposition not sorted:\n%s", text)
	}
	if !strings.Contains(text, "b.count: 7") {
		t.Fatalf("missing counter line:\n%s", text)
	}
	if !strings.Contains(text, `"count":1`) {
		t.Fatalf("missing timer histogram:\n%s", text)
	}
	if got := r.Counters()["b.count"]; got != 7 {
		t.Fatalf("Counters()[b.count] = %d, want 7", got)
	}
	if got := r.Timers()["c.timer"].Count; got != 1 {
		t.Fatalf("Timers()[c.timer].Count = %d, want 1", got)
	}
}

func sortedLines(lines []string) bool {
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			return false
		}
	}
	return true
}

// TestRegistryMerge checks that Merge adds counters and folds timer
// histograms.
func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("n").Add(1)
	b.Counter("n").Add(2)
	b.Counter("only_b").Add(5)
	a.Timer("p").Observe(time.Microsecond)
	b.Timer("p").Observe(time.Millisecond)
	b.Gauge("g").Set(3)
	a.Merge(b)
	if got := a.Counter("n").Value(); got != 3 {
		t.Fatalf("merged counter = %d, want 3", got)
	}
	if got := a.Counter("only_b").Value(); got != 5 {
		t.Fatalf("merged new counter = %d, want 5", got)
	}
	s := a.Timer("p").Snapshot()
	if s.Count != 2 || s.Min != time.Microsecond || s.Max != time.Millisecond {
		t.Fatalf("merged timer = %+v", s)
	}
	if a.Gauge("g").Value() != 3 {
		t.Fatalf("merged gauge = %v, want 3", a.Gauge("g").Value())
	}
	a.Merge(nil) // must not panic
}

// TestRegistryConcurrent exercises handle creation and updates from many
// goroutines (run under -race in CI).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Timer("phase").Observe(time.Nanosecond)
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Fatalf("shared counter = %d, want 1600", got)
	}
	if got := r.Timer("phase").Snapshot().Count; got != 1600 {
		t.Fatalf("phase count = %d, want 1600", got)
	}
}

// TestContextPlumbing checks the trace/registry context carriers.
func TestContextPlumbing(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom on bare context should be nil")
	}
	if RegistryFrom(context.Background()) != nil {
		t.Fatal("RegistryFrom on bare context should be nil")
	}
	var got []Event
	ctx := ContextWithTrace(context.Background(), func(e Event) { got = append(got, e) })
	reg := NewRegistry()
	ctx = ContextWithRegistry(ctx, reg)
	if fn := TraceFrom(ctx); fn == nil {
		t.Fatal("trace not carried")
	} else {
		fn(Event{Kind: EvLPSolve, N: 2})
	}
	if len(got) != 1 || got[0].Kind != EvLPSolve || got[0].N != 2 {
		t.Fatalf("trace delivered %v", got)
	}
	if RegistryFrom(ctx) != reg {
		t.Fatal("registry not carried")
	}
	// Nil attachments leave the context untouched.
	if ContextWithTrace(ctx, nil) != ctx || ContextWithRegistry(ctx, nil) != ctx {
		t.Fatal("nil attachment should be a no-op")
	}
}

// TestEventKindStrings pins the event vocabulary.
func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvPlaneBuilt:       "plane-built",
		EvPlanePruned:      "plane-pruned",
		EvNodeSplit:        "node-split",
		EvLPSolve:          "lp-solve",
		EvSampleClassified: "sample-classified",
		EvPieceEmitted:     "piece-emitted",
	}
	if len(want) != NumEventKinds {
		t.Fatalf("NumEventKinds = %d, want %d", NumEventKinds, len(want))
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("kind %d String() = %q, want %q", k, k.String(), s)
		}
	}
	if EventKind(200).String() != "unknown-event" {
		t.Fatal("unknown kind should render as unknown-event")
	}
}
