package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use. Counter implements expvar.Var.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// String renders the counter as its decimal value (expvar.Var contract).
func (c *Counter) String() string { return fmt.Sprintf("%d", c.v.Load()) }

// Gauge is an atomic instantaneous value. The zero value is ready to use.
// Gauge implements expvar.Var.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// String renders the gauge as its numeric value (expvar.Var contract).
func (g *Gauge) String() string { return fmt.Sprintf("%g", g.Value()) }

// timerBuckets are the upper bounds of the histogram buckets, in
// nanoseconds: 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, and +Inf.
var timerBuckets = [...]int64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000,
}

var timerBucketLabels = [...]string{
	"le_1us", "le_10us", "le_100us", "le_1ms", "le_10ms", "le_100ms", "le_1s", "inf",
}

// Timer is a histogram-style phase timer: it records how many times a
// phase ran, the total, min and max durations, and a log-scale latency
// histogram. All methods are safe for concurrent use; the zero value is
// ready. Timer implements expvar.Var.
type Timer struct {
	mu      sync.Mutex
	count   int64
	totalNs int64
	minNs   int64
	maxNs   int64
	buckets [len(timerBuckets) + 1]int64
}

// Observe records one phase duration.
func (t *Timer) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := len(timerBuckets)
	for i, ub := range timerBuckets {
		if ns <= ub {
			b = i
			break
		}
	}
	t.mu.Lock()
	if t.count == 0 || ns < t.minNs {
		t.minNs = ns
	}
	if ns > t.maxNs {
		t.maxNs = ns
	}
	t.count++
	t.totalNs += ns
	t.buckets[b]++
	t.mu.Unlock()
}

// Time runs fn and records its duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// Snapshot returns a consistent copy of the timer state.
func (t *Timer) Snapshot() TimerSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimerSnapshot{
		Count: t.count,
		Total: time.Duration(t.totalNs),
		Min:   time.Duration(t.minNs),
		Max:   time.Duration(t.maxNs),
	}
	copy(s.Buckets[:], t.buckets[:])
	return s
}

// merge folds another timer's snapshot into t.
func (t *Timer) merge(s TimerSnapshot) {
	if s.Count == 0 {
		return
	}
	t.mu.Lock()
	if t.count == 0 || s.Min.Nanoseconds() < t.minNs {
		t.minNs = s.Min.Nanoseconds()
	}
	if s.Max.Nanoseconds() > t.maxNs {
		t.maxNs = s.Max.Nanoseconds()
	}
	t.count += s.Count
	t.totalNs += s.Total.Nanoseconds()
	for i := range t.buckets {
		t.buckets[i] += s.Buckets[i]
	}
	t.mu.Unlock()
}

// String renders the timer as a JSON object (expvar.Var contract).
func (t *Timer) String() string { return t.Snapshot().json() }

// TimerSnapshot is a point-in-time copy of a Timer.
type TimerSnapshot struct {
	Count   int64
	Total   time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [len(timerBuckets) + 1]int64
}

// Mean returns the average observed duration, or zero when nothing was
// recorded.
func (s TimerSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

func (s TimerSnapshot) json() string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"total_ns":%d,"min_ns":%d,"max_ns":%d,"buckets":{`,
		s.Count, s.Total.Nanoseconds(), s.Min.Nanoseconds(), s.Max.Nanoseconds())
	for i, label := range timerBucketLabels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `"%s":%d`, label, s.Buckets[i])
	}
	b.WriteString("}}")
	return b.String()
}

// Registry is a named collection of counters, gauges and timers. Metric
// handles are created on first use and live for the registry's lifetime;
// lookups are lock-free after creation only in the sense that the returned
// handle can be cached by the caller — Registry methods themselves take a
// short registry lock, so hot paths should hold on to the handle. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Timer returns the named phase timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.timers[name]; ok {
		return t
	}
	t = &Timer{}
	r.timers[name] = t
	return t
}

// Timers returns a snapshot of every registered phase timer by name.
func (r *Registry) Timers() map[string]TimerSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]TimerSnapshot, len(r.timers))
	for name, t := range r.timers {
		out[name] = t.Snapshot()
	}
	return out
}

// Counters returns the current value of every registered counter by name.
func (r *Registry) Counters() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Merge folds every metric of other into r: counters add, gauges take
// other's latest value, timers merge their histograms.
func (r *Registry) Merge(other *Registry) {
	if other == nil {
		return
	}
	other.mu.RLock()
	counters := make(map[string]int64, len(other.counters))
	for name, c := range other.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(other.gauges))
	for name, g := range other.gauges {
		gauges[name] = g.Value()
	}
	timers := make(map[string]TimerSnapshot, len(other.timers))
	for name, t := range other.timers {
		timers[name] = t.Snapshot()
	}
	other.mu.RUnlock()
	for name, v := range counters {
		r.Counter(name).Add(v)
	}
	for name, v := range gauges {
		r.Gauge(name).Set(v)
	}
	for name, s := range timers {
		r.Timer(name).merge(s)
	}
}

// WriteText writes every metric as one "name: value" line in sorted name
// order, with values in their expvar (String) rendering — counters and
// gauges as numbers, timers as JSON histograms.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.timers))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s: %s", name, c.String()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s: %s", name, g.String()))
	}
	for name, t := range r.timers {
		lines = append(lines, fmt.Sprintf("%s: %s", name, t.String()))
	}
	r.mu.RUnlock()
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Text renders the registry with WriteText into a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}
