// Package obs is the observability substrate of the solver stack: a
// zero-dependency metrics registry (atomic counters, gauges and
// histogram-style phase timers with an expvar-compatible text exposition)
// plus a per-solve trace hook that streams the work events the paper's
// evaluation counts — planes, tree nodes, LP solves, samples and answer
// pieces (§6).
//
// Both facilities ride on the context: callers attach a TraceFunc or a
// *Registry with ContextWithTrace / ContextWithRegistry, and the solvers
// pick them up once per solve when they build their CtxChecker. With
// neither attached, the hot path pays a single nil-check per potential
// event, so tracing off costs nothing measurable.
package obs

import "context"

// EventKind classifies one unit of solver work. Each kind corresponds to a
// core.Stats counter; summing Event.N over a solve reproduces that counter
// exactly (see docs/ALGORITHMS.md for the mapping to the paper's work
// measures).
type EventKind uint8

const (
	// EvPlaneBuilt: crossing hyper-planes h_{q,p} constructed during
	// preprocessing (Stats.PlanesBuilt).
	EvPlaneBuilt EventKind = iota
	// EvPlanePruned: crossing planes discarded before insertion by the
	// Lemma 5.2 reduction or the §4 window restriction
	// (Stats.PlanesBuilt − Stats.PlanesInserted).
	EvPlanePruned
	// EvNodeSplit: partition-tree node splits (Stats.Splits; E-PT and
	// LP-CTA).
	EvNodeSplit
	// EvLPSolve: simplex LP solves (Stats.LPSolves; LP-CTA).
	EvLPSolve
	// EvSampleClassified: utility samples classified against the dataset
	// (Stats.Samples; A-PC).
	EvSampleClassified
	// EvPieceEmitted: convex pieces in the returned region (Stats.Pieces).
	EvPieceEmitted

	numEventKinds = iota
)

// NumEventKinds is the number of distinct event kinds, for callers that
// aggregate per kind into a fixed-size array.
const NumEventKinds = int(numEventKinds)

func (k EventKind) String() string {
	switch k {
	case EvPlaneBuilt:
		return "plane-built"
	case EvPlanePruned:
		return "plane-pruned"
	case EvNodeSplit:
		return "node-split"
	case EvLPSolve:
		return "lp-solve"
	case EvSampleClassified:
		return "sample-classified"
	case EvPieceEmitted:
		return "piece-emitted"
	default:
		return "unknown-event"
	}
}

// Event is one traced unit of solver work. N is the number of units the
// event accounts for: solvers batch cheap per-item work (e.g. one
// EvPlaneBuilt with N = number of planes) and stream expensive items
// individually (one EvLPSolve with N = 1 per simplex run).
type Event struct {
	Kind EventKind
	N    int
}

// TraceFunc receives trace events during a solve. A batch or a parallel
// solver phase may invoke it from several goroutines; implementations must
// be safe for concurrent use (the public rrq.WithTrace option wraps the
// user's function with a mutex, so callbacks installed through it never
// run concurrently).
type TraceFunc func(Event)

// traceKey and registryKey are the private context keys for the two
// observability carriers.
type (
	traceKey    struct{}
	registryKey struct{}
)

// ContextWithTrace returns a context carrying fn as the solve trace hook.
// A nil fn returns ctx unchanged.
func ContextWithTrace(ctx context.Context, fn TraceFunc) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, fn)
}

// TraceFrom extracts the trace hook from ctx, or nil.
func TraceFrom(ctx context.Context) TraceFunc {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(traceKey{}).(TraceFunc)
	return fn
}

// ContextWithRegistry returns a context carrying reg as the metrics
// registry. A nil reg returns ctx unchanged.
func ContextWithRegistry(ctx context.Context, reg *Registry) context.Context {
	if reg == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, reg)
}

// RegistryFrom extracts the metrics registry from ctx, or nil.
func RegistryFrom(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	reg, _ := ctx.Value(registryKey{}).(*Registry)
	return reg
}
