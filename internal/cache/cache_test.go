package cache

import (
	"testing"

	"rrq/internal/core"
	"rrq/internal/vec"
)

func q2(x, y float64, k int, eps float64) core.Query {
	return core.Query{Q: vec.Vec{x, y}, K: k, Eps: eps}
}

func region(lo, hi float64) *core.Region {
	return core.NewIntervalRegion([][2]float64{{lo, hi}})
}

func TestExactHitAndMiss(t *testing.T) {
	c := New(8)
	q := q2(0.4, 0.7, 2, 0.1)
	if _, ok := c.Get(1, "E-PT", q); ok {
		t.Fatal("hit on empty cache")
	}
	r := region(0.2, 0.6)
	c.Put(1, "E-PT", q, r)
	got, ok := c.Get(1, "E-PT", q)
	if !ok || got != r {
		t.Fatalf("expected stored region back, got %v ok=%v", got, ok)
	}
	// Different serving path, version, or query → miss.
	if _, ok := c.Get(1, "Sweeping", q); ok {
		t.Fatal("hit across serving paths")
	}
	if _, ok := c.Get(2, "E-PT", q); ok {
		t.Fatal("hit across versions")
	}
	if _, ok := c.Get(1, "E-PT", q2(0.4, 0.7, 3, 0.1)); ok {
		t.Fatal("hit across k")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 4 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 4 misses / 1 entry", s)
	}
}

func TestBoundSelection(t *testing.T) {
	c := New(8)
	// Three neighbors on the same point: a loose inner, a tight inner and
	// an outer.
	looseIn, tightIn, out := region(0.4, 0.5), region(0.3, 0.6), region(0.1, 0.9)
	c.Put(1, "E-PT", q2(0.4, 0.7, 1, 0.0), looseIn) // reverse top-k seed
	c.Put(1, "E-PT", q2(0.4, 0.7, 2, 0.05), tightIn)
	c.Put(1, "E-PT", q2(0.4, 0.7, 4, 0.3), out)

	ans := c.Bound(1, q2(0.4, 0.7, 2, 0.1))
	if ans == nil || ans.Kind != Inner || ans.Region != tightIn {
		t.Fatalf("want tight inner bound, got %+v", ans)
	}
	if ans.From.K != 2 || ans.From.Eps != 0.05 {
		t.Fatalf("wrong source query: %+v", ans.From)
	}

	// Only the outer neighbor applies to (k=3, ε=0.2)... no: inner needs
	// k'≤3, ε'≤0.2 — both inner entries apply; tightest is (2, 0.05).
	ans = c.Bound(1, q2(0.4, 0.7, 3, 0.2))
	if ans == nil || ans.Kind != Inner || ans.Region != tightIn {
		t.Fatalf("want inner (2,0.05), got %+v", ans)
	}

	// Nothing below (k=1, ε<0) is cached except (1,0): exact k,ε match
	// returns Exact regardless of path.
	ans = c.Bound(1, q2(0.4, 0.7, 1, 0.0))
	if ans == nil || ans.Kind != Exact || ans.Region != looseIn {
		t.Fatalf("want exact, got %+v", ans)
	}

	// A query below every cached (k', ε') gets only the outer side.
	c2 := New(8)
	c2.Put(1, "E-PT", q2(0.4, 0.7, 4, 0.3), out)
	ans = c2.Bound(1, q2(0.4, 0.7, 2, 0.1))
	if ans == nil || ans.Kind != Outer || ans.Region != out {
		t.Fatalf("want outer bound, got %+v", ans)
	}

	// Different query point or version → no bound.
	if ans := c.Bound(1, q2(0.5, 0.7, 2, 0.1)); ans != nil {
		t.Fatalf("bound across query points: %+v", ans)
	}
	if ans := c.Bound(2, q2(0.4, 0.7, 2, 0.1)); ans != nil {
		t.Fatalf("bound across versions: %+v", ans)
	}
}

func TestBoundPrefersInnerOverOuter(t *testing.T) {
	c := New(8)
	in, out := region(0.3, 0.6), region(0.1, 0.9)
	c.Put(1, "E-PT", q2(0.4, 0.7, 1, 0.0), in)
	c.Put(1, "E-PT", q2(0.4, 0.7, 5, 0.5), out)
	ans := c.Bound(1, q2(0.4, 0.7, 2, 0.1))
	if ans == nil || ans.Kind != Inner || ans.Region != in {
		t.Fatalf("want inner preferred, got %+v", ans)
	}
}

func TestIncomparableNeighborServesNothing(t *testing.T) {
	c := New(8)
	// (k'=1, ε'=0.3) vs query (k=2, ε=0.1): k' ≤ k but ε' > ε — neither
	// inner nor outer.
	c.Put(1, "E-PT", q2(0.4, 0.7, 1, 0.3), region(0.2, 0.8))
	if ans := c.Bound(1, q2(0.4, 0.7, 2, 0.1)); ans != nil {
		t.Fatalf("incomparable neighbor served as %v bound", ans.Kind)
	}
}

// Regression for the lexicographic tightest-neighbor pick: (k=3, ε=0.1)
// and (k=2, ε=0.2) are incomparable under the (k, ε) partial order, so
// neither region is a-priori larger — picking by (k, then ε) preferred
// (3, 0.1) even when its cached region was strictly smaller. Dominance
// cannot decide, so the measure proxy must: the larger stored region is
// the tighter inner bound.
func TestBoundIncomparableInnerPicksLargerRegion(t *testing.T) {
	c := New(8)
	small, large := region(0.40, 0.45), region(0.1, 0.9)
	c.Put(1, "E-PT", q2(0.4, 0.7, 3, 0.1), small) // lexicographic winner
	c.Put(1, "E-PT", q2(0.4, 0.7, 2, 0.2), large)
	ans := c.Bound(1, q2(0.4, 0.7, 3, 0.2))
	if ans == nil || ans.Kind != Inner {
		t.Fatalf("want inner bound, got %+v", ans)
	}
	if ans.Region != large {
		t.Fatalf("picked the lexicographic neighbor (%+v) over the strictly larger region", ans.From)
	}
}

// The outer direction mirrors it: among incomparable outer neighbors the
// smaller stored region is the tighter superset, whatever its (k', ε').
func TestBoundIncomparableOuterPicksSmallerRegion(t *testing.T) {
	c := New(8)
	big, tight := region(0.05, 0.95), region(0.2, 0.7)
	c.Put(1, "E-PT", q2(0.4, 0.7, 3, 0.4), big) // lexicographic winner (smaller k)
	c.Put(1, "E-PT", q2(0.4, 0.7, 4, 0.3), tight)
	ans := c.Bound(1, q2(0.4, 0.7, 2, 0.2))
	if ans == nil || ans.Kind != Outer {
		t.Fatalf("want outer bound, got %+v", ans)
	}
	if ans.Region != tight {
		t.Fatalf("picked the lexicographic neighbor (%+v) over the strictly smaller region", ans.From)
	}
}

// When candidates are comparable, dominance decides without consulting the
// proxy: the dominating (k', ε') owns the superset region by the
// monotonicity invariant, and the cache trusts the invariant over 256
// Monte-Carlo samples.
func TestBoundDominanceDecidesComparablePairs(t *testing.T) {
	c := New(8)
	dom, sub := region(0.35, 0.5), region(0.1, 0.9)
	c.Put(1, "E-PT", q2(0.4, 0.7, 3, 0.2), dom) // dominates (2, 0.1)
	c.Put(1, "E-PT", q2(0.4, 0.7, 2, 0.1), sub)
	ans := c.Bound(1, q2(0.4, 0.7, 4, 0.3))
	if ans == nil || ans.Kind != Inner || ans.Region != dom {
		t.Fatalf("dominance must pick (3, 0.2) regardless of the proxy, got %+v", ans)
	}
}

// Incomparable-neighbor matrix in both bound directions, including the
// k-equal and ε-equal edges of the partial order (where dominance applies
// and the historical lexicographic pick happened to be right).
func TestBoundNeighborMatrix(t *testing.T) {
	mk := func() *Cache {
		c := New(16)
		c.Put(1, "E-PT", q2(0.4, 0.7, 1, 0.05), region(0.45, 0.50)) // strict inner
		c.Put(1, "E-PT", q2(0.4, 0.7, 2, 0.05), region(0.40, 0.55)) // ε-equal edge
		c.Put(1, "E-PT", q2(0.4, 0.7, 2, 0.10), region(0.35, 0.60)) // k-equal edge
		c.Put(1, "E-PT", q2(0.4, 0.7, 1, 0.15), region(0.20, 0.80)) // incomparable to (2, 0.10), larger
		c.Put(1, "E-PT", q2(0.4, 0.7, 5, 0.30), region(0.10, 0.90)) // outer
		c.Put(1, "E-PT", q2(0.4, 0.7, 4, 0.40), region(0.15, 0.85)) // outer, incomparable, smaller
		return c
	}
	// Inner side of (2, 0.2): candidates are all four low entries;
	// dominance narrows the comparable chains to (2, 0.10), and the
	// incomparable (1, 0.15) wins on measure.
	ans := mk().Bound(1, q2(0.4, 0.7, 2, 0.2))
	if ans == nil || ans.Kind != Inner || ans.From.K != 1 || ans.From.Eps != 0.15 {
		t.Fatalf("inner matrix pick = %+v, want (1, 0.15)", ans)
	}
	// k-equal edge: (2, 0.05) vs (2, 0.10) — dominance on ε.
	c := New(16)
	c.Put(1, "E-PT", q2(0.4, 0.7, 2, 0.05), region(0.40, 0.55))
	c.Put(1, "E-PT", q2(0.4, 0.7, 2, 0.10), region(0.35, 0.60))
	if ans := c.Bound(1, q2(0.4, 0.7, 2, 0.2)); ans == nil || ans.From.Eps != 0.10 {
		t.Fatalf("k-equal edge pick = %+v, want (2, 0.10)", ans)
	}
	// ε-equal edge: (1, 0.05) vs (2, 0.05) — dominance on k.
	c = New(16)
	c.Put(1, "E-PT", q2(0.4, 0.7, 1, 0.05), region(0.45, 0.50))
	c.Put(1, "E-PT", q2(0.4, 0.7, 2, 0.05), region(0.40, 0.55))
	if ans := c.Bound(1, q2(0.4, 0.7, 3, 0.2)); ans == nil || ans.From.K != 2 {
		t.Fatalf("ε-equal edge pick = %+v, want (2, 0.05)", ans)
	}
	// Outer side of (3, 0.25): (5, 0.30) vs (4, 0.40) are incomparable; the
	// smaller region (4, 0.40) is the tighter superset.
	ans = mk().Bound(1, q2(0.4, 0.7, 6, 0.45))
	if ans == nil || ans.Kind != Inner {
		t.Fatalf("everything below (6, 0.45) should serve inner, got %+v", ans)
	}
	c = New(16)
	c.Put(1, "E-PT", q2(0.4, 0.7, 5, 0.30), region(0.10, 0.90))
	c.Put(1, "E-PT", q2(0.4, 0.7, 4, 0.40), region(0.15, 0.85))
	if ans := c.Bound(1, q2(0.4, 0.7, 3, 0.25)); ans == nil || ans.Kind != Outer || ans.From.K != 4 {
		t.Fatalf("outer matrix pick = %+v, want (4, 0.40)", ans)
	}
}

// Inexact (anytime) entries are sound inner bounds only: never an exact
// hit, never an Exact-kind bound answer, never an outer bound.
func TestPutInnerServesOnlyInnerBounds(t *testing.T) {
	c := New(8)
	q := q2(0.4, 0.7, 3, 0.2)
	r := region(0.3, 0.5)
	c.PutInner(1, "anytime", q, r)
	if _, ok := c.Get(1, "anytime", q); ok {
		t.Fatal("inexact entry answered an exact Get")
	}
	// Same (k, ε): the region is a subset, not the answer — Inner, not Exact.
	ans := c.Bound(1, q)
	if ans == nil || ans.Kind != Inner || ans.Region != r {
		t.Fatalf("want inner bound from the inexact entry, got %+v", ans)
	}
	// A stricter query would need an outer bound; the inexact entry must
	// not pretend to be one.
	if ans := c.Bound(1, q2(0.4, 0.7, 2, 0.1)); ans != nil {
		t.Fatalf("inexact entry served as an outer bound: %+v", ans)
	}
	// Re-storing a larger anytime region ratchets the cached bound upward.
	r2 := region(0.2, 0.7)
	c.PutInner(1, "anytime", q, r2)
	if c.Len() != 1 {
		t.Fatalf("PutInner on the same key grew the cache: len=%d", c.Len())
	}
	if ans := c.Bound(1, q); ans == nil || ans.Region != r2 {
		t.Fatalf("re-PutInner did not replace the stored region: %+v", ans)
	}
}

// An exact entry and an inexact entry at incomparable (k, ε): the measure
// proxy compares their stored regions directly, because the inexact
// entry's (k, ε) says nothing about its region's size.
func TestBoundMixedExactInexactComparesByMeasure(t *testing.T) {
	c := New(8)
	big := region(0.1, 0.9)
	c.Put(1, "E-PT", q2(0.4, 0.7, 3, 0.1), region(0.4, 0.45))
	c.PutInner(1, "anytime", q2(0.4, 0.7, 2, 0.2), big)
	ans := c.Bound(1, q2(0.4, 0.7, 3, 0.2))
	if ans == nil || ans.Kind != Inner || ans.Region != big {
		t.Fatalf("want the larger inexact region, got %+v", ans)
	}
	// Comparable case: the exact (3, 0.1) dominates the inexact (2, 0.05)'s
	// key, but the inexact region is larger — measure must still decide,
	// since dominance over an inexact entry is meaningless.
	c = New(8)
	c.Put(1, "E-PT", q2(0.4, 0.7, 3, 0.1), region(0.4, 0.45))
	c.PutInner(1, "anytime", q2(0.4, 0.7, 2, 0.05), big)
	ans = c.Bound(1, q2(0.4, 0.7, 3, 0.2))
	if ans == nil || ans.Kind != Inner || ans.Region != big {
		t.Fatalf("want the larger inexact region under comparability, got %+v", ans)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	qa, qb, qc := q2(0.1, 0.1, 1, 0), q2(0.2, 0.2, 1, 0), q2(0.3, 0.3, 1, 0)
	c.Put(1, "E-PT", qa, region(0, 1))
	c.Put(1, "E-PT", qb, region(0, 1))
	c.Get(1, "E-PT", qa) // refresh a: b is now least recent
	c.Put(1, "E-PT", qc, region(0, 1))
	if _, ok := c.Get(1, "E-PT", qa); !ok {
		t.Fatal("refreshed entry evicted")
	}
	if _, ok := c.Get(1, "E-PT", qb); ok {
		t.Fatal("least-recent entry survived eviction")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Eviction must also clear the bound bucket.
	if ans := c.Bound(1, q2(0.2, 0.2, 2, 0.1)); ans != nil {
		t.Fatalf("evicted entry still served a bound: %+v", ans)
	}
}

func TestPruneDropsDeadGenerations(t *testing.T) {
	c := New(8)
	c.Put(1, "E-PT", q2(0.1, 0.1, 1, 0), region(0, 1))
	c.Put(1, "E-PT", q2(0.2, 0.2, 1, 0), region(0, 1))
	c.Put(2, "E-PT", q2(0.1, 0.1, 1, 0), region(0, 1))
	c.Prune(2)
	if c.Len() != 1 {
		t.Fatalf("len after prune = %d, want 1", c.Len())
	}
	if _, ok := c.Get(2, "E-PT", q2(0.1, 0.1, 1, 0)); !ok {
		t.Fatal("current-version entry pruned")
	}
	if _, ok := c.Get(1, "E-PT", q2(0.1, 0.1, 1, 0)); ok {
		t.Fatal("dead-version entry survived prune")
	}
}

func TestPutIsIdempotentPerKey(t *testing.T) {
	c := New(8)
	q := q2(0.4, 0.7, 2, 0.1)
	r1, r2 := region(0.2, 0.6), region(0.2, 0.6)
	c.Put(1, "E-PT", q, r1)
	c.Put(1, "E-PT", q, r2)
	if c.Len() != 1 {
		t.Fatalf("duplicate Put grew the cache: len=%d", c.Len())
	}
	got, _ := c.Get(1, "E-PT", q)
	if got != r2 {
		t.Fatal("re-Put did not replace the stored region")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				q := q2(float64(i%10)/10, 0.5, 1+i%4, float64(g%3)/10)
				c.Put(uint64(1+i%2), "E-PT", q, region(0, 1))
				c.Get(uint64(1+i%2), "E-PT", q)
				c.Bound(1, q)
				if i%50 == 0 {
					c.Prune(1)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	c.Stats()
}
