package cache

import (
	"testing"

	"rrq/internal/core"
	"rrq/internal/vec"
)

func q2(x, y float64, k int, eps float64) core.Query {
	return core.Query{Q: vec.Vec{x, y}, K: k, Eps: eps}
}

func region(lo, hi float64) *core.Region {
	return core.NewIntervalRegion([][2]float64{{lo, hi}})
}

func TestExactHitAndMiss(t *testing.T) {
	c := New(8)
	q := q2(0.4, 0.7, 2, 0.1)
	if _, ok := c.Get(1, "E-PT", q); ok {
		t.Fatal("hit on empty cache")
	}
	r := region(0.2, 0.6)
	c.Put(1, "E-PT", q, r)
	got, ok := c.Get(1, "E-PT", q)
	if !ok || got != r {
		t.Fatalf("expected stored region back, got %v ok=%v", got, ok)
	}
	// Different serving path, version, or query → miss.
	if _, ok := c.Get(1, "Sweeping", q); ok {
		t.Fatal("hit across serving paths")
	}
	if _, ok := c.Get(2, "E-PT", q); ok {
		t.Fatal("hit across versions")
	}
	if _, ok := c.Get(1, "E-PT", q2(0.4, 0.7, 3, 0.1)); ok {
		t.Fatal("hit across k")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 4 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 4 misses / 1 entry", s)
	}
}

func TestBoundSelection(t *testing.T) {
	c := New(8)
	// Three neighbors on the same point: a loose inner, a tight inner and
	// an outer.
	looseIn, tightIn, out := region(0.4, 0.5), region(0.3, 0.6), region(0.1, 0.9)
	c.Put(1, "E-PT", q2(0.4, 0.7, 1, 0.0), looseIn) // reverse top-k seed
	c.Put(1, "E-PT", q2(0.4, 0.7, 2, 0.05), tightIn)
	c.Put(1, "E-PT", q2(0.4, 0.7, 4, 0.3), out)

	ans := c.Bound(1, q2(0.4, 0.7, 2, 0.1))
	if ans == nil || ans.Kind != Inner || ans.Region != tightIn {
		t.Fatalf("want tight inner bound, got %+v", ans)
	}
	if ans.From.K != 2 || ans.From.Eps != 0.05 {
		t.Fatalf("wrong source query: %+v", ans.From)
	}

	// Only the outer neighbor applies to (k=3, ε=0.2)... no: inner needs
	// k'≤3, ε'≤0.2 — both inner entries apply; tightest is (2, 0.05).
	ans = c.Bound(1, q2(0.4, 0.7, 3, 0.2))
	if ans == nil || ans.Kind != Inner || ans.Region != tightIn {
		t.Fatalf("want inner (2,0.05), got %+v", ans)
	}

	// Nothing below (k=1, ε<0) is cached except (1,0): exact k,ε match
	// returns Exact regardless of path.
	ans = c.Bound(1, q2(0.4, 0.7, 1, 0.0))
	if ans == nil || ans.Kind != Exact || ans.Region != looseIn {
		t.Fatalf("want exact, got %+v", ans)
	}

	// A query below every cached (k', ε') gets only the outer side.
	c2 := New(8)
	c2.Put(1, "E-PT", q2(0.4, 0.7, 4, 0.3), out)
	ans = c2.Bound(1, q2(0.4, 0.7, 2, 0.1))
	if ans == nil || ans.Kind != Outer || ans.Region != out {
		t.Fatalf("want outer bound, got %+v", ans)
	}

	// Different query point or version → no bound.
	if ans := c.Bound(1, q2(0.5, 0.7, 2, 0.1)); ans != nil {
		t.Fatalf("bound across query points: %+v", ans)
	}
	if ans := c.Bound(2, q2(0.4, 0.7, 2, 0.1)); ans != nil {
		t.Fatalf("bound across versions: %+v", ans)
	}
}

func TestBoundPrefersInnerOverOuter(t *testing.T) {
	c := New(8)
	in, out := region(0.3, 0.6), region(0.1, 0.9)
	c.Put(1, "E-PT", q2(0.4, 0.7, 1, 0.0), in)
	c.Put(1, "E-PT", q2(0.4, 0.7, 5, 0.5), out)
	ans := c.Bound(1, q2(0.4, 0.7, 2, 0.1))
	if ans == nil || ans.Kind != Inner || ans.Region != in {
		t.Fatalf("want inner preferred, got %+v", ans)
	}
}

func TestIncomparableNeighborServesNothing(t *testing.T) {
	c := New(8)
	// (k'=1, ε'=0.3) vs query (k=2, ε=0.1): k' ≤ k but ε' > ε — neither
	// inner nor outer.
	c.Put(1, "E-PT", q2(0.4, 0.7, 1, 0.3), region(0.2, 0.8))
	if ans := c.Bound(1, q2(0.4, 0.7, 2, 0.1)); ans != nil {
		t.Fatalf("incomparable neighbor served as %v bound", ans.Kind)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	qa, qb, qc := q2(0.1, 0.1, 1, 0), q2(0.2, 0.2, 1, 0), q2(0.3, 0.3, 1, 0)
	c.Put(1, "E-PT", qa, region(0, 1))
	c.Put(1, "E-PT", qb, region(0, 1))
	c.Get(1, "E-PT", qa) // refresh a: b is now least recent
	c.Put(1, "E-PT", qc, region(0, 1))
	if _, ok := c.Get(1, "E-PT", qa); !ok {
		t.Fatal("refreshed entry evicted")
	}
	if _, ok := c.Get(1, "E-PT", qb); ok {
		t.Fatal("least-recent entry survived eviction")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Eviction must also clear the bound bucket.
	if ans := c.Bound(1, q2(0.2, 0.2, 2, 0.1)); ans != nil {
		t.Fatalf("evicted entry still served a bound: %+v", ans)
	}
}

func TestPruneDropsDeadGenerations(t *testing.T) {
	c := New(8)
	c.Put(1, "E-PT", q2(0.1, 0.1, 1, 0), region(0, 1))
	c.Put(1, "E-PT", q2(0.2, 0.2, 1, 0), region(0, 1))
	c.Put(2, "E-PT", q2(0.1, 0.1, 1, 0), region(0, 1))
	c.Prune(2)
	if c.Len() != 1 {
		t.Fatalf("len after prune = %d, want 1", c.Len())
	}
	if _, ok := c.Get(2, "E-PT", q2(0.1, 0.1, 1, 0)); !ok {
		t.Fatal("current-version entry pruned")
	}
	if _, ok := c.Get(1, "E-PT", q2(0.1, 0.1, 1, 0)); ok {
		t.Fatal("dead-version entry survived prune")
	}
}

func TestPutIsIdempotentPerKey(t *testing.T) {
	c := New(8)
	q := q2(0.4, 0.7, 2, 0.1)
	r1, r2 := region(0.2, 0.6), region(0.2, 0.6)
	c.Put(1, "E-PT", q, r1)
	c.Put(1, "E-PT", q, r2)
	if c.Len() != 1 {
		t.Fatalf("duplicate Put grew the cache: len=%d", c.Len())
	}
	got, _ := c.Get(1, "E-PT", q)
	if got != r2 {
		t.Fatal("re-Put did not replace the stored region")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				q := q2(float64(i%10)/10, 0.5, 1+i%4, float64(g%3)/10)
				c.Put(uint64(1+i%2), "E-PT", q, region(0, 1))
				c.Get(uint64(1+i%2), "E-PT", q)
				c.Bound(1, q)
				if i%50 == 0 {
					c.Prune(1)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	c.Stats()
}
