// Package cache implements the monotonicity-aware result cache of the
// serving layer: solved regions keyed on (index version, serving path,
// canonical query key), with a neighbor lookup that exploits the two
// invariants the differential harness proves for every solver —
//
//	R(q, k, ε)  ⊆  R(q, k', ε')   whenever k ≤ k' and ε ≤ ε'
//
// (the qualified region grows as the rank requirement relaxes and as the
// regret threshold rises; see docs/SERVING.md for the Lemma 3.5 counting
// argument). A cached region for the same query point at (k', ε') with
// k' ≤ k and ε' ≤ ε is therefore a sound inner bound — every preference it
// contains genuinely qualifies — and one at k' ≥ k, ε' ≥ ε a sound outer
// bound — every qualifying preference is inside it. The special case
// ε' = 0 is the reverse top-k answer, which is how cached ReverseTopK
// results seed the refinement of any (k, ε > 0) query on the same point.
//
// Exact hits are byte-identical to a from-scratch solve because the cache
// only ever stores the artifact such a solve produced, keyed by serving
// path (solver name), and the key includes the epoch version — mutation
// invalidation is free: a new epoch simply never matches old keys, and
// Prune discards the dead generation eagerly.
//
// The cache is safe for concurrent use. Stored regions are immutable and
// shared; callers must not mutate them.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"rrq/internal/core"
)

// BoundKind classifies how a cache answer relates to the true region of the
// requested query.
type BoundKind int

const (
	// Exact: the cached region is the answer to the requested query itself.
	Exact BoundKind = iota
	// Inner: the cached region is a subset of the true region (served from
	// a neighbor with k' ≤ k and ε' ≤ ε).
	Inner
	// Outer: the cached region is a superset of the true region (served
	// from a neighbor with k' ≥ k and ε' ≥ ε).
	Outer
)

func (b BoundKind) String() string {
	switch b {
	case Exact:
		return "exact"
	case Inner:
		return "inner"
	case Outer:
		return "outer"
	default:
		return "BoundKind(?)"
	}
}

// Answer is one cache response: the stored region, how it bounds the
// requested query (Exact, Inner, Outer), and the query the region actually
// answers (equal to the request for Exact).
type Answer struct {
	Region *core.Region
	Kind   BoundKind
	From   core.Query
}

// entry is one stored result. Entries live in the LRU list and in two
// indexes: the exact map (full key) and the per-point bucket used for
// bound lookups.
type entry struct {
	fullKey  string // version | path | Query.Key
	bucket   string // version | Query.PointKey — bound neighbors share it
	q        core.Query
	region   *core.Region
	lruEntry *list.Element
	// inexact marks an entry whose region is a sound subset of — not equal
	// to — its key's true region (an anytime answer stored by PutInner).
	// Inexact entries only ever serve as Inner bounds: a subset of
	// R(k', ε') is still inside R(k, ε) for k' ≤ k, ε' ≤ ε, but it can
	// answer neither an Exact nor an Outer lookup.
	inexact bool
	// measure memoizes the seeded volume estimate used as the tightness
	// proxy when two bound candidates are incomparable under the (k, ε)
	// partial order. Guarded by Cache.mu.
	measure  float64
	measured bool
}

// proxySeed and proxySamples parameterize the tightness-proxy estimate.
// The seed is fixed so repeated lookups agree; 256 samples are enough to
// order regions whose volumes differ meaningfully, and ties fall back to
// keeping the incumbent.
const (
	proxySeed    = 0x5EED
	proxySamples = 256
)

// measureLocked returns the entry's memoized seeded volume. Callers hold
// c.mu.
func (e *entry) measureLocked() float64 {
	if !e.measured {
		e.measure = e.region.MeasureWithSeed(proxySeed, proxySamples)
		e.measured = true
	}
	return e.measure
}

// Cache is a bounded LRU result cache. The zero value is not usable; call
// New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List                     // front = most recent; values are *entry
	exact   map[string]*entry              // fullKey → entry
	buckets map[string]map[*entry]struct{} // bucket → member set

	hits, misses, boundHits atomic.Int64
}

// New returns an empty cache holding at most capacity entries (capacity
// ≤ 0 is treated as 1).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		lru:     list.New(),
		exact:   make(map[string]*entry),
		buckets: make(map[string]map[*entry]struct{}),
	}
}

// versionKey prefixes a key with the epoch version so entries of different
// epochs never collide.
func versionKey(version uint64, rest string) string {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(version >> (8 * i))
	}
	return string(b[:]) + rest
}

// fullKey is the exact-hit key: version, serving path and canonical query
// key. The path (solver name, or "tree" for rank-tree serving) is part of
// the key because different exact solvers return the same region as a set
// but under different convex decompositions — byte-identical serving
// requires matching the artifact's producer.
func fullKey(version uint64, path string, q core.Query) string {
	return versionKey(version, path+"\x00"+q.Key())
}

// Get returns the exact cached region for (version, path, q), or ok =
// false. A hit refreshes the entry's recency.
func (c *Cache) Get(version uint64, path string, q core.Query) (*core.Region, bool) {
	key := fullKey(version, path, q)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.exact[key]
	if !ok || e.inexact {
		// An inexact entry bounds its key's answer without equalling it, so
		// it can never satisfy the byte-identical exact-hit contract.
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(e.lruEntry)
	c.hits.Add(1)
	return e.region, true
}

// Put stores the region solved for (version, path, q). Only exact,
// deterministic artifacts belong here: the serving layer must not Put
// approximate (A-PC) or degraded results, since exact lookups and outer
// bounds assume the entry is the true region of its key — store those
// through PutInner, which marks the entry as a sound inner bound.
func (c *Cache) Put(version uint64, path string, q core.Query, region *core.Region) {
	c.put(version, path, q, region, false)
}

// PutInner stores a region that is a sound inner bound of (version, q)'s
// true answer — an anytime A-PC result, whose every partition is qualified
// (Lemma 5.7) but which may under-cover. The entry never answers an exact
// Get (the path keeps it out of the exact solvers' key space) and Bound
// serves it only in the Inner direction; a later anytime solve of the same
// point uses it as a warm start. Storing a better (larger) region under the
// same key replaces the old one, so repeated anytime solves ratchet the
// cached bound upward.
func (c *Cache) PutInner(version uint64, path string, q core.Query, region *core.Region) {
	c.put(version, path, q, region, true)
}

func (c *Cache) put(version uint64, path string, q core.Query, region *core.Region, inexact bool) {
	key := fullKey(version, path, q)
	bucket := versionKey(version, q.PointKey())
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.exact[key]; ok {
		e.region = region
		e.inexact = inexact
		e.measured = false
		c.lru.MoveToFront(e.lruEntry)
		return
	}
	e := &entry{fullKey: key, bucket: bucket, q: q, region: region, inexact: inexact}
	e.lruEntry = c.lru.PushFront(e)
	c.exact[key] = e
	members, ok := c.buckets[bucket]
	if !ok {
		members = make(map[*entry]struct{})
		c.buckets[bucket] = members
	}
	members[e] = struct{}{}
	for c.lru.Len() > c.cap {
		c.removeLocked(c.lru.Back().Value.(*entry))
	}
}

// Bound returns the best available monotonicity bound for (version, q)
// among entries cached for the same query point: inner from the tightest
// neighbor with k' ≤ k and ε' ≤ ε, outer from the tightest neighbor with
// k' ≥ k and ε' ≥ ε. An exact entry matching (k, ε) is returned as an Exact
// answer regardless of its serving path; inexact (anytime) entries serve in
// the Inner direction only. Nil when no applicable neighbor is cached; a
// served bound counts as a bound hit and refreshes the source entry's
// recency.
//
// "Tightest" is decided by dominance first: among inner candidates, one
// whose (k', ε') dominates another's componentwise can only have the larger
// region, so it wins without measuring anything. The (k, ε) partial order
// admits incomparable candidates, though — e.g. (k=3, ε=0.1) vs
// (k=2, ε=0.2) — for which no a-priori ordering exists (either region can
// be the larger); those ties break on a memoized seeded-measure proxy of
// the stored regions themselves. A lexicographic (k, then ε) pick — the
// historical behavior — could prefer a strictly looser bound.
func (c *Cache) Bound(version uint64, q core.Query) *Answer {
	bucket := versionKey(version, q.PointKey())
	c.mu.Lock()
	defer c.mu.Unlock()
	var inner, outer *entry
	for e := range c.buckets[bucket] {
		eq := e.q
		if !e.inexact && eq.K == q.K && eq.Eps == q.Eps {
			c.lru.MoveToFront(e.lruEntry)
			c.hits.Add(1)
			return &Answer{Region: e.region, Kind: Exact, From: eq}
		}
		if eq.K <= q.K && eq.Eps <= q.Eps {
			inner = c.betterInner(e, inner)
		}
		if !e.inexact && eq.K >= q.K && eq.Eps >= q.Eps {
			outer = c.betterOuter(e, outer)
		}
	}
	pick := inner
	kind := Inner
	if pick == nil {
		pick, kind = outer, Outer
	}
	if pick == nil {
		return nil
	}
	c.lru.MoveToFront(pick.lruEntry)
	c.boundHits.Add(1)
	return &Answer{Region: pick.region, Kind: kind, From: pick.q}
}

// betterInner picks the tighter of two inner-bound candidates (best may be
// nil): dominance on (k, ε) when both entries are exact — a dominating
// neighbor's region is a superset by the monotonicity invariant —
// otherwise the larger stored region by the seeded-measure proxy. Inexact
// entries always compare by measure: their region can be far smaller than
// their (k, ε) advertises, so dominance says nothing about them.
func (c *Cache) betterInner(e, best *entry) *entry {
	if best == nil {
		return e
	}
	if !e.inexact && !best.inexact {
		if e.q.K >= best.q.K && e.q.Eps >= best.q.Eps {
			return e
		}
		if best.q.K >= e.q.K && best.q.Eps >= e.q.Eps {
			return best
		}
	}
	if e.measureLocked() > best.measureLocked() {
		return e
	}
	return best
}

// betterOuter picks the tighter of two outer-bound candidates: dominance —
// the dominated (k, ε) has the smaller, hence tighter, superset region —
// then the smaller stored region by the proxy for incomparable pairs.
// Inexact entries never reach here (they cannot bound from outside).
func (c *Cache) betterOuter(e, best *entry) *entry {
	if best == nil {
		return e
	}
	if e.q.K <= best.q.K && e.q.Eps <= best.q.Eps {
		return e
	}
	if best.q.K <= e.q.K && best.q.Eps <= e.q.Eps {
		return best
	}
	if e.measureLocked() < best.measureLocked() {
		return e
	}
	return best
}

// Prune discards every entry not belonging to version — called after a
// mutation publishes a new epoch, so the dead generation does not occupy
// capacity until it ages out. Invalidation correctness does not depend on
// it (old versions can never match new keys); it only reclaims space.
func (c *Cache) Prune(version uint64) {
	prefix := versionKey(version, "")
	c.mu.Lock()
	defer c.mu.Unlock()
	for e := c.lru.Front(); e != nil; {
		next := e.Next()
		ent := e.Value.(*entry)
		if ent.fullKey[:8] != prefix {
			c.removeLocked(ent)
		}
		e = next
	}
}

// removeLocked unlinks one entry from the LRU list and both indexes.
func (c *Cache) removeLocked(e *entry) {
	c.lru.Remove(e.lruEntry)
	delete(c.exact, e.fullKey)
	if members, ok := c.buckets[e.bucket]; ok {
		delete(members, e)
		if len(members) == 0 {
			delete(c.buckets, e.bucket)
		}
	}
}

// Stats is a point-in-time view of the cache's traffic and occupancy.
type Stats struct {
	// Entries is the current number of cached results, Capacity the bound.
	Entries, Capacity int
	// Hits and Misses count exact lookups; BoundHits counts answers served
	// as monotonicity bounds.
	Hits, Misses, BoundHits int64
}

// Stats returns the cache's current statistics.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return Stats{
		Entries:   n,
		Capacity:  c.cap,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		BoundHits: c.boundHits.Load(),
	}
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
