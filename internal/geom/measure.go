package geom

import (
	"math"
	"math/rand"
	"sort"

	"rrq/internal/vec"
)

// MeasureCells estimates the fraction of the utility simplex covered by the
// union of cells, by Monte-Carlo sampling n uniform simplex points. Cells
// may overlap; overlapping area is counted once.
func MeasureCells(cells []*Cell, d int, rng *rand.Rand, n int) float64 {
	if len(cells) == 0 || n <= 0 {
		return 0
	}
	hit := 0
	for i := 0; i < n; i++ {
		u := vec.RandSimplex(rng, d)
		for _, c := range cells {
			if c.Contains(u) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(n)
}

// CellMeasure estimates the fraction of the simplex covered by one cell.
func CellMeasure(c *Cell, rng *rand.Rand, n int) float64 {
	return MeasureCells([]*Cell{c}, c.Dim(), rng, n)
}

// MeasureCellsSeeded is MeasureCells with a private generator derived from
// seed: two calls with equal arguments return the identical estimate, and
// the call leaves no trace on any shared randomness. Differential runs
// (internal/diffcheck) compare volumes across solvers and replays, which is
// only meaningful when the sampling noise is reproducible.
func MeasureCellsSeeded(cells []*Cell, d int, seed int64, n int) float64 {
	return MeasureCells(cells, d, rand.New(rand.NewSource(seed)), n)
}

// CellMeasureSeeded is CellMeasure with a private seed-derived generator.
func CellMeasureSeeded(c *Cell, seed int64, n int) float64 {
	return CellMeasure(c, rand.New(rand.NewSource(seed)), n)
}

// Area3D computes, for a 3-dimensional cell (a convex polygon embedded in
// the plane u1+u2+u3 = 1), its area relative to the whole simplex triangle.
// The polygon's maintained extreme points are ordered by angle around the
// centroid inside the plane and fan-triangulated; extra non-extreme points
// kept by degenerate cuts are harmless because they lie on the hull.
// It panics when the cell dimension is not 3.
func Area3D(c *Cell) float64 {
	if c.Dim() != 3 {
		panic("geom: Area3D on non-3d cell")
	}
	verts := c.Vertices()
	if len(verts) < 3 {
		return 0
	}
	// Orthonormal basis of the plane's tangent space.
	e1 := vec.Of(1, -1, 0).Unit()
	e2 := vec.Of(1, 1, -2).Unit()
	ctr := c.Center()
	type pt struct {
		x, y, ang float64
	}
	ps := make([]pt, len(verts))
	for i, v := range verts {
		d := v.Sub(ctr)
		x, y := d.Dot(e1), d.Dot(e2)
		ps[i] = pt{x, y, math.Atan2(y, x)}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].ang < ps[b].ang })
	var area float64
	for i := range ps {
		j := (i + 1) % len(ps)
		area += ps[i].x*ps[j].y - ps[j].x*ps[i].y
	}
	area = math.Abs(area) / 2
	// The whole simplex triangle has side √2: area = √3/2.
	return area / (math.Sqrt(3) / 2)
}

// MeasureCellsExact3D sums Area3D over non-overlapping cells. Callers must
// guarantee disjointness (true for the partitions produced by the exact
// solvers).
func MeasureCellsExact3D(cells []*Cell) float64 {
	var s float64
	for _, c := range cells {
		s += Area3D(c)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// Interval1D extracts, for a 2-dimensional cell, the parameter interval
// [lo, hi] it occupies on the utility segment u = (t, 1−t), t ∈ [0, 1].
// It panics when the cell dimension is not 2.
func Interval1D(c *Cell) (lo, hi float64) {
	if c.Dim() != 2 {
		panic("geom: Interval1D on non-2d cell")
	}
	lo, hi = 1, 0
	for _, v := range c.verts {
		t := v.pt[0]
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return lo, hi
}
