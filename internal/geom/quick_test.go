package geom

// Property-based tests (testing/quick) on the core geometric structures.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rrq/internal/vec"
)

// normalize4 maps arbitrary quick-generated floats into a usable normal.
func normal4(a [4]float64) (vec.Vec, bool) {
	v := vec.New(4)
	for i, x := range a {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, false
		}
		v[i] = math.Mod(x, 10)
	}
	if v.Norm() < 1e-6 {
		return nil, false
	}
	return v, true
}

// Property: Side is antisymmetric under normal negation.
func TestQuickSideAntisymmetry(t *testing.T) {
	f := func(a [4]float64, b [4]float64) bool {
		w, ok := normal4(a)
		if !ok {
			return true
		}
		u, ok := normal4(b)
		if !ok {
			return true
		}
		h := NewHyperplane(w, 0)
		hn := NewHyperplane(w.Scale(-1), 1)
		return h.Side(u) == -hn.Side(u)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: AffineDist sign agrees with Side for simplex points, and the
// magnitude is invariant under positive scaling of the original normal.
func TestQuickAffineDistScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(a [4]float64, scale float64) bool {
		w, ok := normal4(a)
		if !ok {
			return true
		}
		s := math.Abs(math.Mod(scale, 100))
		if s < 1e-3 {
			return true
		}
		h1 := NewHyperplane(w, 0)
		h2 := NewHyperplane(w.Scale(s), 1)
		if h1.ParallelToHull() {
			return true
		}
		u := vec.RandSimplex(rng, 4)
		d1, d2 := h1.AffineDist(u), h2.AffineDist(u)
		return math.Abs(d1-d2) < 1e-7
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: for any random cut sequence, Contains agrees between a cell and
// the union of its two Split halves.
func TestQuickSplitPreservesMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(a [4]float64) bool {
		w, ok := normal4(a)
		if !ok {
			return true
		}
		cell := NewSimplex(4)
		h := NewHyperplane(w, 0)
		if cell.Relation(h) != RelCross {
			return true
		}
		neg, pos := cell.Split(h)
		for i := 0; i < 30; i++ {
			u := vec.RandSimplex(rng, 4)
			inParts := (neg != nil && neg.Contains(u)) || (pos != nil && pos.Contains(u))
			if !inParts {
				return false // the halves must cover the simplex
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: inner radius ≤ outer radius for any cell reachable by cuts.
func TestQuickSphereOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seeds [3][4]float64) bool {
		cell := NewSimplex(4)
		for i, a := range seeds {
			w, ok := normal4(a)
			if !ok {
				continue
			}
			h := NewHyperplane(w, i)
			if cell.Relation(h) != RelCross {
				continue
			}
			neg, pos := cell.Split(h)
			if rng.Intn(2) == 0 && neg != nil {
				cell = neg
			} else if pos != nil {
				cell = pos
			}
		}
		return cell.InnerRadius() <= cell.OuterRadius()+1e-12
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the inner ball is inside the cell: points at distance < innerR
// from the center along any tangent direction stay inside.
func TestQuickInnerBallInside(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 150; trial++ {
		cell := NewSimplex(4)
		for cut := 0; cut < 4; cut++ {
			w := vec.New(4)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			if w.Norm() < 1e-6 {
				continue
			}
			h := NewHyperplane(w, cut)
			if cell.Relation(h) != RelCross {
				continue
			}
			neg, pos := cell.Split(h)
			if rng.Intn(2) == 0 && neg != nil {
				cell = neg
			} else if pos != nil {
				cell = pos
			}
		}
		r := cell.InnerRadius()
		if r <= 1e-9 {
			continue
		}
		c := cell.Center()
		for i := 0; i < 10; i++ {
			// Random tangent direction (sums to zero).
			dir := vec.New(4)
			for j := range dir {
				dir[j] = rng.NormFloat64()
			}
			dir = dir.TangentPart()
			if dir.Norm() < 1e-9 {
				continue
			}
			p := c.AddScaled(0.95*r/dir.Norm(), dir)
			if !cell.Contains(p) {
				t.Fatalf("inner-ball point %v escaped the cell (r=%v)", p, r)
			}
			// The ball must stay on the simplex too.
			if !vec.OnSimplex(p, 1e-6) {
				t.Fatalf("inner-ball point %v left the simplex", p)
			}
		}
	}
}
