package geom

import (
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

// The vertex-dedup tolerance must be relative-or-absolute: an absolute
// 1e-9 comparison treats a 2e-9 coordinate gap as "distinct" regardless of
// magnitude, which splits true vertices near the simplex hull (coordinates
// ~1) where plane-intersection round-off is amplified.

func TestCoincidentNearHull(t *testing.T) {
	// Near-hull cluster: coordinates ~1 differing by 2e-9 — beyond the old
	// absolute 1e-9 cutoff, inside the relative band Tol·(1+|x|+|y|) ≈ 3e-9.
	a := vec.Of(1.0, 0)
	b := vec.Of(1.0+2e-9, 0)
	if !coincident(a, b) {
		t.Fatalf("near-hull vertices %v and %v must merge under the relative tolerance", a, b)
	}
	// Well-separated vertices must stay distinct at any scale.
	c := vec.Of(1.0, 1e-6)
	if coincident(a, c) {
		t.Fatalf("vertices %v and %v differ by 1e-6 and must not merge", a, c)
	}
}

func TestCoincidentNearOrigin(t *testing.T) {
	// Near-origin cluster: the absolute floor Tol·1 still merges round-off
	// twins when both coordinates are tiny.
	a := vec.Of(1e-12, 1.0)
	b := vec.Of(9e-10, 1.0)
	if !coincident(a, b) {
		t.Fatalf("near-origin vertices %v and %v must merge under the absolute floor", a, b)
	}
	d := vec.Of(5e-8, 1.0)
	if coincident(a, d) {
		t.Fatalf("vertices %v and %v differ by ~5e-8 and must not merge", a, d)
	}
}

func TestAppendVertexMergesTightSets(t *testing.T) {
	vs := appendVertex(nil, vertex{pt: vec.Of(0.75, 0.25 + 1.2e-9), tight: newTightSet(3)})
	vs = appendVertex(vs, vertex{pt: vec.Of(0.75 + 1.2e-9, 0.25), tight: newTightSet(7)})
	if len(vs) != 1 {
		t.Fatalf("coincident vertices were not merged: %d entries", len(vs))
	}
	if !vs[0].tight.has(3) || !vs[0].tight.has(7) {
		t.Fatalf("merged vertex lost a tight membership")
	}
	vs = appendVertex(vs, vertex{pt: vec.Of(0.25, 0.75), tight: newTightSet(9)})
	if len(vs) != 2 {
		t.Fatalf("distinct vertex was merged away: %d entries", len(vs))
	}
}

// TestCellRefineNearHullCluster drives the tolerance through the real cell
// machinery: slicing the simplex with two nearly identical planes whose
// intersection vertices land on the hull must keep the cell well-formed
// (non-empty, LP-consistent center) instead of splitting a true vertex
// into a cluster with partial tight sets.
func TestCellRefineNearHullCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		d := 2 + trial%3
		c := NewSimplex(d)
		n := vec.New(d)
		for j := range n {
			n[j] = rng.Float64() - 0.5
		}
		h1 := NewHyperplane(n.Clone(), 0)
		// A parallel plane a hair away: the two cut vertices coincide within
		// round-off near the hull.
		n2 := n.Clone()
		n2[0] += 3e-10
		h2 := NewHyperplane(n2, 1)
		for _, sign := range []int{+1, -1} {
			cc := c.Clip(h1, sign)
			if cc == nil {
				continue
			}
			cc = cc.Clip(h2, sign)
			if cc == nil {
				continue
			}
			ctr := cc.Center()
			if ctr == nil {
				t.Fatalf("trial %d: refined cell lost its center", trial)
			}
			for _, con := range cc.Constraints() {
				if !con.Satisfied(ctr) {
					t.Fatalf("trial %d: center %v violates constraint after near-parallel refine", trial, ctr)
				}
			}
		}
	}
}
