package geom

import (
	"math"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

func TestNewHyperplaneUnit(t *testing.T) {
	h := NewHyperplane(vec.Of(3, 4), 0)
	if math.Abs(h.Normal.Norm()-1) > 1e-12 {
		t.Fatalf("normal not unit: %v", h.Normal)
	}
	if h.Side(vec.Of(1, 0)) != SidePos {
		t.Error("(1,0) should be positive")
	}
	if h.Side(vec.Of(-1, 0)) != SideNeg {
		t.Error("(-1,0) should be negative")
	}
	if h.Side(vec.Of(4, -3)) != SideOn {
		t.Error("(4,-3) should be on the plane")
	}
}

func TestNewHyperplaneZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHyperplane(vec.Of(0, 0), 0)
}

func TestQueryPlanePaperExample(t *testing.T) {
	// Paper Example 3.4: q=(0.4,0.7), p1=(0.2,0.92), ε=0.1 gives normal
	// proportional to (0.22, −0.128). (The paper rounds to (0.22,−0.13).)
	q := vec.Of(0.4, 0.7)
	p1 := vec.Of(0.2, 0.92)
	h, ok := QueryPlane(q, p1, 0.1, 0)
	if !ok {
		t.Fatal("plane should exist")
	}
	want := vec.Of(0.22, -0.128).Unit()
	if !h.Normal.Equal(want, 1e-9) {
		t.Fatalf("normal = %v, want %v", h.Normal, want)
	}
}

func TestQueryPlaneDegenerate(t *testing.T) {
	q := vec.Of(0.45, 0.45)
	p := vec.Of(0.5, 0.5)
	if _, ok := QueryPlane(q, p, 0.1, 0); ok {
		t.Fatal("q = (1−ε)p should be degenerate")
	}
}

func TestParallelToHull(t *testing.T) {
	h := NewHyperplane(vec.Of(1, 1, 1), 0)
	if !h.ParallelToHull() {
		t.Fatal("constant normal should be hull-parallel")
	}
	if h.HullSide() != SidePos {
		t.Fatal("positive constant normal puts U on positive side")
	}
	hn := NewHyperplane(vec.Of(-1, -1, -1), 1)
	if hn.HullSide() != SideNeg {
		t.Fatal("negative constant normal puts U on negative side")
	}
}

func TestAffineDist2D(t *testing.T) {
	// Plane crossing the segment at t* should have distance |t−t*|·√2
	// from u=(t,1−t) inside the hull.
	h := NewHyperplane(vec.Of(1, -1), 0) // crosses at t*=0.5
	u := vec.Of(0.8, 0.2)
	got := h.AffineDist(u)
	want := 0.3 * math.Sqrt2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AffineDist = %v, want %v", got, want)
	}
}

func TestNewSimplex(t *testing.T) {
	for d := 2; d <= 6; d++ {
		s := NewSimplex(d)
		if s.NumVertices() != d {
			t.Fatalf("d=%d: %d vertices", d, s.NumVertices())
		}
		for _, v := range s.Vertices() {
			if !vec.OnSimplex(v, 1e-12) {
				t.Fatalf("vertex %v off simplex", v)
			}
		}
		if !s.Contains(vec.SimplexCenter(d)) {
			t.Fatal("center not contained")
		}
	}
}

func TestSimplexSpheres(t *testing.T) {
	s := NewSimplex(3)
	c := s.Center()
	if !c.Equal(vec.SimplexCenter(3), 1e-12) {
		t.Fatalf("center = %v", c)
	}
	// Outer radius: distance from center to a corner.
	want := c.Dist(vec.Basis(3, 0))
	if math.Abs(s.OuterRadius()-want) > 1e-12 {
		t.Fatalf("outer = %v, want %v", s.OuterRadius(), want)
	}
	// Inner radius of the equilateral triangle = (1/3)/sqrt(1−1/3).
	wantIn := (1.0 / 3) / math.Sqrt(1-1.0/3)
	if math.Abs(s.InnerRadius()-wantIn) > 1e-12 {
		t.Fatalf("inner = %v, want %v", s.InnerRadius(), wantIn)
	}
	if s.InnerRadius() > s.OuterRadius() {
		t.Fatal("inner radius exceeds outer radius")
	}
}

func TestRelationSimple(t *testing.T) {
	s := NewSimplex(3)
	cases := []struct {
		normal vec.Vec
		want   Relation
	}{
		{vec.Of(1, 1, 2), RelPos},    // all positive over U
		{vec.Of(-1, -1, -2), RelNeg}, // all negative
		{vec.Of(1, -1, 0), RelCross}, // crosses
		{vec.Of(2, 2, 2), RelPos},    // hull-parallel positive
		{vec.Of(-2, -2, -2), RelNeg}, // hull-parallel negative
	}
	for i, c := range cases {
		h := NewHyperplane(c.normal, i)
		if got := s.Relation(h); got != c.want {
			t.Errorf("Relation(%v) = %v, want %v", c.normal, got, c.want)
		}
	}
}

func TestSplit2D(t *testing.T) {
	s := NewSimplex(2)
	h := NewHyperplane(vec.Of(1, -1), 0) // crossing at t=0.5
	neg, pos := s.Split(h)
	if neg == nil || pos == nil {
		t.Fatal("both sides should be non-empty")
	}
	lo, hi := Interval1D(neg)
	if math.Abs(lo-0) > 1e-9 || math.Abs(hi-0.5) > 1e-9 {
		t.Errorf("neg interval [%v,%v], want [0,0.5]", lo, hi)
	}
	lo, hi = Interval1D(pos)
	if math.Abs(lo-0.5) > 1e-9 || math.Abs(hi-1) > 1e-9 {
		t.Errorf("pos interval [%v,%v], want [0.5,1]", lo, hi)
	}
}

func TestSplit3DCounts(t *testing.T) {
	s := NewSimplex(3)
	h := NewHyperplane(vec.Of(1, -1, 0), 0)
	neg, pos := s.Split(h)
	if neg == nil || pos == nil {
		t.Fatal("expected two parts")
	}
	// The triangle splits into two triangles sharing an edge: each part
	// keeps one corner plus e3 plus the two crossing points... the plane
	// u1=u2 passes through e3 itself, so e3 is on the plane and one fresh
	// point appears on the e1–e2 edge.
	if neg.NumVertices() != 3 || pos.NumVertices() != 3 {
		t.Fatalf("vertex counts neg=%d pos=%d, want 3,3", neg.NumVertices(), pos.NumVertices())
	}
	for _, v := range append(neg.Vertices(), pos.Vertices()...) {
		if !vec.OnSimplex(v, 1e-9) {
			t.Errorf("vertex %v off simplex", v)
		}
	}
}

func TestClip(t *testing.T) {
	s := NewSimplex(3)
	h := NewHyperplane(vec.Of(1, -1, 0), 0)
	pos := s.Clip(h, +1)
	if pos == nil {
		t.Fatal("positive clip empty")
	}
	if !pos.Contains(vec.Of(0.6, 0.2, 0.2)) {
		t.Error("positive point rejected")
	}
	if pos.Contains(vec.Of(0.1, 0.8, 0.1)) {
		t.Error("negative point accepted")
	}
	// Clipping with an all-positive plane returns the cell unchanged.
	hp := NewHyperplane(vec.Of(1, 2, 3), 1)
	if got := s.Clip(hp, +1); got != s {
		t.Error("redundant clip should return the receiver")
	}
	if got := s.Clip(hp, -1); got != nil {
		t.Error("clip to empty side should be nil")
	}
}

// Property: after a split, every maintained vertex of each side is on the
// simplex, on the correct closed side of the cut plane, and satisfies the
// side's constraints; random interior points classify consistently.
func TestSplitInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for d := 2; d <= 5; d++ {
		for trial := 0; trial < 60; trial++ {
			cell := NewSimplex(d)
			// Random sequence of up to 6 cuts; follow a random branch.
			for cut := 0; cut < 6 && cell != nil; cut++ {
				n := vec.New(d)
				for i := range n {
					n[i] = rng.NormFloat64()
				}
				if n.Norm() < 1e-6 {
					continue
				}
				h := NewHyperplane(n, cut)
				rel := cell.Relation(h)
				if rel != RelCross {
					continue
				}
				neg, pos := cell.Split(h)
				for side, sc := range map[int]*Cell{-1: neg, +1: pos} {
					if sc == nil {
						continue
					}
					for _, v := range sc.Vertices() {
						if !vec.OnSimplex(v, 1e-7) {
							t.Fatalf("d=%d vertex %v off simplex", d, v)
						}
						if float64(side)*h.Eval(v) < -1e-7 {
							t.Fatalf("d=%d vertex %v on wrong side", d, v)
						}
						if !sc.Contains(v) {
							t.Fatalf("d=%d vertex %v violates own constraints", d, v)
						}
					}
					// Interior samples stay inside the parent cell.
					for i := 0; i < 5; i++ {
						p := sc.SamplePoint(rng)
						if !cell.Contains(p) {
							t.Fatalf("d=%d sample %v escaped parent", d, p)
						}
						if float64(side)*h.Eval(p) < -1e-7 {
							t.Fatalf("d=%d sample %v wrong side", d, p)
						}
					}
				}
				// Descend into a random non-nil branch.
				if rng.Intn(2) == 0 && neg != nil {
					cell = neg
				} else if pos != nil {
					cell = pos
				} else {
					cell = neg
				}
			}
		}
	}
}

// Property: Relation agrees with a dense membership sample.
func TestRelationAgreesWithSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for d := 2; d <= 4; d++ {
		for trial := 0; trial < 40; trial++ {
			cell := NewSimplex(d)
			// Cut a couple of times to get a smaller cell.
			for cut := 0; cut < 3; cut++ {
				n := vec.New(d)
				for i := range n {
					n[i] = rng.NormFloat64()
				}
				h := NewHyperplane(n, cut)
				if cell.Relation(h) != RelCross {
					continue
				}
				neg, pos := cell.Split(h)
				if rng.Intn(2) == 0 && neg != nil {
					cell = neg
				} else if pos != nil {
					cell = pos
				}
			}
			n := vec.New(d)
			for i := range n {
				n[i] = rng.NormFloat64()
			}
			if n.Norm() < 1e-6 {
				continue
			}
			h := NewHyperplane(n, 99)
			rel := cell.Relation(h)
			// Sample vertices and interior points; verify consistency.
			anyNeg, anyPos := false, false
			for _, v := range cell.Vertices() {
				switch vec.Sign(h.Eval(v), 1e-7) {
				case SideNeg:
					anyNeg = true
				case SidePos:
					anyPos = true
				}
			}
			for i := 0; i < 50; i++ {
				p := cell.SamplePoint(rng)
				switch vec.Sign(h.Eval(p), 1e-7) {
				case SideNeg:
					anyNeg = true
				case SidePos:
					anyPos = true
				}
			}
			switch rel {
			case RelPos:
				if anyNeg {
					t.Fatalf("d=%d: RelPos but found negative point", d)
				}
			case RelNeg:
				if anyPos {
					t.Fatalf("d=%d: RelNeg but found positive point", d)
				}
			}
		}
	}
}

func TestMeasureCells(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSimplex(2)
	h := NewHyperplane(vec.Of(1, -1), 0) // t*=0.5
	neg, pos := s.Split(h)
	m := MeasureCells([]*Cell{neg}, 2, rng, 20000)
	if math.Abs(m-0.5) > 0.02 {
		t.Fatalf("neg measure = %v, want ~0.5", m)
	}
	// Union of both halves covers everything.
	m = MeasureCells([]*Cell{neg, pos}, 2, rng, 5000)
	if m != 1 {
		t.Fatalf("full union measure = %v, want 1", m)
	}
	if MeasureCells(nil, 2, rng, 100) != 0 {
		t.Fatal("empty region should measure 0")
	}
}

func TestInterval1DPanicsOnHighDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Interval1D(NewSimplex(3))
}

func TestTightSetOps(t *testing.T) {
	a := newTightSet(3, 1, 2)
	b := newTightSet(2, 3, 5)
	if !a.has(2) || a.has(5) {
		t.Fatal("has broken")
	}
	if got := a.intersectCount(b); got != 2 {
		t.Fatalf("intersectCount = %d, want 2", got)
	}
	inter := a.intersect(b)
	if len(inter) != 2 || inter[0] != 2 || inter[1] != 3 {
		t.Fatalf("intersect = %v", inter)
	}
	u := a.union(b)
	if len(u) != 4 {
		t.Fatalf("union = %v", u)
	}
	w := a.with(0)
	if len(w) != 4 || w[0] != 0 {
		t.Fatalf("with = %v", w)
	}
	if got := a.with(2); len(got) != 3 {
		t.Fatalf("with existing changed size: %v", got)
	}
}

func TestArea3DWholeSimplex(t *testing.T) {
	s := NewSimplex(3)
	if got := Area3D(s); math.Abs(got-1) > 1e-12 {
		t.Fatalf("whole simplex area = %v, want 1", got)
	}
}

func TestArea3DHalf(t *testing.T) {
	s := NewSimplex(3)
	h := NewHyperplane(vec.Of(1, -1, 0), 0) // symmetric cut through e3
	neg, pos := s.Split(h)
	a1, a2 := Area3D(neg), Area3D(pos)
	if math.Abs(a1-0.5) > 1e-9 || math.Abs(a2-0.5) > 1e-9 {
		t.Fatalf("half areas = %v, %v, want 0.5 each", a1, a2)
	}
	if math.Abs(MeasureCellsExact3D([]*Cell{neg, pos})-1) > 1e-9 {
		t.Fatal("halves should sum to the whole")
	}
}

// Exact 3-d area agrees with Monte-Carlo measure on random cells.
func TestArea3DMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		cell := NewSimplex(3)
		for cut := 0; cut < 4; cut++ {
			w := vec.New(3)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			if w.Norm() < 1e-6 {
				continue
			}
			h := NewHyperplane(w, cut)
			if cell.Relation(h) != RelCross {
				continue
			}
			neg, pos := cell.Split(h)
			if rng.Intn(2) == 0 && neg != nil {
				cell = neg
			} else if pos != nil {
				cell = pos
			}
		}
		exact := Area3D(cell)
		mc := CellMeasure(cell, rng, 30000)
		if math.Abs(exact-mc) > 0.02 {
			t.Fatalf("trial %d: exact %v vs MC %v", trial, exact, mc)
		}
	}
}

func TestArea3DPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Area3D(NewSimplex(4))
}

func TestArea3DDegenerate(t *testing.T) {
	// A cell with fewer than 3 maintained vertices has zero area; build one
	// artificially via the 2-vertex path: not reachable through Split, so
	// exercise the guard directly with a sliver cut instead.
	s := NewSimplex(3)
	h := NewHyperplane(vec.Of(1, -1, 0), 0)
	neg, _ := s.Split(h)
	if neg == nil {
		t.Skip("no negative side")
	}
	if Area3D(neg) <= 0 {
		t.Fatal("non-degenerate half should have positive area")
	}
}
