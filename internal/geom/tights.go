package geom

import "sort"

// tightSet is a sorted slice of constraint identifiers that are tight
// (satisfied with equality) at a vertex. Identifiers 0..d−1 denote the
// simplex bounds u[i] ≥ 0; a cut by hyper-plane h contributes d + h.ID.
type tightSet []int32

func newTightSet(ids ...int32) tightSet {
	s := append(tightSet(nil), ids...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// has reports membership.
func (s tightSet) has(id int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// with returns s ∪ {id} (s unchanged).
func (s tightSet) with(id int32) tightSet {
	if s.has(id) {
		return append(tightSet(nil), s...)
	}
	out := make(tightSet, 0, len(s)+1)
	inserted := false
	for _, x := range s {
		if !inserted && id < x {
			out = append(out, id)
			inserted = true
		}
		out = append(out, x)
	}
	if !inserted {
		out = append(out, id)
	}
	return out
}

// intersectCount returns |s ∩ t| for two sorted sets.
func (s tightSet) intersectCount(t tightSet) int {
	i, j, n := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// intersect returns s ∩ t as a new sorted set.
func (s tightSet) intersect(t tightSet) tightSet {
	out := make(tightSet, 0, min(len(s), len(t)))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// intersectWith returns (s ∩ t) ∪ {id} as a new sorted set in a single
// allocation — the fused form of intersect followed by with, used on the
// split hot path where the intermediate intersection would be discarded.
func (s tightSet) intersectWith(t tightSet, id int32) tightSet {
	out := make(tightSet, 0, min(len(s), len(t))+1)
	inserted := false
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			x := s[i]
			if !inserted && id <= x {
				if id < x {
					out = append(out, id)
				}
				inserted = true
			}
			out = append(out, x)
			i++
			j++
		}
	}
	if !inserted {
		out = append(out, id)
	}
	return out
}

// union returns s ∪ t as a new sorted set.
func (s tightSet) union(t tightSet) tightSet {
	out := make(tightSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}
