package geom

import (
	"math"
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

// TestMeasureCellsSeededReproducible: equal seeds must give bit-identical
// estimates, different seeds should (and here do) give different noise, and
// the estimate must agree with the rng-threading API given the same source.
func TestMeasureCellsSeededReproducible(t *testing.T) {
	for d := 2; d <= 5; d++ {
		n := vec.New(d)
		for j := range n {
			n[j] = math.Cos(float64(j*d + 1))
		}
		cell := NewSimplex(d).Clip(NewHyperplane(n, 0), +1)
		if cell == nil {
			cell = NewSimplex(d)
		}
		cells := []*Cell{cell}

		a := MeasureCellsSeeded(cells, d, 42, 4000)
		b := MeasureCellsSeeded(cells, d, 42, 4000)
		if a != b {
			t.Fatalf("d=%d: same seed gave %v and %v", d, a, b)
		}
		viaRng := MeasureCells(cells, d, rand.New(rand.NewSource(42)), 4000)
		if a != viaRng {
			t.Fatalf("d=%d: seeded %v disagrees with explicit rng %v", d, a, viaRng)
		}
		c := MeasureCellsSeeded(cells, d, 43, 4000)
		if a == c && a != 0 && a != 1 {
			t.Errorf("d=%d: different seeds gave identical nontrivial estimates %v", d, a)
		}
		one := CellMeasureSeeded(cell, 42, 4000)
		if one != a {
			t.Fatalf("d=%d: CellMeasureSeeded %v disagrees with MeasureCellsSeeded %v", d, one, a)
		}
	}
}
