// Package geom implements the computational geometry substrate for the
// reverse regret query: hyper-planes through the origin, convex cells
// (partitions) of the utility simplex with incremental extreme-point
// maintenance, relationship tests between cells and hyper-planes
// (paper Lemmas 5.1, 5.4, 5.5), and Monte-Carlo region measure.
//
// The utility space U is the standard (d−1)-simplex
// {u ∈ R^d : u[i] ≥ 0, Σu[i] = 1}. All cells live inside U. Distances
// used for sphere tests are measured inside the affine hull of U, which is
// why every Hyperplane caches the norm of its normal's tangent-space
// projection.
package geom

import (
	"fmt"
	"math"

	"rrq/internal/vec"
)

// Tol is the geometric tolerance used for side classification.
const Tol = 1e-9

// Side constants for point-vs-plane classification.
const (
	SideNeg = -1 // u·w < 0
	SideOn  = 0  // |u·w| ≤ tol
	SidePos = +1 // u·w > 0
)

// Hyperplane is a hyper-plane through the origin, {u : u·Normal = 0}.
// The positive half-space is {u : u·Normal > 0}.
//
// ID must be unique among all hyper-planes inserted into the same cell
// lineage (arrangement); it feeds the tight-constraint bookkeeping that
// drives edge detection during cuts. Use the index of the source point.
type Hyperplane struct {
	Normal vec.Vec
	ID     int

	tangentNorm float64 // ‖Normal − mean(Normal)·1‖, lazily via New
	offsetMean  float64 // mean(Normal): value of u·Normal when tangent part is 0
	unit        vec.Vec // Normal / ‖Normal‖
}

// NewHyperplane builds a hyper-plane from a (non-zero) normal. The normal
// is stored unit-length so that side tolerances are scale-free. It panics
// on a zero normal; callers must filter degenerate planes (q = (1−ε)p)
// before construction.
func NewHyperplane(normal vec.Vec, id int) Hyperplane {
	n := normal.Norm()
	if n < vec.Eps {
		panic("geom: hyperplane with zero normal")
	}
	u := normal.Scale(1 / n)
	// Tangent norm computed in place (same summation order as
	// u.TangentPart().Norm()) to avoid the throwaway projection vector.
	m := u.Mean()
	var tn float64
	for _, x := range u {
		d := x - m
		tn += d * d
	}
	return Hyperplane{
		Normal:      u,
		ID:          id,
		tangentNorm: math.Sqrt(tn),
		offsetMean:  m,
		unit:        u,
	}
}

// NewHyperplaneInto is NewHyperplane with caller-provided storage for the
// unit normal: dst must have length normal.Dim() and may come from a reused
// arena block. The stored values are bitwise-identical to what
// NewHyperplane would produce (same scale and summation order), so planes
// built through either path classify points identically.
func NewHyperplaneInto(dst, normal vec.Vec, id int) Hyperplane {
	n := normal.Norm()
	if n < vec.Eps {
		panic("geom: hyperplane with zero normal")
	}
	s := 1 / n
	for i, x := range normal {
		dst[i] = x * s
	}
	m := dst.Mean()
	var tn float64
	for _, x := range dst {
		d := x - m
		tn += d * d
	}
	return Hyperplane{
		Normal:      dst,
		ID:          id,
		tangentNorm: math.Sqrt(tn),
		offsetMean:  m,
		unit:        dst,
	}
}

// PackNormals repacks the unit normals of planes into one contiguous flat
// backing array, stride Dim, in slice order. The planes' geometry is
// unchanged (values are copied verbatim); only the storage moves, so the
// relation tests that scan many planes against the same cell walk a single
// cache-friendly block instead of chasing per-plane allocations. Callers
// must own the slice: the Hyperplane values are rewritten in place.
func PackNormals(planes []Hyperplane) {
	if len(planes) == 0 {
		return
	}
	d := planes[0].Normal.Dim()
	flat := make([]float64, len(planes)*d)
	for i := range planes {
		dst := vec.Vec(flat[i*d : (i+1)*d : (i+1)*d])
		copy(dst, planes[i].Normal)
		planes[i].Normal = dst
		planes[i].unit = dst
	}
}

// Unit returns the unit normal of h.
func (h Hyperplane) Unit() vec.Vec { return h.unit }

// Eval returns u·Normal, the signed (scaled) offset of u from the plane.
func (h Hyperplane) Eval(u vec.Vec) float64 { return u.Dot(h.Normal) }

// Side classifies u against the plane with tolerance Tol.
func (h Hyperplane) Side(u vec.Vec) int { return vec.Sign(h.Eval(u), Tol) }

// ParallelToHull reports whether the plane is parallel to the affine hull
// of the simplex (its tangent projection vanishes). Such a plane does not
// intersect U: every simplex point evaluates to offsetMean.
func (h Hyperplane) ParallelToHull() bool { return h.tangentNorm < vec.Eps }

// HullSide returns the side of the whole utility space for a plane that is
// parallel to the hull.
func (h Hyperplane) HullSide() int { return vec.Sign(h.offsetMean, Tol) }

// AffineDist returns the signed Euclidean distance, measured inside the
// affine hull of the simplex, from a point c (with Σc = 1) to the plane.
// Positive values mean c lies in the positive half-space.
func (h Hyperplane) AffineDist(c vec.Vec) float64 {
	if h.ParallelToHull() {
		if h.offsetMean >= 0 {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	return h.Eval(c) / h.tangentNorm
}

func (h Hyperplane) String() string {
	return fmt.Sprintf("h#%d%v", h.ID, h.Normal)
}

// QueryPlane builds the RRQ hyper-plane h_{q,p} with normal q − (1−ε)·p
// (paper §3.2). ok is false when the normal is numerically zero, i.e.
// q = (1−ε)p; such a plane puts every utility vector on its boundary.
//
// Contract (system-wide): a filtered plane contributes 0 to the
// <k negative-half-space tally of Lemma 3.5, i.e. it is "never negative" —
// the boundary itself is not inside the open negative half-space. Every
// layer observes this: buildPlanes and CountBetter in internal/core drop
// the plane from both count and margin, A-PC excludes it from sample D⁻
// sets and partition constraints, and PBA+ descends through it without
// consuming rank budget. See docs/ALGORITHMS.md, "Tolerances and
// degeneracy".
func QueryPlane(q, p vec.Vec, eps float64, id int) (h Hyperplane, ok bool) {
	w := q.AddScaled(-(1 - eps), p)
	if w.Norm() < vec.Eps {
		return Hyperplane{}, false
	}
	return NewHyperplane(w, id), true
}
