package geom

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"rrq/internal/vec"
)

// Relation describes how a cell relates to a hyper-plane (Lemma 5.1).
type Relation int

const (
	// RelPos: the cell is covered by the closed positive half-space.
	RelPos Relation = iota
	// RelNeg: the cell is covered by the closed negative half-space.
	RelNeg
	// RelCross: the plane intersects the cell's interior.
	RelCross
)

func (r Relation) String() string {
	switch r {
	case RelPos:
		return "pos"
	case RelNeg:
		return "neg"
	default:
		return "cross"
	}
}

// Constraint is one half-space bounding a cell: Sign=+1 keeps u·Normal ≥ 0,
// Sign=−1 keeps u·Normal ≤ 0.
type Constraint struct {
	H    Hyperplane
	Sign int
}

// Satisfied reports whether u satisfies the constraint within tolerance
// (boundary inclusive).
func (c Constraint) Satisfied(u vec.Vec) bool {
	return float64(c.Sign)*c.H.Eval(u) >= -Tol
}

type vertex struct {
	pt    vec.Vec
	tight tightSet
}

// consList is a persistent singly-linked constraint list: children created
// by Split share their parent's tail, so adding a constraint is O(1)
// regardless of depth. Cells are immutable, which makes the sharing safe.
type consList struct {
	con  Constraint
	prev *consList
}

// Cell is a convex partition of the utility simplex: the intersection of U
// with its constraint half-spaces. Extreme points are maintained
// incrementally across cuts. Cells are immutable once built; Split and Clip
// return new cells sharing no mutable state with the receiver.
type Cell struct {
	dim   int
	cons  *consList
	nCons int
	verts []vertex
	// facets holds the cut constraints that have at least one tight
	// vertex — the candidates for actual facets of the cell. Only these
	// (plus the simplex bounds) bound the inner-sphere radius; walking the
	// full constraint chain would cost O(depth) per cell. In degenerate
	// configurations a facet can be missed (a vertex's tight set is a
	// subset of the truth), making the inner radius an overestimate; the
	// only consequence is a spurious RelCross, which every caller resolves
	// by splitting and discarding an empty side.
	facets []Constraint

	// Lazily computed sphere data (Lemmas 5.4, 5.5).
	sphereReady bool
	center      vec.Vec
	outerR      float64
	innerR      float64
}

// NewSimplex returns the whole utility space as a cell: the (d−1)-simplex
// with vertices e_1 … e_d and no cut constraints.
func NewSimplex(d int) *Cell {
	if d < 2 {
		panic(fmt.Sprintf("geom: simplex dimension %d < 2", d))
	}
	verts := make([]vertex, d)
	for i := 0; i < d; i++ {
		t := make(tightSet, 0, d-1)
		for j := 0; j < d; j++ {
			if j != i {
				t = append(t, int32(j))
			}
		}
		verts[i] = vertex{pt: vec.Basis(d, i), tight: t}
	}
	return &Cell{dim: d, verts: verts}
}

// Dim returns the ambient dimension d.
func (c *Cell) Dim() int { return c.dim }

// Constraints returns the cut constraints defining the cell (excluding the
// simplex bounds), in insertion order.
func (c *Cell) Constraints() []Constraint {
	out := make([]Constraint, c.nCons)
	i := c.nCons
	for n := c.cons; n != nil; n = n.prev {
		i--
		out[i] = n.con
	}
	return out
}

// NumConstraints returns the number of cut constraints.
func (c *Cell) NumConstraints() int { return c.nCons }

// NumVertices returns the number of maintained extreme points (possibly a
// superset of the true vertex set in degenerate configurations).
func (c *Cell) NumVertices() int { return len(c.verts) }

// Vertices returns copies of the maintained extreme points.
func (c *Cell) Vertices() []vec.Vec {
	out := make([]vec.Vec, len(c.verts))
	for i, v := range c.verts {
		out[i] = v.pt.Clone()
	}
	return out
}

// Contains reports whether u (assumed on the simplex) satisfies every cut
// constraint of the cell, boundary inclusive.
func (c *Cell) Contains(u vec.Vec) bool {
	for n := c.cons; n != nil; n = n.prev {
		if !n.con.Satisfied(u) {
			return false
		}
	}
	return true
}

// Center returns the barycenter of the maintained extreme points. It is a
// point inside the cell.
func (c *Cell) Center() vec.Vec {
	c.ensureSpheres()
	return c.center
}

// OuterRadius returns the radius of the outer sphere: the largest distance
// from the center to any extreme point. Every point of the cell is within
// this distance of the center.
func (c *Cell) OuterRadius() float64 {
	c.ensureSpheres()
	return c.outerR
}

// InnerRadius returns the radius of the inner sphere: the smallest affine
// distance from the center to any component hyper-plane (cut planes and
// simplex bounds). The affine ball of this radius around the center is
// contained in the cell.
func (c *Cell) InnerRadius() float64 {
	c.ensureSpheres()
	return c.innerR
}

func (c *Cell) ensureSpheres() {
	if c.sphereReady {
		return
	}
	if len(c.verts) == 0 {
		panic("geom: cell with no vertices")
	}
	ctr := vec.New(c.dim)
	for _, v := range c.verts {
		for i, x := range v.pt {
			ctr[i] += x
		}
	}
	for i := range ctr {
		ctr[i] /= float64(len(c.verts))
	}
	outer := 0.0
	for _, v := range c.verts {
		if d := ctr.Dist(v.pt); d > outer {
			outer = d
		}
	}
	// Inner radius: distance to each simplex bound {u[i]=0} inside the
	// affine hull is u[i] / ‖TangentPart(e_i)‖; the tangent norm of a
	// basis vector is sqrt(1 − 1/d). Only facet constraints are consulted.
	inner := math.Inf(1)
	bt := math.Sqrt(1 - 1/float64(c.dim))
	for i := 0; i < c.dim; i++ {
		if d := ctr[i] / bt; d < inner {
			inner = d
		}
	}
	for _, con := range c.facets {
		d := math.Abs(con.H.AffineDist(ctr))
		if d < inner {
			inner = d
		}
	}
	if inner < 0 {
		inner = 0
	}
	c.center, c.outerR, c.innerR = ctr, outer, inner
	c.sphereReady = true
}

// Relation classifies the cell against h using, in order: the hull-parallel
// shortcut, the outer-sphere test (Lemma 5.4), the inner-sphere test
// (Lemma 5.5) and, if all are inconclusive, the exact extreme-point test
// (Lemma 5.1). A cell lying entirely on the plane reports RelPos: its
// utility vectors are not strictly inside the negative half-space.
func (c *Cell) Relation(h Hyperplane) Relation {
	if h.ParallelToHull() {
		if h.HullSide() < 0 {
			return RelNeg
		}
		return RelPos
	}
	c.ensureSpheres()
	s := h.AffineDist(c.center)
	switch {
	case s-c.outerR > Tol:
		return RelPos
	case s+c.outerR < -Tol:
		return RelNeg
	case math.Abs(s)+Tol < c.innerR:
		return RelCross
	}
	return c.vertexRelation(h)
}

func (c *Cell) vertexRelation(h Hyperplane) Relation {
	neg, pos := 0, 0
	for _, v := range c.verts {
		switch h.Side(v.pt) {
		case SideNeg:
			neg++
		case SidePos:
			pos++
		}
		if neg > 0 && pos > 0 {
			return RelCross
		}
	}
	if neg > 0 {
		return RelNeg
	}
	return RelPos
}

// Split cuts the cell by h into its negative and positive parts. Either
// side may be nil when it is empty or lower-dimensional (a sliver with no
// strictly-sided vertex). The caller should normally only invoke Split when
// Relation(h) == RelCross.
func (c *Cell) Split(h Hyperplane) (neg, pos *Cell) {
	return c.split(h, true, true)
}

// Clip intersects the cell with one closed half-space of h: sign=+1 keeps
// the positive side, sign=−1 the negative side. It returns nil when the
// kept side is empty, and returns the cell itself (no constraint added)
// when the cell is already entirely on the kept side.
func (c *Cell) Clip(h Hyperplane, sign int) *Cell {
	switch c.Relation(h) {
	case RelPos:
		if sign > 0 {
			return c
		}
		return nil
	case RelNeg:
		if sign < 0 {
			return c
		}
		return nil
	}
	neg, pos := c.split(h, sign < 0, sign > 0)
	if sign > 0 {
		return pos
	}
	return neg
}

// classified pairs a vertex with its side and signed offset for one cut.
type classified struct {
	v    vertex
	side int
	val  float64
}

// splitScratch holds the transient buffers of one split invocation. Nothing
// in it escapes: vertex values are copied into the output cells' own
// slices, so recycling the backing arrays through a sync.Pool is safe even
// though the cells live arbitrarily long. Pooling matters because the
// solvers perform one split per tree refinement or clip — and, under
// intra-query parallelism, from many goroutines at once.
type splitScratch struct {
	cls   []classified
	fresh []vertex
}

var splitPool = sync.Pool{New: func() any { return new(splitScratch) }}

func (c *Cell) split(h Hyperplane, wantNeg, wantPos bool) (neg, pos *Cell) {
	sc := splitPool.Get().(*splitScratch)
	cls := sc.cls[:0]
	nNeg, nPos := 0, 0
	for _, v := range c.verts {
		val := h.Eval(v.pt)
		side := vec.Sign(val, Tol)
		cls = append(cls, classified{v, side, val})
		switch side {
		case SideNeg:
			nNeg++
		case SidePos:
			nPos++
		}
	}
	nOn := len(cls) - nNeg - nPos
	hid := int32(c.dim + h.ID)

	// New extreme points: intersections of cell edges crossing the plane.
	// Two vertices are edge-adjacent iff they share at least d−2 tight
	// constraints; in degenerate configurations this may admit pairs that
	// only span a common face, whose intersection points still lie inside
	// the cell and on the plane, keeping all downstream tests sound.
	// Computed before the cells are built so the output vertex slices can
	// be allocated at their exact final size.
	fresh := sc.fresh[:0]
	if nNeg > 0 && nPos > 0 {
		need := c.dim - 2
		for i := range cls {
			if cls[i].side != SidePos {
				continue
			}
			for j := range cls {
				if cls[j].side != SideNeg {
					continue
				}
				// Count first: pairs failing the adjacency threshold are
				// the common case and must not allocate.
				if cls[i].v.tight.intersectCount(cls[j].v.tight) < need {
					continue
				}
				t := cls[i].val / (cls[i].val - cls[j].val)
				pt := cls[i].v.pt.Lerp(cls[j].v.pt, t)
				fresh = appendVertex(fresh, vertex{pt: pt, tight: cls[i].v.tight.intersectWith(cls[j].v.tight, hid)})
			}
		}
	}

	build := func(keep, nKeep, conSign int) *Cell {
		out := &Cell{dim: c.dim}
		out.cons = &consList{con: Constraint{H: h, Sign: conSign}, prev: c.cons}
		out.nCons = c.nCons + 1
		verts := make([]vertex, 0, nKeep+nOn+len(fresh))
		for _, cl := range cls {
			switch cl.side {
			case keep:
				verts = append(verts, cl.v)
			case SideOn:
				verts = append(verts, vertex{pt: cl.v.pt, tight: cl.v.tight.with(hid)})
			}
		}
		verts = append(verts, fresh...)
		out.verts = verts
		out.facets = filterFacets(c.facets, Constraint{H: h, Sign: conSign}, verts, c.dim)
		return out
	}

	if nNeg > 0 && wantNeg {
		neg = build(SideNeg, nNeg, -1)
	}
	if nPos > 0 && wantPos {
		pos = build(SidePos, nPos, +1)
	}
	sc.cls, sc.fresh = cls, fresh
	splitPool.Put(sc)
	return neg, pos
}

// filterFacets selects, from the parent's facet candidates plus the new
// constraint, those with at least one tight vertex in verts. The candidate
// list is short (facets of a convex cell), so a direct scan over the
// vertices' sorted tight sets beats building a presence map — and
// allocates nothing beyond the result.
func filterFacets(parent []Constraint, newCon Constraint, verts []vertex, dim int) []Constraint {
	out := make([]Constraint, 0, len(parent)+1)
	for _, con := range parent {
		if anyTight(verts, int32(dim+con.H.ID)) {
			out = append(out, con)
		}
	}
	if anyTight(verts, int32(dim+newCon.H.ID)) {
		out = append(out, newCon)
	}
	return out
}

// anyTight reports whether some vertex has id in its tight set.
func anyTight(verts []vertex, id int32) bool {
	for i := range verts {
		if verts[i].tight.has(id) {
			return true
		}
	}
	return false
}

// appendVertex adds v to vs, merging tight sets when an existing vertex
// coincides with v within tolerance.
func appendVertex(vs []vertex, v vertex) []vertex {
	for i := range vs {
		if coincident(vs[i].pt, v.pt) {
			vs[i].tight = vs[i].tight.union(v.tight)
			return vs
		}
	}
	return append(vs, v)
}

// coincident reports whether two vertex coordinates are equal under a
// relative-or-absolute tolerance keyed to Tol: |x−y| ≤ Tol·(1+|x|+|y|).
// An absolute comparison would be scale-dependent — too strict for
// vertices near the simplex hull (coordinates ~1, where intersection
// round-off is amplified by near-parallel planes) and needlessly exact
// near the origin. Merging "too much" is sound here: merged vertices only
// union their tight sets, which keeps more constraints alive in
// dropRedundant; splitting a true vertex in two is what loses tight
// memberships and drops live constraints.
func coincident(a, b vec.Vec) bool {
	for i, x := range a {
		y := b[i]
		if math.Abs(x-y) > Tol*(1+math.Abs(x)+math.Abs(y)) {
			return false
		}
	}
	return true
}

// SamplePoint returns a random point inside the cell: a random convex
// combination of the maintained extreme points. The distribution is not
// uniform but has full support over the cell.
func (c *Cell) SamplePoint(rng *rand.Rand) vec.Vec {
	w := vec.RandSimplex(rng, len(c.verts))
	pt := vec.New(c.dim)
	for i, v := range c.verts {
		for j, x := range v.pt {
			pt[j] += w[i] * x
		}
	}
	return pt
}

func (c *Cell) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cell{d=%d, cons=%d, verts=[", c.dim, c.nCons)
	for i, v := range c.verts {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(v.pt.String())
	}
	b.WriteString("]}")
	return b.String()
}
