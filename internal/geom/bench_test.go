package geom

import (
	"math/rand"
	"testing"

	"rrq/internal/vec"
)

func randPlanes(n, d int, seed int64) []Hyperplane {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Hyperplane, 0, n)
	for len(out) < n {
		w := vec.New(d)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		if w.Norm() < 1e-6 {
			continue
		}
		out = append(out, NewHyperplane(w, len(out)))
	}
	return out
}

func benchCell(d int, cuts int) *Cell {
	cell := NewSimplex(d)
	for _, h := range randPlanes(cuts, d, 9) {
		if cell.Relation(h) != RelCross {
			continue
		}
		_, pos := cell.Split(h)
		if pos != nil {
			cell = pos
		}
	}
	return cell
}

func BenchmarkRelation(b *testing.B) {
	for _, d := range []int{3, 5} {
		cell := benchCell(d, 6)
		planes := randPlanes(64, d, 11)
		b.Run(map[int]string{3: "d=3", 5: "d=5"}[d], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell.Relation(planes[i%len(planes)])
			}
		})
	}
}

func BenchmarkSplit(b *testing.B) {
	cell := benchCell(4, 5)
	var crossing []Hyperplane
	for _, h := range randPlanes(256, 4, 13) {
		if cell.Relation(h) == RelCross {
			crossing = append(crossing, h)
		}
	}
	if len(crossing) == 0 {
		b.Skip("no crossing planes")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell.Split(crossing[i%len(crossing)])
	}
}

func BenchmarkContains(b *testing.B) {
	cell := benchCell(4, 8)
	u := vec.SimplexCenter(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell.Contains(u)
	}
}

func BenchmarkMeasureCells(b *testing.B) {
	cell := benchCell(4, 6)
	rng := rand.New(rand.NewSource(17))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CellMeasure(cell, rng, 1000)
	}
}
