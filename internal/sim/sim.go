// Package sim is the closed-loop workload simulator for the serving stack:
// it drives the exact admission controller and tenant meter the rrqd server
// deploys — HTTP-free — against an rrq.Index, replaying a seeded stream of
// mixed (k, ε) queries and reporting per-policy latency percentiles, shed
// rate and cache effectiveness.
//
// Two arrival models are supported. The closed loop (default) runs a fixed
// number of clients, each issuing its next query as soon as the previous
// one resolves — throughput self-limits to what the index sustains. The
// open loop spawns arrivals at a fixed rate with exponential interarrival
// gaps regardless of completions, which is what actually overloads a server
// and makes the "always" vs "cap" admission policies diverge.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"rrq"
	"rrq/internal/server"
)

// Workload describes a seeded query stream over a dataset: mixed ranks
// drawn from [KMin, KMax], tolerances drawn from the quantized EpsLevels
// (quantization is deliberate — it makes exact cache hits possible), and a
// Repeat probability of re-issuing an earlier query verbatim, the locality
// knob that separates warm-cache from cold-cache scenarios.
type Workload struct {
	Queries   int       // stream length
	KMin      int       // inclusive rank range...
	KMax      int       // ...mixed per query
	EpsLevels []float64 // quantized regret tolerances
	Repeat    float64   // probability a query repeats an earlier one
	Seed      int64     // stream seed; same seed, same stream
}

// Generate materializes the deterministic query stream.
func (w Workload) Generate(ds *rrq.Dataset) []rrq.Query {
	if w.Queries <= 0 {
		return nil
	}
	kmin, kmax := w.KMin, w.KMax
	if kmin <= 0 {
		kmin = 1
	}
	if kmax < kmin {
		kmax = kmin
	}
	levels := w.EpsLevels
	if len(levels) == 0 {
		levels = []float64{0.1}
	}
	rng := rand.New(rand.NewSource(w.Seed))
	qs := make([]rrq.Query, 0, w.Queries)
	for i := 0; i < w.Queries; i++ {
		if len(qs) > 0 && rng.Float64() < w.Repeat {
			qs = append(qs, qs[rng.Intn(len(qs))])
			continue
		}
		qs = append(qs, rrq.Query{
			Q:       ds.RandomQuery(w.Seed + int64(i)*7919),
			K:       kmin + rng.Intn(kmax-kmin+1),
			Epsilon: levels[rng.Intn(len(levels))],
		})
	}
	return qs
}

// Config wires one simulation run. Index, Admission and Queries are
// required; everything else defaults sensibly.
type Config struct {
	Index     *rrq.Index
	Admission *server.Admission
	Tenants   *server.TenantBudgets // optional post-paid work metering

	Queries []rrq.Query

	// Clients is the closed-loop concurrency (default 1). Ignored when
	// ArrivalRate selects the open loop.
	Clients int

	// ArrivalRate > 0 switches to the open loop: arrivals per second with
	// exponential interarrival gaps seeded by ArrivalSeed.
	ArrivalRate float64
	ArrivalSeed int64

	// TenantCount spreads requests round-robin over this many synthetic
	// tenants ("t0", "t1", ...) when Tenants is set. Default 1.
	TenantCount int

	// Timeout bounds each request's context (queue wait + solve). 0 = none.
	Timeout time.Duration

	// AnytimeBudget > 0 mirrors the server's graceful degradation: a
	// request the admission controller sheds is answered on the anytime
	// tier under this wall-clock budget instead of failing, and counts as
	// Degraded in the report.
	AnytimeBudget time.Duration
}

// Report aggregates one run. Latency percentiles cover completed solves
// only and include queue wait — the latency a client actually observed.
type Report struct {
	Policy         string  `json:"policy"`
	Requests       int     `json:"requests"`
	Solved         int     `json:"solved"`
	Shed           int     `json:"shed"`
	Degraded       int     `json:"degraded"`
	TenantRejected int     `json:"tenant_rejected"`
	Failed         int     `json:"failed"`
	CacheHits      int     `json:"cache_hits"`
	CacheBounds    int     `json:"cache_bound_hits"`
	ElapsedNs      int64   `json:"elapsed_ns"`
	P50Ns          int64   `json:"p50_ns"`
	P99Ns          int64   `json:"p99_ns"`
	MeanNs         int64   `json:"mean_ns"`
	MaxNs          int64   `json:"max_ns"`
	QPS            float64 `json:"solved_per_sec"`
	ShedRate       float64 `json:"shed_rate"`
}

// outcome codes recorded per request slot.
const (
	ocPending = iota
	ocSolved
	ocSolvedCacheHit
	ocSolvedCacheBound
	ocSolvedDegraded
	ocShed
	ocTenantRejected
	ocFailed
)

// runner owns the per-request slots; slot i is written only by the
// goroutine that claimed query i, so aggregation needs no locks.
type runner struct {
	cfg     Config
	outcome []uint8
	latNs   []int64
}

// Run replays cfg.Queries through the admission controller and index and
// aggregates the outcome. The context cancels the whole run.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Index == nil {
		return Report{}, errors.New("sim: Config.Index is required")
	}
	if cfg.Admission == nil {
		return Report{}, errors.New("sim: Config.Admission is required")
	}
	if len(cfg.Queries) == 0 {
		return Report{}, errors.New("sim: empty query stream")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.TenantCount <= 0 {
		cfg.TenantCount = 1
	}
	r := &runner{
		cfg:     cfg,
		outcome: make([]uint8, len(cfg.Queries)),
		latNs:   make([]int64, len(cfg.Queries)),
	}

	start := time.Now()
	if cfg.ArrivalRate > 0 {
		r.openLoop(ctx)
	} else {
		r.closedLoop(ctx)
	}
	return r.report(time.Since(start)), nil
}

// closedLoop runs Clients workers, each claiming the next unclaimed query
// as soon as its previous request resolves.
func (r *runner) closedLoop(ctx context.Context) {
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range r.cfg.Queries {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for c := 0; c < r.cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r.do(ctx, i)
			}
		}()
	}
	wg.Wait()
}

// openLoop spawns one goroutine per arrival, paced by seeded exponential
// interarrival gaps, regardless of how many requests are still in flight.
func (r *runner) openLoop(ctx context.Context) {
	rng := rand.New(rand.NewSource(r.cfg.ArrivalSeed))
	var wg sync.WaitGroup
	for i := range r.cfg.Queries {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.do(ctx, i)
		}(i)
		gap := time.Duration(rng.ExpFloat64() / r.cfg.ArrivalRate * float64(time.Second))
		select {
		case <-time.After(gap):
		case <-ctx.Done():
		}
	}
	wg.Wait()
}

// do issues request i: tenant admission, controller admission, solve.
func (r *runner) do(ctx context.Context, i int) {
	cfg := r.cfg
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	tenant := "t" + strconv.Itoa(i%cfg.TenantCount)
	start := time.Now()
	if cfg.Tenants != nil {
		if _, err := cfg.Tenants.Admit(tenant, start); err != nil {
			r.outcome[i] = ocTenantRejected
			return
		}
	}
	release, err := cfg.Admission.Acquire(ctx)
	if err != nil {
		var shed *server.ShedError
		if errors.As(err, &shed) {
			if cfg.AnytimeBudget > 0 {
				// Graceful degradation, as the server deploys it: answer on
				// the anytime tier without a solve slot.
				res, err := cfg.Index.SolveContext(ctx, cfg.Queries[i], rrq.WithAnytime(cfg.AnytimeBudget))
				r.latNs[i] = time.Since(start).Nanoseconds()
				if err != nil {
					r.outcome[i] = ocFailed
					return
				}
				if cfg.Tenants != nil {
					cfg.Tenants.Charge(tenant, server.WorkUnits(res.Stats), time.Now())
				}
				r.outcome[i] = ocSolvedDegraded
				return
			}
			r.outcome[i] = ocShed
		} else {
			r.outcome[i] = ocFailed
		}
		return
	}
	solveStart := time.Now()
	res, err := cfg.Index.SolveContext(ctx, cfg.Queries[i])
	release(time.Since(solveStart))
	r.latNs[i] = time.Since(start).Nanoseconds()
	if err != nil {
		r.outcome[i] = ocFailed
		return
	}
	if cfg.Tenants != nil {
		cfg.Tenants.Charge(tenant, server.WorkUnits(res.Stats), time.Now())
	}
	switch res.Cache {
	case rrq.CacheHit:
		r.outcome[i] = ocSolvedCacheHit
	case rrq.CacheInner, rrq.CacheOuter:
		r.outcome[i] = ocSolvedCacheBound
	default:
		r.outcome[i] = ocSolved
	}
}

// report folds the per-slot outcomes into the aggregate.
func (r *runner) report(elapsed time.Duration) Report {
	rep := Report{
		Policy:    string(r.cfg.Admission.Policy()),
		Requests:  len(r.cfg.Queries),
		ElapsedNs: elapsed.Nanoseconds(),
	}
	var lats []int64
	for i, oc := range r.outcome {
		switch oc {
		case ocSolved, ocSolvedCacheHit, ocSolvedCacheBound, ocSolvedDegraded:
			rep.Solved++
			lats = append(lats, r.latNs[i])
			if oc == ocSolvedCacheHit {
				rep.CacheHits++
			} else if oc == ocSolvedCacheBound {
				rep.CacheBounds++
			} else if oc == ocSolvedDegraded {
				rep.Degraded++
			}
		case ocShed:
			rep.Shed++
		case ocTenantRejected:
			rep.TenantRejected++
		default:
			rep.Failed++
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		var sum int64
		for _, l := range lats {
			sum += l
		}
		rep.P50Ns = percentile(lats, 0.50)
		rep.P99Ns = percentile(lats, 0.99)
		rep.MeanNs = sum / int64(len(lats))
		rep.MaxNs = lats[len(lats)-1]
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Solved) / elapsed.Seconds()
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	}
	return rep
}

// percentile reads the p-quantile from an ascending-sorted slice by the
// nearest-rank method.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the report as the one-line summary rrqsim prints.
func (rep Report) String() string {
	return fmt.Sprintf(
		"policy=%s requests=%d solved=%d shed=%d (%.0f%%) degraded=%d rejected=%d failed=%d cache=%d+%d p50=%v p99=%v qps=%.0f",
		rep.Policy, rep.Requests, rep.Solved, rep.Shed, 100*rep.ShedRate, rep.Degraded,
		rep.TenantRejected, rep.Failed, rep.CacheHits, rep.CacheBounds,
		time.Duration(rep.P50Ns).Round(time.Microsecond),
		time.Duration(rep.P99Ns).Round(time.Microsecond),
		rep.QPS)
}
