package sim

import (
	"context"
	"testing"
	"time"

	"rrq"
	"rrq/internal/faultinject"
	"rrq/internal/server"
)

func simIndex(t *testing.T, cacheSize int) (*rrq.Dataset, *rrq.Index) {
	t.Helper()
	ds := rrq.SyntheticDataset(rrq.Independent, 200, 2, 11)
	opts := []rrq.Option{rrq.WithAlgorithm(rrq.SweepingAlgo)}
	if cacheSize > 0 {
		opts = append(opts, rrq.WithResultCache(cacheSize))
	}
	ix, err := rrq.BuildIndex(ds, opts...)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	return ds, ix
}

func TestGenerateDeterministic(t *testing.T) {
	ds, _ := simIndex(t, 0)
	w := Workload{Queries: 50, KMin: 2, KMax: 6, EpsLevels: []float64{0.05, 0.1, 0.2}, Repeat: 0.4, Seed: 7}
	a, b := w.Generate(ds), w.Generate(ds)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("stream lengths %d, %d, want 50", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("query %d differs across same-seed generations:\n  %s\n  %s", i, a[i].Key(), b[i].Key())
		}
		if a[i].K < 2 || a[i].K > 6 {
			t.Fatalf("query %d rank %d outside [2,6]", i, a[i].K)
		}
	}
	other := Workload{Queries: 50, KMin: 2, KMax: 6, EpsLevels: []float64{0.05, 0.1, 0.2}, Repeat: 0.4, Seed: 8}.Generate(ds)
	diff := 0
	for i := range a {
		if a[i].Key() != other[i].Key() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds generated identical streams")
	}
}

func TestGenerateRepeatsCreateLocality(t *testing.T) {
	ds, _ := simIndex(t, 0)
	qs := Workload{Queries: 100, KMin: 3, KMax: 5, EpsLevels: []float64{0.1}, Repeat: 0.6, Seed: 3}.Generate(ds)
	seen := make(map[string]bool)
	repeats := 0
	for _, q := range qs {
		if seen[q.Key()] {
			repeats++
		}
		seen[q.Key()] = true
	}
	if repeats < 20 {
		t.Fatalf("Repeat=0.6 produced only %d repeated queries out of 100", repeats)
	}
}

func TestClosedLoopAlwaysPolicySolvesEverything(t *testing.T) {
	ds, ix := simIndex(t, 256)
	qs := Workload{Queries: 60, KMin: 2, KMax: 5, EpsLevels: []float64{0.05, 0.1}, Repeat: 0.5, Seed: 1}.Generate(ds)
	rep, err := Run(context.Background(), Config{
		Index:     ix,
		Admission: server.NewAdmission(server.AdmitAlways, 2, 0),
		Queries:   qs,
		Clients:   4,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Solved != 60 || rep.Shed != 0 || rep.Failed != 0 {
		t.Fatalf("always policy: solved=%d shed=%d failed=%d, want 60/0/0", rep.Solved, rep.Shed, rep.Failed)
	}
	if rep.CacheHits == 0 {
		t.Fatalf("Repeat=0.5 workload over a cached index produced no cache hits: %+v", rep)
	}
	if rep.P50Ns <= 0 || rep.P99Ns < rep.P50Ns || rep.MaxNs < rep.P99Ns {
		t.Fatalf("implausible percentiles: p50=%d p99=%d max=%d", rep.P50Ns, rep.P99Ns, rep.MaxNs)
	}
	if rep.Policy != "always" {
		t.Fatalf("Policy = %q, want always", rep.Policy)
	}
}

func TestWarmCacheBeatsNoCache(t *testing.T) {
	ds, cold := simIndex(t, 0)
	_, warm := simIndex(t, 256)
	qs := Workload{Queries: 80, KMin: 2, KMax: 4, EpsLevels: []float64{0.1}, Repeat: 0.7, Seed: 5}.Generate(ds)
	run := func(ix *rrq.Index) Report {
		rep, err := Run(context.Background(), Config{
			Index:     ix,
			Admission: server.NewAdmission(server.AdmitAlways, 4, 0),
			Queries:   qs,
			Clients:   4,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rep
	}
	coldRep, warmRep := run(cold), run(warm)
	if coldRep.CacheHits != 0 {
		t.Fatalf("no-cache index reported %d cache hits", coldRep.CacheHits)
	}
	if warmRep.CacheHits == 0 {
		t.Fatalf("cached index reported no hits on a Repeat=0.7 stream")
	}
	if coldRep.Solved != 80 || warmRep.Solved != 80 {
		t.Fatalf("solved %d/%d, want 80/80", coldRep.Solved, warmRep.Solved)
	}
}

func TestOpenLoopCapPolicySheds(t *testing.T) {
	ds, ix := simIndex(t, 0)
	qs := Workload{Queries: 40, KMin: 3, KMax: 6, EpsLevels: []float64{0.1}, Repeat: 0, Seed: 9}.Generate(ds)
	// One solve slot, zero queue, and — because a 200-point 2-d sweep
	// resolves in microseconds, faster than arrivals can pile up — a 20ms
	// injected delay per solve so requests genuinely overlap. At 20k
	// arrivals/s the whole stream lands while the first solve still holds
	// the slot: the cap policy must shed, and the outcomes must account
	// for every request.
	ctx := faultinject.ContextWith(context.Background(),
		faultinject.New(&faultinject.Fault{Point: faultinject.SolveStart, Delay: 20 * time.Millisecond}))
	rep, err := Run(ctx, Config{
		Index:       ix,
		Admission:   server.NewAdmission(server.AdmitCap, 1, 0),
		Queries:     qs,
		ArrivalRate: 20000,
		ArrivalSeed: 2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := rep.Solved + rep.Shed + rep.TenantRejected + rep.Failed; got != rep.Requests {
		t.Fatalf("outcomes %d don't sum to requests %d: %+v", got, rep.Requests, rep)
	}
	if rep.Shed == 0 {
		t.Fatalf("cap policy with capacity=1 queue=0 at 20k arrivals/s shed nothing: %+v", rep)
	}
	if rep.ShedRate <= 0 || rep.ShedRate > 1 {
		t.Fatalf("shed rate %v out of range", rep.ShedRate)
	}
}

// With an anytime budget, requests the cap policy would shed are answered
// on the anytime tier and counted as Degraded instead.
func TestOpenLoopAnytimeDegradesInsteadOfShedding(t *testing.T) {
	ds, ix := simIndex(t, 0)
	qs := Workload{Queries: 40, KMin: 3, KMax: 6, EpsLevels: []float64{0.1}, Repeat: 0, Seed: 9}.Generate(ds)
	// Same overload shape as TestOpenLoopCapPolicySheds; only the
	// degradation knob differs.
	ctx := faultinject.ContextWith(context.Background(),
		faultinject.New(&faultinject.Fault{Point: faultinject.SolveStart, Delay: 20 * time.Millisecond}))
	rep, err := Run(ctx, Config{
		Index:         ix,
		Admission:     server.NewAdmission(server.AdmitCap, 1, 0),
		Queries:       qs,
		ArrivalRate:   20000,
		ArrivalSeed:   2,
		AnytimeBudget: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Shed != 0 {
		t.Fatalf("anytime degradation left %d requests shed: %+v", rep.Shed, rep)
	}
	if rep.Degraded == 0 {
		t.Fatalf("overloaded run degraded nothing: %+v", rep)
	}
	if rep.Solved+rep.Failed != rep.Requests {
		t.Fatalf("outcomes don't sum to requests: %+v", rep)
	}
	if rep.Degraded > rep.Solved {
		t.Fatalf("degraded %d exceeds solved %d", rep.Degraded, rep.Solved)
	}
}

func TestTenantMeteringRejects(t *testing.T) {
	ds, ix := simIndex(t, 0)
	qs := Workload{Queries: 30, KMin: 5, KMax: 8, EpsLevels: []float64{0.2}, Repeat: 0, Seed: 4}.Generate(ds)
	// A starvation-level budget: one tenant, tiny burst, near-zero refill.
	// The first solve charges real work units and drives the balance
	// negative; later requests must be rejected.
	rep, err := Run(context.Background(), Config{
		Index:       ix,
		Admission:   server.NewAdmission(server.AdmitAlways, 2, 0),
		Tenants:     server.NewTenantBudgets(0.001, 1),
		TenantCount: 1,
		Queries:     qs,
		Clients:     1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TenantRejected == 0 {
		t.Fatalf("starved tenant was never rejected: %+v", rep)
	}
	if rep.Solved == 0 {
		t.Fatalf("no request solved before the budget drained: %+v", rep)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	_, ix := simIndex(t, 0)
	adm := server.NewAdmission(server.AdmitAlways, 1, 0)
	if _, err := Run(context.Background(), Config{Admission: adm, Queries: []rrq.Query{{}}}); err == nil {
		t.Fatal("nil Index accepted")
	}
	if _, err := Run(context.Background(), Config{Index: ix, Queries: []rrq.Query{{}}}); err == nil {
		t.Fatal("nil Admission accepted")
	}
	if _, err := Run(context.Background(), Config{Index: ix, Admission: adm}); err == nil {
		t.Fatal("empty query stream accepted")
	}
}

func TestRunRespectsContextCancel(t *testing.T) {
	ds, ix := simIndex(t, 0)
	qs := Workload{Queries: 200, KMin: 2, KMax: 4, EpsLevels: []float64{0.1}, Repeat: 0, Seed: 6}.Generate(ds)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Report, 1)
	go func() {
		rep, _ := Run(ctx, Config{
			Index:     ix,
			Admission: server.NewAdmission(server.AdmitAlways, 1, 0),
			Queries:   qs,
			Clients:   2,
		})
		done <- rep
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after context cancel")
	}
}
