package expt

// The batch experiment measures the parallel batch-query engine: one shared
// core.Prepared (with the k-skyband prefilter) serving a fixed query set
// through worker pools of increasing width. It is an extension beyond the
// paper's figures — the paper times queries one at a time — and quantifies
// the serving-path scaling of the refactored solver stack.

import (
	"fmt"
	"math/rand"
	"time"

	"rrq/internal/core"
	"rrq/internal/dataset"
)

func init() {
	Registry["batch"] = Batch
}

// batchQueries is the fixed number of queries per batch run.
const batchQueries = 64

// Batch times SolveBatch with E-PT on the default 4-d Independent workload
// for worker counts {1, 4, 8} (or just Scale.Workers when set), reporting
// mean per-query time and the speedup over the single-worker run.
func Batch(sc Scale) []*Table {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed))
	pts := sc.synthetic(dataset.Independent, sc.size(), defaultDim)
	prep, err := core.Prepare(pts, defaultDim, true)
	if err != nil {
		panic(err)
	}
	queries := make([]core.Query, batchQueries)
	for i := range queries {
		queries[i] = core.Query{Q: dataset.RandQuery(rng, pts), K: defaultK, Eps: defaultEps}
	}
	// Warm the skyband cache so the first row is not charged for the shared
	// preprocessing (the paper's protocol excludes preprocessing as well).
	prep.PointsFor(defaultK)

	workerCounts := []int{1, 4, 8}
	if sc.Workers > 0 {
		workerCounts = []int{sc.Workers}
	}

	t := &Table{ID: "batch", Title: "Batch-query engine scaling (E-PT, 4-d Indep, 64 queries)", ParamCol: "workers"}
	solver := core.EPTSolver{}
	base := 0.0
	for _, w := range workerCounts {
		ctx, cancel := cellCtx(sc)
		start := time.Now()
		outs := core.SolveBatch(ctx, solver, prep, queries, w)
		total := time.Since(start).Seconds()
		cancel()
		var failed error
		for _, o := range outs {
			if o.Err != nil {
				failed = o.Err
				break
			}
		}
		row := Row{Param: fmt.Sprintf("%d", w)}
		if failed != nil {
			row.Cells = []Cell{{Algo: "E-PT batch", Skipped: true, Note: failed.Error()}}
		} else {
			row.Cells = []Cell{{Algo: "E-PT batch", Seconds: total / batchQueries}}
			if base == 0 {
				base = total
			}
			row.Extra = map[string]float64{"speedup": base / total}
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}
