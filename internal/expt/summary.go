package expt

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Speedup aggregates, across a table's rows, how much faster a reference
// algorithm is than each competitor (geometric mean of per-row ratios over
// the rows where both completed).
type Speedup struct {
	Reference string
	Versus    string
	Factor    float64 // geometric mean of versus/reference times
	Rows      int     // rows where both algorithms completed
	Skipped   int     // rows where the competitor blew a budget
}

// Summarize computes speedups of reference against every other algorithm
// appearing in the table.
func Summarize(t *Table, reference string) []Speedup {
	times := map[string][]float64{} // algo -> per-row seconds (NaN = skipped)
	var order []string
	for _, r := range t.Rows {
		byAlgo := map[string]Cell{}
		for _, c := range r.Cells {
			byAlgo[c.Algo] = c
			if _, ok := times[c.Algo]; !ok {
				order = append(order, c.Algo)
			}
			_ = byAlgo
		}
		for _, a := range order {
			c, ok := byAlgo[a]
			switch {
			case !ok || c.Skipped:
				times[a] = append(times[a], math.NaN())
			default:
				times[a] = append(times[a], c.Seconds)
			}
		}
	}
	ref, ok := times[reference]
	if !ok {
		return nil
	}
	var out []Speedup
	for _, a := range order {
		if a == reference {
			continue
		}
		sp := Speedup{Reference: reference, Versus: a}
		logSum := 0.0
		for i, v := range times[a] {
			switch {
			case math.IsNaN(v):
				sp.Skipped++
			case i < len(ref) && !math.IsNaN(ref[i]) && ref[i] > 0 && v > 0:
				logSum += math.Log(v / ref[i])
				sp.Rows++
			}
		}
		if sp.Rows > 0 {
			sp.Factor = math.Exp(logSum / float64(sp.Rows))
		}
		out = append(out, sp)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Versus < out[b].Versus })
	return out
}

// PrintSummary writes the speedup lines for a table.
func PrintSummary(w io.Writer, t *Table, reference string) {
	for _, sp := range Summarize(t, reference) {
		if sp.Rows == 0 {
			fmt.Fprintf(w, "%s: %s vs %s: no comparable rows (%d over budget)\n",
				t.ID, sp.Reference, sp.Versus, sp.Skipped)
			continue
		}
		if sp.Factor >= 1 {
			fmt.Fprintf(w, "%s: %s is %.1f× faster than %s (geo-mean over %d rows; %d rows over budget)\n",
				t.ID, sp.Reference, sp.Factor, sp.Versus, sp.Rows, sp.Skipped)
		} else {
			fmt.Fprintf(w, "%s: %s is %.1f× slower than %s (geo-mean over %d rows; %d rows over budget)\n",
				t.ID, sp.Reference, 1/sp.Factor, sp.Versus, sp.Rows, sp.Skipped)
		}
	}
}
