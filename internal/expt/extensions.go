package expt

// Extension experiments beyond the paper's figures: the E-PT acceleration
// ablation, the dynamic-maintenance comparison (the paper's future work),
// and a sensitivity sweep of the user study's regret threshold.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"rrq/internal/core"
	"rrq/internal/dataset"
	"rrq/internal/index"
	"rrq/internal/study"
	"rrq/internal/vec"
)

func init() {
	Registry["ext-ablation"] = ExtAblation
	Registry["ext-dynamic"] = ExtDynamic
	Registry["ext-study"] = ExtStudy
}

// ExtAblation times E-PT with each §5.1.2 acceleration disabled in turn on
// the default 4-d workload, quantifying the published design choices.
func ExtAblation(sc Scale) []*Table {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed))
	pts := sc.synthetic(dataset.Independent, sc.size(), defaultDim)
	in := prepare(pts, defaultK, defaultEps, sc.Repeats, rng)
	variants := []struct {
		name string
		opt  core.EPTOptions
	}{
		{"full", core.EPTOptions{}},
		{"no-reduction", core.EPTOptions{NoReduction: true}},
		{"no-ordering", core.EPTOptions{NoOrdering: true}},
		{"no-lazy-split", core.EPTOptions{NoLazySplit: true}},
		{"all-disabled", core.EPTOptions{NoReduction: true, NoOrdering: true, NoLazySplit: true}},
	}
	t := &Table{ID: "ext-ablation", Title: "E-PT acceleration ablation (4-d Indep)", ParamCol: "variant"}
	for _, v := range variants {
		ctx, cancel := cellCtx(sc)
		var planes, nodes int
		secs, err := timeIt(in, sc.CellBudget, func(q core.Query) error {
			_, st, e := core.EPTContext(ctx, in.pts, q, v.opt)
			planes, nodes = st.PlanesInserted, st.NodesCreated
			return e
		})
		cancel()
		row := Row{Param: v.name, Cells: []Cell{cellOrSkip("E-PT", secs, err)}}
		if err == nil {
			row.Extra = map[string]float64{
				"planes": float64(planes),
				"nodes":  float64(nodes),
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// ExtDynamic compares maintaining a region under insertions through the
// snapshot index (delta-maintained preprocessing, solve per epoch) against
// re-solving fully from scratch after every insertion.
func ExtDynamic(sc Scale) []*Table {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed))
	pts := sc.synthetic(dataset.Independent, sc.size()/10, 3)
	in := prepare(pts, defaultK, defaultEps, 1, rng)
	q := core.Query{Q: in.queries[0], K: in.k, Eps: in.eps}

	t := &Table{ID: "ext-dynamic", Title: "Dynamic maintenance vs re-solve (3-d Indep)", ParamCol: "inserts"}
	for _, inserts := range []int{10, 50, 200} {
		// Fresh inserts drawn per setting, identical for both strategies.
		newPts := make([]vec.Vec, 0, inserts)
		for i := 0; i < inserts; i++ {
			newPts = append(newPts, dataset.RandQuery(rng, pts))
		}

		ix, err := index.Build(in.pts, 3, index.Options{Kmax: q.K})
		if err != nil {
			panic(err)
		}
		solver := core.EPTSolver{}
		start := time.Now()
		for _, p := range newPts {
			if _, err := ix.Insert(p); err != nil {
				panic(err)
			}
			if _, _, err := solver.Solve(context.Background(), ix.Snapshot().Prepared(nil), q); err != nil {
				panic(err)
			}
		}
		incSecs := time.Since(start).Seconds()

		cur := append([]vec.Vec(nil), in.pts...)
		start = time.Now()
		resolveErr := error(nil)
		ctx, cancel := cellCtx(sc)
		for _, p := range newPts {
			cur = append(cur, p)
			if _, _, err := core.EPTContext(ctx, cur, q, core.EPTOptions{}); err != nil {
				resolveErr = err
				break
			}
		}
		cancel()
		resSecs := time.Since(start).Seconds()

		row := Row{Param: fmt.Sprintf("%d", inserts), Cells: []Cell{
			{Algo: "Dynamic", Seconds: incSecs},
			cellOrSkip("Re-solve", resSecs, resolveErr),
		}}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// ExtStudy sweeps the user study's regret threshold, showing the interest
// and rank findings of Figure 7 are not an artifact of the 0.1 cut-off.
func ExtStudy(sc Scale) []*Table {
	sc = sc.withDefaults()
	carN := 300
	if sc.Full {
		carN = 1000
	}
	if sc.SizeOverride > 0 {
		carN = sc.SizeOverride
	}
	cars, err := dataset.Real(dataset.Car, carN)
	if err != nil {
		panic(err)
	}
	t := &Table{ID: "ext-study", Title: "User study threshold sensitivity (x = 5)", ParamCol: "threshold"}
	for _, th := range []float64{0.05, 0.1, 0.15} {
		res := study.Run(cars, []int{5}, study.Config{Seed: sc.Seed, Threshold: th})[0]
		t.Rows = append(t.Rows, Row{
			Param: fmt.Sprintf("%.2f", th),
			Extra: map[string]float64{
				"interest%":    100 * res.PercentInterest,
				"avg rank":     res.AvgRank,
				"missed by x%": 100 * res.MissedByTopX,
			},
		})
	}
	return []*Table{t}
}
