package expt

import (
	"fmt"
	"math/rand"

	"rrq/internal/core"
	"rrq/internal/dataset"
	"rrq/internal/study"
	"rrq/internal/vec"
)

// Default parameters of §6.1: k = 10, ε = 0.1, d = 4, n = 400,000, Indep.
const (
	defaultK   = 10
	defaultEps = 0.1
	defaultDim = 4
)

func (s Scale) kSweep() []int {
	if s.Full {
		return []int{1, 5, 10, 20, 30, 40}
	}
	return []int{1, 5, 10, 20}
}

func (s Scale) epsSweep() []float64 {
	return []float64{0, 0.05, 0.1, 0.15, 0.2}
}

// synthetic builds the default synthetic dataset for the scale.
func (s Scale) synthetic(t dataset.Type, n, d int) []vec.Vec {
	return dataset.Generate(t, n, d, s.Seed)
}

// Fig7 reproduces the user study (Figure 7): percentage of interest and
// average rank of the interesting cars among those with x-regratio < 0.1,
// for x ∈ {1, 5, 10}.
func Fig7(sc Scale) []*Table {
	sc = sc.withDefaults()
	carN := 400
	if sc.Full {
		carN = 2000
	}
	if sc.SizeOverride > 0 {
		carN = sc.SizeOverride
	}
	cars, err := dataset.Real(dataset.Car, carN)
	if err != nil {
		panic(err)
	}
	results := study.Run(cars, []int{1, 5, 10}, study.Config{Seed: sc.Seed})
	t := &Table{ID: "fig7", Title: "User study on Car: interest in small-regret cars", ParamCol: "x"}
	for _, r := range results {
		t.Rows = append(t.Rows, Row{
			Param: fmt.Sprintf("%d", r.X),
			Extra: map[string]float64{
				"interest%":    100 * r.PercentInterest,
				"avg rank":     r.AvgRank,
				"max rank":     float64(r.MaxRank),
				"missed by x%": 100 * r.MissedByTopX,
			},
		})
	}
	return []*Table{t}
}

// apcAccuracy measures A-PC output quality per §6.3: the share of 10,000
// random utility vectors that qualify (per E-PT) and are also covered by
// the A-PC answer.
func apcAccuracy(pts []vec.Vec, q core.Query, samples int, seed int64) (float64, float64) {
	exact, err := core.EPT(pts, q)
	if err != nil {
		panic(err)
	}
	reg, err := core.APC(pts, q, core.APCOptions{Samples: samples, Seed: seed})
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	hit, total := 0, 0
	for i := 0; i < 10000; i++ {
		u := vec.RandSimplex(rng, q.Q.Dim())
		if !exact.Contains(u) {
			continue
		}
		total++
		if reg.Contains(u) {
			hit++
		}
	}
	if total == 0 {
		return 1, 0
	}
	return float64(hit) / float64(total), float64(total)
}

// Fig8a reproduces Figure 8(a): A-PC accuracy versus sample size N on 2-d
// and 4-d independent data.
func Fig8a(sc Scale) []*Table {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed))
	t := &Table{ID: "fig8a", Title: "A-PC accuracy vs sample size N (Indep)", ParamCol: "N"}
	n := sc.size()
	insts := map[int]instance{}
	for _, d := range []int{2, 4} {
		pts := sc.synthetic(dataset.Independent, n, d)
		insts[d] = prepare(pts, defaultK, defaultEps, sc.Repeats, rng)
	}
	for _, N := range []int{10, 30, 100, 300, 1000} {
		row := Row{Param: fmt.Sprintf("%d", N), Extra: map[string]float64{}}
		for _, d := range []int{2, 4} {
			in := insts[d]
			// Average the accuracy over the query pool: a single query
			// yields a step function (its region is either sampled or
			// missed), while the paper's curve aggregates many queries.
			var sum float64
			for qi, qp := range in.queries {
				q := core.Query{Q: qp, K: in.k, Eps: in.eps}
				acc, _ := apcAccuracy(in.pts, q, N, sc.Seed+int64(qi))
				sum += acc
			}
			row.Extra[fmt.Sprintf("acc d=%d", d)] = sum / float64(len(in.queries))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// Fig8b reproduces Figure 8(b): A-PC execution time versus sample size N.
func Fig8b(sc Scale) []*Table {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed))
	t := &Table{ID: "fig8b", Title: "A-PC time vs sample size N (Indep)", ParamCol: "N"}
	pts := sc.synthetic(dataset.Independent, sc.size(), defaultDim)
	in := prepare(pts, defaultK, defaultEps, sc.Repeats, rng)
	for _, N := range []int{10, 30, 100, 300, 1000} {
		secs, err := timeIt(in, sc.CellBudget, func(q core.Query) error {
			_, e := core.APC(in.pts, q, core.APCOptions{Samples: N, Seed: 1})
			return e
		})
		t.Rows = append(t.Rows, Row{
			Param: fmt.Sprintf("%d", N),
			Cells: []Cell{cellOrSkip("A-PC", secs, err)},
		})
	}
	return []*Table{t}
}

// sweepK builds a vary-k table on the given points.
func sweepK(sc Scale, id, title string, pts []vec.Vec, algos algoSet) *Table {
	rng := rand.New(rand.NewSource(sc.Seed))
	t := &Table{ID: id, Title: title, ParamCol: "k"}
	for _, k := range sc.kSweep() {
		in := prepare(pts, k, defaultEps, sc.Repeats, rng)
		t.Rows = append(t.Rows, Row{Param: fmt.Sprintf("%d", k), Cells: run(in, algos, sc)})
	}
	return t
}

// sweepEps builds a vary-ε table on the given points.
func sweepEps(sc Scale, id, title string, pts []vec.Vec, algos algoSet) *Table {
	rng := rand.New(rand.NewSource(sc.Seed))
	t := &Table{ID: id, Title: title, ParamCol: "eps"}
	for _, eps := range sc.epsSweep() {
		in := prepare(pts, defaultK, eps, sc.Repeats, rng)
		t.Rows = append(t.Rows, Row{Param: fmt.Sprintf("%.2f", eps), Cells: run(in, algos, sc)})
	}
	return t
}

// Fig9a / Fig9b: the 2-d synthetic comparison (Figure 9).
func Fig9a(sc Scale) []*Table {
	sc = sc.withDefaults()
	pts := sc.synthetic(dataset.Independent, sc.size(), 2)
	return []*Table{sweepK(sc, "fig9a", "2-d Indep, vary k", pts,
		algoSet{sweeping: true, ept: true, apc: true, lpcta: true, pba: true})}
}

func Fig9b(sc Scale) []*Table {
	sc = sc.withDefaults()
	pts := sc.synthetic(dataset.Independent, sc.size(), 2)
	return []*Table{sweepEps(sc, "fig9b", "2-d Indep, vary eps", pts,
		algoSet{sweeping: true, ept: true, apc: true, lpcta: true, pba: true})}
}

// Fig10a / Fig10b: the 4-d synthetic comparison (Figure 10).
func Fig10a(sc Scale) []*Table {
	sc = sc.withDefaults()
	pts := sc.synthetic(dataset.Independent, sc.size(), defaultDim)
	return []*Table{sweepK(sc, "fig10a", "4-d Indep, vary k", pts,
		algoSet{ept: true, apc: true, lpcta: true, pba: true})}
}

func Fig10b(sc Scale) []*Table {
	sc = sc.withDefaults()
	pts := sc.synthetic(dataset.Independent, sc.size(), defaultDim)
	return []*Table{sweepEps(sc, "fig10b", "4-d Indep, vary eps", pts,
		algoSet{ept: true, apc: true, lpcta: true, pba: true})}
}

// Fig11: scalability in the dimension d (Figure 11).
func Fig11(sc Scale) []*Table {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed))
	t := &Table{ID: "fig11", Title: "Indep, vary dimension d", ParamCol: "d"}
	for _, d := range []int{2, 3, 4, 5} {
		pts := sc.synthetic(dataset.Independent, sc.size(), d)
		in := prepare(pts, defaultK, defaultEps, sc.Repeats, rng)
		algos := algoSet{ept: true, apc: true, lpcta: true, pba: true}
		if d == 2 {
			algos.sweeping = true
		}
		t.Rows = append(t.Rows, Row{Param: fmt.Sprintf("%d", d), Cells: run(in, algos, sc)})
	}
	return []*Table{t}
}

// Fig12: scalability in the dataset size n (Figure 12).
func Fig12(sc Scale) []*Table {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed))
	sizes := []int{5_000, 10_000, 20_000, 40_000}
	if sc.Full {
		sizes = []int{100_000, 200_000, 400_000, 800_000}
	}
	if sc.SizeOverride > 0 {
		sizes = []int{sc.SizeOverride, 2 * sc.SizeOverride}
	}
	t := &Table{ID: "fig12", Title: "4-d Indep, vary dataset size n", ParamCol: "n"}
	for _, n := range sizes {
		pts := sc.synthetic(dataset.Independent, n, defaultDim)
		in := prepare(pts, defaultK, defaultEps, sc.Repeats, rng)
		t.Rows = append(t.Rows, Row{
			Param: fmt.Sprintf("%d", n),
			Cells: run(in, algoSet{ept: true, apc: true, lpcta: true, pba: true}, sc),
		})
	}
	return []*Table{t}
}

// Fig13: the three data distributions (Figure 13).
func Fig13(sc Scale) []*Table {
	sc = sc.withDefaults()
	rng := rand.New(rand.NewSource(sc.Seed))
	t := &Table{ID: "fig13", Title: "4-d, vary dataset type", ParamCol: "type"}
	for _, typ := range []dataset.Type{dataset.Anticorrelated, dataset.Correlated, dataset.Independent} {
		pts := sc.synthetic(typ, sc.size(), defaultDim)
		in := prepare(pts, defaultK, defaultEps, sc.Repeats, rng)
		t.Rows = append(t.Rows, Row{
			Param: typ.String(),
			Cells: run(in, algoSet{ept: true, apc: true, lpcta: true, pba: true}, sc),
		})
	}
	return []*Table{t}
}

// realFigure builds the vary-k and vary-ε tables for one real dataset
// (Figures 14–17).
func realFigure(sc Scale, id string, name dataset.RealName) []*Table {
	sc = sc.withDefaults()
	maxN := 0
	if !sc.Full {
		maxN = 10_000
	}
	if sc.SizeOverride > 0 {
		maxN = sc.SizeOverride
	}
	pts, err := dataset.Real(name, maxN)
	if err != nil {
		panic(err)
	}
	d := pts[0].Dim()
	algos := algoSet{ept: true, apc: true, lpcta: true, pba: true}
	if d == 2 {
		algos.sweeping = true
	}
	return []*Table{
		sweepK(sc, id+"-k", fmt.Sprintf("%s (d=%d), vary k", name, d), pts, algos),
		sweepEps(sc, id+"-eps", fmt.Sprintf("%s (d=%d), vary eps", name, d), pts, algos),
	}
}

// Fig14 – Fig17: the four real datasets.
func Fig14(sc Scale) []*Table { return realFigure(sc, "fig14", dataset.Island) }
func Fig15(sc Scale) []*Table { return realFigure(sc, "fig15", dataset.Weather) }
func Fig16(sc Scale) []*Table { return realFigure(sc, "fig16", dataset.Car) }
func Fig17(sc Scale) []*Table { return realFigure(sc, "fig17", dataset.NBA) }
