package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV emits the table in machine-readable form for external plotting:
// one row per parameter value, one column per algorithm (seconds; empty for
// skipped cells) followed by the extra series.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	var algos []string
	seen := map[string]bool{}
	extras := map[string]bool{}
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			if !seen[c.Algo] {
				seen[c.Algo] = true
				algos = append(algos, c.Algo)
			}
		}
		for k := range r.Extra {
			extras[k] = true
		}
	}
	var extraCols []string
	for k := range extras {
		extraCols = append(extraCols, k)
	}
	sort.Strings(extraCols)

	head := append([]string{t.ParamCol}, algos...)
	head = append(head, extraCols...)
	if err := cw.Write(head); err != nil {
		return err
	}
	for _, r := range t.Rows {
		row := []string{r.Param}
		byAlgo := map[string]Cell{}
		for _, c := range r.Cells {
			byAlgo[c.Algo] = c
		}
		for _, a := range algos {
			c, ok := byAlgo[a]
			if !ok || c.Skipped {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%g", c.Seconds))
			}
		}
		for _, e := range extraCols {
			if v, ok := r.Extra[e]; ok {
				row = append(row, fmt.Sprintf("%g", v))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
