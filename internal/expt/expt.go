// Package expt is the experiment harness: it regenerates every figure of
// the paper's evaluation (§6) as a printed table of the same series the
// paper plots. Each figure has a registered runner; cmd/rrqbench drives
// them and EXPERIMENTS.md records paper-vs-measured shapes.
package expt

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"rrq/internal/baseline"
	"rrq/internal/core"
	"rrq/internal/dataset"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// Scale selects experiment sizing. Quick keeps every figure runnable in
// seconds; Full uses the paper's parameters (minutes to hours, and PBA+
// preprocessing hits its budget exactly where the paper reports >10⁴ s).
type Scale struct {
	Full       bool
	Seed       int64
	Repeats    int           // query points averaged per cell; default 5 quick, 30 full
	PBABudget  int           // node budget for PBA+ preprocessing
	CellBudget time.Duration // wall-clock cap per (figure row, algorithm) cell
	// SizeOverride, when > 0, replaces the default synthetic dataset size
	// and real-dataset cap — used by the smoke tests to run every figure
	// in miniature.
	SizeOverride int
	// Workers bounds the worker pool of the batch experiment; ≤ 0 lets the
	// experiment sweep its default worker counts.
	Workers int
}

func (s Scale) withDefaults() Scale {
	if s.Seed == 0 {
		s.Seed = 20240601
	}
	if s.Repeats == 0 {
		if s.Full {
			s.Repeats = 30
		} else {
			s.Repeats = 5
		}
	}
	if s.PBABudget == 0 {
		if s.Full {
			s.PBABudget = 2_000_000
		} else {
			s.PBABudget = 40_000
		}
	}
	if s.CellBudget == 0 {
		if s.Full {
			// The paper omits algorithms past 10⁴ seconds.
			s.CellBudget = 10_000 * time.Second
		} else {
			s.CellBudget = 10 * time.Second
		}
	}
	return s
}

// size returns the synthetic dataset cardinality for the scale.
func (s Scale) size() int {
	if s.SizeOverride > 0 {
		return s.SizeOverride
	}
	if s.Full {
		return 400_000
	}
	return 10_000
}

// Cell is one measurement: an algorithm's mean time on one parameter value.
type Cell struct {
	Algo    string
	Seconds float64
	Skipped bool
	Note    string
}

// Row is one x-axis value of a figure.
type Row struct {
	Param string
	Cells []Cell
	Extra map[string]float64 // non-timing series (accuracy, percentages…)
}

// Table is one printed figure.
type Table struct {
	ID       string
	Title    string
	ParamCol string
	Rows     []Row
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if len(t.Rows) == 0 {
		fmt.Fprintln(w, "(no rows)")
		return
	}
	// Column header order: algorithms by first appearance, then extras.
	var algos []string
	seen := map[string]bool{}
	extras := map[string]bool{}
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			if !seen[c.Algo] {
				seen[c.Algo] = true
				algos = append(algos, c.Algo)
			}
		}
		for k := range r.Extra {
			extras[k] = true
		}
	}
	var extraCols []string
	for k := range extras {
		extraCols = append(extraCols, k)
	}
	sort.Strings(extraCols)

	head := []string{t.ParamCol}
	for _, a := range algos {
		head = append(head, a+" (s)")
	}
	head = append(head, extraCols...)
	rows := [][]string{head}
	for _, r := range t.Rows {
		line := []string{r.Param}
		byAlgo := map[string]Cell{}
		for _, c := range r.Cells {
			byAlgo[c.Algo] = c
		}
		for _, a := range algos {
			c, ok := byAlgo[a]
			switch {
			case !ok:
				line = append(line, "-")
			case c.Skipped:
				line = append(line, ">budget")
			default:
				line = append(line, fmt.Sprintf("%.6f", c.Seconds))
			}
		}
		for _, e := range extraCols {
			if v, ok := r.Extra[e]; ok {
				line = append(line, fmt.Sprintf("%.4f", v))
			} else {
				line = append(line, "-")
			}
		}
		rows = append(rows, line)
	}
	widths := make([]int, len(head))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, r := range rows {
		var b strings.Builder
		for i, cell := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, b.String())
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", len(b.String())))
		}
	}
}

// instance is a prepared workload: k-skyband-pruned points plus query
// points, following the paper's protocol (random queries, preprocessing
// excluded from timings).
type instance struct {
	pts     []vec.Vec
	queries []vec.Vec
	k       int
	eps     float64
}

func prepare(pts []vec.Vec, k int, eps float64, repeats int, rng *rand.Rand) instance {
	band := skyband.KSkyband(pts, k)
	in := instance{pts: skyband.Select(pts, band), k: k, eps: eps}
	for i := 0; i < repeats; i++ {
		in.queries = append(in.queries, dataset.RandQuery(rng, pts))
	}
	return in
}

// errCellBudget marks a cell that ran past the scale's wall-clock budget —
// the harness analogue of the paper omitting results beyond 10⁴ seconds.
var errCellBudget = fmt.Errorf("exceeded the per-cell time budget")

// timeIt returns the mean wall time of f across the instance's queries,
// aborting with errCellBudget once the budget elapses.
func timeIt(in instance, budget time.Duration, f func(q core.Query) error) (float64, error) {
	start := time.Now()
	for _, qp := range in.queries {
		q := core.Query{Q: qp, K: in.k, Eps: in.eps}
		if err := f(q); err != nil {
			return 0, err
		}
		if budget > 0 && time.Since(start) > budget {
			return 0, errCellBudget
		}
	}
	return time.Since(start).Seconds() / float64(len(in.queries)), nil
}

// algoSet names the solvers compared in the timing figures.
type algoSet struct {
	sweeping bool
	ept      bool
	apc      bool
	lpcta    bool
	pba      bool
}

// cellCtx returns a context carrying the scale's per-cell wall-clock budget.
func cellCtx(sc Scale) (context.Context, context.CancelFunc) {
	if sc.CellBudget <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), sc.CellBudget)
}

// run measures every requested solver on the instance.
func run(in instance, algos algoSet, sc Scale) []Cell {
	var cells []Cell
	if algos.sweeping {
		secs, err := timeIt(in, sc.CellBudget, func(q core.Query) error {
			_, e := core.Sweeping(in.pts, q)
			return e
		})
		cells = append(cells, cellOrSkip("Sweeping", secs, err))
	}
	if algos.ept {
		ctx, cancel := cellCtx(sc)
		secs, err := timeIt(in, sc.CellBudget, func(q core.Query) error {
			_, _, e := core.EPTContext(ctx, in.pts, q, core.EPTOptions{})
			return e
		})
		cancel()
		cells = append(cells, cellOrSkip("E-PT", secs, err))
	}
	if algos.apc {
		ctx, cancel := cellCtx(sc)
		secs, err := timeIt(in, sc.CellBudget, func(q core.Query) error {
			_, _, e := core.APCContext(ctx, in.pts, q, core.APCOptions{Seed: 1})
			return e
		})
		cancel()
		cells = append(cells, cellOrSkip("A-PC", secs, err))
	}
	if algos.lpcta {
		ctx, cancel := cellCtx(sc)
		secs, err := timeIt(in, sc.CellBudget, func(q core.Query) error {
			_, _, e := baseline.LPCTAContext(ctx, in.pts, q)
			return e
		})
		cancel()
		cells = append(cells, cellOrSkip("LP-CTA", secs, err))
	}
	if algos.pba {
		cells = append(cells, runPBA(in, sc))
	}
	return cells
}

// runPBA builds the PBA+ index (preprocessing, excluded from the reported
// query time, exactly as §6.1 does) and times queries. A blown budget is
// reported as skipped — the analogue of the paper's ">10⁴ s" omissions.
func runPBA(in instance, sc Scale) Cell {
	ctx, cancel := cellCtx(sc)
	defer cancel()
	ix, err := baseline.BuildPBAContext(ctx, in.pts, in.k, sc.PBABudget)
	if err != nil {
		return Cell{Algo: "PBA+", Skipped: true, Note: err.Error()}
	}
	secs, err := timeIt(in, sc.CellBudget, func(q core.Query) error {
		_, e := ix.Query(q)
		return e
	})
	return cellOrSkip("PBA+", secs, err)
}

func cellOrSkip(name string, secs float64, err error) Cell {
	if err != nil {
		return Cell{Algo: name, Skipped: true, Note: err.Error()}
	}
	return Cell{Algo: name, Seconds: secs}
}

// Registry maps experiment ids to their runners.
var Registry = map[string]func(Scale) []*Table{
	"fig7":   Fig7,
	"fig8a":  Fig8a,
	"fig8b":  Fig8b,
	"fig9a":  Fig9a,
	"fig9b":  Fig9b,
	"fig10a": Fig10a,
	"fig10b": Fig10b,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"fig16":  Fig16,
	"fig17":  Fig17,
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
