package expt

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tiny returns a scale small enough for unit tests.
func tiny() Scale {
	return Scale{Seed: 3, Repeats: 1, PBABudget: 4_000, SizeOverride: 400, CellBudget: 2 * time.Second}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig7", "fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"ext-ablation", "ext-dynamic", "ext-study", "batch",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(IDs()), len(want))
	}
}

func TestTablePrint(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo", ParamCol: "k",
		Rows: []Row{
			{Param: "1", Cells: []Cell{{Algo: "E-PT", Seconds: 0.001}, {Algo: "PBA+", Skipped: true}}},
			{Param: "2", Cells: []Cell{{Algo: "E-PT", Seconds: 0.002}}, Extra: map[string]float64{"acc": 0.9}},
		},
	}
	var buf bytes.Buffer
	tbl.Print(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "E-PT", ">budget", "0.001", "acc", "0.9000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	empty := &Table{ID: "e", Title: "none", ParamCol: "k"}
	buf.Reset()
	empty.Print(&buf)
	if !strings.Contains(buf.String(), "(no rows)") {
		t.Error("empty table should print a placeholder")
	}
}

func TestScaleDefaults(t *testing.T) {
	s := Scale{}.withDefaults()
	if s.Repeats != 5 || s.Seed == 0 || s.PBABudget == 0 {
		t.Fatalf("quick defaults wrong: %+v", s)
	}
	f := Scale{Full: true}.withDefaults()
	if f.Repeats != 30 || f.size() != 400_000 {
		t.Fatalf("full defaults wrong: %+v", f)
	}
}

// Smoke-run one figure per experiment family end to end at miniature
// scale (cmd/rrqbench covers the full registry).
func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test is slow")
	}
	sc := tiny()
	for _, id := range []string{
		"fig7", "fig8a", "fig8b", "fig9a", "fig11", "fig13", "fig16",
		"ext-ablation", "ext-dynamic", "ext-study", "batch",
	} {
		tables := Registry[id](sc)
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tbl := range tables {
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s table %s has no rows", id, tbl.ID)
			}
			var buf bytes.Buffer
			tbl.Print(&buf)
			if buf.Len() == 0 {
				t.Fatalf("%s printed nothing", tbl.ID)
			}
		}
	}
}

// The headline claims of the evaluation must hold at quick scale: E-PT and
// A-PC beat LP-CTA, and the correlated dataset is the cheapest.
func TestEvaluationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test is slow")
	}
	sc := tiny()
	tables := Fig13(sc)
	rows := tables[0].Rows
	times := map[string]map[string]float64{} // type -> algo -> secs
	for _, r := range rows {
		times[r.Param] = map[string]float64{}
		for _, c := range r.Cells {
			if !c.Skipped {
				times[r.Param][c.Algo] = c.Seconds
			}
		}
	}
	for typ, m := range times {
		ept, okE := m["E-PT"]
		lp, okL := m["LP-CTA"]
		// Sub-millisecond cells are timer noise on trivial instances
		// (correlated data at miniature scale); only compare when the
		// baseline does measurable work.
		if okE && okL && lp > 1e-3 && ept > lp {
			t.Errorf("%s: E-PT (%v) slower than LP-CTA (%v)", typ, ept, lp)
		}
	}
	if ca, ok := times["Cor"]["E-PT"]; ok {
		if aa, ok2 := times["Anti"]["E-PT"]; ok2 && ca > aa {
			t.Errorf("E-PT on Cor (%v) slower than Anti (%v)", ca, aa)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo", ParamCol: "k",
		Rows: []Row{
			{Param: "1", Cells: []Cell{{Algo: "E-PT", Seconds: 0.001}, {Algo: "PBA+", Skipped: true}}},
			{Param: "2", Cells: []Cell{{Algo: "E-PT", Seconds: 0.002}}, Extra: map[string]float64{"acc": 0.9}},
		},
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "k,E-PT,PBA+,acc" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,0.001,,") {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestSummarize(t *testing.T) {
	tbl := &Table{
		ID: "x", ParamCol: "k",
		Rows: []Row{
			{Param: "1", Cells: []Cell{{Algo: "E-PT", Seconds: 0.1}, {Algo: "LP-CTA", Seconds: 0.4}, {Algo: "PBA+", Skipped: true}}},
			{Param: "2", Cells: []Cell{{Algo: "E-PT", Seconds: 0.2}, {Algo: "LP-CTA", Seconds: 1.6}, {Algo: "PBA+", Skipped: true}}},
		},
	}
	sps := Summarize(tbl, "E-PT")
	if len(sps) != 2 {
		t.Fatalf("%d speedups, want 2", len(sps))
	}
	for _, sp := range sps {
		switch sp.Versus {
		case "LP-CTA":
			// geo-mean of 4 and 8 = sqrt(32) ≈ 5.657.
			if sp.Rows != 2 || sp.Factor < 5.6 || sp.Factor > 5.7 {
				t.Fatalf("LP-CTA speedup = %+v", sp)
			}
		case "PBA+":
			if sp.Rows != 0 || sp.Skipped != 2 {
				t.Fatalf("PBA+ speedup = %+v", sp)
			}
		}
	}
	var buf bytes.Buffer
	PrintSummary(&buf, tbl, "E-PT")
	if !strings.Contains(buf.String(), "faster than LP-CTA") {
		t.Fatalf("summary output: %s", buf.String())
	}
	if Summarize(tbl, "nope") != nil {
		t.Fatal("unknown reference should yield nil")
	}
}
