package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rrq/internal/faultinject"
	"rrq/internal/obs"
)

func mustAppend(t *testing.T, w *WAL, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
}

func collect(t *testing.T, dir string, o Options) ([]Record, ReplayInfo) {
	t.Helper()
	var got []Record
	info, err := Replay(dir, o, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, info
}

func testRecords() []Record {
	return []Record{
		{Epoch: 2, Op: OpInsert, Point: []float64{0.25, 0.5, 0.25}},
		{Epoch: 3, Op: OpDelete, Index: 1},
		{Epoch: 4, Op: OpInsert, Point: []float64{0.9, 0.05, 0.05}},
		{Epoch: 5, Op: OpInsert, Point: []float64{1. / 3, 1. / 3, 1. / 3}},
		{Epoch: 6, Op: OpDelete, Index: 0},
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w, err := Open(dir, 2, Options{Sync: SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	mustAppend(t, w, recs...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := collect(t, dir, Options{Metrics: reg})
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed records differ:\n got %+v\nwant %+v", got, recs)
	}
	if info.Truncated != nil || info.Records != len(recs) || info.LastEpoch != 6 {
		t.Fatalf("unexpected replay info %+v", info)
	}
	if n := reg.Counter("wal.appends").Value(); n != int64(len(recs)) {
		t.Fatalf("wal.appends = %d, want %d", n, len(recs))
	}
	if n := reg.Counter("wal.replayed").Value(); n != int64(len(recs)) {
		t.Fatalf("wal.replayed = %d, want %d", n, len(recs))
	}
	if reg.Counter("wal.sync_ns").Value() <= 0 {
		t.Fatal("wal.sync_ns not accumulated under SyncAlways")
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	if _, info := collect(t, t.TempDir(), Options{}); info.Records != 0 || info.Truncated != nil {
		t.Fatalf("empty dir replay info %+v", info)
	}
	info, err := Replay(filepath.Join(t.TempDir(), "nope"), Options{}, func(Record) error { return nil })
	if err != nil || info.Records != 0 {
		t.Fatalf("missing dir: info %+v err %v", info, err)
	}
}

// TestTornTailTruncation cuts the log mid-record at every possible byte
// offset of the final record and checks replay recovers exactly the sound
// prefix, truncates the file, and counts the repair.
func TestTornTailTruncation(t *testing.T) {
	recs := testRecords()
	full := t.TempDir()
	w, err := Open(full, 2, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, recs...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segName(2)
	raw, err := os.ReadFile(filepath.Join(full, seg))
	if err != nil {
		t.Fatal(err)
	}
	var bound int64
	for _, r := range recs[:len(recs)-1] {
		bound += int64(len(Encode(r)))
	}
	for cut := bound + 1; cut < int64(len(raw)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, seg), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		got, info := collect(t, dir, Options{Metrics: reg})
		if len(got) != len(recs)-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), len(recs)-1)
		}
		if info.Truncated == nil || info.Truncated.Offset != bound || info.Truncated.Segment != seg {
			t.Fatalf("cut %d: truncation %+v, want offset %d in %s", cut, info.Truncated, bound, seg)
		}
		if fi, err := os.Stat(filepath.Join(dir, seg)); err != nil || fi.Size() != bound {
			t.Fatalf("cut %d: file size %v err %v, want %d", cut, fi.Size(), err, bound)
		}
		if n := reg.Counter("wal.truncated").Value(); n != 1 {
			t.Fatalf("cut %d: wal.truncated = %d, want 1", cut, n)
		}
		// The repaired log must replay cleanly.
		again, info2 := collect(t, dir, Options{})
		if len(again) != len(recs)-1 || info2.Truncated != nil {
			t.Fatalf("cut %d: repaired log replay %d records, truncated %+v", cut, len(again), info2.Truncated)
		}
	}
}

// TestBitFlipCorruption flips one byte in a mid-log record: replay keeps
// the sound prefix, truncates at the corrupt record and drops everything
// after it (including later segments).
func TestBitFlipCorruption(t *testing.T) {
	recs := testRecords()
	dir := t.TempDir()
	w, err := Open(dir, 2, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, recs[:3]...)
	if err := w.Rotate(5); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, recs[3:]...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte of record 2 (epoch 3) in the first segment.
	path := filepath.Join(dir, segName(2))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(len(Encode(recs[0])))
	raw[off+recHeader+3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, info := collect(t, dir, Options{})
	if len(got) != 1 || got[0].Epoch != 2 {
		t.Fatalf("replayed %+v, want only epoch 2", got)
	}
	if info.Truncated == nil || info.Truncated.Offset != off {
		t.Fatalf("truncation %+v, want offset %d", info.Truncated, off)
	}
	if info.DroppedSegs != 1 {
		t.Fatalf("dropped %d segments, want 1", info.DroppedSegs)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(5))); !os.IsNotExist(err) {
		t.Fatalf("later segment survived corruption: %v", err)
	}
}

func TestRotateAndGC(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 2, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	mustAppend(t, w, recs[:2]...) // epochs 2,3 in segment 2
	if err := w.Rotate(4); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, recs[2:4]...) // epochs 4,5 in segment 4
	if err := w.Rotate(6); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, recs[4:]...) // epoch 6 in segment 6

	// A checkpoint at version 3 covers only segment 2.
	if n, err := w.GCThrough(3); err != nil || n != 1 {
		t.Fatalf("GCThrough(3) = %d, %v; want 1 removed", n, err)
	}
	// A checkpoint at version 5 covers segment 4 too; the active segment
	// is never collected.
	if n, err := w.GCThrough(5); err != nil || n != 1 {
		t.Fatalf("GCThrough(5) = %d, %v; want 1 removed", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 || segs[0] != segName(6) {
		t.Fatalf("segments after GC: %v (err %v), want only %s", segs, err, segName(6))
	}
	got, _ := collect(t, dir, Options{})
	if len(got) != 1 || got[0].Epoch != 6 {
		t.Fatalf("post-GC replay %+v, want only epoch 6", got)
	}
}

func TestRotateSameEpochNoRecordsIsNoop(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(7); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("segments %v, want exactly one", segs)
	}
}

// TestShortWriteFault arms the WALAppend short-write fault: the append
// fails, the segment holds a torn tail, and replay repairs it.
func TestShortWriteFault(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("disk full")
	in := faultinject.New(&faultinject.Fault{
		Point: faultinject.WALAppend, ShortWrite: 5, Err: boom, Times: 1,
	})
	w, err := Open(dir, 2, Options{Sync: SyncAlways, Inject: in})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	if err := w.Append(recs[0]); !errors.Is(err, boom) {
		t.Fatalf("faulted append error = %v, want %v", err, boom)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	got, info := collect(t, dir, Options{Metrics: reg})
	if len(got) != 0 || info.Truncated == nil || info.Truncated.Offset != 0 {
		t.Fatalf("replay of torn-only log: %d records, truncation %+v", len(got), info.Truncated)
	}

	// After repair the log accepts appends again from a fresh handle.
	w2, err := Open(dir, 2, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w2, recs[0])
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := collect(t, dir, Options{}); len(got) != 1 {
		t.Fatalf("replay after repair: %d records, want 1", len(got))
	}
}

// TestSyncFault arms WALSync: under SyncAlways the append surfaces the
// sync failure.
func TestSyncFault(t *testing.T) {
	boom := errors.New("sync exploded")
	in := faultinject.New(&faultinject.Fault{Point: faultinject.WALSync, Err: boom, Times: 1})
	w, err := Open(t.TempDir(), 2, Options{Sync: SyncAlways, Inject: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecords()[0]); !errors.Is(err, boom) {
		t.Fatalf("append under sync fault = %v, want %v", err, boom)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncFaultRollsBack: a record whose bytes reached the file but whose
// fsync failed is rolled back out of the segment, so acknowledged appends
// after the rejection replay cleanly — no resurrection of the rejected
// record, no truncation of the acknowledged tail behind it.
func TestSyncFaultRollsBack(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("sync exploded")
	in := faultinject.New(&faultinject.Fault{Point: faultinject.WALSync, Err: boom, Times: 1})
	w, err := Open(dir, 2, Options{Sync: SyncAlways, Inject: in})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	if err := w.Append(recs[0]); !errors.Is(err, boom) {
		t.Fatalf("append under sync fault = %v, want %v", err, boom)
	}
	// Retry the same epoch (the mutation was rejected, so its successor
	// reuses it) and keep appending: every record below is acknowledged.
	mustAppend(t, w, recs...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := collect(t, dir, Options{})
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed records differ:\n got %+v\nwant %+v", got, recs)
	}
	if info.Truncated != nil {
		t.Fatalf("log of only acknowledged records was truncated: %+v", info.Truncated)
	}
}

// TestTornTailFailsLogPermanently: after an injected crash-simulating torn
// write the torn bytes stay on disk for recovery to repair, so the handle
// must reject every later append and rotation — otherwise acknowledged
// records would land behind a tear that replay truncates.
func TestTornTailFailsLogPermanently(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("power cut")
	in := faultinject.New(&faultinject.Fault{
		Point: faultinject.WALAppend, ShortWrite: 5, Err: boom, Times: 1,
	})
	w, err := Open(dir, 2, Options{Sync: SyncAlways, Inject: in})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	if err := w.Append(recs[0]); !errors.Is(err, boom) {
		t.Fatalf("faulted append error = %v, want %v", err, boom)
	}
	if err := w.Append(recs[1]); err == nil || !strings.Contains(err.Error(), "log failed") {
		t.Fatalf("append after torn tail = %v, want permanent log failure", err)
	}
	if err := w.Rotate(10); err == nil || !strings.Contains(err.Error(), "log failed") {
		t.Fatalf("rotate after torn tail = %v, want permanent log failure", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got, info := collect(t, dir, Options{}); len(got) != 0 || info.Truncated == nil {
		t.Fatalf("replay: %d records, truncation %+v — want empty log repaired at the tear", len(got), info.Truncated)
	}
}

func TestIntervalSyncFlushes(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 2, Options{Sync: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, testRecords()[0])
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.mu.Lock()
		dirty := w.dirty
		w.mu.Unlock()
		if !dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted junk")
	}
}

func TestSegNameRoundTrip(t *testing.T) {
	for _, e := range []uint64{1, 42, 1 << 40} {
		got, ok := segFirst(segName(e))
		if !ok || got != e {
			t.Fatalf("segFirst(segName(%d)) = %d, %v", e, got, ok)
		}
	}
	for _, junk := range []string{"wal-12.seg", "checkpoint-1.ckpt", "wal-0000000000000000000x.seg"} {
		if _, ok := segFirst(junk); ok {
			t.Fatalf("segFirst accepted %q", junk)
		}
	}
}

func TestNonMonotoneEpochIsCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w,
		Record{Epoch: 2, Op: OpDelete, Index: 0},
		Record{Epoch: 2, Op: OpDelete, Index: 1}, // repeated epoch: unsound
	)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := collect(t, dir, Options{})
	if len(got) != 1 || info.Truncated == nil {
		t.Fatalf("replay = %d records, truncated %+v; want 1 record + truncation", len(got), info.Truncated)
	}
}
