// Package wal is the mutation write-ahead log behind the durable index: a
// directory of append-only segment files holding length-prefixed,
// CRC32C-checksummed, epoch-stamped Insert/Delete records. A mutation is
// appended — and, under the "always" fsync policy, synced — before its
// epoch is published, so every acknowledged write survives a crash; on
// restart Replay streams the sound prefix of the log back and truncates it
// at the first torn or corrupt record (a typed *CorruptError in the replay
// summary, never a fatal error: the service keeps serving what is sound).
//
// Segments are named by the first epoch they can contain
// ("wal-%020d.seg"), which makes both replay order and garbage collection
// pure name arithmetic: after a checkpoint at version V the log rotates to
// a fresh segment starting at V+1 and every closed segment whose successor
// starts at or below V+1 is fully covered by the checkpoint and removed.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rrq/internal/faultinject"
	"rrq/internal/obs"
)

// Op identifies a logged mutation.
type Op byte

const (
	// OpInsert logs an index insertion; the record carries the point.
	OpInsert Op = 1
	// OpDelete logs an index deletion; the record carries the slot index.
	OpDelete Op = 2
)

// Record is one logged mutation. Epoch is the index version the mutation
// published (strictly increasing across the log), Point the inserted point
// (OpInsert) and Index the deleted slot (OpDelete).
type Record struct {
	Epoch uint64
	Op    Op
	Point []float64
	Index int
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged mutation is on
	// disk before the client sees its new version. The safest and slowest
	// policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.Interval): a crash
	// loses at most one interval's worth of acknowledged mutations.
	SyncInterval
	// SyncNever leaves syncing to the OS page cache: fastest, and a crash
	// may lose any acknowledged-but-unflushed suffix. Replay still recovers
	// a sound prefix — durability weakens, consistency does not.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps a flag value to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf(`wal: unknown fsync policy %q (want "always", "interval" or "never")`, s)
	}
}

// Options configures a WAL handle.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the background flush period under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// Metrics, when set, receives wal.appends / wal.replayed /
	// wal.truncated counters and the cumulative wal.sync_ns counter.
	Metrics *obs.Registry
	// Inject arms the WALAppend / WALSync fault points — a test hook; the
	// mutation path has no context to carry an injector through.
	Inject *faultinject.Injector
}

// CorruptError describes the first torn or corrupt record found by Replay:
// the segment file, the byte offset the log was truncated at, and why.
type CorruptError struct {
	Segment string // segment file name
	Offset  int64  // byte offset of the first unsound record
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log: %s at offset %d in %s (truncated)", e.Reason, e.Offset, e.Segment)
}

// crcTable is the Castagnoli polynomial table (CRC32C), the variant with
// hardware support on current CPUs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxPayload bounds a record payload; a length prefix beyond it is treated
// as corruption rather than an allocation request.
const maxPayload = 1 << 20

// recHeader is the fixed record prefix: uint32 payload length + uint32
// CRC32C of the payload, little-endian.
const recHeader = 8

// Encode renders r in the on-disk record format:
//
//	uint32  payload length (little-endian)
//	uint32  CRC32C(payload)
//	payload: op byte · uint64 epoch ·
//	         OpInsert: uint32 dim · dim × float64 bits
//	         OpDelete: uint64 slot index
//
// It is exported so tests and the recovery sweep can compute record
// boundaries without a WAL handle.
func Encode(r Record) []byte {
	var n int
	switch r.Op {
	case OpInsert:
		n = 1 + 8 + 4 + 8*len(r.Point)
	case OpDelete:
		n = 1 + 8 + 8
	default:
		panic(fmt.Sprintf("wal: encode of unknown op %d", r.Op))
	}
	buf := make([]byte, recHeader+n)
	p := buf[recHeader:]
	p[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(p[1:], r.Epoch)
	switch r.Op {
	case OpInsert:
		binary.LittleEndian.PutUint32(p[9:], uint32(len(r.Point)))
		for i, x := range r.Point {
			binary.LittleEndian.PutUint64(p[13+8*i:], math.Float64bits(x))
		}
	case OpDelete:
		binary.LittleEndian.PutUint64(p[9:], uint64(r.Index))
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(n))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(p, crcTable))
	return buf
}

// decodePayload parses a checksum-verified payload. A malformed payload
// after a valid CRC is still reported as corruption (reason non-empty).
func decodePayload(p []byte) (Record, string) {
	if len(p) < 9 {
		return Record{}, "payload shorter than record header"
	}
	r := Record{Op: Op(p[0]), Epoch: binary.LittleEndian.Uint64(p[1:])}
	switch r.Op {
	case OpInsert:
		if len(p) < 13 {
			return Record{}, "insert payload missing dimension"
		}
		dim := int(binary.LittleEndian.Uint32(p[9:]))
		if dim < 0 || len(p) != 13+8*dim {
			return Record{}, fmt.Sprintf("insert payload length %d inconsistent with dim %d", len(p), dim)
		}
		r.Point = make([]float64, dim)
		for i := range r.Point {
			r.Point[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[13+8*i:]))
		}
	case OpDelete:
		if len(p) != 17 {
			return Record{}, fmt.Sprintf("delete payload length %d (want 17)", len(p))
		}
		r.Index = int(binary.LittleEndian.Uint64(p[9:]))
	default:
		return Record{}, fmt.Sprintf("unknown op %d", p[0])
	}
	return r, ""
}

// segPrefix / segSuffix frame segment file names; the middle is the first
// epoch the segment can contain, zero-padded so lexical order is epoch
// order.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// segName renders the segment file name for a first epoch.
func segName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

// segFirst parses a segment file name back to its first epoch.
func segFirst(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(mid) != 20 {
		return 0, false
	}
	var v uint64
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	return v, true
}

// listSegments returns the segment file names in dir in epoch order.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		if _, ok := segFirst(e.Name()); ok && !e.IsDir() {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// WAL is an open, appendable log. Create with Open; safe for concurrent
// use, though the index serializes mutations (and therefore appends)
// anyway.
type WAL struct {
	dir string
	o   Options

	mu      sync.Mutex
	f       *os.File
	name    string // active segment file name
	first   uint64 // first epoch of the active segment
	records int    // records appended to the active segment
	off     int64  // bytes of fully appended records in the active segment
	dirty   bool   // unsynced appends (interval policy)
	failed  error  // sticky: the segment holds garbage that could not be rolled back

	stopc chan struct{}
	wg    sync.WaitGroup
}

// Open creates a fresh active segment in dir for records starting at
// nextEpoch and returns the appendable log. Pre-existing segments are left
// untouched (replay and checkpoint GC own them); a same-named leftover
// segment is truncated, which is safe because a segment named nextEpoch
// with sound records would have moved nextEpoch past itself during replay.
func Open(dir string, nextEpoch uint64, o Options) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	w := &WAL{dir: dir, o: o}
	if err := w.openSegment(nextEpoch); err != nil {
		return nil, err
	}
	if o.Sync == SyncInterval {
		w.stopc = make(chan struct{})
		w.wg.Add(1)
		go w.syncLoop()
	}
	return w, nil
}

// openSegment creates and activates the segment for first. Caller holds
// w.mu (or the WAL is not yet shared).
func (w *WAL) openSegment(first uint64) error {
	name := segName(first)
	f, err := os.OpenFile(filepath.Join(w.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	w.f, w.name, w.first, w.records, w.dirty = f, name, first, 0, false
	w.off = 0
	return nil
}

// counter bumps a named WAL counter when metrics are configured.
func (w *WAL) counter(name string, n int64) {
	if reg := w.o.Metrics; reg != nil {
		reg.Counter(name).Add(n)
	}
}

// Append encodes and writes r, honoring the fsync policy. On error the
// caller must treat the mutation as failed (it was never published); the
// rejected record's bytes are rolled back out of the active segment so a
// later successful append never lands after garbage — and when the segment
// cannot be restored (rollback failure, or an injected crash-simulating
// torn write) the log fails permanently: every later Append is rejected,
// which preserves the rule that an acknowledged record is always preceded
// only by sound bytes.
func (w *WAL) Append(r Record) error {
	buf := Encode(r)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("wal: append on closed log")
	}
	if w.failed != nil {
		return w.failed
	}
	if in := w.o.Inject; in != nil {
		if f := in.Plan(faultinject.WALAppend, r.Point); f != nil {
			if f.ShortWrite > 0 && f.ShortWrite < len(buf) {
				// Crash simulation: the torn tail stays on disk for recovery
				// to repair, so this handle must never append after it — a
				// real crash mid-write would not have either.
				_, _ = w.f.Write(buf[:f.ShortWrite])
				_ = w.f.Sync()
				w.failed = fmt.Errorf("wal: log failed: torn tail at offset %d in %s", w.off, w.name)
				if f.Err != nil {
					return fmt.Errorf("wal: append: %w", f.Err)
				}
				return fmt.Errorf("wal: append: short write (%d of %d bytes)", f.ShortWrite, len(buf))
			}
			if f.Err != nil {
				return fmt.Errorf("wal: append: %w", f.Err)
			}
		}
	}
	if _, err := w.f.Write(buf); err != nil {
		return w.rollback(fmt.Errorf("wal: append: %w", err))
	}
	if w.o.Sync == SyncAlways {
		if err := w.syncLocked(); err != nil {
			return w.rollback(err)
		}
	} else if w.o.Sync == SyncInterval {
		w.dirty = true
	}
	w.off += int64(len(buf))
	w.records++
	w.counter("wal.appends", 1)
	return nil
}

// rollback restores the active segment to the end of the last sound record
// after a failed append: the rejected record's torn or complete bytes must
// not remain, or the next successful append would land after them and
// replay would truncate every acknowledged record behind the tear (or
// resurrect the rejected one). When the restore itself fails the log is
// failed permanently so later mutations are rejected rather than logged
// after garbage. Returns err for the caller to surface. Caller holds w.mu.
func (w *WAL) rollback(err error) error {
	if terr := w.f.Truncate(w.off); terr != nil {
		w.failed = fmt.Errorf("wal: log failed: rejected append not rolled back (%v) after: %v", terr, err)
		return err
	}
	if _, serr := w.f.Seek(w.off, io.SeekStart); serr != nil {
		w.failed = fmt.Errorf("wal: log failed: seek after rollback (%v) after: %v", serr, err)
		return err
	}
	return err
}

// Sync flushes the active segment to stable storage regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.f == nil {
		return nil
	}
	if in := w.o.Inject; in != nil {
		if err := in.Fire(faultinject.WALSync, nil); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.counter("wal.sync_ns", time.Since(start).Nanoseconds())
	w.dirty = false
	return nil
}

// syncLoop is the SyncInterval background flusher.
func (w *WAL) syncLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.o.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty {
				_ = w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// ActiveRecords returns the number of records appended to the active
// segment since the last rotation.
func (w *WAL) ActiveRecords() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Rotate syncs and closes the active segment and starts a fresh one for
// records from nextEpoch on — the step after a checkpoint at nextEpoch−1.
// Rotating onto the same first epoch (no records since the last rotation)
// is a no-op.
func (w *WAL) Rotate(nextEpoch uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("wal: rotate on closed log")
	}
	if w.failed != nil {
		// Rotating would strand the unrepaired tail in a closed segment:
		// replay stops there and drops every later segment, so records
		// appended after the rotation would be acknowledged yet unsound.
		return w.failed
	}
	if nextEpoch == w.first && w.records == 0 {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	return w.openSegment(nextEpoch)
}

// GCThrough removes every closed segment fully covered by a checkpoint at
// version epoch. Coverage is name arithmetic: segments are ordered by
// their first epoch, so a closed segment is complete through its
// successor's first epoch − 1; it is removed when that bound is ≤ epoch.
// Returns the number of segments removed.
func (w *WAL) GCThrough(epoch uint64) (int, error) {
	w.mu.Lock()
	active := w.name
	w.mu.Unlock()
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0, fmt.Errorf("wal: gc: %w", err)
	}
	removed := 0
	for i, s := range segs {
		if s == active {
			continue
		}
		var succ uint64
		if i+1 < len(segs) {
			succ, _ = segFirst(segs[i+1])
		} else {
			continue // no successor: cannot bound its contents, keep it
		}
		if succ == 0 || succ-1 > epoch {
			continue
		}
		if err := os.Remove(filepath.Join(w.dir, s)); err != nil {
			return removed, fmt.Errorf("wal: gc: %w", err)
		}
		removed++
	}
	return removed, nil
}

// PurgeOthers removes every segment except the active one — the recovery
// epilogue: once the recovered state is checkpointed, every pre-existing
// segment (sound or orphaned beyond a truncation) is obsolete. Returns the
// number of segments removed.
func (w *WAL) PurgeOthers() (int, error) {
	w.mu.Lock()
	active := w.name
	w.mu.Unlock()
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0, fmt.Errorf("wal: purge: %w", err)
	}
	removed := 0
	for _, s := range segs {
		if s == active {
			continue
		}
		if err := os.Remove(filepath.Join(w.dir, s)); err != nil {
			return removed, fmt.Errorf("wal: purge: %w", err)
		}
		removed++
	}
	return removed, nil
}

// Close stops the background flusher, syncs and closes the active segment.
func (w *WAL) Close() error {
	if w.stopc != nil {
		close(w.stopc)
		w.wg.Wait()
		w.stopc = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// ReplayInfo summarizes a Replay: how many sound records were streamed,
// the last epoch seen, how many segment files were visited, and — when the
// log ended in a torn or corrupt record — the truncation that repaired it
// plus any later segments that were dropped as causally unsound.
type ReplayInfo struct {
	Records     int
	LastEpoch   uint64
	Segments    int
	Truncated   *CorruptError
	DroppedSegs int
}

// Replay streams every sound record in dir, in epoch order, to fn. The
// first torn or corrupt record ends the replay: the segment is physically
// truncated at the record's start offset, segments after it are removed
// (their records are causally after the corruption and cannot be soundly
// applied), and the repair is reported in ReplayInfo.Truncated — not as an
// error. An error from fn, or an I/O failure, aborts the replay and is
// returned as the error. Metrics (when configured) receive wal.replayed
// per sound record and wal.truncated per truncation event.
func Replay(dir string, o Options, fn func(Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return info, nil
		}
		return info, fmt.Errorf("wal: replay: %w", err)
	}
	counter := func(name string, n int64) {
		if reg := o.Metrics; reg != nil {
			reg.Counter(name).Add(n)
		}
	}
	for si, seg := range segs {
		info.Segments++
		corrupt, err := replaySegment(dir, seg, &info, fn, counter)
		if err != nil {
			return info, err
		}
		if corrupt != nil {
			info.Truncated = corrupt
			counter("wal.truncated", 1)
			for _, later := range segs[si+1:] {
				if err := os.Remove(filepath.Join(dir, later)); err != nil {
					return info, fmt.Errorf("wal: replay: dropping unsound segment: %w", err)
				}
				info.DroppedSegs++
			}
			return info, nil
		}
	}
	return info, nil
}

// replaySegment streams one segment's sound records. A torn or corrupt
// record truncates the file at its start and is returned as the
// *CorruptError (nil error); fn and I/O failures return a real error.
func replaySegment(dir, seg string, info *ReplayInfo, fn func(Record) error, counter func(string, int64)) (*CorruptError, error) {
	path := filepath.Join(dir, seg)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: replay: %w", err)
	}
	defer f.Close()

	truncate := func(off int64, reason string) (*CorruptError, error) {
		if err := os.Truncate(path, off); err != nil {
			return nil, fmt.Errorf("wal: replay: truncating corrupt tail: %w", err)
		}
		return &CorruptError{Segment: seg, Offset: off, Reason: reason}, nil
	}

	var off int64
	hdr := make([]byte, recHeader)
	for {
		n, err := io.ReadFull(f, hdr)
		if err == io.EOF {
			return nil, nil // clean segment end
		}
		if err == io.ErrUnexpectedEOF {
			return truncate(off, fmt.Sprintf("torn record header (%d of %d bytes)", n, recHeader))
		}
		if err != nil {
			return nil, fmt.Errorf("wal: replay: %w", err)
		}
		plen := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if plen == 0 || plen > maxPayload {
			return truncate(off, fmt.Sprintf("implausible payload length %d", plen))
		}
		payload := make([]byte, plen)
		if n, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return truncate(off, fmt.Sprintf("torn record payload (%d of %d bytes)", n, plen))
			}
			return nil, fmt.Errorf("wal: replay: %w", err)
		}
		if got := crc32.Checksum(payload, crcTable); got != want {
			return truncate(off, fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, got))
		}
		rec, reason := decodePayload(payload)
		if reason != "" {
			return truncate(off, reason)
		}
		if rec.Epoch <= info.LastEpoch {
			return truncate(off, fmt.Sprintf("epoch %d not after %d", rec.Epoch, info.LastEpoch))
		}
		if err := fn(rec); err != nil {
			return nil, err
		}
		info.Records++
		info.LastEpoch = rec.Epoch
		counter("wal.replayed", 1)
		off += int64(recHeader) + int64(plen)
	}
}
