package rrq

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// indexTestInstance builds a small synthetic dataset and a query over it.
func indexTestInstance(t *testing.T, d int, seed int64) (*Dataset, Query) {
	t.Helper()
	ds := SyntheticDataset(Independent, 40, d, seed)
	return ds, Query{Q: ds.RandomQuery(seed + 1), K: 3, Epsilon: 0.1}
}

// The public index must serve byte-identical regions to a from-scratch solve
// with the skyband prefilter, before and after mutations.
func TestIndexMatchesSolve(t *testing.T) {
	for _, d := range []int{2, 3} {
		ds, q := indexTestInstance(t, d, int64(100*d))
		ix, err := BuildIndex(ds)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Version() != 1 || ix.Len() != ds.Len() || ix.Dim() != d {
			t.Fatalf("fresh index: version=%d len=%d dim=%d", ix.Version(), ix.Len(), ix.Dim())
		}

		check := func(cur *Dataset) {
			t.Helper()
			got, err := ix.Solve(q)
			if err != nil {
				t.Fatal(err)
			}
			res, err := SolveContext(context.Background(), cur, q, WithSkybandPrefilter(true))
			if err != nil {
				t.Fatal(err)
			}
			gb, _ := got.MarshalJSON()
			wb, _ := res.Region.MarshalJSON()
			if !bytes.Equal(gb, wb) {
				t.Fatalf("d=%d: index-served region differs from fresh solve\n got: %s\nwant: %s", d, gb, wb)
			}
		}
		check(ds)

		rng := rand.New(rand.NewSource(int64(7 * d)))
		raw := make([][]float64, ds.Len())
		for i := range raw {
			raw[i] = ds.PointAt(i)
		}
		for op := 0; op < 10; op++ {
			if rng.Intn(3) == 0 && len(raw) > 5 {
				i := rng.Intn(len(raw))
				if _, err := ix.Delete(i); err != nil {
					t.Fatal(err)
				}
				raw = append(raw[:i:i], raw[i+1:]...)
			} else {
				p := make(Point, d)
				for j := range p {
					p[j] = 0.05 + 0.9*rng.Float64()
				}
				if _, err := ix.Insert(p); err != nil {
					t.Fatal(err)
				}
				raw = append(raw, p)
			}
			cur, err := NewDataset(raw)
			if err != nil {
				t.Fatal(err)
			}
			check(cur)
		}
		if want := uint64(11); ix.Version() != want {
			t.Fatalf("version = %d after 10 mutations, want %d", ix.Version(), want)
		}
	}
}

// Rank-tree serving may re-partition the region but must not change
// membership, and must silently fall back for K beyond the tree's ceiling.
func TestIndexRankTreeServing(t *testing.T) {
	ds, q := indexTestInstance(t, 3, 900)
	ix, err := BuildIndex(ds, WithRankTreeServing(true), WithKmax(4))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kmax() != 4 {
		t.Fatalf("Kmax = %d, want 4", ix.Kmax())
	}
	plain, err := BuildIndex(ds)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ix.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := plain.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 200; i++ {
		u := tr.Sample(i)
		if u == nil {
			break
		}
		if !pr.Contains(u) {
			t.Fatalf("tree-served sample %v not in solver-served region", u)
		}
	}
	for i := int64(1); i <= 200; i++ {
		u := pr.Sample(i)
		if u == nil {
			break
		}
		if !tr.Contains(u) {
			t.Fatalf("solver-served sample %v not in tree-served region", u)
		}
	}

	// K beyond kmax must fall back to the solver path, not fail.
	big := q
	big.K = 6
	fb, err := ix.Solve(big)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Solve(big)
	if err != nil {
		t.Fatal(err)
	}
	fbJSON, _ := fb.MarshalJSON()
	wantJSON, _ := want.MarshalJSON()
	if !bytes.Equal(fbJSON, wantJSON) {
		t.Fatalf("K>kmax fallback differs from solver path")
	}
}

// Save/LoadIndex must round-trip the epoch, the shape and the answers
// through the public API.
func TestIndexSaveLoadPublic(t *testing.T) {
	ds, q := indexTestInstance(t, 3, 321)
	ix, err := BuildIndex(ds, WithKmax(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(ds.RandomQuery(99)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version() != ix.Version() || back.Len() != ix.Len() || back.Dim() != ix.Dim() || back.Kmax() != ix.Kmax() {
		t.Fatalf("round-trip mismatch: got v=%d len=%d dim=%d kmax=%d", back.Version(), back.Len(), back.Dim(), back.Kmax())
	}
	a, err := ix.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.MarshalJSON()
	bj, _ := b.MarshalJSON()
	if !bytes.Equal(aj, bj) {
		t.Fatalf("loaded index answers differently")
	}
	if v, err := back.Insert(ds.RandomQuery(100)); err != nil || v != ix.Version()+1 {
		t.Fatalf("post-load insert: v=%d err=%v, want v=%d", v, err, ix.Version()+1)
	}
}

// SolveBatch over an index pins the whole batch to one snapshot and carries
// the index observability counters.
func TestIndexSolveBatchAndMetrics(t *testing.T) {
	ds, q := indexTestInstance(t, 3, 555)
	reg := NewRegistry()
	ix, err := BuildIndex(ds, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{q, q, {Q: ds.RandomQuery(7), K: 2, Epsilon: 0.05}}
	report, err := ix.SolveBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if report.Solved != len(queries) || report.Failed != 0 {
		t.Fatalf("batch: solved=%d failed=%d", report.Solved, report.Failed)
	}
	if _, err := ix.Insert(ds.RandomQuery(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Delete(0); err != nil {
		t.Fatal(err)
	}
	text := reg.Text()
	for _, want := range []string{"index.builds", "index.epoch", "index.inserts", "index.deletes", "index.planes.miss"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("metric %q missing from registry exposition:\n%s", want, text)
		}
	}
}
