package rrq

// Boundary parameter coverage for the public API: the ε and k extremes the
// degenerate-input sweep (internal/diffcheck) exercises internally must
// behave identically through the public surface — ε = 0 is exactly the
// continuous reverse top-k, ε just below 1 qualifies (almost) everything,
// k > n clamps to "everything qualifies", and out-of-domain parameters are
// rejected as *QueryError, never silently clamped.
import (
	"errors"
	"math"
	"testing"
)

func TestBoundaryEpsilonZeroEqualsReverseTopK(t *testing.T) {
	ds := table3Dataset(t)
	for k := 1; k <= 3; k++ {
		reg, err := Solve(ds, Query{Q: Point{0.4, 0.7}, K: k, Epsilon: 0}, WithAlgorithm(EPTAlgo))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		rtk, err := ReverseTopK(ds, Point{0.4, 0.7}, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for i := 0; i <= 100; i++ {
			x := 0.005 + 0.99*float64(i)/100
			u := Vector{x, 1 - x}
			if reg.Contains(u) != rtk.Contains(u) {
				t.Fatalf("k=%d: ε=0 Solve and ReverseTopK disagree at %v", k, u)
			}
		}
	}
}

func TestBoundaryEpsilonNearOne(t *testing.T) {
	ds := table3Dataset(t)
	// ε → 1: (1−ε)·f_u(p) ≈ 0 < f_u(q) for every u, so no point beats q and
	// the whole simplex qualifies even at k = 1.
	reg, err := Solve(ds, Query{Q: Point{0.4, 0.7}, K: 1, Epsilon: 1 - 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 100; i++ {
		x := float64(i) / 100
		if !reg.Contains(Vector{x, 1 - x}) {
			t.Fatalf("u=(%v,%v) must qualify at ε→1", x, 1-x)
		}
	}
	if m := reg.Measure(2000); m < 0.99 {
		t.Fatalf("measure at ε→1 = %v, want ≈ 1", m)
	}
}

func TestBoundaryKLargerThanN(t *testing.T) {
	ds := table3Dataset(t)
	// k > n: fewer than k points exist, so fewer than k can beat q and every
	// preference qualifies regardless of ε.
	reg, err := Solve(ds, Query{Q: Point{0.05, 0.05}, K: ds.Len() + 1, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 100; i++ {
		x := float64(i) / 100
		if !reg.Contains(Vector{x, 1 - x}) {
			t.Fatalf("u=(%v,%v) must qualify when k > n", x, 1-x)
		}
	}
}

func TestBoundaryParameterValidation(t *testing.T) {
	ds := table3Dataset(t)
	cases := []struct {
		name string
		q    Query
	}{
		{"eps exactly one", Query{Q: Point{0.4, 0.7}, K: 1, Epsilon: 1}},
		{"eps negative", Query{Q: Point{0.4, 0.7}, K: 1, Epsilon: -1e-9}},
		{"eps NaN", Query{Q: Point{0.4, 0.7}, K: 1, Epsilon: math.NaN()}},
		{"k zero", Query{Q: Point{0.4, 0.7}, K: 0, Epsilon: 0.1}},
		{"k negative", Query{Q: Point{0.4, 0.7}, K: -3, Epsilon: 0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Solve(ds, tc.q)
			var qe *QueryError
			if !errors.As(err, &qe) {
				t.Fatalf("Solve accepted %+v (err=%v), want *QueryError", tc.q, err)
			}
		})
	}
}

func TestMeasureWithSeedReproducible(t *testing.T) {
	ds, err := NewDataset([][]float64{
		{0.2, 0.92, 0.5}, {0.7, 0.54, 0.3}, {0.6, 0.3, 0.8}, {0.4, 0.4, 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Solve(ds, Query{Q: Point{0.5, 0.6, 0.4}, K: 2, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	a := reg.MeasureWithSeed(7, 3000)
	b := reg.MeasureWithSeed(7, 3000)
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
	if got, want := reg.MeasureWithSeed(1, 3000), reg.Measure(3000); got != want {
		t.Fatalf("Measure must equal MeasureWithSeed(1, ·): %v vs %v", want, got)
	}
}
