// Package rrq is a Go implementation of the Reverse Regret Query (Wang,
// Wong, Jagadish, Xie): given a market of products with d numeric
// attributes and a query product q, find every linear preference (utility
// vector) under which q's k-regret ratio stays below a threshold ε — i.e.
// every prospective customer for whom q scores at (or near) the top of the
// market, even when it does not rank there.
//
// # Quick start
//
//	ds, _ := rrq.NewDataset([][]float64{{0.2, 0.92}, {0.7, 0.54}, {0.6, 0.3}})
//	res, _ := rrq.SolveResult(ds, rrq.Query{Q: rrq.Point{0.4, 0.7}, K: 2, Epsilon: 0.1})
//	share := res.Region.Measure(20000) // fraction of preference space won
//
// Three solvers from the paper are available: Sweeping (d = 2, linear
// time), E-PT (exact, any d) and A-PC (approximate, faster). The two
// competitors the paper benchmarks against, LP-CTA and PBA+, are included
// for comparison, as is the continuous reverse top-k operator.
package rrq

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"rrq/internal/baseline"
	"rrq/internal/core"
	"rrq/internal/dataset"
	"rrq/internal/index"
	"rrq/internal/obs"
	"rrq/internal/rms"
	"rrq/internal/skyband"
	"rrq/internal/vec"
)

// Point is one product: d attribute values, larger preferred, normalized to
// (0,1].
type Point []float64

// Vector is a utility vector: non-negative weights summing to one.
type Vector []float64

// Dataset is an immutable collection of products with a common dimension.
type Dataset struct {
	pts []vec.Vec
	dim int
}

// NewDataset copies points into a dataset. All points must share the same
// dimension d ≥ 2.
func NewDataset(points [][]float64) (*Dataset, error) {
	if len(points) == 0 {
		return nil, errors.New("rrq: empty dataset")
	}
	d := len(points[0])
	if d < 2 {
		return nil, fmt.Errorf("rrq: dimension %d < 2", d)
	}
	pts := make([]vec.Vec, len(points))
	for i, p := range points {
		if len(p) != d {
			return nil, &DataError{Point: i, Attr: -1, Msg: fmt.Sprintf("dimension %d, want %d", len(p), d)}
		}
		for j, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, &DataError{Point: i, Attr: j, Msg: fmt.Sprintf("value is %v, want finite", x)}
			}
		}
		pts[i] = vec.Vec(p).Clone()
	}
	return &Dataset{pts: pts, dim: d}, nil
}

// Len returns the number of products.
func (d *Dataset) Len() int { return len(d.pts) }

// Dim returns the number of attributes.
func (d *Dataset) Dim() int { return d.dim }

// PointAt returns a copy of the i-th product.
func (d *Dataset) PointAt(i int) Point { return Point(d.pts[i].Clone()) }

// Normalize returns a copy of the dataset with every attribute rescaled to
// (0,1], the domain the paper assumes.
func (d *Dataset) Normalize() *Dataset {
	pts := make([]vec.Vec, len(d.pts))
	for i, p := range d.pts {
		pts[i] = p.Clone()
	}
	dataset.Normalize(pts)
	return &Dataset{pts: pts, dim: d.dim}
}

// KSkyband returns the sub-dataset of points dominated by fewer than k
// others — the standard preprocessing applied before reverse queries, since
// points outside the k-skyband can never rank within any top-k.
//
// For k ≤ 0 the result is the empty dataset (with the dimension preserved):
// no point is dominated by fewer than zero others, so the 0-skyband is empty
// by definition rather than an error.
func (d *Dataset) KSkyband(k int) *Dataset {
	if k <= 0 {
		return &Dataset{pts: nil, dim: d.dim}
	}
	idx := skyband.KSkyband(d.pts, k)
	return &Dataset{pts: skyband.Select(d.pts, idx), dim: d.dim}
}

// points returns the internal representation (not copied; callers must not
// mutate).
func (d *Dataset) points() []vec.Vec { return d.pts }

// Query is one reverse regret query.
type Query struct {
	Q       Point   // the query product
	K       int     // rank relaxation, k ≥ 1
	Epsilon float64 // regret threshold ε ∈ [0,1)
}

func (q Query) toCore() core.Query {
	return core.Query{Q: vec.Vec(q.Q), K: q.K, Eps: q.Epsilon}
}

// Key returns the canonical comparable form of the query: a compact string
// that is equal exactly when two queries have the same point, K and
// Epsilon (bit-for-bit on the floats). It is the key the result cache,
// per-tenant accounting and request deduplication agree on — use it
// anywhere a query is hashed or grouped instead of re-deriving an ad-hoc
// encoding. The key is stable within a process but not a display format;
// use String for logs.
func (q Query) Key() string { return q.toCore().Key() }

// String formats the query for logs and error messages, e.g.
// "q=(0.4,0.7) k=2 eps=0.1".
func (q Query) String() string { return q.toCore().String() }

// QueryError is the typed validation error returned by every entry point
// for a malformed query; match it with errors.As. Field names the
// offending parameter: "q", "k", "epsilon" or "dim".
type QueryError = core.QueryError

// Validate checks the query's intrinsic parameters — Q finite with
// dimension ≥ 2, K ≥ 1 and Epsilon ∈ [0,1) — without a dataset. The same
// validation (plus the query/dataset dimension match) runs inside every
// entry point: Solve and its variants, NewDynamicRegion and PBAIndex
// queries. A failure is always a *QueryError.
func (q Query) Validate() error {
	return q.toCore().Validate(len(q.Q))
}

// Algorithm selects the solver used by Solve.
type Algorithm int

const (
	// Auto picks Sweeping for d = 2 and EPT otherwise.
	Auto Algorithm = iota
	// SweepingAlgo is the linear-time 2-d sweep (paper §4).
	SweepingAlgo
	// EPTAlgo is the exact partition tree (paper §5.1).
	EPTAlgo
	// APCAlgo is the approximate progressive construction (paper §5.2).
	APCAlgo
	// LPCTAAlgo is the adapted LP-CTA baseline (Tang et al. 2017).
	LPCTAAlgo
	// BruteForceAlgo is the exact reference solver (tests and tiny inputs).
	BruteForceAlgo
)

func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "Auto"
	case SweepingAlgo:
		return "Sweeping"
	case EPTAlgo:
		return "E-PT"
	case APCAlgo:
		return "A-PC"
	case LPCTAAlgo:
		return "LP-CTA"
	case BruteForceAlgo:
		return "BruteForce"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Stats reports the work counters of a solve: planes built and inserted,
// tree nodes, LP solves, samples, and the piece count of the answer. Each
// solver fills the counters that apply to it.
type Stats = core.Stats

// Result is the full outcome of one solve: the qualified region, the
// solver's work counters and the wall-clock time spent. Degraded is nil
// for a primary answer; when the answer came from the fallback chain
// (WithFallback) it records why the primary failed and which fallback
// solver produced the region. Stats then cover every attempt the query
// cost, not just the successful one.
//
// Cache reports how the result cache participated (CacheBypass when no
// cache is configured). For a bound-served answer (CacheInner/CacheOuter)
// CacheSource names the cached query whose region was served; the region
// then bounds, rather than equals, the true answer — see WithCacheBounds.
// For an anytime answer warm-started from a cached inner bound,
// CacheSource names the seed query instead.
//
// Tier classifies the contract the answer was produced under; for
// TierAnytime answers Accuracy carries the enforced accuracy contract
// (Lemma 5.10 ρ bound for the samples actually consumed), nil otherwise.
type Result struct {
	Region      *Region
	Stats       Stats
	Elapsed     time.Duration
	Degraded    *Degradation
	Cache       CacheStatus
	CacheSource *Query
	Tier        SolverTier
	Accuracy    *Accuracy
}

// SolverTier classifies the serving contract of a Result.
type SolverTier int

const (
	// TierExact: the region equals the true answer (exact solvers, exact
	// cache hits, and bound-served exact artifacts — for those, Cache
	// records that the region bounds a different query's answer).
	TierExact SolverTier = iota
	// TierApprox: the region is A-PC's one-sided approximation — a sound
	// inner region with no per-run accuracy report (WithAlgorithm(APCAlgo)
	// or an A-PC fallback answer).
	TierApprox
	// TierAnytime: the region is a cut of the anytime A-PC construction
	// (WithAnytime / WithAnytimeSamples, or a server-side degrade); a sound
	// inner region with Result.Accuracy reporting the Lemma 5.10 bound for
	// the work actually done.
	TierAnytime
)

func (t SolverTier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierApprox:
		return "approx"
	case TierAnytime:
		return "anytime"
	default:
		return fmt.Sprintf("SolverTier(%d)", int(t))
	}
}

// ParseSolverTier maps a tier's String form back to the value.
func ParseSolverTier(s string) (SolverTier, error) {
	switch s {
	case "exact":
		return TierExact, nil
	case "approx":
		return TierApprox, nil
	case "anytime":
		return TierAnytime, nil
	default:
		return 0, fmt.Errorf("rrq: unknown solver tier %q", s)
	}
}

// Accuracy is the enforced accuracy contract attached to a TierAnytime
// Result: the samples the construction actually consumed, the Lemma 5.10
// volume-ratio bound ρ they support at confidence 1−Delta, whether a budget
// cut the run, and an independently seeded estimate of the region's volume.
type Accuracy = core.Accuracy

// CacheStatus reports the result cache's involvement in one solve.
type CacheStatus int

const (
	// CacheBypass: no result cache configured, or the serving path cannot
	// cache (approximate or degraded answers).
	CacheBypass CacheStatus = iota
	// CacheMiss: the cache was consulted, missed, and stored the fresh
	// answer.
	CacheMiss
	// CacheHit: the answer was served from the cache, byte-identical to a
	// fresh solve on the same snapshot.
	CacheHit
	// CacheInner: the region is a sound inner bound (subset of the true
	// region), served from the cached neighbor in CacheSource.
	CacheInner
	// CacheOuter: the region is a sound outer bound (superset of the true
	// region), served from the cached neighbor in CacheSource.
	CacheOuter
)

func (s CacheStatus) String() string {
	switch s {
	case CacheBypass:
		return "bypass"
	case CacheMiss:
		return "miss"
	case CacheHit:
		return "hit"
	case CacheInner:
		return "inner-bound"
	case CacheOuter:
		return "outer-bound"
	default:
		return fmt.Sprintf("CacheStatus(%d)", int(s))
	}
}

// Event is one observability event emitted during a solve; see WithTrace.
// Kind identifies the work unit, N how many of them the event accounts for
// (cheap units such as plane construction are batched into a single event,
// expensive ones such as LP solves arrive one at a time).
type Event = obs.Event

// EventKind enumerates the trace event kinds.
type EventKind = obs.EventKind

// Trace event kinds. Summed over one solve, each kind's N totals match the
// corresponding Stats counter exactly (see docs/ALGORITHMS.md for the full
// mapping to the paper's work measures).
const (
	EventPlaneBuilt       = obs.EvPlaneBuilt       // Stats.PlanesBuilt
	EventPlanePruned      = obs.EvPlanePruned      // Stats.PlanesBuilt − Stats.PlanesInserted
	EventNodeSplit        = obs.EvNodeSplit        // Stats.Splits
	EventLPSolve          = obs.EvLPSolve          // Stats.LPSolves
	EventSampleClassified = obs.EvSampleClassified // Stats.Samples
	EventPieceEmitted     = obs.EvPieceEmitted     // Stats.Pieces
)

// Registry is a process-wide metrics registry: named counters, gauges and
// phase timers, exposable as expvar-compatible text (Text / WriteText).
// Attach one to solves with WithMetrics.
type Registry = obs.Registry

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// TimerSnapshot is a point-in-time copy of one phase timer's histogram.
type TimerSnapshot = obs.TimerSnapshot

// Option configures Solve, SolveContext, SolveBatch and Prepare.
type Option func(*config)

type config struct {
	algo         Algorithm
	samples      int
	seed         int64
	workers      int
	intra        int
	skyband      bool
	trace        obs.TraceFunc
	metrics      *obs.Registry
	queryTimeout time.Duration
	workBudget   int64
	fallbacks    []Algorithm
	kmax         int
	treeNodes    int
	treeServe    bool
	cacheSize    int
	cacheBounds  bool
	noBatchShare bool
	indexCompat  bool

	anytimeBudget  time.Duration
	anytimeSamples int
}

// anytimeActive reports whether any anytime knob selects the anytime tier.
func (c *config) anytimeActive() bool {
	return c.anytimeBudget > 0 || c.anytimeSamples > 0
}

// obsContext attaches the configured trace hook and metrics registry to ctx
// so the solver hot paths can pick them up (one nil-check when off).
func (c *config) obsContext(ctx context.Context) context.Context {
	if c.trace != nil {
		ctx = obs.ContextWithTrace(ctx, c.trace)
	}
	if c.metrics != nil {
		ctx = obs.ContextWithRegistry(ctx, c.metrics)
	}
	return ctx
}

// WithAlgorithm forces a specific solver.
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.algo = a } }

// WithSamples sets the A-PC sample count N (default 10·(d−1), §6.3).
func WithSamples(n int) Option { return func(c *config) { c.samples = n } }

// WithSeed seeds the randomized parts of A-PC.
func WithSeed(s int64) Option { return func(c *config) { c.seed = s } }

// WithWorkers bounds the worker pool of SolveBatch (and Prepared.SolveBatch).
// n ≤ 0 (the default) uses GOMAXPROCS. This is inter-query parallelism —
// queries of a batch run concurrently, each solve staying serial inside;
// see WithIntraQueryWorkers for the orthogonal knob.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithIntraQueryWorkers parallelizes the inside of a single solve: E-PT
// refines the partition tree's independent subtrees with n workers per
// plane insertion, and A-PC classifies its utility samples with n workers.
// n ≤ 1 (the default) keeps every solve serial. The answer is byte-for-byte
// identical for every n — both solvers decompose into disjoint work whose
// merge order is fixed — so the knob trades cores for latency only.
//
// Use WithWorkers to increase batch throughput when there are many queries,
// WithIntraQueryWorkers to cut the latency of few large queries; combining
// both multiplies goroutines (workers × intra), so keep the product near
// GOMAXPROCS.
func WithIntraQueryWorkers(n int) Option { return func(c *config) { c.intra = n } }

// WithSkybandPrefilter enables the k-skyband prefilter: solvers run on the
// cached k-skyband of the dataset instead of the full point set. The
// qualified region is unchanged (a point dominated by ≥ k others only counts
// against q on preferences where its dominators already do), but its convex
// decomposition — and therefore its JSON encoding — may differ, which is why
// the prefilter is off by default.
func WithSkybandPrefilter(on bool) Option { return func(c *config) { c.skyband = on } }

// WithTrace streams per-solve trace events to fn: planes built and pruned,
// node splits, LP solves, samples classified and answer pieces emitted.
// Within one solve the events of each kind sum exactly to the matching
// Stats counter. fn is serialized behind a mutex, so it may be an ordinary
// closure even under SolveBatch or parallel A-PC; the lock makes tracing a
// profiling tool, not a production hot path. A nil fn disables tracing
// (solvers then pay a single nil-check per emission site).
func WithTrace(fn func(Event)) Option {
	return func(c *config) {
		if fn == nil {
			c.trace = nil
			return
		}
		var mu sync.Mutex
		c.trace = func(e obs.Event) {
			mu.Lock()
			fn(e)
			mu.Unlock()
		}
	}
}

// WithQueryTimeout bounds the wall-clock time of each individual solve.
// Unlike a context deadline — which covers a whole SolveBatch call — the
// timeout restarts for every query (and for every fallback attempt, see
// WithFallback), so one pathological query cannot starve the rest of a
// batch. A solve that exceeds its timeout fails with ErrDeadline, or
// degrades to the fallback chain when one is configured. d ≤ 0 (the
// default) disables the per-query timeout.
func WithQueryTimeout(d time.Duration) Option {
	return func(c *config) { c.queryTimeout = d }
}

// WithWorkBudget bounds the work of each individual solve in the solver's
// own units — partition-tree node visits, LP relation tests, sample
// classifications: the same units the amortized cancellation checks count.
// Unlike a timeout, the bound is deterministic: a query either fits its
// budget or fails with a *BudgetError on every run, regardless of machine
// load. The budget is shared across a solve's intra-query workers and
// checked on the amortized cadence, so small overruns (one check interval)
// are possible. With WithFallback, a budget-exhausted query degrades
// instead of failing; the fallback attempt gets a fresh budget. n ≤ 0 (the
// default) disables the budget.
func WithWorkBudget(n int64) Option {
	return func(c *config) { c.workBudget = n }
}

// WithFallback installs a graceful-degradation chain: when the primary
// solver times out (WithQueryTimeout), exhausts its work budget
// (WithWorkBudget) or fails numerically, the query is re-run on each
// fallback algorithm in order — each attempt with a fresh timeout and
// budget — and the first success is returned with Result.Degraded
// recording why and by which solver. The paper's own ladder is the natural
// chain: A-PC is a bounded-error approximation of E-PT (§5.2), so
// WithFallback(APCAlgo) trades exactness for a guaranteed answer; see
// docs/ALGORITHMS.md for the error bound.
//
// Panics, validation errors and caller cancellation are never retried:
// the answer would be wrong for the same reason, or the caller is gone.
func WithFallback(algos ...Algorithm) Option {
	return func(c *config) { c.fallbacks = append([]Algorithm(nil), algos...) }
}

// WithResultCache gives an Index a bounded LRU result cache of n entries
// (n ≤ 0 disables it, the default). Cached entries are keyed on the
// snapshot epoch, the serving path and Query.Key, so a repeat of an exact,
// non-degraded query on an unchanged index is answered without solving —
// byte-identical to the fresh answer, because the cache stores the fresh
// answer. Mutations invalidate for free: Insert/Delete publish a new epoch
// whose keys never match the old generation (which is pruned eagerly).
// Approximate (A-PC) and degraded answers are never cached. With
// WithMetrics, traffic shows as "cache.hit" / "cache.miss" /
// "cache.bound_served". The option only affects Index solving; Solve and
// Prepare over a plain Dataset ignore it.
func WithResultCache(n int) Option { return func(c *config) { c.cacheSize = n } }

// WithCacheBounds additionally lets the cache answer a query it has never
// seen from a cached neighbor on the same query point, exploiting the
// monotonicity the differential harness verifies: the qualified region
// only grows as K or Epsilon grows. A cached (k′ ≤ K, ε′ ≤ Epsilon) answer
// is served as a sound inner bound (Result.Cache = CacheInner: every
// preference in the region qualifies), a cached (k′ ≥ K, ε′ ≥ Epsilon)
// answer as a sound outer bound (CacheOuter: every qualifying preference
// is in the region); ε′ = 0 entries — cached ReverseTopK answers — are the
// natural inner seeds. Bound-served results trade exactness for zero
// solving work, so the option is off by default; callers must check
// Result.Cache before treating the region as exact.
func WithCacheBounds(on bool) Option { return func(c *config) { c.cacheBounds = on } }

// WithBatchSharing toggles cross-query amortization inside SolveBatch
// (default on). When enabled, a batch over one dataset shares work across
// its queries: exact duplicates (equal Query.Key) collapse to a single
// solve fanned out to every slot (BatchResult.Dedup), one skyband
// computation at the batch's maximum K serves every query's prefilter,
// classified plane sets are built once per (query point, ε) group and
// narrowed to each query's K, and the dispatch order clusters queries on
// shared state. Answers are byte-identical to independent solves — the
// shared substrate reproduces exactly the planes and point sets each query
// would have built for itself — so the switch exists for benchmarking
// (shared vs. independent), not correctness. Index-backed batches keep
// drawing planes from the snapshot's own storage, which already
// deduplicates across queries and batches; duplicate collapse and
// clustering still apply.
func WithBatchSharing(on bool) Option { return func(c *config) { c.noBatchShare = !on } }

// WithMetrics accumulates phase timings and solve counters into reg: each
// solver phase (e.g. "phase.ept.insert") gets a histogram timer, and the
// serving layer maintains "rrq.solves" / "rrq.solve_errors" counters. The
// registry is safe for concurrent use and may be shared across datasets and
// goroutines; expose it with Registry.Text or via expvar. A nil reg
// disables metrics.
func WithMetrics(reg *Registry) Option { return func(c *config) { c.metrics = reg } }

// WithAnytime selects the anytime serving tier with a wall-clock budget:
// the solve runs the resumable progressive A-PC construction and cuts at
// the first partition boundary past the deadline, returning whatever
// sound inner region has accumulated by then (possibly empty) with
// Result.Accuracy reporting the Lemma 5.10 ρ bound for the samples
// actually consumed. Cuts happen only at partition boundaries, so for a
// fixed seed the region is monotone in the budget: a longer budget's
// region contains a shorter one's.
//
// The anytime tier replaces the configured algorithm and fallback chain
// and bypasses tree-serving and batch sharing. The result cache still
// participates: anytime answers are stored as inner-bound entries, and a
// cached inner bound on the same query point seeds the construction
// (warm start), so repeated anytime queries ratchet toward the full
// answer. budget ≤ 0 disables the tier.
func WithAnytime(budget time.Duration) Option {
	return func(c *config) { c.anytimeBudget = budget }
}

// WithAnytimeSamples selects the anytime tier with a deterministic work
// budget: the construction cuts after consuming n utility samples instead
// of at a wall-clock deadline, making anytime runs reproducible
// (benchmarks, differential tests). Combine with WithAnytime to also
// bound wall-clock time — whichever budget exhausts first cuts the run.
// n ≤ 0 disables the sample budget.
func WithAnytimeSamples(n int) Option {
	return func(c *config) { c.anytimeSamples = n }
}

// resolvedAlgo maps Auto to the concrete solver choice for the dimension —
// the name the result cache keys serving paths by.
func resolvedAlgo(cfg config, dim int) Algorithm {
	if cfg.algo == Auto {
		if dim == 2 {
			return SweepingAlgo
		}
		return EPTAlgo
	}
	return cfg.algo
}

// solverFor maps the configured algorithm to its core.Solver.
func solverFor(cfg config, dim int) (core.Solver, error) {
	switch algo := resolvedAlgo(cfg, dim); algo {
	case SweepingAlgo:
		return core.SweepingSolver{}, nil
	case EPTAlgo:
		return core.EPTSolver{Opt: core.EPTOptions{Workers: cfg.intra}}, nil
	case APCAlgo:
		return core.APCSolver{Opt: core.APCOptions{Samples: cfg.samples, Seed: cfg.seed, Workers: cfg.intra}}, nil
	case LPCTAAlgo:
		return baseline.LPCTASolver{}, nil
	case BruteForceAlgo:
		return core.BruteForceSolver{MaxPlanes: 64}, nil
	default:
		return nil, fmt.Errorf("rrq: unknown algorithm %v", algo)
	}
}

// policyFor assembles the core serving policy: the primary solver plus the
// configured fallback chain and per-query limits. Fallback algorithms
// resolve under the same configuration as the primary (samples, seed,
// intra-query workers), so e.g. a degraded A-PC answer uses the caller's
// sample count.
func policyFor(cfg config, dim int) (core.SolvePolicy, error) {
	s, err := solverFor(cfg, dim)
	if err != nil {
		return core.SolvePolicy{}, err
	}
	pol := core.SolvePolicy{
		Solver:       s,
		QueryTimeout: cfg.queryTimeout,
		WorkBudget:   cfg.workBudget,
	}
	for _, a := range cfg.fallbacks {
		fcfg := cfg
		fcfg.algo = a
		fb, err := solverFor(fcfg, dim)
		if err != nil {
			return core.SolvePolicy{}, err
		}
		pol.Fallbacks = append(pol.Fallbacks, fb)
	}
	return pol, nil
}

// Solve answers the reverse regret query over the dataset and returns only
// the region.
//
// Deprecated: Solve is the historical entry point from before Result
// existed and is the one solve variant that discards the work counters,
// elapsed time and degradation record. Use SolveResult (same call shape,
// full Result) or SolveContext (Result under a context). Solve remains
// functional — it is SolveResult with the region extracted.
func Solve(d *Dataset, q Query, opts ...Option) (*Region, error) {
	res, err := SolveResult(d, q, opts...)
	if err != nil {
		return nil, err
	}
	return res.Region, nil
}

// SolveResult answers the reverse regret query over the dataset — the
// plain (background-context) form of SolveContext, returning the full
// Result: region, work counters, elapsed time and degradation record.
func SolveResult(d *Dataset, q Query, opts ...Option) (Result, error) {
	return SolveContext(context.Background(), d, q, opts...)
}

// SolveContext answers the reverse regret query under a context and returns
// the full Result: region, work counters and elapsed time. A context
// deadline aborts the solve with ErrDeadline, cancellation with ctx.Err();
// both are observed with an amortized check inside the solver hot loops, so
// aborts take effect within a bounded amount of work. WithTrace and
// WithMetrics attach per-solve observability.
func SolveContext(ctx context.Context, d *Dataset, q Query, opts ...Option) (Result, error) {
	p, err := Prepare(d, opts...)
	if err != nil {
		return Result{}, err
	}
	return p.Solve(ctx, q)
}

// ErrDeadline is returned when a solve exceeds its context deadline or
// per-query timeout (WithQueryTimeout).
var ErrDeadline = core.ErrDeadline

// DataError is the typed validation error for a malformed dataset point —
// NaN/Inf attributes, non-positive values reaching a solver, or a
// dimension mismatch; match it with errors.As. Point is the offending
// point's index, Attr the offending attribute (−1 for a dimension
// mismatch).
type DataError = core.DataError

// SolveError is the typed error for a panic recovered inside a solver or
// one of its worker goroutines; match it with errors.As. The panic is
// isolated to its query — in a batch, the other queries are unaffected —
// and the error carries the solver name, the query's batch position
// (QueryIndex, −1 standalone), the panic value and the goroutine stack.
type SolveError = core.SolveError

// BudgetError is the typed error for a solve that exceeded its work budget
// (WithWorkBudget); match it with errors.As.
type BudgetError = core.BudgetError

// NumericalError is the typed error for a numerical failure inside a
// solver — an LP that did not reach optimality, or degenerate geometry.
// It is fallback-eligible under WithFallback.
type NumericalError = core.NumericalError

// Degradation records that a Result came from the fallback chain: why the
// primary solver failed (Reason, Cause) and which fallback answered.
type Degradation = core.Degradation

// DegradeReason classifies why a query degraded to a fallback solver.
type DegradeReason = core.DegradeReason

// Degradation reasons.
const (
	// DegradeTimeout: the primary exceeded the per-query timeout.
	DegradeTimeout = core.DegradeTimeout
	// DegradeBudget: the primary exhausted its work budget.
	DegradeBudget = core.DegradeBudget
	// DegradeNumerical: the primary failed numerically.
	DegradeNumerical = core.DegradeNumerical
)

// ReverseTopK answers the continuous reverse top-k query: the region of
// preference space on which q ranks within the top k. It equals the
// reverse regret query at ε = 0.
func ReverseTopK(d *Dataset, q Point, k int) (*Region, error) {
	res, err := SolveResult(d, Query{Q: q, K: k, Epsilon: 0}, WithAlgorithm(EPTAlgo))
	if err != nil {
		return nil, err
	}
	return res.Region, nil
}

// RegretRatio computes the k-regret ratio of q under utility vector u
// (Definition 3.2).
func RegretRatio(d *Dataset, q Point, k int, u Vector) float64 {
	return core.RegretRatio(d.points(), core.Query{Q: vec.Vec(q), K: k, Eps: 0}, vec.Vec(u))
}

// Region is the answer to a query: the set of qualified utility vectors,
// represented as convex partitions of the preference simplex.
type Region struct {
	inner *core.Region
	q     core.Query
}

// IsEmpty reports whether no preference qualifies.
func (r *Region) IsEmpty() bool { return r.inner.Empty() }

// NumPartitions returns how many convex pieces the region holds.
func (r *Region) NumPartitions() int { return r.inner.NumPieces() }

// Contains reports whether the utility vector u qualifies. u must be a
// d-dimensional non-negative vector summing to 1.
func (r *Region) Contains(u Vector) bool { return r.inner.Contains(vec.Vec(u)) }

// Measure estimates the fraction of the preference space that qualifies —
// the "market share" of the query product at regret level ε. For 2-d
// interval regions the result is exact; otherwise samples Monte-Carlo
// points (deterministically).
func (r *Region) Measure(samples int) float64 {
	return r.MeasureWithSeed(1, samples)
}

// MeasureWithSeed is Measure with a caller-supplied seed for the
// Monte-Carlo sampler. Equal seeds and sample counts return the identical
// estimate, making differential and replayed runs comparable; Measure is
// MeasureWithSeed(1, samples).
func (r *Region) MeasureWithSeed(seed int64, samples int) float64 {
	return r.inner.MeasureWithSeed(seed, samples)
}

// Sample returns one qualified utility vector, or nil when the region is
// empty.
func (r *Region) Sample(seed int64) Vector {
	u := r.inner.SamplePoint(rand.New(rand.NewSource(seed)))
	return Vector(u)
}

// Intervals2D returns the region as intervals [lo,hi] of the sweep
// parameter t, where the preference is (t, 1−t). Only valid when d = 2.
func (r *Region) Intervals2D() [][2]float64 { return r.inner.Intervals() }

// MarshalJSON encodes the region in a self-contained form: intervals for
// 2-d sweep answers, half-space constraint sets (plus vertices) otherwise.
func (r *Region) MarshalJSON() ([]byte, error) { return r.inner.MarshalJSON() }

// PBAIndex is the adapted PBA+ baseline: an index built once over a
// dataset, answering reverse regret queries for any k up to its kmax.
// Included for benchmark parity with the paper; its preprocessing is
// intentionally expensive.
type PBAIndex struct {
	inner *baseline.PBAIndex
}

// BuildPBAIndex preprocesses the dataset for queries with K ≤ kmax.
// maxNodes bounds index size (0 = default); ErrPBABudget is returned when
// the budget is exceeded.
func BuildPBAIndex(d *Dataset, kmax, maxNodes int) (*PBAIndex, error) {
	ix, err := baseline.BuildPBA(d.points(), kmax, maxNodes)
	if err != nil {
		return nil, err
	}
	return &PBAIndex{inner: ix}, nil
}

// ErrPBABudget signals that PBA+ preprocessing exceeded its node budget.
var ErrPBABudget = baseline.ErrPBABudget

// Query answers a reverse regret query with the prebuilt index. It is
// QueryContext with a background context and no options.
func (ix *PBAIndex) Query(q Query) (*Region, error) {
	return ix.QueryContext(context.Background(), q)
}

// QueryContext answers a reverse regret query with the prebuilt index under
// a context. WithTrace and WithMetrics attach per-query observability;
// other options are ignored (the index fixes the algorithm).
func (ix *PBAIndex) QueryContext(ctx context.Context, q Query, opts ...Option) (*Region, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	cq := q.toCore()
	r, err := ix.inner.QueryContext(cfg.obsContext(ctx), cq)
	if err != nil {
		return nil, err
	}
	return &Region{inner: r, q: cq}, nil
}

// DynamicRegion maintains the answer to one query over a changing market —
// the paper's stated future work. It is a standing query over a snapshot
// index: every mutation publishes a new epoch through the index's
// delta-maintained preprocessing (no rebuild, for deletions included), and
// Region re-solves lazily — at most once per epoch — against the epoch's
// shared skyband and plane storage. For many standing queries over one
// changing market, share a single Index and call Solve per query instead.
type DynamicRegion struct {
	ix *index.Index
	q  core.Query

	mu     sync.Mutex
	ver    uint64
	cached *Region
}

// NewDynamicRegion builds the initial answer for q over the dataset.
func NewDynamicRegion(d *Dataset, q Query) (*DynamicRegion, error) {
	cq := q.toCore()
	// Intrinsic validity first (a malformed query point reports "q"), then
	// the dataset-dimension match ("dim") — the shared entry-point precedence.
	if err := cq.Validate(len(q.Q)); err != nil {
		return nil, err
	}
	if len(q.Q) != d.Dim() {
		return nil, &QueryError{Field: "dim", Msg: fmt.Sprintf("query dimension %d does not match dataset dimension %d", len(q.Q), d.Dim())}
	}
	ix, err := index.Build(d.points(), d.Dim(), index.Options{Kmax: q.K})
	if err != nil {
		return nil, err
	}
	return &DynamicRegion{ix: ix, q: cq}, nil
}

// Insert adds a product to the market; the answer updates on the next
// Region call.
func (dr *DynamicRegion) Insert(p Point) error {
	_, err := dr.ix.Insert(vec.Vec(p))
	return err
}

// Delete removes the i-th product (in insertion order).
func (dr *DynamicRegion) Delete(i int) error {
	_, err := dr.ix.Delete(i)
	return err
}

// Len returns the current market size.
func (dr *DynamicRegion) Len() int { return dr.ix.Len() }

// Region returns the current answer, re-solving only when the market
// changed since the last call.
func (dr *DynamicRegion) Region() *Region {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	snap := dr.ix.Snapshot()
	if dr.cached != nil && dr.ver == snap.Version() {
		return dr.cached
	}
	// The instance was validated at construction and every mutation
	// revalidated its point, so with an unbounded background context the
	// exact solver cannot fail.
	r, _, err := (core.EPTSolver{}).Solve(context.Background(), snap.Prepared(nil), dr.q)
	if err != nil {
		panic(fmt.Sprintf("rrq: dynamic re-solve failed on a validated instance: %v", err))
	}
	dr.ver = snap.Version()
	dr.cached = &Region{inner: r, q: dr.q}
	return dr.cached
}

// DistType selects a synthetic data distribution.
type DistType = dataset.Type

// Synthetic distribution re-exports.
const (
	Independent    = dataset.Independent
	Correlated     = dataset.Correlated
	Anticorrelated = dataset.Anticorrelated
)

// SyntheticDataset generates n points of dimension d from one of the three
// classical distributions, normalized to (0,1] and fully determined by the
// seed.
func SyntheticDataset(t DistType, n, d int, seed int64) *Dataset {
	return &Dataset{pts: dataset.Generate(t, n, d, seed), dim: d}
}

// RealDataset returns the seeded stand-in for one of the paper's real
// datasets: "Island", "Weather", "Car" or "NBA" (see DESIGN.md for the
// substitution rationale). maxN > 0 caps the size.
func RealDataset(name string, maxN int) (*Dataset, error) {
	pts, err := dataset.Real(dataset.RealName(name), maxN)
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("rrq: empty real dataset %q", name)
	}
	return &Dataset{pts: pts, dim: pts[0].Dim()}, nil
}

// RandomQuery draws a query product for experiments: a random dataset point
// perturbed slightly, as in the paper's protocol. It returns nil on an
// empty dataset (e.g. the k ≤ 0 skyband).
func (d *Dataset) RandomQuery(seed int64) Point {
	if len(d.pts) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	return Point(dataset.RandQuery(rng, d.pts))
}

// ShareProfile is the market-share curve of a query product: Share(ε) is
// the fraction of the preference space on which the product is a
// (k,ε)-regret point, for every ε at once. It is built from one sampling
// pass (the per-preference minimal qualifying threshold ε* is computed
// directly), which is far cheaper than solving one reverse regret query per
// ε when sweeping tolerances during product design.
type ShareProfile struct {
	inner *core.ShareProfile
}

// NewShareProfile samples the preference space (deterministically from
// seed) and returns the share curve for query product q at rank k.
// samples ≤ 0 uses a default of 2000.
func NewShareProfile(d *Dataset, q Point, k, samples int, seed int64) (*ShareProfile, error) {
	sp, err := core.NewShareProfile(d.points(),
		core.Query{Q: vec.Vec(q), K: k, Eps: 0},
		samples, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &ShareProfile{inner: sp}, nil
}

// Share returns the market share at threshold eps.
func (sp *ShareProfile) Share(eps float64) float64 { return sp.inner.Share(eps) }

// EpsForShare returns the smallest threshold reaching the target share.
func (sp *ShareProfile) EpsForShare(target float64) float64 { return sp.inner.EpsForShare(target) }

// RegretMinimizingSet selects r representative products with the classical
// greedy regret-minimizing-set algorithm (Nanongkai et al. 2010) — the
// forward counterpart of the reverse regret query: every customer finds,
// among the selected products, one scoring within the returned maximum
// regret ratio of their favourite in the whole market. It returns the
// selected product indices and that ratio.
func RegretMinimizingSet(d *Dataset, r int) (indices []int, maxRegret float64, err error) {
	return rms.Greedy(d.points(), r)
}
