package rrq

// Integration tests: the full pipeline — generation, normalization,
// k-skyband preprocessing, solving with every algorithm — on each of the
// real-dataset stand-ins, cross-checked through the public API only.

import (
	"math"
	"math/rand"
	"testing"
)

func TestIntegrationRealDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	for _, name := range []string{"Island", "Weather", "Car", "NBA"} {
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := RealDataset(name, 2000)
			if err != nil {
				t.Fatal(err)
			}
			const k, eps = 5, 0.1
			market := ds.KSkyband(k)
			q := Query{Q: ds.RandomQuery(11), K: k, Epsilon: eps}

			exact, err := Solve(market, q, WithAlgorithm(EPTAlgo))
			if err != nil {
				t.Fatal(err)
			}
			// The answer over the full dataset must match the answer over
			// the skyband.
			full, err := Solve(ds, q, WithAlgorithm(EPTAlgo))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(exact.Measure(20000)-full.Measure(20000)) > 0.01 {
				t.Error("skyband preprocessing changed the answer")
			}
			// LP-CTA agrees with E-PT.
			lpcta, err := Solve(market, q, WithAlgorithm(LPCTAAlgo))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(exact.Measure(20000)-lpcta.Measure(20000)) > 0.01 {
				t.Error("LP-CTA disagrees with E-PT")
			}
			// A-PC is sound: never larger than exact.
			apc, err := Solve(market, q, WithAlgorithm(APCAlgo), WithSamples(150), WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			if apc.Measure(20000) > exact.Measure(20000)+0.01 {
				t.Error("A-PC region exceeds the exact region")
			}
			// 2-d datasets also go through Sweeping.
			if ds.Dim() == 2 {
				sw, err := Solve(market, q, WithAlgorithm(SweepingAlgo))
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(exact.Measure(20000)-sw.Measure(20000)) > 0.01 {
					t.Error("Sweeping disagrees with E-PT")
				}
			}
			// Membership spot checks against the regret-ratio definition.
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 50; i++ {
				u := make(Vector, ds.Dim())
				var s float64
				for j := range u {
					u[j] = rng.ExpFloat64()
					s += u[j]
				}
				for j := range u {
					u[j] /= s
				}
				ratio := RegretRatio(market, q.Q, q.K, u)
				if exact.Contains(u) && ratio >= eps+1e-6 {
					t.Errorf("u %v in region but ratio %v ≥ ε", u, ratio)
				}
				if !exact.Contains(u) && ratio < eps-1e-6 {
					// ratio safely below ε means qualified.
					t.Errorf("u %v outside region but ratio %v < ε", u, ratio)
				}
			}
		})
	}
}
