package rrq

// Benchmarks: one testing.B benchmark per evaluation figure of the paper
// (Figures 7–17), at scaled-down parameters so `go test -bench=.` exercises
// the full harness quickly. cmd/rrqbench runs the same experiments at quick
// or paper scale and prints the plotted series.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rrq/internal/baseline"
	"rrq/internal/core"
	"rrq/internal/dataset"
	"rrq/internal/expt"
	"rrq/internal/index"
	"rrq/internal/skyband"
	"rrq/internal/study"
	"rrq/internal/vec"
)

// benchInstance prepares a skyband-pruned workload with a competitive
// query: a perturbed skyband point, following the harness protocol (a
// dominated query short-circuits every solver and benchmarks nothing).
func benchInstance(b *testing.B, typ dataset.Type, n, d, k int, eps float64) ([]vec.Vec, core.Query) {
	b.Helper()
	pts := dataset.Generate(typ, n, d, 42)
	return benchQuery(pts, k, eps)
}

func benchReal(b *testing.B, name dataset.RealName, maxN, k int, eps float64) ([]vec.Vec, core.Query) {
	b.Helper()
	pts, err := dataset.Real(name, maxN)
	if err != nil {
		b.Fatal(err)
	}
	return benchQuery(pts, k, eps)
}

func benchQuery(pts []vec.Vec, k int, eps float64) ([]vec.Vec, core.Query) {
	band := skyband.Select(pts, skyband.KSkyband(pts, k))
	rng := rand.New(rand.NewSource(7))
	q := core.Query{Q: dataset.RandQuery(rng, band), K: k, Eps: eps}
	return band, q
}

// BenchmarkFig07UserStudy: the §6.2 user study pipeline.
func BenchmarkFig07UserStudy(b *testing.B) {
	cars, err := dataset.Real(dataset.Car, 200)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study.Run(cars, []int{1, 5, 10}, study.Config{Seed: 1, Participants: 5, LearnRounds: 6})
	}
}

// BenchmarkFig08APCSamples: A-PC cost versus the sample size N (Fig 8b; the
// accuracy series of Fig 8a is produced by cmd/rrqbench -exp fig8a).
func BenchmarkFig08APCSamples(b *testing.B) {
	pts, q := benchInstance(b, dataset.Independent, 20000, 4, 10, 0.1)
	for _, N := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.APC(pts, q, core.APCOptions{Samples: N, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchAlgos runs the standard per-figure algorithm set. skipLPCTA exists
// for the anti-correlated workloads, where LP-CTA runs past any sensible
// benchmark time (the paper reports 974.8 s for it there).
func benchAlgos(b *testing.B, pts []vec.Vec, q core.Query, sweeping bool, skipLPCTA ...bool) {
	if sweeping {
		b.Run("Sweeping", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Sweeping(pts, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("E-PT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EPT(pts, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("A-PC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.APC(pts, q, core.APCOptions{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if len(skipLPCTA) > 0 && skipLPCTA[0] {
		return
	}
	b.Run("LP-CTA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.LPCTA(pts, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig09a2DVaryK: 2-d synthetic, vary k (Figure 9a).
func BenchmarkFig09a2DVaryK(b *testing.B) {
	for _, k := range []int{1, 10, 40} {
		pts, q := benchInstance(b, dataset.Independent, 20000, 2, k, 0.1)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchAlgos(b, pts, q, true)
		})
	}
}

// BenchmarkFig09b2DVaryEps: 2-d synthetic, vary ε (Figure 9b).
func BenchmarkFig09b2DVaryEps(b *testing.B) {
	for _, eps := range []float64{0, 0.1, 0.2} {
		pts, q := benchInstance(b, dataset.Independent, 20000, 2, 10, eps)
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			benchAlgos(b, pts, q, true)
		})
	}
}

// BenchmarkFig10a4DVaryK: 4-d synthetic, vary k (Figure 10a).
func BenchmarkFig10a4DVaryK(b *testing.B) {
	for _, k := range []int{1, 5, 10} {
		pts, q := benchInstance(b, dataset.Independent, 20000, 4, k, 0.1)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchAlgos(b, pts, q, false)
		})
	}
}

// BenchmarkFig10b4DVaryEps: 4-d synthetic, vary ε (Figure 10b).
func BenchmarkFig10b4DVaryEps(b *testing.B) {
	for _, eps := range []float64{0, 0.1, 0.2} {
		pts, q := benchInstance(b, dataset.Independent, 20000, 4, 5, eps)
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			benchAlgos(b, pts, q, false)
		})
	}
}

// BenchmarkFig11VaryD: scalability in d (Figure 11).
func BenchmarkFig11VaryD(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		pts, q := benchInstance(b, dataset.Independent, 20000, d, 5, 0.1)
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			// LP-CTA at d = 5 runs past any benchmark time (cf. fig11).
			benchAlgos(b, pts, q, d == 2, d >= 5)
		})
	}
}

// BenchmarkFig12VaryN: scalability in n (Figure 12).
func BenchmarkFig12VaryN(b *testing.B) {
	for _, n := range []int{5000, 20000, 80000} {
		pts, q := benchInstance(b, dataset.Independent, n, 4, 5, 0.1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchAlgos(b, pts, q, false)
		})
	}
}

// BenchmarkFig13VaryType: the three data distributions (Figure 13).
func BenchmarkFig13VaryType(b *testing.B) {
	for _, typ := range []dataset.Type{dataset.Anticorrelated, dataset.Correlated, dataset.Independent} {
		pts, q := benchInstance(b, typ, 20000, 4, 5, 0.1)
		b.Run(typ.String(), func(b *testing.B) {
			benchAlgos(b, pts, q, false, typ == dataset.Anticorrelated)
		})
	}
}

// BenchmarkFig14Island – BenchmarkFig17NBA: the four real datasets
// (Figures 14–17) at their default k = 10, ε = 0.1 settings.
func BenchmarkFig14Island(b *testing.B) {
	pts, q := benchReal(b, dataset.Island, 10000, 10, 0.1)
	benchAlgos(b, pts, q, true)
}

func BenchmarkFig15Weather(b *testing.B) {
	pts, q := benchReal(b, dataset.Weather, 10000, 10, 0.1)
	benchAlgos(b, pts, q, false)
}

func BenchmarkFig16Car(b *testing.B) {
	pts, q := benchReal(b, dataset.Car, 10000, 10, 0.1)
	benchAlgos(b, pts, q, false)
}

func BenchmarkFig17NBA(b *testing.B) {
	pts, q := benchReal(b, dataset.NBA, 10000, 5, 0.1)
	benchAlgos(b, pts, q, false)
}

// BenchmarkPBAPreprocessAndQuery measures the PBA+ split the paper
// describes: expensive preprocessing, cheap-ish queries.
func BenchmarkPBAPreprocessAndQuery(b *testing.B) {
	pts, q := benchInstance(b, dataset.Independent, 5000, 3, 3, 0.1)
	b.Run("preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.BuildPBA(pts, q.K, 500000); err != nil {
				b.Fatal(err)
			}
		}
	})
	ix, err := baseline.BuildPBA(pts, q.K, 500000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEPT quantifies the contribution of E-PT's published
// accelerations by comparing the full solver against LP-CTA (which shares
// the tree strategy but lacks all four accelerations) and against the raw
// arrangement construction.
func BenchmarkAblationEPT(b *testing.B) {
	pts, q := benchInstance(b, dataset.Independent, 10000, 3, 5, 0.1)
	b.Run("full-EPT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EPT(pts, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("no-accelerations-LPCTA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.LPCTA(pts, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, v := range []struct {
		name string
		opt  core.EPTOptions
	}{
		{"no-reduction", core.EPTOptions{NoReduction: true}},
		{"no-ordering", core.EPTOptions{NoOrdering: true}},
		{"no-lazy-split", core.EPTOptions{NoLazySplit: true}},
	} {
		opt := v.opt
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.EPTWithOptions(pts, q, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkybandPreprocess measures the dataset preprocessing cost that
// every reverse-query system shares.
func BenchmarkSkybandPreprocess(b *testing.B) {
	pts := dataset.Generate(dataset.Independent, 100000, 4, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyband.KSkyband(pts, 10)
	}
}

// BenchmarkHarnessQuickFigure exercises one full expt harness figure.
func BenchmarkHarnessQuickFigure(b *testing.B) {
	sc := expt.Scale{Seed: 1, Repeats: 1, PBABudget: 1}
	for i := 0; i < b.N; i++ {
		expt.Fig8b(sc)
	}
}

// BenchmarkDynamicInsert measures incremental maintenance (the paper's
// future-work extension) against re-solving per insertion.
func BenchmarkDynamicInsert(b *testing.B) {
	pts, q := benchInstance(b, dataset.Independent, 5000, 3, 5, 0.1)
	b.Run("incremental", func(b *testing.B) {
		ix, err := index.Build(pts, 3, index.Options{Kmax: q.K})
		if err != nil {
			b.Fatal(err)
		}
		extra := dataset.Generate(dataset.Independent, b.N, 3, 99)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Insert(extra[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("re-solve", func(b *testing.B) {
		cur := append([]vec.Vec(nil), pts...)
		extra := dataset.Generate(dataset.Independent, b.N, 3, 99)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur = append(cur, extra[i])
			if _, err := core.EPT(cur, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShareProfile measures the one-pass market-share curve.
func BenchmarkShareProfile(b *testing.B) {
	pts, q := benchInstance(b, dataset.Independent, 20000, 4, 10, 0.1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewShareProfile(pts, q, 2000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveBatch measures the parallel batch-query engine: one shared
// Prepared (Indep, n = 10k, d = 4) serving 64 E-PT queries through worker
// pools of increasing width.
func BenchmarkSolveBatch(b *testing.B) {
	pts := dataset.Generate(dataset.Independent, 10000, 4, 42)
	prep, err := core.Prepare(pts, 4, true)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	queries := make([]core.Query, 64)
	for i := range queries {
		queries[i] = core.Query{Q: dataset.RandQuery(rng, pts), K: 10, Eps: 0.1}
	}
	prep.PointsFor(10) // warm the skyband cache outside the timed region
	ctx := context.Background()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				outs := core.SolveBatch(ctx, core.EPTSolver{}, prep, queries, workers)
				for _, o := range outs {
					if o.Err != nil {
						b.Fatal(o.Err)
					}
				}
			}
		})
	}
}
