package rrq

// Batch serving layer: one dataset's preprocessing shared across many
// queries, fanned out over a bounded worker pool. The per-dataset work
// (validation, optional k-skyband prefilter) is done once in Prepare;
// each query then runs independently, with per-query error isolation and
// deterministic, input-ordered results. Observability (WithTrace,
// WithMetrics) fixed at Prepare time flows into every solve.

import (
	"context"
	"time"

	"rrq/internal/core"
	"rrq/internal/geom"
	"rrq/internal/obs"
)

// Prepared is a dataset bound to a solver configuration, ready to answer
// many queries. It is safe for concurrent use: the underlying preprocessing
// is immutable (the skyband cache is internally synchronized), so one
// Prepared can serve Solve and SolveBatch calls from any number of
// goroutines.
type Prepared struct {
	prep *core.Prepared
	pol  core.SolvePolicy
	cfg  config
	dim  int
}

// Prepare validates the dataset once and fixes the solver configuration for
// subsequent Solve/SolveBatch calls. The same Options as Solve apply;
// WithSkybandPrefilter additionally makes every query run on the cached
// k-skyband of its rank parameter, and the resilience options
// (WithQueryTimeout, WithWorkBudget, WithFallback) fix the per-query
// serving policy every solve runs under.
func Prepare(d *Dataset, opts ...Option) (*Prepared, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	prep, err := core.Prepare(d.points(), d.Dim(), cfg.skyband)
	if err != nil {
		return nil, err
	}
	pol, err := policyFor(cfg, d.Dim())
	if err != nil {
		return nil, err
	}
	return &Prepared{prep: prep, pol: pol, cfg: cfg, dim: d.Dim()}, nil
}

// Solve answers one query against the prepared dataset, returning the full
// Result. Every solve is guarded: a solver panic comes back as a per-call
// *SolveError rather than crashing the process, the per-query timeout and
// work budget apply, and a degradable failure re-runs the query on the
// fallback chain (Result.Degraded then records why). On error the Result
// still carries the partial Stats and elapsed time of the failed attempts.
func (p *Prepared) Solve(ctx context.Context, q Query) (Result, error) {
	if p.cfg.anytimeActive() {
		return p.solveAnytime(ctx, q, nil, "")
	}
	cq := q.toCore()
	start := time.Now()
	r, st, deg, err := p.pol.Solve(p.cfg.obsContext(ctx), p.prep, cq, -1)
	res := Result{Stats: st, Elapsed: time.Since(start), Degraded: deg}
	res.Tier = tierFor(p.cfg, p.dim, deg)
	if reg := p.cfg.metrics; reg != nil {
		reg.Counter("rrq.solves").Inc()
		if err != nil {
			reg.Counter("rrq.solve_errors").Inc()
		}
	}
	if err != nil {
		return res, err
	}
	res.Region = &Region{inner: r, q: cq}
	return res, nil
}

// tierFor classifies a non-anytime answer: TierApprox when A-PC produced
// the region (configured primary, or the fallback that answered a degraded
// query), TierExact otherwise.
func tierFor(cfg config, dim int, deg *core.Degradation) SolverTier {
	if deg != nil {
		if deg.Solver == (core.APCSolver{}).Name() {
			return TierApprox
		}
		return TierExact
	}
	if resolvedAlgo(cfg, dim) == APCAlgo {
		return TierApprox
	}
	return TierExact
}

// anytimeOptions maps the public configuration onto the core anytime
// construction: the A-PC sample/seed knobs carry over, the anytime knobs
// become the cut budgets, and warm holds the partitions of a previously
// served inner bound to resume from.
func anytimeOptions(cfg config, warm []*geom.Cell) core.AnytimeOptions {
	return core.AnytimeOptions{
		Samples:    cfg.samples,
		Seed:       cfg.seed,
		MaxSamples: cfg.anytimeSamples,
		Budget:     cfg.anytimeBudget,
		Warm:       warm,
	}
}

// solveAnytime answers one query on the anytime tier: the resumable
// progressive A-PC construction, cut by the configured budget(s). warm
// seeds the construction with the partitions of a previously served inner
// bound (the cells are appended verbatim, so the result region contains
// the seed); warmName, when non-empty, names the metrics counter bumped
// for the warm start.
func (p *Prepared) solveAnytime(ctx context.Context, q Query, warm []*geom.Cell, warmName string) (Result, error) {
	cq := q.toCore()
	start := time.Now()
	r, st, acc, err := core.APCAnytimeContext(p.cfg.obsContext(ctx), p.prep.PointsFor(cq.K), cq, anytimeOptions(p.cfg, warm))
	res := Result{Stats: st, Elapsed: time.Since(start), Tier: TierAnytime}
	if reg := p.cfg.metrics; reg != nil {
		reg.Counter("rrq.solves").Inc()
		if err != nil {
			reg.Counter("rrq.solve_errors").Inc()
		}
		if warm != nil && warmName != "" {
			reg.Counter(warmName).Inc()
		}
	}
	if err != nil {
		return res, err
	}
	res.Region = &Region{inner: r, q: cq}
	res.Accuracy = &acc
	return res, nil
}

// BatchResult is one query's outcome within a batch: the full Result of the
// solve, or the per-query error. A failed query never affects its
// neighbours; its Result still reports the partial Stats and elapsed time.
// A solver panic surfaces as that query's *SolveError (match with
// errors.As), and a query answered by the fallback chain carries a non-nil
// Result.Degraded.
type BatchResult struct {
	Result
	Err error
	// Dedup marks a slot whose query was an exact duplicate (equal
	// Query.Key) of an earlier one in the batch: the result is a copy of
	// that single solve (regions are immutable and safely shared), Stats
	// describe the shared solve, and Elapsed is zero — no work ran for this
	// slot. See WithBatchSharing.
	Dedup bool
}

// BatchReport aggregates a whole batch: the per-query results in input
// order plus batch-level accounting — wall-clock time, summed per-query
// time (≥ Elapsed under parallelism), aggregated work counters over the
// successful queries, success/failure counts, and per-phase timing
// snapshots when metrics are enabled.
type BatchReport struct {
	// Results holds one entry per input query, in input order.
	Results []BatchResult
	// Elapsed is the wall-clock duration of the whole batch.
	Elapsed time.Duration
	// QueryTime is the sum of every query's solve time; with w workers it
	// approaches w × Elapsed on saturated pools.
	QueryTime time.Duration
	// Agg sums the Stats counters of the successful queries.
	Agg Stats
	// Solved and Failed count the queries that returned a region vs. an
	// error. Degraded counts the subset of Solved whose region came from
	// the fallback chain (see WithFallback). Deduped counts the slots
	// answered by copying an exact duplicate's solve; their copied Stats
	// still sum into Agg (Agg describes the answers delivered), while the
	// work actually saved shows in QueryTime, where a deduped slot is zero.
	Solved, Failed, Degraded, Deduped int
	// Phases maps solver phase names (e.g. "phase.ept.insert") to timing
	// histograms covering exactly this batch. Nil unless WithMetrics was
	// set at Prepare time.
	Phases map[string]TimerSnapshot
}

// SolveBatch answers the queries concurrently over the shared
// preprocessing, using the worker count fixed at Prepare time (WithWorkers;
// ≤ 0 means GOMAXPROCS). WithIntraQueryWorkers additionally parallelizes
// the inside of each solve; the two multiply, so keep workers × intra near
// GOMAXPROCS. Results arrive in query order regardless of scheduling.
// Unless WithBatchSharing(false) was set, the batch amortizes work across
// its queries — duplicate collapse, one shared skyband pass, per-(point, ε)
// plane groups, clustered dispatch and per-worker scratch arenas — with
// answers byte-identical to independent solves. When ctx is canceled mid-batch, in-flight solves abort at
// their next amortized check (a deadline surfaces as ErrDeadline,
// cancellation as ctx.Err()) and queries not yet started report ctx.Err()
// without running.
//
// With WithMetrics set, phase timings are recorded into a private registry
// so the report's Phases covers exactly this batch, then merged into the
// user's registry along with the rrq.solves / rrq.solve_errors counters.
func (p *Prepared) SolveBatch(ctx context.Context, queries []Query) *BatchReport {
	if p.cfg.anytimeActive() {
		// The anytime tier has no sharing substrate: cross-query sharing
		// (and dedup) reproduces full solves, while an anytime cut's region
		// depends on the budget each individual solve was granted. Answer
		// each query independently (solveAnytime attaches trace and metrics
		// itself; phase timings land in the user's registry, so Phases stays
		// nil here).
		rep := &BatchReport{Results: make([]BatchResult, len(queries))}
		start := time.Now()
		for i, q := range queries {
			res, err := p.solveAnytime(ctx, q, nil, "")
			rep.Results[i] = BatchResult{Result: res, Err: err}
			rep.QueryTime += res.Elapsed
			if err == nil {
				rep.Solved++
				rep.Agg.Add(res.Stats)
			} else {
				rep.Failed++
			}
		}
		rep.Elapsed = time.Since(start)
		return rep
	}
	if p.cfg.trace != nil {
		ctx = obs.ContextWithTrace(ctx, p.cfg.trace)
	}
	var batchReg *obs.Registry
	if p.cfg.metrics != nil {
		batchReg = obs.NewRegistry()
		ctx = obs.ContextWithRegistry(ctx, batchReg)
	}
	cqs := make([]core.Query, len(queries))
	for i, q := range queries {
		cqs[i] = q.toCore()
	}
	share := !p.cfg.noBatchShare
	start := time.Now()
	outs := core.SolveBatchOptions(ctx, p.pol, p.prep, cqs, core.BatchOptions{
		Workers: p.cfg.workers,
		Share:   share,
		Dedup:   share,
	})
	rep := &BatchReport{
		Results: make([]BatchResult, len(outs)),
		Elapsed: time.Since(start),
	}
	for i, o := range outs {
		br := BatchResult{Err: o.Err, Dedup: o.Dedup}
		br.Stats = o.Stats
		br.Elapsed = o.Elapsed
		br.Degraded = o.Degraded
		br.Tier = tierFor(p.cfg, p.dim, o.Degraded)
		rep.QueryTime += o.Elapsed
		if o.Dedup {
			rep.Deduped++
		}
		if o.Err == nil {
			br.Region = &Region{inner: o.Region, q: cqs[i]}
			rep.Solved++
			rep.Agg.Add(o.Stats)
			if o.Degraded != nil {
				rep.Degraded++
			}
		} else {
			rep.Failed++
		}
		rep.Results[i] = br
	}
	if batchReg != nil {
		batchReg.Counter("rrq.solves").Add(int64(len(outs)))
		batchReg.Counter("rrq.solve_errors").Add(int64(rep.Failed))
		rep.Phases = batchReg.Timers()
		p.cfg.metrics.Merge(batchReg)
	}
	return rep
}

// SolveBatch prepares the dataset once and answers all queries through a
// bounded worker pool — the one-shot form of Prepare + Prepared.SolveBatch.
func SolveBatch(ctx context.Context, d *Dataset, queries []Query, opts ...Option) (*BatchReport, error) {
	p, err := Prepare(d, opts...)
	if err != nil {
		return nil, err
	}
	return p.SolveBatch(ctx, queries), nil
}
