package rrq

// Batch serving layer: one dataset's preprocessing shared across many
// queries, fanned out over a bounded worker pool. The per-dataset work
// (validation, optional k-skyband prefilter) is done once in Prepare;
// each query then runs independently, with per-query error isolation and
// deterministic, input-ordered results.

import (
	"context"

	"rrq/internal/core"
)

// Prepared is a dataset bound to a solver configuration, ready to answer
// many queries. It is safe for concurrent use: the underlying preprocessing
// is immutable (the skyband cache is internally synchronized), so one
// Prepared can serve Solve and SolveBatch calls from any number of
// goroutines.
type Prepared struct {
	prep   *core.Prepared
	solver core.Solver
	cfg    config
	dim    int
}

// Prepare validates the dataset once and fixes the solver configuration for
// subsequent Solve/SolveBatch calls. The same Options as Solve apply;
// WithSkybandPrefilter additionally makes every query run on the cached
// k-skyband of its rank parameter.
func Prepare(d *Dataset, opts ...Option) (*Prepared, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	prep, err := core.Prepare(d.points(), d.Dim(), cfg.skyband)
	if err != nil {
		return nil, err
	}
	s, err := solverFor(cfg, d.Dim())
	if err != nil {
		return nil, err
	}
	return &Prepared{prep: prep, solver: s, cfg: cfg, dim: d.Dim()}, nil
}

// Solve answers one query against the prepared dataset.
func (p *Prepared) Solve(ctx context.Context, q Query) (*Region, Stats, error) {
	cq := q.toCore()
	r, st, err := p.solver.Solve(ctx, p.prep, cq)
	if err != nil {
		return nil, st, err
	}
	return &Region{inner: r, q: cq}, st, nil
}

// BatchResult is one query's outcome within a batch: the answer and its
// work counters, or the per-query error. A failed query never affects its
// neighbours.
type BatchResult struct {
	Region *Region
	Stats  Stats
	Err    error
}

// SolveBatch answers the queries concurrently over the shared
// preprocessing, using the worker count fixed at Prepare time (WithWorkers;
// ≤ 0 means GOMAXPROCS). Results arrive in query order regardless of
// scheduling. When ctx is canceled mid-batch, in-flight solves abort at
// their next amortized check (a deadline surfaces as ErrDeadline,
// cancellation as ctx.Err()) and queries not yet started report ctx.Err()
// without running.
func (p *Prepared) SolveBatch(ctx context.Context, queries []Query) []BatchResult {
	cqs := make([]core.Query, len(queries))
	for i, q := range queries {
		cqs[i] = q.toCore()
	}
	outs := core.SolveBatch(ctx, p.solver, p.prep, cqs, p.cfg.workers)
	res := make([]BatchResult, len(outs))
	for i, o := range outs {
		res[i] = BatchResult{Stats: o.Stats, Err: o.Err}
		if o.Err == nil {
			res[i].Region = &Region{inner: o.Region, q: cqs[i]}
		}
	}
	return res
}

// SolveBatch prepares the dataset once and answers all queries through a
// bounded worker pool — the one-shot form of Prepare + Prepared.SolveBatch.
func SolveBatch(ctx context.Context, d *Dataset, queries []Query, opts ...Option) ([]BatchResult, error) {
	p, err := Prepare(d, opts...)
	if err != nil {
		return nil, err
	}
	return p.SolveBatch(ctx, queries), nil
}
