package rrq

import (
	"errors"
	"math"
	"testing"
)

func table3Dataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewDataset([][]float64{{0.2, 0.92}, {0.7, 0.54}, {0.6, 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewDataset([][]float64{{1}}); err == nil {
		t.Error("1-d dataset accepted")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {1, 2, 3}}); err == nil {
		t.Error("ragged dataset accepted")
	}
	ds := table3Dataset(t)
	if ds.Len() != 3 || ds.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d", ds.Len(), ds.Dim())
	}
	// NewDataset must copy: mutating the input must not leak in.
	raw := [][]float64{{0.5, 0.5}, {0.6, 0.4}}
	ds2, _ := NewDataset(raw)
	raw[0][0] = 99
	if ds2.PointAt(0)[0] == 99 {
		t.Error("dataset aliases caller memory")
	}
}

func TestSolvePaperExample(t *testing.T) {
	ds := table3Dataset(t)
	q := Query{Q: Point{0.4, 0.7}, K: 2, Epsilon: 0.1}
	region, err := Solve(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if region.IsEmpty() {
		t.Fatal("region should not be empty")
	}
	if !region.Contains(Vector{0.5, 0.5}) {
		t.Fatal("u = (0.5, 0.5) must qualify (Example 3.3)")
	}
}

func TestSolveAlgorithmsAgree(t *testing.T) {
	ds := SyntheticDataset(Independent, 80, 3, 5)
	q := Query{Q: ds.RandomQuery(1), K: 4, Epsilon: 0.1}
	exact, err := Solve(ds, q, WithAlgorithm(EPTAlgo))
	if err != nil {
		t.Fatal(err)
	}
	lpcta, err := Solve(ds, q, WithAlgorithm(LPCTAAlgo))
	if err != nil {
		t.Fatal(err)
	}
	me := exact.Measure(20000)
	ml := lpcta.Measure(20000)
	if math.Abs(me-ml) > 0.01 {
		t.Fatalf("measures differ: E-PT %v vs LP-CTA %v", me, ml)
	}
	apc, err := Solve(ds, q, WithAlgorithm(APCAlgo), WithSamples(200), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if apc.Measure(20000) > me+0.01 {
		t.Fatal("A-PC region larger than exact region")
	}
}

func TestSolveAutoDispatch(t *testing.T) {
	ds2 := table3Dataset(t)
	r2, err := Solve(ds2, Query{Q: Point{0.4, 0.7}, K: 1, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Intervals2D(); len(got) != 1 {
		t.Fatalf("auto 2-d should sweep to one interval, got %v", got)
	}
	ds3 := SyntheticDataset(Independent, 30, 3, 2)
	if _, err := Solve(ds3, Query{Q: ds3.RandomQuery(1), K: 2, Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveErrors(t *testing.T) {
	ds := table3Dataset(t)
	if _, err := Solve(ds, Query{Q: Point{0.4, 0.7}, K: 0, Epsilon: 0.1}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Solve(ds, Query{Q: Point{0.4, 0.7, 0.1}, K: 1, Epsilon: 0.1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Solve(ds, Query{Q: Point{0.4, 0.7}, K: 1, Epsilon: 0.1}, WithAlgorithm(Algorithm(99))); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestReverseTopKVersusRRQ(t *testing.T) {
	ds := SyntheticDataset(Independent, 50, 3, 7)
	q := ds.RandomQuery(2)
	rtk, err := ReverseTopK(ds, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	rrq0, err := Solve(ds, Query{Q: q, K: 3, Epsilon: 0}, WithAlgorithm(EPTAlgo))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rtk.Measure(10000)-rrq0.Measure(10000)) > 1e-12 {
		t.Fatal("reverse top-k must equal RRQ at ε=0")
	}
	// Relaxing ε grows the region.
	rrq10, err := Solve(ds, Query{Q: q, K: 3, Epsilon: 0.1}, WithAlgorithm(EPTAlgo))
	if err != nil {
		t.Fatal(err)
	}
	if rrq10.Measure(10000) < rtk.Measure(10000)-0.01 {
		t.Fatal("ε=0.1 region smaller than ε=0 region")
	}
}

func TestRegretRatio(t *testing.T) {
	ds := table3Dataset(t)
	got := RegretRatio(ds, Point{0.4, 0.7}, 2, Vector{0.5, 0.5})
	want := 0.01 / 0.56
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ratio = %v, want %v", got, want)
	}
}

func TestRegionSampleAndMeasure(t *testing.T) {
	ds := SyntheticDataset(Independent, 60, 3, 9)
	q := Query{Q: ds.RandomQuery(3), K: 5, Epsilon: 0.15}
	region, err := Solve(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if region.IsEmpty() {
		t.Skip("region empty for this instance")
	}
	u := region.Sample(4)
	if u == nil || !region.Contains(u) {
		t.Fatalf("sample %v not in region", u)
	}
	if m := region.Measure(5000); m <= 0 || m > 1 {
		t.Fatalf("measure = %v", m)
	}
}

func TestKSkybandPreprocessingPreservesAnswers(t *testing.T) {
	ds := SyntheticDataset(Independent, 300, 3, 11)
	q := Query{Q: ds.RandomQuery(5), K: 3, Epsilon: 0.1}
	full, err := Solve(ds, q, WithAlgorithm(EPTAlgo))
	if err != nil {
		t.Fatal(err)
	}
	pruned := ds.KSkyband(q.K)
	if pruned.Len() >= ds.Len() {
		t.Fatalf("skyband did not prune: %d of %d", pruned.Len(), ds.Len())
	}
	reduced, err := Solve(pruned, q, WithAlgorithm(EPTAlgo))
	if err != nil {
		t.Fatal(err)
	}
	// Only skyband points can rank in any top-k, so the answer region is
	// unchanged by pruning.
	if math.Abs(full.Measure(20000)-reduced.Measure(20000)) > 0.01 {
		t.Fatalf("skyband pruning changed the answer: %v vs %v",
			full.Measure(20000), reduced.Measure(20000))
	}
}

func TestPBAIndexRoundTrip(t *testing.T) {
	ds := SyntheticDataset(Independent, 25, 3, 13)
	ix, err := BuildPBAIndex(ds, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Q: ds.RandomQuery(7), K: 2, Epsilon: 0.1}
	got, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(ds, q, WithAlgorithm(EPTAlgo))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Measure(20000)-want.Measure(20000)) > 0.01 {
		t.Fatal("PBA+ index answer disagrees with E-PT")
	}
}

func TestPBABudgetSurfaced(t *testing.T) {
	ds := SyntheticDataset(Anticorrelated, 60, 3, 17)
	_, err := BuildPBAIndex(ds, 5, 8)
	if !errors.Is(err, ErrPBABudget) {
		t.Fatalf("err = %v, want ErrPBABudget", err)
	}
}

func TestRealDatasetAccess(t *testing.T) {
	for _, name := range []string{"Island", "Weather", "Car", "NBA"} {
		ds, err := RealDataset(name, 500)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Len() != 500 {
			t.Fatalf("%s: len %d", name, ds.Len())
		}
	}
	if _, err := RealDataset("bogus", 10); err == nil {
		t.Fatal("bogus real dataset accepted")
	}
}

func TestNormalize(t *testing.T) {
	ds, err := NewDataset([][]float64{{10, 100}, {20, 300}})
	if err != nil {
		t.Fatal(err)
	}
	n := ds.Normalize()
	for i := 0; i < n.Len(); i++ {
		for _, x := range n.PointAt(i) {
			if x <= 0 || x > 1 {
				t.Fatalf("normalized value %v out of (0,1]", x)
			}
		}
	}
	// Original untouched.
	if ds.PointAt(0)[0] != 10 {
		t.Fatal("Normalize mutated the receiver")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		Auto: "Auto", SweepingAlgo: "Sweeping", EPTAlgo: "E-PT",
		APCAlgo: "A-PC", LPCTAAlgo: "LP-CTA", BruteForceAlgo: "BruteForce",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestDynamicRegionAPI(t *testing.T) {
	ds := table3Dataset(t)
	q := Query{Q: Point{0.4, 0.7}, K: 2, Epsilon: 0.1}
	dyn, err := NewDynamicRegion(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	before := dyn.Region().Measure(20000)
	if before <= 0 {
		t.Fatal("initial region should be non-empty")
	}
	// A dominating competitor shrinks the region.
	if err := dyn.Insert(Point{0.95, 0.95}); err != nil {
		t.Fatal(err)
	}
	mid := dyn.Region().Measure(20000)
	if mid > before+1e-9 {
		t.Fatalf("region grew after an insertion: %v -> %v", before, mid)
	}
	// Removing it restores the answer.
	if err := dyn.Delete(3); err != nil {
		t.Fatal(err)
	}
	after := dyn.Region().Measure(20000)
	if math.Abs(after-before) > 0.02 {
		t.Fatalf("region not restored after delete: %v vs %v", after, before)
	}
	if dyn.Len() != 3 {
		t.Fatalf("Len = %d, want 3", dyn.Len())
	}
	// The maintained region matches a fresh solve at all times.
	fresh, err := Solve(ds, q, WithAlgorithm(EPTAlgo))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dyn.Region().Measure(20000)-fresh.Measure(20000)) > 0.02 {
		t.Fatal("dynamic region diverged from fresh solve")
	}
}

func TestNewDatasetRejectsNaN(t *testing.T) {
	if _, err := NewDataset([][]float64{{math.NaN(), 0.5}}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := NewDataset([][]float64{{math.Inf(1), 0.5}}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestShareProfilePublicAPI(t *testing.T) {
	ds := SyntheticDataset(Independent, 200, 3, 31)
	q := ds.RandomQuery(7)
	sp, err := NewShareProfile(ds, q, 5, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The curve must agree with a direct solve at ε = 0.1.
	reg, err := Solve(ds, Query{Q: q, K: 5, Epsilon: 0.1}, WithAlgorithm(EPTAlgo))
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(sp.Share(0.1) - reg.Measure(20000)); diff > 0.02 {
		t.Fatalf("profile and solve disagree by %v", diff)
	}
	if eps := sp.EpsForShare(0.5); sp.Share(eps) < 0.5-1e-9 {
		t.Fatal("EpsForShare target not reached")
	}
}

// Solvers and regions must be safe for concurrent use (solvers share no
// state; regions are immutable). Run with -race.
func TestConcurrentSolves(t *testing.T) {
	ds := SyntheticDataset(Independent, 150, 3, 41)
	region, err := Solve(ds, Query{Q: ds.RandomQuery(1), K: 3, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			q := Query{Q: ds.RandomQuery(int64(w)), K: 2 + w%3, Epsilon: 0.05 * float64(1+w%3)}
			r, err := Solve(ds, q)
			if err != nil {
				done <- err
				return
			}
			// Concurrent reads of a shared region.
			for i := 0; i < 50; i++ {
				region.Contains(Vector{0.3, 0.3, 0.4})
				r.NumPartitions()
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegretMinimizingSet(t *testing.T) {
	ds := SyntheticDataset(Anticorrelated, 300, 3, 21)
	sel, mrr, err := RegretMinimizingSet(ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 || len(sel) > 8 {
		t.Fatalf("selected %d products", len(sel))
	}
	if mrr < 0 || mrr > 1 {
		t.Fatalf("max regret %v out of range", mrr)
	}
	// Duality spot check: each selected product should command a
	// non-trivial reverse-regret region of its own.
	market := ds.KSkyband(1)
	_ = market
	region, err := Solve(ds, Query{Q: ds.PointAt(sel[0]), K: 1, Epsilon: math.Min(0.9, mrr+0.05)})
	if err != nil {
		t.Fatal(err)
	}
	if region.IsEmpty() {
		t.Fatal("a greedy representative should qualify somewhere at ε > mrr")
	}
}
