package rrq

import (
	"context"
	"testing"
	"time"
)

// An anytime solve must report the tier and an accuracy contract, respect
// a deterministic sample budget, stay sound against the exact answer, and
// grow monotonically with the budget.
func TestAnytimeTierSolveContract(t *testing.T) {
	ds, q := indexTestInstance(t, 4, 9001)
	ctx := context.Background()
	truth, err := SolveContext(ctx, ds, q)
	if err != nil {
		t.Fatal(err)
	}

	var prev *Region
	for _, budget := range []int{5, 10, 20} {
		res, err := SolveContext(ctx, ds, q, WithAnytimeSamples(budget), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		if res.Tier != TierAnytime {
			t.Fatalf("budget %d: tier = %v, want %v", budget, res.Tier, TierAnytime)
		}
		if res.Accuracy == nil {
			t.Fatalf("budget %d: nil Accuracy on an anytime result", budget)
		}
		if res.Accuracy.SamplesUsed > budget {
			t.Fatalf("budget %d: consumed %d samples", budget, res.Accuracy.SamplesUsed)
		}
		if res.Accuracy.RhoBound <= 0 || res.Accuracy.RhoBound > 1 {
			t.Fatalf("budget %d: ρ bound %v out of (0, 1]", budget, res.Accuracy.RhoBound)
		}
		// Soundness: every sampled member of the cut qualifies for real.
		for seed := int64(1); seed <= 20; seed++ {
			if u := res.Region.Sample(seed); u != nil && !truth.Region.Contains(u) {
				t.Fatalf("budget %d: anytime region contains non-member %v", budget, u)
			}
		}
		// Monotonicity: a larger budget's region contains a smaller one's.
		if prev != nil {
			for seed := int64(1); seed <= 20; seed++ {
				if u := prev.Sample(seed); u != nil && !res.Region.Contains(u) {
					t.Fatalf("budget %d: dropped member %v of the smaller cut", budget, u)
				}
			}
		}
		prev = res.Region
	}
}

// Tier classification on the non-anytime paths: exact solvers report
// TierExact, a forced A-PC solve TierApprox, and batches agree with
// standalone solves.
func TestSolverTierClassification(t *testing.T) {
	ds, q := indexTestInstance(t, 3, 9002)
	ctx := context.Background()

	exact, err := SolveContext(ctx, ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Tier != TierExact {
		t.Fatalf("exact solve tier = %v, want %v", exact.Tier, TierExact)
	}
	approx, err := SolveContext(ctx, ds, q, WithAlgorithm(APCAlgo), WithSamples(30))
	if err != nil {
		t.Fatal(err)
	}
	if approx.Tier != TierApprox {
		t.Fatalf("A-PC solve tier = %v, want %v", approx.Tier, TierApprox)
	}
	if approx.Accuracy != nil {
		t.Fatal("plain A-PC solve carries an Accuracy contract; only anytime cuts do")
	}

	rep, err := SolveBatch(ctx, ds, []Query{q, q}, WithAlgorithm(APCAlgo), WithSamples(30))
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range rep.Results {
		if br.Err != nil {
			t.Fatalf("batch query %d: %v", i, br.Err)
		}
		if br.Tier != TierApprox {
			t.Fatalf("batch query %d tier = %v, want %v", i, br.Tier, TierApprox)
		}
	}

	for _, tc := range []struct {
		tier SolverTier
		want string
	}{{TierExact, "exact"}, {TierApprox, "approx"}, {TierAnytime, "anytime"}} {
		if tc.tier.String() != tc.want {
			t.Fatalf("String(%d) = %q, want %q", int(tc.tier), tc.tier.String(), tc.want)
		}
		got, err := ParseSolverTier(tc.want)
		if err != nil || got != tc.tier {
			t.Fatalf("ParseSolverTier(%q) = %v, %v", tc.want, got, err)
		}
	}
	if _, err := ParseSolverTier("bogus"); err == nil {
		t.Fatal("ParseSolverTier accepted an unknown tier")
	}
}

// An anytime batch answers every query independently on the anytime tier.
func TestAnytimeBatch(t *testing.T) {
	ds, q := indexTestInstance(t, 3, 9003)
	q2 := Query{Q: q.Q, K: q.K + 1, Epsilon: q.Epsilon}
	rep, err := SolveBatch(context.Background(), ds, []Query{q, q2}, WithAnytimeSamples(8), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solved != 2 || rep.Failed != 0 {
		t.Fatalf("solved=%d failed=%d, want 2/0", rep.Solved, rep.Failed)
	}
	for i, br := range rep.Results {
		if br.Tier != TierAnytime || br.Accuracy == nil {
			t.Fatalf("batch query %d: tier=%v accuracy=%v, want anytime contract", i, br.Tier, br.Accuracy)
		}
		if br.Accuracy.SamplesUsed > 8 {
			t.Fatalf("batch query %d consumed %d samples over the budget", i, br.Accuracy.SamplesUsed)
		}
	}
}

// Repeated anytime queries through a cached index must ratchet: the first
// cut is stored as an inner bound, the second solve warm-starts from it
// (naming its source), and the served region never shrinks.
func TestIndexAnytimeWarmStartRatchet(t *testing.T) {
	ds, q := indexTestInstance(t, 4, 9004)
	reg := NewRegistry()
	ix, err := BuildIndex(ds, WithResultCache(16), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first, err := ix.SolveContext(ctx, q, WithAnytimeSamples(6), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if first.Tier != TierAnytime || first.Cache != CacheMiss {
		t.Fatalf("first anytime solve: tier=%v cache=%v, want anytime miss", first.Tier, first.Cache)
	}
	if first.CacheSource != nil {
		t.Fatal("first anytime solve reports a warm-start source on an empty cache")
	}

	// A different seed draws a different sample stream, so the second run
	// would explore different partitions — the warm start must still keep
	// every member of the first cut.
	second, err := ix.SolveContext(ctx, q, WithAnytimeSamples(6), WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	if second.Tier != TierAnytime {
		t.Fatalf("second solve tier = %v, want %v", second.Tier, TierAnytime)
	}
	if second.CacheSource == nil || second.CacheSource.K != q.K || second.CacheSource.Epsilon != q.Epsilon {
		t.Fatalf("second solve warm-start source = %+v, want the first cut's query", second.CacheSource)
	}
	if got := reg.Counter("cache.warm_start").Value(); got != 1 {
		t.Fatalf("cache.warm_start = %d, want 1", got)
	}
	for seed := int64(1); seed <= 30; seed++ {
		if u := first.Region.Sample(seed); u != nil && !second.Region.Contains(u) {
			t.Fatalf("warm-started solve dropped member %v of the previous cut", u)
		}
	}

	// The stored entry is an inner bound, never an exact artifact: an exact
	// solve of the same query must miss (and must not be contaminated).
	exact, err := ix.SolveContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cache != CacheMiss || exact.Tier != TierExact {
		t.Fatalf("exact solve after anytime entries: cache=%v tier=%v, want exact miss", exact.Cache, exact.Tier)
	}
}

// A cached exact artifact for the identical (k, ε) short-circuits an
// anytime request: the true answer beats any cut.
func TestIndexAnytimeServesExactHit(t *testing.T) {
	ds, q := indexTestInstance(t, 3, 9005)
	ix, err := BuildIndex(ds, WithResultCache(16))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	exact, err := ix.SolveContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.SolveContext(ctx, q, WithAnytime(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != CacheHit || res.Tier != TierExact {
		t.Fatalf("anytime request on a cached exact answer: cache=%v tier=%v, want exact hit", res.Cache, res.Tier)
	}
	if res.Accuracy != nil {
		t.Fatal("exact cache hit carries an Accuracy contract")
	}
	eb, _ := exact.Region.MarshalJSON()
	rb, _ := res.Region.MarshalJSON()
	if string(eb) != string(rb) {
		t.Fatal("served region differs from the cached exact artifact")
	}
}

// A cached exact inner neighbor (tighter k, ε on the same point) seeds the
// anytime construction even when the budget alone would return less.
func TestIndexAnytimeWarmStartsFromExactNeighbor(t *testing.T) {
	ds, q := indexTestInstance(t, 3, 9006)
	ix, err := BuildIndex(ds, WithResultCache(16))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tight := Query{Q: q.Q, K: q.K - 1, Epsilon: q.Epsilon / 2}
	tres, err := ix.SolveContext(ctx, tight)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.SolveContext(ctx, q, WithAnytimeSamples(4), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != TierAnytime {
		t.Fatalf("tier = %v, want %v", res.Tier, TierAnytime)
	}
	if res.CacheSource == nil || res.CacheSource.K != tight.K {
		t.Fatalf("warm-start source = %+v, want the tighter neighbor", res.CacheSource)
	}
	for seed := int64(1); seed <= 30; seed++ {
		if u := tres.Region.Sample(seed); u != nil && !res.Region.Contains(u) {
			t.Fatalf("anytime cut dropped member %v of its exact seed", u)
		}
	}
}
